(* uhmc — the universal host machine driver.

   Subcommands:
     compile   parse, check and compile Algol-S to DIR; print the listing
     run       execute a program under a chosen strategy and encoding
     encode    show the program's size under every encoding
     trace     locality statistics of the program's instruction trace
     calibrate measure the paper's cost parameters from simulation
     suite     list the built-in benchmark programs
     perf      measure host-side simulator throughput; write BENCH json
     mix       time-slice several programs over one shared DTB
     load      serve an open stream of arriving jobs under load
     campaign  maintenance of crash-safe campaign journals *)

open Cmdliner
module Table = Uhm_report.Table
module Kind = Uhm_encoding.Kind
module Codec = Uhm_encoding.Codec
module Suite = Uhm_workload.Suite
module Locality = Uhm_workload.Locality
module Dtb = Uhm_core.Dtb
module U = Uhm_core.Uhm
module Sweep = Uhm_core.Sweep
module Machine = Uhm_machine.Machine
module Asm = Uhm_machine.Asm
module Campaign = Uhm_campaign.Campaign

(* -- campaign plumbing shared by mix and faults ------------------------------- *)

let journal_arg =
  Arg.(value & opt (some string) None
       & info [ "journal" ] ~docv:"PATH"
           ~doc:"Record every completed cell to an fsync'd append-only \
                 JSON-lines journal at $(docv); combined with \
                 $(b,--resume) the campaign survives a mid-run kill.")

let resume_arg =
  Arg.(value & opt (some string) None
       & info [ "resume" ] ~docv:"PATH"
           ~doc:"Serve already-journaled cells from $(docv) instead of \
                 recomputing them.  The journal must have been written by \
                 the same campaign configuration (fingerprint-checked; a \
                 mismatch is a hard error, exit 2).  A non-existent file \
                 starts fresh, so $(b,--journal F --resume F) can be \
                 re-run until the campaign completes.")

let cell_fuel_arg =
  Arg.(value & opt (some int) None
       & info [ "cell-fuel" ] ~docv:"N"
           ~doc:"Deterministic per-cell step budget: each simulated \
                 machine in a cell gets $(docv) cycles of fuel; a cell \
                 that exhausts it fails and is quarantined after the \
                 retry budget, instead of wedging the campaign.")

(* Campaign.prepare with CLI error handling: an unusable resume journal
   is malformed input (exit 2), like any other bad file we are given. *)
let prepare_campaign ?journal ?resume ~campaign ~fingerprint ~cells () =
  match
    Campaign.prepare ?journal ?resume ~campaign ~fingerprint ~cells ()
  with
  | setup ->
      if setup.Campaign.resumed > 0 then
        Printf.eprintf "uhmc: resuming: %d of %d cells served from %s\n%!"
          setup.Campaign.resumed cells
          (Option.value ~default:"-" resume);
      setup
  | exception Campaign.Mismatch msg ->
      Printf.eprintf "uhmc: error: %s\n" msg;
      exit 2

(* -- program sources --------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let source = really_input_string ic n in
  close_in ic;
  source

(* Resolve to a compiled DIR program: an Algol-S or Fortran-S file, or a
   built-in program from either suite (Fortran-S names start with ftn_). *)
let load_dir_exn ~file ~program ~fortran ~fuse =
  match (file, program) with
  | Some path, None ->
      let name = Filename.basename path in
      if fortran then Uhm_ftn.Codegen.compile_source ~name ~fuse (read_file path)
      else
        Uhm_compiler.Pipeline.compile ~fuse
          (Uhm_hlr.Parser.parse ~name (read_file path))
  | None, Some name -> (
      match Suite.find name with
      | entry -> Suite.compile ~fuse entry
      | exception Not_found -> Uhm_ftn.Suite.compile ~fuse (Uhm_ftn.Suite.find name))
  | _ ->
      prerr_endline "uhmc: error: exactly one of FILE or --program NAME is required";
      exit 2

(* A malformed input file is a user error, not a crash: every frontend
   exception becomes a one-line stderr diagnostic and exit code 2. *)
let load_dir ~file ~program ~fortran ~fuse =
  let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "uhmc: error: %s\n" m; exit 2) fmt in
  try load_dir_exn ~file ~program ~fortran ~fuse with
  | Uhm_hlr.Lexer.Lex_error (msg, line, col) ->
      fail "%s at line %d, column %d" msg line col
  | Uhm_hlr.Parser.Parse_error (msg, line, col) ->
      fail "%s at line %d, column %d" msg line col
  | Uhm_ftn.Lexer.Lex_error (msg, line) -> fail "%s at line %d" msg line
  | Uhm_ftn.Parser.Parse_error (msg, line) -> fail "%s at line %d" msg line
  | Uhm_hlr.Check.Check_error msg
  | Uhm_ftn.Check.Check_error msg
  | Uhm_compiler.Codegen.Codegen_error msg
  | Uhm_ftn.Codegen.Codegen_error msg ->
      fail "%s" msg
  | Not_found -> (
      match program with
      | Some name -> fail "unknown built-in program %s; see `uhmc suite`" name
      | None -> fail "program not found")
  | Sys_error msg -> fail "%s" msg

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Algol-S source file.")

let program_arg =
  Arg.(value & opt (some string) None
       & info [ "p"; "program" ] ~docv:"NAME"
           ~doc:"Use a built-in suite program instead of a file.")

let fortran_arg =
  Arg.(value & flag
       & info [ "fortran" ]
           ~doc:"Treat FILE as Fortran-S instead of Algol-S (built-in \
                 programs pick their language by name).")

let fuse_arg =
  Arg.(value & flag
       & info [ "fuse" ] ~doc:"Apply superoperator fusion (raises the DIR's semantic level).")

let kind_conv =
  let parse s =
    try Ok (Kind.of_name s)
    with Invalid_argument _ ->
      Error (`Msg (Printf.sprintf "unknown encoding %s" s))
  in
  Arg.conv (parse, fun fmt k -> Format.pp_print_string fmt (Kind.name k))

let kind_arg =
  Arg.(value & opt kind_conv Kind.Packed
       & info [ "k"; "kind" ] ~docv:"KIND"
           ~doc:"Static encoding: word16, packed, contextual, huffman, huffman-b1700, digram.")

let strategy_conv =
  let parse = function
    | "interp" -> Ok U.Interp
    | "cached" -> Ok (U.Cached 4096)
    | "dtb" -> Ok (U.Dtb_strategy Dtb.paper_config)
    | "dtb-blocks" ->
        Ok
          (U.Dtb_blocks
             ( { Dtb.sets = 32; assoc = 4; unit_words = 16;
                 overflow_blocks = 256 },
               8 ))
    | "dtb2" -> Ok (U.Dtb_two_level (Dtb.paper_config, 2048))
    | "psder" -> Ok U.Psder_static
    | "der" -> Ok (U.Der U.Der_level1)
    | "der-l2" -> Ok (U.Der U.Der_level2)
    | "der-cached" -> Ok (U.Der (U.Der_level2_cached 4096))
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %s" s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (U.strategy_name s))

let strategy_arg =
  Arg.(value & opt strategy_conv (U.Dtb_strategy Dtb.paper_config)
       & info [ "s"; "strategy" ] ~docv:"STRATEGY"
           ~doc:"Execution strategy: interp, cached, dtb, dtb-blocks, dtb2, \
                 psder, der, der-l2, der-cached.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print execution statistics.")

let single_backend_conv =
  let parse = function
    | "decode" -> Ok `Decode
    | "threaded" -> Ok `Threaded
    | s -> Error (`Msg (Printf.sprintf "unknown backend %s (decode, threaded)" s))
  in
  Arg.conv
    ( parse,
      fun fmt b ->
        Format.pp_print_string fmt
          (match b with `Decode -> "decode" | `Threaded -> "threaded") )

let backend_arg =
  Arg.(value & opt single_backend_conv `Decode
       & info [ "backend" ] ~docv:"BACKEND"
           ~doc:"Host execution backend: decode (per-word fetch+decode) or \
                 threaded (closure-compiled direct threading). Simulated \
                 results are identical; only host wall-clock differs.")

(* -- compile ------------------------------------------------------------------ *)

let compile_cmd =
  let action file program fortran fuse =
    let p = load_dir ~file ~program ~fortran ~fuse in
    print_string (Uhm_dir.Program.listing p);
    Printf.printf "\n%d instructions, %d contours\n"
      (Uhm_dir.Program.size_instructions p)
      (Array.length p.Uhm_dir.Program.contours)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Compile Algol-S or Fortran-S to DIR and print the listing.")
    Term.(const action $ file_arg $ program_arg $ fortran_arg $ fuse_arg)

(* -- run ---------------------------------------------------------------------- *)

let run_cmd =
  let fuel_arg =
    Arg.(value & opt (some int) None
         & info [ "fuel" ] ~docv:"N"
             ~doc:"Cycle budget: a program still running after $(docv) \
                   cycles is killed as a runaway and uhmc exits with \
                   code 3 (default 2e9).")
  in
  let action file program fortran fuse kind strategy backend stats fuel =
    let p = load_dir ~file ~program ~fortran ~fuse in
    let r = U.run ?fuel ~backend ~strategy ~kind p in
    print_string r.U.output;
    (match r.U.status with
    | Machine.Halted -> ()
    | Machine.Trapped m ->
        Printf.eprintf "trap: %s\n" m;
        exit 1
    | Machine.Out_of_fuel ->
        (* the runaway-program guard: a distinct exit code so scripts can
           tell "looped forever" from "trapped" *)
        Printf.eprintf
          "uhmc: out of fuel after %d cycles (runaway program? raise --fuel)\n"
          r.U.cycles;
        exit 3
    | Machine.Running -> assert false);
    if stats then begin
      let s = r.U.machine_stats in
      let cat c = s.Machine.cat_cycles.(Machine.category_index c) in
      Printf.eprintf
        "strategy         %s\n\
         encoding         %s\n\
         dir instructions %d\n\
         cycles           %d (%.2f per instruction)\n\
         dir fetch        %d\n\
         decode (d)       %d\n\
         semantic (x)     %d\n\
         translate (g)    %d\n\
         static size      %d bits (%.1f bits/instr)\n"
        (U.strategy_name strategy) (Kind.name kind) r.U.dir_steps r.U.cycles
        (U.cycles_per_dir_instruction r)
        s.Machine.dir_fetch_cycles (cat Asm.Decode) (cat Asm.Semantic)
        (cat Asm.Translate) r.U.static_size_bits
        (float_of_int r.U.static_size_bits /. float_of_int
           (max 1 (Uhm_dir.Program.size_instructions p)));
      match r.U.dtb_hit_ratio with
      | Some h ->
          Printf.eprintf "dtb hit ratio    %.4f (%d misses, %d evictions)\n" h
            (Option.value ~default:0 r.U.dtb_misses)
            (Option.value ~default:0 r.U.dtb_evictions)
      | None -> ()
    end
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a program on the simulated universal host machine.")
    Term.(
      const action $ file_arg $ program_arg $ fortran_arg $ fuse_arg
      $ kind_arg $ strategy_arg $ backend_arg $ stats_arg $ fuel_arg)

(* -- encode ------------------------------------------------------------------- *)

let encode_cmd =
  let action file program fortran fuse =
    let p = load_dir ~file ~program ~fortran ~fuse in
    let t =
      Table.create
        ~columns:
          [ ("encoding", Table.Left); ("bits", Table.Right);
            ("bits/instr", Table.Right); ("vs word16", Table.Right) ]
        ()
    in
    let word16 = (Codec.encode Kind.Word16 p).Codec.size_bits in
    List.iter
      (fun kind ->
        let e = Codec.encode kind p in
        Table.add_row t
          [ Kind.name kind;
            Table.cell_int e.Codec.size_bits;
            Table.cell_float (Codec.bits_per_instruction e);
            Table.cell_pct ~decimals:1
              (1. -. (float_of_int e.Codec.size_bits /. float_of_int word16)) ])
      Kind.all;
    Table.print t
  in
  Cmd.v
    (Cmd.info "encode" ~doc:"Show the program's size under every encoding.")
    Term.(const action $ file_arg $ program_arg $ fortran_arg $ fuse_arg)

(* -- trace -------------------------------------------------------------------- *)

let trace_cmd =
  let action file program fortran fuse =
    let p = load_dir ~file ~program ~fortran ~fuse in
    let trace = Locality.trace_of_program p in
    Printf.printf "references        %d\n" (Array.length trace);
    Printf.printf "footprint         %d instructions\n" (Locality.footprint trace);
    Printf.printf "avg working set   %.1f (window 1000)\n"
      (Locality.average_working_set ~window:1000 trace);
    List.iter
      (fun cap ->
        Printf.printf "LRU(%4d) hit     %.2f%%\n" cap
          (100. *. Locality.hit_ratio_for_capacity ~capacity:cap trace))
      [ 16; 64; 256; 1024 ]
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Locality statistics of the program's dynamic instruction trace.")
    Term.(const action $ file_arg $ program_arg $ fortran_arg $ fuse_arg)

(* -- calibrate ----------------------------------------------------------------- *)

let calibrate_cmd =
  let action file program fortran fuse kind =
    let p = load_dir ~file ~program ~fortran ~fuse in
    let m = Uhm_core.Experiment.measure ~kind ~name:"program" p in
    let c = Uhm_core.Experiment.calibrate m in
    let params = Uhm_core.Experiment.params_of c in
    let module Model = Uhm_perfmodel.Model in
    let module E = Uhm_core.Experiment in
    Printf.printf
      "measured parameters (per DIR instruction, %s encoding):\n\
      \  d   (decode+dispatch)   %8.2f cycles\n\
      \  x   (semantic routines) %8.2f cycles\n\
      \  g   (generation/miss)   %8.2f cycles\n\
      \  s1  (short words)       %8.2f\n\
      \  s2  (DIR units fetched) %8.2f\n\
      \  h_c (icache hit ratio)  %8.4f\n\
      \  h_D (DTB hit ratio)     %8.4f\n\n"
      (Kind.name kind) c.E.c_d c.E.c_x c.E.c_g c.E.c_s1 c.E.c_s2 c.E.c_h_c
      c.E.c_h_d;
    Printf.printf
      "analytic model at these parameters vs simulation:\n\
      \  T1 (interp)  model %8.2f   sim %8.2f\n\
      \  T3 (icache)  model %8.2f   sim %8.2f\n\
      \  T2 (DTB)     model %8.2f   sim %8.2f\n\
      \  F2 = (T1-T2)/T2 = %.1f%%\n"
      (Model.t1 params)
      (U.cycles_per_dir_instruction m.E.interp)
      (Model.t3 params)
      (U.cycles_per_dir_instruction m.E.cached)
      (Model.t2 params)
      (U.cycles_per_dir_instruction m.E.dtb)
      (Model.f2 params)
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:"Measure the paper's cost parameters (d, g, x, s1, s2, h_c, h_D)              from simulation and evaluate the analytic model with them.")
    Term.(const action $ file_arg $ program_arg $ fortran_arg $ fuse_arg
          $ kind_arg)

(* -- perf --------------------------------------------------------------------- *)

let perf_cmd =
  let runs_arg =
    Arg.(value & opt int 5
         & info [ "runs" ] ~docv:"N"
             ~doc:"Minimum timed runs per workload/strategy sample.")
  in
  let seconds_arg =
    Arg.(value & opt float 0.2
         & info [ "seconds" ] ~docv:"S"
             ~doc:"Minimum seconds of timed runs per sample.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"PATH"
             ~doc:"Also write the samples as BENCH_simulator.json-format \
                   JSON to $(docv).")
  in
  let workloads_arg =
    Arg.(value & opt_all string []
         & info [ "w"; "workload" ] ~docv:"NAME"
             ~doc:"Workload to measure (repeatable); default is the \
                   representative set.")
  in
  let programs_arg =
    Arg.(value & opt (some string) None
         & info [ "programs" ] ~docv:"A,B,C"
             ~doc:"Comma-separated list of workloads to measure; same as \
                   repeating $(b,--workload).")
  in
  let backends_arg =
    let backend_conv =
      let parse = function
        | "decode" -> Ok [ `Decode ]
        | "threaded" -> Ok [ `Threaded ]
        | "both" -> Ok [ `Decode; `Threaded ]
        | s ->
            Error
              (`Msg
                (Printf.sprintf
                   "unknown backend %s (decode, threaded, both)" s))
      in
      Arg.conv
        ( parse,
          fun fmt bs ->
            Format.pp_print_string fmt
              (String.concat ","
                 (List.map Uhm_core.Perf.backend_name bs)) )
    in
    Arg.(value & opt backend_conv [ `Decode ]
         & info [ "backend" ] ~docv:"BACKEND"
             ~doc:"Host execution backend to measure: decode (the classic \
                   fetch-decode loop), threaded (closure-compiled \
                   direct-threaded), or both (also records the schema-v3 \
                   backend speedup section in the JSON output).")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Domain count for the parallel-sweep benchmark (default: \
                   $(b,UHM_JOBS) or the recommended domain count).")
  in
  let sweep_arg =
    Arg.(value & flag
         & info [ "sweep" ]
             ~doc:"Also time the whole-suite summary sweep at 1 and N \
                   domains and record it in the JSON output.")
  in
  let baseline_arg =
    Arg.(value & opt (some string) None
         & info [ "baseline" ] ~docv:"PATH"
             ~doc:"Compare against a previously written \
                   BENCH_simulator.json and exit non-zero if any sample's \
                   host-relative throughput regressed past \
                   $(b,--max-regression) percent.")
  in
  let max_regression_arg =
    Arg.(value & opt float 30.
         & info [ "max-regression" ] ~docv:"PCT"
             ~doc:"Allowed relative-throughput drop per sample, percent \
                   (with $(b,--baseline)).")
  in
  let action min_runs min_seconds out workloads programs backends jobs sweep
      baseline max_regression =
    let module Perf = Uhm_core.Perf in
    let workloads =
      workloads
      @ (match programs with
        | None -> []
        | Some s ->
            List.filter
              (fun w -> w <> "")
              (List.map String.trim (String.split_on_char ',' s)))
    in
    let workloads = if workloads = [] then Perf.default_workloads else workloads in
    (match
       List.filter
         (fun w -> not (List.exists (( = ) w) (Uhm_workload.Suite.names ())))
         workloads
     with
    | [] -> ()
    | unknown ->
        Printf.eprintf "uhmc: unknown workload%s %s; see `uhmc suite`\n"
          (if List.length unknown > 1 then "s" else "")
          (String.concat ", " unknown);
        exit 1);
    let samples = Perf.run_suite ~workloads ~min_runs ~min_seconds ~backends () in
    let t =
      Table.create
        ~columns:
          [ ("workload/strategy", Table.Left); ("backend", Table.Left);
            ("runs", Table.Right); ("us/run", Table.Right);
            ("sim cycles/s", Table.Right); ("host instrs/s", Table.Right) ]
        ()
    in
    List.iter
      (fun s ->
        Table.add_row t
          [ Printf.sprintf "%s/%s" s.Perf.workload s.Perf.strategy;
            s.Perf.backend;
            Table.cell_int s.Perf.runs;
            Table.cell_float s.Perf.wall_us_per_run;
            Printf.sprintf "%.2fM" (s.Perf.sim_cycles_per_sec /. 1e6);
            Printf.sprintf "%.2fM" (s.Perf.host_instrs_per_sec /. 1e6) ])
      samples;
    Table.print t;
    (match Perf.backend_pairs samples with
    | [] -> ()
    | pairs ->
        List.iter
          (fun p ->
            Printf.printf "backend speedup %s/%s: %.2fx (%.1f -> %.1f us/run)\n"
              p.Perf.bp_workload p.Perf.bp_strategy p.Perf.bp_speedup
              p.Perf.bp_decode_us p.Perf.bp_threaded_us)
          pairs;
        let geo =
          exp
            (List.fold_left (fun a p -> a +. log p.Perf.bp_speedup) 0. pairs
            /. float_of_int (List.length pairs))
        in
        Printf.printf "backend speedup geomean: %.2fx over %d pairs\n" geo
          (List.length pairs));
    let sweep_bench =
      if not sweep then None
      else begin
        let sw = Perf.measure_sweep ?domains:jobs () in
        Printf.printf
          "parallel sweep: %d points, %.3fs at 1 domain, %.3fs at %d \
           domains (speedup %.2fx, results %s)\n"
          sw.Perf.sweep_points sw.Perf.sweep_wall_1 sw.Perf.sweep_wall_n
          sw.Perf.sweep_domains sw.Perf.sweep_speedup
          (if sw.Perf.sweep_identical then "identical" else "DIVERGENT");
        Some sw
      end
    in
    (match out with
    | Some path ->
        Perf.write_json ?sweep:sweep_bench ~path samples;
        Printf.printf "wrote %s (%d samples)\n" path (List.length samples)
    | None -> ());
    match baseline with
    | None -> ()
    | Some path -> (
        let base =
          try Perf.read_baseline ~path with
          | Sys_error msg | Perf.Json_error msg ->
              Printf.eprintf "uhmc: cannot read baseline %s: %s\n" path msg;
              exit 1
        in
        match
          Perf.check_against_baseline ~max_regression_pct:max_regression
            ~baseline:base samples
        with
        | Error msg ->
            Printf.eprintf "uhmc: baseline comparison failed: %s\n" msg;
            exit 1
        | Ok [] ->
            Printf.printf
              "perf gate: no sample regressed more than %.0f%% vs %s\n"
              max_regression path
        | Ok regressions ->
            List.iter
              (fun r ->
                Printf.eprintf
                  "perf gate: %s/%s [%s] regressed %.1f%% (relative rate \
                   %.3f -> %.3f)\n"
                  r.Perf.reg_workload r.Perf.reg_strategy r.Perf.reg_backend
                  r.Perf.reg_drop_pct r.Perf.reg_baseline_rel
                  r.Perf.reg_current_rel)
              regressions;
            exit 1)
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:"Measure host-side simulator throughput (wall clock) for the \
             representative workloads under each strategy and backend; \
             optionally gate against a committed baseline.")
    Term.(const action $ runs_arg $ seconds_arg $ out_arg $ workloads_arg
          $ programs_arg $ backends_arg $ jobs_arg $ sweep_arg
          $ baseline_arg $ max_regression_arg)

(* -- mix ---------------------------------------------------------------------- *)

let mix_cmd =
  let module Mix = Uhm_sched.Mix in
  let module Scheduler = Uhm_sched.Scheduler in
  let module Trace = Uhm_sched.Trace in
  let module SX = Uhm_sched.Experiment in
  let programs_arg =
    Arg.(value & opt_all string []
         & info [ "p"; "program" ] ~docv:"NAME"
             ~doc:"Built-in program to include in the mix (repeatable; at \
                   least two make a mix, one is allowed).")
  in
  let policy_conv =
    let parse = function
      | "flush" -> Ok Dtb.Flush_on_switch
      | "tagged" -> Ok Dtb.Tagged
      | "partitioned" -> Ok Dtb.Partitioned
      | s -> Error (`Msg (Printf.sprintf "unknown policy %s" s))
    in
    Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Dtb.policy_name p))
  in
  let policies_arg =
    Arg.(value & opt_all policy_conv []
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"Shared-DTB ownership policy: flush, tagged, partitioned \
                   (repeatable; default all three).")
  in
  let quantum_arg =
    Arg.(value & opt int 64
         & info [ "q"; "quantum" ] ~docv:"N"
             ~doc:"Scheduling quantum in DIR instructions; 0 means never \
                   preempt (the quantum-to-infinity limit).")
  in
  let scheduler_conv =
    let parse = function
      | "rr" -> Ok Scheduler.Round_robin
      | "srtf" -> Ok Scheduler.Shortest_remaining
      | s -> Error (`Msg (Printf.sprintf "unknown scheduler %s" s))
    in
    Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Scheduler.policy_name s))
  in
  let scheduler_arg =
    Arg.(value & opt scheduler_conv Scheduler.Round_robin
         & info [ "scheduler" ] ~docv:"SCHED"
             ~doc:"rr (round-robin) or srtf (shortest remaining dir_steps \
                   first).")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"PATH"
             ~doc:"Write a Chrome trace_event JSON file loadable in \
                   about://tracing (with several policies, the policy name \
                   is inserted before the extension).")
  in
  let sets_arg =
    Arg.(value & opt int Dtb.paper_config.Dtb.sets
         & info [ "sets" ] ~docv:"N" ~doc:"DTB set count (power of two).")
  in
  let assoc_arg =
    Arg.(value & opt int Dtb.paper_config.Dtb.assoc
         & info [ "assoc" ] ~docv:"N" ~doc:"DTB ways per set.")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Domain count for the sweep pool (default: $(b,UHM_JOBS) \
                   or the recommended domain count).")
  in
  let poison_arg =
    Arg.(value & opt_all int []
         & info [ "poison-cell" ] ~docv:"IDX"
             ~doc:"Testing aid for the quarantine path: make the cell at \
                   index $(docv) (policy order) fail on every attempt, so \
                   it ends up quarantined (exit 1) while the other cells \
                   complete.")
  in
  let action programs policies quantum scheduler kind fuse trace_path sets
      assoc jobs journal resume cell_fuel poison =
    if programs = [] then begin
      prerr_endline "uhmc mix: at least one -p NAME is required";
      exit 2
    end;
    let policies =
      if policies = [] then [ Dtb.Flush_on_switch; Dtb.Tagged; Dtb.Partitioned ]
      else policies
    in
    let quantum = if quantum <= 0 then Mix.solo_quantum else quantum in
    let config =
      { Dtb.paper_config with Dtb.sets; assoc }
    in
    let named =
      List.map
        (fun name ->
          (name, load_dir ~file:None ~program:(Some name) ~fortran:false ~fuse))
        programs
    in
    (* one cell per policy: mix_axes with singleton scheduler/quantum/config
       axes keeps the cell order identical to the policy list *)
    let axes =
      SX.mix_axes ~schedulers:[ scheduler ] ~quanta:[ quantum ] ~policies
        ~configs:[ config ] ()
    in
    let fingerprint =
      [ "uhmc mix";
        "programs=" ^ String.concat "," programs;
        "policies=" ^ String.concat "," (List.map Dtb.policy_name policies);
        "quantum=" ^ string_of_int quantum;
        "scheduler=" ^ Scheduler.policy_name scheduler;
        "kind=" ^ Kind.name kind;
        "fuse=" ^ string_of_bool fuse;
        "sets=" ^ string_of_int sets;
        "assoc=" ^ string_of_int assoc;
        "cell_fuel="
        ^ (match cell_fuel with None -> "none" | Some f -> string_of_int f) ]
    in
    let setup =
      prepare_campaign ?journal ?resume ~campaign:"uhmc-mix" ~fingerprint
        ~cells:(List.length axes) ()
    in
    let slots =
      SX.mix_grid_slots ?domains:jobs ~schedulers:[ scheduler ]
        ~quanta:[ quantum ] ~cached:setup.Campaign.cached
        ?cell_hook:setup.Campaign.cell_hook ?cell_fuel ~poison ~kind
        ~policies ~configs:[ config ] named
    in
    setup.Campaign.close ();
    let t =
      Table.create
        ~columns:
          [ ("policy", Table.Left); ("program", Table.Left);
            ("dir instrs", Table.Right); ("cycles", Table.Right);
            ("slowdown", Table.Right); ("slices", Table.Right);
            ("hit ratio", Table.Right); ("misses", Table.Right);
            ("evictions", Table.Right) ]
        ()
    in
    let quarantined = ref [] in
    List.iteri
      (fun i slot ->
        let policy, _, _, _ = List.nth axes i in
        match slot with
        | Sweep.Quarantined q ->
            quarantined := (policy, q) :: !quarantined;
            Table.add_row t
              [ Dtb.policy_name policy; "(quarantined)"; "-"; "-"; "-"; "-";
                "-"; "-"; "-" ]
        | Sweep.Completed cell ->
            let r = cell.SX.mc_result in
            List.iter
              (fun (pr : Mix.program_result) ->
                Table.add_row t
                  [ Dtb.policy_name policy; pr.Mix.pr_name;
                    Table.cell_int pr.Mix.pr_dir_steps;
                    Table.cell_int pr.Mix.pr_cycles;
                    Printf.sprintf "%.3fx" pr.Mix.pr_slowdown;
                    Table.cell_int pr.Mix.pr_slices;
                    Printf.sprintf "%.4f" pr.Mix.pr_hit_ratio;
                    Table.cell_int pr.Mix.pr_dtb_misses;
                    Table.cell_int pr.Mix.pr_dtb_evictions ])
              r.Mix.mr_programs;
            Table.add_row t
              [ Dtb.policy_name policy; "(total)"; "";
                Table.cell_int r.Mix.mr_total_cycles; "";
                Printf.sprintf "%d sw/%d fl" r.Mix.mr_switches
                  r.Mix.mr_flushes;
                Printf.sprintf "%.4f" r.Mix.mr_hit_ratio; "";
                Table.cell_int r.Mix.mr_evictions ];
            (match trace_path with
            | None -> ()
            | Some path ->
                let path =
                  if List.length policies = 1 then path
                  else
                    let base = Filename.remove_extension path in
                    let ext = Filename.extension path in
                    Printf.sprintf "%s.%s%s" base (Dtb.policy_name policy) ext
                in
                let names asid =
                  match List.nth_opt r.Mix.mr_programs asid with
                  | Some pr -> pr.Mix.pr_name
                  | None -> Printf.sprintf "asid%d" asid
                in
                let oc = open_out path in
                output_string oc
                  (Trace.to_chrome ~names ~end_cycle:r.Mix.mr_total_cycles
                     r.Mix.mr_trace);
                close_out oc;
                Printf.printf "wrote %s (%d events, %d dropped)\n" path
                  (min (Trace.recorded r.Mix.mr_trace)
                     (Trace.capacity r.Mix.mr_trace))
                  (Trace.dropped r.Mix.mr_trace)))
      slots;
    Table.print t;
    match List.rev !quarantined with
    | [] -> ()
    | qs ->
        List.iter
          (fun (policy, (q : Sweep.quarantine)) ->
            Printf.eprintf
              "uhmc: cell %d (%s) quarantined after %d attempt(s): %s\n"
              q.Sweep.q_index (Dtb.policy_name policy) q.Sweep.q_attempts
              q.Sweep.q_reason)
          qs;
        exit 1
  in
  Cmd.v
    (Cmd.info "mix"
       ~doc:"Time-slice several programs over one shared DTB and report \
             per-program cycles, slowdown vs a solo run, and hit ratios \
             under each ownership policy.")
    Term.(
      const action $ programs_arg $ policies_arg $ quantum_arg
      $ scheduler_arg $ kind_arg $ fuse_arg $ trace_arg $ sets_arg
      $ assoc_arg $ jobs_arg $ journal_arg $ resume_arg $ cell_fuel_arg
      $ poison_arg)

(* -- load --------------------------------------------------------------------- *)

let load_cmd =
  let module Scheduler = Uhm_sched.Scheduler in
  let module Trace = Uhm_sched.Trace in
  let module Serve = Uhm_serve.Serve in
  let module LX = Uhm_serve.Experiment in
  let programs_arg =
    Arg.(value & opt_all string [ "fact_iter"; "gcd" ]
         & info [ "p"; "program" ] ~docv:"NAME"
             ~doc:"Built-in program for the template pool arrivals draw \
                   from (repeatable; default fact_iter and gcd).")
  in
  let policy_conv =
    let parse = function
      | "flush" -> Ok Dtb.Flush_on_switch
      | "tagged" -> Ok Dtb.Tagged
      | "partitioned" -> Ok Dtb.Partitioned
      | s -> Error (`Msg (Printf.sprintf "unknown policy %s" s))
    in
    Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Dtb.policy_name p))
  in
  let policies_arg =
    Arg.(value & opt_all policy_conv []
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"Shared-DTB ownership policy: flush, tagged, partitioned \
                   (repeatable; default all three).")
  in
  let rates_arg =
    Arg.(value & opt_all float []
         & info [ "rate" ] ~docv:"R"
             ~doc:"Offered load in jobs per million simulated cycles \
                   (repeatable; default 4, 12 and 40).")
  in
  let njobs_arg =
    Arg.(value & opt int 300
         & info [ "n"; "njobs" ] ~docv:"N"
             ~doc:"Arrivals offered per cell.")
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N" ~doc:"Arrival-stream seed.")
  in
  let slots_arg =
    Arg.(value & opt int 8
         & info [ "slots" ] ~docv:"N"
             ~doc:"ASID slots (resident-tenant cap; under partitioned at \
                   most the set count).")
  in
  let quantum_arg =
    Arg.(value & opt int 64
         & info [ "q"; "quantum" ] ~docv:"N"
             ~doc:"Scheduling quantum in DIR instructions.")
  in
  let scheduler_conv =
    let parse = function
      | "rr" -> Ok Scheduler.Round_robin
      | "srtf" -> Ok Scheduler.Shortest_remaining
      | s -> Error (`Msg (Printf.sprintf "unknown scheduler %s" s))
    in
    Arg.conv
      (parse, fun fmt s -> Format.pp_print_string fmt (Scheduler.policy_name s))
  in
  let scheduler_arg =
    Arg.(value & opt scheduler_conv Scheduler.Round_robin
         & info [ "scheduler" ] ~docv:"SCHED"
             ~doc:"rr (round-robin) or srtf (shortest remaining dir_steps \
                   first).")
  in
  let queue_cap_arg =
    Arg.(value & opt int 64
         & info [ "queue-cap" ] ~docv:"N"
             ~doc:"Admission-queue capacity; arrivals beyond it are shed \
                   (drop-tail).")
  in
  let shed_above_arg =
    Arg.(value & opt (some int) None
         & info [ "shed-above" ] ~docv:"N"
             ~doc:"Load shedding: also refuse arrivals while the queue \
                   holds at least $(docv) jobs.")
  in
  let bursty_arg =
    Arg.(value & flag
         & info [ "bursty" ]
             ~doc:"Markov-modulated arrivals: bursts at the offered rate \
                   separated by idle gaps, instead of memoryless Poisson.")
  in
  let burst_arg =
    Arg.(value & opt float 8.
         & info [ "burst" ] ~docv:"B"
             ~doc:"Mean burst length in jobs (with $(b,--bursty)).")
  in
  let idle_arg =
    Arg.(value & opt float 5000.
         & info [ "idle" ] ~docv:"CYCLES"
             ~doc:"Mean idle gap between bursts (with $(b,--bursty)).")
  in
  let economy_arg =
    Arg.(value & flag
         & info [ "economy" ]
             ~doc:"Enable the cold-ASID eviction economy (idle-time and \
                   footprint scoring).")
  in
  let evict_idle_arg =
    Arg.(value & opt int Serve.default_economy.Serve.evict_min_idle
         & info [ "evict-idle" ] ~docv:"TICKS"
             ~doc:"Economy: minimum idle time (DTB recency-clock ticks) \
                   before a slot may be evicted.")
  in
  let evict_watermark_arg =
    Arg.(value & opt float Serve.default_economy.Serve.evict_watermark
         & info [ "evict-watermark" ] ~docv:"F"
             ~doc:"Economy: score evictions only while resident entries \
                   exceed this fraction of tag capacity.")
  in
  let sets_arg =
    Arg.(value & opt int Dtb.paper_config.Dtb.sets
         & info [ "sets" ] ~docv:"N" ~doc:"DTB set count (power of two).")
  in
  let assoc_arg =
    Arg.(value & opt int Dtb.paper_config.Dtb.assoc
         & info [ "assoc" ] ~docv:"N" ~doc:"DTB ways per set.")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Domain count for the sweep pool (default: $(b,UHM_JOBS) \
                   or the recommended domain count).")
  in
  let poison_arg =
    Arg.(value & opt_all int []
         & info [ "poison-cell" ] ~docv:"IDX"
             ~doc:"Testing aid for the quarantine path: make the cell at \
                   index $(docv) fail on every attempt.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"PATH"
             ~doc:"Write each cell's Chrome trace_event JSON (the policy \
                   name and rate are inserted before the extension when \
                   the grid has several cells).")
  in
  let slo_arg =
    Arg.(value & opt_all int []
         & info [ "slo" ] ~docv:"BOUND"
             ~doc:"Report exact SLO attainment (completions within \
                   $(docv) cycles of arrival over all completions) as an \
                   extra column per bound (repeatable).")
  in
  let action programs policies rates njobs seed slots quantum scheduler kind
      fuse queue_cap shed_above bursty burst idle economy evict_idle
      evict_watermark sets assoc jobs trace_path slo_bounds journal resume
      cell_fuel poison =
    if programs = [] then begin
      prerr_endline "uhmc load: at least one -p NAME is required";
      exit 2
    end;
    let policies =
      if policies = [] then [ Dtb.Flush_on_switch; Dtb.Tagged; Dtb.Partitioned ]
      else policies
    in
    let rates = if rates = [] then LX.default_rates else rates in
    let config = { Dtb.paper_config with Dtb.sets; assoc } in
    let shape =
      if bursty then LX.Open_bursty { burst; idle } else LX.Open_poisson
    in
    let admission =
      { Serve.queue_capacity = queue_cap; shed_above }
    in
    let economy =
      if economy then
        Some { Serve.evict_min_idle = evict_idle; evict_watermark }
      else None
    in
    let named =
      List.map
        (fun name ->
          (name, load_dir ~file:None ~program:(Some name) ~fortran:false ~fuse))
        programs
    in
    let axes = LX.load_axes ~quanta:[ quantum ] ~rates ~policies () in
    let fingerprint =
      [ "uhmc load";
        "programs=" ^ String.concat "," programs;
        "policies=" ^ String.concat "," (List.map Dtb.policy_name policies);
        "rates=" ^ String.concat "," (List.map string_of_float rates);
        "njobs=" ^ string_of_int njobs;
        "seed=" ^ string_of_int seed;
        "slots=" ^ string_of_int slots;
        "quantum=" ^ string_of_int quantum;
        "scheduler=" ^ Scheduler.policy_name scheduler;
        "kind=" ^ Kind.name kind;
        "fuse=" ^ string_of_bool fuse;
        "shape=" ^ LX.shape_name shape;
        "queue_cap=" ^ string_of_int queue_cap;
        "shed_above="
        ^ (match shed_above with None -> "none" | Some n -> string_of_int n);
        "economy="
        ^ (match economy with
          | None -> "off"
          | Some e ->
              Printf.sprintf "idle=%d,watermark=%g" e.Serve.evict_min_idle
                e.Serve.evict_watermark);
        "sets=" ^ string_of_int sets;
        "assoc=" ^ string_of_int assoc;
        "cell_fuel="
        ^ (match cell_fuel with None -> "none" | Some f -> string_of_int f) ]
    in
    let setup =
      prepare_campaign ?journal ?resume ~campaign:"uhmc-load" ~fingerprint
        ~cells:(List.length axes) ()
    in
    let slots_out =
      LX.load_grid_slots ?domains:jobs ~scheduler ~quanta:[ quantum ] ~shape
        ~admission ?economy ~cached:setup.Campaign.cached
        ?cell_hook:setup.Campaign.cell_hook ?cell_fuel ~poison ~seed
        ~jobs:njobs ~slots ~kind ~policies ~rates ~config named
    in
    setup.Campaign.close ();
    let slo_bounds = List.sort_uniq compare slo_bounds in
    List.iter
      (fun b ->
        if b < 1 then begin
          prerr_endline "uhmc load: --slo bounds must be at least 1";
          exit 2
        end)
      slo_bounds;
    let t =
      Table.create
        ~columns:
          ([ ("policy", Table.Left); ("rate", Table.Right);
             ("jobs", Table.Right); ("done", Table.Right);
             ("shed", Table.Right); ("p50", Table.Right);
             ("p95", Table.Right); ("p99", Table.Right);
             ("qd p95", Table.Right); ("slowdown", Table.Right);
             ("thru/Mcyc", Table.Right); ("evict", Table.Right);
             ("hit ratio", Table.Right) ]
          @ List.map
              (fun b -> (Printf.sprintf "slo@%d" b, Table.Right))
              slo_bounds)
        ()
    in
    let quarantined = ref [] in
    List.iteri
      (fun i slot ->
        let policy, _, rate = List.nth axes i in
        match slot with
        | Sweep.Quarantined q ->
            quarantined := (policy, rate, q) :: !quarantined;
            Table.add_row t
              ([ Dtb.policy_name policy; Printf.sprintf "%g" rate;
                 "(quarantined)"; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-";
                 "-" ]
              @ List.map (fun _ -> "-") slo_bounds)
        | Sweep.Completed cell ->
            let s = cell.LX.lc_result.Serve.sv_summary in
            Table.add_row t
              ([ Dtb.policy_name policy; Printf.sprintf "%g" rate;
                 Table.cell_int s.Serve.s_jobs;
                 Table.cell_int s.Serve.s_completed;
                 Table.cell_int s.Serve.s_shed;
                 Table.cell_int s.Serve.s_p50;
                 Table.cell_int s.Serve.s_p95;
                 Table.cell_int s.Serve.s_p99;
                 Table.cell_int s.Serve.s_qd_p95;
                 Printf.sprintf "%.3fx" s.Serve.s_mean_slowdown;
                 Printf.sprintf "%.2f" s.Serve.s_throughput;
                 Table.cell_int s.Serve.s_evictions;
                 Printf.sprintf "%.4f" s.Serve.s_hit_ratio ]
              @ List.map
                  (fun bound ->
                    let _, _, attainment =
                      Serve.slo ~bound cell.LX.lc_result.Serve.sv_jobs
                    in
                    Printf.sprintf "%.3f" attainment)
                  slo_bounds);
            (match trace_path with
            | None -> ()
            | Some path ->
                let path =
                  if List.length axes = 1 then path
                  else
                    let base = Filename.remove_extension path in
                    let ext = Filename.extension path in
                    Printf.sprintf "%s.%s-r%g%s" base (Dtb.policy_name policy)
                      rate ext
                in
                let r = cell.LX.lc_result in
                let names asid = Printf.sprintf "slot%d" asid in
                let oc = open_out path in
                output_string oc
                  (Trace.to_chrome ~names
                     ~end_cycle:r.Serve.sv_summary.Serve.s_total_cycles
                     r.Serve.sv_trace);
                close_out oc;
                Printf.printf "wrote %s (%d events, %d dropped)\n" path
                  (min
                     (Trace.recorded r.Serve.sv_trace)
                     (Trace.capacity r.Serve.sv_trace))
                  (Trace.dropped r.Serve.sv_trace)))
      slots_out;
    Table.print t;
    match List.rev !quarantined with
    | [] -> ()
    | qs ->
        List.iter
          (fun (policy, rate, (q : Sweep.quarantine)) ->
            Printf.eprintf
              "uhmc: cell %d (%s, rate %g) quarantined after %d attempt(s): \
               %s\n"
              q.Sweep.q_index (Dtb.policy_name policy) rate q.Sweep.q_attempts
              q.Sweep.q_reason)
          qs;
        exit 1
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Serve an open stream of arriving jobs through a bounded pool \
             of ASID slots sharing one DTB, and report latency percentiles \
             and throughput per offered load.")
    Term.(
      const action $ programs_arg $ policies_arg $ rates_arg $ njobs_arg
      $ seed_arg $ slots_arg $ quantum_arg $ scheduler_arg $ kind_arg
      $ fuse_arg $ queue_cap_arg $ shed_above_arg $ bursty_arg $ burst_arg
      $ idle_arg $ economy_arg $ evict_idle_arg $ evict_watermark_arg
      $ sets_arg $ assoc_arg $ jobs_arg $ trace_arg $ slo_arg $ journal_arg
      $ resume_arg $ cell_fuel_arg $ poison_arg)

(* -- serve-chaos -------------------------------------------------------------- *)

let serve_chaos_cmd =
  let module Scheduler = Uhm_sched.Scheduler in
  let module Trace = Uhm_sched.Trace in
  let module Serve = Uhm_serve.Serve in
  let module Chaos = Uhm_serve.Chaos in
  let module LX = Uhm_serve.Experiment in
  let programs_arg =
    Arg.(value & opt_all string [ "fact_iter"; "string_out" ]
         & info [ "p"; "program" ] ~docv:"NAME"
             ~doc:"Built-in program for the template pool arrivals draw \
                   from (repeatable; default fact_iter and string_out; \
                   Fortran-S names start with ftn_).")
  in
  let policy_conv =
    let parse = function
      | "flush" -> Ok Dtb.Flush_on_switch
      | "tagged" -> Ok Dtb.Tagged
      | "partitioned" -> Ok Dtb.Partitioned
      | s -> Error (`Msg (Printf.sprintf "unknown policy %s" s))
    in
    Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Dtb.policy_name p))
  in
  let policies_arg =
    Arg.(value & opt_all policy_conv [ Dtb.Tagged ]
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"Shared-DTB ownership policy: flush, tagged, partitioned \
                   (repeatable; default tagged).")
  in
  let rates_arg =
    Arg.(value & opt_all float [ 4.0 ]
         & info [ "rate" ] ~docv:"R"
             ~doc:"Offered load in jobs per million simulated cycles \
                   (repeatable; default 4).")
  in
  let fault_rates_arg =
    Arg.(value & opt_all float []
         & info [ "fault-rate" ] ~docv:"F"
             ~doc:"Total per-INTERP-step injection probability, split \
                   evenly over the four fault classes (repeatable; \
                   default 0, 1e-5 and 1e-4; 0 is the fault-free \
                   control).")
  in
  let njobs_arg =
    Arg.(value & opt int 120
         & info [ "n"; "njobs" ] ~docv:"N" ~doc:"Arrivals offered per cell.")
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N" ~doc:"Arrival-stream seed.")
  in
  let fault_seed_arg =
    Arg.(value & opt int 4242
         & info [ "fault-seed" ] ~docv:"N"
             ~doc:"Injector seed (the same for every cell, so columns \
                   differ only in rate).")
  in
  let slots_arg =
    Arg.(value & opt int 4
         & info [ "slots" ] ~docv:"N"
             ~doc:"ASID slots (resident-tenant cap; under partitioned at \
                   most the set count).")
  in
  let quantum_arg =
    Arg.(value & opt int 64
         & info [ "q"; "quantum" ] ~docv:"N"
             ~doc:"Scheduling quantum in DIR instructions.")
  in
  let scheduler_conv =
    let parse = function
      | "rr" -> Ok Scheduler.Round_robin
      | "srtf" -> Ok Scheduler.Shortest_remaining
      | s -> Error (`Msg (Printf.sprintf "unknown scheduler %s" s))
    in
    Arg.conv
      (parse, fun fmt s -> Format.pp_print_string fmt (Scheduler.policy_name s))
  in
  let scheduler_arg =
    Arg.(value & opt scheduler_conv Scheduler.Round_robin
         & info [ "scheduler" ] ~docv:"SCHED"
             ~doc:"rr (round-robin) or srtf (shortest remaining dir_steps \
                   first).")
  in
  let queue_cap_arg =
    Arg.(value & opt int 64
         & info [ "queue-cap" ] ~docv:"N"
             ~doc:"Admission-queue capacity; arrivals beyond it are shed \
                   (drop-tail).")
  in
  let deadline_arg =
    Arg.(value & opt (some int) None
         & info [ "deadline" ] ~docv:"CYCLES"
             ~doc:"Per-job SLO bound: a job completing more than $(docv) \
                   cycles after arrival counts as a deadline miss.")
  in
  let retry_limit_arg =
    Arg.(value & opt int 2
         & info [ "retry-limit" ] ~docv:"N"
             ~doc:"Voided attempts a job may retry before it retires as \
                   failed.")
  in
  let backoff_arg =
    Arg.(value & opt int 4096
         & info [ "backoff" ] ~docv:"CYCLES"
             ~doc:"Base of the job-level exponential retry backoff.")
  in
  let checkpoint_arg =
    Arg.(value & opt int 1024
         & info [ "checkpoint-every" ] ~docv:"STEPS"
             ~doc:"Checkpoint cadence for memory-fault rollback (taken \
                   only when memory faults are possible).")
  in
  let brownout_arg =
    Arg.(value & flag
         & info [ "brownout" ]
             ~doc:"Enable the staged degradation controller (shed harder, \
                   admit as pure interpretation, quarantine the poisoned \
                   slot) with its default thresholds.")
  in
  let weight_arg =
    Arg.(value & opt_all float []
         & info [ "weight" ] ~docv:"W"
             ~doc:"Template-pick weight, one per -p in order (repeatable); \
                   omitted, picks are uniform.")
  in
  let sets_arg =
    Arg.(value & opt int Dtb.paper_config.Dtb.sets
         & info [ "sets" ] ~docv:"N" ~doc:"DTB set count (power of two).")
  in
  let assoc_arg =
    Arg.(value & opt int Dtb.paper_config.Dtb.assoc
         & info [ "assoc" ] ~docv:"N" ~doc:"DTB ways per set.")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Domain count for the sweep pool (default: $(b,UHM_JOBS) \
                   or the recommended domain count).")
  in
  let poison_arg =
    Arg.(value & opt_all int []
         & info [ "poison-cell" ] ~docv:"IDX"
             ~doc:"Testing aid for the quarantine path: make the cell at \
                   index $(docv) fail on every attempt.")
  in
  let action programs policies rates fault_rates njobs seed fault_seed slots
      quantum scheduler kind fuse queue_cap deadline retry_limit backoff
      checkpoint_every brownout weights sets assoc jobs journal resume
      cell_fuel poison =
    if programs = [] then begin
      prerr_endline "uhmc serve-chaos: at least one -p NAME is required";
      exit 2
    end;
    let fault_rates =
      if fault_rates = [] then LX.default_fault_rates else fault_rates
    in
    let weights = match weights with [] -> None | ws -> Some ws in
    (match weights with
    | Some ws when List.length ws <> List.length programs ->
        prerr_endline "uhmc serve-chaos: --weight count must match -p count";
        exit 2
    | _ -> ());
    let config = { Dtb.paper_config with Dtb.sets; assoc } in
    let admission = { Serve.queue_capacity = queue_cap; shed_above = None } in
    let brownout = if brownout then Some Chaos.default_brownout else None in
    let named =
      List.map
        (fun name ->
          let fortran =
            String.length name >= 4 && String.sub name 0 4 = "ftn_"
          in
          (name, load_dir ~file:None ~program:(Some name) ~fortran ~fuse))
        programs
    in
    let axes =
      LX.resilience_axes ~quanta:[ quantum ] ~rates ~fault_rates ~policies ()
    in
    let fingerprint =
      [ "uhmc serve-chaos";
        "programs=" ^ String.concat "," programs;
        "policies=" ^ String.concat "," (List.map Dtb.policy_name policies);
        "rates=" ^ String.concat "," (List.map (Printf.sprintf "%h") rates);
        "fault_rates="
        ^ String.concat "," (List.map (Printf.sprintf "%h") fault_rates);
        "njobs=" ^ string_of_int njobs;
        "seed=" ^ string_of_int seed;
        "fault_seed=" ^ string_of_int fault_seed;
        "slots=" ^ string_of_int slots;
        "quantum=" ^ string_of_int quantum;
        "scheduler=" ^ Scheduler.policy_name scheduler;
        "kind=" ^ Kind.name kind;
        "fuse=" ^ string_of_bool fuse;
        "queue_cap=" ^ string_of_int queue_cap;
        "deadline="
        ^ (match deadline with None -> "none" | Some d -> string_of_int d);
        "retry_limit=" ^ string_of_int retry_limit;
        "backoff=" ^ string_of_int backoff;
        "checkpoint_every=" ^ string_of_int checkpoint_every;
        "brownout=" ^ string_of_bool (brownout <> None);
        "weights=" ^ Uhm_serve.Arrival.weights_name weights;
        "sets=" ^ string_of_int sets;
        "assoc=" ^ string_of_int assoc;
        "cell_fuel="
        ^ (match cell_fuel with None -> "none" | Some f -> string_of_int f) ]
    in
    let setup =
      prepare_campaign ?journal ?resume ~campaign:"uhmc-serve-chaos"
        ~fingerprint ~cells:(List.length axes) ()
    in
    let slots_out =
      LX.resilience_grid_slots ?domains:jobs ~scheduler ~quanta:[ quantum ]
        ~admission ~cached:setup.Campaign.cached
        ?cell_hook:setup.Campaign.cell_hook ?cell_fuel ?weights ~retry_limit
        ~backoff ~checkpoint_every ?deadline ?brownout ~fault_seed ~poison
        ~seed ~jobs:njobs ~slots ~kind ~policies ~fault_rates ~rates ~config
        named
    in
    setup.Campaign.close ();
    let t =
      Table.create
        ~columns:
          [ ("policy", Table.Left); ("frate", Table.Right);
            ("rate", Table.Right); ("jobs", Table.Right);
            ("done", Table.Right); ("failed", Table.Right);
            ("shed", Table.Right); ("attain", Table.Right);
            ("goodput", Table.Right); ("inj", Table.Right);
            ("det", Table.Right); ("retries", Table.Right);
            ("p99", Table.Right); ("stage", Table.Right) ]
        ()
    in
    let quarantined = ref [] in
    List.iteri
      (fun i slot ->
        let policy, _, frate, rate = List.nth axes i in
        match slot with
        | Sweep.Quarantined q ->
            quarantined := (policy, frate, rate, q) :: !quarantined;
            Table.add_row t
              [ Dtb.policy_name policy; Printf.sprintf "%g" frate;
                Printf.sprintf "%g" rate; "(quarantined)"; "-"; "-"; "-";
                "-"; "-"; "-"; "-"; "-"; "-"; "-" ]
        | Sweep.Completed cell ->
            let s = cell.LX.rc_result.Chaos.cv_serve.Serve.sv_summary in
            let c = cell.LX.rc_result.Chaos.cv_summary in
            Table.add_row t
              [ Dtb.policy_name policy; Printf.sprintf "%g" frate;
                Printf.sprintf "%g" rate;
                Table.cell_int s.Serve.s_jobs;
                Table.cell_int s.Serve.s_completed;
                Table.cell_int c.Chaos.cs_failed_jobs;
                Table.cell_int s.Serve.s_shed;
                Printf.sprintf "%.3f" c.Chaos.cs_attainment;
                Printf.sprintf "%.2f" c.Chaos.cs_goodput;
                Table.cell_int c.Chaos.cs_injected;
                Table.cell_int c.Chaos.cs_detected;
                Table.cell_int c.Chaos.cs_job_retries;
                Table.cell_int s.Serve.s_p99;
                Table.cell_int c.Chaos.cs_max_stage ])
      slots_out;
    Table.print t;
    match List.rev !quarantined with
    | [] -> ()
    | qs ->
        List.iter
          (fun (policy, frate, rate, (q : Sweep.quarantine)) ->
            Printf.eprintf
              "uhmc: cell %d (%s, fault rate %g, rate %g) quarantined after \
               %d attempt(s): %s\n"
              q.Sweep.q_index (Dtb.policy_name policy) frate rate
              q.Sweep.q_attempts q.Sweep.q_reason)
          qs;
        exit 1
  in
  Cmd.v
    (Cmd.info "serve-chaos"
       ~doc:"The open-arrival service under seeded fault injection: \
             deadlines, retry with backoff, brownout degradation.  Exit \
             codes: 0 all cells clean; 1 a cell was quarantined (a \
             no-wrong-answers invariant violation is a quarantine); 2 \
             malformed input or a resume-journal fingerprint mismatch.")
    Term.(
      const action $ programs_arg $ policies_arg $ rates_arg $ fault_rates_arg
      $ njobs_arg $ seed_arg $ fault_seed_arg $ slots_arg $ quantum_arg
      $ scheduler_arg $ kind_arg $ fuse_arg $ queue_cap_arg $ deadline_arg
      $ retry_limit_arg $ backoff_arg $ checkpoint_arg $ brownout_arg
      $ weight_arg $ sets_arg $ assoc_arg $ jobs_arg $ journal_arg
      $ resume_arg $ cell_fuel_arg $ poison_arg)

(* -- faults ------------------------------------------------------------------- *)

let faults_cmd =
  let module Injector = Uhm_fault.Injector in
  let module FExp = Uhm_fault.Experiment in
  let module Resilient = Uhm_fault.Resilient in
  let programs_arg =
    Arg.(value & opt_all string [ "fact_iter"; "gcd" ]
         & info [ "p"; "program" ] ~docv:"NAME"
             ~doc:"Built-in program to include in the mix (repeatable; \
                   default fact_iter and gcd).")
  in
  let class_conv =
    let parse s =
      match Injector.class_of_name s with
      | Some c -> Ok c
      | None ->
          Error
            (`Msg
              (Printf.sprintf
                 "unknown fault class %s (dtb-tag, psder-word, translator, \
                  mem-word)"
                 s))
    in
    Arg.conv (parse, fun fmt c -> Format.pp_print_string fmt (Injector.class_name c))
  in
  let classes_arg =
    Arg.(value & opt_all class_conv []
         & info [ "c"; "class" ] ~docv:"CLASS"
             ~doc:"Fault class: dtb-tag, psder-word, translator, mem-word \
                   (repeatable; default all four).")
  in
  let rates_arg =
    Arg.(value & opt_all float []
         & info [ "r"; "rate" ] ~docv:"RATE"
             ~doc:"Fault probability per DIR instruction step (repeatable; \
                   default 0, 1e-4, 1e-3, 1e-2).")
  in
  let policy_conv =
    let parse = function
      | "flush" -> Ok Dtb.Flush_on_switch
      | "tagged" -> Ok Dtb.Tagged
      | "partitioned" -> Ok Dtb.Partitioned
      | s -> Error (`Msg (Printf.sprintf "unknown policy %s" s))
    in
    Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Dtb.policy_name p))
  in
  let policies_arg =
    Arg.(value & opt_all policy_conv []
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"Shared-DTB ownership policy: flush, tagged, partitioned \
                   (repeatable; default all three).")
  in
  let quantum_arg =
    Arg.(value & opt int 64
         & info [ "q"; "quantum" ] ~docv:"N"
             ~doc:"Scheduling quantum in DIR instructions.")
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed (cells derive \
             their injector seeds from it).")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Domain count for the sweep pool (default: $(b,UHM_JOBS) \
                   or the recommended domain count).")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"PATH"
             ~doc:"Also write the campaign points as a JSON array to $(docv).")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"PATH"
             ~doc:"Also write the campaign points as CSV to $(docv).")
  in
  let cell_fuel_faults_arg =
    Arg.(value & opt (some int) None
         & info [ "cell-fuel" ] ~docv:"N"
             ~doc:"Deterministic per-cell step budget: each simulated \
                   machine in a cell gets $(docv) cycles of fuel; a cell \
                   that exhausts it fails and is quarantined after the \
                   retry budget, instead of wedging the campaign.")
  in
  let action programs classes rates policies quantum seed jobs json csv
      journal resume cell_fuel =
    let classes = if classes = [] then Injector.all_classes else classes in
    let rates = if rates = [] then FExp.default_rates else rates in
    let policies =
      if policies = [] then [ Dtb.Flush_on_switch; Dtb.Tagged; Dtb.Partitioned ]
      else policies
    in
    let named =
      List.map
        (fun name ->
          (name, load_dir ~file:None ~program:(Some name) ~fortran:false
                   ~fuse:false))
        programs
    in
    let axes =
      FExp.fault_axes ~quanta:[ quantum ] ~classes ~rates ~policies
        ~configs:[ Dtb.paper_config ] ()
    in
    let fingerprint =
      [ "uhmc faults";
        "programs=" ^ String.concat "," programs;
        "classes=" ^ String.concat "," (List.map Injector.class_name classes);
        "rates="
        ^ String.concat "," (List.map (Printf.sprintf "%h") rates);
        "policies=" ^ String.concat "," (List.map Dtb.policy_name policies);
        "quantum=" ^ string_of_int quantum;
        "seed=" ^ string_of_int seed;
        "cell_fuel="
        ^ (match cell_fuel with None -> "none" | Some f -> string_of_int f) ]
    in
    let setup =
      prepare_campaign ?journal ?resume ~campaign:"uhmc-faults" ~fingerprint
        ~cells:(List.length axes) ()
    in
    let slots =
      FExp.fault_grid_slots ?domains:jobs ~quanta:[ quantum ] ~seed
        ~cached:setup.Campaign.cached ?cell_hook:setup.Campaign.cell_hook
        ?cell_fuel ~kind:Kind.Huffman ~classes ~rates ~policies
        ~configs:[ Dtb.paper_config ] named
    in
    setup.Campaign.close ();
    let points =
      List.filter_map
        (function Sweep.Completed p -> Some p | Sweep.Quarantined _ -> None)
        slots
    in
    let quarantined =
      List.concat
        (List.map2
           (fun (cls, rate, policy, _, _) -> function
             | Sweep.Completed _ -> []
             | Sweep.Quarantined q -> [ (cls, rate, policy, q) ])
           axes slots)
    in
    let t =
      Table.create
        ~columns:
          [ ("class", Table.Left); ("rate", Table.Right);
            ("policy", Table.Left); ("recovered", Table.Left);
            ("overhead", Table.Right); ("injected", Table.Right);
            ("detected", Table.Right); ("retries", Table.Right);
            ("rollbacks", Table.Right); ("downgrades", Table.Right) ]
        ()
    in
    let row (p : FExp.point) =
      [ Injector.class_name p.FExp.fp_class;
        Printf.sprintf "%g" p.FExp.fp_rate;
        Dtb.policy_name p.FExp.fp_policy;
        (if p.FExp.fp_recovered_ok then "yes" else "NO");
        Printf.sprintf "%.4fx" p.FExp.fp_overhead;
        Table.cell_int p.FExp.fp_injected;
        Table.cell_int p.FExp.fp_detected;
        Table.cell_int p.FExp.fp_retries;
        Table.cell_int p.FExp.fp_rollbacks;
        Table.cell_int p.FExp.fp_downgrades ]
    in
    List.iter2
      (fun (cls, rate, policy, _, _) -> function
        | Sweep.Completed p -> Table.add_row t (row p)
        | Sweep.Quarantined _ ->
            Table.add_row t
              [ Injector.class_name cls; Printf.sprintf "%g" rate;
                Dtb.policy_name policy; "(quarantined)"; "-"; "-"; "-"; "-";
                "-"; "-" ])
      axes slots;
    Table.print t;
    (match csv with
    | None -> ()
    | Some path ->
        let header =
          [ "class"; "rate"; "policy"; "quantum"; "seed"; "recovered";
            "overhead"; "cycles"; "baseline_cycles"; "injected"; "detected";
            "retries"; "rollbacks"; "downgrades" ]
        in
        let rows =
          List.map
            (fun (p : FExp.point) ->
              [ Injector.class_name p.FExp.fp_class;
                Printf.sprintf "%g" p.FExp.fp_rate;
                Dtb.policy_name p.FExp.fp_policy;
                string_of_int p.FExp.fp_quantum;
                string_of_int p.FExp.fp_seed;
                string_of_bool p.FExp.fp_recovered_ok;
                Printf.sprintf "%.6f" p.FExp.fp_overhead;
                string_of_int
                  p.FExp.fp_result.Uhm_fault.Resilient.rr_total_cycles;
                string_of_int p.FExp.fp_baseline_cycles;
                string_of_int p.FExp.fp_injected;
                string_of_int p.FExp.fp_detected;
                string_of_int p.FExp.fp_retries;
                string_of_int p.FExp.fp_rollbacks;
                string_of_int p.FExp.fp_downgrades ])
            points
        in
        let oc = open_out path in
        output_string oc (Uhm_report.Csv.render ~header rows);
        close_out oc;
        Printf.printf "wrote %s (%d points)\n" path (List.length points));
    (match json with
    | None -> ()
    | Some path ->
        let point_json (p : FExp.point) =
          Printf.sprintf
            "  {\"class\": \"%s\", \"rate\": %g, \"policy\": \"%s\", \
             \"quantum\": %d, \"seed\": %d, \"recovered\": %b, \
             \"overhead\": %.6f, \"cycles\": %d, \"baseline_cycles\": %d, \
             \"injected\": %d, \"detected\": %d, \"retries\": %d, \
             \"rollbacks\": %d, \"downgrades\": %d}"
            (Injector.class_name p.FExp.fp_class)
            p.FExp.fp_rate
            (Dtb.policy_name p.FExp.fp_policy)
            p.FExp.fp_quantum p.FExp.fp_seed p.FExp.fp_recovered_ok
            p.FExp.fp_overhead
            p.FExp.fp_result.Uhm_fault.Resilient.rr_total_cycles
            p.FExp.fp_baseline_cycles p.FExp.fp_injected p.FExp.fp_detected
            p.FExp.fp_retries p.FExp.fp_rollbacks p.FExp.fp_downgrades
        in
        let oc = open_out path in
        output_string oc
          ("[\n" ^ String.concat ",\n" (List.map point_json points) ^ "\n]\n");
        close_out oc;
        Printf.printf "wrote %s (%d points)\n" path (List.length points));
    List.iter
      (fun (cls, rate, policy, (q : Sweep.quarantine)) ->
        Printf.eprintf
          "uhmc: cell %d (class=%s rate=%g policy=%s) quarantined after %d \
           attempt(s): %s\n"
          q.Sweep.q_index (Injector.class_name cls) rate
          (Dtb.policy_name policy) q.Sweep.q_attempts q.Sweep.q_reason)
      quarantined;
    let bad =
      List.filter (fun (p : FExp.point) -> not p.FExp.fp_recovered_ok) points
    in
    List.iter
      (fun (p : FExp.point) ->
        Printf.eprintf
          "uhmc: recovery FAILED: class=%s rate=%g policy=%s seed=%d\n"
          (Injector.class_name p.FExp.fp_class)
          p.FExp.fp_rate
          (Dtb.policy_name p.FExp.fp_policy)
          p.FExp.fp_seed)
      bad;
    if bad = [] && quarantined = [] then
      Printf.printf
        "recovery invariant holds at all %d campaign points\n"
        (List.length points)
    else exit 1
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Run a fault-injection campaign over the resilience subsystem: \
             program mix x fault class x rate x DTB policy, checking that \
             detection and recovery reproduce the fault-free final state \
             at every point and reporting the cycle overhead.")
    Term.(
      const action $ programs_arg $ classes_arg $ rates_arg $ policies_arg
      $ quantum_arg $ seed_arg $ jobs_arg $ json_arg $ csv_arg
      $ journal_arg $ resume_arg $ cell_fuel_faults_arg)

(* -- campaign ----------------------------------------------------------------- *)

let campaign_cmd =
  let module Journal = Uhm_campaign.Journal in
  let compact_cmd =
    let journal_file_arg =
      Arg.(required & pos 0 (some file) None
           & info [] ~docv:"JOURNAL"
               ~doc:"Campaign journal file to compact in place.")
    in
    let action path =
      match Journal.compact ~path with
      | Ok c ->
          Printf.printf
            "compacted %s: %d record(s) kept, %d superseded record(s) \
             retired (%d bytes)\n"
            path c.Journal.c_kept c.Journal.c_retired c.Journal.c_valid_bytes
      | Error e ->
          Printf.eprintf "uhmc: error: cannot compact %s: %s\n" path
            (Journal.load_error_message e);
          exit 2
    in
    Cmd.v
      (Cmd.info "compact"
         ~doc:"Rewrite a campaign journal keeping only the last record of \
               each cell (exactly the records a resume uses), dropping \
               superseded lines from earlier resumes.  Crash-safe: the \
               compacted file is fsync'd and atomically renamed over the \
               original.  Resuming from the compacted journal reproduces \
               a byte-identical report.")
      Term.(const action $ journal_file_arg)
  in
  Cmd.group
    (Cmd.info "campaign"
       ~doc:"Maintenance of crash-safe campaign journals.")
    [ compact_cmd ]

(* -- suite -------------------------------------------------------------------- *)

let suite_cmd =
  let action () =
    let t =
      Table.create
        ~columns:
          [ ("name", Table.Left); ("class", Table.Left);
            ("description", Table.Left) ]
        ()
    in
    List.iter
      (fun e ->
        Table.add_row t
          [ e.Suite.name;
            (match e.Suite.loopiness with
            | `Tight -> "tight"
            | `Mixed -> "mixed"
            | `Flat -> "flat");
            e.Suite.description ])
      Suite.all;
    List.iter
      (fun e ->
        Table.add_row t
          [ e.Uhm_ftn.Suite.name; "fortran"; e.Uhm_ftn.Suite.description ])
      Uhm_ftn.Suite.all;
    Table.print t
  in
  Cmd.v (Cmd.info "suite" ~doc:"List the built-in benchmark programs.")
    Term.(const action $ const ())

let () =
  let doc = "universal host machine with dynamic translation (Rau 1978)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "uhmc" ~doc)
          [ compile_cmd; run_cmd; encode_cmd; trace_cmd; calibrate_cmd;
            suite_cmd; perf_cmd; mix_cmd; load_cmd; serve_chaos_cmd; faults_cmd;
            campaign_cmd ]))
