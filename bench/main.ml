(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the ablation studies listed in DESIGN.md, and a set of
   Bechamel micro-benchmarks of the substrate.

   Usage: main.exe [-j N] [--journal PATH] [--resume PATH] [target ...]
   Targets: table1 table2 table3 figure1 figure2 figure3 figure4
            model-vs-sim encodings assoc alloc crossover assist blocks
            languages summary datapath levels mix locality micro perf
            load resilience all
   No arguments = everything except micro, perf, load and resilience.

   --journal PATH records every completed cell of the campaign-shaped
   targets (figure2, model-vs-sim, assoc, alloc, crossover, languages,
   locality, summary, mix, faults, load, resilience) to per-target
   fsync'd JSON-lines journals derived from PATH ("out.jsonl"
   -> "out.summary.jsonl", ...); --resume PATH serves already-journaled
   cells instead of recomputing them, so "--journal F --resume F" can be
   re-run after a mid-run kill until the report completes, byte-identical
   to an uninterrupted run.  A journal resumed often enough to accumulate
   superseded records is compacted in place on the next resume.
   A journal from a different configuration is a hard error (exit 2).
   A cell that keeps failing is retried and then quarantined: its row is
   marked, the rest of the report completes, and the exit status is 1.

   Grid-shaped targets (figure2, model-vs-sim, assoc, alloc, crossover,
   languages, summary, locality) evaluate their points through the
   Sweep worker pool; -j N (or UHM_JOBS=N) sets the domain count, the
   default is Domain.recommended_domain_count.  Output is byte-identical
   at any domain count.

   The perf target measures host-side simulator throughput (wall time,
   simulated cycles per second) and writes BENCH_simulator.json in the
   current directory.  Environment knobs: UHM_PERF_RUNS (min runs per
   sample), UHM_PERF_SECONDS (min seconds per sample), UHM_PERF_OUT
   (output path), UHM_PERF_SWEEP (0 skips the parallel-sweep timing),
   UHM_PERF_SWEEP_REPEATS (timings per wall-clock point, default 2).

   The load target records the open-arrival saturation study (lib/serve):
   sojourn percentiles vs offered load under each DTB sharing policy,
   written to the same BENCH_simulator.json as a "load" section.  The
   resilience target records the fault-tolerant serving study: SLO
   attainment, goodput and p99 degradation vs injected fault rate, a
   schema-v5 "resilience" section of the same file.  perf, load and
   resilience each rewrite only their own section, preserving the
   others'.  UHM_LOAD_JOBS / UHM_RESILIENCE_JOBS set the arrivals per
   cell (defaults 400 / 150); UHM_PERF_OUT names the file for all. *)

module Table = Uhm_report.Table
module Kind = Uhm_encoding.Kind
module Codec = Uhm_encoding.Codec
module Model = Uhm_perfmodel.Model
module Suite = Uhm_workload.Suite
module Locality = Uhm_workload.Locality
module Tracegen = Uhm_workload.Tracegen
module Dtb = Uhm_core.Dtb
module U = Uhm_core.Uhm
module Experiment = Uhm_core.Experiment
module Sweep = Uhm_core.Sweep
module Machine = Uhm_machine.Machine
module Asm = Uhm_machine.Asm
module SF = Uhm_machine.Short_format
module Isa = Uhm_dir.Isa

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* -j N from the command line; None defers to UHM_JOBS / the core count
   via Sweep.default_domains.  Tables are rendered from the sweep results
   in submission order, so the output does not depend on this value. *)
let jobs : int option ref = ref None

let sweep_map f xs = Sweep.map ?domains:!jobs f xs

module Campaign = Uhm_campaign.Campaign

(* --journal PATH / --resume PATH from the command line; each
   campaign-shaped target derives its own file from them. *)
let journal_path : string option ref = ref None
let resume_path : string option ref = ref None

(* quarantined cells across all targets; a non-empty count fails the run
   (exit 1) after every report has been printed *)
let quarantined_cells = ref 0

let campaign_setup ~target ~fingerprint ~cells =
  let derive =
    Option.map (fun path ->
        let base = Filename.remove_extension path in
        let ext = Filename.extension path in
        Printf.sprintf "%s.%s%s" base target ext)
  in
  let journal = derive !journal_path and resume = derive !resume_path in
  match
    Campaign.prepare ?journal ?resume ~campaign:("bench-" ^ target)
      ~fingerprint ~cells ()
  with
  | setup ->
      if setup.Campaign.resumed > 0 then
        Printf.eprintf "bench: %s: %d of %d cells served from the journal\n%!"
          target setup.Campaign.resumed cells;
      setup
  | exception Campaign.Mismatch msg ->
      Printf.eprintf "bench: error: %s\n" msg;
      exit 2

let dtb_configs_fingerprint configs =
  "configs="
  ^ String.concat ","
      (List.map
         (fun (c : Dtb.config) ->
           Printf.sprintf "%d.%d.%d.%d" c.Dtb.sets c.Dtb.assoc
             c.Dtb.unit_words c.Dtb.overflow_blocks)
         configs)

let note_quarantine ~target (q : Sweep.quarantine) =
  incr quarantined_cells;
  Printf.eprintf "bench: %s: cell %d quarantined after %d attempt(s): %s\n%!"
    target q.Sweep.q_index q.Sweep.q_attempts q.Sweep.q_reason

let compile name = Suite.compile (Suite.find name)

let getenv_num name of_string default =
  match Sys.getenv_opt name with
  | Some s -> (match of_string s with Some v -> v | None -> default)
  | None -> default

let bench_json_path () =
  Option.value ~default:"BENCH_simulator.json" (Sys.getenv_opt "UHM_PERF_OUT")

(* Representative programs: one loop-dominated, one call-dominated, one
   low-locality. *)
let representative = [ "fact_iter"; "fib_rec"; "flat_straightline" ]

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section
    "Table 1: one operation at three levels of representation (paper Table 1)";
  print_endline
    "The same computation -- fetch a variable and add it to the running\n\
     value -- expressed as (a) the PSDER call sequence the dynamic\n\
     translator emits, (b) an unencoded word-aligned DIR instruction\n\
     (PDP-11-like fields), and (c) the bit-packed DIR format (S/360-RX-like\n\
     density).\n";
  (* a DIR program containing a single fused Loadadd 0,3 *)
  let p =
    Uhm_dir.Program.make ~name:"table1"
      ~code:[| Isa.instr ~a:0 ~b:3 Isa.Loadadd; Isa.instr Isa.Halt |]
      ~entry:0
      ~contours:
        [|
          { Uhm_dir.Program.id = 0; name = "<main>"; depth = 0; n_args = 0;
            n_locals = 4; max_offset = 3 };
        |]
      ()
  in
  let psder_words =
    [
      "push #0        (static hops)";
      "push #3        (frame offset)";
      "call @loadadd  (semantic routine)";
      "interp <next>  (successor DIR address)";
    ]
  in
  let t =
    Table.create
      ~columns:
        [ ("representation", Table.Left); ("content", Table.Left);
          ("size", Table.Right) ]
      ()
  in
  List.iteri
    (fun i w ->
      Table.add_row t
        [ (if i = 0 then "PSDER sequence" else ""); w;
          (if i = 0 then
             Printf.sprintf "%d bits"
               (List.length psder_words * SF.bits_per_word)
           else "") ])
    psder_words;
  Table.add_rule t;
  let size kind = (Codec.encode kind p).Codec.size_bits in
  let word16_one = size Kind.Word16 - 16 (* minus the halt *) in
  let packed_all = size Kind.Packed in
  let packed_halt = 6 (* opcode only *) in
  Table.add_row t
    [ "word16 (PDP-11-like)"; "loadadd | level | offset";
      Printf.sprintf "%d bits" word16_one ];
  Table.add_row t
    [ "packed (RX-like)"; "6-bit opcode + packed level/offset";
      Printf.sprintf "%d bits" (packed_all - packed_halt) ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Tables 2 and 3                                                      *)
(* ------------------------------------------------------------------ *)

let print_grid ~title ~paper ~regenerated ~general =
  section title;
  let t =
    Table.create
      ~columns:
        (("d \\ x", Table.Left)
        :: List.map (fun x -> (string_of_int x, Table.Right)) Model.table_cols)
      ()
  in
  List.iteri
    (fun i d ->
      Table.add_row t
        (Printf.sprintf "%d (paper)" d
        :: List.map Table.cell_float (Array.to_list paper.(i)));
      Table.add_row t
        (Printf.sprintf "%d (regen)" d
        :: List.map Table.cell_float (Array.to_list regenerated.(i)));
      Table.add_row t
        (Printf.sprintf "%d (model)" d
        :: List.map Table.cell_float (Array.to_list general.(i)));
      Table.add_rule t)
    Model.table_rows;
  Table.print t;
  print_endline
    "(regen) uses the report's printed closed forms and must match (paper)\n\
     exactly; (model) evaluates the general T1/T2/T3 equations at the stated\n\
     parameter values (tau_D=2, tau2=10, g=1.5d, s1=3, s2=1, h_c=0.9,\n\
     h_D=0.8) -- the 1978 report's printed arithmetic differs from its own\n\
     parameter list; see EXPERIMENTS.md."

let general_grid f =
  Array.of_list
    (List.map
       (fun d ->
         Array.of_list
           (List.map
              (fun x ->
                f (Model.paper_defaults ~d:(float_of_int d) ~x:(float_of_int x)))
              Model.table_cols))
       Model.table_rows)

let table2 () =
  print_grid
    ~title:
      "Table 2: % increase in DIR interpretation time, DTB store used as a \
       plain instruction cache (F1)"
    ~paper:Model.paper_table2
    ~regenerated:(Model.regenerate_table2 ())
    ~general:(general_grid Model.f1)

let table3 () =
  print_grid
    ~title:
      "Table 3: % increase in DIR interpretation time from not using a DTB \
       (F2)"
    ~paper:Model.paper_table3
    ~regenerated:(Model.regenerate_table3 ())
    ~general:(general_grid Model.f2)

(* ------------------------------------------------------------------ *)
(* Figure 1: the space of representations, measured                    *)
(* ------------------------------------------------------------------ *)

let figure1 () =
  section
    "Figure 1: the space of program representations (measured size and time)";
  List.iter
    (fun name ->
      let entry = Suite.find name in
      let points = Experiment.figure1_points ~name (Suite.parse entry) in
      Printf.printf "\nprogram: %s\n" name;
      let fastest =
        List.fold_left
          (fun acc pt -> min acc pt.Experiment.sp_total_cycles)
          max_int points
      in
      let t =
        Table.create
          ~columns:
            [ ("representation", Table.Left); ("semantic level", Table.Left);
              ("encoding", Table.Left); ("size", Table.Right);
              ("total cycles", Table.Right); ("rel. time", Table.Right) ]
          ()
      in
      List.iter
        (fun pt ->
          Table.add_row t
            [ pt.Experiment.sp_label; pt.Experiment.sp_semantic_level;
              pt.Experiment.sp_encoding;
              Table.cell_bytes ((pt.Experiment.sp_size_bits + 7) / 8);
              Table.cell_int pt.Experiment.sp_total_cycles;
              Table.cell_float
                (float_of_int pt.Experiment.sp_total_cycles
                /. float_of_int fastest) ])
        points;
      Table.print t)
    [ "fact_iter"; "gcd" ];
  print_endline
    "Size falls with the degree of encoding (rightward in the paper's\n\
     figure) while interpretation time rises; the DER corner is fastest\n\
     only while it fits the fast store."

(* ------------------------------------------------------------------ *)
(* Figure 2: DTB organisation, validated behaviourally                 *)
(* ------------------------------------------------------------------ *)

let figure2 () =
  section "Figure 2: DTB behaviour across capacities (hit ratio)";
  let t =
    Table.create
      ~columns:
        (("program", Table.Left)
        :: List.map
             (fun c ->
               ( Table.cell_bytes
                   (Dtb.config_capacity_words c * SF.bits_per_word / 8),
                 Table.Right ))
             (Experiment.capacity_configs ()))
      ()
  in
  let configs = Experiment.capacity_configs () in
  let programs =
    [ "fact_iter"; "fib_rec"; "quicksort"; "dispatch"; "flat_straightline" ]
  in
  let fingerprint =
    [ "bench figure2"; "programs=" ^ String.concat "," programs;
      dtb_configs_fingerprint configs ]
  in
  let setup =
    campaign_setup ~target:"figure2" ~fingerprint
      ~cells:(List.length programs * List.length configs)
  in
  let grid =
    Experiment.dtb_grid_slots ?domains:!jobs ~cached:setup.Campaign.cached
      ?cell_hook:setup.Campaign.cell_hook ~kind:Kind.Huffman ~configs
      (List.map (fun name -> (name, compile name)) programs)
  in
  setup.Campaign.close ();
  List.iter
    (fun (name, points) ->
      Table.add_row t
        (name
        :: List.map
             (function
               | Sweep.Completed pt ->
                   Table.cell_pct ~decimals:2 pt.Experiment.dp_hit_ratio
               | Sweep.Quarantined q ->
                   note_quarantine ~target:"figure2" q;
                   "(quar)")
             points))
    grid;
  Table.print t;
  print_endline
    "The working set saturates each program's curve (principle of locality);\n\
     flat_straightline is the adversarial case."

(* ------------------------------------------------------------------ *)
(* Figure 3: UHM organisation, validated by per-unit activity          *)
(* ------------------------------------------------------------------ *)

let figure3 () =
  section "Figure 3: per-unit activity of the UHM (cycles by component)";
  let t =
    Table.create
      ~columns:
        [ ("program/strategy", Table.Left); ("total", Table.Right);
          ("dir fetch", Table.Right); ("decode (d)", Table.Right);
          ("semantic (x)", Table.Right); ("translate (g)", Table.Right);
          ("IU2+DTB", Table.Right) ]
      ()
  in
  List.iter
    (fun name ->
      let p = compile name in
      List.iter
        (fun strategy ->
          let r = U.run ~strategy ~kind:Kind.Huffman p in
          let s = r.U.machine_stats in
          let cat c = s.Machine.cat_cycles.(Machine.category_index c) in
          let iu2 =
            r.U.cycles - s.Machine.dir_fetch_cycles - cat Asm.Decode
            - cat Asm.Semantic - cat Asm.Translate
          in
          Table.add_row t
            [ Printf.sprintf "%s/%s" name (U.strategy_name strategy);
              Table.cell_int r.U.cycles;
              Table.cell_int s.Machine.dir_fetch_cycles;
              Table.cell_int (cat Asm.Decode);
              Table.cell_int (cat Asm.Semantic);
              Table.cell_int (cat Asm.Translate);
              Table.cell_int iu2 ])
        [ U.Interp; U.Dtb_strategy Dtb.paper_config ];
      Table.add_rule t)
    representative;
  Table.print t;
  print_endline
    "With the DTB, fetch and decode all but vanish: \"the UHM [spends] all\n\
     its time performing computation related to the semantics of the DIR\n\
     program instead of performing overhead tasks\" (paper, section 6.2)."

(* ------------------------------------------------------------------ *)
(* Figure 4: the INTERP instruction's two paths                        *)
(* ------------------------------------------------------------------ *)

let figure4 () =
  section "Figure 4: INTERP flow (hit path vs miss/translate path)";
  let t =
    Table.create
      ~columns:
        [ ("program", Table.Left); ("INTERPs", Table.Right);
          ("hits", Table.Right); ("misses", Table.Right);
          ("hit ratio", Table.Right); ("evictions", Table.Right);
          ("overflow blocks", Table.Right); ("d+g per miss", Table.Right) ]
      ()
  in
  List.iter
    (fun name ->
      let p = compile name in
      let r =
        U.run ~strategy:(U.Dtb_strategy Dtb.paper_config) ~kind:Kind.Huffman p
      in
      let s = r.U.machine_stats in
      let misses = Option.value ~default:0 r.U.dtb_misses in
      let cat c = s.Machine.cat_cycles.(Machine.category_index c) in
      let per_miss =
        if misses = 0 then 0.
        else
          float_of_int (cat Asm.Decode + cat Asm.Translate)
          /. float_of_int misses
      in
      Table.add_row t
        [ name;
          Table.cell_int s.Machine.interp_count;
          Table.cell_int (s.Machine.interp_count - misses);
          Table.cell_int misses;
          Table.cell_pct ~decimals:2 (Option.value ~default:0. r.U.dtb_hit_ratio);
          Table.cell_int (Option.value ~default:0 r.U.dtb_evictions);
          Table.cell_int (Option.value ~default:0 r.U.dtb_overflow_allocations);
          Table.cell_float per_miss ])
    (representative @ [ "quicksort"; "sieve" ]);
  Table.print t

(* ------------------------------------------------------------------ *)
(* Model vs simulation                                                 *)
(* ------------------------------------------------------------------ *)

let model_vs_sim () =
  section "X1: analytic model vs cycle-level simulation (cycles per DIR instr)";
  let t =
    Table.create
      ~columns:
        [ ("program/kind", Table.Left); ("T1 sim", Table.Right);
          ("T1 model", Table.Right); ("T3 sim", Table.Right);
          ("T3 model", Table.Right); ("T2 sim", Table.Right);
          ("T2 model", Table.Right); ("F2 sim", Table.Right);
          ("F2 model", Table.Right) ]
      ()
  in
  let kinds = [ Kind.Packed; Kind.Huffman ] in
  let jobs_list =
    List.concat_map
      (fun name -> List.map (fun kind -> (name, kind)) kinds)
      representative
  in
  let fingerprint =
    [ "bench model-vs-sim";
      "programs=" ^ String.concat "," representative;
      "kinds=" ^ String.concat "," (List.map Kind.name kinds) ]
  in
  let setup =
    campaign_setup ~target:"model-vs-sim" ~fingerprint
      ~cells:(List.length jobs_list)
  in
  let slots =
    Sweep.map_supervised ?domains:!jobs ~cached:setup.Campaign.cached
      ?cell_hook:setup.Campaign.cell_hook
      (fun (name, kind) ->
        let m = Experiment.measure ~kind ~name (compile name) in
        let c = Experiment.calibrate m in
        let params = Experiment.params_of c in
        let sim = U.cycles_per_dir_instruction in
        let t1s = sim m.Experiment.interp
        and t2s = sim m.Experiment.dtb
        and t3s = sim m.Experiment.cached in
        [ Printf.sprintf "%s/%s" name (Kind.name kind);
          Table.cell_float t1s; Table.cell_float (Model.t1 params);
          Table.cell_float t3s; Table.cell_float (Model.t3 params);
          Table.cell_float t2s; Table.cell_float (Model.t2 params);
          Table.cell_float ((t1s -. t2s) /. t2s *. 100.);
          Table.cell_float (Model.f2 params) ])
      jobs_list
  in
  setup.Campaign.close ();
  List.iteri
    (fun i slot ->
      (match slot with
      | Sweep.Completed row -> Table.add_row t row
      | Sweep.Quarantined q ->
          note_quarantine ~target:"model-vs-sim" q;
          let name, kind = List.nth jobs_list i in
          Table.add_row t
            [ Printf.sprintf "%s/%s" name (Kind.name kind); "(quarantined)";
              "-"; "-"; "-"; "-"; "-"; "-"; "-" ]);
      if (i + 1) mod List.length kinds = 0 then Table.add_rule t)
    slots;
  Table.print t;
  print_endline
    "The model runs on parameters calibrated from the simulation (d, g, x,\n\
     s1, s2, h_c, h_D measured per program); agreement validates the\n\
     paper's analysis, and F2 > 0 wherever loops exist reproduces its\n\
     headline result."

(* ------------------------------------------------------------------ *)
(* Encoding ablation                                                   *)
(* ------------------------------------------------------------------ *)

let encodings () =
  section "X4: encoding ablation -- program size and decode cost";
  let t =
    Table.create
      ~columns:
        [ ("program", Table.Left); ("encoding", Table.Left);
          ("bits/instr", Table.Right); ("saved vs word16", Table.Right);
          ("decode cycles/instr", Table.Right);
          ("interp cycles/instr", Table.Right) ]
      ()
  in
  List.iter
    (fun name ->
      let p = compile name in
      let word16_bits =
        Codec.bits_per_instruction (Codec.encode Kind.Word16 p)
      in
      List.iter
        (fun kind ->
          let e = Codec.encode kind p in
          let r = U.run_encoded ~strategy:U.Interp e in
          let d =
            float_of_int
              r.U.machine_stats.Machine.cat_cycles.(Machine.category_index
                                                      Asm.Decode)
            /. float_of_int r.U.dir_steps
          in
          Table.add_row t
            [ name; Kind.name kind;
              Table.cell_float (Codec.bits_per_instruction e);
              Table.cell_pct ~decimals:1
                (1. -. (Codec.bits_per_instruction e /. word16_bits));
              Table.cell_float d;
              Table.cell_float (U.cycles_per_dir_instruction r) ])
        Kind.all;
      Table.add_rule t)
    [ "gcd"; "quicksort" ];
  Table.print t;
  print_endline
    "Compaction of 25-75% against the unencoded form reproduces the\n\
     B1700/Wilner figures the paper cites; decode cost rises with the\n\
     degree of encoding -- the space/time trade the DTB amortises."

(* ------------------------------------------------------------------ *)
(* DTB ablations                                                       *)
(* ------------------------------------------------------------------ *)

let assoc () =
  section "X2: DTB associativity (constant 256 entries)";
  let t =
    Table.create
      ~columns:
        [ ("program", Table.Left); ("direct", Table.Right);
          ("2-way", Table.Right); ("4-way", Table.Right);
          ("8-way", Table.Right); ("full", Table.Right) ]
      ()
  in
  let configs = Experiment.assoc_configs () in
  let programs =
    [ "fib_rec"; "quicksort"; "dispatch"; "binsearch"; "flat_straightline" ]
  in
  let fingerprint =
    [ "bench assoc"; "programs=" ^ String.concat "," programs;
      dtb_configs_fingerprint configs ]
  in
  let setup =
    campaign_setup ~target:"assoc" ~fingerprint
      ~cells:(List.length programs * List.length configs)
  in
  let grid =
    Experiment.dtb_grid_slots ?domains:!jobs ~cached:setup.Campaign.cached
      ?cell_hook:setup.Campaign.cell_hook ~kind:Kind.Huffman ~configs
      (List.map (fun name -> (name, compile name)) programs)
  in
  setup.Campaign.close ();
  List.iter
    (fun (name, points) ->
      Table.add_row t
        (name
        :: List.map
             (function
               | Sweep.Completed pt ->
                   Table.cell_pct ~decimals:2 pt.Experiment.dp_hit_ratio
               | Sweep.Quarantined q ->
                   note_quarantine ~target:"assoc" q;
                   "(quar)")
             points))
    grid;
  Table.print t;
  print_endline
    "Paper section 5.2: set associativity of degree 4 is nearly as\n\
     effective as full associativity."

let alloc () =
  section "X3: DTB allocation policy (fixed units vs chained increments)";
  let t =
    Table.create
      ~columns:
        [ ("program", Table.Left); ("unit", Table.Left);
          ("capacity", Table.Right); ("hit ratio", Table.Right);
          ("overflow allocs", Table.Right) ]
      ()
  in
  let configs = Experiment.alloc_configs () in
  let programs = [ "fib_rec"; "quicksort" ] in
  let fingerprint =
    [ "bench alloc"; "programs=" ^ String.concat "," programs;
      dtb_configs_fingerprint configs ]
  in
  let setup =
    campaign_setup ~target:"alloc" ~fingerprint
      ~cells:(List.length programs * List.length configs)
  in
  let grid =
    Experiment.dtb_grid_slots ?domains:!jobs ~cached:setup.Campaign.cached
      ?cell_hook:setup.Campaign.cell_hook ~kind:Kind.Huffman ~configs
      (List.map (fun name -> (name, compile name)) programs)
  in
  setup.Campaign.close ();
  List.iter
    (fun (name, points) ->
      List.iter
        (function
          | Sweep.Quarantined q ->
              note_quarantine ~target:"alloc" q;
              Table.add_row t [ name; "(quarantined)"; "-"; "-"; "-" ]
          | Sweep.Completed pt ->
              Table.add_row t
                [ name;
                  Printf.sprintf "%d words%s"
                    pt.Experiment.dp_config.Dtb.unit_words
                    (if pt.Experiment.dp_config.Dtb.overflow_blocks > 0 then
                       " + chain"
                     else " fixed");
                  Table.cell_bytes (pt.Experiment.dp_capacity_words * 2);
                  Table.cell_pct ~decimals:2 pt.Experiment.dp_hit_ratio;
                  Table.cell_int pt.Experiment.dp_overflow_allocations ])
        points;
      Table.add_rule t)
    grid;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Crossover: where the DTB stops paying                               *)
(* ------------------------------------------------------------------ *)

let crossover () =
  section "X5: crossover -- F2 as decoding gets trivial or semantics dominate";
  let xs = [ 2; 5; 10; 20; 40; 80 ] in
  let t =
    Table.create
      ~columns:
        (("d \\ x", Table.Right)
        :: List.map (fun x -> (string_of_int x, Table.Right)) xs)
      ()
  in
  List.iter
    (fun d ->
      Table.add_row t
        (string_of_int d
        :: List.map
             (fun x ->
               Table.cell_float
                 (Model.f2
                    (Model.paper_defaults ~d:(float_of_int d)
                       ~x:(float_of_int x))))
             xs))
    [ 2; 5; 10; 20; 30 ];
  Table.print t;
  print_endline
    "\"The DTB is not particularly effective if the task of decoding is\n\
     trivial or if the time spent in the semantic routines is much greater\n\
     than the time that would be spent in decoding\" (paper, section 7).";
  print_endline "\nMeasured counterpart (word16 = easy decode, digram = hard):";
  let t2 =
    Table.create
      ~columns:
        [ ("program/kind", Table.Left); ("interp c/i", Table.Right);
          ("dtb c/i", Table.Right); ("speedup", Table.Right) ]
      ()
  in
  let cells =
    List.concat_map
      (fun name ->
        List.map (fun kind -> (name, kind))
          [ Kind.Word16; Kind.Packed; Kind.Digram ])
      [ "fact_iter"; "string_out" ]
  in
  let fingerprint =
    [ "bench crossover";
      "cells="
      ^ String.concat ","
          (List.map (fun (n, k) -> n ^ "/" ^ Kind.name k) cells) ]
  in
  let setup =
    campaign_setup ~target:"crossover" ~fingerprint ~cells:(List.length cells)
  in
  let rows =
    Sweep.map_supervised ?domains:!jobs ~cached:setup.Campaign.cached
      ?cell_hook:setup.Campaign.cell_hook
      (fun (name, kind) ->
        let p = compile name in
        let interp = U.run ~strategy:U.Interp ~kind p in
        let dtb = U.run ~strategy:(U.Dtb_strategy Dtb.paper_config) ~kind p in
        [ Printf.sprintf "%s/%s" name (Kind.name kind);
          Table.cell_float (U.cycles_per_dir_instruction interp);
          Table.cell_float (U.cycles_per_dir_instruction dtb);
          Table.cell_float
            (float_of_int interp.U.cycles /. float_of_int dtb.U.cycles) ])
      cells
  in
  setup.Campaign.close ();
  List.iter2
    (fun (name, kind) slot ->
      match slot with
      | Sweep.Completed row -> Table.add_row t2 row
      | Sweep.Quarantined q ->
          note_quarantine ~target:"crossover" q;
          Table.add_row t2
            [ Printf.sprintf "%s/%s" name (Kind.name kind); "(quar)"; "-";
              "-" ])
    cells rows;
  Table.print t2

(* ------------------------------------------------------------------ *)
(* Hardware decode assist vs the DTB (paper section 8)                 *)
(* ------------------------------------------------------------------ *)

let assist () =
  section
    "X6: random logic vs memory -- a hardware decode unit vs the DTB      (paper section 8)";
  let t =
    Table.create
      ~columns:
        [ ("program/kind", Table.Left); ("interp", Table.Right);
          ("interp+assist", Table.Right); ("dtb", Table.Right);
          ("dtb+assist", Table.Right) ]
      ()
  in
  List.iter
    (fun name ->
      let p = compile name in
      List.iter
        (fun kind ->
          let ci assist strategy =
            Table.cell_float
              (U.cycles_per_dir_instruction
                 (U.run ~decode_assist:assist ~strategy ~kind p))
          in
          Table.add_row t
            [ Printf.sprintf "%s/%s" name (Kind.name kind);
              ci false U.Interp; ci true U.Interp;
              ci false (U.Dtb_strategy Dtb.paper_config);
              ci true (U.Dtb_strategy Dtb.paper_config) ])
        [ Kind.Packed; Kind.Huffman; Kind.Digram ];
      Table.add_rule t)
    [ "fact_iter"; "gcd" ];
  Table.print t;
  print_endline
    "\"The decoding overhead ... may be reduced either by providing powerful\n\
     hardware aids to the decoding process or by the use of a dynamic\n\
     translation buffer\" (paper, section 8).  The assist unit halves the\n\
     interpreter's time on encoded DIRs; the DTB removes the decode\n\
     entirely on hits and barely benefits from the extra logic."

(* ------------------------------------------------------------------ *)
(* Block translation (beyond the paper)                                *)
(* ------------------------------------------------------------------ *)

let blocks () =
  section
    "X7: translation granularity -- one instruction vs basic-block runs";
  let block_cfg =
    { Dtb.sets = 32; assoc = 4; unit_words = 16; overflow_blocks = 256 }
  in
  let t =
    Table.create
      ~columns:
        [ ("program", Table.Left); ("per-instr c/i", Table.Right);
          ("blocks<=4 c/i", Table.Right); ("blocks<=16 c/i", Table.Right);
          ("INTERP/instr (16)", Table.Right) ]
      ()
  in
  List.iter
    (fun name ->
      let p = compile name in
      let run strategy = U.run ~strategy ~kind:Kind.Huffman p in
      let per = run (U.Dtb_strategy Dtb.paper_config) in
      let b4 = run (U.Dtb_blocks (block_cfg, 4)) in
      let b16 = run (U.Dtb_blocks (block_cfg, 16)) in
      Table.add_row t
        [ name;
          Table.cell_float (U.cycles_per_dir_instruction per);
          Table.cell_float (U.cycles_per_dir_instruction b4);
          Table.cell_float (U.cycles_per_dir_instruction b16);
          Table.cell_float
            (float_of_int b16.U.machine_stats.Machine.interp_count
            /. float_of_int b16.U.dir_steps) ])
    [ "fact_iter"; "fib_rec"; "quicksort"; "sieve"; "dispatch"; "collatz" ];
  Table.print t;
  print_endline
    "Translating straight-line runs amortises the INTERP lookup (the s1*tauD\n\
     term) over whole basic blocks -- the refinement that turns the paper's\n\
     DTB into a modern template JIT's code cache."

(* ------------------------------------------------------------------ *)
(* Locality                                                            *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Multi-level dynamic translation (paper section 4)                   *)
(* ------------------------------------------------------------------ *)

let levels () =
  section
    "X10: levels of dynamic translation -- a decoded-instruction store      behind a small DTB (paper section 4)";
  (* a deliberately small first-level DTB (32 entries) so re-translation is
     frequent; the second level holds 2048 decoded instructions *)
  let small = { Dtb.sets = 8; assoc = 4; unit_words = 4; overflow_blocks = 64 } in
  let t =
    Table.create
      ~columns:
        [ ("program", Table.Left); ("interp c/i", Table.Right);
          ("L1-only c/i", Table.Right); ("L1+L2 c/i", Table.Right);
          ("L1 hit", Table.Right); ("L2 hit", Table.Right);
          ("decode cycles saved", Table.Right) ]
      ()
  in
  List.iter
    (fun name ->
      let p = compile name in
      let interp = U.run ~strategy:U.Interp ~kind:Kind.Digram p in
      let l1 = U.run ~strategy:(U.Dtb_strategy small) ~kind:Kind.Digram p in
      let l2 = U.run ~strategy:(U.Dtb_two_level (small, 2048)) ~kind:Kind.Digram p in
      let decode r =
        r.U.machine_stats.Machine.cat_cycles.(Machine.category_index Asm.Decode)
      in
      Table.add_row t
        [ name;
          Table.cell_float (U.cycles_per_dir_instruction interp);
          Table.cell_float (U.cycles_per_dir_instruction l1);
          Table.cell_float (U.cycles_per_dir_instruction l2);
          Table.cell_pct ~decimals:1 (Option.value ~default:0. l1.U.dtb_hit_ratio);
          Table.cell_pct ~decimals:1 (Option.value ~default:0. l2.U.dtb_l2_hit_ratio);
          Table.cell_int (decode l1 - decode l2) ])
    [ "quicksort"; "dispatch"; "sieve"; "binsearch"; "fib_rec" ];
  Table.print t;
  print_endline
    "\"When the dissimilarities between the representations ... are great,\n\
     it is possible that a number of levels of dynamic translation will be\n\
     required\" (paper, section 4).  With a thrashing first level, keeping\n\
     decoded instructions at a second level lets a re-translation pay only\n\
     g, not d+g -- the hierarchy of bindings with increasing persistence."

(* ------------------------------------------------------------------ *)
(* Restructurable datapath (paper section 6.1)                         *)
(* ------------------------------------------------------------------ *)

let datapath () =
  section
    "X9: restructurable datapath -- compound ALU transactions in the      semantic routines (paper section 6.1)";
  let t =
    Table.create
      ~columns:
        [ ("program", Table.Left); ("x/instr", Table.Right);
          ("x/instr (compound)", Table.Right); ("dtb c/i", Table.Right);
          ("dtb c/i (compound)", Table.Right) ]
      ()
  in
  List.iter
    (fun name ->
      let p = compile name in
      let x_of r =
        float_of_int
          r.U.machine_stats.Machine.cat_cycles.(Machine.category_index
                                                  Asm.Semantic)
        /. float_of_int r.U.dir_steps
      in
      let run compound =
        U.run ~compound_datapath:compound
          ~strategy:(U.Dtb_strategy Dtb.paper_config) ~kind:Kind.Packed p
      in
      let plain = run false and fused = run true in
      Table.add_row t
        [ name; Table.cell_float (x_of plain); Table.cell_float (x_of fused);
          Table.cell_float (U.cycles_per_dir_instruction plain);
          Table.cell_float (U.cycles_per_dir_instruction fused) ])
    [ "fact_iter"; "sieve"; "matmul"; "binsearch" ];
  Table.print t;
  print_endline
    "The compound ALU folds the base+offset+header address calculation of\n\
     every variable access into one register-to-register transaction --\n\
     \"more significant transformations ... in one register-to-register\n\
     transaction\" (section 6.1) -- trimming x, the component the DTB\n\
     cannot touch."


(* ------------------------------------------------------------------ *)
(* Multiprogramming: shared-DTB contention                             *)
(* ------------------------------------------------------------------ *)

let mix () =
  section
    "X11: multiprogramming -- three programs time-sliced over one shared \
     DTB";
  let module SX = Uhm_sched.Experiment in
  let module Mix = Uhm_sched.Mix in
  let programs = List.map (fun name -> (name, compile name)) representative in
  (* single-program reference cycles: the quantum->infinity rows of the
     grid must reproduce these exactly, for every policy *)
  let solo =
    sweep_map
      (fun (_, p) ->
        (U.run ~strategy:(U.Dtb_strategy Dtb.paper_config) ~kind:Kind.Huffman p)
          .U.cycles)
      programs
  in
  let policies = [ Dtb.Flush_on_switch; Dtb.Partitioned; Dtb.Tagged ] in
  let axes = SX.mix_axes ~policies ~configs:[ Dtb.paper_config ] () in
  let fingerprint =
    [ "bench mix";
      "programs=" ^ String.concat "," (List.map fst programs);
      "policies=" ^ String.concat "," (List.map Dtb.policy_name policies);
      "quanta="
      ^ String.concat "," (List.map string_of_int SX.default_quanta) ]
  in
  let setup =
    campaign_setup ~target:"mix" ~fingerprint ~cells:(List.length axes)
  in
  let grid =
    SX.mix_grid_slots ?domains:!jobs ~cached:setup.Campaign.cached
      ?cell_hook:setup.Campaign.cell_hook ~kind:Kind.Huffman ~policies
      ~configs:[ Dtb.paper_config ] programs
  in
  setup.Campaign.close ();
  let t =
    Table.create
      ~columns:
        [ ("policy", Table.Left); ("quantum", Table.Right);
          ("total cycles", Table.Right); ("switches", Table.Right);
          ("flushes", Table.Right); ("hit ratio", Table.Right);
          ("evictions", Table.Right); ("vs solo", Table.Left) ]
      ()
  in
  let quantum_label q = if q = Mix.solo_quantum then "inf" else string_of_int q in
  let prev_policy = ref None in
  List.iter2
    (fun (policy, _, quantum, _) slot ->
      (match !prev_policy with
      | Some p when p <> policy -> Table.add_rule t
      | _ -> ());
      prev_policy := Some policy;
      match slot with
      | Sweep.Quarantined q ->
          note_quarantine ~target:"mix" q;
          Table.add_row t
            [ Dtb.policy_name policy; quantum_label quantum; "(quarantined)";
              "-"; "-"; "-"; "-"; "" ]
      | Sweep.Completed (cell : SX.mix_cell) ->
          let r = cell.SX.mc_result in
          let at_infinity = cell.SX.mc_quantum = Mix.solo_quantum in
          let vs_solo =
            if not at_infinity then ""
            else if
              List.for_all2
                (fun cycles (pr : Mix.program_result) ->
                  pr.Mix.pr_cycles = cycles)
                solo r.Mix.mr_programs
            then "= solo (exact)"
            else "DIVERGENT"
          in
          Table.add_row t
            [ Dtb.policy_name cell.SX.mc_policy;
              quantum_label cell.SX.mc_quantum;
              Table.cell_int r.Mix.mr_total_cycles;
              Table.cell_int r.Mix.mr_switches;
              Table.cell_int r.Mix.mr_flushes;
              Table.cell_pct ~decimals:2 r.Mix.mr_hit_ratio;
              Table.cell_int r.Mix.mr_evictions; vs_solo ])
    axes grid;
  Table.print t;
  print_endline
    "At quantum=inf nothing is preempted and each program's cycle count\n\
     equals its single-program golden number under every policy.  At small\n\
     quanta flush pays a full retranslation of the working set per slice;\n\
     tagged keeps every program's entries live across switches; partitioned\n\
     trades capacity for isolation (see EXPERIMENTS.md for the regimes).";
  print_endline "\nFairness: per-program slowdown vs a solo run (cycles/solo cycles):";
  let ft =
    Table.create
      ~columns:
        (("policy", Table.Left) :: ("quantum", Table.Right)
        :: List.map (fun (name, _) -> (name, Table.Right)) programs)
      ()
  in
  List.iter2
    (fun (policy, _, quantum, _) slot ->
      match slot with
      | Sweep.Quarantined _ ->
          Table.add_row ft
            (Dtb.policy_name policy :: quantum_label quantum
            :: List.map (fun _ -> "-") programs)
      | Sweep.Completed (cell : SX.mix_cell) ->
          Table.add_row ft
            (Dtb.policy_name policy :: quantum_label quantum
            :: List.map
                 (fun (pr : Mix.program_result) ->
                   Printf.sprintf "%.3fx" pr.Mix.pr_slowdown)
                 cell.SX.mc_result.Mix.mr_programs))
    axes grid;
  Table.print ft;
  print_endline
    "Slowdown is exactly 1.000x for every program at quantum=inf; under\n\
     flush at small quanta the shortest program suffers most, because each\n\
     of its slices repays the whole retranslation of its working set."

(* ------------------------------------------------------------------ *)
(* Whole-suite summary dashboard                                       *)
(* ------------------------------------------------------------------ *)

let summary () =
  section
    "Summary: every workload under the paper's three machines (digram      encoding)";
  let t =
    Table.create
      ~columns:
        [ ("program", Table.Left); ("lang", Table.Left);
          ("steps", Table.Right); ("bits/i", Table.Right);
          ("T1 c/i", Table.Right); ("T3 c/i", Table.Right);
          ("T2 c/i", Table.Right); ("h_D", Table.Right);
          ("F2 meas.", Table.Right) ]
      ()
  in
  let names = Experiment.summary_names () in
  let fingerprint =
    [ "bench summary"; "programs=" ^ String.concat "," names ]
  in
  let setup =
    campaign_setup ~target:"summary" ~fingerprint ~cells:(List.length names)
  in
  let slots =
    Experiment.summary_rows_slots ?domains:!jobs
      ~cached:setup.Campaign.cached ?cell_hook:setup.Campaign.cell_hook ()
  in
  setup.Campaign.close ();
  let prev_lang = ref None in
  List.iter2
    (fun name slot ->
      match slot with
      | Sweep.Quarantined q ->
          note_quarantine ~target:"summary" q;
          Table.add_row t
            [ name; "-"; "(quarantined)"; "-"; "-"; "-"; "-"; "-"; "-" ]
      | Sweep.Completed (r : Experiment.summary_row) ->
          (match !prev_lang with
          | Some lang when lang <> r.Experiment.sr_lang -> Table.add_rule t
          | _ -> ());
          prev_lang := Some r.Experiment.sr_lang;
          Table.add_row t
            [ r.Experiment.sr_program; r.Experiment.sr_lang;
              Table.cell_int r.Experiment.sr_dir_steps;
              Table.cell_float r.Experiment.sr_bits_per_instr;
              Table.cell_float r.Experiment.sr_t1_ci;
              Table.cell_float r.Experiment.sr_t3_ci;
              Table.cell_float r.Experiment.sr_t2_ci;
              Table.cell_pct ~decimals:1 r.Experiment.sr_dtb_hit_ratio;
              Table.cell_float r.Experiment.sr_f2_measured ])
    names slots;
  Table.print t;
  print_endline
    "F2 meas. is the measured percentage cost of not having a DTB (paper\n\
     Table 3's figure of merit); it is large and positive on every workload\n\
     with reuse and negative only on the designed straight-line adversary."

(* ------------------------------------------------------------------ *)
(* Two languages, one host                                             *)
(* ------------------------------------------------------------------ *)

let languages () =
  section
    "Two dissimilar languages on one universal host (the premise of \
     sections 1-2)";
  let t =
    Table.create
      ~columns:
        [ ("program", Table.Left); ("language", Table.Left);
          ("instrs", Table.Right); ("opcode entropy", Table.Right);
          ("digram bits/i", Table.Right); ("interp c/i", Table.Right);
          ("dtb c/i", Table.Right); ("hit ratio", Table.Right) ]
      ()
  in
  let row (name, lang, compile_p) =
    let p = compile_p () in
    let stats = Uhm_dir.Static_stats.of_program p in
    let digram = Codec.encode Kind.Digram p in
    let interp = U.run_encoded ~strategy:U.Interp digram in
    let dtb = U.run_encoded ~strategy:(U.Dtb_strategy Dtb.paper_config) digram in
    [ name; lang;
      Table.cell_int (Uhm_dir.Program.size_instructions p);
      Table.cell_float (Uhm_dir.Static_stats.opcode_entropy stats);
      Table.cell_float (Codec.bits_per_instruction digram);
      Table.cell_float (U.cycles_per_dir_instruction interp);
      Table.cell_float (U.cycles_per_dir_instruction dtb);
      Table.cell_pct ~decimals:2 (Option.value ~default:0. dtb.U.dtb_hit_ratio) ]
  in
  let jobs_list =
    List.map
      (fun name -> (name, "Algol-S", fun () -> compile name))
      [ "gcd"; "sieve"; "fib_rec" ]
    @ List.map
        (fun e ->
          ( e.Uhm_ftn.Suite.name,
            "Fortran-S",
            fun () -> Uhm_ftn.Suite.compile ~fuse:false e ))
        (List.map Uhm_ftn.Suite.find [ "ftn_euclid"; "ftn_sieve"; "ftn_fib" ])
  in
  let fingerprint =
    [ "bench languages";
      "cells="
      ^ String.concat ","
          (List.map (fun (n, lang, _) -> n ^ "/" ^ lang) jobs_list) ]
  in
  let setup =
    campaign_setup ~target:"languages" ~fingerprint
      ~cells:(List.length jobs_list)
  in
  let rows =
    Sweep.map_supervised ?domains:!jobs ~cached:setup.Campaign.cached
      ?cell_hook:setup.Campaign.cell_hook row jobs_list
  in
  setup.Campaign.close ();
  List.iter2
    (fun (name, lang, _) slot ->
      match slot with
      | Sweep.Completed r -> Table.add_row t r
      | Sweep.Quarantined q ->
          note_quarantine ~target:"languages" q;
          Table.add_row t
            [ name; lang; "(quar)"; "-"; "-"; "-"; "-"; "-" ])
    jobs_list rows;
  Table.print t;
  print_endline
    "Both front ends bind to the same DIR, semantic routines and DTB; the\n\
     Fortran programs' GOTO-shaped control and 1-based subscripts give a\n\
     visibly different opcode mix, yet the DTB flattens both languages to\n\
     nearly the same cycles per instruction -- the \"equal facility\" the\n\
     paper asks of a universal host (section 1.2)."

let locality () =
  section "Workload locality (the premise of section 4)";
  let t =
    Table.create
      ~columns:
        [ ("trace", Table.Left); ("refs", Table.Right);
          ("footprint", Table.Right); ("avg WS(1k)", Table.Right);
          ("LRU-64 hit", Table.Right); ("LRU-256 hit", Table.Right) ]
      ()
  in
  let trace_row label trace =
    [ label;
      Table.cell_int (Array.length trace);
      Table.cell_int (Locality.footprint trace);
      Table.cell_float (Locality.average_working_set ~window:1000 trace);
      Table.cell_pct ~decimals:1
        (Locality.hit_ratio_for_capacity ~capacity:64 trace);
      Table.cell_pct ~decimals:1
        (Locality.hit_ratio_for_capacity ~capacity:256 trace) ]
  in
  let jobs_list =
    List.map
      (fun name ->
        ( name,
          fun () -> trace_row name (Locality.trace_of_program (compile name))
        ))
      [ "fact_iter"; "fib_rec"; "sieve"; "quicksort"; "dispatch";
        "flat_straightline" ]
    @ List.map
        (fun loc ->
          let label = Printf.sprintf "synthetic(locality=%.2f)" loc in
          ( label,
            fun () ->
              trace_row label
                (Tracegen.generate
                   { Tracegen.default with Tracegen.locality = loc;
                     length = 50_000 }) ))
        [ 0.5; 0.9; 0.99 ]
  in
  let fingerprint =
    [ "bench locality";
      "cells=" ^ String.concat "," (List.map fst jobs_list) ]
  in
  let setup =
    campaign_setup ~target:"locality" ~fingerprint
      ~cells:(List.length jobs_list)
  in
  let rows =
    Sweep.map_supervised ?domains:!jobs ~cached:setup.Campaign.cached
      ?cell_hook:setup.Campaign.cell_hook
      (fun (_, job) -> job ())
      jobs_list
  in
  setup.Campaign.close ();
  List.iter2
    (fun (label, _) slot ->
      match slot with
      | Sweep.Completed r -> Table.add_row t r
      | Sweep.Quarantined q ->
          note_quarantine ~target:"locality" q;
          Table.add_row t [ label; "(quar)"; "-"; "-"; "-"; "-" ])
    jobs_list rows;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "Micro-benchmarks (Bechamel, ns per run)";
  let open Bechamel in
  let open Toolkit in
  let p = compile "gcd" in
  let encoded = Codec.encode Kind.Huffman p in
  let code = Uhm_huffman.Code.of_frequencies (Array.init 40 (fun i -> i + 1)) in
  let contour_map = Uhm_dir.Program.contour_of_instr p in
  let digram_ctxs = Uhm_dir.Static_stats.digram_contexts p in
  let dtb = Dtb.create Dtb.paper_config ~buffer_base:0 in
  let counter = ref 0 in
  let test =
    Test.make_grouped ~name:"uhm"
      [
        Test.make ~name:"huffman-encode-100-symbols"
          (Staged.stage (fun () ->
               let w = Uhm_bitstream.Writer.create () in
               for i = 0 to 99 do
                 Uhm_huffman.Code.encode code w (i mod 40)
               done));
        Test.make ~name:"codec-decode-one-instruction"
          (Staged.stage (fun () ->
               ignore
                 (Codec.decode_at encoded ~contour:contour_map.(0)
                    ~digram_ctx:digram_ctxs.(0)
                    ~addr:encoded.Codec.offsets.(0))));
        Test.make ~name:"dtb-lookup-install"
          (Staged.stage (fun () ->
               incr counter;
               match Dtb.lookup dtb ~tag:(!counter land 1023) with
               | `Hit _ -> ()
               | `Miss ->
                   Dtb.begin_translation dtb ~tag:(!counter land 1023);
                   ignore (Dtb.emit dtb 0);
                   ignore (Dtb.end_translation dtb)));
        Test.make ~name:"encode-program-huffman"
          (Staged.stage (fun () -> ignore (Codec.encode Kind.Huffman p)));
        Test.make ~name:"machine-run-gcd-dtb"
          (Staged.stage (fun () ->
               ignore
                 (U.run_encoded ~strategy:(U.Dtb_strategy Dtb.paper_config)
                    encoded)));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t =
    Table.create ~columns:[ ("benchmark", Table.Left); ("ns/run", Table.Right) ] ()
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let cell =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> Table.cell_float est
        | _ -> "n/a"
      in
      rows := (name, cell) :: !rows)
    results;
  List.iter
    (fun (name, cell) -> Table.add_row t [ name; cell ])
    (List.sort compare !rows);
  Table.print t

(* ------------------------------------------------------------------ *)
(* Host-side simulator throughput                                      *)
(* ------------------------------------------------------------------ *)

let perf () =
  section "Perf: host-side simulator throughput (wall clock, not simulated)";
  let min_runs = getenv_num "UHM_PERF_RUNS" int_of_string_opt 5 in
  let min_seconds = getenv_num "UHM_PERF_SECONDS" float_of_string_opt 0.2 in
  let path = bench_json_path () in
  (* re-measuring throughput must not clobber the recorded saturation or
     resilience studies; carry their sections over verbatim *)
  let load, resilience =
    if Sys.file_exists path then
      (Uhm_core.Perf.read_load ~path, Uhm_core.Perf.read_resilience ~path)
    else (None, None)
  in
  let samples =
    Uhm_core.Perf.run_suite ~min_runs ~min_seconds
      ~backends:[ `Decode; `Threaded ] ()
  in
  let t =
    Table.create
      ~columns:
        [ ("workload/strategy", Table.Left); ("backend", Table.Left);
          ("runs", Table.Right); ("us/run", Table.Right);
          ("sim cycles/s", Table.Right); ("host instrs/s", Table.Right) ]
      ()
  in
  List.iter
    (fun s ->
      Table.add_row t
        [ Printf.sprintf "%s/%s" s.Uhm_core.Perf.workload
            s.Uhm_core.Perf.strategy;
          s.Uhm_core.Perf.backend;
          Table.cell_int s.Uhm_core.Perf.runs;
          Table.cell_float s.Uhm_core.Perf.wall_us_per_run;
          Printf.sprintf "%.2fM" (s.Uhm_core.Perf.sim_cycles_per_sec /. 1e6);
          Printf.sprintf "%.2fM" (s.Uhm_core.Perf.host_instrs_per_sec /. 1e6) ])
    samples;
  Table.print t;
  (* Host wall-clock only: the simulated cycle counts, traces and final
     states of the two backends are differentially pinned equal by
     test/test_backend.ml, so the speedup is free of semantic drift. *)
  (match Uhm_core.Perf.backend_pairs samples with
  | [] -> ()
  | pairs ->
      List.iter
        (fun p ->
          Printf.printf
            "backend speedup %s/%s: %.2fx (%.1f -> %.1f us/run)\n"
            p.Uhm_core.Perf.bp_workload p.Uhm_core.Perf.bp_strategy
            p.Uhm_core.Perf.bp_speedup p.Uhm_core.Perf.bp_decode_us
            p.Uhm_core.Perf.bp_threaded_us)
        pairs;
      let geo =
        exp
          (List.fold_left
             (fun a p -> a +. log p.Uhm_core.Perf.bp_speedup)
             0. pairs
          /. float_of_int (List.length pairs))
      in
      Printf.printf "backend speedup geomean: %.2fx over %d pairs\n" geo
        (List.length pairs));
  let sweep =
    if Sys.getenv_opt "UHM_PERF_SWEEP" = Some "0" then None
    else begin
      let repeats = getenv_num "UHM_PERF_SWEEP_REPEATS" int_of_string_opt 2 in
      let sw = Uhm_core.Perf.measure_sweep ?domains:!jobs ~repeats () in
      Printf.printf
        "\nparallel sweep: %d points, %.3fs at 1 domain, %.3fs at %d \
         domains (speedup %.2fx, results %s)\n"
        sw.Uhm_core.Perf.sweep_points sw.Uhm_core.Perf.sweep_wall_1
        sw.Uhm_core.Perf.sweep_wall_n sw.Uhm_core.Perf.sweep_domains
        sw.Uhm_core.Perf.sweep_speedup
        (if sw.Uhm_core.Perf.sweep_identical then "identical"
         else "DIVERGENT");
      Some sw
    end
  in
  Uhm_core.Perf.write_json ?sweep ?load ?resilience ~path samples;
  Printf.printf "\nwrote %s (%d samples)\n" path (List.length samples)

(* ------------------------------------------------------------------ *)
(* Open-arrival load service: latency vs offered load (lib/serve)      *)
(* ------------------------------------------------------------------ *)

let load () =
  section
    "X13: open-arrival service -- sojourn percentiles vs offered load per \
     DTB sharing policy";
  let module LX = Uhm_serve.Experiment in
  let module Serve = Uhm_serve.Serve in
  let njobs = getenv_num "UHM_LOAD_JOBS" int_of_string_opt 400 in
  let seed = 1 and asid_slots = 8 and quantum = 64 in
  (* the light end of the suite (solo runs of 56k-118k cycles), so the
     default rates straddle the pool's ~10 jobs/Mcycle capacity *)
  let pool = [ "fact_iter"; "string_out"; "nested_scopes" ] in
  let policies = [ Dtb.Flush_on_switch; Dtb.Tagged; Dtb.Partitioned ] in
  let rates = LX.default_rates in
  (* queue bound >= arrivals: nothing is shed, so the tail of the sojourn
     distribution is never truncated and p99 stays monotone in load *)
  let admission = { Serve.queue_capacity = njobs; shed_above = None } in
  let axes = LX.load_axes ~quanta:[ quantum ] ~rates ~policies () in
  let fingerprint =
    [ "bench load"; "programs=" ^ String.concat "," pool;
      "policies=" ^ String.concat "," (List.map Dtb.policy_name policies);
      "rates=" ^ String.concat "," (List.map (Printf.sprintf "%h") rates);
      Printf.sprintf "jobs=%d" njobs; Printf.sprintf "seed=%d" seed;
      Printf.sprintf "slots=%d" asid_slots;
      Printf.sprintf "quantum=%d" quantum;
      Printf.sprintf "queue=%d" admission.Serve.queue_capacity ]
  in
  let setup =
    campaign_setup ~target:"load" ~fingerprint ~cells:(List.length axes)
  in
  let grid =
    LX.load_grid_slots ?domains:!jobs ~cached:setup.Campaign.cached
      ?cell_hook:setup.Campaign.cell_hook ~quanta:[ quantum ] ~admission
      ~seed ~jobs:njobs ~slots:asid_slots ~kind:Kind.Huffman ~policies
      ~rates ~config:Dtb.paper_config
      (List.map (fun name -> (name, compile name)) pool)
  in
  setup.Campaign.close ();
  let t =
    Table.create
      ~columns:
        [ ("policy", Table.Left); ("rate/Mcyc", Table.Right);
          ("jobs", Table.Right); ("done", Table.Right);
          ("p50", Table.Right); ("p95", Table.Right); ("p99", Table.Right);
          ("qd p95", Table.Right); ("slowdown", Table.Right);
          ("thru/Mcyc", Table.Right); ("hit ratio", Table.Right) ]
      ()
  in
  let prev_policy = ref None in
  let points = ref [] in
  List.iter2
    (fun (policy, _, rate) slot ->
      (match !prev_policy with
      | Some p when p <> policy -> Table.add_rule t
      | _ -> ());
      prev_policy := Some policy;
      match slot with
      | Sweep.Quarantined q ->
          note_quarantine ~target:"load" q;
          Table.add_row t
            [ Dtb.policy_name policy; Printf.sprintf "%g" rate;
              "(quarantined)"; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-" ]
      | Sweep.Completed (cell : LX.load_cell) ->
          let s = cell.LX.lc_result.Serve.sv_summary in
          Table.add_row t
            [ Dtb.policy_name cell.LX.lc_policy;
              Printf.sprintf "%g" cell.LX.lc_rate;
              Table.cell_int s.Serve.s_jobs;
              Table.cell_int s.Serve.s_completed;
              Table.cell_int s.Serve.s_p50; Table.cell_int s.Serve.s_p95;
              Table.cell_int s.Serve.s_p99;
              Table.cell_int s.Serve.s_qd_p95;
              Printf.sprintf "%.2fx" s.Serve.s_mean_slowdown;
              Printf.sprintf "%.3f" s.Serve.s_throughput;
              Table.cell_pct ~decimals:2 s.Serve.s_hit_ratio ];
          points :=
            {
              Uhm_core.Perf.lp_policy = Dtb.policy_name cell.LX.lc_policy;
              lp_rate = cell.LX.lc_rate;
              lp_quantum = cell.LX.lc_quantum;
              lp_jobs = s.Serve.s_jobs;
              lp_completed = s.Serve.s_completed;
              lp_shed = s.Serve.s_shed;
              lp_throughput = s.Serve.s_throughput;
              lp_p50 = s.Serve.s_p50;
              lp_p95 = s.Serve.s_p95;
              lp_p99 = s.Serve.s_p99;
              lp_mean_slowdown = s.Serve.s_mean_slowdown;
            }
            :: !points)
    axes grid;
  Table.print t;
  let points = List.rev !points in
  (* the acceptance property of the curve: within each policy the points
     are recorded in rate order, and p99 must not fall as load rises *)
  let violations = ref 0 in
  List.iter
    (fun policy ->
      let name = Dtb.policy_name policy in
      let curve =
        List.filter (fun p -> p.Uhm_core.Perf.lp_policy = name) points
      in
      ignore
        (List.fold_left
           (fun prev p ->
             if p.Uhm_core.Perf.lp_p99 < prev then begin
               incr violations;
               Printf.eprintf
                 "bench: load: %s p99 fell from %d to %d at rate %g\n%!"
                 name prev p.Uhm_core.Perf.lp_p99 p.Uhm_core.Perf.lp_rate
             end;
             p.Uhm_core.Perf.lp_p99)
           min_int curve))
    policies;
  if !violations = 0 then
    print_endline
      "\np99 sojourn is monotone in offered load under every policy: below\n\
       the knee latency is a few service times, past it the queue -- not\n\
       the DTB -- dominates, and the policies separate by how much\n\
       translation capacity each slice can retain."
  else begin
    Printf.eprintf "bench: load: p99 curve is NOT monotone (%d dip(s))\n"
      !violations;
    incr quarantined_cells (* fail the run: the recorded curve is bad *)
  end;
  let path = bench_json_path () in
  let samples, sweep, resilience =
    if Sys.file_exists path then
      ( Uhm_core.Perf.read_samples ~path,
        Uhm_core.Perf.read_sweep ~path,
        Uhm_core.Perf.read_resilience ~path )
    else ([], None, None)
  in
  let load_bench =
    { Uhm_core.Perf.load_seed = seed; load_slots = asid_slots;
      load_points = points }
  in
  Uhm_core.Perf.write_json ?sweep ~load:load_bench ?resilience ~path samples;
  Printf.printf "\nwrote %s (load section: %d points, %d preserved samples)\n"
    path (List.length points) (List.length samples)

(* ------------------------------------------------------------------ *)
(* Fault-tolerant serving                                              *)
(* ------------------------------------------------------------------ *)

let resilience () =
  section
    "X14: fault-tolerant serving -- SLO attainment, goodput and p99 \
     degradation vs injected fault rate";
  let module LX = Uhm_serve.Experiment in
  let module Chaos = Uhm_serve.Chaos in
  let module Serve = Uhm_serve.Serve in
  let module Arrival = Uhm_serve.Arrival in
  let njobs = getenv_num "UHM_RESILIENCE_JOBS" int_of_string_opt 150 in
  let seed = 1 and fault_seed = 4242 and asid_slots = 8 and quantum = 64 in
  let slo = 2_000_000 in
  (* both front ends in one pool, skewed heavy-tailed toward the light
     Algol template so most jobs are short and a few are long; service
     times run ~110k (fact_iter) to ~660k (ftn_sieve) cycles, putting
     pool capacity near 4.6 jobs/Mcycle -- the rates straddle the knee
     and the SLO bound is reachable by every template when unloaded *)
  let pool =
    [ ("fact_iter", compile "fact_iter");
      ("string_out", compile "string_out");
      ( "ftn_sieve",
        Uhm_ftn.Suite.compile ~fuse:false (Uhm_ftn.Suite.find "ftn_sieve") )
    ]
  in
  let weights = Arrival.heavy_tailed ~templates:3 ~heavy:[ (0, 4.0) ] in
  let policies = [ Dtb.Flush_on_switch; Dtb.Tagged; Dtb.Partitioned ] in
  let fault_rates = LX.default_fault_rates in
  let rates = [ 2.0; 6.0 ] in
  (* corrupted attempts can loop; the fuel bound is far above any
     template's solo cost, so it only fires on genuinely wedged runs *)
  let cell_fuel = 4_000_000 in
  let admission = { Serve.queue_capacity = njobs; shed_above = None } in
  let axes =
    LX.resilience_axes ~quanta:[ quantum ] ~rates ~fault_rates ~policies ()
  in
  let fingerprint =
    [ "bench resilience";
      "programs=" ^ String.concat "," (List.map fst pool);
      "weights=" ^ Arrival.weights_name (Some weights);
      "policies=" ^ String.concat "," (List.map Dtb.policy_name policies);
      "fault_rates="
      ^ String.concat "," (List.map (Printf.sprintf "%h") fault_rates);
      "rates=" ^ String.concat "," (List.map (Printf.sprintf "%h") rates);
      Printf.sprintf "jobs=%d" njobs; Printf.sprintf "seed=%d" seed;
      Printf.sprintf "fault_seed=%d" fault_seed;
      Printf.sprintf "slots=%d" asid_slots;
      Printf.sprintf "quantum=%d" quantum; Printf.sprintf "slo=%d" slo;
      Printf.sprintf "fuel=%d" cell_fuel;
      Printf.sprintf "queue=%d" admission.Serve.queue_capacity ]
  in
  let setup =
    campaign_setup ~target:"resilience" ~fingerprint
      ~cells:(List.length axes)
  in
  let grid =
    LX.resilience_grid_slots ?domains:!jobs ~cached:setup.Campaign.cached
      ?cell_hook:setup.Campaign.cell_hook ~quanta:[ quantum ] ~admission
      ~cell_fuel ~weights ~deadline:slo ~fault_seed ~seed ~jobs:njobs
      ~slots:asid_slots ~kind:Kind.Huffman ~policies ~fault_rates ~rates
      ~config:Dtb.paper_config pool
  in
  setup.Campaign.close ();
  (* the fault-free control column, keyed by (policy, quantum, rate):
     the denominator of every p99-degradation ratio *)
  let baseline_p99 =
    List.filter_map
      (fun slot ->
        match slot with
        | Sweep.Completed (cell : LX.resilience_cell)
          when cell.LX.rc_fault_rate = 0.0 ->
            Some
              ( (cell.LX.rc_policy, cell.LX.rc_quantum, cell.LX.rc_rate),
                cell.LX.rc_result.Chaos.cv_serve.Serve.sv_summary.Serve.s_p99
              )
        | _ -> None)
      grid
  in
  let t =
    Table.create
      ~columns:
        [ ("policy", Table.Left); ("frate", Table.Right);
          ("rate/Mcyc", Table.Right); ("jobs", Table.Right);
          ("done", Table.Right); ("failed", Table.Right);
          ("shed", Table.Right); ("attain", Table.Right);
          ("goodput", Table.Right); ("inj", Table.Right);
          ("det", Table.Right); ("retries", Table.Right);
          ("p99", Table.Right); ("p99x", Table.Right) ]
      ()
  in
  let prev_policy = ref None in
  let points = ref [] in
  List.iter2
    (fun (policy, _quantum, fault_rate, rate) slot ->
      (match !prev_policy with
      | Some p when p <> policy -> Table.add_rule t
      | _ -> ());
      prev_policy := Some policy;
      match slot with
      | Sweep.Quarantined q ->
          note_quarantine ~target:"resilience" q;
          Table.add_row t
            [ Dtb.policy_name policy; Printf.sprintf "%g" fault_rate;
              Printf.sprintf "%g" rate; "(quarantined)"; "-"; "-"; "-";
              "-"; "-"; "-"; "-"; "-"; "-"; "-" ]
      | Sweep.Completed (cell : LX.resilience_cell) ->
          let s = cell.LX.rc_result.Chaos.cv_serve.Serve.sv_summary in
          let cs = cell.LX.rc_result.Chaos.cv_summary in
          let degradation =
            match
              List.assoc_opt
                (cell.LX.rc_policy, cell.LX.rc_quantum, cell.LX.rc_rate)
                baseline_p99
            with
            | Some base when base > 0 ->
                float_of_int s.Serve.s_p99 /. float_of_int base
            | _ -> 1.0
          in
          Table.add_row t
            [ Dtb.policy_name cell.LX.rc_policy;
              Printf.sprintf "%g" cell.LX.rc_fault_rate;
              Printf.sprintf "%g" cell.LX.rc_rate;
              Table.cell_int s.Serve.s_jobs;
              Table.cell_int s.Serve.s_completed;
              Table.cell_int s.Serve.s_failed;
              Table.cell_int s.Serve.s_shed;
              Printf.sprintf "%.3f" cs.Chaos.cs_attainment;
              Printf.sprintf "%.3f" cs.Chaos.cs_goodput;
              Table.cell_int cs.Chaos.cs_injected;
              Table.cell_int cs.Chaos.cs_detected;
              Table.cell_int cs.Chaos.cs_job_retries;
              Table.cell_int s.Serve.s_p99;
              Printf.sprintf "%.3fx" degradation ];
          points :=
            {
              Uhm_core.Perf.rp_policy = Dtb.policy_name cell.LX.rc_policy;
              rp_fault_rate = cell.LX.rc_fault_rate;
              rp_rate = cell.LX.rc_rate;
              rp_quantum = cell.LX.rc_quantum;
              rp_jobs = s.Serve.s_jobs;
              rp_completed = s.Serve.s_completed;
              rp_failed = s.Serve.s_failed;
              rp_shed = s.Serve.s_shed;
              rp_slo_attainment = cs.Chaos.cs_attainment;
              rp_goodput = cs.Chaos.cs_goodput;
              rp_injected = cs.Chaos.cs_injected;
              rp_detected = cs.Chaos.cs_detected;
              rp_job_retries = cs.Chaos.cs_job_retries;
              rp_p99 = s.Serve.s_p99;
              rp_p99_degradation = degradation;
            }
            :: !points)
    axes grid;
  Table.print t;
  let points = List.rev !points in
  (* the control column must be clean: no injections, no failures *)
  let dirty_control =
    List.filter
      (fun p ->
        p.Uhm_core.Perf.rp_fault_rate = 0.0
        && (p.Uhm_core.Perf.rp_injected > 0
           || p.Uhm_core.Perf.rp_failed > 0))
      points
  in
  if dirty_control = [] then
    print_endline
      "\nno wrong answers at any campaign point: every accepted completion\n\
       matched its fault-free solo run (the supervised grid quarantines\n\
       any cell violating this).  Fault-rate-0 columns are the control --\n\
       zero injections, zero failures -- and the p99x column prices the\n\
       tail-latency cost of surviving each fault rate."
  else begin
    Printf.eprintf
      "bench: resilience: %d control cell(s) saw injections or failures\n"
      (List.length dirty_control);
    incr quarantined_cells
  end;
  let path = bench_json_path () in
  let samples, sweep, load =
    if Sys.file_exists path then
      ( Uhm_core.Perf.read_samples ~path,
        Uhm_core.Perf.read_sweep ~path,
        Uhm_core.Perf.read_load ~path )
    else ([], None, None)
  in
  let res_bench =
    { Uhm_core.Perf.res_seed = seed; res_slots = asid_slots; res_slo = slo;
      res_points = points }
  in
  Uhm_core.Perf.write_json ?sweep ?load ~resilience:res_bench ~path samples;
  Printf.printf
    "\nwrote %s (resilience section: %d points, %d preserved samples)\n"
    path (List.length points) (List.length samples)

(* ------------------------------------------------------------------ *)
(* Fault injection and recovery                                        *)
(* ------------------------------------------------------------------ *)

let faults () =
  section
    "X12: fault injection and recovery -- overhead vs fault rate per DTB \
     policy";
  let module FI = Uhm_fault.Injector in
  let module FE = Uhm_fault.Experiment in
  let programs =
    List.map
      (fun name -> (name, compile name))
      [ "fact_iter"; "gcd"; "flat_straightline" ]
  in
  let policies = [ Dtb.Flush_on_switch; Dtb.Tagged; Dtb.Partitioned ] in
  let axes =
    FE.fault_axes ~quanta:[ 64 ] ~classes:FI.all_classes
      ~rates:FE.default_rates ~policies ~configs:[ Dtb.paper_config ] ()
  in
  let fingerprint =
    [ "bench faults";
      "programs=" ^ String.concat "," (List.map fst programs);
      "classes="
      ^ String.concat "," (List.map FI.class_name FI.all_classes);
      "rates="
      ^ String.concat "," (List.map (Printf.sprintf "%h") FE.default_rates);
      "policies=" ^ String.concat "," (List.map Dtb.policy_name policies);
      "quantum=64"; "seed=1" ]
  in
  let setup =
    campaign_setup ~target:"faults" ~fingerprint ~cells:(List.length axes)
  in
  let slots =
    FE.fault_grid_slots ?domains:!jobs ~quanta:[ 64 ]
      ~cached:setup.Campaign.cached ?cell_hook:setup.Campaign.cell_hook
      ~kind:Kind.Huffman ~classes:FI.all_classes ~rates:FE.default_rates
      ~policies ~configs:[ Dtb.paper_config ] programs
  in
  setup.Campaign.close ();
  let grid =
    List.filter_map
      (function Sweep.Completed p -> Some p | Sweep.Quarantined _ -> None)
      slots
  in
  let t =
    Table.create
      ~columns:
        [ ("class", Table.Left); ("rate", Table.Right);
          ("policy", Table.Left); ("overhead", Table.Right);
          ("injected", Table.Right); ("detected", Table.Right);
          ("retries", Table.Right); ("rollbacks", Table.Right);
          ("downgrades", Table.Right); ("recovered", Table.Left) ]
      ()
  in
  let prev_class = ref None in
  List.iter2
    (fun (cls, rate, policy, _, _) slot ->
      (match !prev_class with
      | Some c when c <> cls -> Table.add_rule t
      | _ -> ());
      prev_class := Some cls;
      match slot with
      | Sweep.Quarantined q ->
          note_quarantine ~target:"faults" q;
          Table.add_row t
            [ FI.class_name cls; Printf.sprintf "%g" rate;
              Dtb.policy_name policy; "-"; "-"; "-"; "-"; "-"; "-";
              "(quarantined)" ]
      | Sweep.Completed (p : FE.point) ->
          Table.add_row t
            [ FI.class_name p.FE.fp_class;
              Printf.sprintf "%g" p.FE.fp_rate;
              Dtb.policy_name p.FE.fp_policy;
              Printf.sprintf "%.4fx" p.FE.fp_overhead;
              Table.cell_int p.FE.fp_injected;
              Table.cell_int p.FE.fp_detected;
              Table.cell_int p.FE.fp_retries;
              Table.cell_int p.FE.fp_rollbacks;
              Table.cell_int p.FE.fp_downgrades;
              (if p.FE.fp_recovered_ok then "yes" else "FAILED") ])
    axes slots;
  Table.print t;
  let bad = List.filter (fun (p : FE.point) -> not p.FE.fp_recovered_ok) grid in
  if bad = [] && List.length grid = List.length slots then
    Printf.printf
      "\nrecovery invariant holds at all %d campaign points: every faulty\n\
       run converged to the fault-free architectural state.  Rate-0 rows\n\
       price the pure guard overhead (t_guard per verified hit); mem-word\n\
       rows add checkpoint and rollback-replay costs; downgraded programs\n\
       fall back to pure DIR interpretation, the section-7 crossover\n\
       baseline.\n"
      (List.length grid)
  else
    Printf.printf "\nRECOVERY FAILED at %d of %d campaign points\n"
      (List.length bad + (List.length slots - List.length grid))
      (List.length slots)

let targets : (string * (unit -> unit)) list =
  [
    ("table1", table1); ("table2", table2); ("table3", table3);
    ("figure1", figure1); ("figure2", figure2); ("figure3", figure3);
    ("figure4", figure4); ("model-vs-sim", model_vs_sim);
    ("encodings", encodings); ("assoc", assoc); ("alloc", alloc);
    ("crossover", crossover); ("assist", assist); ("blocks", blocks);
    ("languages", languages); ("summary", summary); ("datapath", datapath);
    ("levels", levels); ("mix", mix); ("faults", faults);
    ("locality", locality); ("micro", micro); ("perf", perf);
    ("load", load); ("resilience", resilience);
  ]

let () =
  (* strip -j N / -jN / --journal PATH / --resume PATH, leaving targets *)
  let rec parse_args acc = function
    | [] -> List.rev acc
    | "--journal" :: path :: rest ->
        journal_path := Some path;
        parse_args acc rest
    | "--resume" :: path :: rest ->
        resume_path := Some path;
        parse_args acc rest
    | ("--journal" | "--resume") :: [] ->
        prerr_endline "bench: --journal/--resume expect a file path";
        exit 2
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some d when d > 0 ->
            jobs := Some d;
            parse_args acc rest
        | _ ->
            prerr_endline "bench: -j expects a positive integer";
            exit 2)
    | arg :: rest
      when String.length arg > 2 && String.sub arg 0 2 = "-j" -> (
        match int_of_string_opt (String.sub arg 2 (String.length arg - 2)) with
        | Some d when d > 0 ->
            jobs := Some d;
            parse_args acc rest
        | _ ->
            prerr_endline "bench: -j expects a positive integer";
            exit 2)
    | arg :: rest -> parse_args (arg :: acc) rest
  in
  let names = parse_args [] (List.tl (Array.to_list Sys.argv)) in
  let requested =
    match names with
    | _ :: _ when not (List.mem "all" names) -> names
    | _ ->
        List.map fst
          (List.filter
             (fun (n, _) ->
               n <> "micro" && n <> "perf" && n <> "load"
               && n <> "resilience")
             targets)
  in
  List.iter
    (fun name ->
      match List.assoc_opt name targets with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown bench target %s; available: %s\n" name
            (String.concat ", " (List.map fst targets));
          exit 1)
    requested;
  if !quarantined_cells > 0 then begin
    Printf.eprintf "bench: %d cell(s) quarantined; reports above are \
                    complete except for the marked rows\n"
      !quarantined_cells;
    exit 1
  end
