(* Unit and property tests for the bit-stream substrate. *)

module Bits = Uhm_bitstream.Bits
module Writer = Uhm_bitstream.Writer
module Reader = Uhm_bitstream.Reader

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- Bits ------------------------------------------------------------------ *)

let test_width_for () =
  check_int "0 alternatives" 0 (Bits.width_for 0);
  check_int "1 alternative" 0 (Bits.width_for 1);
  check_int "2 alternatives" 1 (Bits.width_for 2);
  check_int "3 alternatives" 2 (Bits.width_for 3);
  check_int "4 alternatives" 2 (Bits.width_for 4);
  check_int "5 alternatives" 3 (Bits.width_for 5);
  check_int "256 alternatives" 8 (Bits.width_for 256);
  check_int "257 alternatives" 9 (Bits.width_for 257)

let test_width_of_value () =
  check_int "value 0" 0 (Bits.width_of_value 0);
  check_int "value 1" 1 (Bits.width_of_value 1);
  check_int "value 2" 2 (Bits.width_of_value 2);
  check_int "value 3" 2 (Bits.width_of_value 3);
  check_int "value 4" 3 (Bits.width_of_value 4);
  check_int "value 255" 8 (Bits.width_of_value 255)

let test_fits () =
  check_bool "0 in 0 bits" true (Bits.fits ~bits:0 0);
  check_bool "1 not in 0 bits" false (Bits.fits ~bits:0 1);
  check_bool "3 in 2 bits" true (Bits.fits ~bits:2 3);
  check_bool "4 not in 2 bits" false (Bits.fits ~bits:2 4);
  check_bool "negative never fits" false (Bits.fits ~bits:10 (-1))

let test_zigzag_known () =
  List.iter
    (fun (v, expected) -> check_int (Printf.sprintf "zigzag %d" v) expected (Bits.zigzag v))
    [ (0, 0); (-1, 1); (1, 2); (-2, 3); (2, 4); (-3, 5) ]

let prop_zigzag_roundtrip =
  QCheck.Test.make ~name:"unzigzag (zigzag v) = v" ~count:500
    QCheck.(int_range (-1_000_000_000) 1_000_000_000)
    (fun v -> Bits.unzigzag (Bits.zigzag v) = v)

let prop_zigzag_nonneg =
  QCheck.Test.make ~name:"zigzag is non-negative" ~count:500
    QCheck.(int_range (-1_000_000_000) 1_000_000_000)
    (fun v -> Bits.zigzag v >= 0)

(* -- Writer / Reader ------------------------------------------------------- *)

let test_write_read_simple () =
  let w = Writer.create () in
  Writer.put w ~bits:3 0b101;
  Writer.put w ~bits:5 0b11011;
  Writer.put w ~bits:0 0;
  Writer.put w ~bits:13 4095;
  let r = Reader.of_string (Writer.to_reader_input w) in
  check_int "field 1" 0b101 (Reader.get r 3);
  check_int "field 2" 0b11011 (Reader.get r 5);
  check_int "zero-width field" 0 (Reader.get r 0);
  check_int "field 3" 4095 (Reader.get r 13)

let test_msb_first_layout () =
  let w = Writer.create () in
  Writer.put w ~bits:4 0b1010;
  Writer.put w ~bits:4 0b0110;
  let bytes = Writer.contents w in
  check_int "byte layout" 0b10100110 (Char.code (Bytes.get bytes 0))

let test_spanning_byte_boundary () =
  let w = Writer.create () in
  Writer.put w ~bits:6 0b111111;
  Writer.put w ~bits:6 0b000011;
  let r = Reader.of_string (Writer.to_reader_input w) in
  check_int "first" 0b111111 (Reader.get r 6);
  check_int "second" 0b000011 (Reader.get r 6)

let test_unary () =
  let w = Writer.create () in
  Writer.put_unary w 0;
  Writer.put_unary w 5;
  Writer.put_unary w 1;
  let r = Reader.of_string (Writer.to_reader_input w) in
  check_int "unary 0" 0 (Reader.get_unary r);
  check_int "unary 5" 5 (Reader.get_unary r);
  check_int "unary 1" 1 (Reader.get_unary r)

let test_align () =
  let w = Writer.create () in
  Writer.put w ~bits:3 0b111;
  Writer.align w 8;
  check_int "aligned length" 8 (Writer.length_bits w);
  Writer.align w 8;
  check_int "align is idempotent" 8 (Writer.length_bits w);
  Writer.put w ~bits:1 1;
  Writer.align w 16;
  check_int "align to 16" 16 (Writer.length_bits w)

let test_seek_and_pos () =
  let w = Writer.create () in
  Writer.put w ~bits:8 0xAB;
  Writer.put w ~bits:8 0xCD;
  let r = Reader.of_string (Writer.to_reader_input w) in
  check_int "initial pos" 0 (Reader.pos r);
  ignore (Reader.get r 8);
  check_int "pos after 8" 8 (Reader.pos r);
  Reader.seek r 4;
  check_int "mid-byte seek" 0xBC (Reader.get r 8);
  check_int "remaining" 4 (Reader.remaining_bits r)

let test_out_of_bits () =
  let w = Writer.create () in
  Writer.put w ~bits:4 7;
  let r = Reader.of_string (Writer.to_reader_input w) in
  ignore (Reader.get r 8);
  Alcotest.check_raises "reading past the end" Reader.Out_of_bits (fun () ->
      ignore (Reader.get r 1))

let test_put_overflow_rejected () =
  let w = Writer.create () in
  Alcotest.check_raises "value too wide"
    (Invalid_argument "Writer.put: value 4 does not fit in 2 bits") (fun () ->
      Writer.put w ~bits:2 4)

let test_writer_growth () =
  let w = Writer.create ~initial_capacity_bytes:1 () in
  for i = 0 to 999 do
    Writer.put w ~bits:17 (i land 0x1FFFF)
  done;
  check_int "length" (1000 * 17) (Writer.length_bits w);
  let r = Reader.of_string (Writer.to_reader_input w) in
  for i = 0 to 999 do
    check_int (Printf.sprintf "value %d" i) (i land 0x1FFFF) (Reader.get r 17)
  done

let field_list_gen =
  (* widths 1..30 with values that fit *)
  QCheck.Gen.(
    list_size (int_range 1 200)
      (int_range 1 30 >>= fun bits ->
       map (fun v -> (bits, v)) (int_bound ((1 lsl bits) - 1))))

let prop_writer_reader_roundtrip =
  QCheck.Test.make ~name:"writer/reader round-trip of arbitrary field lists"
    ~count:200
    (QCheck.make ~print:(fun l ->
         String.concat ";" (List.map (fun (b, v) -> Printf.sprintf "%d:%d" b v) l))
       field_list_gen)
    (fun fields ->
      let w = Writer.create () in
      List.iter (fun (bits, v) -> Writer.put w ~bits v) fields;
      let r = Reader.of_string (Writer.to_reader_input w) in
      List.for_all (fun (bits, v) -> Reader.get r bits = v) fields)

let prop_length_is_sum_of_widths =
  QCheck.Test.make ~name:"writer length equals sum of field widths" ~count:200
    (QCheck.make field_list_gen)
    (fun fields ->
      let w = Writer.create () in
      List.iter (fun (bits, v) -> Writer.put w ~bits v) fields;
      Writer.length_bits w = List.fold_left (fun acc (b, _) -> acc + b) 0 fields)

(* Differential test pinning the word-wise [Reader.get] to the retained
   bit-wise reference: random byte strings, random (seek, width) plans,
   including widths up to [Bits.max_width]. *)
let prop_get_matches_bitwise =
  let gen =
    QCheck.Gen.(
      string_size ~gen:(map Char.chr (int_bound 255)) (int_range 8 64)
      >>= fun data ->
      let total = 8 * String.length data in
      list_size (int_range 1 50)
        (int_range 0 Bits.max_width >>= fun bits ->
         map (fun p -> (p, bits)) (int_bound (max 0 (total - bits))))
      >>= fun plan -> return (data, plan))
  in
  QCheck.Test.make ~name:"word-wise Reader.get = bit-wise reference" ~count:300
    (QCheck.make
       ~print:(fun (data, plan) ->
         Printf.sprintf "%S %s" data
           (String.concat ";"
              (List.map (fun (p, b) -> Printf.sprintf "%d+%d" p b) plan)))
       gen)
    (fun (data, plan) ->
      let fast = Reader.of_string data in
      let slow = Reader.of_string data in
      List.for_all
        (fun (p, bits) ->
          Reader.seek fast p;
          Reader.seek slow p;
          Reader.get fast bits = Reader.get_bitwise slow bits
          && Reader.pos fast = Reader.pos slow)
        plan)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  ( "bitstream",
    [
      Alcotest.test_case "width_for" `Quick test_width_for;
      Alcotest.test_case "width_of_value" `Quick test_width_of_value;
      Alcotest.test_case "fits" `Quick test_fits;
      Alcotest.test_case "zigzag known values" `Quick test_zigzag_known;
      Alcotest.test_case "write/read simple fields" `Quick test_write_read_simple;
      Alcotest.test_case "MSB-first byte layout" `Quick test_msb_first_layout;
      Alcotest.test_case "fields spanning byte boundaries" `Quick
        test_spanning_byte_boundary;
      Alcotest.test_case "unary coding" `Quick test_unary;
      Alcotest.test_case "alignment" `Quick test_align;
      Alcotest.test_case "seek and pos" `Quick test_seek_and_pos;
      Alcotest.test_case "out of bits" `Quick test_out_of_bits;
      Alcotest.test_case "overflowing put rejected" `Quick
        test_put_overflow_rejected;
      Alcotest.test_case "writer growth" `Quick test_writer_growth;
      qcheck prop_zigzag_roundtrip;
      qcheck prop_zigzag_nonneg;
      qcheck prop_writer_reader_roundtrip;
      qcheck prop_length_is_sum_of_widths;
      qcheck prop_get_matches_bitwise;
    ] )
