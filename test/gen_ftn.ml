(* QCheck generator for well-formed, terminating Fortran-S programs.

   Termination and definedness by construction: DO loops over literal
   bounds with protected loop variables, GOTOs only forward to a label that
   terminates the same statement block, division/modulus by non-zero
   literals, and array subscripts either literal in range or clamped with
   MOD into 1..size.  Functions may call only previously generated units,
   so call graphs are acyclic. *)

open QCheck.Gen
module A = Uhm_ftn.Ast

type genv = {
  scalars : string list;       (* assignable *)
  loop_vars : string list;     (* readable only *)
  arrays : (string * int) list;
  funcs : (string * int) list; (* callable functions *)
  subs : (string * int) list;  (* callable subroutines *)
  fresh : int ref;
  next_label : int ref;
}

let fresh_name env prefix =
  let n = !(env.fresh) in
  env.fresh := n + 1;
  Printf.sprintf "%s%d" prefix n

let fresh_label env =
  let l = !(env.next_label) in
  env.next_label := l + 10;
  l

let readable env = env.scalars @ env.loop_vars

let rec expr env depth =
  let literal = map (fun n -> A.Num n) (int_range (-50) 50) in
  let base =
    match readable env with
    | [] -> [ (3, literal) ]
    | vars -> [ (2, literal); (3, map (fun v -> A.Var v) (oneofl vars)) ]
  in
  let arrays =
    match env.arrays with
    | [] -> []
    | arrays ->
        [
          ( 2,
            oneofl arrays >>= fun (name, size) ->
            map (fun i -> A.Element (name, i)) (safe_index env size) );
        ]
  in
  let calls =
    if depth <= 0 then []
    else
      match env.funcs with
      | [] -> []
      | funcs ->
          [
            ( 1,
              oneofl funcs >>= fun (name, arity) ->
              let args =
                flatten_l (List.init arity (fun _ -> expr env (depth - 1)))
              in
              map
                (fun args ->
                  match args with
                  | [ one ] -> A.Element (name, one)
                  | args -> A.Funcall (name, args))
                args );
          ]
  in
  let compound =
    if depth <= 0 then []
    else
      [
        ( 3,
          oneofl A.[ Add; Sub; Mul; Eq; Ne; Lt; Le; Gt; Ge; And; Or ]
          >>= fun op ->
          map2 (fun a b -> A.Binop (op, a, b)) (expr env (depth - 1))
            (expr env (depth - 1)) );
        ( 1,
          oneofl A.[ Div; Mod ] >>= fun op ->
          map2
            (fun a d -> A.Binop (op, a, A.Num d))
            (expr env (depth - 1))
            (oneof [ int_range 1 9; int_range (-9) (-1) ]) );
        (1, map (fun e -> A.Unop (A.Neg, e)) (expr env (depth - 1)));
        (1, map (fun e -> A.Unop (A.Not, e)) (expr env (depth - 1)));
      ]
  in
  frequency (base @ arrays @ calls @ compound)

(* an index certain to be in 1..size *)
and safe_index env size =
  frequency
    [
      (3, map (fun i -> A.Num i) (int_range 1 size));
      ( 1,
        map
          (fun e ->
            (* MOD(MOD(e, size) + size, size) + 1 *)
            A.Binop
              ( A.Add,
                A.Binop
                  ( A.Mod,
                    A.Binop
                      (A.Add, A.Binop (A.Mod, e, A.Num size), A.Num size),
                    A.Num size ),
                A.Num 1 ))
          (expr env 1) );
    ]

let simple_stmt env =
  let assigns =
    match env.scalars with
    | [] -> []
    | scalars ->
        [ (4, map2 (fun v e -> A.Assign (v, e)) (oneofl scalars) (expr env 2)) ]
  in
  let array_writes =
    match env.arrays with
    | [] -> []
    | arrays ->
        [
          ( 2,
            oneofl arrays >>= fun (name, size) ->
            map2
              (fun i e -> A.Assign_element (name, i, e))
              (safe_index env size) (expr env 2) );
        ]
  in
  let io =
    [
      (2, map (fun e -> A.Print e) (expr env 2));
      (1, map (fun s -> A.Print_string s) (oneofl [ "OUT"; "X ="; "#" ]));
    ]
  in
  let calls =
    match env.subs with
    | [] -> []
    | subs ->
        [
          ( 1,
            oneofl subs >>= fun (name, arity) ->
            map
              (fun args -> A.Call (name, args))
              (flatten_l (List.init arity (fun _ -> expr env 1))) );
        ]
  in
  frequency (assigns @ array_writes @ io @ calls)

let rec stmt env depth =
  if depth <= 0 then map (fun s -> (None, s)) (simple_stmt env)
  else
    frequency
      [
        (4, map (fun s -> (None, s)) (simple_stmt env));
        ( 1,
          map2
            (fun c s -> (None, A.If_simple (c, s)))
            (expr env 2) (simple_stmt env) );
        ( 1,
          map3
            (fun c t e -> (None, A.If_block (c, t, e)))
            (expr env 2)
            (body env (depth - 1))
            (body env (depth - 1)) );
        ( 2,
          (* bounded DO over a protected fresh variable; the name and label
             must be minted per sample, hence inside the bind *)
          return () >>= fun () ->
          let v = fresh_name env "I" in
          let terminal = fresh_label env in
          int_range 1 3 >>= fun from_ ->
          int_range 0 4 >>= fun span ->
          oneofl [ 1; 2; -1 ] >>= fun step ->
          let from_, to_ =
            if step > 0 then (from_, from_ + span) else (from_ + span, from_)
          in
          let inner = { env with loop_vars = v :: env.loop_vars } in
          map
            (fun inner_body ->
              ( Some v (* marker replaced below *),
                A.Do
                  {
                    A.terminal;
                    var = v;
                    from_ = A.Num from_;
                    to_ = A.Num to_;
                    step;
                    body = inner_body @ [ (Some terminal, A.Continue) ];
                  } )
              |> fun (_, s) -> (None, s))
            (body inner (depth - 1)) );
        ( 1,
          (* a guarded forward GOTO: IF (c) GOTO L ... L CONTINUE *)
          return () >>= fun () ->
          let label = fresh_label env in
          map2
            (fun c skipped ->
              (None,
               A.If_block
                 ( A.Num 1,
                   ((None, A.If_simple (c, A.Goto label)) :: skipped)
                   @ [ (Some label, A.Continue) ],
                   [] )))
            (expr env 2)
            (body env (depth - 1)) );
      ]

and body env depth = list_size (int_range 1 3) (stmt env depth)

(* one program unit's scalars/arrays *)
let unit_env base_env =
  int_range 1 3 >>= fun n_scalars ->
  int_range 0 1 >>= fun n_arrays ->
  let scalars = List.init n_scalars (fun _ -> fresh_name base_env "V") in
  (if n_arrays = 0 then return []
   else map (fun size -> [ (fresh_name base_env "ARR", size) ]) (int_range 2 9))
  >>= fun arrays ->
  return
    ( { base_env with scalars = scalars @ base_env.scalars;
        arrays = arrays @ base_env.arrays },
      List.map (fun v -> { A.dname = v; dim = None }) scalars
      @ List.map (fun (a, n) -> { A.dname = a; dim = Some n }) arrays )

(* DO-loop variables are created on the fly; declare them after the fact *)
let rec do_vars acc (body : A.body) =
  List.fold_left
    (fun acc (_, stmt) ->
      match stmt with
      | A.Do d -> do_vars (d.A.var :: acc) d.A.body
      | A.If_block (_, t, e) -> do_vars (do_vars acc t) e
      | _ -> acc)
    acc body

let with_loop_var_decls (u : A.unit_) =
  let known =
    u.A.params
    @ List.map (fun d -> d.A.dname) u.A.decls
    @ (if u.A.kind = A.Function then [ u.A.uname ] else [])
  in
  let extra =
    List.sort_uniq compare (do_vars [] u.A.body)
    |> List.filter (fun v -> not (List.mem v known))
    |> List.map (fun v -> { A.dname = v; dim = None })
  in
  { u with A.decls = u.A.decls @ extra }

let gen_function base_env =
  int_range 1 2 >>= fun arity ->
  let name = fresh_name base_env "F" in
  let params = List.init arity (fun k -> Printf.sprintf "%sP%d" name k) in
  let env0 =
    { base_env with scalars = name :: params; loop_vars = []; arrays = [] }
  in
  unit_env env0 >>= fun (env, decls) ->
  map2
    (fun stmts ret ->
      ( (name, arity),
        with_loop_var_decls
          {
            A.kind = A.Function;
            uname = name;
            params;
            decls;
            body = stmts @ [ (None, A.Assign (name, ret)); (None, A.Return) ];
          } ))
    (body env 1) (expr env 1)

let program_gen =
  let base =
    {
      scalars = [];
      loop_vars = [];
      arrays = [];
      funcs = [];
      subs = [];
      fresh = ref 0;
      next_label = ref 10;
    }
  in
  int_range 0 2 >>= fun n_funcs ->
  let rec gen_units n env acc =
    if n = 0 then return (env, List.rev acc)
    else
      gen_function env >>= fun ((fname, arity), u) ->
      gen_units (n - 1) { env with funcs = (fname, arity) :: env.funcs }
        (u :: acc)
  in
  gen_units n_funcs base [] >>= fun (env, functions) ->
  unit_env { env with scalars = []; loop_vars = []; arrays = [] }
  >>= fun (main_env, decls) ->
  int_range 1 3 >>= fun depth ->
  map
    (fun stmts ->
      {
        A.pname = "<gen-ftn>";
        units =
          with_loop_var_decls
            {
              A.kind = A.Program;
              uname = "MAIN";
              params = [];
              decls;
              body = stmts @ [ (None, A.Stop) ];
            }
          :: functions;
      })
    (body main_env depth)

let valid_program =
  QCheck.make
    ~print:(fun p -> A.show_program p)
    program_gen
