(* Tests for the Domain-based sweep engine: submission-order results,
   first-error-by-index exception propagation, pool reuse, UHM_JOBS
   parsing, end-to-end determinism of the experiment grids at 1 vs N
   domains, and the dir_steps memo. *)

module Sweep = Uhm_core.Sweep
module Experiment = Uhm_core.Experiment
module U = Uhm_core.Uhm
module Kind = Uhm_encoding.Kind
module Suite = Uhm_workload.Suite

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- The pool itself --------------------------------------------------------- *)

let test_map_order () =
  let xs = List.init 100 Fun.id in
  let expected = List.map (fun i -> i * i) xs in
  Alcotest.(check (list int))
    "4 domains = serial map" expected
    (Sweep.map ~domains:4 (fun i -> i * i) xs);
  Alcotest.(check (list int))
    "1 domain (inline path)" expected
    (Sweep.map ~domains:1 (fun i -> i * i) xs);
  Alcotest.(check (list int)) "empty job list" [] (Sweep.map ~domains:4 Fun.id []);
  Alcotest.(check (list int))
    "more domains than jobs" [ 9 ]
    (Sweep.map ~domains:8 (fun i -> i * i) [ 3 ])

exception Boom of int

let test_first_error_by_index () =
  (* jobs 3 and 7 both raise; the escaping exception must be job 3's
     regardless of which worker ran first *)
  match
    Sweep.map ~domains:4
      (fun i -> if i = 3 || i = 7 then raise (Boom i) else i)
      (List.init 16 Fun.id)
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> check_int "first raising job by index" 3 i

let test_pool_reuse () =
  let pool = Sweep.create ~domains:3 () in
  check_int "domain count" 3 (Sweep.domains pool);
  let a = Sweep.map_pool pool (fun i -> i * 2) (List.init 10 Fun.id) in
  let b = Sweep.map_pool pool (fun i -> i + 1) (List.init 5 Fun.id) in
  Sweep.shutdown pool;
  Alcotest.(check (list int)) "first batch" (List.init 10 (fun i -> i * 2)) a;
  Alcotest.(check (list int)) "second batch" (List.init 5 (fun i -> i + 1)) b

let with_jobs_env value f =
  let old = Sys.getenv_opt "UHM_JOBS" in
  Unix.putenv "UHM_JOBS" value;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "UHM_JOBS" (Option.value ~default:"" old))
    f

let test_jobs_env () =
  with_jobs_env "3" (fun () ->
      check_int "UHM_JOBS=3" 3 (Sweep.default_domains ()));
  with_jobs_env "garbage" (fun () ->
      check_bool "garbage falls back to a positive default" true
        (Sweep.default_domains () >= 1));
  with_jobs_env "0" (fun () ->
      check_bool "0 falls back to a positive default" true
        (Sweep.default_domains () >= 1));
  with_jobs_env "2" (fun () ->
      (* maps with no explicit ~domains pick the env value and stay ordered *)
      Alcotest.(check (list int))
        "env-driven map is ordered" (List.init 20 succ)
        (Sweep.map succ (List.init 20 Fun.id)))

(* A raising FIRST job is the earliest-index error by construction; the
   pool must drain the rest, propagate it, and stay usable — neither a
   deadlocked worker nor a leaked domain. *)
let test_raising_first_job () =
  let pool = Sweep.create ~domains:4 () in
  (match
     Sweep.map_pool pool
       (fun i -> if i = 0 then raise (Boom 0) else i)
       (List.init 16 Fun.id)
   with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> check_int "job 0's exception escapes" 0 i);
  (* the same pool still answers: no worker died holding the queue lock *)
  Alcotest.(check (list int))
    "pool usable after the error" [ 0; 2; 4 ]
    (Sweep.map_pool pool (fun i -> i * 2) [ 0; 1; 2 ]);
  Sweep.shutdown pool;
  (* the one-shot wrapper also survives (its private pool is torn down) *)
  (match
     Sweep.map ~domains:4
       (fun i -> if i = 0 then raise (Boom 0) else i)
       (List.init 8 Fun.id)
   with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> check_int "one-shot map: job 0's exception" 0 i);
  Alcotest.(check (list int))
    "fresh map after a failed one" [ 1; 2; 3 ]
    (Sweep.map ~domains:4 succ [ 0; 1; 2 ])

(* A raising cost hint fires in the caller before any job is dispatched;
   no worker can be left waiting on a batch that never starts. *)
exception Bad_cost

let test_raising_cost_hint () =
  let pool = Sweep.create ~domains:3 () in
  (match
     Sweep.map_pool pool
       ~cost:(fun i -> if i = 5 then raise Bad_cost else i)
       (fun i -> i)
       (List.init 8 Fun.id)
   with
  | _ -> Alcotest.fail "expected Bad_cost"
  | exception Bad_cost -> ());
  Alcotest.(check (list int))
    "pool usable after the cost error" [ 10; 11 ]
    (Sweep.map_pool pool (fun i -> i + 10) [ 0; 1 ]);
  Sweep.shutdown pool;
  (match
     Sweep.map ~domains:3
       ~cost:(fun i -> if i = 0 then raise Bad_cost else i)
       (fun i -> i)
       [ 0; 1; 2 ]
   with
  | _ -> Alcotest.fail "expected Bad_cost"
  | exception Bad_cost -> ());
  Alcotest.(check (list int))
    "fresh map after a cost error" [ 0; 1; 2 ]
    (Sweep.map ~domains:3 Fun.id [ 0; 1; 2 ])

(* -- Cost hints -------------------------------------------------------------- *)

let test_cost_results_identical () =
  let xs = List.init 50 Fun.id in
  let expected = List.map (fun i -> i * 3) xs in
  Alcotest.(check (list int))
    "cost hint leaves results byte-identical (4 domains)" expected
    (Sweep.map ~domains:4 ~cost:(fun i -> 100 - i) (fun i -> i * 3) xs);
  Alcotest.(check (list int))
    "cost hint leaves results byte-identical (1 domain)" expected
    (Sweep.map ~domains:1 ~cost:(fun i -> 100 - i) (fun i -> i * 3) xs)

let test_cost_first_error () =
  (* the cost hint makes job 7 run before job 3, but the escaping
     exception must still be the lowest submission index's *)
  match
    Sweep.map ~domains:4
      ~cost:(fun i -> i)
      (fun i -> if i = 3 || i = 7 then raise (Boom i) else i)
      (List.init 16 Fun.id)
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> check_int "first raising job by submission index" 3 i

let test_cost_claim_order () =
  (* at one domain the caller runs the jobs itself, so a side effect
     observes the claim order: descending cost, submission order on ties *)
  let order = ref [] in
  let results =
    Sweep.map ~domains:1
      ~cost:(fun i -> i mod 4)
      (fun i ->
        order := i :: !order;
        i * 10)
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  Alcotest.(check (list int))
    "results in submission order"
    [ 0; 10; 20; 30; 40; 50; 60; 70 ]
    results;
  Alcotest.(check (list int))
    "execution in descending cost, stable on ties"
    [ 3; 7; 2; 6; 1; 5; 0; 4 ]
    (List.rev !order)

(* -- Determinism of the experiment grids ------------------------------------- *)

let subset = [ "fact_iter"; "gcd"; "flat_straightline"; "ftn_euclid" ]

let test_summary_rows_deterministic () =
  let r1 = Experiment.summary_rows ~domains:1 ~names:subset () in
  let r4 = Experiment.summary_rows ~domains:4 ~names:subset () in
  check_int "row count" (List.length subset) (List.length r1);
  Alcotest.(check (list string))
    "row order = submission order"
    [ "fact_iter"; "gcd"; "flat_straightline"; "ftn_euclid" ]
    (List.map (fun r -> r.Experiment.sr_program) r1);
  check_bool "summary rows identical at 1 vs 4 domains" true (r1 = r4)

let test_dtb_grid_deterministic () =
  let progs =
    List.map
      (fun n -> (n, Suite.compile (Suite.find n)))
      [ "fact_iter"; "fib_rec" ]
  in
  let grid d =
    Experiment.dtb_grid ~domains:d ~kind:Kind.Huffman
      ~configs:(Experiment.capacity_configs ())
      progs
  in
  let g1 = grid 1 and g4 = grid 4 in
  check_int "programs" 2 (List.length g1);
  check_int "points per program"
    (List.length (Experiment.capacity_configs ()))
    (List.length (snd (List.hd g1)));
  check_bool "grid identical at 1 vs 4 domains" true (g1 = g4)

(* -- Supervised sweeps: retry, quarantine, cache, hooks ---------------------- *)

(* a fast retry schedule so the tests don't sleep for real *)
let fast = { Sweep.default_supervision with Sweep.sv_backoff = 1e-4 }

let slot_value = function
  | Sweep.Completed v -> Some v
  | Sweep.Quarantined _ -> None

let test_supervised_all_ok () =
  let xs = List.init 20 Fun.id in
  let expected = List.map (fun i -> Sweep.Completed (i * i)) xs in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "all cells completed at %d domain(s)" domains)
        true
        (Sweep.map_supervised ~supervision:fast ~domains
           (fun i -> i * i)
           xs
        = expected))
    [ 1; 4 ]

let test_supervised_quarantine () =
  (* cell 3 fails on every attempt: the grid must still complete, with
     exactly that cell quarantined after the full retry budget *)
  List.iter
    (fun domains ->
      let slots =
        Sweep.map_supervised ~supervision:fast ~domains
          (fun i -> if i = 3 then raise (Boom i) else i * 10)
          (List.init 8 Fun.id)
      in
      check_int "slot count" 8 (List.length slots);
      List.iteri
        (fun i slot ->
          if i = 3 then
            match slot with
            | Sweep.Completed _ -> Alcotest.fail "cell 3 must be quarantined"
            | Sweep.Quarantined q ->
                check_int "quarantine index" 3 q.Sweep.q_index;
                check_int "attempts = sv_attempts" fast.Sweep.sv_attempts
                  q.Sweep.q_attempts;
                check_bool "reason mentions the exception" true
                  (String.length q.Sweep.q_reason > 0)
          else
            Alcotest.(check (option int))
              (Printf.sprintf "cell %d intact" i)
              (Some (i * 10)) (slot_value slot))
        slots)
    [ 1; 4 ]

let test_supervised_retry_then_succeed () =
  (* cell 2 fails twice and then succeeds; the hook must see the true
     attempt count and the slot must carry the eventual value *)
  List.iter
    (fun domains ->
      let failures = Array.make 8 0 in
      let m = Mutex.create () in
      let hook_attempts = Hashtbl.create 8 in
      let hook ~index ~attempts slot =
        Mutex.lock m;
        Hashtbl.replace hook_attempts index (attempts, slot_value slot);
        Mutex.unlock m
      in
      let slots =
        Sweep.map_supervised ~supervision:fast ~domains ~cell_hook:hook
          (fun i ->
            if i = 2 then begin
              (* attempts of one cell always run on one domain, in order *)
              let k =
                Mutex.lock m;
                failures.(i) <- failures.(i) + 1;
                let k = failures.(i) in
                Mutex.unlock m;
                k
              in
              if k <= 2 then raise (Boom i)
            end;
            i + 100)
          (List.init 8 Fun.id)
      in
      List.iteri
        (fun i slot ->
          Alcotest.(check (option int))
            (Printf.sprintf "cell %d completed (%d domains)" i domains)
            (Some (i + 100)) (slot_value slot))
        slots;
      Alcotest.(check (option int))
        "hook saw cell 2 on its third attempt"
        (Some 3)
        (Option.map fst (Hashtbl.find_opt hook_attempts 2));
      Alcotest.(check (option int))
        "hook saw cell 0 on its first attempt"
        (Some 1)
        (Option.map fst (Hashtbl.find_opt hook_attempts 0)))
    [ 1; 4 ]

let test_supervised_cached () =
  (* cached cells are served without running the job or firing the hook *)
  List.iter
    (fun domains ->
      let ran = Array.make 6 false in
      let m = Mutex.create () in
      let hooked = Hashtbl.create 6 in
      let hook ~index ~attempts:_ _slot =
        Mutex.lock m;
        Hashtbl.replace hooked index ();
        Mutex.unlock m
      in
      let cached i = if i mod 2 = 0 then Some (i * 1000) else None in
      let slots =
        Sweep.map_supervised ~supervision:fast ~domains ~cached
          ~cell_hook:hook
          (fun i ->
            Mutex.lock m;
            ran.(i) <- true;
            Mutex.unlock m;
            i * 1000)
          (List.init 6 Fun.id)
      in
      List.iteri
        (fun i slot ->
          Alcotest.(check (option int))
            (Printf.sprintf "cell %d value" i)
            (Some (i * 1000)) (slot_value slot);
          check_bool
            (Printf.sprintf "cell %d ran iff not cached" i)
            (i mod 2 <> 0) ran.(i);
          check_bool
            (Printf.sprintf "hook fired iff cell %d was computed" i)
            (i mod 2 <> 0)
            (Hashtbl.mem hooked i))
        slots)
    [ 1; 4 ]

let test_supervised_wall_watchdog () =
  (* a genuinely wedged job (sleeping far past the limit) is quarantined
     by the wall-clock watchdog while the rest of the grid completes;
     needs >= 2 domains so a worker can be written off *)
  let sv =
    { fast with Sweep.sv_attempts = 1; sv_wall_limit = Some 0.05;
      sv_poll = 0.005 }
  in
  let slots =
    Sweep.map_supervised ~supervision:sv ~domains:3
      (fun i ->
        if i = 1 then Unix.sleepf 1.2;
        i)
      [ 0; 1; 2; 3 ]
  in
  List.iteri
    (fun i slot ->
      match (i, slot) with
      | 1, Sweep.Quarantined q ->
          check_bool "watchdog reason" true
            (String.length q.Sweep.q_reason > 0)
      | 1, Sweep.Completed _ -> Alcotest.fail "wedged cell must be quarantined"
      | _, slot ->
          Alcotest.(check (option int))
            (Printf.sprintf "cell %d intact" i)
            (Some i) (slot_value slot))
    slots

exception Hook_boom of int

let test_supervised_raising_hook () =
  (* a hook that raises (the journal hitting a full disk, say) must not
     kill a worker domain and hang the sweep: every cell still completes
     (and its hook still fires), and the earliest failing hook's
     exception escapes once the grid has drained *)
  List.iter
    (fun domains ->
      let fired = Array.make 8 false in
      let m = Mutex.create () in
      let hook ~index ~attempts:_ _slot =
        Mutex.lock m;
        fired.(index) <- true;
        Mutex.unlock m;
        if index = 2 || index = 5 then raise (Hook_boom index)
      in
      (match
         Sweep.map_supervised ~supervision:fast ~domains ~cell_hook:hook
           (fun i -> i * 10)
           (List.init 8 Fun.id)
       with
      | _ -> Alcotest.fail "expected Hook_boom"
      | exception Hook_boom i ->
          check_int
            (Printf.sprintf "earliest failing hook by index (%d domains)"
               domains)
            2 i);
      check_bool "every cell's hook still fired" true
        (Array.for_all Fun.id fired))
    [ 1; 4 ];
  (* a shared pool survives the hook failure *)
  let pool = Sweep.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Sweep.shutdown pool)
    (fun () ->
      (match
         Sweep.map_pool_supervised ~supervision:fast pool
           ~cell_hook:(fun ~index ~attempts:_ _slot ->
             if index = 0 then raise (Hook_boom 0))
           Fun.id [ 0; 1; 2 ]
       with
      | _ -> Alcotest.fail "expected Hook_boom"
      | exception Hook_boom _ -> ());
      Alcotest.(check (list int))
        "pool usable after a hook failure" [ 1; 2; 3 ]
        (Sweep.map_pool pool succ [ 0; 1; 2 ]))

let test_watchdog_recovery_rejoins () =
  (* a job the watchdog wrote off but that *does* eventually return must
     put its worker back on the books: [abandoned] drops to zero, the
     recovered worker serves later batches, and shutdown joins cleanly *)
  let sv =
    { fast with Sweep.sv_attempts = 1; sv_wall_limit = Some 0.05;
      sv_poll = 0.005 }
  in
  let pool = Sweep.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Sweep.shutdown pool)
    (fun () ->
      let slots =
        Sweep.map_pool_supervised ~supervision:sv pool
          (fun i ->
            if i = 1 then Unix.sleepf 1.0;
            i)
          [ 0; 1; 2; 3 ]
      in
      (match List.nth slots 1 with
      | Sweep.Quarantined _ -> ()
      | Sweep.Completed _ -> Alcotest.fail "wedged cell must be quarantined");
      check_int "worker written off while its job is wedged" 1
        (Sweep.abandoned pool);
      let deadline = Unix.gettimeofday () +. 10.0 in
      while Sweep.abandoned pool > 0 && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.01
      done;
      check_int "worker restored once its job returned" 0
        (Sweep.abandoned pool);
      Alcotest.(check (list int))
        "pool usable after recovery" [ 0; 10; 20; 30 ]
        (List.filter_map slot_value
           (Sweep.map_pool_supervised ~supervision:fast pool
              (fun i -> i * 10)
              [ 0; 1; 2; 3 ])))

(* -- Re-entrancy detection --------------------------------------------------- *)

let expect_invalid_arg name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  | exception Invalid_argument msg ->
      check_bool (name ^ ": message names re-entry") true
        (String.length msg > 0)

let test_reentry_detected () =
  List.iter
    (fun domains ->
      let pool = Sweep.create ~domains () in
      Fun.protect
        ~finally:(fun () -> Sweep.shutdown pool)
        (fun () ->
          (* re-entering the same pool from inside its own job must raise
             instead of deadlocking *)
          expect_invalid_arg
            (Printf.sprintf "map_pool re-entry (%d domains)" domains)
            (fun () ->
              Sweep.map_pool pool
                (fun _ -> Sweep.map_pool pool Fun.id [ 1; 2 ])
                [ 0 ]);
          (* the pool survives the rejected re-entry *)
          Alcotest.(check (list int))
            "pool usable after rejected re-entry" [ 2; 3 ]
            (Sweep.map_pool pool succ [ 1; 2 ]);
          (* a nested sweep on a *fresh* pool is fine *)
          Alcotest.(check (list (list int)))
            "nested sweep on a distinct pool" [ [ 10; 20 ] ]
            (Sweep.map_pool pool
               (fun _ -> Sweep.map ~domains:1 (fun i -> i * 10) [ 1; 2 ])
               [ 0 ])))
    [ 1; 3 ]

let test_reentry_detected_supervised () =
  (* a supervised job that re-enters its own pool fails instantly on
     every attempt (no deadlock) and ends up quarantined with the
     re-entry message as its reason *)
  let pool = Sweep.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Sweep.shutdown pool)
    (fun () ->
      match
        Sweep.map_pool_supervised ~supervision:fast pool
          (fun _ -> Sweep.map_pool pool Fun.id [ 1 ])
          [ 0 ]
      with
      | [ Sweep.Quarantined q ] ->
          check_bool "reason names the re-entry" true
            (let msg = q.Sweep.q_reason in
             let needle = "re-entered" in
             let n = String.length needle and m = String.length msg in
             let rec scan i =
               i + n <= m && (String.sub msg i n = needle || scan (i + 1))
             in
             scan 0)
      | [ Sweep.Completed _ ] ->
          Alcotest.fail "re-entrant job cannot complete"
      | _ -> Alcotest.fail "expected exactly one slot")

(* -- The dir_steps memo ------------------------------------------------------ *)

let test_dir_steps_memo () =
  let p = Suite.compile (Suite.find "gcd") in
  let reference = U.dir_steps_reference p in
  check_int "memo = reference" reference (U.dir_steps_memoized p);
  check_int "memo stable on re-query" reference (U.dir_steps_memoized p);
  let r = U.run ~strategy:U.Interp ~kind:Kind.Packed p in
  check_int "run's dir_steps served by the memo" reference r.U.dir_steps;
  (* concurrent queries from sweep workers agree with the reference *)
  let answers =
    Sweep.map ~domains:4 (fun _ -> U.dir_steps_memoized p) (List.init 16 Fun.id)
  in
  check_bool "memo consistent under concurrency" true
    (List.for_all (( = ) reference) answers)

let suite =
  ( "sweep",
    [
      Alcotest.test_case "map preserves submission order" `Quick test_map_order;
      Alcotest.test_case "first error by index wins" `Quick
        test_first_error_by_index;
      Alcotest.test_case "pool survives multiple batches" `Quick
        test_pool_reuse;
      Alcotest.test_case "raising first job leaves the pool usable" `Quick
        test_raising_first_job;
      Alcotest.test_case "raising cost hint leaves the pool usable" `Quick
        test_raising_cost_hint;
      Alcotest.test_case "UHM_JOBS parsing" `Quick test_jobs_env;
      Alcotest.test_case "cost hint keeps results identical" `Quick
        test_cost_results_identical;
      Alcotest.test_case "cost hint keeps first-error-by-index" `Quick
        test_cost_first_error;
      Alcotest.test_case "cost hint orders claims by descending cost" `Quick
        test_cost_claim_order;
      Alcotest.test_case "supervised: all cells complete" `Quick
        test_supervised_all_ok;
      Alcotest.test_case "supervised: poison cell quarantined, rest intact"
        `Quick test_supervised_quarantine;
      Alcotest.test_case "supervised: retry then succeed, hook sees attempts"
        `Quick test_supervised_retry_then_succeed;
      Alcotest.test_case "supervised: cached cells skip job and hook" `Quick
        test_supervised_cached;
      Alcotest.test_case "supervised: wall-clock watchdog quarantines" `Slow
        test_supervised_wall_watchdog;
      Alcotest.test_case "supervised: raising hook cannot hang the sweep"
        `Quick test_supervised_raising_hook;
      Alcotest.test_case "watchdog: recovered worker is restored" `Slow
        test_watchdog_recovery_rejoins;
      Alcotest.test_case "re-entrant map_pool raises Invalid_argument" `Quick
        test_reentry_detected;
      Alcotest.test_case "re-entrant supervised job is quarantined" `Quick
        test_reentry_detected_supervised;
      Alcotest.test_case "summary rows identical at 1 vs 4 domains" `Slow
        test_summary_rows_deterministic;
      Alcotest.test_case "dtb grid identical at 1 vs 4 domains" `Slow
        test_dtb_grid_deterministic;
      Alcotest.test_case "dir_steps memo matches reference" `Quick
        test_dir_steps_memo;
    ] )
