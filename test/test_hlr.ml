(* Tests for the Algol-S front end: lexer, parser, printer round-trip,
   checker, and the direct (associative-environment) interpreter. *)

open Uhm_hlr

let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

let parse source = Parser.parse ~name:"test" source

let run source =
  let p = Check.check_exn (parse source) in
  Env_interp.run_output p

(* -- Lexer ----------------------------------------------------------------- *)

let test_lexer_basic () =
  let tokens =
    List.map (fun t -> t.Lexer.token) (Lexer.tokenize "begin x := 10; end")
  in
  Alcotest.(check bool) "token stream" true
    (tokens
    = [
        Lexer.Kw "begin"; Lexer.Ident "x"; Lexer.Punct ":="; Lexer.Int 10;
        Lexer.Punct ";"; Lexer.Kw "end"; Lexer.Eof;
      ])

let test_lexer_positions () =
  let tokens = Lexer.tokenize "x\n  y" in
  (match tokens with
  | [ x; y; _eof ] ->
      check_int "x line" 1 x.Lexer.line;
      check_int "x col" 1 x.Lexer.col;
      check_int "y line" 2 y.Lexer.line;
      check_int "y col" 3 y.Lexer.col
  | _ -> Alcotest.fail "expected three tokens");
  ()

let test_lexer_comment () =
  let tokens = List.map (fun t -> t.Lexer.token) (Lexer.tokenize "a { skip me } b") in
  Alcotest.(check bool) "comments skipped" true
    (tokens = [ Lexer.Ident "a"; Lexer.Ident "b"; Lexer.Eof ])

let test_lexer_errors () =
  Alcotest.check_raises "unterminated comment"
    (Lexer.Lex_error ("unterminated comment", 1, 1)) (fun () ->
      ignore (Lexer.tokenize "{ never closed"));
  Alcotest.check_raises "bad character"
    (Lexer.Lex_error ("unexpected character '?'", 1, 1)) (fun () ->
      ignore (Lexer.tokenize "?"))

(* -- Parser ---------------------------------------------------------------- *)

let test_parse_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3" in
  Alcotest.(check bool) "mul binds tighter" true
    (Ast.equal_expr e
       (Ast.Binop (Ast.Add_op, Ast.Num 1, Ast.Binop (Ast.Mul_op, Ast.Num 2, Ast.Num 3))))

let test_parse_comparison_vs_logic () =
  let e = Parser.parse_expr "a < b and c > d" in
  Alcotest.(check bool) "and over comparisons" true
    (Ast.equal_expr e
       (Ast.Binop
          ( Ast.And_op,
            Ast.Binop (Ast.Lt_op, Ast.Var "a", Ast.Var "b"),
            Ast.Binop (Ast.Gt_op, Ast.Var "c", Ast.Var "d") )))

let test_parse_dangling_else () =
  let p = parse "begin if 1 then if 0 then print 1; else print 2; end" in
  match p.Ast.body.Ast.stmts with
  | [ Ast.If (_, Ast.If (_, _, Some _), None) ] -> ()
  | _ -> Alcotest.fail "else must bind to the inner if"

let test_parse_error_reports_position () =
  try
    ignore (parse "begin x := ; end");
    Alcotest.fail "expected parse error"
  with Parser.Parse_error (_, line, col) ->
    check_int "line" 1 line;
    check_int "col" 12 col

let test_parse_procedure () =
  let p =
    parse
      "begin procedure add(a, b); begin return a + b; end; print add(1, 2); end"
  in
  match p.Ast.body.Ast.decls with
  | [ Ast.Proc_decl ("add", [ "a"; "b" ], _) ] -> ()
  | _ -> Alcotest.fail "procedure declaration shape"

(* -- Printer round-trip ---------------------------------------------------- *)

let prop_pretty_roundtrip =
  QCheck.Test.make ~name:"parse (pretty p) = normalize p" ~count:300
    Gen_program.ast
    (fun p ->
      let printed = Pretty.to_string p in
      let reparsed =
        try Parser.parse ~name:p.Ast.name printed
        with
        | Parser.Parse_error (msg, line, col) ->
            QCheck.Test.fail_reportf "reparse failed (%d:%d %s) on:\n%s" line
              col msg printed
        | Lexer.Lex_error (msg, line, col) ->
            QCheck.Test.fail_reportf "relex failed (%d:%d %s) on:\n%s" line col
              msg printed
      in
      Ast.equal_program (Ast_normalize.normalize reparsed)
        (Ast_normalize.normalize p))

let prop_valid_programs_check =
  QCheck.Test.make ~name:"generated valid programs pass the checker" ~count:200
    Gen_program.valid_program
    (fun p -> match Check.check p with Ok () -> true | Error _ -> false)

(* -- Checker --------------------------------------------------------------- *)

let check_fails source fragment =
  match Check.check (parse source) with
  | Ok () -> Alcotest.fail ("checker accepted: " ^ source)
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message %S mentions %S" msg fragment)
        true
        (Astring_contains.contains msg fragment)

let test_check_undeclared () = check_fails "begin x := 1; end" "undeclared"
let test_check_duplicate () =
  check_fails "begin integer x; integer x; x := 1; end" "duplicate"

let test_check_arity () =
  check_fails
    "begin procedure p(a); begin return a; end; call p(1, 2); end"
    "argument"

let test_check_array_misuse () =
  check_fails "begin integer array a[5]; a := 1; end" "subscript";
  check_fails "begin integer x; x[0] := 1; end" "subscripted"

let test_check_return_outside_proc () =
  check_fails "begin return 1; end" "outside"

let test_check_proc_as_var () =
  check_fails "begin procedure p(); begin return 0; end; print p; end" "procedure"

let test_check_shadowing_allowed () =
  let source =
    "begin integer x := 1; begin integer x := 2; print x; end; print x; end"
  in
  match Check.check (parse source) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* -- Direct interpreter ---------------------------------------------------- *)

let test_interp_arith () =
  check_string "arith" "7\n" (run "begin print 1 + 2 * 3; end")

let test_interp_div_truncation () =
  check_string "division truncates toward zero" "-2\n2\n-2\n"
    (run "begin print (-7) div 3; print (-7) div (-3); print 7 div (-3); end")

let test_interp_mod_sign () =
  check_string "mod takes dividend sign" "-1\n1\n"
    (run "begin print (-7) mod 3; print 7 mod (-3); end")

let test_interp_scoping () =
  check_string "shadowing" "2\n1\n"
    (run "begin integer x := 1; begin integer x := 2; print x; end; print x; end")

let test_interp_static_scope () =
  (* The procedure reads the [x] of its *declaration* scope even when called
     from a scope with another [x] — static scoping. *)
  let source =
    "begin\n\
     integer x := 10;\n\
     procedure show(); begin print x; return; end;\n\
     begin integer x := 99; x := x; call show(); end;\n\
     end"
  in
  check_string "static scoping" "10\n" (run source)

let test_interp_recursion () =
  let source =
    "begin\n\
     procedure fact(n);\n\
     begin\n\
    \  if n <= 1 then return 1;\n\
    \  return n * fact(n - 1);\n\
     end;\n\
     print fact(10);\n\
     end"
  in
  check_string "factorial" "3628800\n" (run source)

let test_interp_mutual_recursion () =
  let source =
    "begin\n\
     procedure isodd(n);\n\
     begin if n = 0 then return 0; return iseven(n - 1); end;\n\
     procedure iseven(n);\n\
     begin if n = 0 then return 1; return isodd(n - 1); end;\n\
     print iseven(10); print isodd(10); print iseven(7);\n\
     end"
  in
  check_string "mutual recursion" "1\n0\n0\n" (run source)

let test_interp_for_loops () =
  check_string "upto" "0\n1\n2\n"
    (run "begin integer i; for i := 0 to 2 do print i; end");
  check_string "downto" "2\n1\n0\n"
    (run "begin integer i; for i := 2 downto 0 do print i; end");
  check_string "empty range" ""
    (run "begin integer i; for i := 3 to 2 do print i; end");
  check_string "loop variable after the loop" "3\n"
    (run "begin integer i; for i := 0 to 2 do ; print i; end")

let test_interp_while () =
  check_string "while" "1\n2\n4\n8\n"
    (run
       "begin integer x := 1; while x < 10 do begin print x; x := x * 2; end; end")

let test_interp_arrays () =
  let source =
    "begin\n\
     integer array a[5];\n\
     integer i;\n\
     for i := 0 to 4 do a[i] := i * i;\n\
     for i := 4 downto 0 do print a[i];\n\
     end"
  in
  check_string "array fill and read" "16\n9\n4\n1\n0\n" (run source)

let test_interp_write_printc () =
  check_string "write and printc" "hi!\n"
    (run "begin write \"hi\"; printc 33; printc 10; end")

let test_interp_no_short_circuit () =
  (* matches the compiled DIR: both operands evaluated *)
  let source =
    "begin\n\
     integer c := 0;\n\
     procedure bump(); begin c := c + 1; return 1; end;\n\
     integer r;\n\
     r := 0 and bump();\n\
     print c;\n\
     end"
  in
  check_string "and evaluates both sides" "1\n" (run source)

let test_interp_traps () =
  let p = Check.check_exn (parse "begin print 1 div 0; end") in
  (match (Env_interp.run p).Env_interp.status with
  | Env_interp.Trapped msg ->
      Alcotest.(check bool) "mentions zero" true (Astring_contains.contains msg "zero")
  | _ -> Alcotest.fail "expected trap");
  let p = Check.check_exn (parse "begin integer array a[3]; print a[5]; end") in
  match (Env_interp.run p).Env_interp.status with
  | Env_interp.Trapped msg ->
      Alcotest.(check bool) "mentions bounds" true
        (Astring_contains.contains msg "bounds")
  | _ -> Alcotest.fail "expected bounds trap"

let test_interp_fuel () =
  let p = Check.check_exn (parse "begin integer x; while 1 do x := x + 1; end") in
  match (Env_interp.run ~fuel:10_000 p).Env_interp.status with
  | Env_interp.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_interp_counts_lookups () =
  let p = Check.check_exn (parse "begin integer x := 1; print x + x + x; end") in
  let r = Env_interp.run p in
  Alcotest.(check bool) "lookups counted" true (r.Env_interp.name_lookups >= 4)

let test_initializer_order () =
  check_string "initializers see earlier initialised values" "5\n"
    (run "begin integer a := 2; integer b := a + 3; print b; end")

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  ( "hlr",
    [
      Alcotest.test_case "lexer basics" `Quick test_lexer_basic;
      Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
      Alcotest.test_case "lexer comments" `Quick test_lexer_comment;
      Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
      Alcotest.test_case "precedence" `Quick test_parse_precedence;
      Alcotest.test_case "comparisons under logic" `Quick
        test_parse_comparison_vs_logic;
      Alcotest.test_case "dangling else" `Quick test_parse_dangling_else;
      Alcotest.test_case "parse error position" `Quick
        test_parse_error_reports_position;
      Alcotest.test_case "procedure declarations" `Quick test_parse_procedure;
      Alcotest.test_case "check: undeclared" `Quick test_check_undeclared;
      Alcotest.test_case "check: duplicate" `Quick test_check_duplicate;
      Alcotest.test_case "check: arity" `Quick test_check_arity;
      Alcotest.test_case "check: array misuse" `Quick test_check_array_misuse;
      Alcotest.test_case "check: return placement" `Quick
        test_check_return_outside_proc;
      Alcotest.test_case "check: procedure as variable" `Quick
        test_check_proc_as_var;
      Alcotest.test_case "check: shadowing allowed" `Quick
        test_check_shadowing_allowed;
      Alcotest.test_case "interp: arithmetic" `Quick test_interp_arith;
      Alcotest.test_case "interp: division truncation" `Quick
        test_interp_div_truncation;
      Alcotest.test_case "interp: mod sign" `Quick test_interp_mod_sign;
      Alcotest.test_case "interp: shadowing" `Quick test_interp_scoping;
      Alcotest.test_case "interp: static scoping" `Quick test_interp_static_scope;
      Alcotest.test_case "interp: recursion" `Quick test_interp_recursion;
      Alcotest.test_case "interp: mutual recursion" `Quick
        test_interp_mutual_recursion;
      Alcotest.test_case "interp: for loops" `Quick test_interp_for_loops;
      Alcotest.test_case "interp: while" `Quick test_interp_while;
      Alcotest.test_case "interp: arrays" `Quick test_interp_arrays;
      Alcotest.test_case "interp: write/printc" `Quick test_interp_write_printc;
      Alcotest.test_case "interp: no short-circuit" `Quick
        test_interp_no_short_circuit;
      Alcotest.test_case "interp: traps" `Quick test_interp_traps;
      Alcotest.test_case "interp: fuel" `Quick test_interp_fuel;
      Alcotest.test_case "interp: associative lookups counted" `Quick
        test_interp_counts_lookups;
      Alcotest.test_case "initializer order" `Quick test_initializer_order;
      qcheck prop_pretty_roundtrip;
      qcheck prop_valid_programs_check;
    ] )
