(* Substring search helper for assertions on error messages. *)

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else
    let rec at i =
      if i + nn > hn then false
      else if String.equal (String.sub haystack i nn) needle then true
      else at (i + 1)
    in
    at 0
