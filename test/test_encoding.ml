(* Tests for the five static encodings: round-trips, size ordering, and the
   compaction claims the paper cites (§3.2). *)

module Dir = Uhm_dir
module Codec = Uhm_encoding.Codec
module Kind = Uhm_encoding.Kind
module Suite = Uhm_workload.Suite
module Pipeline = Uhm_compiler.Pipeline

let all_kinds = Kind.all

let compiled = lazy (List.map (fun e -> (e, Suite.compile ~fuse:false e)) Suite.all)

let test_roundtrip_suite () =
  List.iter
    (fun (entry, p) ->
      List.iter
        (fun kind ->
          let e = Codec.encode kind p in
          let decoded = Codec.to_program e in
          if not (Array.for_all2 Dir.Isa.equal_instr p.Dir.Program.code
                    decoded.Dir.Program.code) then
            Alcotest.failf "%s/%s: decode mismatch" entry.Suite.name
              (Kind.name kind))
        all_kinds)
    (Lazy.force compiled)

let test_roundtrip_fused () =
  List.iter
    (fun entry ->
      let p = Suite.compile ~fuse:true entry in
      List.iter
        (fun kind ->
          let e = Codec.encode kind p in
          let decoded = Codec.to_program e in
          if not (Array.for_all2 Dir.Isa.equal_instr p.Dir.Program.code
                    decoded.Dir.Program.code) then
            Alcotest.failf "%s/%s (fused): decode mismatch" entry.Suite.name
              (Kind.name kind))
        all_kinds)
    Suite.all

let size_of kind p = (Codec.encode kind p).Codec.size_bits

let test_size_ordering () =
  (* packed is never larger than word16; contextual never larger than
     packed (contour widths are bounded by the program-wide widths) *)
  List.iter
    (fun (entry, p) ->
      let word16 = size_of Kind.Word16 p in
      let packed = size_of Kind.Packed p in
      let contextual = size_of Kind.Contextual p in
      if packed > word16 then
        Alcotest.failf "%s: packed %d > word16 %d" entry.Suite.name packed word16;
      if contextual > packed then
        Alcotest.failf "%s: contextual %d > packed %d" entry.Suite.name
          contextual packed)
    (Lazy.force compiled)

let test_wilner_compaction_claim () =
  (* Wilner: encoding reduces memory requirements by 25-75%.  Our most
     encoded kinds must save at least 25% against word16 on every suite
     program. *)
  List.iter
    (fun (entry, p) ->
      let word16 = float_of_int (size_of Kind.Word16 p) in
      let best =
        float_of_int (min (size_of Kind.Huffman p) (size_of Kind.Digram p))
      in
      let saving = 1. -. (best /. word16) in
      if saving < 0.25 then
        Alcotest.failf "%s: only %.1f%% saved" entry.Suite.name (saving *. 100.))
    (Lazy.force compiled)

let test_huffman_beats_packed_on_average () =
  let total kind =
    List.fold_left (fun acc (_, p) -> acc + size_of kind p) 0 (Lazy.force compiled)
  in
  let packed = total Kind.Packed and huffman = total Kind.Huffman in
  Alcotest.(check bool)
    (Printf.sprintf "huffman %d < packed %d" huffman packed)
    true (huffman < packed)

let test_digram_beats_huffman_on_average () =
  let total kind =
    List.fold_left (fun acc (_, p) -> acc + size_of kind p) 0 (Lazy.force compiled)
  in
  let huffman = total Kind.Huffman and digram = total Kind.Digram in
  Alcotest.(check bool)
    (Printf.sprintf "digram %d < huffman %d" digram huffman)
    true (digram < huffman)

let test_offsets_structure () =
  List.iter
    (fun (entry, p) ->
      List.iter
        (fun kind ->
          let e = Codec.encode kind p in
          let sizes = Codec.instr_sizes e in
          Array.iteri
            (fun i s ->
              if s <= 0 then
                Alcotest.failf "%s/%s: instruction %d has size %d"
                  entry.Suite.name (Kind.name kind) i s)
            sizes;
          let n = Array.length e.Codec.offsets in
          Alcotest.(check int)
            (entry.Suite.name ^ ": offsets count")
            (Array.length p.Dir.Program.code)
            n;
          Alcotest.(check int)
            (entry.Suite.name ^ ": entry addr")
            e.Codec.offsets.(p.Dir.Program.entry)
            e.Codec.entry_addr)
        all_kinds)
    (Lazy.force compiled)

let test_word16_is_16_aligned () =
  List.iter
    (fun (_, p) ->
      let e = Codec.encode Kind.Word16 p in
      Array.iter
        (fun off ->
          Alcotest.(check int) "aligned" 0 (off mod 16))
        e.Codec.offsets)
    (Lazy.force compiled)

let test_index_of_addr () =
  let p = Suite.compile (Suite.find "gcd") in
  let e = Codec.encode Kind.Huffman p in
  Array.iteri
    (fun i off -> Alcotest.(check int) "inverse" i (Codec.index_of_addr e off))
    e.Codec.offsets;
  Alcotest.check_raises "misaligned address" Not_found (fun () ->
      ignore (Codec.index_of_addr e (e.Codec.offsets.(1) + 1)))

let prop_roundtrip_random =
  QCheck.Test.make ~name:"all kinds round-trip on random programs" ~count:60
    Gen_program.valid_program
    (fun ast ->
      let p = Pipeline.compile ~fuse:true ast in
      List.for_all
        (fun kind ->
          let e = Codec.encode kind p in
          let decoded = Codec.to_program e in
          Array.for_all2 Dir.Isa.equal_instr p.Dir.Program.code
            decoded.Dir.Program.code)
        all_kinds)

let prop_size_positive_and_consistent =
  QCheck.Test.make ~name:"size_bits equals the sum of instruction sizes"
    ~count:60 Gen_program.valid_program
    (fun ast ->
      let p = Pipeline.compile ast in
      List.for_all
        (fun kind ->
          let e = Codec.encode kind p in
          Array.fold_left ( + ) 0 (Codec.instr_sizes e) = e.Codec.size_bits)
        all_kinds)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  ( "encoding",
    [
      Alcotest.test_case "round-trip: suite x all kinds" `Quick
        test_roundtrip_suite;
      Alcotest.test_case "round-trip: fused suite x all kinds" `Quick
        test_roundtrip_fused;
      Alcotest.test_case "size ordering word16 >= packed >= contextual" `Quick
        test_size_ordering;
      Alcotest.test_case "Wilner 25%+ compaction claim" `Quick
        test_wilner_compaction_claim;
      Alcotest.test_case "huffman beats packed on average" `Quick
        test_huffman_beats_packed_on_average;
      Alcotest.test_case "digram beats huffman on average" `Quick
        test_digram_beats_huffman_on_average;
      Alcotest.test_case "offsets and sizes structure" `Quick
        test_offsets_structure;
      Alcotest.test_case "word16 alignment" `Quick test_word16_is_16_aligned;
      Alcotest.test_case "index_of_addr inverse" `Quick test_index_of_addr;
      qcheck prop_roundtrip_random;
      qcheck prop_size_positive_and_consistent;
    ] )
