(* Tests for the core contribution: the DTB, the trace-driven DTB
   simulation, the five execution strategies, locality statistics, and the
   analytic model of paper §7. *)

module Dtb = Uhm_core.Dtb
module Dtb_sim = Uhm_core.Dtb_sim
module U = Uhm_core.Uhm
module Experiment = Uhm_core.Experiment
module Machine = Uhm_machine.Machine
module Kind = Uhm_encoding.Kind
module Codec = Uhm_encoding.Codec
module Model = Uhm_perfmodel.Model
module Suite = Uhm_workload.Suite
module Locality = Uhm_workload.Locality
module Tracegen = Uhm_workload.Tracegen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- DTB unit tests ----------------------------------------------------------- *)

let small_config = { Dtb.sets = 4; assoc = 2; unit_words = 4; overflow_blocks = 8 }

let install dtb tag words =
  Dtb.begin_translation dtb ~tag;
  List.iter (fun w -> ignore (Dtb.emit dtb w)) words;
  Dtb.end_translation dtb

let test_dtb_hit_after_install () =
  let dtb = Dtb.create small_config ~buffer_base:1000 in
  check_bool "initial miss" true (Dtb.lookup dtb ~tag:64 = `Miss);
  let addr = install dtb 64 [ 1; 2; 3 ] in
  (match Dtb.lookup dtb ~tag:64 with
  | `Hit a -> check_int "hit address" addr a
  | `Miss -> Alcotest.fail "expected hit");
  check_int "hits" 1 (Dtb.hits dtb);
  check_int "misses" 1 (Dtb.misses dtb)

let test_dtb_lru_within_set () =
  let dtb = Dtb.create { small_config with Dtb.sets = 1 } ~buffer_base:0 in
  (* assoc 2, single set: installing three tags evicts the LRU *)
  ignore (Dtb.lookup dtb ~tag:1);
  ignore (install dtb 1 [ 0 ]);
  ignore (Dtb.lookup dtb ~tag:2);
  ignore (install dtb 2 [ 0 ]);
  ignore (Dtb.lookup dtb ~tag:1);                (* 1 becomes MRU *)
  ignore (Dtb.lookup dtb ~tag:3);
  ignore (install dtb 3 [ 0 ]);                  (* evicts 2 *)
  check_bool "1 still resident" true (Dtb.lookup dtb ~tag:1 <> `Miss);
  check_bool "2 evicted" true (Dtb.lookup dtb ~tag:2 = `Miss);
  check_int "evictions" 1 (Dtb.evictions dtb)

let test_dtb_overflow_chaining () =
  let dtb = Dtb.create small_config ~buffer_base:0 in
  Dtb.begin_translation dtb ~tag:7;
  (* unit_words = 4 -> payload 3 per block; 5 words need one overflow block *)
  let writes = List.init 5 (fun i -> Dtb.emit dtb i) in
  ignore (Dtb.end_translation dtb);
  check_int "overflow blocks used" 1 (Dtb.overflow_allocations dtb);
  let chain_writes = List.concat_map snd writes in
  check_int "one chain word written" 1 (List.length chain_writes);
  (* the chain word is a Goto to the overflow block *)
  let _, goto_word = List.hd chain_writes in
  let op, _, target = Uhm_machine.Short_format.unpack goto_word in
  check_bool "goto op" true (op = Uhm_machine.Short_format.Goto);
  (* fourth write landed at the goto target *)
  let fourth_addr = fst (List.nth writes 3) in
  check_int "chained payload address" target fourth_addr

let test_dtb_eviction_releases_chain () =
  let dtb =
    Dtb.create { Dtb.sets = 1; assoc = 1; unit_words = 4; overflow_blocks = 1 }
      ~buffer_base:0
  in
  ignore (install dtb 1 [ 0; 1; 2; 3; 4 ]);   (* uses the only overflow block *)
  check_int "one overflow alloc" 1 (Dtb.overflow_allocations dtb);
  (* evicting tag 1 must return the block for reuse *)
  ignore (install dtb 2 [ 0; 1; 2; 3; 4 ]);
  check_int "two overflow allocs" 2 (Dtb.overflow_allocations dtb)

let test_dtb_overflow_exhaustion () =
  let dtb =
    Dtb.create { Dtb.sets = 1; assoc = 2; unit_words = 4; overflow_blocks = 0 }
      ~buffer_base:0
  in
  Dtb.begin_translation dtb ~tag:5;
  ignore (Dtb.emit dtb 0);
  ignore (Dtb.emit dtb 1);
  ignore (Dtb.emit dtb 2);
  Alcotest.check_raises "exhausted"
    (Failure "Dtb.emit: overflow area exhausted") (fun () ->
      ignore (Dtb.emit dtb 3))

let test_dtb_last_cache_differential () =
  (* Same operation sequence against a DTB with and without the
     single-entry last-translation cache: lookup results and statistics
     must be indistinguishable, and the counts are pinned so the fast
     path cannot silently change what a hit or an eviction means.

     With 4 sets (set = tag land 3 for small tags), tags 5/13/21 collide
     in set 1; the sequence exercises the fresh-install fast path,
     re-hit after an intervening miss, eviction of the cached tag, and
     the re-miss after eviction. *)
  let seq = [ 5; 5; 5; 6; 5; 5; 13; 21; 5 ] in
  let run last_cache =
    let dtb = Dtb.create ~last_cache small_config ~buffer_base:0 in
    let log =
      List.map
        (fun tag ->
          match Dtb.lookup dtb ~tag with
          | `Hit addr -> `Hit addr
          | `Miss ->
              ignore (install dtb tag [ tag; tag + 1 ]);
              `Miss)
        seq
    in
    (log, Dtb.hits dtb, Dtb.misses dtb, Dtb.evictions dtb)
  in
  let log_ref, h_ref, m_ref, e_ref = run false in
  let log_fast, h_fast, m_fast, e_fast = run true in
  check_bool "lookup outcomes identical" true (log_ref = log_fast);
  check_int "hits (reference)" 4 h_ref;
  check_int "misses (reference)" 5 m_ref;
  check_int "evictions (reference)" 2 e_ref;
  check_int "hits (last cache)" h_ref h_fast;
  check_int "misses (last cache)" m_ref m_fast;
  check_int "evictions (last cache)" e_ref e_fast

let test_dtb_full_assoc_beats_direct_on_conflicts () =
  (* a trace alternating between tags that collide in a direct-mapped DTB *)
  let run config =
    let dtb = Dtb.create config ~buffer_base:0 in
    for _ = 1 to 50 do
      List.iter
        (fun tag ->
          match Dtb.lookup dtb ~tag with
          | `Hit _ -> ()
          | `Miss -> ignore (install dtb tag [ 0 ]))
        [ 0; 1024; 2048 ]
    done;
    Dtb.hit_ratio dtb
  in
  let direct = run { Dtb.sets = 4; assoc = 1; unit_words = 4; overflow_blocks = 0 } in
  let full = run { Dtb.sets = 1; assoc = 4; unit_words = 4; overflow_blocks = 0 } in
  check_bool
    (Printf.sprintf "full %.2f > direct %.2f" full direct)
    true (full > direct)

(* -- Trace-driven DTB simulation vs the full machine -------------------------- *)

let test_dtb_sim_matches_machine () =
  List.iter
    (fun name ->
      let p = Suite.compile (Suite.find name) in
      let encoded = Codec.encode Kind.Packed p in
      let sim = Dtb_sim.replay_encoded ~config:Dtb.paper_config encoded in
      let machine_run =
        U.run_encoded ~strategy:(U.Dtb_strategy Dtb.paper_config) encoded
      in
      let machine_ratio = Option.get machine_run.U.dtb_hit_ratio in
      Alcotest.(check (float 1e-9))
        (name ^ ": hit ratios agree")
        machine_ratio sim.Dtb_sim.hit_ratio;
      check_int
        (name ^ ": misses agree")
        (Option.get machine_run.U.dtb_misses)
        sim.Dtb_sim.misses)
    [ "fact_iter"; "fib_rec"; "collatz" ]

(* -- Strategy differential over the suite -------------------------------------- *)

let outputs_equal_for name =
  let entry = Suite.find name in
  let p = Suite.compile entry in
  let expected = Uhm_dir.Interp.run_output p in
  let strategies =
    [ U.Interp; U.Cached 4096; U.Dtb_strategy Dtb.paper_config;
      U.Psder_static; U.Der U.Der_level1; U.Der U.Der_level2 ]
  in
  List.iter
    (fun strategy ->
      let kinds =
        match strategy with
        | U.Interp | U.Cached _ | U.Dtb_strategy _ -> Kind.all
        | _ -> [ Kind.Packed ]
      in
      List.iter
        (fun kind ->
          let r = U.run ~strategy ~kind p in
          (match r.U.status with
          | Machine.Halted -> ()
          | Machine.Trapped m ->
              Alcotest.failf "%s/%s/%s trapped: %s" name
                (U.strategy_name strategy) (Kind.name kind) m
          | _ ->
              Alcotest.failf "%s/%s/%s did not halt" name
                (U.strategy_name strategy) (Kind.name kind));
          if not (String.equal r.U.output expected) then
            Alcotest.failf "%s/%s/%s output differs" name
              (U.strategy_name strategy) (Kind.name kind))
        kinds)
    strategies

let test_strategies_differential () =
  List.iter outputs_equal_for [ "fact_iter"; "nested_scopes"; "string_out" ]

let test_dtb_beats_interp_on_loops () =
  let p = Suite.compile (Suite.find "loop_tight") in
  let interp = U.run ~strategy:U.Interp ~kind:Kind.Huffman p in
  let dtb =
    U.run ~strategy:(U.Dtb_strategy Dtb.paper_config) ~kind:Kind.Huffman p
  in
  check_bool
    (Printf.sprintf "dtb %d < interp %d" dtb.U.cycles interp.U.cycles)
    true
    (dtb.U.cycles < interp.U.cycles);
  check_bool "hit ratio near 1" true (Option.get dtb.U.dtb_hit_ratio > 0.99)

let test_block_translation_agrees_and_wins () =
  let block_cfg =
    { Dtb.sets = 32; assoc = 4; unit_words = 16; overflow_blocks = 256 }
  in
  List.iter
    (fun name ->
      let p = Suite.compile ~fuse:true (Suite.find name) in
      let expected = Uhm_dir.Interp.run_output p in
      let per = U.run ~strategy:(U.Dtb_strategy Dtb.paper_config) ~kind:Kind.Huffman p in
      let blk = U.run ~strategy:(U.Dtb_blocks (block_cfg, 8)) ~kind:Kind.Huffman p in
      Alcotest.(check string) (name ^ ": block output") expected blk.U.output;
      check_bool (name ^ ": blocks not slower") true (blk.U.cycles <= per.U.cycles);
      check_bool (name ^ ": fewer INTERPs") true
        (blk.U.machine_stats.Machine.interp_count
        < per.U.machine_stats.Machine.interp_count))
    [ "fact_iter"; "quicksort"; "collatz" ]

let test_decode_assist_agrees_and_helps () =
  let p = Suite.compile (Suite.find "gcd") in
  let expected = Uhm_dir.Interp.run_output p in
  let plain = U.run ~strategy:U.Interp ~kind:Kind.Huffman p in
  let assist = U.run ~decode_assist:true ~strategy:U.Interp ~kind:Kind.Huffman p in
  Alcotest.(check string) "assist output" expected assist.U.output;
  check_bool "assist cuts decode time" true
    (assist.U.cycles < plain.U.cycles);
  let dtb =
    U.run ~strategy:(U.Dtb_strategy Dtb.paper_config) ~kind:Kind.Huffman p
  in
  check_bool "dtb still beats assisted interpreter" true
    (dtb.U.cycles < assist.U.cycles)

let test_two_level_translation () =
  (* with a thrashing L1, the decoded store must agree and win *)
  let small = { Dtb.sets = 8; assoc = 4; unit_words = 4; overflow_blocks = 64 } in
  List.iter
    (fun name ->
      let p = Suite.compile (Suite.find name) in
      let expected = Uhm_dir.Interp.run_output p in
      let l1 = U.run ~strategy:(U.Dtb_strategy small) ~kind:Kind.Digram p in
      let l2 = U.run ~strategy:(U.Dtb_two_level (small, 2048)) ~kind:Kind.Digram p in
      Alcotest.(check string) (name ^ ": two-level output") expected l2.U.output;
      check_bool (name ^ ": two-level faster under L1 thrash") true
        (l2.U.cycles < l1.U.cycles);
      check_bool (name ^ ": L2 hit ratio meaningful") true
        (Option.get l2.U.dtb_l2_hit_ratio > 0.5))
    [ "quicksort"; "dispatch" ]

let test_compound_datapath_agrees_and_helps () =
  let p = Suite.compile (Suite.find "binsearch") in
  let expected = Uhm_dir.Interp.run_output p in
  let run compound =
    U.run ~compound_datapath:compound ~strategy:(U.Dtb_strategy Dtb.paper_config)
      ~kind:Kind.Packed p
  in
  let plain = run false and compound = run true in
  Alcotest.(check string) "compound output" expected compound.U.output;
  check_bool "compound is faster" true (compound.U.cycles < plain.U.cycles)

let test_b1700_restricted_kind () =
  let p = Suite.compile (Suite.find "sieve") in
  let expected = Uhm_dir.Interp.run_output p in
  let r = U.run ~strategy:U.Interp ~kind:Kind.Huffman_b1700 p in
  Alcotest.(check string) "b1700 output" expected r.U.output;
  let free = (Codec.encode Kind.Huffman p).Codec.size_bits in
  let restricted = (Codec.encode Kind.Huffman_b1700 p).Codec.size_bits in
  let word16 = (Codec.encode Kind.Word16 p).Codec.size_bits in
  check_bool "restricted within 15% of free huffman" true
    (float_of_int restricted <= 1.15 *. float_of_int free);
  check_bool "restricted far below word16" true (2 * restricted < word16)

let test_der_l1_is_fastest () =
  let p = Suite.compile (Suite.find "fact_iter") in
  let der = U.run ~strategy:(U.Der U.Der_level1) ~kind:Kind.Packed p in
  let dtb =
    U.run ~strategy:(U.Dtb_strategy Dtb.paper_config) ~kind:Kind.Packed p
  in
  check_bool "der-l1 fastest" true (der.U.cycles < dtb.U.cycles)

let test_figure1_shape () =
  (* the representation-space claims, asserted on total cycles *)
  List.iter
    (fun name ->
      let entry = Suite.find name in
      let points =
        Experiment.figure1_points ~name (Suite.parse entry)
      in
      let find label =
        List.find (fun pt -> String.equal pt.Experiment.sp_label label) points
      in
      let der_l1 = find "der (fast store)" in
      let der_l2 = find "der (level 2)" in
      let base k = find ("dir/" ^ k) in
      let fused k = find ("dir+superops/" ^ k) in
      (* DER is fastest in the fast store, but loses it exiled to level 2 *)
      List.iter
        (fun pt ->
          if pt != der_l1 then
            check_bool
              (name ^ ": der-l1 fastest vs " ^ pt.Experiment.sp_label)
              true
              (der_l1.Experiment.sp_total_cycles < pt.Experiment.sp_total_cycles))
        points;
      (* exiled to level 2, the expanded code loses its speed advantage
         wholesale (the paper's case for not expanding) *)
      check_bool (name ^ ": der-l2 at least 5x slower than der-l1") true
        (der_l2.Experiment.sp_total_cycles
        > 5 * der_l1.Experiment.sp_total_cycles);
      (* encoding monotonically shrinks the program *)
      let size k = (base k).Experiment.sp_size_bits in
      check_bool (name ^ ": packed < word16") true (size "packed" < size "word16");
      check_bool (name ^ ": huffman < packed") true (size "huffman" < size "packed");
      check_bool (name ^ ": digram < huffman") true (size "digram" < size "huffman");
      (* superoperators improve both axes at every encoding *)
      List.iter
        (fun k ->
          check_bool (name ^ "/" ^ k ^ ": fusion shrinks") true
            ((fused k).Experiment.sp_size_bits <= (base k).Experiment.sp_size_bits);
          check_bool (name ^ "/" ^ k ^ ": fusion speeds up") true
            ((fused k).Experiment.sp_total_cycles
            < (base k).Experiment.sp_total_cycles))
        [ "word16"; "packed"; "huffman"; "digram" ])
    [ "fact_iter"; "gcd" ]

let test_space_time_shape () =
  (* the headline qualitative claims on a loopy program *)
  let p = Suite.compile (Suite.find "fact_iter") in
  let size kind = (Codec.encode kind p).Codec.size_bits in
  check_bool "huffman smaller than word16" true
    (size Kind.Huffman < size Kind.Word16);
  let interp kind = (U.run ~strategy:U.Interp ~kind p).U.cycles in
  check_bool "huffman interpretation slower than packed" true
    (interp Kind.Huffman > interp Kind.Packed)

let prop_machine_differential =
  QCheck.Test.make ~name:"machine strategies match the HLR semantics"
    ~count:30 Gen_program.valid_program
    (fun ast ->
      let reference = Uhm_hlr.Env_interp.run ~fuel:150_000 (Uhm_hlr.Check.check_exn ast) in
      match reference.Uhm_hlr.Env_interp.status with
      | Uhm_hlr.Env_interp.Out_of_fuel -> true (* skip oversized cases *)
      | Uhm_hlr.Env_interp.Trapped _ -> false
      | Uhm_hlr.Env_interp.Halted ->
      let expected = reference.Uhm_hlr.Env_interp.output in
      let p = Uhm_compiler.Pipeline.compile ~fuse:true ast in
      List.for_all
        (fun (strategy, kind) ->
          let r = U.run ~strategy ~kind p in
          match r.U.status with
          | Machine.Halted -> String.equal r.U.output expected
          | _ -> false)
        [
          (U.Interp, Kind.Digram);
          (U.Dtb_strategy Dtb.paper_config, Kind.Contextual);
          (U.Psder_static, Kind.Packed);
          (U.Der U.Der_level1, Kind.Packed);
        ])

(* -- Locality and trace generation --------------------------------------------- *)

let test_locality_basics () =
  let trace = [| 1; 2; 1; 2; 1; 2; 3 |] in
  check_int "footprint" 3 (Locality.footprint trace);
  let d = Locality.reuse_distances trace in
  Alcotest.(check (array int)) "reuse distances" [| 1; 1; 1; 1 |] d;
  Alcotest.(check (float 1e-9)) "hit ratio cap 2"
    (4. /. 7.)
    (Locality.hit_ratio_for_capacity ~capacity:2 trace)

let test_locality_monotone_in_capacity () =
  let trace = Tracegen.generate { Tracegen.default with Tracegen.length = 5_000 } in
  let h c = Locality.hit_ratio_for_capacity ~capacity:c trace in
  check_bool "monotone" true (h 4 <= h 16 && h 16 <= h 64 && h 64 <= h 256)

let test_tracegen_deterministic () =
  let cfg = { Tracegen.default with Tracegen.length = 1000 } in
  Alcotest.(check bool) "same seed, same trace" true
    (Tracegen.generate cfg = Tracegen.generate cfg);
  Alcotest.(check bool) "different seed, different trace" true
    (Tracegen.generate cfg <> Tracegen.generate { cfg with Tracegen.seed = 7 })

let test_tracegen_locality_effect () =
  let hit locality =
    let cfg =
      { Tracegen.default with Tracegen.locality; length = 20_000; seed = 3 }
    in
    Locality.hit_ratio_for_capacity ~capacity:64 (Tracegen.generate cfg)
  in
  check_bool "locality raises hit ratio" true (hit 0.99 > hit 0.5 +. 0.05)

let test_suite_traces_are_local () =
  (* the principle of locality on a real workload: a 256-entry window
     captures the overwhelming majority of references *)
  let p = Suite.compile (Suite.find "sieve") in
  let trace = Locality.trace_of_program p in
  check_bool "sieve is local" true
    (Locality.hit_ratio_for_capacity ~capacity:256 trace > 0.95)

(* -- Analytic model -------------------------------------------------------------- *)

let check_grid name expected actual =
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          if Float.abs (v -. actual.(i).(j)) > 0.011 then
            Alcotest.failf "%s[%d][%d]: paper %.2f vs regenerated %.2f" name i
              j v
              actual.(i).(j))
        row)
    expected

let test_paper_table2_exact () =
  check_grid "table2" Model.paper_table2 (Model.regenerate_table2 ())

let test_paper_table3_exact () =
  check_grid "table3" Model.paper_table3 (Model.regenerate_table3 ())

let test_model_shapes () =
  let p = Model.paper_defaults ~d:10. ~x:5. in
  check_bool "T2 < T1 at favourable params" true (Model.t2 p < Model.t1 p);
  check_bool "T3 < T1 (a cache always helps here)" true (Model.t3 p < Model.t1 p);
  check_bool "F2 positive" true (Model.f2 p > 0.);
  (* the DTB matters less as semantics dominate (paper's closing remark) *)
  let f2_at x = Model.f2 (Model.paper_defaults ~d:10. ~x) in
  check_bool "F2 decreasing in x" true (f2_at 30. < f2_at 5.)

let test_calibration_sane () =
  let p = Suite.compile (Suite.find "fact_iter") in
  let m = Experiment.measure ~kind:Kind.Huffman ~name:"fact_iter" p in
  let c = Experiment.calibrate m in
  check_bool "d in a plausible range" true
    (c.Experiment.c_d > 3. && c.Experiment.c_d < 120.);
  check_bool "x positive" true (c.Experiment.c_x > 3.);
  check_bool "g positive" true (c.Experiment.c_g > 3.);
  check_bool "s1 around the paper's 3" true
    (c.Experiment.c_s1 > 1.5 && c.Experiment.c_s1 < 8.);
  check_bool "hit ratios in range" true
    (c.Experiment.c_h_d > 0.5 && c.Experiment.c_h_d <= 1.
    && c.Experiment.c_h_c > 0.5
    && c.Experiment.c_h_c <= 1.)

let test_dtb_sweep_monotone_capacity () =
  let p = Suite.compile (Suite.find "quicksort") in
  let points =
    Experiment.dtb_sweep ~kind:Kind.Packed
      ~configs:(Experiment.capacity_configs ())
      p
  in
  let ratios = List.map (fun pt -> pt.Experiment.dp_hit_ratio) points in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | _ -> true
  in
  check_bool "hit ratio non-decreasing in capacity" true (monotone ratios)

let test_assoc_four_way_near_full () =
  (* paper §5.2: "set associativity of degree 4 has been found to be nearly
     as effective as full associativity" *)
  let p = Suite.compile (Suite.find "dispatch") in
  let points =
    Experiment.dtb_sweep ~kind:Kind.Packed
      ~configs:(Experiment.assoc_configs ())
      p
  in
  let ratio_of assoc =
    (List.find (fun pt -> pt.Experiment.dp_config.Dtb.assoc = assoc) points)
      .Experiment.dp_hit_ratio
  in
  check_bool "4-way within 3% of full" true
    (Float.abs (ratio_of 4 -. ratio_of 256) < 0.03)

(* Differential reference for the DTB's replacement array: the seed's
   per-set counter LRU, kept verbatim so the timestamp-based recency is
   pinned to the identical hit/miss/eviction sequence. *)
module Dtb_counter_ref = struct
  type entry = { mutable tag : int; mutable lru : int }
  type t = { sets : int; ways : entry array array }

  let create ~sets ~assoc =
    let assoc = if assoc = 0 then sets else assoc in
    { sets; ways = Array.init sets (fun _ -> Array.init assoc (fun w -> { tag = -1; lru = w })) }

  let set_of t tag = (tag lxor (tag lsr 7)) land (t.sets - 1)

  let touch ways way =
    let old = ways.(way).lru in
    Array.iter (fun e -> if e.lru < old then e.lru <- e.lru + 1) ways;
    ways.(way).lru <- 0

  (* lookup + install-on-miss, exactly as the seed's lookup/begin_translation *)
  let access t tag =
    let ways = t.ways.(set_of t tag) in
    let rec find w =
      if w >= Array.length ways then None
      else if ways.(w).tag = tag then Some w
      else find (w + 1)
    in
    match find 0 with
    | Some w ->
        touch ways w;
        `Hit
    | None ->
        let victim = ref 0 in
        Array.iteri
          (fun w e -> if e.lru > ways.(!victim).lru then victim := w)
          ways;
        ways.(!victim).tag <- tag;
        touch ways !victim;
        `Miss
end

let prop_dtb_recency_matches_counter_lru =
  let gen =
    QCheck.Gen.(
      oneofl [ (1, 2); (1, 4); (4, 2); (4, 0); (8, 1) ]
      >>= fun (sets, assoc) ->
      list_size (int_range 1 300) (int_bound 200)
      >>= fun tags -> return (sets, assoc, tags))
  in
  QCheck.Test.make
    ~name:"dtb timestamp recency = counter LRU (hit/miss sequence)" ~count:200
    (QCheck.make
       ~print:(fun (s, a, tags) ->
         Printf.sprintf "sets=%d assoc=%d [%s]" s a
           (String.concat ";" (List.map string_of_int tags)))
       gen)
    (fun (sets, assoc, tags) ->
      let cfg = { Dtb.sets; assoc; unit_words = 4; overflow_blocks = 0 } in
      let dtb = Dtb.create cfg ~buffer_base:0 in
      let reference = Dtb_counter_ref.create ~sets ~assoc in
      List.for_all
        (fun tag ->
          let actual =
            match Dtb.lookup dtb ~tag with
            | `Hit _ -> `Hit
            | `Miss ->
                Dtb.begin_translation dtb ~tag;
                ignore (Dtb.end_translation dtb);
                `Miss
          in
          actual = Dtb_counter_ref.access reference tag)
        tags)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  ( "core",
    [
      Alcotest.test_case "dtb hit after install" `Quick test_dtb_hit_after_install;
      Alcotest.test_case "dtb LRU within a set" `Quick test_dtb_lru_within_set;
      Alcotest.test_case "dtb overflow chaining" `Quick test_dtb_overflow_chaining;
      Alcotest.test_case "dtb eviction releases chains" `Quick
        test_dtb_eviction_releases_chain;
      Alcotest.test_case "dtb overflow exhaustion" `Quick
        test_dtb_overflow_exhaustion;
      Alcotest.test_case "dtb last-translation cache differential" `Quick
        test_dtb_last_cache_differential;
      Alcotest.test_case "dtb associativity vs conflicts" `Quick
        test_dtb_full_assoc_beats_direct_on_conflicts;
      Alcotest.test_case "dtb sim = machine dtb" `Quick test_dtb_sim_matches_machine;
      Alcotest.test_case "strategies agree on outputs" `Slow
        test_strategies_differential;
      Alcotest.test_case "dtb beats interp on loops" `Quick
        test_dtb_beats_interp_on_loops;
      Alcotest.test_case "der(level1) is fastest" `Quick test_der_l1_is_fastest;
      Alcotest.test_case "block translation agrees and wins" `Quick
        test_block_translation_agrees_and_wins;
      Alcotest.test_case "decode assist agrees and helps" `Quick
        test_decode_assist_agrees_and_helps;
      Alcotest.test_case "b1700 restricted encoding" `Quick
        test_b1700_restricted_kind;
      Alcotest.test_case "compound datapath agrees and helps" `Quick
        test_compound_datapath_agrees_and_helps;
      Alcotest.test_case "two-level translation" `Quick
        test_two_level_translation;
      Alcotest.test_case "space/time shape" `Quick test_space_time_shape;
      Alcotest.test_case "figure 1 shape assertions" `Slow test_figure1_shape;
      Alcotest.test_case "locality basics" `Quick test_locality_basics;
      Alcotest.test_case "locality monotone in capacity" `Quick
        test_locality_monotone_in_capacity;
      Alcotest.test_case "tracegen deterministic" `Quick test_tracegen_deterministic;
      Alcotest.test_case "tracegen locality effect" `Quick
        test_tracegen_locality_effect;
      Alcotest.test_case "suite traces are local" `Quick test_suite_traces_are_local;
      Alcotest.test_case "paper table 2 regenerated exactly" `Quick
        test_paper_table2_exact;
      Alcotest.test_case "paper table 3 regenerated exactly" `Quick
        test_paper_table3_exact;
      Alcotest.test_case "model qualitative shapes" `Quick test_model_shapes;
      Alcotest.test_case "calibration sane" `Quick test_calibration_sane;
      Alcotest.test_case "dtb capacity sweep monotone" `Quick
        test_dtb_sweep_monotone_capacity;
      Alcotest.test_case "4-way close to full assoc" `Quick
        test_assoc_four_way_near_full;
      qcheck prop_machine_differential;
      qcheck prop_dtb_recency_matches_counter_lru;
    ] )
