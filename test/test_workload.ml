(* Tests for the workload library: suite hygiene, the locality analyses and
   the synthetic trace generator. *)

module Suite = Uhm_workload.Suite
module Locality = Uhm_workload.Locality
module Tracegen = Uhm_workload.Tracegen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_suite_programs_parse_and_check () =
  List.iter (fun e -> ignore (Suite.parse e)) Suite.all

let test_suite_names_unique () =
  let names = Suite.names () in
  check_int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_suite_find () =
  check_bool "find returns the entry" true
    (String.equal (Suite.find "gcd").Suite.name "gcd");
  Alcotest.check_raises "unknown raises" Not_found (fun () ->
      ignore (Suite.find "no-such-program"))

let test_suite_outputs_deterministic () =
  List.iter
    (fun e ->
      let out1 = Uhm_dir.Interp.run_output (Suite.compile e) in
      let out2 = Uhm_dir.Interp.run_output (Suite.compile e) in
      Alcotest.(check string) (e.Suite.name ^ " deterministic") out1 out2;
      check_bool (e.Suite.name ^ " produces output") true
        (String.length out1 > 0))
    Suite.all

let test_suite_loopiness_classes_are_meaningful () =
  (* a tight program must have a much higher LRU-64 hit ratio than the
     flat one *)
  let ratio name =
    Locality.hit_ratio_for_capacity ~capacity:64
      (Locality.trace_of_program (Suite.compile (Suite.find name)))
  in
  check_bool "tight beats flat" true
    (ratio "loop_tight" > ratio "flat_straightline" +. 0.5)

(* -- Locality ----------------------------------------------------------------- *)

let test_footprint_bounds () =
  let trace = [| 3; 3; 3; 7; 7; 9 |] in
  check_int "footprint" 3 (Locality.footprint trace);
  check_int "empty" 0 (Locality.footprint [||])

let test_working_set_windows () =
  let trace = [| 1; 2; 1; 2; 5; 6; 7; 8 |] in
  Alcotest.(check (array int)) "windows of 4" [| 2; 4 |]
    (Locality.working_set_sizes ~window:4 trace);
  Alcotest.(check (float 1e-9)) "average" 3.
    (Locality.average_working_set ~window:4 trace)

let test_reuse_distance_simple () =
  (* 1 2 3 1: the second 1 has seen 2 distinct addresses since *)
  Alcotest.(check (array int)) "distances" [| 2 |]
    (Locality.reuse_distances [| 1; 2; 3; 1 |])

let test_hit_ratio_edge_cases () =
  Alcotest.(check (float 1e-9)) "empty trace" 0.
    (Locality.hit_ratio_for_capacity ~capacity:4 [||]);
  Alcotest.(check (float 1e-9)) "all cold" 0.
    (Locality.hit_ratio_for_capacity ~capacity:100 [| 1; 2; 3 |])

let test_trace_of_program_matches_steps () =
  let p = Suite.compile (Suite.find "fact_iter") in
  let trace = Locality.trace_of_program p in
  let r = Uhm_dir.Interp.run p in
  check_int "length = steps" r.Uhm_dir.Interp.steps (Array.length trace);
  check_int "starts at entry" p.Uhm_dir.Program.entry trace.(0)

let prop_working_set_bounded_by_footprint =
  QCheck.Test.make ~name:"working set <= min(window, footprint)" ~count:100
    QCheck.(list_of_size Gen.(int_range 10 400) (int_bound 50))
    (fun addrs ->
      let trace = Array.of_list addrs in
      let fp = Locality.footprint trace in
      Array.for_all
        (fun w -> w <= min 10 fp)
        (Locality.working_set_sizes ~window:10 trace))

let prop_hit_ratio_monotone =
  QCheck.Test.make ~name:"LRU hit ratio monotone in capacity" ~count:60
    QCheck.(list_of_size Gen.(int_range 10 300) (int_bound 30))
    (fun addrs ->
      let trace = Array.of_list addrs in
      let h c = Locality.hit_ratio_for_capacity ~capacity:c trace in
      h 1 <= h 4 +. 1e-9 && h 4 <= h 16 +. 1e-9 && h 16 <= h 64 +. 1e-9)

(* -- Tracegen ------------------------------------------------------------------ *)

let test_tracegen_bounds () =
  let cfg = { Tracegen.default with Tracegen.length = 2000; code_size = 100 } in
  let trace = Tracegen.generate cfg in
  check_int "length" 2000 (Array.length trace);
  check_bool "addresses in range" true
    (Array.for_all (fun a -> a >= 0 && a < 100) trace)

let test_prng_determinism_and_range () =
  let a = Tracegen.Prng.create ~seed:11 in
  let b = Tracegen.Prng.create ~seed:11 in
  for _ = 1 to 100 do
    check_int "same stream" (Tracegen.Prng.next a) (Tracegen.Prng.next b)
  done;
  let r = Tracegen.Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Tracegen.Prng.below r 17 in
    check_bool "below bound" true (v >= 0 && v < 17)
  done

let test_prng_float_range () =
  let r = Tracegen.Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let f = Tracegen.Prng.float r in
    check_bool "in [0,1)" true (f >= 0. && f < 1.)
  done

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  ( "workload",
    [
      Alcotest.test_case "suite programs parse and check" `Quick
        test_suite_programs_parse_and_check;
      Alcotest.test_case "suite names unique" `Quick test_suite_names_unique;
      Alcotest.test_case "suite find" `Quick test_suite_find;
      Alcotest.test_case "suite outputs deterministic" `Quick
        test_suite_outputs_deterministic;
      Alcotest.test_case "loopiness classes meaningful" `Quick
        test_suite_loopiness_classes_are_meaningful;
      Alcotest.test_case "footprint" `Quick test_footprint_bounds;
      Alcotest.test_case "working-set windows" `Quick test_working_set_windows;
      Alcotest.test_case "reuse distance" `Quick test_reuse_distance_simple;
      Alcotest.test_case "hit ratio edge cases" `Quick test_hit_ratio_edge_cases;
      Alcotest.test_case "trace matches interpreter steps" `Quick
        test_trace_of_program_matches_steps;
      Alcotest.test_case "tracegen bounds" `Quick test_tracegen_bounds;
      Alcotest.test_case "prng determinism and range" `Quick
        test_prng_determinism_and_range;
      Alcotest.test_case "prng float range" `Quick test_prng_float_range;
      qcheck prop_working_set_bounded_by_footprint;
      qcheck prop_hit_ratio_monotone;
    ] )
