(* Tests for the PSDER layer: the host-code decoders against the software
   codec, the semantic routines in isolation, the DER expansion, and the
   consistency of the translation templates across their three users
   (dynamic translator, static PSDER generator, trace-driven simulator). *)

module Asm = Uhm_machine.Asm
module H = Uhm_machine.Host_isa
module R = Uhm_machine.Host_isa.Regs
module Machine = Uhm_machine.Machine
module SF = Uhm_machine.Short_format
module Isa = Uhm_dir.Isa
module Program = Uhm_dir.Program
module Stats = Uhm_dir.Static_stats
module Kind = Uhm_encoding.Kind
module Codec = Uhm_encoding.Codec
module Layout = Uhm_psder.Layout
module Runtime = Uhm_psder.Runtime
module Decode_gen = Uhm_psder.Decode_gen
module Static_gen = Uhm_psder.Static_gen
module Der_gen = Uhm_psder.Der_gen
module Table_image = Uhm_psder.Table_image
module Suite = Uhm_workload.Suite

let check_int = Alcotest.(check int)

(* A small memory map for routine-level tests, so per-case machines stay
   cheap. *)
let small_layout =
  {
    Layout.op_stack_base = 0; op_stack_size = 128;
    ret_stack_base = 128; ret_stack_size = 128;
    data_base = 256; data_size = 1024;
    table_base = 1280; table_size = 32768;
    dtb_buffer_base = 34048; dtb_buffer_size = 64;
    psder_static_base = 34112; psder_static_size = 4096;
    mem_words = 38208;
  }

let fresh_machine program =
  let m =
    Machine.create ~program ~mem_words:small_layout.Layout.mem_words
      ~regions:(Layout.regions Uhm_machine.Timing.paper small_layout) ()
  in
  Machine.set_reg m R.sp small_layout.Layout.op_stack_base;
  Machine.set_reg m R.rsp small_layout.Layout.ret_stack_base;
  Machine.set_reg m R.fp small_layout.Layout.data_base;
  Machine.set_reg m R.dtop (small_layout.Layout.data_base + 16);
  m

let run_to_halt what m =
  match Machine.run m with
  | Machine.Halted -> ()
  | Machine.Trapped msg -> Alcotest.failf "%s trapped: %s" what msg
  | Machine.Out_of_fuel -> Alcotest.failf "%s out of fuel" what
  | Machine.Running -> assert false

(* -- Host decoder = software codec --------------------------------------------- *)

(* Build a machine containing only the decode routine and a one-shot driver;
   decode every instruction of [p] under [kind] and compare the register
   results with [Codec.decode_at]. *)
let check_decoder_equivalence ~what kind (p : Program.t) =
  let encoded = Codec.encode kind p in
  let b = Asm.create () in
  let tables =
    Table_image.create ~base:small_layout.Layout.table_base
      ~capacity:small_layout.Layout.table_size
  in
  let decode = Decode_gen.build b ~tables ~encoded in
  let driver_entry =
    Asm.routine b Asm.Startup (fun () ->
        Asm.call_addr b decode;
        Asm.halt b)
  in
  let program = Asm.finish b in
  let image = Table_image.image tables in
  let contour_map = Program.contour_of_instr p in
  let digram_ctxs = Stats.digram_contexts p in
  Array.iteri
    (fun i _ ->
      let m = fresh_machine program in
      Array.iteri
        (fun k w -> Machine.poke m (small_layout.Layout.table_base + k) w)
        image;
      Machine.set_dir_stream m ~bits:encoded.Codec.bits
        ~mode:Machine.Dir_uncached;
      Machine.set_reg m R.dpc encoded.Codec.offsets.(i);
      Machine.set_reg m R.ctx contour_map.(i);
      Machine.set_reg m R.dctx digram_ctxs.(i);
      Machine.set_pc m (Machine.Long driver_entry);
      run_to_halt (Printf.sprintf "%s/%s decode of instr %d" what (Kind.name kind) i) m;
      let raw =
        Codec.decode_at encoded ~contour:contour_map.(i)
          ~digram_ctx:digram_ctxs.(i) ~addr:encoded.Codec.offsets.(i)
      in
      let fail fmt =
        Alcotest.failf
          ("%s/%s instr %d (%s): " ^^ fmt)
          what (Kind.name kind) i
          (Isa.to_string p.Program.code.(i))
      in
      if Machine.reg m 8 <> Isa.opcode_to_enum raw.Codec.op then
        fail "opcode %d vs %d" (Machine.reg m 8)
          (Isa.opcode_to_enum raw.Codec.op);
      let check_field name reg expected =
        if Machine.reg m reg <> expected then
          fail "%s field %d vs %d" name (Machine.reg m reg) expected
      in
      (match Isa.shape raw.Codec.op with
      | Isa.Shape_none -> ()
      | Isa.Shape_imm -> check_field "imm" 9 raw.Codec.ra
      | Isa.Shape_var ->
          check_field "level" 9 raw.Codec.ra;
          check_field "offset" 10 raw.Codec.rb
      | Isa.Shape_target -> check_field "target" 9 raw.Codec.ra
      | Isa.Shape_call ->
          check_field "target" 9 raw.Codec.ra;
          check_field "hops" 10 raw.Codec.rb
      | Isa.Shape_enter ->
          check_field "args" 9 raw.Codec.ra;
          check_field "locals" 10 raw.Codec.rb;
          check_field "ctx" 11 raw.Codec.rc);
      if Machine.reg m R.dpc <> raw.Codec.next_addr then
        fail "next addr %d vs %d" (Machine.reg m R.dpc) raw.Codec.next_addr)
    p.Program.code

let test_decoder_equivalence_suite () =
  List.iter
    (fun name ->
      let p = Suite.compile ~fuse:true (Suite.find name) in
      List.iter
        (fun kind -> check_decoder_equivalence ~what:name kind p)
        Kind.all)
    [ "gcd"; "nested_scopes"; "bubble_sort" ]

let prop_decoder_equivalence_random =
  QCheck.Test.make ~name:"host decoder = software codec on random programs"
    ~count:25 Gen_program.valid_program
    (fun ast ->
      let p = Uhm_compiler.Pipeline.compile ~fuse:true ast in
      List.iter
        (fun kind -> check_decoder_equivalence ~what:"random" kind p)
        Kind.all;
      true)

(* -- Semantic routines in isolation --------------------------------------------- *)

let build_runtime () =
  let b = Asm.create () in
  let rt = Runtime.build b ~layout:small_layout in
  (b, rt)

(* Drive one routine: push [stack] (bottom first), call the routine, halt;
   return the machine for inspection. *)
let drive_routine ?(setup = fun _ -> ()) routine stack =
  let b, rt = build_runtime () in
  let entry =
    Asm.routine b Asm.Startup (fun () ->
        Asm.call_addr b (routine rt);
        Asm.halt b)
  in
  ignore entry;
  let program = Asm.finish b in
  let m = fresh_machine program in
  setup m;
  List.iter
    (fun v ->
      let sp = Machine.reg m R.sp in
      Machine.poke m sp v;
      Machine.set_reg m R.sp (sp + 1))
    stack;
  Machine.set_pc m (Machine.Long entry);
  run_to_halt "routine" m;
  m

let pop_result m =
  let sp = Machine.reg m R.sp - 1 in
  Machine.peek m sp

let test_rt_binops () =
  List.iter
    (fun (op, x, y, expected) ->
      let m =
        drive_routine (fun rt -> rt.Runtime.sem.(Isa.opcode_to_enum op)) [ x; y ]
      in
      check_int (Isa.mnemonic op) expected (pop_result m))
    [
      (Isa.Add, 6, 7, 13); (Isa.Sub, 6, 7, -1); (Isa.Mul, 6, 7, 42);
      (Isa.Div, 43, 6, 7); (Isa.Mod, 43, 6, 1); (Isa.Eq, 5, 5, 1);
      (Isa.Ne, 5, 5, 0); (Isa.Lt, 4, 5, 1); (Isa.Le, 5, 5, 1);
      (Isa.Gt, 4, 5, 0); (Isa.Ge, 4, 5, 0); (Isa.And, 3, 0, 0);
      (Isa.And, 3, 9, 1); (Isa.Or, 0, 0, 0); (Isa.Or, 0, 9, 1);
    ]

let test_rt_unops () =
  let m = drive_routine (fun rt -> rt.Runtime.sem.(Isa.opcode_to_enum Isa.Neg)) [ 5 ] in
  check_int "neg" (-5) (pop_result m);
  let m = drive_routine (fun rt -> rt.Runtime.sem.(Isa.opcode_to_enum Isa.Not)) [ 0 ] in
  check_int "not 0" 1 (pop_result m)

let test_rt_load_store () =
  (* store 42 at frame offset 2, then load it back: stack for store is
     [value; hops; offset] *)
  let data = small_layout.Layout.data_base in
  let m =
    drive_routine
      (fun rt -> rt.Runtime.sem.(Isa.opcode_to_enum Isa.Store))
      [ 42; 0; 2 ]
  in
  check_int "stored" 42 (Machine.peek m (data + Isa.frame_header_size + 2));
  let m =
    drive_routine
      ~setup:(fun m -> Machine.poke m (data + Isa.frame_header_size + 1) 77)
      (fun rt -> rt.Runtime.sem.(Isa.opcode_to_enum Isa.Load))
      [ 0; 1 ]
  in
  check_int "loaded" 77 (pop_result m)

let test_rt_static_link_walk () =
  (* two frames: outer at data_base, inner frame at data_base+8 whose
     static link points at the outer; a load with one hop must read the
     outer frame's slot *)
  let data = small_layout.Layout.data_base in
  let m =
    drive_routine
      ~setup:(fun m ->
        Machine.poke m (data + Isa.frame_header_size + 0) 123;
        Machine.poke m (data + 8) data;      (* inner static link *)
        Machine.set_reg m R.fp (data + 8))
      (fun rt -> rt.Runtime.sem.(Isa.opcode_to_enum Isa.Load))
      [ 1; 0 ]
  in
  check_int "one-hop load" 123 (pop_result m)

let test_rt_call_and_ret () =
  (* rt_call builds a frame (stack: [hops; return]); rt_ret_core tears it
     down and leaves the return address in r0 *)
  let data = small_layout.Layout.data_base in
  let m =
    drive_routine (fun rt -> rt.Runtime.rt_call) [ 0; 9999 ]
  in
  let new_fp = Machine.reg m R.fp in
  check_int "frame at former dtop" (data + 16) new_fp;
  check_int "static link" data (Machine.peek m new_fp);
  check_int "dynamic link" data (Machine.peek m (new_fp + 1));
  check_int "return address" 9999 (Machine.peek m (new_fp + 2));
  check_int "dtop advanced" (new_fp + Isa.frame_header_size)
    (Machine.reg m R.dtop)

let test_rt_enter_pops_args () =
  (* enter with 2 args, 1 local: stack [argA; argB; nargs; nlocals; ctx] *)
  let data = small_layout.Layout.data_base in
  let m =
    drive_routine
      (fun rt -> rt.Runtime.sem.(Isa.opcode_to_enum Isa.Enter))
      [ 11; 22; 2; 1; 0 ]
  in
  check_int "first arg" 11 (Machine.peek m (data + Isa.frame_header_size));
  check_int "second arg" 22 (Machine.peek m (data + Isa.frame_header_size + 1));
  check_int "local zeroed" 0 (Machine.peek m (data + Isa.frame_header_size + 2));
  check_int "dtop" (data + Isa.frame_header_size + 3) (Machine.reg m R.dtop)

let test_rt_division_by_zero_traps () =
  let b, rt = build_runtime () in
  let entry =
    Asm.routine b Asm.Startup (fun () ->
        Asm.call_addr b rt.Runtime.sem.(Isa.opcode_to_enum Isa.Div);
        Asm.halt b)
  in
  let m = fresh_machine (Asm.finish b) in
  List.iter
    (fun v ->
      let sp = Machine.reg m R.sp in
      Machine.poke m sp v;
      Machine.set_reg m R.sp (sp + 1))
    [ 5; 0 ];
  Machine.set_pc m (Machine.Long entry);
  match Machine.run m with
  | Machine.Trapped msg ->
      Alcotest.(check bool) "mentions zero" true
        (Astring_contains.contains msg "zero")
  | _ -> Alcotest.fail "expected division trap"

(* -- Template consistency -------------------------------------------------------- *)

let test_translation_words_match_machine_emission () =
  (* the trace-driven simulator's word counts must equal what the real
     translator emits, program by program *)
  List.iter
    (fun name ->
      let p = Suite.compile (Suite.find name) in
      let encoded = Codec.encode Kind.Packed p in
      let config = Uhm_core.Dtb.paper_config in
      let sim = Uhm_core.Dtb_sim.replay_encoded ~config encoded in
      let machine =
        Uhm_core.Uhm.run_encoded
          ~strategy:(Uhm_core.Uhm.Dtb_strategy config) encoded
      in
      check_int
        (name ^ ": emitted words")
        sim.Uhm_core.Dtb_sim.words_emitted
        (Option.get machine.Uhm_core.Uhm.dtb_emitted_words))
    [ "fact_iter"; "quicksort"; "string_out"; "flat_straightline" ]

let test_static_gen_word_counts () =
  (* Static_gen's layout must place instruction i+1 exactly word_count(i)
     words after instruction i, and all GOTO/CALL addresses must stay in
     range. *)
  let p = Suite.compile ~fuse:true (Suite.find "quicksort") in
  let b = Asm.create () in
  let rt = Runtime.build b ~layout:Layout.default in
  let static = Static_gen.build ~layout:Layout.default ~rt p in
  let base = Layout.default.Layout.psder_static_base in
  let n = Array.length p.Program.code in
  Alcotest.(check bool) "addresses increasing" true
    (Array.for_all
       (fun a -> a >= base && a < base + Array.length static.Static_gen.words)
       static.Static_gen.addr_of_instr);
  check_int "entry is instr 0's address"
    static.Static_gen.addr_of_instr.(p.Program.entry)
    static.Static_gen.entry_addr;
  ignore n

(* -- DER expansion ---------------------------------------------------------------- *)

let test_der_runs_standalone () =
  (* beyond the strategy test: check the generated code size accounting *)
  let p = Suite.compile (Suite.find "fact_iter") in
  let der = Der_gen.build p in
  Alcotest.(check bool) "expansion is larger than the DIR" true
    (der.Der_gen.code_instructions > Program.size_instructions p);
  Alcotest.(check bool) "every DIR instr begins a host sequence" true
    (der.Der_gen.code_instructions >= Program.size_instructions p)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  ( "psder",
    [
      Alcotest.test_case "host decoders = software codec (suite)" `Slow
        test_decoder_equivalence_suite;
      Alcotest.test_case "binop routines" `Quick test_rt_binops;
      Alcotest.test_case "unop routines" `Quick test_rt_unops;
      Alcotest.test_case "load/store routines" `Quick test_rt_load_store;
      Alcotest.test_case "static-link walk" `Quick test_rt_static_link_walk;
      Alcotest.test_case "call builds a frame" `Quick test_rt_call_and_ret;
      Alcotest.test_case "enter pops args and zeroes locals" `Quick
        test_rt_enter_pops_args;
      Alcotest.test_case "division by zero traps in routines" `Quick
        test_rt_division_by_zero_traps;
      Alcotest.test_case "translator emission = template word counts" `Quick
        test_translation_words_match_machine_emission;
      Alcotest.test_case "static PSDER layout" `Quick test_static_gen_word_counts;
      Alcotest.test_case "DER expansion accounting" `Quick test_der_runs_standalone;
      qcheck prop_decoder_equivalence_random;
    ] )
