(* QCheck generators for Algol-S.

   [ast] generates syntactically plausible (not necessarily well-scoped)
   programs for the parse/print round-trip.

   [valid_program] generates well-scoped programs that are guaranteed to
   terminate, never divide by zero, never index out of bounds and never
   assign their own loop variable — the class over which all execution
   engines must agree exactly.  It is the backbone of the differential
   tests (HLR interpreter vs DIR interpreter vs simulated machine). *)

open Uhm_hlr
open QCheck.Gen

(* ------------------------------------------------------------------ *)
(* Arbitrary (syntactic) ASTs for the printer round-trip              *)
(* ------------------------------------------------------------------ *)

let ident_gen = oneofl [ "a"; "b"; "c"; "x"; "y"; "z"; "foo"; "bar" ]

let binop_gen =
  oneofl
    Ast.[ Add_op; Sub_op; Mul_op; Div_op; Mod_op; Eq_op; Ne_op; Lt_op; Le_op;
          Gt_op; Ge_op; And_op; Or_op ]

let rec expr_gen depth =
  if depth <= 0 then
    oneof [ map (fun n -> Ast.Num n) (int_range 0 999); map (fun v -> Ast.Var v) ident_gen ]
  else
    frequency
      [
        (2, map (fun n -> Ast.Num n) (int_range 0 999));
        (2, map (fun v -> Ast.Var v) ident_gen);
        ( 2,
          map2 (fun name e -> Ast.Subscript (name, e)) ident_gen
            (expr_gen (depth - 1)) );
        ( 1,
          map2 (fun name args -> Ast.Call_expr (name, args)) ident_gen
            (list_size (int_range 0 3) (expr_gen (depth - 1))) );
        (1, map (fun e -> Ast.Unop (Ast.Neg_op, e)) (expr_gen (depth - 1)));
        (1, map (fun e -> Ast.Unop (Ast.Not_op, e)) (expr_gen (depth - 1)));
        ( 4,
          map3
            (fun op lhs rhs -> Ast.Binop (op, lhs, rhs))
            binop_gen (expr_gen (depth - 1)) (expr_gen (depth - 1)) );
      ]

let rec stmt_gen depth =
  let leaf =
    oneof
      [
        return Ast.Skip;
        map2 (fun v e -> Ast.Assign (v, e)) ident_gen (expr_gen 2);
        map3 (fun v i e -> Ast.Assign_sub (v, i, e)) ident_gen (expr_gen 1) (expr_gen 2);
        map (fun e -> Ast.Print e) (expr_gen 2);
        map (fun e -> Ast.Printc e) (expr_gen 2);
        map (fun s -> Ast.Write s) (oneofl [ "hi"; "x = "; "done" ]);
        map2 (fun name args -> Ast.Call_stmt (name, args)) ident_gen
          (list_size (int_range 0 2) (expr_gen 1));
        map (fun e -> Ast.Return e) (opt (expr_gen 2));
      ]
  in
  if depth <= 0 then leaf
  else
    frequency
      [
        (4, leaf);
        ( 1,
          map3
            (fun c t e -> Ast.If (c, t, e))
            (expr_gen 2) (stmt_gen (depth - 1))
            (opt (stmt_gen (depth - 1))) );
        (1, map2 (fun c b -> Ast.While (c, b)) (expr_gen 2) (stmt_gen (depth - 1)));
        ( 1,
          ident_gen >>= fun v ->
          expr_gen 1 >>= fun start ->
          oneofl [ Ast.Upto; Ast.Downto ] >>= fun dir ->
          expr_gen 1 >>= fun stop ->
          map (fun b -> Ast.For (v, start, dir, stop, b)) (stmt_gen (depth - 1)) );
        (1, map (fun b -> Ast.Block b) (block_gen (depth - 1)));
      ]

and decl_gen depth =
  let simple =
    [
      (3, map2 (fun v init -> Ast.Var_decl (v, init)) ident_gen (opt (expr_gen 1)));
      (1, map2 (fun v n -> Ast.Array_decl (v, n)) ident_gen (int_range 1 20));
    ]
  in
  let procs =
    (* strictly depth-decreasing: no procedures at the recursion floor *)
    if depth <= 0 then []
    else
      [
        ( 1,
          map3
            (fun name params body -> Ast.Proc_decl (name, params, body))
            ident_gen
            (list_size (int_range 0 3) ident_gen)
            (block_gen (depth - 1)) );
      ]
  in
  frequency (simple @ procs)

and block_gen depth =
  map2
    (fun decls stmts -> { Ast.decls; stmts })
    (list_size (int_range 0 3) (decl_gen depth))
    (list_size (int_range 0 4) (stmt_gen depth))

let ast =
  QCheck.make
    ~print:(fun p -> Pretty.to_string p)
    (map (fun body -> { Ast.name = "<gen>"; body }) (block_gen 3))

(* ------------------------------------------------------------------ *)
(* Valid, terminating programs                                        *)
(* ------------------------------------------------------------------ *)

type genv = {
  scalars : string list;      (* assignable scalars in scope *)
  loop_vars : string list;    (* readable but not assignable *)
  arrays : (string * int) list;
  procs : (string * int) list; (* name, arity *)
  fresh : int ref;
}

let fresh_name env prefix =
  let n = !(env.fresh) in
  env.fresh := n + 1;
  Printf.sprintf "%s%d" prefix n

let readable_scalars env = env.scalars @ env.loop_vars

(* Expressions built from in-scope names; division only by non-zero
   literals; array reads only at indices [safe_index] can prove in range. *)
let rec valid_expr env depth =
  let literal = map (fun n -> Ast.Num n) (int_range (-50) 50) in
  let base =
    match readable_scalars env with
    | [] -> [ (3, literal) ]
    | vars -> [ (2, literal); (3, map (fun v -> Ast.Var v) (oneofl vars)) ]
  in
  let arrays =
    match env.arrays with
    | [] -> []
    | arrays ->
        [
          ( 2,
            oneofl arrays >>= fun (name, size) ->
            map (fun i -> Ast.Subscript (name, i)) (safe_index env size) );
        ]
  in
  let calls =
    if depth <= 0 then []
    else
      match env.procs with
      | [] -> []
      | procs ->
          let call_gen =
            oneofl procs >>= fun (name, arity) ->
            let args_gen =
              flatten_l (List.init arity (fun _ -> valid_expr env (depth - 1)))
            in
            map (fun args -> Ast.Call_expr (name, args)) args_gen
          in
          [ (1, call_gen) ]
  in
  let compound =
    if depth <= 0 then []
    else
      [
        ( 3,
          oneofl
            Ast.[ Add_op; Sub_op; Mul_op; Eq_op; Ne_op; Lt_op; Le_op; Gt_op;
                  Ge_op; And_op; Or_op ]
          >>= fun op ->
          map2
            (fun lhs rhs -> Ast.Binop (op, lhs, rhs))
            (valid_expr env (depth - 1))
            (valid_expr env (depth - 1)) );
        ( 1,
          (* division and modulus by a non-zero literal only *)
          oneofl Ast.[ Div_op; Mod_op ] >>= fun op ->
          map2
            (fun lhs d -> Ast.Binop (op, lhs, Ast.Num d))
            (valid_expr env (depth - 1))
            (oneof [ int_range 1 9; int_range (-9) (-1) ]) );
        (1, map (fun e -> Ast.Unop (Ast.Neg_op, e)) (valid_expr env (depth - 1)));
        (1, map (fun e -> Ast.Unop (Ast.Not_op, e)) (valid_expr env (depth - 1)));
      ]
  in
  frequency (base @ arrays @ calls @ compound)

(* An index expression guaranteed to lie in [0, size): either a literal or
   an arbitrary expression clamped by [mod] and made non-negative.  The
   clamp uses only constructs whose semantics agree across engines. *)
and safe_index env size =
  frequency
    [
      (3, map (fun i -> Ast.Num i) (int_range 0 (size - 1)));
      ( 1,
        map
          (fun e ->
            (* ((e mod size) + size) mod size *)
            Ast.Binop
              ( Ast.Mod_op,
                Ast.Binop
                  ( Ast.Add_op,
                    Ast.Binop (Ast.Mod_op, e, Ast.Num size),
                    Ast.Num size ),
                Ast.Num size ))
          (valid_expr env 1) );
    ]

let rec valid_stmt env depth =
  let assigns =
    match env.scalars with
    | [] -> []
    | scalars ->
        [
          ( 4,
            map2 (fun v e -> Ast.Assign (v, e)) (oneofl scalars)
              (valid_expr env 2) );
        ]
  in
  let array_writes =
    match env.arrays with
    | [] -> []
    | arrays ->
        [
          ( 2,
            oneofl arrays >>= fun (name, size) ->
            map2
              (fun i e -> Ast.Assign_sub (name, i, e))
              (safe_index env size) (valid_expr env 2) );
        ]
  in
  let io =
    [
      (2, map (fun e -> Ast.Print e) (valid_expr env 2));
      ( 1,
        (* printc needs [0,255]: clamp with mod 256 of a non-negative value *)
        map
          (fun e ->
            Ast.Printc
              (Ast.Binop
                 ( Ast.Mod_op,
                   Ast.Binop
                     ( Ast.Add_op,
                       Ast.Binop (Ast.Mod_op, e, Ast.Num 256),
                       Ast.Num 256 ),
                   Ast.Num 256 )))
          (valid_expr env 1) );
      (1, map (fun s -> Ast.Write s) (oneofl [ "out: "; "#"; "\n---\n" ]));
    ]
  in
  let calls =
    if depth <= 0 then []
    else
      match env.procs with
      | [] -> []
      | procs ->
          [
            ( 1,
              oneofl procs >>= fun (name, arity) ->
              map
                (fun args -> Ast.Call_stmt (name, args))
                (flatten_l (List.init arity (fun _ -> valid_expr env 1))) );
          ]
  in
  let compound =
    if depth <= 0 then []
    else
      [
        ( 2,
          map3
            (fun c t e -> Ast.If (c, t, e))
            (valid_expr env 2)
            (valid_stmt env (depth - 1))
            (opt (valid_stmt env (depth - 1))) );
        ( 2,
          (* bounded for loop over a fresh loop variable *)
          let v = fresh_name env "i" in
          int_range 0 3 >>= fun start ->
          int_range 0 5 >>= fun span ->
          oneofl [ Ast.Upto; Ast.Downto ] >>= fun dir ->
          let lo, hi =
            match dir with
            | Ast.Upto -> (start, start + span)
            | Ast.Downto -> (start + span, start)
          in
          let inner =
            { env with loop_vars = v :: env.loop_vars }
          in
          map
            (fun body ->
              Ast.Block
                {
                  Ast.decls = [ Ast.Var_decl (v, None) ];
                  stmts = [ Ast.For (v, Ast.Num lo, dir, Ast.Num hi, body) ];
                })
            (valid_stmt inner (depth - 1)) );
        (1, map (fun b -> Ast.Block b) (valid_block env (depth - 1) ~allow_procs:false));
      ]
  in
  frequency (assigns @ array_writes @ io @ calls @ compound)

and valid_block env depth ~allow_procs =
  int_range 0 2 >>= fun n_scalars ->
  (if List.length env.arrays < 2 then int_range 0 1 else return 0)
  >>= fun n_arrays ->
  let scalar_names = List.init n_scalars (fun _ -> fresh_name env "v") in
  (match n_arrays with
  | 0 -> return []
  | _ ->
      map
        (fun size -> [ (fresh_name env "arr", size) ])
        (int_range 2 12))
  >>= fun array_decls ->
  let env1 =
    {
      env with
      scalars = scalar_names @ env.scalars;
      arrays = array_decls @ env.arrays;
    }
  in
  (* optionally declare a procedure usable by the rest of the block *)
  (if allow_procs && depth > 0 then
     bool >>= fun declare ->
     if not declare then return (env1, [])
     else
       int_range 0 2 >>= fun arity ->
       let name = fresh_name env "p" in
       let params = List.init arity (fun k -> Printf.sprintf "%s_a%d" name k) in
       let proc_env =
         {
           env1 with
           scalars = params;
           loop_vars = [];
           arrays = [];
           procs = (name, arity) :: env1.procs;
         }
       in
       map
         (fun body ->
           ( { env1 with procs = (name, arity) :: env1.procs },
             [ Ast.Proc_decl (name, params, body) ] ))
         (valid_proc_body proc_env (depth - 1))
   else return (env1, []))
  >>= fun (env2, proc_decls) ->
  map2
    (fun inits stmts ->
      let var_decls =
        List.map2 (fun v init -> Ast.Var_decl (v, init)) scalar_names inits
      in
      let arr_decls = List.map (fun (a, n) -> Ast.Array_decl (a, n)) array_decls in
      { Ast.decls = var_decls @ arr_decls @ proc_decls; stmts })
    (flatten_l
       (List.map (fun _ -> opt (map (fun n -> Ast.Num n) (int_range 0 20))) scalar_names))
    (list_size (int_range 1 3) (valid_stmt env2 depth))

and valid_proc_body env depth =
  map2
    (fun block ret ->
      { block with Ast.stmts = block.Ast.stmts @ [ Ast.Return (Some ret) ] })
    (valid_block env depth ~allow_procs:false)
    (valid_expr env 1)

let valid_program_gen =
  sized_size (int_range 1 4) (fun depth ->
      let env =
        { scalars = []; loop_vars = []; arrays = []; procs = []; fresh = ref 0 }
      in
      map
        (fun body -> { Ast.name = "<gen-valid>"; body })
        (valid_block env depth ~allow_procs:true))

let valid_program =
  QCheck.make ~print:(fun p -> Pretty.to_string p) valid_program_gen
