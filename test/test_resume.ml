(* Resumable execution: running a program in slices — any slice size, any
   mix of boundaries — must leave results bit-identical to a single
   Machine.run.  Checked for the three golden programs under all four
   golden strategies with fixed budgets, for DIR-quantum slicing on the
   DTB strategy, and as a QCheck property over random budget sequences. *)

module U = Uhm_core.Uhm
module Dtb = Uhm_core.Dtb
module Machine = Uhm_machine.Machine
module Kind = Uhm_encoding.Kind
module Suite = Uhm_workload.Suite

let compile name = Suite.compile (Suite.find name)

(* a runner that slices on cycle budgets; with [budgets] exhausted the
   remainder runs in one final slice *)
let budget_runner budgets m =
  let rec go bs =
    let budget, rest =
      match bs with b :: tl -> (b, tl) | [] -> (max_int, [])
    in
    match Machine.run_for m ~budget with
    | Machine.Done s -> s
    | Machine.Yielded -> go rest
  in
  go budgets

let chunked ~budget m =
  let rec go () =
    match Machine.run_for m ~budget with
    | Machine.Done s -> s
    | Machine.Yielded -> go ()
  in
  go ()

let quantum_runner ~quantum m =
  let rec go () =
    match Machine.run_dir_quantum m ~quantum with
    | Machine.Done s -> s
    | Machine.Yielded -> go ()
  in
  go ()

(* Whole Uhm.result records are compared structurally: status, output,
   total cycles, every per-category and per-unit statistic, and the DTB
   counters all have to survive slicing untouched. *)
let check_sliced name strategy runner_name runner () =
  let p = compile name in
  let whole = U.run ~strategy ~kind:Kind.Huffman p in
  let sliced = U.run ~runner ~strategy ~kind:Kind.Huffman p in
  if whole <> sliced then
    Alcotest.failf
      "%s/%s sliced by %s diverged: cycles %d vs %d, output %s"
      name (U.strategy_name strategy) runner_name whole.U.cycles
      sliced.U.cycles
      (if whole.U.output = sliced.U.output then "identical" else "DIFFERENT")

let strategies =
  [
    ("interp", U.Interp);
    ("cached", U.Cached 4096);
    ("dtb", U.Dtb_strategy Dtb.paper_config);
    ("der", U.Der U.Der_level1);
  ]

let fixed_budget_cases =
  (* budget 1 (one instruction per slice) only on the short program *)
  List.concat_map
    (fun (sname, strategy) ->
      [
        Alcotest.test_case
          (Printf.sprintf "fact_iter/%s in 1-cycle slices" sname)
          `Quick
          (check_sliced "fact_iter" strategy "budget 1" (chunked ~budget:1));
      ])
    strategies
  @ List.concat_map
      (fun name ->
        List.concat_map
          (fun (sname, strategy) ->
            List.map
              (fun budget ->
                Alcotest.test_case
                  (Printf.sprintf "%s/%s in %d-cycle slices" name sname budget)
                  (if name = "fib_rec" then `Slow else `Quick)
                  (check_sliced name strategy
                     (Printf.sprintf "budget %d" budget)
                     (chunked ~budget)))
              [ 997; 104729 ])
          strategies)
      [ "fact_iter"; "fib_rec"; "flat_straightline" ]

let quantum_cases =
  (* INTERP-boundary slicing, as the multiprogramming scheduler preempts *)
  List.concat_map
    (fun name ->
      List.map
        (fun quantum ->
          Alcotest.test_case
            (Printf.sprintf "%s/dtb in %d-DIR-instruction quanta" name quantum)
            (if name = "fib_rec" then `Slow else `Quick)
            (check_sliced name
               (U.Dtb_strategy Dtb.paper_config)
               (Printf.sprintf "quantum %d" quantum)
               (quantum_runner ~quantum)))
        [ 1; 7; 1000 ])
    [ "fact_iter"; "fib_rec"; "flat_straightline" ]

(* The documented edge semantics of both slicing entry points (see
   machine.mli): budget 0 yields without progress, negatives raise, and a
   stopped machine answers Done without executing.  Probed mid-run via a
   custom runner, then the probed run must still equal the whole run. *)
let test_edge_semantics () =
  let p = compile "fact_iter" in
  let strategy = U.Dtb_strategy Dtb.paper_config in
  let probed = ref false in
  let runner m =
    let c0 = (Machine.stats m).Machine.cycles in
    (match Machine.run_for m ~budget:0 with
    | Machine.Yielded -> ()
    | Machine.Done _ -> Alcotest.fail "budget 0 on a running machine must yield");
    Alcotest.(check int)
      "budget 0 executes nothing" c0 (Machine.stats m).Machine.cycles;
    (match Machine.run_for m ~budget:(-1) with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "negative budget must raise Invalid_argument");
    (match Machine.run_dir_quantum m ~quantum:0 with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "quantum 0 must raise Invalid_argument");
    (match Machine.run_dir_quantum m ~quantum:(-7) with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "negative quantum must raise Invalid_argument");
    Alcotest.(check int)
      "failed calls charge nothing" c0 (Machine.stats m).Machine.cycles;
    (* budget = max_int saturates: run to completion in one slice *)
    let status =
      match Machine.run_for m ~budget:max_int with
      | Machine.Done s -> s
      | Machine.Yielded -> Alcotest.fail "max_int budget must finish the run"
    in
    let stopped = (Machine.stats m).Machine.cycles in
    (* on a stopped machine every legal call is an immediate Done *)
    (match Machine.run_for m ~budget:0 with
    | Machine.Done s -> Alcotest.(check bool) "same status" true (s = status)
    | Machine.Yielded -> Alcotest.fail "stopped machine must answer Done");
    (match Machine.run_dir_quantum m ~quantum:1 with
    | Machine.Done s -> Alcotest.(check bool) "same status" true (s = status)
    | Machine.Yielded -> Alcotest.fail "stopped machine must answer Done");
    Alcotest.(check int)
      "stopped machine never executes" stopped
      (Machine.stats m).Machine.cycles;
    probed := true;
    status
  in
  let whole = U.run ~strategy ~kind:Kind.Huffman p in
  let sliced = U.run ~runner ~strategy ~kind:Kind.Huffman p in
  Alcotest.(check bool) "runner ran" true !probed;
  Alcotest.(check bool) "edge probing left the run identical" true
    (whole = sliced)

(* budget 0 must yield without running anything, so a stream of zeros
   interleaved with real budgets still terminates and stays identical *)
let prop_random_slices =
  let p = compile "fact_iter" in
  let whole =
    U.run ~strategy:(U.Dtb_strategy Dtb.paper_config) ~kind:Kind.Huffman p
  in
  QCheck.Test.make ~name:"random budget sequences reproduce the whole run"
    ~count:30
    QCheck.(list_of_size Gen.(int_range 0 40) (int_range 0 3000))
    (fun budgets ->
      let sliced =
        U.run
          ~runner:(budget_runner budgets)
          ~strategy:(U.Dtb_strategy Dtb.paper_config)
          ~kind:Kind.Huffman p
      in
      sliced = whole)

let suite =
  ( "resume",
    fixed_budget_cases @ quantum_cases
    @ [
        Alcotest.test_case "budget/quantum edge semantics" `Quick
          test_edge_semantics;
        QCheck_alcotest.to_alcotest prop_random_slices;
      ] )
