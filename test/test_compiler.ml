(* Differential tests: for every suite program and for generated random
   programs, the direct HLR interpreter and the DIR reference interpreter
   (with and without superoperator fusion) must produce identical output. *)

open Uhm_hlr
module Dir = Uhm_dir
module Pipeline = Uhm_compiler.Pipeline
module Fusion = Uhm_compiler.Fusion
module Const_fold = Uhm_compiler.Const_fold
module Suite = Uhm_workload.Suite

let check_string = Alcotest.(check string)

let hlr_output ast = Env_interp.run_output (Check.check_exn ast)

let dir_output ?fuse ast =
  Dir.Interp.run_output (Pipeline.compile ?fuse ast)

let compile_src ?fuse src = Pipeline.compile ?fuse (Parser.parse src)

(* -- Suite programs -------------------------------------------------------- *)

let suite_case entry =
  Alcotest.test_case entry.Suite.name `Quick (fun () ->
      let ast = Suite.parse entry in
      let expected = Env_interp.run_output ast in
      Alcotest.(check bool) "produces output" true (String.length expected > 0);
      check_string "base DIR output" expected (dir_output ~fuse:false ast);
      check_string "fused DIR output" expected (dir_output ~fuse:true ast))

(* -- Specific codegen behaviours ------------------------------------------- *)

let test_entry_is_zero () =
  let p = compile_src "begin print 1; end" in
  Alcotest.(check int) "entry" 0 p.Dir.Program.entry

let test_ends_with_halt () =
  let p = compile_src "begin print 1; end" in
  let last = p.Dir.Program.code.(Array.length p.Dir.Program.code - 1) in
  Alcotest.(check bool) "halt" true (Dir.Isa.equal_opcode last.Dir.Isa.op Dir.Isa.Halt)

let test_no_fall_through_into_labels () =
  (* the digram-decoding discipline: every branch/call target must be
     preceded by a non-falling instruction (or be instruction 0) *)
  List.iter
    (fun entry ->
      List.iter
        (fun fuse ->
          let p = Suite.compile ~fuse entry in
          let code = p.Dir.Program.code in
          Array.iter
            (fun { Dir.Isa.op; a; _ } ->
              match Dir.Isa.shape op with
              | Dir.Isa.Shape_target | Dir.Isa.Shape_call ->
                  if a > 0 then
                    let prev = code.(a - 1).Dir.Isa.op in
                    if Dir.Isa.falls_through prev then
                      Alcotest.failf "%s%s: target %d fallen into from %s"
                        entry.Suite.name
                        (if fuse then " (fused)" else "")
                        a (Dir.Isa.mnemonic prev)
              | _ -> ())
            code)
        [ false; true ])
    Suite.all

let test_contour_map_consistent () =
  List.iter
    (fun entry ->
      let p = Suite.compile entry in
      let map = Dir.Program.contour_of_instr p in
      Array.iteri
        (fun i { Dir.Isa.op; c; _ } ->
          match op with
          | Dir.Isa.Enter ->
              Alcotest.(check int)
                (Printf.sprintf "%s: enter %d maps to its own contour"
                   entry.Suite.name i)
                c map.(i)
          | _ -> ())
        p.Dir.Program.code)
    Suite.all

let test_static_link_hops () =
  (* nested_scopes exercises hop counts 0..3; make sure deep hops appear *)
  let p = Suite.compile (Suite.find "nested_scopes") in
  let stats = Dir.Static_stats.of_program p in
  Alcotest.(check bool) "max hop >= 3" true (Dir.Static_stats.max_level stats >= 3)

let test_for_bound_evaluated_once () =
  let src =
    "begin integer i, n; n := 3; for i := 1 to n do n := 100; print i; print n; end"
  in
  check_string "bound snapshot" "4\n100\n"
    (dir_output (Parser.parse src));
  check_string "hlr agrees" "4\n100\n" (hlr_output (Parser.parse src))

let test_write_compiles_to_printc () =
  let p = compile_src "begin write \"ab\"; end" in
  let printc_count =
    Array.fold_left
      (fun acc { Dir.Isa.op; _ } ->
        if Dir.Isa.equal_opcode op Dir.Isa.Printc then acc + 1 else acc)
      0 p.Dir.Program.code
  in
  Alcotest.(check int) "two printc" 2 printc_count

(* -- Constant folding ------------------------------------------------------ *)

let test_const_fold_shrinks () =
  let src = "begin print 2 + 3 * 4; end" in
  let folded = Pipeline.compile ~fold:true (Parser.parse src) in
  let unfolded = Pipeline.compile ~fold:false (Parser.parse src) in
  Alcotest.(check bool) "folded smaller" true
    (Array.length folded.Dir.Program.code < Array.length unfolded.Dir.Program.code);
  check_string "same output" (Dir.Interp.run_output folded)
    (Dir.Interp.run_output unfolded)

let test_const_fold_preserves_div_by_zero () =
  let ast = Parser.parse "begin print 1 div 0; end" in
  let folded = Const_fold.program ast in
  Alcotest.(check bool) "division left in place" true
    (Ast.equal_program ast folded)

let test_const_fold_identities () =
  let e = Parser.parse_expr "x + 0" in
  Alcotest.(check bool) "x + 0 = x" true
    (Ast.equal_expr (Const_fold.expr e) (Ast.Var "x"));
  let e = Parser.parse_expr "1 * (2 + x)" in
  Alcotest.(check bool) "1 * e = e" true
    (Ast.equal_expr (Const_fold.expr e)
       (Ast.Binop (Ast.Add_op, Ast.Num 2, Ast.Var "x")))

(* -- Fusion ---------------------------------------------------------------- *)

let count_superops p =
  Array.fold_left
    (fun acc { Dir.Isa.op; _ } -> if Dir.Isa.is_superop op then acc + 1 else acc)
    0 p.Dir.Program.code

let test_fusion_produces_superops () =
  let p = Suite.compile ~fuse:true (Suite.find "loop_tight") in
  Alcotest.(check bool) "superops present" true (count_superops p > 0)

let test_fusion_shrinks_code () =
  List.iter
    (fun entry ->
      let base = Suite.compile ~fuse:false entry in
      let fused = Suite.compile ~fuse:true entry in
      Alcotest.(check bool)
        (entry.Suite.name ^ ": fused not larger")
        true
        (Array.length fused.Dir.Program.code
        <= Array.length base.Dir.Program.code))
    Suite.all

let test_fusion_idempotent () =
  List.iter
    (fun entry ->
      let once = Fusion.fuse (Suite.compile ~fuse:false entry) in
      let twice = Fusion.fuse once in
      Alcotest.(check bool)
        (entry.Suite.name ^ ": idempotent")
        true
        (Array.for_all2 Dir.Isa.equal_instr once.Dir.Program.code
           twice.Dir.Program.code))
    Suite.all

let test_fusion_never_swallows_targets () =
  (* every branch target in the base program that survives fusion must map
     to an instruction boundary; validated implicitly by equal outputs, and
     explicitly by Program.validate inside fuse *)
  List.iter
    (fun entry -> ignore (Suite.compile ~fuse:true entry))
    Suite.all

(* -- Random program differential ------------------------------------------- *)

(* Programs whose execution exceeds this budget are skipped: the generator
   cannot bound nested-loop products tightly, and a rare giant case must not
   stall the suite. *)
let differential_fuel = 400_000

let prop_differential =
  QCheck.Test.make ~name:"HLR interp = DIR interp = fused DIR interp"
    ~count:120 Gen_program.valid_program
    (fun ast ->
      let expected = Env_interp.run ~fuel:differential_fuel (Check.check_exn ast) in
      match expected.Env_interp.status with
      | Env_interp.Out_of_fuel -> true (* skip: too big to compare cheaply *)
      | Env_interp.Halted ->
          let base = Dir.Interp.run (Pipeline.compile ~fuse:false ast) in
          let fused = Dir.Interp.run (Pipeline.compile ~fuse:true ast) in
          let ok r =
            match r.Dir.Interp.status with
            | Dir.Interp.Halted ->
                String.equal r.Dir.Interp.output expected.Env_interp.output
            | _ -> false
          in
          if not (ok base) then
            QCheck.Test.fail_reportf "base DIR diverges:\nHLR:%S\nDIR:%S"
              expected.Env_interp.output base.Dir.Interp.output
          else if not (ok fused) then
            QCheck.Test.fail_reportf "fused DIR diverges:\nHLR:%S\nDIR:%S"
              expected.Env_interp.output fused.Dir.Interp.output
          else true
      | Env_interp.Trapped _ ->
          (* generator guarantees trap-freedom; a trap is a generator bug *)
          QCheck.Test.fail_reportf "generated program trapped")

let prop_fused_not_larger =
  QCheck.Test.make ~name:"fusion never grows the instruction count" ~count:100
    Gen_program.valid_program
    (fun ast ->
      let base = Pipeline.compile ~fuse:false ast in
      let fused = Pipeline.compile ~fuse:true ast in
      Array.length fused.Dir.Program.code <= Array.length base.Dir.Program.code)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  ( "compiler",
    List.map suite_case Suite.all
    @ [
        Alcotest.test_case "entry is instruction 0" `Quick test_entry_is_zero;
        Alcotest.test_case "program ends with halt" `Quick test_ends_with_halt;
        Alcotest.test_case "no fall-through into labels" `Quick
          test_no_fall_through_into_labels;
        Alcotest.test_case "contour map marks enters" `Quick
          test_contour_map_consistent;
        Alcotest.test_case "deep static links generated" `Quick
          test_static_link_hops;
        Alcotest.test_case "for bound evaluated once" `Quick
          test_for_bound_evaluated_once;
        Alcotest.test_case "write becomes printc" `Quick
          test_write_compiles_to_printc;
        Alcotest.test_case "const fold shrinks code" `Quick
          test_const_fold_shrinks;
        Alcotest.test_case "const fold preserves traps" `Quick
          test_const_fold_preserves_div_by_zero;
        Alcotest.test_case "const fold identities" `Quick
          test_const_fold_identities;
        Alcotest.test_case "fusion produces superops" `Quick
          test_fusion_produces_superops;
        Alcotest.test_case "fusion shrinks code" `Quick test_fusion_shrinks_code;
        Alcotest.test_case "fusion idempotent" `Quick test_fusion_idempotent;
        Alcotest.test_case "fusion respects targets" `Quick
          test_fusion_never_swallows_targets;
        qcheck prop_differential;
        qcheck prop_fused_not_larger;
      ] )
