(* Tests for the Fortran-S front end — the second language on the host,
   substantiating the paper's "universal" claim.  Differential ground truth
   is the Fortran-S reference interpreter; the compiled DIR must agree with
   it under the DIR reference interpreter and under every machine
   strategy. *)

module Ftn = Uhm_ftn
module U = Uhm_core.Uhm
module Dtb = Uhm_core.Dtb
module Kind = Uhm_encoding.Kind
module Machine = Uhm_machine.Machine
module Isa = Uhm_dir.Isa

let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

let parse src = Ftn.Check.check_exn (Ftn.Parser.parse ~name:"test" src)
let ftn_out src = Ftn.Interp.run_output (parse src)
let dir_out ?fuse src = Uhm_dir.Interp.run_output (Ftn.Codegen.compile_source ?fuse src)

let both what expected src =
  check_string (what ^ " (reference)") expected (ftn_out src);
  check_string (what ^ " (dir)") expected (dir_out src);
  check_string (what ^ " (dir fused)") expected (dir_out ~fuse:true src)

(* -- Lexer ------------------------------------------------------------------- *)

let test_lexer_lines_and_labels () =
  let lines = Ftn.Lexer.tokenize "C comment\n   10 X = 1\n      GOTO 10\n" in
  match lines with
  | [ l1; l2 ] ->
      Alcotest.(check (option int)) "label" (Some 10) l1.Ftn.Lexer.label;
      Alcotest.(check (option int)) "no label" None l2.Ftn.Lexer.label;
      check_int "line number" 2 l1.Ftn.Lexer.lineno
  | _ -> Alcotest.fail "expected two lines"

let test_lexer_case_and_strings () =
  let lines = Ftn.Lexer.tokenize "      print 'it''s'\n" in
  match lines with
  | [ { Ftn.Lexer.tokens = [ Ftn.Lexer.Name "PRINT"; Ftn.Lexer.Str s ]; _ } ] ->
      check_string "escape" "it's" s
  | _ -> Alcotest.fail "unexpected tokens"

let test_lexer_dotted () =
  let lines = Ftn.Lexer.tokenize "      IF (A .GE. 2) GOTO 5\n" in
  match lines with
  | [ { Ftn.Lexer.tokens; _ } ] ->
      Alcotest.(check bool) "contains .GE." true
        (List.exists (fun t -> t = Ftn.Lexer.Dotted "GE") tokens)
  | _ -> Alcotest.fail "expected one line"

let test_lexer_rejects () =
  Alcotest.check_raises "bad dotted" (Ftn.Lexer.Lex_error ("unknown operator .XY.", 1))
    (fun () -> ignore (Ftn.Lexer.tokenize "      A .XY. B"));
  Alcotest.check_raises "unterminated string"
    (Ftn.Lexer.Lex_error ("unterminated string", 1)) (fun () ->
      ignore (Ftn.Lexer.tokenize "      PRINT 'oops"))

(* -- Parser ------------------------------------------------------------------ *)

let minimal body =
  Printf.sprintf "      PROGRAM T\n      INTEGER X, Y\n%s      END\n" body

let test_parse_do_inclusive_terminal () =
  let p = Ftn.Parser.parse (minimal "      DO 10 X = 1, 3\n      Y = Y + X\n   10 CONTINUE\n") in
  match (List.hd p.Ftn.Ast.units).Ftn.Ast.body with
  | [ (None, Ftn.Ast.Do d) ] ->
      check_int "terminal" 10 d.Ftn.Ast.terminal;
      check_int "body statements" 2 (List.length d.Ftn.Ast.body)
  | _ -> Alcotest.fail "expected a single DO"

let test_parse_if_block_else () =
  let p =
    Ftn.Parser.parse
      (minimal
         "      IF (X .EQ. 0) THEN\n      Y = 1\n      ELSE\n      Y = 2\n      ENDIF\n")
  in
  match (List.hd p.Ftn.Ast.units).Ftn.Ast.body with
  | [ (None, Ftn.Ast.If_block (_, [ _ ], [ _ ])) ] -> ()
  | _ -> Alcotest.fail "expected IF/ELSE/ENDIF"

let test_parse_errors () =
  let expect_parse_error src =
    match Ftn.Parser.parse src with
    | exception Ftn.Parser.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected a parse error"
  in
  expect_parse_error "      PROGRAM T\n      DO 10 I = 1, 3\n      END\n";
  expect_parse_error "      PROGRAM T\n      IF (1) THEN\n      X = 1\n      END\n";
  expect_parse_error "      PROGRAM T(A)\n      END\n"

(* -- Checker ----------------------------------------------------------------- *)

let check_fails src fragment =
  match Ftn.Check.check (Ftn.Parser.parse src) with
  | Ok () -> Alcotest.failf "checker accepted (wanted %s)" fragment
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%S mentions %S" msg fragment)
        true
        (Astring_contains.contains msg fragment)

let test_check_rules () =
  check_fails "      SUBROUTINE S\n      RETURN\n      END\n" "PROGRAM";
  check_fails
    "      PROGRAM A\n      END\n      PROGRAM B\n      END\n"
    "more than one";
  check_fails (minimal "      Z = 1\n") "undeclared";
  check_fails (minimal "      X(3) = 1\n") "subscripted";
  check_fails (minimal "      RETURN\n") "RETURN";
  check_fails (minimal "      GOTO 99\n") "label";
  check_fails
    (minimal "      GOTO 10\n      DO 20 X = 1, 2\n   10 Y = 1\n   20 CONTINUE\n")
    "not visible";
  check_fails
    "      PROGRAM T\n      INTEGER A(0)\n      END\n"
    "dimension";
  check_fails
    (minimal "   10 CONTINUE\n   10 CONTINUE\n")
    "duplicate label"

let test_check_goto_out_of_loop_allowed () =
  let src =
    minimal "      DO 10 X = 1, 3\n      IF (X .EQ. 2) GOTO 20\n   10 CONTINUE\n   20 Y = 1\n"
  in
  match Ftn.Check.check (Ftn.Parser.parse src) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* -- Semantics, differentially ------------------------------------------------ *)

let test_do_semantics () =
  both "simple DO" "1\n2\n3\n"
    (minimal "      DO 10 X = 1, 3\n      PRINT X\n   10 CONTINUE\n");
  both "empty range" ""
    (minimal "      DO 10 X = 3, 1\n      PRINT X\n   10 CONTINUE\n");
  both "negative step" "5\n3\n1\n"
    (minimal "      DO 10 X = 5, 1, -2\n      PRINT X\n   10 CONTINUE\n");
  both "terminal statement runs each iteration" "2\n4\n"
    (minimal "      DO 10 X = 1, 2\n   10 PRINT X * 2\n")

let test_goto_semantics () =
  both "goto skip" "1\n3\n"
    (minimal
       "      PRINT 1\n      GOTO 10\n      PRINT 2\n   10 PRINT 3\n");
  both "goto loop with exit" "0\n1\n2\n"
    (minimal
       "      X = 0\n   10 IF (X .GT. 2) GOTO 20\n      PRINT X\n      X = X + 1\n      GOTO 10\n   20 CONTINUE\n");
  both "goto do terminal continues iteration" "1\n3\n"
    (minimal
       "      DO 10 X = 1, 3\n      IF (X .EQ. 2) GOTO 10\n      PRINT X\n   10 CONTINUE\n")

let test_functions_and_subroutines () =
  let src =
    "      PROGRAM T\n\
    \      INTEGER I\n\
    \      DO 10 I = 1, 4\n\
    \      PRINT ISQ(I) + 100\n\
    \   10 CONTINUE\n\
    \      CALL NOISY(2)\n\
    \      STOP\n\
    \      END\n\
    \      FUNCTION ISQ(N)\n\
    \      ISQ = N * N\n\
    \      RETURN\n\
    \      END\n\
    \      SUBROUTINE NOISY(K)\n\
    \      INTEGER J\n\
    \      DO 10 J = 1, K\n\
    \      PRINT -J\n\
    \   10 CONTINUE\n\
    \      RETURN\n\
    \      END\n"
  in
  both "functions and subroutines" "101\n104\n109\n116\n-1\n-2\n" src

let test_recursion () =
  let src =
    "      PROGRAM T\n\
    \      PRINT IFACT(10)\n\
    \      STOP\n\
    \      END\n\
    \      FUNCTION IFACT(N)\n\
    \      IF (N .LE. 1) THEN\n\
    \      IFACT = 1\n\
    \      ELSE\n\
    \      IFACT = N * IFACT(N - 1)\n\
    \      ENDIF\n\
    \      RETURN\n\
    \      END\n"
  in
  both "recursive factorial" "3628800\n" src

let test_arrays_one_based () =
  both "one-based arrays" "1\n25\n"
    "      PROGRAM T\n      INTEGER A(5)\n      INTEGER X\n      DO 10 X = 1, 5\n\
    \      A(X) = X * X\n   10 CONTINUE\n      PRINT A(1)\n      PRINT A(5)\n      END\n"

let test_mod_and_division () =
  both "mod and division truncation" "-1\n-2\n2\n"
    (minimal
       "      PRINT MOD(-7, 3)\n      PRINT -7 / 3\n      PRINT -7 / -3\n")

let test_print_string () =
  both "string output" "HELLO, UHM\n42\n"
    (minimal "      PRINT 'HELLO, UHM'\n      PRINT 42\n")

let test_interp_traps () =
  let trapped src fragment =
    let r = Ftn.Interp.run (parse src) in
    match r.Ftn.Interp.status with
    | Ftn.Interp.Trapped msg ->
        Alcotest.(check bool) fragment true (Astring_contains.contains msg fragment)
    | _ -> Alcotest.fail "expected a trap"
  in
  trapped (minimal "      PRINT X / Y\n") "zero";
  trapped
    "      PROGRAM T\n      INTEGER A(3)\n      INTEGER X\n      X = 9\n      PRINT A(X)\n      END\n"
    "out of bounds"

let test_interp_fuel () =
  let r = Ftn.Interp.run ~fuel:500 (parse (minimal "   10 GOTO 10\n")) in
  Alcotest.(check bool) "fuel" true (r.Ftn.Interp.status = Ftn.Interp.Out_of_fuel)

(* -- The whole suite, across machine strategies -------------------------------- *)

let test_suite_on_all_strategies () =
  List.iter
    (fun entry ->
      let expected = Ftn.Interp.run_output (Ftn.Suite.parse entry) in
      let p = Ftn.Suite.compile ~fuse:true entry in
      List.iter
        (fun (strategy, kind) ->
          let r = U.run ~strategy ~kind p in
          (match r.U.status with
          | Machine.Halted -> ()
          | _ ->
              Alcotest.failf "%s/%s did not halt" entry.Ftn.Suite.name
                (U.strategy_name strategy));
          if not (String.equal r.U.output expected) then
            Alcotest.failf "%s/%s/%s output differs" entry.Ftn.Suite.name
              (U.strategy_name strategy) (Kind.name kind))
        [
          (U.Interp, Kind.Digram);
          (U.Cached 4096, Kind.Huffman);
          (U.Dtb_strategy Dtb.paper_config, Kind.Contextual);
          (U.Dtb_blocks ({ Dtb.sets = 32; assoc = 4; unit_words = 16;
                           overflow_blocks = 256 }, 8), Kind.Packed);
          (U.Psder_static, Kind.Packed);
          (U.Der U.Der_level1, Kind.Packed);
        ])
    Ftn.Suite.all

let test_encodings_roundtrip_ftn () =
  List.iter
    (fun entry ->
      let p = Ftn.Suite.compile entry in
      List.iter
        (fun kind ->
          let e = Uhm_encoding.Codec.encode kind p in
          let decoded = Uhm_encoding.Codec.to_program e in
          if
            not
              (Array.for_all2 Isa.equal_instr p.Uhm_dir.Program.code
                 decoded.Uhm_dir.Program.code)
          then
            Alcotest.failf "%s/%s: decode mismatch" entry.Ftn.Suite.name
              (Kind.name kind))
        Kind.all)
    Ftn.Suite.all

let prop_pretty_roundtrip =
  QCheck.Test.make ~name:"Fortran-S parse (pretty p) = normalize p" ~count:150
    Gen_ftn.valid_program
    (fun p ->
      let printed = Ftn.Pretty.to_string p in
      let reparsed =
        try Ftn.Parser.parse ~name:p.Ftn.Ast.pname printed with
        | Ftn.Parser.Parse_error (msg, lineno) ->
            QCheck.Test.fail_reportf "reparse failed (line %d: %s) on:\n%s"
              lineno msg printed
        | Ftn.Lexer.Lex_error (msg, lineno) ->
            QCheck.Test.fail_reportf "relex failed (line %d: %s) on:\n%s"
              lineno msg printed
      in
      Ftn.Ast.equal_program
        (Ftn.Ast_normalize.normalize reparsed)
        (Ftn.Ast_normalize.normalize p))

let test_suite_sources_roundtrip () =
  List.iter
    (fun entry ->
      let p = Ftn.Parser.parse entry.Ftn.Suite.source in
      let reparsed = Ftn.Parser.parse (Ftn.Pretty.to_string p) in
      Alcotest.(check bool)
        (entry.Ftn.Suite.name ^ " round-trips")
        true
        (Ftn.Ast.equal_program
           (Ftn.Ast_normalize.normalize reparsed)
           (Ftn.Ast_normalize.normalize p)))
    Ftn.Suite.all

let prop_ftn_differential =
  QCheck.Test.make ~name:"Fortran-S reference = DIR = machine" ~count:60
    Gen_ftn.valid_program
    (fun ast ->
      let checked = Ftn.Check.check_exn ast in
      let reference = Ftn.Interp.run ~fuel:300_000 checked in
      match reference.Ftn.Interp.status with
      | Ftn.Interp.Out_of_fuel -> true (* skip oversized cases *)
      | Ftn.Interp.Trapped _ ->
          QCheck.Test.fail_reportf "generated Fortran-S program trapped"
      | Ftn.Interp.Halted ->
          let expected = reference.Ftn.Interp.output in
          let dir = Ftn.Codegen.compile checked in
          let fused = Uhm_compiler.Fusion.fuse dir in
          let base_out = Uhm_dir.Interp.run_output dir in
          let fused_out = Uhm_dir.Interp.run_output fused in
          if not (String.equal base_out expected) then
            QCheck.Test.fail_reportf "DIR diverges:\nref:%S\ndir:%S" expected
              base_out
          else if not (String.equal fused_out expected) then
            QCheck.Test.fail_reportf "fused DIR diverges"
          else
            let m =
              U.run ~strategy:(U.Dtb_strategy Dtb.paper_config)
                ~kind:Kind.Huffman fused
            in
            m.U.status = Machine.Halted && String.equal m.U.output expected)

let test_two_languages_one_host () =
  (* the paper's premise in one assertion: programs from two dissimilar
     HLRs run on the same machine build, same semantic routines, and both
     enjoy the DTB *)
  let algol = Uhm_workload.Suite.compile (Uhm_workload.Suite.find "gcd") in
  let fortran = Ftn.Suite.compile (Ftn.Suite.find "ftn_euclid") in
  List.iter
    (fun p ->
      let r = U.run ~strategy:(U.Dtb_strategy Dtb.paper_config) ~kind:Kind.Huffman p in
      Alcotest.(check bool) "halted" true (r.U.status = Machine.Halted);
      Alcotest.(check bool) "dtb effective" true
        (Option.get r.U.dtb_hit_ratio > 0.9))
    [ algol; fortran ]

let suite =
  ( "ftn",
    [
      Alcotest.test_case "lexer: lines and labels" `Quick test_lexer_lines_and_labels;
      Alcotest.test_case "lexer: case and strings" `Quick test_lexer_case_and_strings;
      Alcotest.test_case "lexer: dotted operators" `Quick test_lexer_dotted;
      Alcotest.test_case "lexer: rejections" `Quick test_lexer_rejects;
      Alcotest.test_case "parser: DO terminal inclusive" `Quick
        test_parse_do_inclusive_terminal;
      Alcotest.test_case "parser: IF block" `Quick test_parse_if_block_else;
      Alcotest.test_case "parser: errors" `Quick test_parse_errors;
      Alcotest.test_case "checker rules" `Quick test_check_rules;
      Alcotest.test_case "checker: GOTO out of a loop" `Quick
        test_check_goto_out_of_loop_allowed;
      Alcotest.test_case "DO semantics" `Quick test_do_semantics;
      Alcotest.test_case "GOTO semantics" `Quick test_goto_semantics;
      Alcotest.test_case "functions and subroutines" `Quick
        test_functions_and_subroutines;
      Alcotest.test_case "recursion" `Quick test_recursion;
      Alcotest.test_case "one-based arrays" `Quick test_arrays_one_based;
      Alcotest.test_case "MOD and division" `Quick test_mod_and_division;
      Alcotest.test_case "string output" `Quick test_print_string;
      Alcotest.test_case "interpreter traps" `Quick test_interp_traps;
      Alcotest.test_case "interpreter fuel" `Quick test_interp_fuel;
      Alcotest.test_case "suite across strategies" `Slow
        test_suite_on_all_strategies;
      Alcotest.test_case "encodings round-trip" `Quick
        test_encodings_roundtrip_ftn;
      Alcotest.test_case "two languages, one host" `Quick
        test_two_languages_one_host;
      Alcotest.test_case "suite sources round-trip through the printer" `Quick
        test_suite_sources_roundtrip;
      QCheck_alcotest.to_alcotest prop_pretty_roundtrip;
      QCheck_alcotest.to_alcotest prop_ftn_differential;
    ] )
