(* Tests for the host-machine substrate: caches, short-format words, the
   assembler, and the execution engine's semantics and cycle accounting. *)

module Cache = Uhm_machine.Cache
module SF = Uhm_machine.Short_format
module Asm = Uhm_machine.Asm
module H = Uhm_machine.Host_isa
module R = Uhm_machine.Host_isa.Regs
module Machine = Uhm_machine.Machine
module Timing = Uhm_machine.Timing
module Writer = Uhm_bitstream.Writer

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- Cache ------------------------------------------------------------------ *)

let test_cache_basics () =
  let c = Cache.create ~assoc:2 ~block_words:1 ~capacity_words:4 () in
  check_bool "first access misses" true (Cache.access c 0 = `Miss);
  check_bool "second access hits" true (Cache.access c 0 = `Hit);
  check_bool "same block hits" true
    (let c = Cache.create ~assoc:1 ~block_words:4 ~capacity_words:8 () in
     ignore (Cache.access c 0);
     Cache.access c 3 = `Hit);
  check_int "hits" 1 (Cache.hits c);
  check_int "misses" 1 (Cache.misses c)

let test_cache_lru_eviction () =
  (* 2 sets, 2 ways, 1-word blocks; addresses 0,2,4 map to set 0 *)
  let c = Cache.create ~assoc:2 ~block_words:1 ~capacity_words:4 () in
  ignore (Cache.access c 0);
  ignore (Cache.access c 2);
  ignore (Cache.access c 0);          (* 0 is now MRU *)
  ignore (Cache.access c 4);          (* evicts 2 *)
  check_bool "0 resident" true (Cache.contains c 0);
  check_bool "2 evicted" false (Cache.contains c 2);
  check_bool "4 resident" true (Cache.contains c 4)

let test_cache_full_assoc () =
  let c = Cache.create ~assoc:0 ~block_words:1 ~capacity_words:4 () in
  List.iter (fun a -> ignore (Cache.access c a)) [ 0; 1; 2; 3 ];
  ignore (Cache.access c 1);
  ignore (Cache.access c 9);          (* evicts LRU = 0 *)
  check_bool "0 evicted" false (Cache.contains c 0);
  check_bool "1 retained" true (Cache.contains c 1)

let test_cache_bad_geometry () =
  Alcotest.check_raises "non-power-of-two sets"
    (Invalid_argument "Cache.create: set count must be a power of two")
    (fun () -> ignore (Cache.create ~assoc:1 ~block_words:1 ~capacity_words:3 ()))

(* Differential reference: the seed's counter-shuffle LRU, kept verbatim so
   the timestamp-based implementation is pinned to produce the identical
   hit/miss/eviction sequence. *)
module Counter_lru = struct
  type t = {
    tags : int array array;
    order : int array array;  (* 0 = most recent *)
    sets : int;
    assoc : int;
    block_words : int;
  }

  let create ~assoc ~block_words ~capacity_words =
    let blocks = capacity_words / block_words in
    let assoc = if assoc = 0 then blocks else assoc in
    let sets = blocks / assoc in
    {
      tags = Array.make_matrix sets assoc (-1);
      order = Array.init sets (fun _ -> Array.init assoc (fun w -> w));
      sets;
      assoc;
      block_words;
    }

  let touch c set way =
    let order = c.order.(set) in
    let old = order.(way) in
    for w = 0 to c.assoc - 1 do
      if order.(w) < old then order.(w) <- order.(w) + 1
    done;
    order.(way) <- 0

  let access c addr =
    let block = addr / c.block_words in
    let set = block land (c.sets - 1) in
    let tags = c.tags.(set) in
    let rec find w =
      if w >= c.assoc then None
      else if tags.(w) = block then Some w
      else find (w + 1)
    in
    match find 0 with
    | Some way ->
        touch c set way;
        `Hit
    | None ->
        let order = c.order.(set) in
        let victim = ref 0 in
        for w = 1 to c.assoc - 1 do
          if order.(w) > order.(!victim) then victim := w
        done;
        tags.(!victim) <- block;
        touch c set !victim;
        `Miss
end

let prop_timestamp_lru_matches_counter_lru =
  let gen =
    QCheck.Gen.(
      oneofl [ (0, 8); (1, 8); (2, 8); (4, 16); (8, 16) ]
      >>= fun (assoc, capacity) ->
      list_size (int_range 1 400) (int_bound 63)
      >>= fun addrs -> return (assoc, capacity, addrs))
  in
  QCheck.Test.make
    ~name:"timestamp LRU = counter LRU (hit/miss and residency)" ~count:200
    (QCheck.make
       ~print:(fun (a, c, addrs) ->
         Printf.sprintf "assoc=%d cap=%d [%s]" a c
           (String.concat ";" (List.map string_of_int addrs)))
       gen)
    (fun (assoc, capacity, addrs) ->
      let c = Cache.create ~assoc ~block_words:1 ~capacity_words:capacity () in
      let r = Counter_lru.create ~assoc ~block_words:1 ~capacity_words:capacity in
      List.for_all (fun a -> Cache.access c a = Counter_lru.access r a) addrs
      && List.for_all
           (fun a ->
             Cache.contains c a
             = Array.exists (Array.exists (fun t -> t = a)) r.Counter_lru.tags)
           (List.init 64 Fun.id))

(* reference fully-associative LRU *)
let prop_cache_matches_reference =
  QCheck.Test.make ~name:"fully-associative cache = reference LRU" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 300) (int_bound 40))
    (fun addrs ->
      let capacity = 8 in
      let c = Cache.create ~assoc:0 ~block_words:1 ~capacity_words:capacity () in
      let reference = ref [] in
      List.for_all
        (fun a ->
          let model_hit = List.mem a !reference in
          reference := a :: List.filter (fun x -> x <> a) !reference;
          if List.length !reference > capacity then
            reference := List.filteri (fun i _ -> i < capacity) !reference;
          let actual = Cache.access c a in
          (actual = `Hit) = model_hit)
        addrs)

(* -- Short format ------------------------------------------------------------ *)

let test_short_pack_known () =
  let w = SF.pack ~ctx:3 SF.Interp_imm 100 in
  let op, ctx, operand = SF.unpack w in
  check_bool "op" true (op = SF.Interp_imm);
  check_int "ctx" 3 ctx;
  check_int "operand" 100 operand

let prop_short_roundtrip =
  let ops =
    [ SF.Push_imm; SF.Push_dir; SF.Push_ind; SF.Pop_dir; SF.Call_long;
      SF.Interp_imm; SF.Interp_stk; SF.Goto; SF.Goto_stk ]
  in
  QCheck.Test.make ~name:"short word pack/unpack round-trip" ~count:300
    QCheck.(
      triple (int_bound (List.length ops - 1)) (int_bound SF.max_ctx)
        (int_range (-1_000_000_000) 1_000_000_000))
    (fun (opi, ctx, operand) ->
      let op = List.nth ops opi in
      let op', ctx', operand' = SF.unpack (SF.pack ~ctx op operand) in
      op = op' && ctx = ctx' && operand = operand')

(* The engine's DTB dispatch path reads fields with the allocation-free
   accessors instead of building [unpack]'s tuple; pin them to it. *)
let prop_unpack_accessors_match_tuple =
  let ops =
    [ SF.Push_imm; SF.Push_dir; SF.Push_ind; SF.Pop_dir; SF.Call_long;
      SF.Interp_imm; SF.Interp_stk; SF.Goto; SF.Goto_stk ]
  in
  QCheck.Test.make ~name:"unpack field accessors = tuple unpack" ~count:500
    QCheck.(
      triple (int_bound (List.length ops - 1)) (int_bound SF.max_ctx)
        (int_range (-1_000_000_000) 1_000_000_000))
    (fun (opi, ctx, operand) ->
      let w = SF.pack ~ctx (List.nth ops opi) operand in
      let op, ctx', operand' = SF.unpack w in
      SF.op_of_int (SF.unpack_op w) = op
      && SF.unpack_ctx w = ctx'
      && SF.unpack_operand w = operand')

(* -- Engine ------------------------------------------------------------------ *)

let default_regions =
  [
    { Machine.rname = "ram"; base = 0; size = 1024; cost = 1 };
    { Machine.rname = "slow"; base = 1024; size = 1024; cost = 10 };
  ]

let machine_of ?(regions = default_regions) build =
  let b = Asm.create () in
  build b;
  Machine.create ~program:(Asm.finish b) ~mem_words:4096 ~regions ()

let run_to_halt m =
  match Machine.run m with
  | Machine.Halted -> ()
  | Machine.Trapped msg -> Alcotest.failf "trapped: %s" msg
  | Machine.Out_of_fuel -> Alcotest.fail "out of fuel"
  | Machine.Running -> assert false

let test_engine_arith () =
  let m =
    machine_of (fun b ->
        Asm.li b 0 6;
        Asm.li b 1 7;
        Asm.alu b H.Mul 2 0 1;
        Asm.out b 2;
        Asm.alui b H.Sub 3 2 40;
        Asm.out b 3;
        Asm.halt b)
  in
  run_to_halt m;
  Alcotest.(check string) "output" "42\n2\n" (Machine.output m)

let test_engine_call_ret () =
  let m =
    machine_of (fun b ->
        let double = Asm.new_label b in
        let start = Asm.new_label b in
        Asm.jmp b start;
        Asm.place b double;
        Asm.pop_op b 0;
        Asm.alu b H.Add 0 0 0;
        Asm.push_op b 0;
        Asm.ret b;
        Asm.place b start;
        Asm.li b R.sp 100;
        Asm.li b R.rsp 200;
        Asm.li b 1 21;
        Asm.push_op b 1;
        Asm.call b double;
        Asm.pop_op b 2;
        Asm.out b 2;
        Asm.halt b)
  in
  run_to_halt m;
  Alcotest.(check string) "output" "42\n" (Machine.output m)

let test_engine_memory_costs () =
  (* Li = 1 cycle; Load from "slow" = 1 + 10; Load from "ram" = 1 + 1 *)
  let m =
    machine_of (fun b ->
        Asm.li b 0 0;
        Asm.load b 1 0 1030;
        Asm.load b 2 0 8;
        Asm.halt b)
  in
  run_to_halt m;
  check_int "cycles" (1 + 11 + 2 + 1) (Machine.stats m).Machine.cycles

let test_engine_unmapped_trap () =
  let m =
    machine_of (fun b ->
        Asm.li b 0 3000;
        Asm.load b 1 0 0;
        Asm.halt b)
  in
  match Machine.run m with
  | Machine.Trapped msg ->
      check_bool "mentions unmapped" true
        (Astring_contains.contains msg "unmapped")
  | _ -> Alcotest.fail "expected trap"

let test_engine_division_trap () =
  let m =
    machine_of (fun b ->
        Asm.li b 0 1;
        Asm.li b 1 0;
        Asm.alu b H.Div 2 0 1;
        Asm.halt b)
  in
  match Machine.run m with
  | Machine.Trapped msg ->
      check_bool "mentions zero" true (Astring_contains.contains msg "zero")
  | _ -> Alcotest.fail "expected trap"

let test_engine_fuel () =
  let b = Asm.create () in
  let loop = Asm.new_label b in
  Asm.place b loop;
  Asm.jmp b loop;
  let m =
    Machine.create ~fuel:1000 ~program:(Asm.finish b) ~mem_words:64
      ~regions:[ { Machine.rname = "ram"; base = 0; size = 64; cost = 1 } ]
      ()
  in
  check_bool "out of fuel" true (Machine.run m = Machine.Out_of_fuel)

let test_engine_get_bits () =
  let w = Writer.create () in
  Writer.put w ~bits:6 0b101010;
  Writer.put w ~bits:10 0b1111000011;
  Writer.put w ~bits:16 0xBEEF;
  let m =
    machine_of (fun b ->
        Asm.get_bits b 0 6;
        Asm.out b 0;
        Asm.get_bits b 1 10;
        Asm.out b 1;
        Asm.get_bits b 2 16;
        Asm.out b 2;
        Asm.halt b)
  in
  Machine.set_dir_stream m ~bits:(Writer.to_reader_input w)
    ~mode:Machine.Dir_uncached;
  Machine.set_reg m R.dpc 0;
  run_to_halt m;
  Alcotest.(check string) "fields"
    (Printf.sprintf "%d\n%d\n%d\n" 0b101010 0b1111000011 0xBEEF)
    (Machine.output m);
  (* the three fields span units 0 and 1 of the stream: two unit fetches *)
  check_int "units fetched" 2 (Machine.stats m).Machine.dir_units_fetched;
  check_int "fetch cycles (uncached)" 20
    (Machine.stats m).Machine.dir_fetch_cycles

let test_engine_short_execution () =
  (* Short code: push 5, push 2, call a long add routine, pop-print via
     long code.  Exercises IU1 <-> IU2 transitions and the tagged return
     stack. *)
  let b = Asm.create () in
  let add = Asm.new_label b in
  let finisher = Asm.new_label b in
  Asm.jmp b finisher;                      (* address 0 unused *)
  Asm.place b add;
  Asm.pop_op b 1;
  Asm.pop_op b 0;
  Asm.alu b H.Add 0 0 1;
  Asm.push_op b 0;
  Asm.ret b;
  Asm.place b finisher;
  Asm.pop_op b 0;
  Asm.out b 0;
  Asm.halt b;
  let b_resolved_add = Asm.resolve b add in
  let b_resolved_fin = Asm.resolve b finisher in
  let m =
    Machine.create ~program:(Asm.finish b) ~mem_words:4096
      ~regions:default_regions ()
  in
  Machine.set_hooks m
    {
      Machine.h_interp = (fun _ ~dir_addr:_ ~dctx:_ -> ());
      h_emit_short = (fun _ _ -> ());
      h_end_trans = (fun _ -> ());
      h_decode_assist = (fun _ -> ());
    };
  Machine.set_reg m R.sp 100;
  Machine.set_reg m R.rsp 200;
  (* short program at 300 *)
  Machine.poke m 300 (SF.pack SF.Push_imm 5);
  Machine.poke m 301 (SF.pack SF.Push_imm 2);
  Machine.poke m 302 (SF.pack SF.Call_long b_resolved_add);
  Machine.poke m 303 (SF.pack SF.Goto 305);
  Machine.poke m 304 (SF.pack SF.Push_imm 999); (* skipped by the goto *)
  Machine.poke m 305 (SF.pack SF.Call_long b_resolved_fin);
  Machine.set_pc m (Machine.Short 300);
  run_to_halt m;
  Alcotest.(check string) "output" "7\n" (Machine.output m);
  check_int "short instructions" 5 (Machine.stats m).Machine.short_instrs

let test_engine_get_bits_r_and_jneg () =
  let w = Writer.create () in
  Writer.put w ~bits:5 0b10110;
  let m =
    machine_of (fun b ->
        let neg = Asm.new_label b in
        Asm.li b 1 5;
        Asm.get_bits_r b 0 1;      (* width from a register *)
        Asm.out b 0;
        Asm.li b 2 (-3);
        Asm.jneg b 2 neg;
        Asm.out b 2;               (* skipped *)
        Asm.place b neg;
        Asm.li b 3 7;
        Asm.out b 3;
        Asm.halt b)
  in
  Machine.set_dir_stream m ~bits:(Writer.to_reader_input w)
    ~mode:Machine.Dir_uncached;
  Machine.set_reg m R.dpc 0;
  run_to_halt m;
  Alcotest.(check string) "output" "22
7
" (Machine.output m)

let test_engine_call_r () =
  let m =
    machine_of (fun b ->
        let target = Asm.new_label b in
        let start = Asm.new_label b in
        Asm.jmp b start;
        Asm.place b target;
        Asm.li b 5 99;
        Asm.out b 5;
        Asm.ret b;
        Asm.place b start;
        Asm.li b R.rsp 200;
        Asm.li_lbl b 0 target;
        Asm.call_r b 0;
        Asm.halt b)
  in
  run_to_halt m;
  Alcotest.(check string) "output" "99
" (Machine.output m)

let test_engine_emit_and_end_trans_hooks () =
  (* EmitShort and EndTrans are routed through the hooks; a fake buffer
     records the words, and EndTrans redirects to a short HALT stub *)
  let emitted = ref [] in
  let b = Asm.create () in
  Asm.li b 0 1234;
  Asm.emit_short b 0;
  Asm.li b 0 5678;
  Asm.emit_short b 0;
  Asm.end_trans b;
  let halt_routine = Asm.here b in
  Asm.halt b;
  let m =
    Machine.create ~program:(Asm.finish b) ~mem_words:4096
      ~regions:default_regions ()
  in
  Machine.set_hooks m
    {
      Machine.h_interp = (fun _ ~dir_addr:_ ~dctx:_ -> ());
      h_emit_short = (fun _ word -> emitted := word :: !emitted);
      h_end_trans =
        (fun m ->
          (* a one-word short program: call the long halt routine *)
          Machine.poke m 500 (SF.pack SF.Call_long halt_routine);
          Machine.set_pc m (Machine.Short 500));
      h_decode_assist = (fun _ -> ());
    };
  Machine.set_reg m R.sp 100;
  Machine.set_reg m R.rsp 200;
  run_to_halt m;
  Alcotest.(check (list int)) "emitted words" [ 5678; 1234 ] !emitted

(* Differential test pinning the O(1) region-cost table to the seed's
   first-match linear scan, over random (unaligned, possibly overlapping,
   gappy) region layouts. *)
let prop_mem_cost_matches_linear_scan =
  let mem_words = 2048 in
  let region_gen =
    QCheck.Gen.(
      int_bound (mem_words - 1) >>= fun base ->
      int_bound (mem_words - base) >>= fun size ->
      map (fun cost -> (base, size, cost + 1)) (int_bound 30))
  in
  QCheck.Test.make ~name:"cost-table mem_cost = linear region scan" ~count:200
    (QCheck.make
       ~print:(fun rs ->
         String.concat ";"
           (List.map (fun (b, s, c) -> Printf.sprintf "%d+%d@%d" b s c) rs))
       QCheck.Gen.(list_size (int_range 0 6) region_gen))
    (fun rs ->
      let regions =
        List.mapi
          (fun i (base, size, cost) ->
            { Machine.rname = Printf.sprintf "r%d" i; base; size; cost })
          rs
      in
      let m =
        Machine.create ~program:(Asm.finish (Asm.create ())) ~mem_words
          ~regions ()
      in
      let reference addr =
        List.find_opt (fun r -> addr >= r.Machine.base
                                && addr < r.Machine.base + r.Machine.size)
          regions
        |> Option.map (fun r -> r.Machine.cost)
      in
      List.for_all
        (fun addr ->
          (match Machine.mem_cost m addr with
          | c -> Some c
          | exception Not_found -> None)
          = reference addr)
        (List.init (mem_words + 16) (fun i -> i - 8)))

let test_engine_category_attribution () =
  let b = Asm.create () in
  let sem = Asm.routine b Asm.Semantic (fun () ->
      Asm.li b 0 1;
      Asm.li b 0 2;
      Asm.ret b)
  in
  ignore
    (Asm.routine b Asm.Decode (fun () ->
         Asm.li b 1 0;
         Asm.call_addr b sem;
         Asm.halt b));
  let entry = 3 (* after the 3-instruction semantic routine *) in
  let m =
    Machine.create ~program:(Asm.finish b) ~mem_words:4096
      ~regions:default_regions ()
  in
  Machine.set_reg m R.rsp 200;
  Machine.set_pc m (Machine.Long entry);
  run_to_halt m;
  let stats = Machine.stats m in
  let decode = stats.Machine.cat_cycles.(Machine.category_index Asm.Decode) in
  let semantic = stats.Machine.cat_cycles.(Machine.category_index Asm.Semantic) in
  check_bool "decode cycles counted" true (decode > 0);
  (* the semantic routine runs 2 Li + Ret (with a stack read) *)
  check_bool "semantic cycles counted" true (semantic >= 3);
  check_int "all cycles attributed" stats.Machine.cycles (decode + semantic)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  ( "machine",
    [
      Alcotest.test_case "cache basics" `Quick test_cache_basics;
      Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
      Alcotest.test_case "cache full associativity" `Quick test_cache_full_assoc;
      Alcotest.test_case "cache geometry checks" `Quick test_cache_bad_geometry;
      Alcotest.test_case "short word known packing" `Quick test_short_pack_known;
      Alcotest.test_case "engine arithmetic" `Quick test_engine_arith;
      Alcotest.test_case "engine call/ret" `Quick test_engine_call_ret;
      Alcotest.test_case "engine memory costs" `Quick test_engine_memory_costs;
      Alcotest.test_case "engine unmapped trap" `Quick test_engine_unmapped_trap;
      Alcotest.test_case "engine division trap" `Quick test_engine_division_trap;
      Alcotest.test_case "engine fuel" `Quick test_engine_fuel;
      Alcotest.test_case "engine GetBits" `Quick test_engine_get_bits;
      Alcotest.test_case "engine short execution" `Quick
        test_engine_short_execution;
      Alcotest.test_case "engine GetBitsR and Jneg" `Quick
        test_engine_get_bits_r_and_jneg;
      Alcotest.test_case "engine CallR" `Quick test_engine_call_r;
      Alcotest.test_case "engine emit/end-trans hooks" `Quick
        test_engine_emit_and_end_trans_hooks;
      Alcotest.test_case "engine category attribution" `Quick
        test_engine_category_attribution;
      qcheck prop_cache_matches_reference;
      qcheck prop_timestamp_lru_matches_counter_lru;
      qcheck prop_mem_cost_matches_linear_scan;
      qcheck prop_short_roundtrip;
      qcheck prop_unpack_accessors_match_tuple;
    ] )
