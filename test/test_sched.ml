(* Tests for the multiprogramming subsystem: shared-DTB ownership
   policies (including last-translation-cache coherence across flush and
   invalidation), the quantum-to-infinity golden equalities, the
   contention ordering of the policies at small quanta, SRTF completion
   order, the bounded event-trace ring, and Chrome trace export. *)

module Dtb = Uhm_core.Dtb
module Perf = Uhm_core.Perf
module Machine = Uhm_machine.Machine
module Kind = Uhm_encoding.Kind
module Suite = Uhm_workload.Suite
module Trace = Uhm_sched.Trace
module Scheduler = Uhm_sched.Scheduler
module Mix = Uhm_sched.Mix

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let compile name = Suite.compile (Suite.find name)

let small_config = { Dtb.sets = 8; assoc = 2; unit_words = 4; overflow_blocks = 16 }

let install dtb ~tag =
  (match Dtb.lookup dtb ~tag with `Hit _ -> () | `Miss -> ());
  Dtb.begin_translation dtb ~tag;
  ignore (Dtb.emit dtb 1);
  ignore (Dtb.emit dtb 2);
  ignore (Dtb.end_translation dtb)

(* -- Satellite: last-translation-cache coherence ----------------------------- *)

let test_flush_clears_last_cache () =
  let dtb = Dtb.create ~last_cache:true small_config ~buffer_base:0 in
  install dtb ~tag:5;
  (* this hit is served by the last-translation cache *)
  (match Dtb.lookup dtb ~tag:5 with
  | `Hit _ -> ()
  | `Miss -> Alcotest.fail "freshly installed tag must hit");
  Dtb.flush dtb;
  check_int "one flush counted" 1 (Dtb.flushes dtb);
  check_int "flush empties the buffer" 0 (Dtb.resident_entries dtb);
  (* a stale last-translation cache would produce a phantom hit here *)
  (match Dtb.lookup dtb ~tag:5 with
  | `Hit _ -> Alcotest.fail "lookup after flush must miss (stale last cache)"
  | `Miss -> ());
  check_int "hits" 1 (Dtb.hits dtb);
  check_int "misses" 2 (Dtb.misses dtb)

(* Drive the same scripted tag sequence, with interleaved flushes, through
   a DTB with the last-translation cache and one without: every lookup
   must agree and all statistics must be identical.  The shortcut is an
   implementation detail, never a behaviour. *)
let test_last_cache_differential () =
  let with_lc = Dtb.create ~last_cache:true small_config ~buffer_base:0 in
  let without = Dtb.create ~last_cache:false small_config ~buffer_base:0 in
  (* deterministic tag stream with reuse (LCG), flush every 57th op *)
  let seed = ref 12345 in
  let next () =
    seed := (!seed * 1103515245 + 12345) land 0x3FFFFFFF;
    !seed mod 23
  in
  let tags = List.init 400 (fun _ -> next ()) in
  List.iteri
    (fun i tag ->
      if i mod 57 = 56 then begin
        Dtb.flush with_lc;
        Dtb.flush without
      end;
      let probe dtb =
        match Dtb.lookup dtb ~tag with
        | `Hit _ -> true
        | `Miss ->
            Dtb.begin_translation dtb ~tag;
            ignore (Dtb.emit dtb tag);
            ignore (Dtb.end_translation dtb);
            false
      in
      let a = probe with_lc and b = probe without in
      if a <> b then
        Alcotest.failf "op %d (tag %d): last-cache %s, plain %s" i tag
          (if a then "hit" else "miss")
          (if b then "hit" else "miss"))
    tags;
  check_int "hits agree" (Dtb.hits without) (Dtb.hits with_lc);
  check_int "misses agree" (Dtb.misses without) (Dtb.misses with_lc);
  check_int "evictions agree" (Dtb.evictions without) (Dtb.evictions with_lc);
  check_int "flushes agree" (Dtb.flushes without) (Dtb.flushes with_lc);
  check_int "residency agrees" (Dtb.resident_entries without)
    (Dtb.resident_entries with_lc)

let test_invalidate_asid () =
  let dtb =
    Dtb.create_shared ~policy:Dtb.Tagged ~programs:2 small_config
      ~buffer_base:0
  in
  check_int "asid 0 current initially" 0 (Dtb.current_asid dtb);
  install dtb ~tag:9;
  Dtb.switch_to dtb ~asid:1;
  (* same raw DIR address, different address space: must not alias *)
  (match Dtb.lookup dtb ~tag:9 with
  | `Hit _ -> Alcotest.fail "asid 1 must not hit asid 0's translation"
  | `Miss -> ());
  install dtb ~tag:9;
  Dtb.switch_to dtb ~asid:0;
  (match Dtb.lookup dtb ~tag:9 with
  | `Hit _ -> ()
  | `Miss -> Alcotest.fail "asid 0's translation must survive the switches");
  (* the lookup above just refreshed the last-translation cache; the
     invalidation must clear it or the next lookup is a stale hit *)
  check_int "one entry dropped" 1 (Dtb.invalidate_asid dtb ~asid:0);
  (match Dtb.lookup dtb ~tag:9 with
  | `Hit _ -> Alcotest.fail "invalidated entry must miss (stale last cache)"
  | `Miss -> ());
  Dtb.switch_to dtb ~asid:1;
  (match Dtb.lookup dtb ~tag:9 with
  | `Hit _ -> ()
  | `Miss -> Alcotest.fail "asid 1's translation must survive the invalidation");
  check_int "private DTB refuses invalidate_asid" 1
    (try
       ignore
         (Dtb.invalidate_asid (Dtb.create small_config ~buffer_base:0) ~asid:0);
       0
     with Invalid_argument _ -> 1)

(* Regression: under Flush_on_switch [asid_bits] = 0 while [current] still
   tracks the running ASID.  Folding the ASID into the key with a zero
   shift would turn the keys of adjacent DIR addresses 2k and 2k+1 into
   the same value whenever ASID 1 is current, so a lookup of 2k right
   after translating 2k+1 would falsely hit the last-translation cache
   (which compares keys only) and return the wrong buffer address. *)
let test_flush_policy_keys_not_aliased () =
  let dtb =
    Dtb.create_shared ~policy:Dtb.Flush_on_switch ~programs:2 small_config
      ~buffer_base:0
  in
  Dtb.switch_to dtb ~asid:1;
  check_int "asid 1 current" 1 (Dtb.current_asid dtb);
  install dtb ~tag:7;
  (match Dtb.lookup dtb ~tag:6 with
  | `Hit _ -> Alcotest.fail "tag 2k must not alias tag 2k+1 under ASID 1"
  | `Miss -> ());
  (match Dtb.lookup dtb ~tag:7 with
  | `Hit _ -> ()
  | `Miss -> Alcotest.fail "the installed tag itself must still hit");
  check_int "hits" 1 (Dtb.hits dtb);
  check_int "misses" 2 (Dtb.misses dtb)

(* -- Quantum-to-infinity: the mix reproduces the solo goldens ---------------- *)

let golden_mix = [ "fact_iter"; "fib_rec"; "flat_straightline" ]

let golden_outputs =
  [
    Test_golden.fact_iter_output; Test_golden.fib_rec_output;
    Test_golden.flat_straightline_output;
  ]

(* single-program cycles and DTB misses under the dtb strategy, from
   test_golden.ml's recorded numbers *)
let golden_cycles = [ 55896; 5922270; 257836 ]
let golden_misses = [ 37; 36; 3236 ]

let test_solo_quantum policy () =
  let programs = List.map (fun n -> (n, compile n)) golden_mix in
  let r =
    Mix.run ~policy ~quantum:Mix.solo_quantum ~config:Dtb.paper_config
      ~kind:Kind.Huffman programs
  in
  check_int "total cycles = sum of solo goldens"
    (List.fold_left ( + ) 0 golden_cycles)
    r.Mix.mr_total_cycles;
  check_int "one dispatch per program" 3 r.Mix.mr_switches;
  check_int "flushes"
    (match policy with Dtb.Flush_on_switch -> 2 | _ -> 0)
    r.Mix.mr_flushes;
  List.iteri
    (fun i (pr : Mix.program_result) ->
      let name = List.nth golden_mix i in
      check_int (name ^ " asid") i pr.Mix.pr_asid;
      check_bool (name ^ " halted") true (pr.Mix.pr_status = Machine.Halted);
      check_string (name ^ " output") (List.nth golden_outputs i)
        pr.Mix.pr_output;
      check_int (name ^ " cycles = solo golden") (List.nth golden_cycles i)
        pr.Mix.pr_cycles;
      check_int (name ^ " misses = solo golden") (List.nth golden_misses i)
        pr.Mix.pr_dtb_misses;
      check_int (name ^ " ran in one slice") 1 pr.Mix.pr_slices)
    r.Mix.mr_programs

(* -- Fairness: slowdown vs a solo run ---------------------------------------- *)

let test_fairness_slowdown () =
  let programs =
    [ ("fib_a", compile "fib_rec"); ("fact", compile "fact_iter") ]
  in
  let config = { Dtb.paper_config with Dtb.sets = 32; assoc = 4 } in
  (* at the solo quantum and the paper geometry every program runs
     exactly as if alone, so the slowdown must be exactly 1.0 under
     every policy — no tolerance *)
  List.iter
    (fun policy ->
      let r =
        Mix.run ~policy ~quantum:Mix.solo_quantum ~config:Dtb.paper_config
          ~kind:Kind.Huffman programs
      in
      List.iter
        (fun (pr : Mix.program_result) ->
          check_int
            (pr.Mix.pr_name ^ ": solo denominator = own cycles")
            pr.Mix.pr_cycles pr.Mix.pr_solo_cycles;
          check_bool (pr.Mix.pr_name ^ ": slowdown exactly 1.0") true
            (pr.Mix.pr_slowdown = 1.0))
        r.Mix.mr_programs)
    [ Dtb.Flush_on_switch; Dtb.Partitioned; Dtb.Tagged ];
  (* under Flush_on_switch the exactness survives any geometry: each
     program starts cold with the whole buffer, which IS the solo run *)
  let rf =
    Mix.run ~policy:Dtb.Flush_on_switch ~quantum:Mix.solo_quantum ~config
      ~kind:Kind.Huffman programs
  in
  List.iter
    (fun (pr : Mix.program_result) ->
      check_bool (pr.Mix.pr_name ^ ": flush solo-exact at tight geometry")
        true
        (pr.Mix.pr_slowdown = 1.0))
    rf.Mix.mr_programs;
  (* under Partitioned at a tight geometry the metric charges for the
     shrunken partition even without preemption *)
  let rp =
    Mix.run ~policy:Dtb.Partitioned ~quantum:Mix.solo_quantum ~config
      ~kind:Kind.Huffman programs
  in
  check_bool "partition cost priced without preemption" true
    (List.exists
       (fun (pr : Mix.program_result) -> pr.Mix.pr_slowdown > 1.0)
       rp.Mix.mr_programs);
  (* under contention: the denominator is quantum-independent, the ratio
     is cycles/solo, and a flushing mix can only slow programs down *)
  let run quantum =
    Mix.run ~policy:Dtb.Flush_on_switch ~quantum ~config ~kind:Kind.Huffman
      programs
  in
  let contended = run 16 and solo = run Mix.solo_quantum in
  List.iter2
    (fun (pr : Mix.program_result) (ps : Mix.program_result) ->
      check_int
        (pr.Mix.pr_name ^ ": solo denominator independent of quantum")
        ps.Mix.pr_solo_cycles pr.Mix.pr_solo_cycles;
      check_bool
        (Printf.sprintf "%s: slowdown %.3f >= 1 under flushing contention"
           pr.Mix.pr_name pr.Mix.pr_slowdown)
        true
        (pr.Mix.pr_slowdown >= 1.0);
      check_bool (pr.Mix.pr_name ^ ": slowdown = cycles / solo cycles") true
        (Float.abs
           (pr.Mix.pr_slowdown
           -. (float_of_int pr.Mix.pr_cycles
              /. float_of_int pr.Mix.pr_solo_cycles))
        < 1e-12))
    contended.Mix.mr_programs solo.Mix.mr_programs

(* -- Small quanta: the contention ordering of the policies ------------------- *)

(* Two copies of fib_rec (so both address spaces stay live for the whole
   run and present identical raw DIR tags) at a geometry under capacity
   pressure: half the paper's sets.  Flushing retranslates the working
   set every slice; a partition is too small for the working set; tagging
   keeps everything resident with full-buffer flexibility.  See
   EXPERIMENTS.md for why other operating points order differently. *)
let test_policy_ordering () =
  let programs = [ ("fib_a", compile "fib_rec"); ("fib_b", compile "fib_rec") ] in
  let config = { Dtb.paper_config with Dtb.sets = 32; assoc = 4 } in
  let run policy =
    Mix.run ~policy ~quantum:16 ~config ~kind:Kind.Huffman programs
  in
  let flush = run Dtb.Flush_on_switch in
  let tagged = run Dtb.Tagged in
  let part = run Dtb.Partitioned in
  List.iter
    (fun (r : Mix.result) ->
      List.iter
        (fun (pr : Mix.program_result) ->
          check_bool "halted" true (pr.Mix.pr_status = Machine.Halted);
          check_string "output correct under contention"
            Test_golden.fib_rec_output pr.Mix.pr_output)
        r.Mix.mr_programs)
    [ flush; tagged; part ];
  let h (r : Mix.result) = r.Mix.mr_hit_ratio in
  check_bool
    (Printf.sprintf "flush (%.4f) < partitioned (%.4f)" (h flush) (h part))
    true
    (h flush +. 0.05 < h part);
  check_bool
    (Printf.sprintf "partitioned (%.4f) < tagged (%.4f)" (h part) (h tagged))
    true
    (h part +. 0.02 < h tagged);
  check_bool "flush actually flushed" true (flush.Mix.mr_flushes > 1000);
  check_int "tagged never flushes" 0 tagged.Mix.mr_flushes

(* -- Scheduling policies ----------------------------------------------------- *)

let completions (r : Mix.result) =
  List.filter_map
    (fun (e : Trace.event) ->
      match e.Trace.kind with
      | Trace.Completion { asid; ok } -> Some (asid, ok)
      | _ -> None)
    (Trace.events r.Mix.mr_trace)

let test_srtf_completion_order () =
  (* dir_steps: fib_rec 240744 >> flat_straightline 3236 > fact_iter 2395;
     SRTF must finish them in ascending order regardless of ASID order *)
  let programs =
    List.map (fun n -> (n, compile n))
      [ "fib_rec"; "fact_iter"; "flat_straightline" ]
  in
  let r =
    Mix.run ~scheduler:Scheduler.Shortest_remaining ~policy:Dtb.Tagged
      ~quantum:64 ~config:Dtb.paper_config ~kind:Kind.Huffman programs
  in
  Alcotest.(check (list (pair int bool)))
    "SRTF completion order = ascending dir_steps"
    [ (1, true); (2, true); (0, true) ]
    (completions r);
  (* round-robin interleaves, so the long program still finishes last but
     the two short ones finish in ASID order *)
  let rr =
    Mix.run ~scheduler:Scheduler.Round_robin ~policy:Dtb.Tagged ~quantum:64
      ~config:Dtb.paper_config ~kind:Kind.Huffman programs
  in
  Alcotest.(check (list (pair int bool)))
    "round-robin completion order"
    [ (1, true); (2, true); (0, true) ]
    (completions rr);
  (* contention differs with the interleaving, but the work does not *)
  List.iter2
    (fun (a : Mix.program_result) (b : Mix.program_result) ->
      check_int "same DIR steps under either scheduler" a.Mix.pr_dir_steps
        b.Mix.pr_dir_steps;
      check_string "same output under either scheduler" a.Mix.pr_output
        b.Mix.pr_output)
    r.Mix.mr_programs rr.Mix.mr_programs

(* -- The event-trace ring ---------------------------------------------------- *)

let test_trace_ring_bounded () =
  let programs =
    [ ("fact_a", compile "fact_iter"); ("fact_b", compile "fact_iter") ]
  in
  let r =
    Mix.run ~trace_capacity:32 ~policy:Dtb.Tagged ~quantum:16
      ~config:Dtb.paper_config ~kind:Kind.Huffman programs
  in
  let tr = r.Mix.mr_trace in
  check_int "ring capacity" 32 (Trace.capacity tr);
  check_bool "events were dropped" true (Trace.dropped tr > 0);
  check_int "window is exactly the capacity" 32 (List.length (Trace.events tr));
  check_int "recorded = dropped + window"
    (Trace.recorded tr)
    (Trace.dropped tr + List.length (Trace.events tr));
  let cycles = List.map (fun (e : Trace.event) -> e.Trace.at_cycle) (Trace.events tr) in
  check_bool "event cycles are monotone" true
    (List.for_all2 ( <= ) cycles (List.tl cycles @ [ max_int ]));
  (* rollups are maintained on every record, not just the buffered window *)
  let dispatches =
    List.fold_left
      (fun acc (_, c) -> acc + c.Trace.c_dispatches)
      0 (Trace.tallies tr)
  in
  check_int "tallied dispatches = switches (exact despite drops)"
    r.Mix.mr_switches dispatches;
  check_bool "far more switches than the ring holds" true (r.Mix.mr_switches > 64)

(* -- Chrome trace export ----------------------------------------------------- *)

let test_chrome_export () =
  let names = [| "fact_iter"; "flat_straightline" |] in
  let programs =
    Array.to_list (Array.map (fun n -> (n, compile n)) names)
  in
  let r =
    Mix.run ~policy:Dtb.Flush_on_switch ~quantum:64 ~config:Dtb.paper_config
      ~kind:Kind.Huffman programs
  in
  let doc =
    Trace.to_chrome
      ~names:(fun asid -> names.(asid))
      ~end_cycle:r.Mix.mr_total_cycles r.Mix.mr_trace
  in
  match Perf.parse_json doc with
  | exception Failure m -> Alcotest.failf "export is not valid JSON: %s" m
  | Perf.J_arr events ->
      check_bool "non-empty" true (events <> []);
      let phases = Hashtbl.create 8 in
      List.iter
        (fun ev ->
          match ev with
          | Perf.J_obj fields ->
              let str k =
                match List.assoc_opt k fields with
                | Some (Perf.J_str s) -> Some s
                | _ -> None
              in
              let num k =
                match List.assoc_opt k fields with
                | Some (Perf.J_num _) -> true
                | _ -> false
              in
              let ph =
                match str "ph" with
                | Some p -> p
                | None -> Alcotest.fail "event without ph"
              in
              Hashtbl.replace phases ph ();
              check_bool "known phase" true (List.mem ph [ "X"; "i"; "M" ]);
              check_bool "has a name" true (str "name" <> None);
              check_bool "has a pid" true (num "pid");
              if ph = "X" then begin
                check_bool "slice has ts" true (num "ts");
                check_bool "slice has dur" true (num "dur")
              end;
              if ph = "i" then check_bool "instant has ts" true (num "ts")
          | _ -> Alcotest.fail "trace event is not an object")
        events;
      List.iter
        (fun ph ->
          check_bool (Printf.sprintf "at least one %S event" ph) true
            (Hashtbl.mem phases ph))
        [ "X"; "i"; "M" ]
  | _ -> Alcotest.fail "export must be a JSON array"

(* -- Argument validation ----------------------------------------------------- *)

let test_validation () =
  let one = [ ("fact_iter", compile "fact_iter") ] in
  let expect_invalid what f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "quantum 0" (fun () ->
      Mix.run ~policy:Dtb.Tagged ~quantum:0 ~config:Dtb.paper_config
        ~kind:Kind.Huffman one);
  expect_invalid "no programs" (fun () ->
      Mix.run ~policy:Dtb.Tagged ~quantum:16 ~config:Dtb.paper_config
        ~kind:Kind.Huffman []);
  expect_invalid "partitions wider than the sets" (fun () ->
      ignore
        (Dtb.create_shared ~policy:Dtb.Partitioned ~programs:16
           { small_config with Dtb.sets = 8 }
           ~buffer_base:0))

let suite =
  ( "sched",
    [
      Alcotest.test_case "flush clears the last-translation cache" `Quick
        test_flush_clears_last_cache;
      Alcotest.test_case "last-cache differential under flushes" `Quick
        test_last_cache_differential;
      Alcotest.test_case "invalidate_asid drops entries and the last cache"
        `Quick test_invalidate_asid;
      Alcotest.test_case "Flush_on_switch keys never alias adjacent tags"
        `Quick test_flush_policy_keys_not_aliased;
      Alcotest.test_case "quantum=inf reproduces solo goldens (flush)" `Slow
        (test_solo_quantum Dtb.Flush_on_switch);
      Alcotest.test_case "quantum=inf reproduces solo goldens (tagged)" `Slow
        (test_solo_quantum Dtb.Tagged);
      Alcotest.test_case "quantum=inf reproduces solo goldens (partitioned)"
        `Slow
        (test_solo_quantum Dtb.Partitioned);
      Alcotest.test_case "fairness: slowdown vs solo run" `Slow
        test_fairness_slowdown;
      Alcotest.test_case "hit-ratio ordering flush < partitioned < tagged"
        `Slow test_policy_ordering;
      Alcotest.test_case "SRTF completes in ascending remaining work" `Slow
        test_srtf_completion_order;
      Alcotest.test_case "trace ring is bounded, rollups exact" `Quick
        test_trace_ring_bounded;
      Alcotest.test_case "Chrome trace export is valid" `Quick
        test_chrome_export;
      Alcotest.test_case "argument validation" `Quick test_validation;
    ] )
