(* Tests for fault-tolerant serving: the zero-config differential pin
   against the plain service (cycle- and trace-identical, QCheck'd over
   policies, schedulers, quanta, seeds and slot counts), exhaustive
   outcome classification with pinned seeded counts (met-SLO / late /
   retried-then-ok / failed / shed), exact trace rollups for the new
   event kinds, a directed brownout staging run, the end-state recovery
   invariant across a seeded fault grid, and the heavy-tailed weighted
   arrival pools. *)

module Dtb = Uhm_core.Dtb
module Kind = Uhm_encoding.Kind
module Codec = Uhm_encoding.Codec
module Machine = Uhm_machine.Machine
module Suite = Uhm_workload.Suite
module Trace = Uhm_sched.Trace
module Scheduler = Uhm_sched.Scheduler
module Injector = Uhm_fault.Injector
module Resilient = Uhm_fault.Resilient
module Arrival = Uhm_serve.Arrival
module Serve = Uhm_serve.Serve
module Chaos = Uhm_serve.Chaos

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let compile name = Suite.compile (Suite.find name)

let small_config =
  { Dtb.sets = 8; assoc = 2; unit_words = 4; overflow_blocks = 16 }

let algol_templates names =
  List.map (fun n -> (n, Codec.encode Kind.Huffman (compile n))) names

let mixed_templates () =
  algol_templates [ "fact_iter"; "gcd" ]
  @ List.map
      (fun n ->
        (n, Codec.encode Kind.Huffman (Uhm_ftn.Suite.compile (Uhm_ftn.Suite.find n))))
      [ "ftn_euclid"; "ftn_fib" ]

(* -- Tentpole: zero-config identity with the plain service ------------------ *)

(* Chaos.run under Chaos.zero must be byte-identical to Serve.run: same
   job records, same summary, same event trace.  Trace.t holds
   hashtables, so the trace is compared through its exact observables. *)
let check_zero_identity ~policy ~scheduler ~quantum ~slots ~seed ~jobs
    ?admission ?economy () =
  let templates = mixed_templates () in
  let arrivals =
    Arrival.generate ~seed ~templates:(List.length templates) ~jobs
      (Arrival.Poisson { rate = 1500.0 })
  in
  let plain =
    Serve.run ~scheduler ?admission ?economy ~policy ~quantum
      ~config:small_config ~slots ~templates ~arrivals ()
  in
  let chaos =
    Chaos.run ~scheduler ?admission ?economy ~policy ~quantum
      ~config:small_config ~fconfig:Chaos.zero ~slots ~templates ~arrivals ()
  in
  let c = chaos.Chaos.cv_serve in
  check_bool "jobs identical" true (plain.Serve.sv_jobs = c.Serve.sv_jobs);
  check_bool "summary identical" true
    (plain.Serve.sv_summary = c.Serve.sv_summary);
  check_int "events recorded" (Trace.recorded plain.Serve.sv_trace)
    (Trace.recorded c.Serve.sv_trace);
  check_bool "event window identical" true
    (Trace.events plain.Serve.sv_trace = Trace.events c.Serve.sv_trace);
  check_bool "tallies identical" true
    (Trace.tallies plain.Serve.sv_trace = Trace.tallies c.Serve.sv_trace);
  (* and the chaos layer itself stayed quiet *)
  let s = chaos.Chaos.cv_summary in
  check_int "no failures" 0 s.Chaos.cs_failed_jobs;
  check_int "no job retries" 0 s.Chaos.cs_job_retries;
  check_int "no injections" 0 s.Chaos.cs_injected;
  check_int "no quarantines" 0 s.Chaos.cs_quarantines;
  check_int "no brownout" 0 s.Chaos.cs_brownout_transitions;
  Alcotest.(check (float 1e-9)) "attainment 1.0" 1.0 s.Chaos.cs_attainment

let test_zero_identity_directed () =
  check_zero_identity ~policy:Dtb.Tagged ~scheduler:Scheduler.Round_robin
    ~quantum:24 ~slots:3 ~seed:5 ~jobs:120 ();
  check_zero_identity ~policy:Dtb.Flush_on_switch
    ~scheduler:Scheduler.Round_robin ~quantum:8 ~slots:1 ~seed:9 ~jobs:80 ();
  check_zero_identity ~policy:Dtb.Partitioned
    ~scheduler:Scheduler.Shortest_remaining ~quantum:48 ~slots:4 ~seed:2
    ~jobs:100
    ~admission:{ Serve.queue_capacity = 8; shed_above = Some 6 }
    ~economy:Serve.default_economy ()

let qcheck_zero_identity =
  QCheck.Test.make ~count:12 ~name:"chaos zero = serve (policies/quanta/seeds)"
    QCheck.(
      quad (int_range 0 2) (int_range 1 64) (int_range 0 1000) (int_range 1 4))
    (fun (p, quantum, seed, slots) ->
      let policy =
        match p with
        | 0 -> Dtb.Flush_on_switch
        | 1 -> Dtb.Tagged
        | _ -> Dtb.Partitioned
      in
      let scheduler =
        if seed mod 2 = 0 then Scheduler.Round_robin
        else Scheduler.Shortest_remaining
      in
      check_zero_identity ~policy ~scheduler ~quantum ~slots ~seed ~jobs:60 ();
      true)

(* -- Tentpole: exhaustive outcome classification ---------------------------- *)

(* Guards off, psder-word faults at a bruising rate (expected dozens of
   injections per attempt), a 1 Mcycle deadline and a tiny queue at
   moderate overload: every outcome class must appear — met-SLO, late,
   retried-then-ok, failed, shed — and the seeded counts are pinned
   exactly.  The solo costs here are ~118k (fact_iter) and ~320k
   (string_out) cycles, so 2 slots give ~9 clean jobs/Mcycle against 5
   offered, and the fault-inflated service keeps the cap-4 queue
   saturated. *)
let classification_run () =
  let templates = algol_templates [ "fact_iter"; "string_out" ] in
  let arrivals =
    Arrival.generate ~seed:31 ~templates:(List.length templates) ~jobs:120
      (Arrival.Poisson { rate = 5.0 })
  in
  let fconfig =
    {
      Chaos.c_fault =
        {
          Resilient.zero with
          Resilient.injector =
            {
              Injector.seed = 1203;
              rates = [ (Injector.Psder_word, 0.004) ];
              explicit = [];
            };
        };
      c_job_retry_limit = 2;
      c_job_backoff = 2048;
      c_deadline = Some 1_000_000;
      c_brownout = None;
    }
  in
  (* the fuel bound matters: a corrupted attempt can loop, and must trap
     out rather than hold its slot for billions of cycles *)
  Chaos.run ~fuel:500_000 ~policy:Dtb.Tagged ~quantum:24 ~config:small_config
    ~fconfig
    ~admission:{ Serve.queue_capacity = 4; shed_above = None }
    ~slots:2 ~templates ~arrivals ()

let classify (r : Chaos.result) =
  let reports = Array.of_list r.Chaos.cv_reports in
  List.fold_left
    (fun (met, late, retried_ok, failed, shed) (j : Serve.job) ->
      match j.Serve.j_status with
      | Serve.Shed -> (met, late, retried_ok, failed, shed + 1)
      | Serve.Failed _ -> (met, late, retried_ok, failed + 1, shed)
      | Serve.Completed Machine.Halted ->
          let attempts = (reports.(j.Serve.j_id)).Chaos.cj_attempts in
          let within = j.Serve.j_sojourn <= 1_000_000 in
          ( (if within then met + 1 else met),
            (if within then late else late + 1),
            (if attempts > 1 then retried_ok + 1 else retried_ok),
            failed,
            shed )
      | Serve.Completed _ -> (met, late, retried_ok, failed, shed))
    (0, 0, 0, 0, 0)
    r.Chaos.cv_serve.Serve.sv_jobs

let test_outcome_classification () =
  let r = classification_run () in
  let met, late, retried_ok, failed, shed = classify r in
  (* every class is represented *)
  check_bool "some met SLO" true (met > 0);
  check_bool "some late" true (late > 0);
  check_bool "some retried then ok" true (retried_ok > 0);
  check_bool "some failed" true (failed > 0);
  check_bool "some shed" true (shed > 0);
  (* and the seeded counts are exact *)
  check_int "met" 7 met;
  check_int "late" 47 late;
  check_int "retried-then-ok" 16 retried_ok;
  check_int "failed" 12 failed;
  check_int "shed" 54 shed;
  check_int "conservation" 120 (met + late + failed + shed);
  (* the summary agrees with the classification *)
  let s = r.Chaos.cv_summary in
  check_int "summary slo met" met s.Chaos.cs_slo_met;
  check_int "summary completed" (met + late) s.Chaos.cs_slo_completed;
  check_int "summary failed" failed s.Chaos.cs_failed_jobs;
  check_int "summary deadline misses" late s.Chaos.cs_deadline_misses;
  check_bool "injections happened" true (s.Chaos.cs_injected > 0);
  check_bool "detections happened" true (s.Chaos.cs_detected > 0);
  (* no wrong answers: every accepted completion matches its solo run *)
  let reports = Array.of_list r.Chaos.cv_reports in
  List.iter
    (fun (j : Serve.job) ->
      match j.Serve.j_status with
      | Serve.Completed _ ->
          check_bool "state ok" true (reports.(j.Serve.j_id)).Chaos.cj_state_ok
      | _ -> ())
    r.Chaos.cv_serve.Serve.sv_jobs;
  (* determinism: the whole run replays bit for bit *)
  let r2 = classification_run () in
  check_bool "deterministic replay" true
    (r.Chaos.cv_serve.Serve.sv_jobs = r2.Chaos.cv_serve.Serve.sv_jobs
    && r.Chaos.cv_summary = r2.Chaos.cv_summary
    && r.Chaos.cv_reports = r2.Chaos.cv_reports)

(* -- Satellite: exact rollups for the new event kinds ----------------------- *)

let test_new_kind_rollups () =
  (* a tiny ring forces drops; the rollups must stay exact regardless *)
  let t = Trace.create ~capacity:4 () in
  let ev = Trace.record t in
  ev ~at_cycle:10 (Trace.Deadline_miss { job = 0; asid = 1; by = 50 });
  ev ~at_cycle:20 (Trace.Job_retry { job = 1; asid = 1; attempt = 2 });
  ev ~at_cycle:30 (Trace.Job_retry { job = 1; asid = 2; attempt = 3 });
  ev ~at_cycle:40 (Trace.Job_failed { job = 1; asid = 2; attempts = 3 });
  ev ~at_cycle:50 (Trace.Interp_admit { job = 2; asid = 1 });
  ev ~at_cycle:60 (Trace.Brownout { from_stage = 0; to_stage = 1 });
  ev ~at_cycle:70 (Trace.Brownout { from_stage = 1; to_stage = 2 });
  ev ~at_cycle:80 (Trace.Slot_quarantined { asid = 2; entries = 5; until = 999 });
  ev ~at_cycle:90 (Trace.Brownout { from_stage = 2; to_stage = 1 });
  let c1 = Trace.counts t 1 in
  check_int "asid1 deadline misses" 1 c1.Trace.c_deadline_misses;
  check_int "asid1 job retries" 1 c1.Trace.c_job_retries;
  check_int "asid1 interp admits" 1 c1.Trace.c_interp_admits;
  check_int "asid1 job failures" 0 c1.Trace.c_job_failures;
  let c2 = Trace.counts t 2 in
  check_int "asid2 job retries" 1 c2.Trace.c_job_retries;
  check_int "asid2 job failures" 1 c2.Trace.c_job_failures;
  check_int "asid2 quarantines" 1 c2.Trace.c_quarantines;
  check_int "brownout transitions" 3 (Trace.brownout_transitions t);
  check_int "brownout peak" 2 (Trace.brownout_peak t);
  check_int "recorded" 9 (Trace.recorded t);
  check_int "dropped" 5 (Trace.dropped t);
  (* chrome export names the new kinds *)
  let doc = Trace.to_chrome ~names:(Printf.sprintf "p%d") ~end_cycle:100 t in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
    scan 0
  in
  List.iter
    (fun needle -> check_bool (needle ^ " exported") true (contains needle doc))
    [ "brownout_stage"; "quarantine"; "\"chaos\"" ]

(* -- Satellite: directed brownout staging ----------------------------------- *)

(* No faults at all: the controller must still stage on queue delay
   alone.  One slot, a flood of arrivals, a hair-trigger wait bound:
   stages escalate 1 -> 2 -> 3 (interpretation admits, a quarantine),
   then hysteresis lets it recover.  Quarantine voids the in-flight
   attempt, so job-level retries fire even with a silent injector. *)
let brownout_run () =
  let templates = algol_templates [ "fact_iter" ] in
  let arrivals =
    Arrival.generate ~seed:3 ~templates:1 ~jobs:40
      (Arrival.Poisson { rate = 4000.0 })
  in
  let fconfig =
    {
      Chaos.zero with
      Chaos.c_brownout =
        Some
          {
            Chaos.bo_window = 100_000;
            bo_hi_detections = 4;
            bo_hi_wait = 60_000;
            bo_shed_above = 12;
            bo_hysteresis = 150_000;
            bo_quarantine = 80_000;
          };
    }
  in
  Chaos.run ~policy:Dtb.Tagged ~quantum:16 ~config:small_config ~fconfig
    ~admission:{ Serve.queue_capacity = 16; shed_above = None }
    ~slots:1 ~templates ~arrivals ()

let test_brownout_staging () =
  let r = brownout_run () in
  let s = r.Chaos.cv_summary in
  check_int "peak stage" 3 s.Chaos.cs_max_stage;
  check_bool "staged up and down" true (s.Chaos.cs_brownout_transitions >= 4);
  check_bool "interp admissions at stage 2" true (s.Chaos.cs_interp_admits > 0);
  (* wait-driven degradation has no detections, hence no slot scores as
     poisoned: stage 3 must not quarantine blindly *)
  check_int "no quarantine without a poisoned slot" 0 s.Chaos.cs_quarantines;
  check_int "no faults were injected" 0 s.Chaos.cs_injected;
  check_int "nothing failed" 0 s.Chaos.cs_failed_jobs;
  (* the trace telling matches the summary counters *)
  check_int "trace transitions" s.Chaos.cs_brownout_transitions
    (Trace.brownout_transitions r.Chaos.cv_serve.Serve.sv_trace);
  check_int "trace peak" 3 (Trace.brownout_peak r.Chaos.cv_serve.Serve.sv_trace);
  (* every completion is still the right answer: re-verify against the
     solo reference independently of the driver (verification is off
     with a silent injector, so this is the external check) *)
  let reports = Array.of_list r.Chaos.cv_reports in
  let sr =
    Chaos.solo_reference ~config:small_config (List.hd (algol_templates [ "fact_iter" ]))
  in
  List.iter
    (fun (j : Serve.job) ->
      match j.Serve.j_status with
      | Serve.Completed st ->
          check_bool "status" true (st = sr.Chaos.sr_status);
          check_string "output" sr.Chaos.sr_output
            (reports.(j.Serve.j_id)).Chaos.cj_output;
          check_int "arch hash" sr.Chaos.sr_arch_hash
            (reports.(j.Serve.j_id)).Chaos.cj_arch_hash
      | _ -> ())
    r.Chaos.cv_serve.Serve.sv_jobs;
  (* determinism *)
  let r2 = brownout_run () in
  check_bool "deterministic" true
    (r.Chaos.cv_serve.Serve.sv_jobs = r2.Chaos.cv_serve.Serve.sv_jobs
    && r.Chaos.cv_summary = r2.Chaos.cv_summary)

(* Detection-driven stage 3: guards on, a bruising dtb-tag fault rate,
   detections (not queue delay) drive the window.  The slot with the
   most recent detections is quarantined, its in-flight attempt voided
   into the retry path — and every completion is still the right
   answer. *)
let test_brownout_quarantine () =
  let templates = algol_templates [ "fact_iter"; "gcd" ] in
  let arrivals =
    Arrival.generate ~seed:17 ~templates:2 ~jobs:60
      (Arrival.Poisson { rate = 2000.0 })
  in
  let fconfig =
    {
      Chaos.zero with
      Chaos.c_fault =
        Resilient.protected
          {
            Injector.seed = 99;
            rates = [ (Injector.Dtb_tag, 0.01) ];
            explicit = [];
          };
      c_brownout =
        Some
          {
            Chaos.default_brownout with
            Chaos.bo_window = 300_000;
            bo_hi_detections = 3;
            bo_hi_wait = max_int;
            bo_hysteresis = 500_000;
            bo_quarantine = 100_000;
          };
    }
  in
  let r =
    Chaos.run ~policy:Dtb.Tagged ~quantum:24 ~config:small_config ~fconfig
      ~slots:2 ~templates ~arrivals ()
  in
  let s = r.Chaos.cv_summary in
  check_int "peak stage" 3 s.Chaos.cs_max_stage;
  check_bool "a quarantine fired" true (s.Chaos.cs_quarantines >= 1);
  check_bool "detections drove the window" true (s.Chaos.cs_detected > 0);
  check_bool "quarantine voided an attempt" true (s.Chaos.cs_job_retries >= 1);
  let reports = Array.of_list r.Chaos.cv_reports in
  List.iter
    (fun (j : Serve.job) ->
      match j.Serve.j_status with
      | Serve.Completed _ ->
          check_bool "state ok" true (reports.(j.Serve.j_id)).Chaos.cj_state_ok
      | _ -> ())
    r.Chaos.cv_serve.Serve.sv_jobs

(* Regression: a stage-3 quarantine on the ONLY slot voids the active
   attempt into a retry whose backoff (64 cycles) expires long before
   the quarantine (400k cycles) does.  With every slot quarantined and
   the retry already due, the idle loop must jump the clock to the
   quarantine expiry rather than spin on the stale retry time — the
   pre-fix version of this scenario livelocked, so mere termination is
   the property under test. *)
let test_quarantine_single_slot_no_livelock () =
  let templates = algol_templates [ "fact_iter"; "gcd" ] in
  let arrivals =
    Arrival.generate ~seed:17 ~templates:2 ~jobs:30
      (Arrival.Poisson { rate = 2000.0 })
  in
  let fconfig =
    {
      Chaos.zero with
      Chaos.c_fault =
        Resilient.protected
          {
            Injector.seed = 99;
            rates = [ (Injector.Dtb_tag, 0.03) ];
            explicit = [];
          };
      c_job_backoff = 64;
      c_brownout =
        Some
          {
            Chaos.default_brownout with
            Chaos.bo_window = 300_000;
            bo_hi_detections = 3;
            bo_hi_wait = max_int;
            bo_hysteresis = 500_000;
            bo_quarantine = 400_000;
          };
    }
  in
  let r =
    Chaos.run ~policy:Dtb.Tagged ~quantum:24 ~config:small_config ~fconfig
      ~slots:1 ~templates ~arrivals ()
  in
  let s = r.Chaos.cv_summary in
  check_bool "a quarantine fired" true (s.Chaos.cs_quarantines >= 1);
  check_bool "the voided attempt retried" true (s.Chaos.cs_job_retries >= 1);
  check_int "all jobs retired (the run terminated)" 30
    (List.length r.Chaos.cv_serve.Serve.sv_jobs)

(* -- Satellite: the recovery invariant across a seeded fault grid ----------- *)

(* Guards and checkpoints on: at every grid point, every job that
   retired [Completed] must have final state equal to its fault-free
   solo run — the service never reports a corrupted answer. *)
let test_end_state_invariant_grid () =
  let templates = mixed_templates () in
  let refs =
    List.map (fun t -> Chaos.solo_reference ~config:small_config t) templates
  in
  let ref_arr = Array.of_list refs in
  List.iter
    (fun (policy, fr, seed) ->
      let arrivals =
        Arrival.generate ~seed ~templates:(List.length templates) ~jobs:40
          (Arrival.Poisson { rate = 1200.0 })
      in
      let injector =
        {
          Injector.seed = seed * 7919;
          rates = List.map (fun c -> (c, fr /. 4.)) Injector.all_classes;
          explicit = [];
        }
      in
      let fconfig =
        {
          Chaos.zero with
          Chaos.c_fault = Resilient.protected ~checkpoint_every:1024 injector;
          c_deadline = Some 2_000_000;
        }
      in
      let r =
        Chaos.run ~policy ~quantum:24 ~config:small_config ~fconfig ~slots:3
          ~templates ~arrivals ()
      in
      let reports = Array.of_list r.Chaos.cv_reports in
      List.iter
        (fun (j : Serve.job) ->
          match j.Serve.j_status with
          | Serve.Completed st ->
              let rep = reports.(j.Serve.j_id) in
              let sr = ref_arr.(j.Serve.j_template) in
              check_bool "driver verified" true rep.Chaos.cj_state_ok;
              check_bool "status = solo" true (st = sr.Chaos.sr_status);
              check_string "output = solo" sr.Chaos.sr_output rep.Chaos.cj_output;
              check_int "arch hash = solo" sr.Chaos.sr_arch_hash
                rep.Chaos.cj_arch_hash
          | Serve.Failed _ | Serve.Shed -> ())
        r.Chaos.cv_serve.Serve.sv_jobs)
    [
      (Dtb.Tagged, 0.002, 11);
      (Dtb.Tagged, 0.008, 12);
      (Dtb.Flush_on_switch, 0.004, 13);
      (Dtb.Partitioned, 0.004, 14);
    ]

(* -- Satellite: heavy-tailed weighted template pools ------------------------ *)

let test_weighted_pools () =
  (* weighting must not perturb arrival times, only template picks *)
  let uniform =
    Arrival.generate ~seed:7 ~templates:5 ~jobs:2000
      (Arrival.Poisson { rate = 2000.0 })
  in
  let weights = Arrival.heavy_tailed ~templates:5 ~heavy:[ (4, 0.125) ] in
  let skewed =
    Arrival.generate ~weights ~seed:7 ~templates:5 ~jobs:2000
      (Arrival.Poisson { rate = 2000.0 })
  in
  List.iter2
    (fun (u : Arrival.arrival) (s : Arrival.arrival) ->
      check_int "same arrival time" u.Arrival.at s.Arrival.at)
    uniform skewed;
  (* pinned seeded histogram: template 4 (weight 1/8) is rare *)
  let hist = Array.make 5 0 in
  List.iter (fun (a : Arrival.arrival) -> hist.(a.Arrival.template) <- hist.(a.Arrival.template) + 1) skewed;
  Alcotest.(check (array int)) "pinned histogram" [| 465; 472; 482; 511; 70 |] hist;
  (* the helper fills in unit weights *)
  Alcotest.(check (list (float 1e-9)))
    "heavy_tailed vector" [ 1.; 1.; 1.; 1.; 0.125 ] weights;
  check_string "uniform fingerprint" "uniform" (Arrival.weights_name None);
  check_bool "weighted fingerprint is exact" true
    (Arrival.weights_name (Some weights) <> "uniform");
  (* validation *)
  (match
     Arrival.generate ~weights:[ 1.; 2. ] ~seed:1 ~templates:3 ~jobs:1
       (Arrival.Poisson { rate = 100.0 })
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong arity must raise");
  match
    Arrival.generate ~weights:[ 0.; 0. ] ~seed:1 ~templates:2 ~jobs:1
      (Arrival.Poisson { rate = 100.0 })
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "all-zero weights must raise"

let suite =
  ( "chaos",
    [
      Alcotest.test_case "zero-config identity (directed)" `Quick
        test_zero_identity_directed;
      QCheck_alcotest.to_alcotest qcheck_zero_identity;
      Alcotest.test_case "outcome classification (pinned)" `Quick
        test_outcome_classification;
      Alcotest.test_case "new trace kinds roll up exactly" `Quick
        test_new_kind_rollups;
      Alcotest.test_case "brownout staging (directed)" `Quick
        test_brownout_staging;
      Alcotest.test_case "brownout quarantine (detection-driven)" `Quick
        test_brownout_quarantine;
      Alcotest.test_case "single-slot quarantine terminates (livelock pin)"
        `Quick test_quarantine_single_slot_no_livelock;
      Alcotest.test_case "end-state invariant across fault grid" `Quick
        test_end_state_invariant_grid;
      Alcotest.test_case "heavy-tailed weighted pools" `Quick
        test_weighted_pools;
    ] )
