(* Tests for the coding substrate: optimality bounds, canonical form,
   restricted lengths, conditional (digram) coding, decode trees. *)

module Freq = Uhm_huffman.Freq
module Code = Uhm_huffman.Code
module Restricted = Uhm_huffman.Restricted
module Conditional = Uhm_huffman.Conditional
module Writer = Uhm_bitstream.Writer
module Reader = Uhm_bitstream.Reader

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* -- Freq ------------------------------------------------------------------ *)

let test_freq_basic () =
  let f = Freq.of_list ~alphabet_size:4 [ 0; 1; 1; 3; 3; 3 ] in
  check_int "count 0" 1 (Freq.count f 0);
  check_int "count 1" 2 (Freq.count f 1);
  check_int "count 2" 0 (Freq.count f 2);
  check_int "count 3" 3 (Freq.count f 3);
  check_int "total" 6 (Freq.total f);
  Alcotest.(check (array int)) "smoothed" [| 2; 3; 1; 4 |] (Freq.smoothed f)

let test_entropy_uniform () =
  check_float "4 equal symbols = 2 bits" 2. (Freq.entropy [| 5; 5; 5; 5 |]);
  check_float "single symbol = 0 bits" 0. (Freq.entropy [| 9; 0; 0 |]);
  check_float "empty = 0 bits" 0. (Freq.entropy [| 0; 0 |])

let test_conditioned_of_sequence () =
  let table =
    Freq.Conditioned.of_sequence ~contexts:3 ~alphabet_size:2
      ~ctx_of:(fun sym -> sym) ~start_ctx:2 [ 0; 1; 1; 0 ]
  in
  let counts = Freq.Conditioned.counts table in
  (* start: 0; after 0: 1; after 1: 1 then 0 *)
  Alcotest.(check (array int)) "ctx 2 (start)" [| 1; 0 |] counts.(2);
  Alcotest.(check (array int)) "ctx 0" [| 0; 1 |] counts.(0);
  Alcotest.(check (array int)) "ctx 1" [| 1; 1 |] counts.(1)

(* -- Code ------------------------------------------------------------------ *)

let test_two_symbols () =
  let c = Code.of_frequencies [| 3; 7 |] in
  Alcotest.(check (array int)) "both one bit" [| 1; 1 |] (Code.lengths c)

let test_skewed_code_shorter_for_frequent () =
  let c = Code.of_frequencies [| 50; 10; 10; 5 |] in
  let lengths = Code.lengths c in
  Alcotest.(check bool) "most frequent has the shortest codeword" true
    (lengths.(0) <= lengths.(1)
    && lengths.(0) <= lengths.(2)
    && lengths.(0) <= lengths.(3))

let test_single_symbol () =
  let c = Code.of_frequencies [| 0; 42; 0 |] in
  check_int "single symbol gets one bit" 1 (Code.lengths c).(1);
  let w = Writer.create () in
  Code.encode c w 1;
  let r = Reader.of_string (Writer.to_reader_input w) in
  check_int "decodes back" 1 (Code.decode c r)

let test_zero_count_symbol_unencodable () =
  let c = Code.of_frequencies [| 5; 0; 5 |] in
  Alcotest.check_raises "no codeword" Not_found (fun () ->
      ignore (Code.codeword c 1))

let test_known_lengths () =
  (* weights 1,1,2,4: classic skewed tree -> lengths 3,3,2,1 *)
  let c = Code.of_frequencies [| 1; 1; 2; 4 |] in
  Alcotest.(check (array int)) "lengths" [| 3; 3; 2; 1 |] (Code.lengths c)

let test_of_lengths_kraft_violation () =
  Alcotest.check_raises "kraft violation"
    (Invalid_argument "Huffman.Code.of_lengths: lengths violate the Kraft inequality")
    (fun () -> ignore (Code.of_lengths [| 1; 1; 1 |]))

let test_total_bits () =
  let c = Code.of_frequencies [| 1; 1; 2; 4 |] in
  check_int "weighted total" ((1 * 3) + (1 * 3) + (2 * 2) + (4 * 1))
    (Code.total_bits c [| 1; 1; 2; 4 |])

let nonzero_counts_gen =
  QCheck.Gen.(
    int_range 2 40 >>= fun n ->
    array_size (return n) (int_range 1 1000))

let counts_arbitrary =
  QCheck.make
    ~print:(fun a ->
      String.concat "," (Array.to_list (Array.map string_of_int a)))
    nonzero_counts_gen

let prop_roundtrip_sequence =
  QCheck.Test.make ~name:"huffman encode/decode round-trip" ~count:200
    counts_arbitrary
    (fun counts ->
      let c = Code.of_frequencies counts in
      let n = Array.length counts in
      (* encode a deterministic pseudo-random sequence of symbols *)
      let symbols = List.init 300 (fun i -> i * 7919 mod n) in
      let w = Writer.create () in
      List.iter (Code.encode c w) symbols;
      let r = Reader.of_string (Writer.to_reader_input w) in
      List.for_all (fun s -> Code.decode c r = s) symbols)

let prop_entropy_bound =
  QCheck.Test.make
    ~name:"huffman average length within [H, H+1)" ~count:200 counts_arbitrary
    (fun counts ->
      let c = Code.of_frequencies counts in
      let avg = Code.average_length c counts in
      let h = Freq.entropy counts in
      avg >= h -. 1e-9 && avg < h +. 1. +. 1e-9)

let prop_kraft_equality =
  QCheck.Test.make ~name:"huffman code is complete (Kraft sum = 1)" ~count:200
    counts_arbitrary
    (fun counts ->
      let lengths = Code.lengths (Code.of_frequencies counts) in
      let max_len = Array.fold_left max 0 lengths in
      let sum =
        Array.fold_left
          (fun acc l -> if l > 0 then acc + (1 lsl (max_len - l)) else acc)
          0 lengths
      in
      sum = 1 lsl max_len)

let prop_prefix_free =
  QCheck.Test.make ~name:"codewords are prefix-free" ~count:100 counts_arbitrary
    (fun counts ->
      let c = Code.of_frequencies counts in
      let words = ref [] in
      Array.iteri
        (fun sym l ->
          if l > 0 then
            let len, bits = Code.codeword c sym in
            let s =
              String.init len (fun i ->
                  if (bits lsr (len - 1 - i)) land 1 = 1 then '1' else '0')
            in
            words := s :: !words)
        (Code.lengths c);
      let words = !words in
      List.for_all
        (fun w1 ->
          List.for_all
            (fun w2 ->
              w1 == w2
              || String.length w1 > String.length w2
              || not (String.equal (String.sub w2 0 (String.length w1)) w1))
            words)
        words)

let prop_optimality_vs_fixed_width =
  QCheck.Test.make ~name:"huffman never beats entropy, never loses to fixed width"
    ~count:200 counts_arbitrary
    (fun counts ->
      let c = Code.of_frequencies counts in
      let nonzero = Array.fold_left (fun n x -> if x > 0 then n + 1 else n) 0 counts in
      let fixed = max 1 (Uhm_bitstream.Bits.width_for nonzero) in
      let total = Array.fold_left ( + ) 0 counts in
      Code.total_bits c counts <= fixed * total)

(* -- decode tree ----------------------------------------------------------- *)

let test_decode_tree_shape () =
  let c = Code.of_frequencies [| 1; 1; 2; 4 |] in
  let tree = Code.decode_tree c in
  (* simulate the machine decoder on symbol 0's codeword *)
  let len, bits = Code.codeword c 0 in
  let node = ref 0 in
  let result = ref None in
  for i = len - 1 downto 0 do
    match !result with
    | Some _ -> ()
    | None ->
        let b = (bits lsr i) land 1 in
        let v = tree.((2 * !node) + b) in
        if v >= 0 then node := v else result := Some (-v - 1)
  done;
  check_int "tree walk reaches symbol 0" 0 (Option.get !result)

(* -- Restricted ------------------------------------------------------------ *)

let test_restricted_uses_allowed_lengths () =
  let counts = Array.init 20 (fun i -> 100 - (i * 4)) in
  let lengths = Restricted.lengths ~allowed:Restricted.b1700_lengths counts in
  Array.iteri
    (fun sym l ->
      if counts.(sym) > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "symbol %d length %d allowed" sym l)
          true
          (List.mem l Restricted.b1700_lengths))
    lengths

let test_restricted_monotone () =
  let counts = [| 100; 50; 25; 12; 6; 3 |] in
  let lengths = Restricted.lengths ~allowed:[ 1; 2; 3; 4; 5; 6 ] counts in
  for i = 0 to Array.length counts - 2 do
    Alcotest.(check bool) "more frequent is never longer" true
      (lengths.(i) <= lengths.(i + 1))
  done

let test_restricted_infeasible () =
  Alcotest.check_raises "five symbols cannot fit in lengths <= 2"
    (Invalid_argument
       "Restricted.lengths: allowed lengths cannot accommodate the alphabet")
    (fun () -> ignore (Restricted.lengths ~allowed:[ 1; 2 ] [| 1; 1; 1; 1; 1 |]))

let prop_restricted_roundtrip =
  QCheck.Test.make ~name:"restricted code round-trip" ~count:100
    counts_arbitrary
    (fun counts ->
      let c = Restricted.of_frequencies ~allowed:Restricted.b1700_lengths counts in
      let n = Array.length counts in
      let symbols = List.init 200 (fun i -> i * 31 mod n) in
      let w = Writer.create () in
      List.iter (Code.encode c w) symbols;
      let r = Reader.of_string (Writer.to_reader_input w) in
      List.for_all (fun s -> Code.decode c r = s) symbols)

let prop_restricted_close_to_optimal =
  QCheck.Test.make
    ~name:"restricted code within 3 bits/symbol of unrestricted" ~count:100
    counts_arbitrary
    (fun counts ->
      let free = Code.of_frequencies counts in
      let restricted =
        Restricted.of_frequencies ~allowed:Restricted.b1700_lengths counts
      in
      Code.average_length restricted counts
      <= Code.average_length free counts +. 3.)

(* -- Conditional ----------------------------------------------------------- *)

let test_conditional_roundtrip () =
  let counts = [| [| 10; 1; 1 |]; [| 1; 10; 1 |]; [| 1; 1; 10 |] |] in
  let t = Conditional.of_counts counts in
  let symbols = [ 0; 0; 1; 2; 1; 0; 2; 2 ] in
  let w = Writer.create () in
  let _ =
    List.fold_left
      (fun ctx sym ->
        Conditional.encode t w ~ctx sym;
        sym)
      0 symbols
  in
  let r = Reader.of_string (Writer.to_reader_input w) in
  let decoded = ref [] in
  let _ =
    List.fold_left
      (fun ctx _ ->
        let sym = Conditional.decode t r ~ctx in
        decoded := sym :: !decoded;
        sym)
      0 symbols
  in
  Alcotest.(check (list int)) "round-trip" symbols (List.rev !decoded)

let test_conditional_beats_unconditional_on_markov_source () =
  (* A strongly predictable source: symbol i is almost always followed by
     (i+1) mod 3.  Conditioning must exploit it. *)
  let contexts = 3 and n = 3 in
  let counts = Array.make_matrix contexts n 0 in
  let flat = Array.make n 0 in
  let sym = ref 0 in
  for step = 0 to 9999 do
    let next = if step mod 17 = 0 then (!sym + 2) mod 3 else (!sym + 1) mod 3 in
    counts.(!sym).(next) <- counts.(!sym).(next) + 1;
    flat.(next) <- flat.(next) + 1;
    sym := next
  done;
  let conditional = Conditional.of_counts ~smooth:true counts in
  let unconditional = Code.of_frequencies flat in
  let cond_bits = Conditional.total_bits conditional counts in
  let flat_bits = Code.total_bits unconditional flat in
  Alcotest.(check bool)
    (Printf.sprintf "conditional %d < unconditional %d" cond_bits flat_bits)
    true (cond_bits < flat_bits)

let test_conditional_smoothing_covers_unseen () =
  let counts = [| [| 100; 0 |]; [| 0; 100 |] |] in
  let t = Conditional.of_counts ~smooth:true counts in
  (* symbol 1 never seen in context 0, but must still be encodable *)
  let w = Writer.create () in
  Conditional.encode t w ~ctx:0 1;
  let r = Reader.of_string (Writer.to_reader_input w) in
  check_int "decodes" 1 (Conditional.decode t r ~ctx:0)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  ( "huffman",
    [
      Alcotest.test_case "freq basics" `Quick test_freq_basic;
      Alcotest.test_case "entropy of simple distributions" `Quick
        test_entropy_uniform;
      Alcotest.test_case "conditioned counting" `Quick test_conditioned_of_sequence;
      Alcotest.test_case "two symbols" `Quick test_two_symbols;
      Alcotest.test_case "frequent symbols get short codes" `Quick
        test_skewed_code_shorter_for_frequent;
      Alcotest.test_case "single-symbol alphabet" `Quick test_single_symbol;
      Alcotest.test_case "zero-count symbol unencodable" `Quick
        test_zero_count_symbol_unencodable;
      Alcotest.test_case "known optimal lengths" `Quick test_known_lengths;
      Alcotest.test_case "kraft violation rejected" `Quick
        test_of_lengths_kraft_violation;
      Alcotest.test_case "total bits" `Quick test_total_bits;
      Alcotest.test_case "decode tree walk" `Quick test_decode_tree_shape;
      Alcotest.test_case "restricted lengths from allowed set" `Quick
        test_restricted_uses_allowed_lengths;
      Alcotest.test_case "restricted lengths monotone in frequency" `Quick
        test_restricted_monotone;
      Alcotest.test_case "restricted infeasible alphabet rejected" `Quick
        test_restricted_infeasible;
      Alcotest.test_case "conditional round-trip" `Quick test_conditional_roundtrip;
      Alcotest.test_case "conditional beats unconditional on markov source"
        `Quick test_conditional_beats_unconditional_on_markov_source;
      Alcotest.test_case "conditional smoothing covers unseen symbols" `Quick
        test_conditional_smoothing_covers_unseen;
      qcheck prop_roundtrip_sequence;
      qcheck prop_entropy_bound;
      qcheck prop_kraft_equality;
      qcheck prop_prefix_free;
      qcheck prop_optimality_vs_fixed_width;
      qcheck prop_restricted_roundtrip;
      qcheck prop_restricted_close_to_optimal;
    ] )
