(* Golden cycle-count regression tests.

   Exact simulated totals, per-category cycle attribution, and program
   output for three representative suite programs under all four
   execution strategies, recorded from the seed simulator.  The host-side
   performance work (paged memory, cost tables, word-wise bit fetch,
   timestamp LRU) must keep every one of these numbers bit-identical:
   any drift here means the optimisations changed simulated behaviour,
   not just wall-clock speed. *)

module U = Uhm_core.Uhm
module Dtb = Uhm_core.Dtb
module Machine = Uhm_machine.Machine
module Kind = Uhm_encoding.Kind
module Suite = Uhm_workload.Suite

let check_int = Alcotest.(check int)

type golden = {
  g_cycles : int;
  g_cat : int array; (* Startup; Decode; Semantic; Translate; Der *)
  g_host : int;
  g_short : int;
  g_dirfetch : int;
  g_shortfetch : int;
  g_stack : int;
  g_interp : int;
  g_units : int;
}

let strategies =
  [
    ("interp", U.Interp);
    ("cached", U.Cached 4096);
    ("dtb", U.Dtb_strategy Dtb.paper_config);
    ("der", U.Der U.Der_level1);
  ]

let fact_iter_output =
  "1\n2\n6\n24\n120\n720\n5040\n40320\n362880\n3628800\n39916800\n\
   479001600\n6227020800\n87178291200\n1307674368000\n20922789888000\n\
   355687428096000\n6402373705728000\n"

let fib_rec_output =
  "0\n1\n1\n2\n3\n5\n8\n13\n21\n34\n55\n89\n144\n233\n377\n610\n987\n\
   1597\n2584\n"

let flat_straightline_output = "29767\n30488\n"

(* (workload, expected output, per-strategy goldens in [strategies] order) *)
let cases =
  [
    ( "fact_iter",
      fact_iter_output,
      [
        { g_cycles = 154917; g_cat = [| 0; 119269; 22538; 0; 0 |];
          g_host = 112042; g_short = 0; g_dirfetch = 13110;
          g_shortfetch = 0; g_stack = 16724; g_interp = 0; g_units = 1311 };
        { g_cycles = 144469; g_cat = [| 0; 119269; 22538; 0; 0 |];
          g_host = 112042; g_short = 0; g_dirfetch = 2662;
          g_shortfetch = 0; g_stack = 16724; g_interp = 0; g_units = 1311 };
        { g_cycles = 55896; g_cat = [| 0; 1442; 25199; 766; 0 |];
          g_host = 17426; g_short = 8989; g_dirfetch = 210;
          g_shortfetch = 8989; g_stack = 13909; g_interp = 2395;
          g_units = 21 };
        { g_cycles = 11405; g_cat = [| 0; 0; 0; 0; 11405 |];
          g_host = 6900; g_short = 0; g_dirfetch = 0; g_shortfetch = 0;
          g_stack = 3232; g_interp = 0; g_units = 0 };
      ] );
    ( "fib_rec",
      fib_rec_output,
      [
        { g_cycles = 17847007; g_cat = [| 0; 13371915; 2614932; 0; 0 |];
          g_host = 12824455; g_short = 0; g_dirfetch = 1860160;
          g_shortfetch = 0; g_stack = 1575796; g_interp = 0;
          g_units = 186016 };
        { g_cycles = 16358919; g_cat = [| 0; 13371915; 2614932; 0; 0 |];
          g_host = 12824455; g_short = 0; g_dirfetch = 372072;
          g_shortfetch = 0; g_stack = 1575796; g_interp = 0;
          g_units = 186016 };
        { g_cycles = 5922270; g_cat = [| 0; 1570; 3118246; 722; 0 |];
          g_host = 2015034; g_short = 864538; g_dirfetch = 250;
          g_shortfetch = 864538; g_stack = 1444517; g_interp = 240744;
          g_units = 25 };
        { g_cycles = 1553469; g_cat = [| 0; 0; 0; 0; 1553469 |];
          g_host = 995526; g_short = 0; g_dirfetch = 0; g_shortfetch = 0;
          g_stack = 306356; g_interp = 0; g_units = 0 };
      ] );
    ( "flat_straightline",
      flat_straightline_output,
      [
        { g_cycles = 201014; g_cat = [| 0; 160257; 22307; 0; 0 |];
          g_host = 147304; g_short = 0; g_dirfetch = 18450;
          g_shortfetch = 0; g_stack = 19436; g_interp = 0; g_units = 1845 };
        { g_cycles = 188102; g_cat = [| 0; 160257; 22307; 0; 0 |];
          g_host = 147304; g_short = 0; g_dirfetch = 5538;
          g_shortfetch = 0; g_stack = 19436; g_interp = 0; g_units = 1845 };
        { g_cycles = 257836; g_cat = [| 0; 127860; 22350; 59959; 0 |];
          g_host = 170828; g_short = 8932; g_dirfetch = 18450;
          g_shortfetch = 8932; g_stack = 19467; g_interp = 3236;
          g_units = 1845 };
        { g_cycles = 16156; g_cat = [| 0; 0; 0; 0; 16156 |];
          g_host = 9696; g_short = 0; g_dirfetch = 0; g_shortfetch = 0;
          g_stack = 5642; g_interp = 0; g_units = 0 };
      ] );
  ]

let check_case workload expected_output strategy_name strategy g () =
  let p = Suite.compile (Suite.find workload) in
  let r = U.run ~strategy ~kind:Kind.Huffman p in
  (match r.U.status with
  | Machine.Halted -> ()
  | s ->
      Alcotest.failf "%s/%s did not halt cleanly: %s" workload strategy_name
        (match s with
        | Machine.Running -> "running"
        | Machine.Halted -> "halted"
        | Machine.Trapped m -> "trapped: " ^ m
        | Machine.Out_of_fuel -> "out of fuel"));
  Alcotest.(check string) "output" expected_output r.U.output;
  let s = r.U.machine_stats in
  check_int "total cycles" g.g_cycles r.U.cycles;
  Array.iteri
    (fun i c -> check_int (Printf.sprintf "cat_cycles.(%d)" i) c s.Machine.cat_cycles.(i))
    g.g_cat;
  check_int "host instrs" g.g_host s.Machine.host_instrs;
  check_int "short instrs" g.g_short s.Machine.short_instrs;
  check_int "dir fetch cycles" g.g_dirfetch s.Machine.dir_fetch_cycles;
  check_int "short fetch cycles" g.g_shortfetch s.Machine.short_fetch_cycles;
  check_int "stack cycles" g.g_stack s.Machine.stack_cycles;
  check_int "interp count" g.g_interp s.Machine.interp_count;
  check_int "dir units fetched" g.g_units s.Machine.dir_units_fetched

let suite =
  ( "golden",
    List.concat_map
      (fun (workload, output, goldens) ->
        List.map2
          (fun (name, strategy) g ->
            Alcotest.test_case
              (Printf.sprintf "%s/%s cycle counts" workload name)
              `Quick
              (check_case workload output name strategy g))
          strategies goldens)
      cases )
