(* Tests for the campaign journal and resume layer: journal round-trip,
   torn-line recovery, fingerprint safety, and the headline crash-safety
   property — truncating a journal anywhere and resuming reproduces the
   uninterrupted report byte-for-byte, at 1 and 4 domains. *)

module Journal = Uhm_campaign.Journal
module Campaign = Uhm_campaign.Campaign
module Sweep = Uhm_core.Sweep

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let temp_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "uhm_test_journal_%d_%d.jsonl" (Unix.getpid ()) !counter)

let with_temp f =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let header = { Journal.campaign = "test"; fingerprint = "f00d"; cells = 4 }

(* -- Journal round-trip ------------------------------------------------------ *)

let test_roundtrip () =
  with_temp (fun path ->
      let w = Journal.create ~path header in
      let payload i = Marshal.to_string (i, string_of_int i) [] in
      Journal.append w
        { Journal.cell = 0; attempts = 1; outcome = Journal.Ok_cell (payload 0) };
      Journal.append w
        { Journal.cell = 1; attempts = 3;
          outcome = Journal.Quarantined_cell "Failure(\"boom\")" };
      Journal.append w
        { Journal.cell = 2; attempts = 2; outcome = Journal.Ok_cell (payload 2) };
      Journal.close w;
      match Journal.load ~path with
      | Error e -> Alcotest.fail (Journal.load_error_message e)
      | Ok l ->
          check_bool "header round-trips" true (l.Journal.l_header = header);
          check_int "record count" 3 (List.length l.Journal.l_records);
          check_bool "not torn" false l.Journal.l_torn;
          check_int "valid bytes = file size" (String.length (read_file path))
            l.Journal.l_valid_bytes;
          (match l.Journal.l_records with
          | [ r0; r1; r2 ] ->
              check_int "cell ids" 0 r0.Journal.cell;
              check_int "attempts preserved" 3 r1.Journal.attempts;
              (match (r0.Journal.outcome, r1.Journal.outcome) with
              | Journal.Ok_cell p, Journal.Quarantined_cell reason ->
                  check_bool "payload bytes preserved" true (p = payload 0);
                  Alcotest.(check string)
                    "reason preserved" "Failure(\"boom\")" reason
              | _ -> Alcotest.fail "unexpected outcomes");
              (match r2.Journal.outcome with
              | Journal.Ok_cell p ->
                  let v : int * string = Marshal.from_string p 0 in
                  check_bool "payload unmarshals" true (v = (2, "2"))
              | _ -> Alcotest.fail "cell 2 must be ok")
          | _ -> Alcotest.fail "wrong record shape"))

let test_escaping_roundtrip () =
  (* reasons with quotes, backslashes, newlines and control bytes must
     survive the JSON encoding *)
  with_temp (fun path ->
      let nasty = "a\"b\\c\nd\te\r\x01f" in
      let w = Journal.create ~path { header with Journal.campaign = nasty } in
      Journal.append w
        { Journal.cell = 0; attempts = 1;
          outcome = Journal.Quarantined_cell nasty };
      Journal.close w;
      match Journal.load ~path with
      | Error e -> Alcotest.fail (Journal.load_error_message e)
      | Ok l -> (
          Alcotest.(check string)
            "campaign escaped" nasty l.Journal.l_header.Journal.campaign;
          match (List.hd l.Journal.l_records).Journal.outcome with
          | Journal.Quarantined_cell r -> Alcotest.(check string) "reason" nasty r
          | _ -> Alcotest.fail "expected quarantine"))

(* -- Crash shapes ------------------------------------------------------------ *)

let test_torn_final_line () =
  with_temp (fun path ->
      let w = Journal.create ~path header in
      Journal.append w
        { Journal.cell = 0; attempts = 1;
          outcome = Journal.Ok_cell (Marshal.to_string 42 []) };
      Journal.close w;
      let intact = read_file path in
      (* a torn record: the crash cut the final line mid-JSON *)
      write_file path (intact ^ "{\"cell\":1,\"attempts\":1,\"status\":\"o");
      (match Journal.load ~path with
      | Error e -> Alcotest.fail (Journal.load_error_message e)
      | Ok l ->
          check_bool "torn flag" true l.Journal.l_torn;
          check_int "torn line dropped" 1 (List.length l.Journal.l_records);
          check_int "valid bytes exclude the torn tail"
            (String.length intact) l.Journal.l_valid_bytes);
      (* reopen truncates the torn tail; the journal is intact again *)
      let w = Journal.reopen ~path ~valid_bytes:(String.length intact) in
      Journal.append w
        { Journal.cell = 1; attempts = 1;
          outcome = Journal.Ok_cell (Marshal.to_string 43 []) };
      Journal.close w;
      match Journal.load ~path with
      | Error e -> Alcotest.fail (Journal.load_error_message e)
      | Ok l ->
          check_bool "no longer torn" false l.Journal.l_torn;
          check_int "both records" 2 (List.length l.Journal.l_records))

let test_newlineless_final_record_is_torn () =
  (* the crash can cut the write exactly after the record's JSON, before
     its newline: the record parses, but keeping it would leave the
     durable prefix stopping mid-line — the next append would glue two
     records onto one line and poison the journal.  It must be dropped
     as torn, and the prefix must end at a line boundary. *)
  with_temp (fun path ->
      let w = Journal.create ~path header in
      Journal.append w
        { Journal.cell = 0; attempts = 1;
          outcome = Journal.Ok_cell (Marshal.to_string 42 []) };
      Journal.append w
        { Journal.cell = 1; attempts = 1;
          outcome = Journal.Ok_cell (Marshal.to_string 43 []) };
      Journal.close w;
      let intact = read_file path in
      (* chop exactly the final newline *)
      write_file path (String.sub intact 0 (String.length intact - 1));
      let valid =
        match Journal.load ~path with
        | Error e -> Alcotest.fail (Journal.load_error_message e)
        | Ok l ->
            check_bool "newline-less final record counts as torn" true
              l.Journal.l_torn;
            check_int "the record is dropped" 1
              (List.length l.Journal.l_records);
            check_bool "durable prefix ends at a line boundary" true
              (intact.[l.Journal.l_valid_bytes - 1] = '\n');
            l.Journal.l_valid_bytes
      in
      (* in-place resume from that prefix yields a loadable journal *)
      let w = Journal.reopen ~path ~valid_bytes:valid in
      Journal.append w
        { Journal.cell = 1; attempts = 2;
          outcome = Journal.Ok_cell (Marshal.to_string 43 []) };
      Journal.close w;
      match Journal.load ~path with
      | Error e -> Alcotest.fail (Journal.load_error_message e)
      | Ok l ->
          check_bool "healed journal is not torn" false l.Journal.l_torn;
          check_int "both records present" 2 (List.length l.Journal.l_records))

let test_reopen_terminates_midline_prefix () =
  (* defensive path: [load] never reports a mid-line prefix, but a
     caller passing one to [reopen] must not be able to glue records —
     the missing newline is supplied before the first append *)
  with_temp (fun path ->
      let w = Journal.create ~path header in
      Journal.append w
        { Journal.cell = 0; attempts = 1;
          outcome = Journal.Ok_cell (Marshal.to_string 1 []) };
      Journal.close w;
      let chopped =
        let s = read_file path in
        String.sub s 0 (String.length s - 1)
      in
      write_file path chopped;
      let w = Journal.reopen ~path ~valid_bytes:(String.length chopped) in
      Journal.append w
        { Journal.cell = 1; attempts = 1;
          outcome = Journal.Ok_cell (Marshal.to_string 2 []) };
      Journal.close w;
      match Journal.load ~path with
      | Error e -> Alcotest.fail (Journal.load_error_message e)
      | Ok l ->
          check_bool "not torn" false l.Journal.l_torn;
          check_int "no glued records" 2 (List.length l.Journal.l_records))

let test_interior_corruption_rejected () =
  with_temp (fun path ->
      let w = Journal.create ~path header in
      Journal.append w
        { Journal.cell = 0; attempts = 1;
          outcome = Journal.Ok_cell (Marshal.to_string 1 []) };
      Journal.append w
        { Journal.cell = 1; attempts = 1;
          outcome = Journal.Ok_cell (Marshal.to_string 2 []) };
      Journal.close w;
      let lines = String.split_on_char '\n' (read_file path) in
      (* flip the middle record into garbage, keeping the final one *)
      let mangled =
        match lines with
        | h :: _ :: r2 :: rest ->
            String.concat "\n" (h :: "{garbage" :: r2 :: rest)
        | _ -> Alcotest.fail "unexpected layout"
      in
      write_file path mangled;
      (match Journal.load ~path with
      | Ok _ -> Alcotest.fail "interior corruption must be rejected"
      | Error (Journal.Corrupt _) -> ()
      | Error (Journal.No_header _) -> Alcotest.fail "header is intact");
      (* a tampered payload is interior corruption too: flip one hex
         nibble of a record's payload so the digest no longer matches *)
      let w = Journal.create ~path header in
      Journal.append w
        { Journal.cell = 0; attempts = 1;
          outcome = Journal.Ok_cell (Marshal.to_string 1 []) };
      Journal.append w
        { Journal.cell = 1; attempts = 1;
          outcome = Journal.Ok_cell (Marshal.to_string 2 []) };
      Journal.close w;
      let content = read_file path in
      let marker = "\"payload\":\"" in
      let rec find i =
        if i + String.length marker > String.length content then
          Alcotest.fail "no payload field found"
        else if String.sub content i (String.length marker) = marker then
          i + String.length marker
        else find (i + 1)
      in
      let pos = find 0 in
      let flipped = if content.[pos] = '0' then '1' else '0' in
      write_file path
        (String.mapi (fun i c -> if i = pos then flipped else c) content);
      (match Journal.load ~path with
      | Ok _ -> Alcotest.fail "digest mismatch must be rejected"
      | Error (Journal.Corrupt _) -> ()
      | Error (Journal.No_header _) -> Alcotest.fail "header is intact");
      (* a syntactically valid record whose payload is not hex must come
         back as Corrupt, not as an escaping Invalid_argument *)
      List.iter
        (fun bad_hex ->
          let w = Journal.create ~path header in
          Journal.close w;
          write_file path
            (read_file path
            ^ Printf.sprintf
                "{\"cell\":0,\"attempts\":1,\"status\":\"ok\",\"digest\":\
                 \"d41d8cd98f00b204e9800998ecf8427e\",\"payload\":\"%s\"}\n"
                bad_hex);
          match Journal.load ~path with
          | Ok _ ->
              Alcotest.failf "payload %S must be rejected as corrupt" bad_hex
          | Error (Journal.Corrupt _) -> ()
          | Error (Journal.No_header _) -> Alcotest.fail "header is intact")
        [ "zz"; "abc" ])

let test_headerless_is_fresh_start () =
  (* SIGKILL inside Journal.create can leave an empty or torn-header
     file; resuming from it must start fresh, not hard-error *)
  with_temp (fun path ->
      write_file path "";
      let setup =
        Campaign.prepare ~resume:path ~campaign:"test" ~fingerprint:[ "x" ]
          ~cells:2 ()
      in
      check_int "nothing resumed from an empty file" 0 setup.Campaign.resumed;
      setup.Campaign.close ();
      write_file path "{\"uhm_journal\":1,\"campaign\":\"te";
      let setup =
        Campaign.prepare ~resume:path ~campaign:"test" ~fingerprint:[ "x" ]
          ~cells:2 ()
      in
      check_int "nothing resumed from a torn header" 0 setup.Campaign.resumed;
      setup.Campaign.close ();
      (* a header whose JSON survived but whose newline did not is still
         torn-at-creation: keeping it would leave the prefix mid-line *)
      write_file path
        "{\"uhm_journal\":1,\"campaign\":\"test\",\"fingerprint\":\"f00d\",\"cells\":2}";
      (match Journal.load ~path with
      | Error (Journal.No_header _) -> ()
      | Error (Journal.Corrupt _) ->
          Alcotest.fail "newline-less header must be No_header, not Corrupt"
      | Ok _ -> Alcotest.fail "newline-less header must not load");
      let setup =
        Campaign.prepare ~resume:path ~campaign:"test" ~fingerprint:[ "x" ]
          ~cells:2 ()
      in
      check_int "nothing resumed from a newline-less header" 0
        setup.Campaign.resumed;
      setup.Campaign.close ())

(* -- Campaign.prepare safety ------------------------------------------------- *)

let run_grid ~domains ~journal ~resume jobs =
  let setup =
    Campaign.prepare ?journal ?resume ~campaign:"grid-test"
      ~fingerprint:[ "jobs"; string_of_int (List.length jobs) ]
      ~cells:(List.length jobs) ()
  in
  let slots =
    Sweep.map_supervised
      ~supervision:{ Sweep.default_supervision with Sweep.sv_backoff = 1e-4 }
      ~domains ~cached:setup.Campaign.cached
      ?cell_hook:setup.Campaign.cell_hook
      (fun i ->
        if i = 2 then failwith "poisoned";
        (i, i * i))
      jobs
  in
  setup.Campaign.close ();
  (slots, setup.Campaign.resumed)

let test_fingerprint_mismatch () =
  with_temp (fun path ->
      let _ = run_grid ~domains:1 ~journal:(Some path) ~resume:None
          [ 0; 1; 2; 3 ]
      in
      (* same campaign name, different fingerprint (different cell count) *)
      match
        Campaign.prepare ~resume:path ~campaign:"grid-test"
          ~fingerprint:[ "jobs"; "5" ] ~cells:5 ()
      with
      | _ -> Alcotest.fail "expected Mismatch"
      | exception Campaign.Mismatch msg ->
          check_bool "mismatch message" true (String.length msg > 0))

let test_campaign_name_mismatch () =
  with_temp (fun path ->
      let w = Journal.create ~path header in
      Journal.close w;
      match
        Campaign.prepare ~resume:path ~campaign:"other" ~fingerprint:[ "x" ]
          ~cells:4 ()
      with
      | _ -> Alcotest.fail "expected Mismatch"
      | exception Campaign.Mismatch _ -> ())

let test_quarantined_cells_are_retried_on_resume () =
  with_temp (fun path ->
      let slots1, resumed1 =
        run_grid ~domains:1 ~journal:(Some path) ~resume:None [ 0; 1; 2; 3 ]
      in
      check_int "fresh run resumes nothing" 0 resumed1;
      check_bool "cell 2 quarantined" true
        (match List.nth slots1 2 with
        | Sweep.Quarantined _ -> true
        | Sweep.Completed _ -> false);
      let slots2, resumed2 =
        run_grid ~domains:1 ~journal:(Some path) ~resume:(Some path)
          [ 0; 1; 2; 3 ]
      in
      check_int "ok cells served from the journal" 3 resumed2;
      check_bool "results identical across resume" true (slots1 = slots2))

(* -- The headline property: kill anywhere, resume, identical report ---------- *)

let uninterrupted ~domains jobs =
  with_temp (fun path ->
      let slots, _ =
        run_grid ~domains ~journal:(Some path) ~resume:None jobs
      in
      (slots, read_file path))

let test_truncate_resume_identical () =
  let jobs = List.init 8 Fun.id in
  List.iter
    (fun domains ->
      let reference, full_journal = uninterrupted ~domains jobs in
      (* truncate at every byte boundary of the journal — a superset of
         "any record boundary" that also covers torn lines and a torn
         header — then resume and demand the identical report *)
      let stride = max 1 (String.length full_journal / 23) in
      let cut = ref 0 in
      while !cut <= String.length full_journal do
        with_temp (fun path ->
            write_file path (String.sub full_journal 0 !cut);
            let slots, _ =
              run_grid ~domains ~journal:(Some path) ~resume:(Some path) jobs
            in
            check_bool
              (Printf.sprintf "identical report after kill at byte %d (%d domains)"
                 !cut domains)
              true
              (slots = reference);
            (* and the healed journal now resumes completely *)
            let slots', resumed =
              run_grid ~domains ~journal:(Some path) ~resume:(Some path) jobs
            in
            check_int
              (Printf.sprintf "all ok cells resumed after healing at %d" !cut)
              7 resumed;
            check_bool "still identical" true (slots' = reference));
        cut := !cut + stride
      done)
    [ 1; 4 ]

let test_qcheck_truncate_resume =
  QCheck.Test.make ~count:30
    ~name:"random truncation point: resume reproduces the report"
    QCheck.(pair (int_bound 100_000) (bool))
    (fun (seed, four_domains) ->
      let domains = if four_domains then 4 else 1 in
      let jobs = List.init 6 Fun.id in
      let reference, full_journal = uninterrupted ~domains jobs in
      let cut = seed mod (String.length full_journal + 1) in
      with_temp (fun path ->
          write_file path (String.sub full_journal 0 cut);
          let slots, _ =
            run_grid ~domains ~journal:(Some path) ~resume:(Some path) jobs
          in
          slots = reference))

(* -- Journal compaction ------------------------------------------------------ *)

let test_compact_basic () =
  with_temp (fun path ->
      let payload i = Marshal.to_string (i, i * i) [] in
      let w = Journal.create ~path header in
      Journal.append w
        { Journal.cell = 0; attempts = 1; outcome = Journal.Ok_cell (payload 0) };
      Journal.append w
        { Journal.cell = 2; attempts = 1;
          outcome = Journal.Quarantined_cell "boom" };
      Journal.append w
        { Journal.cell = 1; attempts = 1; outcome = Journal.Ok_cell (payload 10) };
      (* supersede all three: cell 1 recomputed, cell 2 finally ok,
         cell 0 quarantined late *)
      Journal.append w
        { Journal.cell = 1; attempts = 2; outcome = Journal.Ok_cell (payload 1) };
      Journal.append w
        { Journal.cell = 2; attempts = 3; outcome = Journal.Ok_cell (payload 2) };
      Journal.append w
        { Journal.cell = 0; attempts = 2;
          outcome = Journal.Quarantined_cell "late" };
      Journal.close w;
      match Journal.compact ~path with
      | Error e -> Alcotest.fail (Journal.load_error_message e)
      | Ok c -> (
          check_int "kept one record per cell" 3 c.Journal.c_kept;
          check_int "superseded records retired" 3 c.Journal.c_retired;
          check_int "valid bytes = file size" (String.length (read_file path))
            c.Journal.c_valid_bytes;
          check_bool "no temporary left behind" false
            (Sys.file_exists (path ^ ".compact"));
          match Journal.load ~path with
          | Error e -> Alcotest.fail (Journal.load_error_message e)
          | Ok l -> (
              check_bool "header preserved" true (l.Journal.l_header = header);
              check_bool "not torn" false l.Journal.l_torn;
              (match l.Journal.l_records with
              | [ r0; r1; r2 ] ->
                  check_int "cell order ascending (0)" 0 r0.Journal.cell;
                  check_int "cell order ascending (1)" 1 r1.Journal.cell;
                  check_int "cell order ascending (2)" 2 r2.Journal.cell;
                  check_bool "cell 0 keeps its last (quarantined) outcome" true
                    (r0.Journal.outcome = Journal.Quarantined_cell "late");
                  check_int "surviving record keeps its attempts" 2
                    r1.Journal.attempts;
                  check_bool "cell 1 keeps its last payload" true
                    (r1.Journal.outcome = Journal.Ok_cell (payload 1));
                  check_bool "cell 2 keeps its last (ok) outcome" true
                    (r2.Journal.outcome = Journal.Ok_cell (payload 2))
              | _ -> Alcotest.fail "wrong compacted record shape");
              (* idempotent: a second pass retires nothing *)
              match Journal.compact ~path with
              | Error e -> Alcotest.fail (Journal.load_error_message e)
              | Ok c2 ->
                  check_int "second pass keeps" 3 c2.Journal.c_kept;
                  check_int "second pass retires nothing" 0
                    c2.Journal.c_retired)))

let test_compact_resume_identical () =
  (* the resume-visible state (payloads, attempts, quarantines) must be
     unchanged by compaction: a resumed run reproduces the report *)
  let jobs = [ 0; 1; 2; 3 ] in
  with_temp (fun path ->
      let reference, _ =
        run_grid ~domains:1 ~journal:(Some path) ~resume:None jobs
      in
      (* in-place resume re-records the poisoned cell's quarantine,
         leaving one superseded line *)
      let _ = run_grid ~domains:1 ~journal:(Some path) ~resume:(Some path) jobs in
      let records () =
        match Journal.load ~path with
        | Ok l -> List.length l.Journal.l_records
        | Error e -> Alcotest.fail (Journal.load_error_message e)
      in
      check_int "superseded record accumulated" 5 (records ());
      match Journal.compact ~path with
      | Error e -> Alcotest.fail (Journal.load_error_message e)
      | Ok c ->
          check_int "one superseded record retired" 1 c.Journal.c_retired;
          check_int "one record per recorded cell" 4 (records ());
          let slots, resumed =
            run_grid ~domains:1 ~journal:(Some path) ~resume:(Some path) jobs
          in
          check_int "ok cells still served after compaction" 3 resumed;
          check_bool "identical report from the compacted journal" true
            (slots = reference))

let test_compact_kill_anywhere () =
  (* kill the campaign at any byte, compact whatever survived, resume:
     the report must still be identical to the uninterrupted run *)
  let jobs = List.init 6 Fun.id in
  let reference, journal_bytes =
    with_temp (fun path ->
        let reference, _ =
          run_grid ~domains:1 ~journal:(Some path) ~resume:None jobs
        in
        let _ =
          run_grid ~domains:1 ~journal:(Some path) ~resume:(Some path) jobs
        in
        (reference, read_file path))
  in
  let stride = max 1 (String.length journal_bytes / 17) in
  let cut = ref 0 in
  while !cut <= String.length journal_bytes do
    with_temp (fun path ->
        write_file path (String.sub journal_bytes 0 !cut);
        (* an unusable prefix (no durable header) skips compaction, as a
           resume would; a torn tail is dropped, as on any load *)
        (match Journal.compact ~path with
        | Ok _ | Error (Journal.No_header _) -> ()
        | Error (Journal.Corrupt msg) ->
            Alcotest.failf "unexpected corruption at byte %d: %s" !cut msg);
        let slots, _ =
          run_grid ~domains:1 ~journal:(Some path) ~resume:(Some path) jobs
        in
        check_bool
          (Printf.sprintf "identical report, compacted kill at byte %d" !cut)
          true (slots = reference));
    cut := !cut + stride
  done

let test_opportunistic_compaction_on_resume () =
  (* Campaign.prepare compacts an in-place resume once enough superseded
     records have piled up; the report is unchanged *)
  let jobs = [ 0; 1; 2; 3 ] in
  let run ?compact_threshold ~resume path =
    let setup =
      Campaign.prepare ~journal:path ?resume ?compact_threshold
        ~campaign:"grid-test"
        ~fingerprint:[ "jobs"; string_of_int (List.length jobs) ]
        ~cells:(List.length jobs) ()
    in
    let slots =
      Sweep.map_supervised
        ~supervision:{ Sweep.default_supervision with Sweep.sv_backoff = 1e-4 }
        ~domains:1 ~cached:setup.Campaign.cached
        ?cell_hook:setup.Campaign.cell_hook
        (fun i ->
          if i = 2 then failwith "poisoned";
          (i, i * i))
        jobs
    in
    setup.Campaign.close ();
    slots
  in
  with_temp (fun path ->
      let reference = run ~resume:None path in
      let second = run ~resume:(Some path) path in
      check_bool "plain resume reproduces" true (second = reference);
      (* two runs left one superseded record; threshold 1 makes the
         third resume compact before appending *)
      let third = run ~compact_threshold:1 ~resume:(Some path) path in
      check_bool "report identical across opportunistic compaction" true
        (third = reference);
      match Journal.load ~path with
      | Error e -> Alcotest.fail (Journal.load_error_message e)
      | Ok l ->
          (* 4 compacted records plus this run's fresh quarantine
             re-record; without compaction there would be 6 *)
          check_int "superseded records were dropped" 5
            (List.length l.Journal.l_records))

let suite =
  ( "campaign",
    [
      Alcotest.test_case "journal round-trip" `Quick test_roundtrip;
      Alcotest.test_case "JSON escaping round-trip" `Quick
        test_escaping_roundtrip;
      Alcotest.test_case "torn final line dropped and healed" `Quick
        test_torn_final_line;
      Alcotest.test_case "newline-less final record is torn" `Quick
        test_newlineless_final_record_is_torn;
      Alcotest.test_case "reopen terminates a mid-line prefix" `Quick
        test_reopen_terminates_midline_prefix;
      Alcotest.test_case "interior corruption rejected" `Quick
        test_interior_corruption_rejected;
      Alcotest.test_case "headerless journal is a fresh start" `Quick
        test_headerless_is_fresh_start;
      Alcotest.test_case "fingerprint mismatch refuses to mix" `Quick
        test_fingerprint_mismatch;
      Alcotest.test_case "campaign name mismatch refuses to mix" `Quick
        test_campaign_name_mismatch;
      Alcotest.test_case "quarantined cells are retried on resume" `Quick
        test_quarantined_cells_are_retried_on_resume;
      Alcotest.test_case "kill anywhere + resume = identical report" `Slow
        test_truncate_resume_identical;
      QCheck_alcotest.to_alcotest test_qcheck_truncate_resume;
      Alcotest.test_case "compaction keeps the last record per cell" `Quick
        test_compact_basic;
      Alcotest.test_case "compaction preserves resume state" `Quick
        test_compact_resume_identical;
      Alcotest.test_case "kill anywhere + compact + resume = identical" `Slow
        test_compact_kill_anywhere;
      Alcotest.test_case "opportunistic compaction on resume" `Quick
        test_opportunistic_compaction_on_resume;
    ] )
