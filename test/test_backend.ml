(* Differential tests for the threaded execution backend: decode and
   threaded must be observably identical — cycles, every statistics
   field, traps, output, DTB counters, traces — on the golden suites,
   random programs across strategies, sliced execution with random
   invalidation points, all three shared-DTB policies, and the fault
   driver (zero-fault and fault-injected, the stale-closure regression:
   a guard-detected corruption must drop the compiled closure with the
   DTB entry). *)

module Dtb = Uhm_core.Dtb
module U = Uhm_core.Uhm
module Machine = Uhm_machine.Machine
module Layout = Uhm_psder.Layout
module Kind = Uhm_encoding.Kind
module Codec = Uhm_encoding.Codec
module Suite = Uhm_workload.Suite
module Trace = Uhm_sched.Trace
module Mix = Uhm_sched.Mix
module Injector = Uhm_fault.Injector
module Resilient = Uhm_fault.Resilient

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let compile name = Suite.compile (Suite.find name)
let encode name = (name, Codec.encode Kind.Huffman (compile name))

let status_str = function
  | Machine.Running -> "running"
  | Machine.Halted -> "halted"
  | Machine.Trapped m -> "trapped: " ^ m
  | Machine.Out_of_fuel -> "out of fuel"

(* Field-by-field equality of the full statistics record: a divergence
   message that names the field beats a bare [false]. *)
let check_stats label (a : Machine.stats) (b : Machine.stats) =
  let f n = check_int (label ^ ": " ^ n) in
  f "cycles" a.Machine.cycles b.Machine.cycles;
  f "host_instrs" a.Machine.host_instrs b.Machine.host_instrs;
  f "short_instrs" a.Machine.short_instrs b.Machine.short_instrs;
  f "dir_units_fetched" a.Machine.dir_units_fetched b.Machine.dir_units_fetched;
  f "dir_fetch_cycles" a.Machine.dir_fetch_cycles b.Machine.dir_fetch_cycles;
  f "short_fetch_cycles" a.Machine.short_fetch_cycles
    b.Machine.short_fetch_cycles;
  f "code_fetch_cycles" a.Machine.code_fetch_cycles b.Machine.code_fetch_cycles;
  f "stack_cycles" a.Machine.stack_cycles b.Machine.stack_cycles;
  f "interp_count" a.Machine.interp_count b.Machine.interp_count;
  Array.iteri
    (fun i c -> f (Printf.sprintf "cat_cycles.(%d)" i) c b.Machine.cat_cycles.(i))
    a.Machine.cat_cycles

let check_result label (a : U.result) (b : U.result) =
  Alcotest.(check string)
    (label ^ ": status") (status_str a.U.status) (status_str b.U.status);
  Alcotest.(check string) (label ^ ": output") a.U.output b.U.output;
  check_int (label ^ ": cycles") a.U.cycles b.U.cycles;
  check_int (label ^ ": dir_steps") a.U.dir_steps b.U.dir_steps;
  check_stats label a.U.machine_stats b.U.machine_stats;
  check_bool (label ^ ": dtb counters") true
    (a.U.dtb_hit_ratio = b.U.dtb_hit_ratio
    && a.U.dtb_misses = b.U.dtb_misses
    && a.U.dtb_evictions = b.U.dtb_evictions
    && a.U.dtb_overflow_allocations = b.U.dtb_overflow_allocations
    && a.U.dtb_emitted_words = b.U.dtb_emitted_words
    && a.U.dtb_l2_hit_ratio = b.U.dtb_l2_hit_ratio
    && a.U.icache_hit_ratio = b.U.icache_hit_ratio);
  check_int (label ^ ": static_size_bits") a.U.static_size_bits
    b.U.static_size_bits;
  check_int (label ^ ": support_size_bits") a.U.support_size_bits
    b.U.support_size_bits

let strategies =
  [
    ("interp", U.Interp);
    ("cached", U.Cached 4096);
    ("dtb", U.Dtb_strategy Dtb.paper_config);
    (* block translation needs roomier units (see test_core's block_cfg):
       the paper geometry's overflow area drowns on straight-line code *)
    ( "dtb_blocks",
      U.Dtb_blocks
        ({ Dtb.sets = 32; assoc = 4; unit_words = 16; overflow_blocks = 256 }, 8)
    );
    ("dtb_two_level", U.Dtb_two_level (Dtb.paper_config, 256));
    ("psder_static", U.Psder_static);
    ("der", U.Der U.Der_level1);
    ("der_l2", U.Der U.Der_level2);
    ("der_l2_cached", U.Der (U.Der_level2_cached 4096));
  ]

(* -- Golden suites under both backends --------------------------------------- *)

let test_golden_backends () =
  List.iter
    (fun workload ->
      let p = compile workload in
      List.iter
        (fun (sname, strategy) ->
          let d = U.run ~backend:`Decode ~strategy ~kind:Kind.Huffman p in
          let t = U.run ~backend:`Threaded ~strategy ~kind:Kind.Huffman p in
          check_result (workload ^ "/" ^ sname) d t)
        strategies)
    [ "fact_iter"; "fib_rec"; "flat_straightline" ]

(* -- Random programs x strategies (QCheck) ------------------------------------ *)

let qcheck_strategies =
  [
    (U.Interp, Kind.Digram);
    (U.Cached 2048, Kind.Contextual);
    (U.Dtb_strategy Dtb.paper_config, Kind.Huffman);
    (U.Psder_static, Kind.Packed);
    (U.Der U.Der_level1, Kind.Packed);
  ]

(* Same gate as test_core's differential: only programs whose HLR
   reference halts cleanly are machine-compared (a pathological generated
   program — e.g. unbounded recursion — walks the reference interpreter
   off the rails identically under both backends, but noisily). *)
let halts_cleanly ast =
  let r = Uhm_hlr.Env_interp.run ~fuel:150_000 (Uhm_hlr.Check.check_exn ast) in
  r.Uhm_hlr.Env_interp.status = Uhm_hlr.Env_interp.Halted

let prop_backend_differential =
  QCheck.Test.make ~count:25 ~name:"threaded backend == decode (random programs)"
    Gen_program.valid_program (fun ast ->
      (not (halts_cleanly ast))
      ||
      let p = Uhm_compiler.Pipeline.compile ~fuse:true ast in
      List.iter
        (fun (strategy, kind) ->
          let d = U.run ~backend:`Decode ~strategy ~kind p in
          let t = U.run ~backend:`Threaded ~strategy ~kind p in
          check_result (U.strategy_name strategy) d t)
        qcheck_strategies;
      true)

(* -- Sliced execution with random invalidation points ------------------------- *)

(* Two machines over private shared-style DTBs, driven in lockstep by
   identical random slice/invalidation schedules: after each quantum the
   same DTB surgery (flush or targeted invalidation) is applied to both.
   On the threaded machine every drop must retire the compiled closures;
   a stale closure shows up as a cycle or state divergence. *)
let prop_backend_sliced_invalidation =
  QCheck.Test.make ~count:20
    ~name:"threaded == decode under sliced runs with random invalidation"
    QCheck.(pair Gen_program.valid_program small_int)
    (fun (ast, seed) ->
      (not (halts_cleanly ast))
      ||
      let p = Uhm_compiler.Pipeline.compile ~fuse:true ast in
      let encoded = Codec.encode Kind.Huffman p in
      let layout = Layout.default in
      let make backend =
        let dtb =
          Dtb.create_shared ~policy:Dtb.Tagged ~programs:1 Dtb.paper_config
            ~buffer_base:(layout.Layout.dtb_buffer_base + 1)
        in
        let m = U.prepare_dtb_shared ~layout ~backend ~dtb encoded in
        (m, dtb)
      in
      let md, dd = make `Decode in
      let mt, dt = make `Threaded in
      let rng = Random.State.make [| seed; 0x5eed |] in
      let steps = ref 0 in
      let continue = ref true in
      while !continue && !steps < 10_000 do
        incr steps;
        let quantum = 1 + Random.State.int rng 5 in
        let od = Machine.run_dir_quantum md ~quantum in
        let ot = Machine.run_dir_quantum mt ~quantum in
        check_bool "slice outcome" true (od = ot);
        check_int "slice cycles" (Machine.stats md).Machine.cycles
          (Machine.stats mt).Machine.cycles;
        (match od with Machine.Done _ -> continue := false | Machine.Yielded -> ());
        if !continue then
          match Random.State.int rng 6 with
          | 0 ->
              Dtb.flush dd;
              Dtb.flush dt
          | 1 ->
              let tag = Random.State.int rng 256 in
              let rd = Dtb.invalidate dd ~tag in
              let rt = Dtb.invalidate dt ~tag in
              check_bool "invalidate parity" true (rd = rt)
          | _ -> ()
      done;
      Alcotest.(check string)
        "final status" (status_str (Machine.status md))
        (status_str (Machine.status mt));
      Alcotest.(check string) "output" (Machine.output md) (Machine.output mt);
      check_stats "sliced" (Machine.stats md) (Machine.stats mt);
      check_int "dtb hits" (Dtb.hits dd) (Dtb.hits dt);
      check_int "dtb misses" (Dtb.misses dd) (Dtb.misses dt);
      check_int "dtb evictions" (Dtb.evictions dd) (Dtb.evictions dt);
      true)

(* -- Stale-closure regression -------------------------------------------------

   A tag upset leaves the buffer words untouched, so no closures retire;
   the guard-detected recovery ([Dtb.invalidate]) is the moment the entry
   — and its closures — must die.  Pinned at two levels: the DTB drop
   hook's firing discipline, and a machine-level differential where both
   backends suffer the identical corrupt-then-invalidate sequence. *)

let test_corruption_drop_discipline () =
  let config = { Dtb.sets = 8; assoc = 2; unit_words = 4; overflow_blocks = 8 } in
  let dtb = Dtb.create config ~buffer_base:100 in
  let fired = ref [] in
  Dtb.add_drop_hook dtb (fun ~addr ~words -> fired := (addr, words) :: !fired);
  (match Dtb.lookup dtb ~tag:7 with `Hit _ -> () | `Miss -> ());
  Dtb.begin_translation dtb ~tag:7;
  ignore (Dtb.emit dtb 1);
  ignore (Dtb.emit dtb 2);
  ignore (Dtb.end_translation dtb);
  check_int "install fires nothing" 0 (List.length !fired);
  (* flip a bit above the set-index field: the corrupted key then hashes
     to the entry's own set, i.e. a lookup of it falsely hits — the case
     the guards catch and recover via [invalidate] *)
  (match Dtb.corrupt_resident_tag dtb ~pick:0 ~flip:10 with
  | None -> Alcotest.fail "one entry is resident; corruption must land"
  | Some (_old_key, new_key) ->
      check_int "tag upset leaves words valid: no drop" 0 (List.length !fired);
      (* the guard path detects the bogus hit and invalidates the key *)
      check_bool "invalidate drops the corrupted entry" true
        (Dtb.invalidate dtb ~tag:new_key);
      check_bool "drop hook fired for the entry's unit" true
        (List.exists (fun (_, words) -> words = config.Dtb.unit_words) !fired))

let test_corruption_differential () =
  let p = compile "fib_rec" in
  let encoded = Codec.encode Kind.Huffman p in
  let layout = Layout.default in
  let make backend =
    let dtb =
      Dtb.create_shared ~policy:Dtb.Tagged ~programs:1 Dtb.paper_config
        ~buffer_base:(layout.Layout.dtb_buffer_base + 1)
    in
    let m = U.prepare_dtb_shared ~layout ~backend ~dtb encoded in
    (m, dtb)
  in
  let md, dd = make `Decode in
  let mt, dt = make `Threaded in
  (* warm the buffer so translations (and closures) exist *)
  ignore (Machine.run_dir_quantum md ~quantum:40);
  ignore (Machine.run_dir_quantum mt ~quantum:40);
  (* identical deterministic corruption on both, then the guard recovery *)
  (match (Dtb.corrupt_resident_tag dd ~pick:3 ~flip:2,
          Dtb.corrupt_resident_tag dt ~pick:3 ~flip:2) with
  | Some (ok1, nk1), Some (ok2, nk2) ->
      check_int "same victim key" ok1 ok2;
      check_int "same corrupted key" nk1 nk2;
      check_bool "invalidate parity" true
        (Dtb.invalidate dd ~tag:nk1 = Dtb.invalidate dt ~tag:nk2)
  | _ -> Alcotest.fail "warmed DTB must have resident entries");
  let rec drain m =
    match Machine.run_dir_quantum m ~quantum:64 with
    | Machine.Yielded -> drain m
    | Machine.Done s -> s
  in
  let sd = drain md and st = drain mt in
  Alcotest.(check string) "final status" (status_str sd) (status_str st);
  Alcotest.(check string) "output" (Machine.output md) (Machine.output mt);
  check_stats "post-corruption" (Machine.stats md) (Machine.stats mt)

(* -- Shared-DTB policies (Mix) ------------------------------------------------ *)

let check_trace label (a : Trace.t) (b : Trace.t) =
  check_int (label ^ ": recorded") (Trace.recorded a) (Trace.recorded b);
  check_bool (label ^ ": events") true (Trace.events a = Trace.events b)

let test_mix_policies_backends () =
  let mix = [ encode "fact_iter"; encode "fib_rec"; encode "gcd" ] in
  List.iter
    (fun policy ->
      let run backend =
        Mix.run_encoded ~backend ~policy ~quantum:16 ~config:Dtb.paper_config mix
      in
      let d = run `Decode and t = run `Threaded in
      let label = Dtb.policy_name policy in
      check_int (label ^ ": total cycles") d.Mix.mr_total_cycles
        t.Mix.mr_total_cycles;
      check_int (label ^ ": switches") d.Mix.mr_switches t.Mix.mr_switches;
      check_int (label ^ ": flushes") d.Mix.mr_flushes t.Mix.mr_flushes;
      check_int (label ^ ": evictions") d.Mix.mr_evictions t.Mix.mr_evictions;
      check_bool (label ^ ": hit ratio") true
        (d.Mix.mr_hit_ratio = t.Mix.mr_hit_ratio);
      List.iter2
        (fun (pd : Mix.program_result) (pt : Mix.program_result) ->
          check_bool (label ^ "/" ^ pd.Mix.pr_name ^ ": program result") true
            (pd = pt))
        d.Mix.mr_programs t.Mix.mr_programs;
      check_trace label d.Mix.mr_trace t.Mix.mr_trace)
    [ Dtb.Flush_on_switch; Dtb.Tagged; Dtb.Partitioned ]

(* -- Fault driver ------------------------------------------------------------- *)

let check_resilient label (d : Resilient.result) (t : Resilient.result) =
  check_int (label ^ ": total cycles") d.Resilient.rr_total_cycles
    t.Resilient.rr_total_cycles;
  check_int (label ^ ": switches") d.Resilient.rr_switches
    t.Resilient.rr_switches;
  check_int (label ^ ": flushes") d.Resilient.rr_flushes t.Resilient.rr_flushes;
  List.iter2
    (fun (pd : Resilient.program_report) (pt : Resilient.program_report) ->
      check_bool (label ^ "/" ^ pd.Resilient.pr_name ^ ": report") true (pd = pt))
    d.Resilient.rr_programs t.Resilient.rr_programs;
  check_trace label d.Resilient.rr_trace t.Resilient.rr_trace

let test_fault_zero_backends () =
  let mix = [ encode "fact_iter"; encode "fib_rec" ] in
  let run backend =
    Resilient.run_encoded ~backend ~policy:Dtb.Tagged ~quantum:16
      ~config:Dtb.paper_config ~fconfig:Resilient.zero mix
  in
  check_resilient "zero-fault" (run `Decode) (run `Threaded)

(* The end-to-end stale-closure pin: injected PSDER-word faults flip
   buffer words; guards detect the checksum mismatch on the next hit and
   invalidate the entry.  If the threaded backend kept a closure across
   either the word flip or the invalidation, its cycles and state would
   diverge from decode's. *)
let test_fault_injected_backends () =
  let mix = [ encode "fib_rec"; encode "gcd" ] in
  let spec =
    { Injector.seed = 1337;
      rates = [ (Injector.Psder_word, 0.02); (Injector.Dtb_tag, 0.01) ];
      explicit = [] }
  in
  let run backend =
    Resilient.run_encoded ~backend ~policy:Dtb.Tagged ~quantum:16
      ~config:Dtb.paper_config ~fconfig:(Resilient.protected spec) mix
  in
  check_resilient "injected-fault" (run `Decode) (run `Threaded)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  ( "backend",
    [
      Alcotest.test_case "golden suites, both backends" `Slow
        test_golden_backends;
      Alcotest.test_case "corruption drop discipline" `Quick
        test_corruption_drop_discipline;
      Alcotest.test_case "corrupt+invalidate differential" `Quick
        test_corruption_differential;
      Alcotest.test_case "mix policies, both backends" `Slow
        test_mix_policies_backends;
      Alcotest.test_case "zero-fault driver, both backends" `Slow
        test_fault_zero_backends;
      Alcotest.test_case "injected-fault driver, both backends" `Slow
        test_fault_injected_backends;
      qcheck prop_backend_differential;
      qcheck prop_backend_sliced_invalidation;
    ] )
