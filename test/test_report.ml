(* Tests for the report substrate. *)

module Table = Uhm_report.Table
module Csv = Uhm_report.Csv

let check_string = Alcotest.(check string)

let test_table_layout () =
  let t =
    Table.create
      ~columns:[ ("name", Table.Left); ("n", Table.Right); ("c", Table.Center) ]
      ()
  in
  Table.add_row t [ "a"; "1"; "x" ];
  Table.add_row t [ "long-name"; "12345"; "yy" ];
  (* headers are padded with their column's alignment *)
  check_string "render"
    "name           n  c \n\
     ---------  -----  --\n\
     a              1  x \n\
     long-name  12345  yy\n"
    (Table.render t)

let test_table_title_and_rule () =
  let t = Table.create ~title:"T" ~columns:[ ("h", Table.Left) ] () in
  Table.add_row t [ "v" ];
  Table.add_rule t;
  Table.add_row t [ "w" ];
  check_string "render" "T\n=\nh\n-\nv\n-\nw\n" (Table.render t)

let test_table_arity_check () =
  let t = Table.create ~columns:[ ("a", Table.Left); ("b", Table.Left) ] () in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table.add_row: expected 2 cells, got 1") (fun () ->
      Table.add_row t [ "only one" ])

let test_cells () =
  check_string "float" "3.14" (Table.cell_float ~decimals:2 3.14159);
  check_string "int" "42" (Table.cell_int 42);
  check_string "pct" "12.5%" (Table.cell_pct ~decimals:1 0.125);
  check_string "bytes small" "512 B" (Table.cell_bytes 512);
  check_string "bytes KiB" "2.0 KiB" (Table.cell_bytes 2048);
  check_string "bytes MiB" "3.00 MiB" (Table.cell_bytes (3 * 1024 * 1024))

let test_csv_escaping () =
  check_string "plain" "abc" (Csv.escape_field "abc");
  check_string "comma" "\"a,b\"" (Csv.escape_field "a,b");
  check_string "quote" "\"say \"\"hi\"\"\"" (Csv.escape_field "say \"hi\"");
  check_string "newline" "\"a\nb\"" (Csv.escape_field "a\nb")

let test_csv_render () =
  check_string "render" "h1,h2\n1,\"x,y\"\n"
    (Csv.render ~header:[ "h1"; "h2" ] [ [ "1"; "x,y" ] ])

let suite =
  ( "report",
    [
      Alcotest.test_case "table layout" `Quick test_table_layout;
      Alcotest.test_case "table title and rules" `Quick test_table_title_and_rule;
      Alcotest.test_case "table arity" `Quick test_table_arity_check;
      Alcotest.test_case "cell formatting" `Quick test_cells;
      Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
      Alcotest.test_case "csv rendering" `Quick test_csv_render;
    ] )
