let () =
  Alcotest.run "uhm"
    [
      Test_bitstream.suite;
      Test_huffman.suite;
      Test_hlr.suite;
      Test_dir.suite;
      Test_compiler.suite;
      Test_ftn.suite;
      Test_encoding.suite;
      Test_machine.suite;
      Test_psder.suite;
      Test_core.suite;
      Test_sweep.suite;
      Test_campaign.suite;
      Test_golden.suite;
      Test_resume.suite;
      Test_sched.suite;
      Test_serve.suite;
      Test_chaos.suite;
      Test_fault.suite;
      Test_backend.suite;
      Test_workload.suite;
      Test_report.suite;
    ]
