(* Tests for the DIR instruction set and its reference interpreter, using
   hand-assembled programs. *)

open Uhm_dir

let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

let i = Isa.instr

(* A single-contour program with [locals] local slots. *)
let prog ?(name = "test") ?(locals = 0) code =
  Program.validate_exn
    (Program.make ~name
       ~code:(Array.of_list code)
       ~entry:0
       ~contours:
         [|
           {
             Program.id = 0; name = "<main>"; depth = 0; n_args = 0;
             n_locals = locals; max_offset = max 0 (locals - 1);
           };
         |] ())

let run_ok p =
  let r = Interp.run p in
  (match r.Interp.status with
  | Interp.Halted -> ()
  | Interp.Trapped m -> Alcotest.fail ("trapped: " ^ m)
  | Interp.Out_of_fuel -> Alcotest.fail "out of fuel");
  r

let test_push_print () =
  let p = prog [ i ~a:42 Isa.Lit; i Isa.Print; i Isa.Halt ] in
  check_string "output" "42\n" (run_ok p).Interp.output

let test_arith () =
  let p =
    prog
      [
        i ~a:10 Isa.Lit; i ~a:4 Isa.Lit; i Isa.Sub; i Isa.Print;
        i ~a:7 Isa.Lit; i ~a:(-3) Isa.Lit; i Isa.Mul; i Isa.Print;
        i ~a:17 Isa.Lit; i ~a:5 Isa.Lit; i Isa.Div; i Isa.Print;
        i ~a:17 Isa.Lit; i ~a:5 Isa.Lit; i Isa.Mod; i Isa.Print;
        i ~a:9 Isa.Lit; i Isa.Neg; i Isa.Print;
        i Isa.Halt;
      ]
  in
  check_string "arith" "6\n-21\n3\n2\n-9\n" (run_ok p).Interp.output

let test_comparisons () =
  let p =
    prog
      [
        i ~a:1 Isa.Lit; i ~a:2 Isa.Lit; i Isa.Lt; i Isa.Print;
        i ~a:2 Isa.Lit; i ~a:2 Isa.Lit; i Isa.Le; i Isa.Print;
        i ~a:1 Isa.Lit; i ~a:2 Isa.Lit; i Isa.Gt; i Isa.Print;
        i ~a:3 Isa.Lit; i ~a:3 Isa.Lit; i Isa.Eq; i Isa.Print;
        i ~a:3 Isa.Lit; i ~a:4 Isa.Lit; i Isa.Ne; i Isa.Print;
        i ~a:0 Isa.Lit; i Isa.Not; i Isa.Print;
        i ~a:5 Isa.Lit; i ~a:0 Isa.Lit; i Isa.And; i Isa.Print;
        i ~a:5 Isa.Lit; i ~a:0 Isa.Lit; i Isa.Or; i Isa.Print;
        i Isa.Halt;
      ]
  in
  check_string "cmp" "1\n1\n0\n1\n1\n1\n0\n1\n" (run_ok p).Interp.output

let test_stack_ops () =
  let p =
    prog
      [
        i ~a:1 Isa.Lit; i ~a:2 Isa.Lit; i Isa.Swap; i Isa.Print; i Isa.Print;
        i ~a:7 Isa.Lit; i Isa.Dup; i Isa.Print; i Isa.Print;
        i ~a:9 Isa.Lit; i ~a:8 Isa.Lit; i Isa.Drop; i Isa.Print;
        i Isa.Halt;
      ]
  in
  check_string "stack" "1\n2\n7\n7\n9\n" (run_ok p).Interp.output

let test_locals_load_store () =
  let p =
    prog ~locals:2
      [
        i ~a:5 Isa.Lit; i ~a:0 ~b:0 Isa.Store;
        i ~a:0 ~b:0 Isa.Load; i ~a:1 Isa.Litadd; i ~a:0 ~b:1 Isa.Store;
        i ~a:0 ~b:1 Isa.Load; i Isa.Print;
        i Isa.Halt;
      ]
  in
  check_string "locals" "6\n" (run_ok p).Interp.output

let test_loop_with_jumps () =
  (* print 0..3 using jz/jump *)
  let p =
    prog ~locals:1
      [
        (* 0 *) i ~a:0 Isa.Lit; i ~a:0 ~b:0 Isa.Store;
        (* 2 *) i ~a:0 ~b:0 Isa.Load; i ~a:4 Isa.Lit; i Isa.Lt;
        (* 5 *) i ~a:11 Isa.Jz;
        (* 6 *) i ~a:0 ~b:0 Isa.Load; i Isa.Print;
        (* 8 *) i ~a:0 ~b:0 Isa.Incvar;
        (* 9 *) i ~a:2 Isa.Jump;
        (* 10 *) i Isa.Halt;  (* unreachable *)
        (* 11 *) i Isa.Halt;
      ]
  in
  check_string "loop" "0\n1\n2\n3\n" (run_ok p).Interp.output

let test_fused_cjump () =
  let p =
    prog
      [
        (* 0 *) i ~a:3 Isa.Lit; i ~a:5 Isa.Lit; i ~a:5 Isa.Cjlt;
        (* 3 *) i ~a:111 Isa.Lit; i Isa.Print;
        (* 5 *) i ~a:3 Isa.Lit; i ~a:3 Isa.Lit; i ~a:10 Isa.Cjlt;
        (* 8 *) i ~a:222 Isa.Lit; i Isa.Print;
        (* 10 *) i Isa.Halt;
      ]
  in
  (* 3 < 5 so the first Cjlt falls through; 3 < 3 is false so the second jumps *)
  check_string "cjlt" "111\n" (run_ok p).Interp.output

let test_indirect_and_index () =
  let p =
    prog ~locals:4
      [
        (* a[0..2] at offsets 0..2, idx var at 3 *)
        i ~a:10 Isa.Lit; i ~a:0 ~b:0 Isa.Store;
        i ~a:20 Isa.Lit; i ~a:0 ~b:1 Isa.Store;
        i ~a:30 Isa.Lit; i ~a:0 ~b:2 Isa.Store;
        i ~a:2 Isa.Lit; i ~a:0 ~b:3 Isa.Store;
        i ~a:0 ~b:0 Isa.Addr; i ~a:0 ~b:3 Isa.Load; i Isa.Index; i Isa.Loadi;
        i Isa.Print;
        (* a[1] := 99 via storei *)
        i ~a:0 ~b:0 Isa.Addr; i ~a:1 Isa.Lit; i Isa.Index;
        i ~a:99 Isa.Lit; i Isa.Storei;
        i ~a:0 ~b:1 Isa.Load; i Isa.Print;
        i Isa.Halt;
      ]
  in
  check_string "indexing" "30\n99\n" (run_ok p).Interp.output

(* Procedure call: double(x) = 2 * x, called with 21. *)
let call_program =
  let code =
    [
      (* 0: procedure double: enter 1 arg, 0 locals, contour 1 *)
      i ~a:1 ~b:0 ~c:1 Isa.Enter;
      (* 1 *) i ~a:2 Isa.Lit;
      (* 2 *) i ~a:0 ~b:0 Isa.Load;
      (* 3 *) i Isa.Mul;
      (* 4 *) i Isa.Ret;
      (* 5: main *)
      i ~a:21 Isa.Lit;
      (* 6 *) i ~a:0 ~b:0 Isa.Call;
      (* 7 *) i Isa.Print;
      (* 8 *) i Isa.Halt;
    ]
  in
  Program.validate_exn
    (Program.make ~name:"call" ~code:(Array.of_list code) ~entry:5
       ~contours:
         [|
           { Program.id = 0; name = "<main>"; depth = 0; n_args = 0;
             n_locals = 0; max_offset = 0 };
           { Program.id = 1; name = "double"; depth = 1; n_args = 1;
             n_locals = 0; max_offset = 0 };
         |] ())

let test_call () =
  check_string "call/ret" "42\n" (run_ok call_program).Interp.output

(* Recursion with static links: sum(n) = n + sum(n-1), sum(0) = 0. *)
let recursion_program =
  let code =
    [
      (* 0: sum *)
      i ~a:1 ~b:0 ~c:1 Isa.Enter;
      (* 1 *) i ~a:0 ~b:0 Isa.Load;
      (* 2 *) i ~a:0 Isa.Lit;
      (* 3 *) i ~a:6 Isa.Cjle;   (* if n > 0 go to 6 *)
      (* 4 *) i ~a:0 Isa.Lit;
      (* 5 *) i Isa.Ret;
      (* 6 *) i ~a:0 ~b:0 Isa.Load;
      (* 7 *) i ~a:0 ~b:0 Isa.Load;
      (* 8 *) i ~a:1 Isa.Litsub;
      (* 9 *) i ~a:0 ~b:1 Isa.Call;  (* recursive call: 1 hop for static link *)
      (* 10 *) i Isa.Add;
      (* 11 *) i Isa.Ret;
      (* 12: main *)
      i ~a:100 Isa.Lit;
      (* 13 *) i ~a:0 ~b:0 Isa.Call;
      (* 14 *) i Isa.Print;
      (* 15 *) i Isa.Halt;
    ]
  in
  Program.validate_exn
    (Program.make ~name:"sum" ~code:(Array.of_list code) ~entry:12
       ~contours:
         [|
           { Program.id = 0; name = "<main>"; depth = 0; n_args = 0;
             n_locals = 0; max_offset = 0 };
           { Program.id = 1; name = "sum"; depth = 1; n_args = 1;
             n_locals = 0; max_offset = 0 };
         |] ())

let test_recursion () =
  check_string "recursive sum" "5050\n" (run_ok recursion_program).Interp.output

let test_traps () =
  let trapped p expected =
    match (Interp.run p).Interp.status with
    | Interp.Trapped msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions %S" msg expected)
          true
          (Astring_contains.contains msg expected)
    | _ -> Alcotest.fail "expected trap"
  in
  trapped (prog [ i ~a:1 Isa.Lit; i ~a:0 Isa.Lit; i Isa.Div; i Isa.Halt ]) "zero";
  trapped (prog [ i Isa.Add; i Isa.Halt ]) "underflow";
  trapped (prog [ i ~a:999 Isa.Lit; i Isa.Loadi; i Isa.Halt ]) "range";
  trapped (prog [ i ~a:300 Isa.Lit; i Isa.Printc; i Isa.Halt ]) "printc"

let test_fuel () =
  let p = prog [ i ~a:0 Isa.Jump; i Isa.Halt ] in
  match (Interp.run ~fuel:1000 p).Interp.status with
  | Interp.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_superop_equivalence () =
  (* each superop must equal its expansion *)
  let pairs =
    [
      ([ i ~a:10 Isa.Lit; i ~a:3 Isa.Litadd ], [ i ~a:10 Isa.Lit; i ~a:3 Isa.Lit; i Isa.Add ]);
      ([ i ~a:10 Isa.Lit; i ~a:3 Isa.Litsub ], [ i ~a:10 Isa.Lit; i ~a:3 Isa.Lit; i Isa.Sub ]);
      ([ i ~a:10 Isa.Lit; i ~a:3 Isa.Litmul ], [ i ~a:10 Isa.Lit; i ~a:3 Isa.Lit; i Isa.Mul ]);
    ]
  in
  List.iter
    (fun (fused, base) ->
      let wrap body = prog (body @ [ i Isa.Print; i Isa.Halt ]) in
      check_string "superop = expansion"
        (run_ok (wrap base)).Interp.output
        (run_ok (wrap fused)).Interp.output)
    pairs

let test_loadadd_family () =
  let p =
    prog ~locals:1
      [
        i ~a:7 Isa.Lit; i ~a:0 ~b:0 Isa.Store;
        i ~a:100 Isa.Lit; i ~a:0 ~b:0 Isa.Loadadd; i Isa.Print;
        i ~a:100 Isa.Lit; i ~a:0 ~b:0 Isa.Loadsub; i Isa.Print;
        i ~a:100 Isa.Lit; i ~a:0 ~b:0 Isa.Loadmul; i Isa.Print;
        i ~a:0 ~b:0 Isa.Decvar; i ~a:0 ~b:0 Isa.Load; i Isa.Print;
        i Isa.Halt;
      ]
  in
  check_string "loadadd family" "107\n93\n700\n6\n" (run_ok p).Interp.output

let test_validate_rejects () =
  let expect_invalid code =
    let p =
      Program.make ~name:"bad" ~code:(Array.of_list code) ~entry:0
        ~contours:
          [|
            { Program.id = 0; name = "<main>"; depth = 0; n_args = 0;
              n_locals = 0; max_offset = 0 };
          |]
        ()
    in
    match Program.validate p with
    | Ok () -> Alcotest.fail "expected validation failure"
    | Error _ -> ()
  in
  expect_invalid [ i ~a:99 Isa.Jump; i Isa.Halt ];
  expect_invalid [ i ~a:0 Isa.Lit ];
  expect_invalid [ i ~a:1 ~b:0 Isa.Call; i Isa.Halt ]

let test_opcode_counts () =
  let p = prog [ i ~a:1 Isa.Lit; i ~a:2 Isa.Lit; i Isa.Add; i Isa.Print; i Isa.Halt ] in
  let r = run_ok p in
  check_int "steps" 5 r.Interp.steps;
  check_int "lit count" 2 r.Interp.opcode_counts.(Isa.opcode_to_enum Isa.Lit);
  check_int "add count" 1 r.Interp.opcode_counts.(Isa.opcode_to_enum Isa.Add)

let test_static_stats () =
  let p =
    prog ~locals:1
      [
        i ~a:5 Isa.Lit; i ~a:0 ~b:0 Isa.Store; i ~a:4 Isa.Jz;
        i ~a:0 Isa.Jump; i Isa.Halt;
      ]
  in
  let s = Static_stats.of_program p in
  check_int "instructions" 5 s.Static_stats.n_instructions;
  check_int "lit static count" 1 s.Static_stats.opcode_counts.(Isa.opcode_to_enum Isa.Lit);
  check_int "max target" 4 (Static_stats.max_target s);
  check_int "max offset" 0 (Static_stats.max_offset s)

let test_listing () =
  let text = Program.listing call_program in
  Alcotest.(check bool) "mentions call" true (Astring_contains.contains text "call");
  Alcotest.(check bool) "marks entry" true (Astring_contains.contains text "*")

let suite =
  ( "dir",
    [
      Alcotest.test_case "push/print" `Quick test_push_print;
      Alcotest.test_case "arithmetic" `Quick test_arith;
      Alcotest.test_case "comparisons and logic" `Quick test_comparisons;
      Alcotest.test_case "stack ops" `Quick test_stack_ops;
      Alcotest.test_case "locals" `Quick test_locals_load_store;
      Alcotest.test_case "loop with jumps" `Quick test_loop_with_jumps;
      Alcotest.test_case "fused conditional jump" `Quick test_fused_cjump;
      Alcotest.test_case "indexing and indirection" `Quick
        test_indirect_and_index;
      Alcotest.test_case "procedure call" `Quick test_call;
      Alcotest.test_case "recursion via static links" `Quick test_recursion;
      Alcotest.test_case "traps" `Quick test_traps;
      Alcotest.test_case "fuel" `Quick test_fuel;
      Alcotest.test_case "superop equivalence" `Quick test_superop_equivalence;
      Alcotest.test_case "loadadd family" `Quick test_loadadd_family;
      Alcotest.test_case "validation rejects bad programs" `Quick
        test_validate_rejects;
      Alcotest.test_case "dynamic counts" `Quick test_opcode_counts;
      Alcotest.test_case "static stats" `Quick test_static_stats;
      Alcotest.test_case "listing" `Quick test_listing;
    ] )
