(* Tests for the resilience subsystem: injector determinism, guard
   checksums, DTB corruption/invalidation hooks, checkpoint rollback, the
   zero-fault differential against Mix (cycle- and trace-identical), the
   QCheck recovery invariant, directed triggers for each recovery
   mechanism (guard detection, retry backoff, checkpoint rollback,
   watchdog downgrade), the campaign grid, and the runaway-program fuel
   guard. *)

module Dtb = Uhm_core.Dtb
module U = Uhm_core.Uhm
module Machine = Uhm_machine.Machine
module Kind = Uhm_encoding.Kind
module Codec = Uhm_encoding.Codec
module Suite = Uhm_workload.Suite
module Trace = Uhm_sched.Trace
module Mix = Uhm_sched.Mix
module Injector = Uhm_fault.Injector
module Guard = Uhm_fault.Guard
module Resilient = Uhm_fault.Resilient
module Experiment = Uhm_fault.Experiment

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let compile name = Suite.compile (Suite.find name)
let encode name = (name, Codec.encode Kind.Huffman (compile name))

(* -- Injector: seeded determinism -------------------------------------------- *)

(* Drain a stream by polling [due] at a stride, as the driver does with
   the monotonic INTERP count. *)
let collect spec ~asid ~upto ~stride =
  let t = Injector.create spec ~asid in
  let rec go acc step =
    if step > upto then List.rev acc
    else go (List.rev_append (Injector.due t ~step) acc) (step + stride)
  in
  go [] 0

let test_injector_determinism () =
  let spec =
    {
      Injector.seed = 42;
      rates = [ (Injector.Psder_word, 0.01); (Injector.Mem_word, 0.003) ];
      explicit = [];
    }
  in
  let a = collect spec ~asid:0 ~upto:30_000 ~stride:500 in
  let b = collect spec ~asid:0 ~upto:30_000 ~stride:500 in
  check_bool "same spec and asid: identical schedules" true (a = b);
  check_bool "the schedule actually fires" true (List.length a > 10);
  (* polling granularity must not change what fires, only when it is seen *)
  let c = collect spec ~asid:0 ~upto:30_000 ~stride:7 in
  check_bool "stride-independent schedule" true (a = c);
  let other = collect spec ~asid:1 ~upto:30_000 ~stride:500 in
  check_bool "different asid: different schedule" true (a <> other);
  (* steps are non-decreasing and each fault is delivered once *)
  let steps = List.map (fun f -> f.Injector.f_step) a in
  check_bool "firing order is by step" true
    (List.for_all2 ( <= ) steps (List.tl steps @ [ max_int ]))

let test_injector_zero_rate_reserves_split () =
  let base cls_rate =
    {
      Injector.seed = 7;
      rates = [ (Injector.Dtb_tag, cls_rate); (Injector.Psder_word, 0.01) ];
      explicit = [];
    }
  in
  let psder spec =
    List.filter
      (fun f -> f.Injector.f_class = Injector.Psder_word)
      (collect spec ~asid:0 ~upto:20_000 ~stride:100)
  in
  check_bool
    "toggling a class between 0 and a positive rate leaves the others' \
     schedules untouched"
    true
    (psder (base 0.) = psder (base 0.5))

let test_injector_explicit () =
  let spec =
    {
      Injector.seed = 1;
      rates = [];
      explicit =
        [ (0, 50, Injector.Translator); (1, 10, Injector.Dtb_tag);
          (0, 50, Injector.Mem_word) ];
    }
  in
  let t0 = Injector.create spec ~asid:0 in
  check_int "nothing due before the stamp" 0
    (List.length (Injector.due t0 ~step:49));
  let fired = Injector.due t0 ~step:60 in
  check_int "both asid-0 events fire at their stamp" 2 (List.length fired);
  List.iter
    (fun f ->
      check_int "scheduled step is reported" 50 f.Injector.f_step;
      check_bool "asid 1's event never leaks into asid 0's stream" true
        (f.Injector.f_class <> Injector.Dtb_tag))
    fired;
  check_int "each event is consumed exactly once" 0
    (List.length (Injector.due t0 ~step:1_000_000));
  let t1 = Injector.create spec ~asid:1 in
  match Injector.due t1 ~step:10 with
  | [ f ] ->
      check_bool "asid 1 sees its event" true
        (f.Injector.f_class = Injector.Dtb_tag)
  | l -> Alcotest.failf "asid 1: expected one event, got %d" (List.length l)

(* -- Guards: checksum detection ---------------------------------------------- *)

let test_guard_checksum () =
  let g = Guard.create () in
  let buf = Hashtbl.create 8 in
  let poke addr word = Hashtbl.replace buf addr word in
  let peek addr = try Hashtbl.find buf addr with Not_found -> 0 in
  let words = [ (100, 0x1234); (101, 0x0FF0); (112, 0x8001) ] in
  Guard.begin_install g;
  List.iter
    (fun (addr, word) ->
      poke addr word;
      Guard.on_emit g ~addr ~word)
    words;
  Guard.finish_install g ~dir_addr:7 ~start_addr:100;
  check_int "one guarded entry" 1 (Guard.guarded g);
  (match Guard.check g ~peek ~dir_addr:7 ~start_addr:100 with
  | `Ok n -> check_int "checksum covers every emitted word" 3 n
  | _ -> Alcotest.fail "clean entry must verify");
  (* every single-bit flip of every covered word must be caught *)
  List.iter
    (fun (addr, word) ->
      for bit = 0 to 15 do
        poke addr (word lxor (1 lsl bit));
        (match Guard.check g ~peek ~dir_addr:7 ~start_addr:100 with
        | `Corrupt _ -> ()
        | _ -> Alcotest.failf "flip of bit %d at %d undetected" bit addr);
        poke addr word
      done)
    words;
  (match Guard.check g ~peek ~dir_addr:8 ~start_addr:100 with
  | `Mismatch -> ()
  | _ -> Alcotest.fail "wrong DIR address must be a mismatch");
  (match Guard.check g ~peek ~dir_addr:7 ~start_addr:999 with
  | `Unguarded -> ()
  | _ -> Alcotest.fail "unknown entry must be unguarded");
  Guard.drop g ~start_addr:100;
  (match Guard.check g ~peek ~dir_addr:7 ~start_addr:100 with
  | `Unguarded -> ()
  | _ -> Alcotest.fail "dropped entry must be unguarded");
  (* the translator-fault path: an abandoned install records nothing *)
  Guard.begin_install g;
  Guard.on_emit g ~addr:200 ~word:1;
  Guard.abandon g;
  check_int "abandoned install leaves no record" 0 (Guard.guarded g)

(* -- DTB resilience hooks ----------------------------------------------------- *)

let small_config = { Dtb.sets = 8; assoc = 2; unit_words = 4; overflow_blocks = 16 }

let install dtb ~tag =
  Dtb.begin_translation dtb ~tag;
  ignore (Dtb.emit dtb 1);
  ignore (Dtb.emit dtb 2);
  ignore (Dtb.end_translation dtb)

let test_dtb_corrupt_and_invalidate () =
  let dtb = Dtb.create small_config ~buffer_base:0 in
  check_bool "nothing resident: corruption has no target" true
    (Dtb.corrupt_resident_tag dtb ~pick:0 ~flip:0 = None);
  install dtb ~tag:42;
  (match Dtb.lookup dtb ~tag:42 with
  | `Hit _ -> ()
  | `Miss -> Alcotest.fail "freshly installed tag must hit");
  (match Dtb.corrupt_resident_tag dtb ~pick:3 ~flip:7 with
  | Some (old_key, new_key) ->
      check_bool "corruption flips exactly one bit" true
        (old_key <> new_key && old_key lxor new_key land (old_key lxor new_key - 1) >= 0)
  | None -> Alcotest.fail "a resident entry must be corruptible");
  (match Dtb.lookup dtb ~tag:42 with
  | `Miss -> ()
  | `Hit _ ->
      Alcotest.fail
        "the original tag must miss after corruption (incl. the last cache)");
  (* targeted invalidation: the recovery path *)
  let dtb2 = Dtb.create small_config ~buffer_base:0 in
  install dtb2 ~tag:7;
  check_bool "invalidate drops the entry" true (Dtb.invalidate dtb2 ~tag:7);
  (match Dtb.lookup dtb2 ~tag:7 with
  | `Miss -> ()
  | `Hit _ -> Alcotest.fail "invalidated tag must miss (incl. the last cache)");
  check_bool "second invalidate finds nothing" false (Dtb.invalidate dtb2 ~tag:7);
  check_int "buffer empty again" 0 (Dtb.resident_entries dtb2)

(* Aborting an in-progress install (the recovery path when a machine dies
   mid-translation) must drop the half-installed entry, return its
   overflow chain, and leave the directory closed for flush/invalidate. *)
let test_dtb_abort_translation () =
  let dtb = Dtb.create small_config ~buffer_base:0 in
  (match Dtb.abort_translation dtb with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "abort with no open translation must raise");
  install dtb ~tag:3;
  let allocs0 = Dtb.overflow_allocations dtb in
  Dtb.begin_translation dtb ~tag:11;
  for i = 1 to 5 do
    ignore (Dtb.emit dtb i)
  done;
  check_bool "the long install chained an overflow block" true
    (Dtb.overflow_allocations dtb > allocs0);
  Dtb.abort_translation dtb;
  (match Dtb.lookup dtb ~tag:11 with
  | `Miss -> ()
  | `Hit _ -> Alcotest.fail "aborted tag must miss (incl. the last cache)");
  (match Dtb.lookup dtb ~tag:3 with
  | `Hit _ -> ()
  | `Miss -> Alcotest.fail "an unrelated resident entry must survive the abort");
  check_int "only the unrelated entry stays resident" 1
    (Dtb.resident_entries dtb);
  (* the aborted chain is back on the free list: a translation claiming
     every overflow block still fits *)
  Dtb.begin_translation dtb ~tag:11;
  for i = 1 to 3 + (2 * small_config.Dtb.overflow_blocks) do
    ignore (Dtb.emit dtb i)
  done;
  ignore (Dtb.end_translation dtb);
  (* and the directory is quiescent again: flush does not refuse *)
  Dtb.flush dtb;
  check_int "flush after an abort leaves nothing resident" 0
    (Dtb.resident_entries dtb)

(* -- Checkpoint / restore roundtrip ------------------------------------------- *)

let test_checkpoint_roundtrip () =
  let _, encoded = encode "fact_iter" in
  let m = U.prepare_interp encoded in
  (match Machine.run_for m ~budget:20_000 with
  | Machine.Yielded -> ()
  | Machine.Done _ -> Alcotest.fail "fact_iter must outlive the warmup budget");
  let ck = Machine.checkpoint m in
  check_bool "checkpoint captures written pages" true
    (Machine.checkpoint_pages ck > 0);
  let snap0 = Machine.snapshot m in
  let out0 = Machine.output m in
  ignore (Machine.run m);
  let final_out = Machine.output m in
  check_bool "the run kept writing after the checkpoint" true
    (String.length final_out > String.length out0);
  Machine.restore m ck;
  let snap1 = Machine.snapshot m in
  check_bool "pc restored" true (snap0.Machine.snap_pc = snap1.Machine.snap_pc);
  check_bool "registers restored" true
    (snap0.Machine.snap_regs = snap1.Machine.snap_regs);
  check_bool "operand stack restored" true
    (snap0.Machine.snap_op_stack = snap1.Machine.snap_op_stack);
  check_bool "return stack restored" true
    (snap0.Machine.snap_ret_stack = snap1.Machine.snap_ret_stack);
  check_string "output truncated to the checkpoint" out0 (Machine.output m);
  ignore (Machine.run m);
  check_string "replay reproduces the final output" final_out (Machine.output m)

(* -- The zero-fault differential: byte-identical to Mix ------------------------ *)

let diff_mix = [ "fact_iter"; "gcd"; "flat_straightline" ]

let test_zero_fault_differential () =
  let programs = List.map encode diff_mix in
  List.iter
    (fun policy ->
      let mix =
        Mix.run_encoded ~trace_capacity:65536 ~policy ~quantum:64
          ~config:Dtb.paper_config programs
      in
      let res =
        Resilient.run_encoded ~trace_capacity:65536 ~policy ~quantum:64
          ~config:Dtb.paper_config ~fconfig:Resilient.zero programs
      in
      let pn = Dtb.policy_name policy in
      check_int (pn ^ ": total cycles") mix.Mix.mr_total_cycles
        res.Resilient.rr_total_cycles;
      check_int (pn ^ ": switches") mix.Mix.mr_switches
        res.Resilient.rr_switches;
      check_int (pn ^ ": flushes") mix.Mix.mr_flushes res.Resilient.rr_flushes;
      List.iter2
        (fun (a : Mix.program_result) (b : Resilient.program_report) ->
          check_string (pn ^ ": name") a.Mix.pr_name b.Resilient.pr_name;
          check_bool (pn ^ ": status") true
            (a.Mix.pr_status = b.Resilient.pr_status);
          check_string (pn ^ ": output") a.Mix.pr_output b.Resilient.pr_output;
          check_int (pn ^ ": cycles") a.Mix.pr_cycles b.Resilient.pr_cycles;
          check_int (pn ^ ": slices") a.Mix.pr_slices b.Resilient.pr_slices;
          check_bool (pn ^ ": nothing injected") true
            (b.Resilient.pr_injected = 0 && b.Resilient.pr_detected = 0
            && b.Resilient.pr_retries = 0 && b.Resilient.pr_rollbacks = 0
            && not b.Resilient.pr_downgraded))
        mix.Mix.mr_programs res.Resilient.rr_programs;
      (* the event traces are structurally identical, cycle stamps included *)
      check_bool (pn ^ ": identical event traces") true
        (Trace.events mix.Mix.mr_trace = Trace.events res.Resilient.rr_trace);
      check_int (pn ^ ": identical recorded counts")
        (Trace.recorded mix.Mix.mr_trace)
        (Trace.recorded res.Resilient.rr_trace))
    [ Dtb.Flush_on_switch; Dtb.Tagged; Dtb.Partitioned ]

(* -- The recovery invariant --------------------------------------------------- *)

let summary (r : Resilient.result) =
  List.map
    (fun (p : Resilient.program_report) ->
      (p.Resilient.pr_status, p.Resilient.pr_output, p.Resilient.pr_arch_hash))
    r.Resilient.rr_programs

let inv_programs = lazy (List.map encode [ "fact_iter"; "gcd" ])

let baseline_memo : (Dtb.policy * int, _) Hashtbl.t = Hashtbl.create 4

let baseline ~policy ~quantum =
  match Hashtbl.find_opt baseline_memo (policy, quantum) with
  | Some s -> s
  | None ->
      let s =
        summary
          (Resilient.run_encoded ~trace_capacity:16 ~policy ~quantum
             ~config:Dtb.paper_config ~fconfig:Resilient.zero
             (Lazy.force inv_programs))
      in
      Hashtbl.replace baseline_memo (policy, quantum) s;
      s

let run_faulty ?(policy = Dtb.Tagged) ?(quantum = 32) ?(retry_limit = 3)
    ?(watchdog_window = 4096) ?(watchdog_threshold = 8)
    ?(checkpoint_every = 256) ~cls ~rate ~seed () =
  let fconfig =
    {
      Resilient.injector =
        { Injector.seed; rates = [ (cls, rate) ]; explicit = [] };
      guards = true;
      checkpoint_every =
        (if cls = Injector.Mem_word then Some checkpoint_every else None);
      retry_limit;
      backoff_cycles = 64;
      watchdog_window;
      watchdog_threshold;
    }
  in
  Resilient.run_encoded ~trace_capacity:4096 ~policy ~quantum
    ~config:Dtb.paper_config ~fconfig (Lazy.force inv_programs)

let prop_recovery_invariant =
  let arb =
    QCheck.make
      ~print:(fun (cls, rate, seed, policy) ->
        Printf.sprintf "%s rate=%g seed=%d policy=%s"
          (Injector.class_name cls) rate seed (Dtb.policy_name policy))
      QCheck.Gen.(
        quad
          (oneofl Injector.all_classes)
          (float_range 0.0005 0.02)
          (int_range 1 10_000)
          (oneofl [ Dtb.Flush_on_switch; Dtb.Tagged; Dtb.Partitioned ]))
  in
  QCheck.Test.make ~count:12 ~name:"recovered final state = fault-free state"
    arb
    (fun (cls, rate, seed, policy) ->
      let r = run_faulty ~policy ~cls ~rate ~seed () in
      summary r = baseline ~policy ~quantum:32)

(* -- Directed triggers for each mechanism ------------------------------------- *)

(* Rates make triggers likely, not certain; scan a few seeds and insist
   one fires.  Once found, the seed is fixed by determinism, so the scan
   never flakes. *)
let scan_seeds ~what ~trigger run =
  let rec go = function
    | [] -> Alcotest.failf "%s: no seed in 1..12 triggered the mechanism" what
    | s :: rest -> (
        let r = run s in
        if trigger r then r else go rest)
  in
  go [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]

let recovered what (r : Resilient.result) =
  check_bool (what ^ ": recovered state = fault-free state") true
    (summary r = baseline ~policy:Dtb.Tagged ~quantum:32)

let trace_count f (r : Resilient.result) =
  List.fold_left (fun acc (_, c) -> acc + f c) 0
    (Trace.tallies r.Resilient.rr_trace)

let test_trigger_guard_detection () =
  let r =
    scan_seeds ~what:"psder corruption"
      ~trigger:(fun r -> trace_count (fun c -> c.Trace.c_detections) r > 0)
      (fun seed -> run_faulty ~cls:Injector.Psder_word ~rate:0.02 ~seed ())
  in
  recovered "guard detection" r;
  check_bool "detections are classified as psder-word" true
    (List.mem_assoc "psder-word" (Trace.detected_by_class r.Resilient.rr_trace));
  check_bool "every detection retried a translation" true
    (trace_count (fun c -> c.Trace.c_retries) r > 0);
  (* the retry events carry the attempt number, starting at 1 *)
  let attempts =
    List.filter_map
      (fun (e : Trace.event) ->
        match e.Trace.kind with
        | Trace.Recovery_retry { attempt; _ } -> Some attempt
        | _ -> None)
      (Trace.events r.Resilient.rr_trace)
  in
  check_bool "retry attempts start at 1" true
    (attempts <> [] && List.for_all (fun a -> a >= 1) attempts)

let test_trigger_rollback () =
  let r =
    scan_seeds ~what:"mem-word corruption"
      ~trigger:(fun r -> trace_count (fun c -> c.Trace.c_rollbacks) r > 0)
      (fun seed ->
        run_faulty ~cls:Injector.Mem_word ~rate:0.005 ~checkpoint_every:128
          ~seed ())
  in
  recovered "checkpoint rollback" r;
  check_bool "rollbacks were detected as mem-word faults" true
    (List.mem_assoc "mem-word" (Trace.detected_by_class r.Resilient.rr_trace));
  check_bool "rollback events carry restored pages" true
    (List.exists
       (fun (e : Trace.event) ->
         match e.Trace.kind with
         | Trace.Rollback { pages; _ } -> pages > 0
         | _ -> false)
       (Trace.events r.Resilient.rr_trace))

let test_trigger_translator_fault () =
  let r =
    scan_seeds ~what:"translator fault"
      ~trigger:(fun r -> trace_count (fun c -> c.Trace.c_injections) r > 0)
      (fun seed -> run_faulty ~cls:Injector.Translator ~rate:0.02 ~seed ())
  in
  recovered "dropped install" r;
  (* every dropped install forces a later re-translation: strictly more
     translation events than the fault-free run at the same operating point *)
  let base =
    Resilient.run_encoded ~trace_capacity:16 ~policy:Dtb.Tagged ~quantum:32
      ~config:Dtb.paper_config ~fconfig:Resilient.zero
      (Lazy.force inv_programs)
  in
  check_bool "dropped installs are re-translated" true
    (trace_count (fun c -> c.Trace.c_translations) r
    > trace_count (fun c -> c.Trace.c_translations) base)

let test_trigger_watchdog_downgrade () =
  let r =
    scan_seeds ~what:"watchdog downgrade"
      ~trigger:(fun r -> trace_count (fun c -> c.Trace.c_downgrades) r > 0)
      (fun seed ->
        run_faulty ~cls:Injector.Psder_word ~rate:0.05
          ~watchdog_window:1_000_000 ~watchdog_threshold:2 ~seed ())
  in
  recovered "watchdog downgrade" r;
  check_bool "the report marks the program downgraded" true
    (List.exists
       (fun (p : Resilient.program_report) -> p.Resilient.pr_downgraded)
       r.Resilient.rr_programs)

let test_trigger_dtb_tag () =
  let r =
    scan_seeds ~what:"dtb tag corruption"
      ~trigger:(fun r -> trace_count (fun c -> c.Trace.c_injections) r > 0)
      (fun seed -> run_faulty ~cls:Injector.Dtb_tag ~rate:0.02 ~seed ())
  in
  recovered "dtb tag corruption" r

(* -- The campaign grid --------------------------------------------------------- *)

let test_campaign_grid () =
  let programs = List.map (fun n -> (n, compile n)) [ "fact_iter"; "gcd" ] in
  let grid domains =
    Experiment.fault_grid ~domains ~quanta:[ 32 ] ~seed:5
      ~kind:Kind.Huffman
      ~classes:[ Injector.Psder_word; Injector.Mem_word ]
      ~rates:[ 0.; 1e-3 ]
      ~policies:[ Dtb.Tagged ]
      ~configs:[ Dtb.paper_config ] programs
  in
  let points = grid 2 in
  check_int "2 classes x 2 rates x 1 policy x 1 quantum x 1 config" 4
    (List.length points);
  List.iter
    (fun (p : Experiment.point) ->
      let what =
        Printf.sprintf "%s@%g" (Injector.class_name p.Experiment.fp_class)
          p.Experiment.fp_rate
      in
      check_bool (what ^ " recovered") true p.Experiment.fp_recovered_ok;
      check_bool (what ^ " overhead >= 1") true (p.Experiment.fp_overhead >= 1.);
      if p.Experiment.fp_rate = 0. then
        check_int (what ^ " rate 0 injects nothing") 0 p.Experiment.fp_injected)
    points;
  (* byte-identical at any domain count *)
  let strip (p : Experiment.point) =
    ( p.Experiment.fp_class, p.Experiment.fp_rate, p.Experiment.fp_seed,
      p.Experiment.fp_recovered_ok, p.Experiment.fp_overhead,
      p.Experiment.fp_injected, p.Experiment.fp_detected,
      p.Experiment.fp_retries, p.Experiment.fp_rollbacks,
      p.Experiment.fp_result.Resilient.rr_total_cycles )
  in
  check_bool "grid is domain-count independent" true
    (List.map strip points = List.map strip (grid 1))

(* Regression: before [Dtb.abort_translation] existed these exact
   campaign cells crashed — a mem-word flip drove flat_straightline's
   machine into an error status mid-install, and the slice-end rollback
   found the shared directory still open ([flush] under Flush_on_switch,
   [invalidate_asid] under Tagged).  Both cleanup flavors must now
   complete and recover. *)
let test_mid_install_death_aborts () =
  let programs =
    List.map
      (fun n -> (n, compile n))
      [ "fact_iter"; "gcd"; "flat_straightline" ]
  in
  let points =
    Experiment.fault_grid ~domains:1 ~quanta:[ 64 ] ~seed:1 ~kind:Kind.Huffman
      ~classes:[ Injector.Mem_word ]
      ~rates:[ 1e-4; 1e-3 ]
      ~policies:[ Dtb.Flush_on_switch; Dtb.Tagged ]
      ~configs:[ Dtb.paper_config ] programs
  in
  check_int "1 class x 2 rates x 2 policies" 4 (List.length points);
  List.iter
    (fun (p : Experiment.point) ->
      check_bool
        (Printf.sprintf "mem-word@%g under %s recovers" p.Experiment.fp_rate
           (Dtb.policy_name p.Experiment.fp_policy))
        true p.Experiment.fp_recovered_ok)
    points;
  check_bool "the cells actually rolled back" true
    (List.exists (fun (p : Experiment.point) -> p.Experiment.fp_rollbacks > 0)
       points)

(* -- Satellite: the runaway-program fuel guard --------------------------------- *)

let test_fuel_runaway_guard () =
  let p =
    Uhm_compiler.Pipeline.compile_source ~name:"spin"
      "begin integer x; x := 0; while 0 = 0 do x := x + 1; end"
  in
  let encoded = Codec.encode Kind.Huffman p in
  let m = U.prepare_interp ~fuel:50_000 encoded in
  check_bool "an infinite loop terminates via the fuel guard" true
    (Machine.run m = Machine.Out_of_fuel);
  check_bool "fuel exhaustion is a distinct status" true
    (Machine.Out_of_fuel <> Machine.Halted)

let suite =
  ( "fault",
    [
      Alcotest.test_case "injector schedules are seeded and deterministic"
        `Quick test_injector_determinism;
      Alcotest.test_case "zero-rate classes still reserve their PRNG split"
        `Quick test_injector_zero_rate_reserves_split;
      Alcotest.test_case "explicit schedules fire once at their stamp" `Quick
        test_injector_explicit;
      Alcotest.test_case "guard checksum catches every single-bit flip" `Quick
        test_guard_checksum;
      Alcotest.test_case "DTB tag corruption and targeted invalidation" `Quick
        test_dtb_corrupt_and_invalidate;
      Alcotest.test_case "aborting an open translation restores the directory"
        `Quick test_dtb_abort_translation;
      Alcotest.test_case "checkpoint/restore/replay roundtrip" `Quick
        test_checkpoint_roundtrip;
      Alcotest.test_case "zero faults: cycle- and trace-identical to mix"
        `Slow test_zero_fault_differential;
      QCheck_alcotest.to_alcotest prop_recovery_invariant;
      Alcotest.test_case "trigger: guard detection and retry" `Slow
        test_trigger_guard_detection;
      Alcotest.test_case "trigger: checkpoint rollback" `Slow
        test_trigger_rollback;
      Alcotest.test_case "trigger: dropped install re-translates" `Slow
        test_trigger_translator_fault;
      Alcotest.test_case "trigger: watchdog downgrade to interpretation" `Slow
        test_trigger_watchdog_downgrade;
      Alcotest.test_case "trigger: dtb tag corruption recovers" `Slow
        test_trigger_dtb_tag;
      Alcotest.test_case "campaign grid: recovery and determinism" `Slow
        test_campaign_grid;
      Alcotest.test_case "mid-install death aborts the open translation" `Slow
        test_mid_install_death_aborts;
      Alcotest.test_case "fuel guard stops a runaway program" `Quick
        test_fuel_runaway_guard;
    ] )
