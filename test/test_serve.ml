(* Tests for the open-arrival translation service: the Prng extraction
   goldens, the exact nearest-rank percentile estimator against a sort
   oracle, seeded arrival-process statistics, the closed-system limit
   that pins the serve driver to Mix's cycle counts and trace rollups
   bit for bit, determinism of large seeded runs at any domain count,
   admission-queue behaviour, the eviction economy, and the dropped-
   event surfacing in Chrome exports. *)

module Prng = Uhm_core.Prng
module Dtb = Uhm_core.Dtb
module Kind = Uhm_encoding.Kind
module Codec = Uhm_encoding.Codec
module Machine = Uhm_machine.Machine
module Suite = Uhm_workload.Suite
module Trace = Uhm_sched.Trace
module Scheduler = Uhm_sched.Scheduler
module Mix = Uhm_sched.Mix
module Arrival = Uhm_serve.Arrival
module Percentile = Uhm_serve.Percentile
module Serve = Uhm_serve.Serve
module Experiment = Uhm_serve.Experiment

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let compile name = Suite.compile (Suite.find name)

let small_config =
  { Dtb.sets = 8; assoc = 2; unit_words = 4; overflow_blocks = 16 }

(* -- Satellite: the SplitMix64 extraction ----------------------------------- *)

(* Golden draws: the extracted Uhm_core.Prng must produce the exact
   sequence the in-module Injector generator produced before the move
   (byte compatibility of every fault campaign and arrival stream). *)
let test_prng_golden () =
  let r = Prng.create ~seed:1 ~stream:0 in
  Alcotest.(check (list int64))
    "seed 1 stream 0"
    [ 6791897765849424158L; -1041056189838986770L; 834844254806117752L ]
    (let a = Prng.next_i64 r in
     let b = Prng.next_i64 r in
     let c = Prng.next_i64 r in
     [ a; b; c ]);
  let r = Prng.create ~seed:42 ~stream:3 in
  check_int "seed 42 stream 3 int 1" 919073589568351552 (Prng.next_int r);
  check_int "seed 42 stream 3 int 2" 2214465675949610422 (Prng.next_int r);
  (* non-negative 62-bit ints and [0,1) floats, always *)
  let r = Prng.create ~seed:7 ~stream:11 in
  for _ = 1 to 1000 do
    let n = Prng.next_int r in
    check_bool "next_int >= 0" true (n >= 0);
    let f = Prng.next_float r in
    check_bool "next_float in [0,1)" true (f >= 0. && f < 1.)
  done

let test_prng_split_independent () =
  (* a split child's stream must not depend on how much the parent is
     consumed afterwards — children snapshot their own state *)
  let a = Prng.create ~seed:9 ~stream:0 in
  let b = Prng.create ~seed:9 ~stream:0 in
  let ca = Prng.split a in
  let cb = Prng.split b in
  ignore (Prng.next_i64 a);
  ignore (Prng.next_i64 a);
  for i = 1 to 16 do
    Alcotest.(check int64)
      (Printf.sprintf "split draw %d" i)
      (Prng.next_i64 cb) (Prng.next_i64 ca)
  done;
  (* distinct streams diverge *)
  let s0 = Prng.create ~seed:5 ~stream:0 in
  let s1 = Prng.create ~seed:5 ~stream:1 in
  check_bool "streams differ" true (Prng.next_i64 s0 <> Prng.next_i64 s1)

let test_prng_samplers () =
  let r = Prng.create ~seed:3 ~stream:0 in
  let n = 20000 in
  let sum = ref 0 in
  for _ = 1 to n do
    let g = Prng.geometric r ~p:0.125 in
    check_bool "geometric >= 1" true (g >= 1);
    sum := !sum + g
  done;
  let mean = float_of_int !sum /. float_of_int n in
  check_bool
    (Printf.sprintf "geometric mean %.2f near 8" mean)
    true
    (mean > 7.5 && mean < 8.5);
  let sum = ref 0 in
  for _ = 1 to n do
    let e = Prng.exponential r ~rate:0.002 in
    check_bool "exponential >= 1" true (e >= 1);
    sum := !sum + e
  done;
  let mean = float_of_int !sum /. float_of_int n in
  check_bool
    (Printf.sprintf "exponential mean %.1f near 500" mean)
    true
    (mean > 475. && mean < 525.);
  check_int "exponential of rate 0 saturates" max_int
    (Prng.exponential r ~rate:0.)

(* -- Satellite: exact nearest-rank percentiles ------------------------------ *)

let oracle values p =
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let test_percentile_edges () =
  check_int "singleton p50" 7 (Percentile.nearest_rank [| 7 |] ~p:50.);
  check_int "singleton p99" 7 (Percentile.nearest_rank [| 7 |] ~p:99.);
  check_int "p100 is max" 9 (Percentile.nearest_rank [| 3; 9; 1 |] ~p:100.);
  (* nearest rank of p50 over an even count is the lower middle *)
  check_int "even p50" 2 (Percentile.nearest_rank [| 1; 2; 3; 4 |] ~p:50.);
  check_int "ties" 5 (Percentile.nearest_rank [| 5; 5; 5; 5 |] ~p:95.);
  (match Percentile.nearest_rank [||] ~p:50. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty array must raise");
  (match Percentile.nearest_rank [| 1 |] ~p:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p = 0 must raise");
  check_bool "empty summary is zeros" true
    (Percentile.summary [] = (0, 0, 0));
  let p50, p95, p99 = Percentile.summary (List.init 100 (fun i -> i + 1)) in
  check_int "summary p50" 50 p50;
  check_int "summary p95" 95 p95;
  check_int "summary p99" 99 p99

(* -- Satellite: seeded arrival statistics ----------------------------------- *)

let test_poisson_arrivals () =
  let arr =
    Arrival.generate ~seed:7 ~templates:5 ~jobs:2000
      (Arrival.Poisson { rate = 2000.0 })
  in
  check_int "job count" 2000 (List.length arr);
  (* pinned for the fixed seed: regenerating the stream must reproduce
     it exactly (arrival times are part of every golden below) *)
  let first = List.hd arr in
  check_int "first arrival at" 76 first.Arrival.at;
  check_int "first template" 0 first.Arrival.template;
  let last = List.nth arr 1999 in
  check_int "last arrival at" 983521 last.Arrival.at;
  (* rate 2000 per Mcycle: mean gap near 500 *)
  let mean = float_of_int last.Arrival.at /. 2000. in
  check_bool
    (Printf.sprintf "empirical mean gap %.1f near 500" mean)
    true
    (mean > 450. && mean < 550.);
  (* non-decreasing times, templates in range *)
  let prev = ref 0 in
  List.iter
    (fun a ->
      check_bool "non-decreasing" true (a.Arrival.at >= !prev);
      prev := a.Arrival.at;
      check_bool "template in range" true
        (a.Arrival.template >= 0 && a.Arrival.template < 5))
    arr;
  (* determinism: same seed, same stream *)
  let again =
    Arrival.generate ~seed:7 ~templates:5 ~jobs:2000
      (Arrival.Poisson { rate = 2000.0 })
  in
  check_bool "same seed reproduces" true (arr = again);
  let other =
    Arrival.generate ~seed:8 ~templates:5 ~jobs:2000
      (Arrival.Poisson { rate = 2000.0 })
  in
  check_bool "different seed differs" true (arr <> other)

let test_burst_lengths () =
  let ls = Arrival.burst_lengths ~seed:7 ~bursts:1000 ~burst:8.0 in
  check_int "burst count" 1000 (List.length ls);
  (* the head of the distribution is pinned for the fixed seed *)
  Alcotest.(check (list int))
    "first ten lengths"
    [ 16; 16; 11; 8; 7; 6; 4; 23; 3; 5 ]
    (List.filteri (fun i _ -> i < 10) ls);
  let mean = float_of_int (List.fold_left ( + ) 0 ls) /. 1000. in
  check_bool
    (Printf.sprintf "mean burst length %.2f near 8" mean)
    true
    (mean > 7.2 && mean < 8.8);
  List.iter (fun l -> check_bool "length >= 1" true (l >= 1)) ls

let test_bursty_and_trace_arrivals () =
  let arr =
    Arrival.generate ~seed:11 ~templates:3 ~jobs:500
      (Arrival.Bursty { rate = 4000.0; burst = 8.0; idle = 5000. })
  in
  check_int "bursty count" 500 (List.length arr);
  let prev = ref 0 in
  List.iter
    (fun a ->
      check_bool "bursty non-decreasing" true (a.Arrival.at >= !prev);
      prev := a.Arrival.at)
    arr;
  check_bool "bursty deterministic" true
    (arr
    = Arrival.generate ~seed:11 ~templates:3 ~jobs:500
        (Arrival.Bursty { rate = 4000.0; burst = 8.0; idle = 5000. }));
  (* trace-driven arrivals sort, clamp and wrap *)
  let tr =
    Arrival.generate ~seed:0 ~templates:2 ~jobs:4
      (Arrival.Trace [ (50, 1); (10, -1); (30, 5); (20, 0); (99, 0) ])
  in
  Alcotest.(check (list (pair int int)))
    "trace sorted/clamped/wrapped"
    [ (10, 1); (20, 0); (30, 1); (50, 1) ]
    (List.map (fun a -> (a.Arrival.at, a.Arrival.template)) tr);
  check_string "describe poisson" "poisson(rate=2.5)"
    (Arrival.describe (Arrival.Poisson { rate = 2.5 }))

(* -- Tentpole: the closed-system limit pins to Mix -------------------------- *)

(* All arrivals at cycle 0, as many slots as jobs, no economy: the serve
   driver must reproduce Mix's dispatch sequence, per-program cycle
   counts, DTB statistics and per-ASID trace rollups bit for bit, under
   all three sharing policies and both schedulers. *)
let closed_programs = [ "fact_iter"; "gcd"; "fib_rec" ]

let run_closed ~policy ~scheduler ~quantum =
  let programs = List.map (fun n -> (n, compile n)) closed_programs in
  let encodeds =
    List.map (fun (n, p) -> (n, Codec.encode Kind.Huffman p)) programs
  in
  let mix =
    Mix.run_encoded ~scheduler ~policy ~quantum ~config:small_config encodeds
  in
  let arrivals =
    List.mapi (fun i _ -> { Arrival.at = 0; template = i }) encodeds
  in
  let served =
    Serve.run ~scheduler ~policy ~quantum ~config:small_config
      ~slots:(List.length encodeds) ~templates:encodeds ~arrivals ()
  in
  (mix, served)

let check_closed_pin ~policy ~scheduler ~quantum =
  let name = Printf.sprintf "q=%d" quantum in
  let mix, served = run_closed ~policy ~scheduler ~quantum in
  check_int (name ^ " total cycles") mix.Mix.mr_total_cycles
    served.Serve.sv_summary.Serve.s_total_cycles;
  check_int (name ^ " switches") mix.Mix.mr_switches
    served.Serve.sv_summary.Serve.s_switches;
  check_int (name ^ " flushes") mix.Mix.mr_flushes
    served.Serve.sv_summary.Serve.s_flushes;
  Alcotest.(check (float 1e-9))
    (name ^ " hit ratio") mix.Mix.mr_hit_ratio
    served.Serve.sv_summary.Serve.s_hit_ratio;
  check_int (name ^ " all jobs completed")
    (List.length mix.Mix.mr_programs)
    served.Serve.sv_summary.Serve.s_completed;
  List.iter2
    (fun (pr : Mix.program_result) (j : Serve.job) ->
      check_string (name ^ " name") pr.Mix.pr_name j.Serve.j_name;
      check_int (name ^ " asid") pr.Mix.pr_asid j.Serve.j_asid;
      check_int (name ^ " cycles") pr.Mix.pr_cycles j.Serve.j_cycles;
      check_int (name ^ " solo") pr.Mix.pr_solo_cycles j.Serve.j_solo_cycles;
      (match j.Serve.j_status with
      | Serve.Completed s when s = pr.Mix.pr_status -> ()
      | _ -> Alcotest.fail (name ^ ": status mismatch"));
      check_int (name ^ " queue delay") 0 j.Serve.j_queue_delay)
    mix.Mix.mr_programs served.Serve.sv_jobs;
  (* per-ASID trace rollups: the PR 3 counter families must be
     bit-identical (admits are new, and only on the serve side) *)
  List.iter
    (fun (pr : Mix.program_result) ->
      let m = Trace.counts mix.Mix.mr_trace pr.Mix.pr_asid in
      let s = Trace.counts served.Serve.sv_trace pr.Mix.pr_asid in
      check_int (name ^ " dispatches") m.Trace.c_dispatches
        s.Trace.c_dispatches;
      check_int (name ^ " flush rollup") m.Trace.c_flushes s.Trace.c_flushes;
      check_int (name ^ " translations") m.Trace.c_translations
        s.Trace.c_translations;
      check_int (name ^ " expiries") m.Trace.c_expiries s.Trace.c_expiries)
    mix.Mix.mr_programs

let test_closed_pin_policies () =
  List.iter
    (fun policy ->
      check_closed_pin ~policy ~scheduler:Scheduler.Round_robin ~quantum:32;
      check_closed_pin ~policy ~scheduler:Scheduler.Round_robin ~quantum:7)
    [ Dtb.Flush_on_switch; Dtb.Tagged; Dtb.Partitioned ]

let test_closed_pin_srtf () =
  List.iter
    (fun policy ->
      check_closed_pin ~policy ~scheduler:Scheduler.Shortest_remaining
        ~quantum:32)
    [ Dtb.Flush_on_switch; Dtb.Tagged; Dtb.Partitioned ]

let test_closed_pin_solo_quantum () =
  check_closed_pin ~policy:Dtb.Tagged ~scheduler:Scheduler.Round_robin
    ~quantum:Mix.solo_quantum

(* -- Tentpole: open-system behaviour ---------------------------------------- *)

let open_templates () =
  List.map
    (fun n -> (n, Codec.encode Kind.Huffman (compile n)))
    [ "fact_iter"; "gcd" ]

let test_open_run_accounting () =
  let templates = open_templates () in
  let arrivals =
    Arrival.generate ~seed:5 ~templates:(List.length templates) ~jobs:200
      (Arrival.Poisson { rate = 2000.0 })
  in
  let r =
    Serve.run ~policy:Dtb.Tagged ~quantum:32 ~config:small_config ~slots:4
      ~templates ~arrivals ()
  in
  let s = r.Serve.sv_summary in
  check_int "all offered" 200 s.Serve.s_jobs;
  check_int "conservation" 200
    (s.Serve.s_completed + s.Serve.s_failed + s.Serve.s_shed);
  check_int "no failures" 0 s.Serve.s_failed;
  check_bool "clock advanced" true (s.Serve.s_total_cycles > 0);
  check_bool "p50 <= p95" true (s.Serve.s_p50 <= s.Serve.s_p95);
  check_bool "p95 <= p99" true (s.Serve.s_p95 <= s.Serve.s_p99);
  List.iter
    (fun (j : Serve.job) ->
      match j.Serve.j_status with
      | Serve.Shed ->
          check_int "shed asid" (-1) j.Serve.j_asid;
          check_int "shed sojourn" 0 j.Serve.j_sojourn
      | Serve.Completed _ ->
          check_bool "admit >= arrival" true (j.Serve.j_admit >= j.Serve.j_arrival);
          check_bool "finish > admit" true (j.Serve.j_finish > j.Serve.j_admit);
          check_int "queue delay" (j.Serve.j_admit - j.Serve.j_arrival)
            j.Serve.j_queue_delay;
          check_int "sojourn" (j.Serve.j_finish - j.Serve.j_arrival)
            j.Serve.j_sojourn;
          check_bool "slowdown >= 1" true (j.Serve.j_slowdown >= 1.)
      | Serve.Failed _ -> Alcotest.fail "plain Serve.run produced Failed")
    r.Serve.sv_jobs;
  (* trace totals agree with the summary *)
  check_int "queued events" (200 - s.Serve.s_shed)
    (Trace.queued_total r.Serve.sv_trace);
  check_int "shed events" s.Serve.s_shed (Trace.shed_total r.Serve.sv_trace);
  let admits =
    List.fold_left
      (fun acc (_, c) -> acc + c.Trace.c_admits)
      0
      (Trace.tallies r.Serve.sv_trace)
  in
  check_int "admit events" (200 - s.Serve.s_shed) admits

let test_determinism_large_run () =
  let templates = open_templates () in
  let arrivals =
    Arrival.generate ~seed:13 ~templates:(List.length templates) ~jobs:1200
      (Arrival.Poisson { rate = 6000.0 })
  in
  let go () =
    Serve.run ~policy:Dtb.Tagged ~quantum:32 ~config:small_config ~slots:4
      ~economy:Serve.default_economy ~templates ~arrivals ()
  in
  let a = go () and b = go () in
  check_int "1200 jobs offered" 1200 a.Serve.sv_summary.Serve.s_jobs;
  check_bool "jobs identical" true (a.Serve.sv_jobs = b.Serve.sv_jobs);
  check_bool "summaries identical" true
    (a.Serve.sv_summary = b.Serve.sv_summary);
  check_bool "tallies identical" true
    (Trace.tallies a.Serve.sv_trace = Trace.tallies b.Serve.sv_trace)

let test_load_grid_domain_independence () =
  let programs =
    List.map (fun n -> (n, compile n)) [ "fact_iter"; "gcd" ]
  in
  let go domains =
    Experiment.load_grid ~domains ~seed:3 ~jobs:120 ~slots:4
      ~kind:Kind.Huffman
      ~policies:[ Dtb.Flush_on_switch; Dtb.Tagged ]
      ~rates:[ 1000.0; 4000.0 ] ~config:small_config programs
  in
  let one = go 1 and four = go 4 in
  check_int "cell count" 4 (List.length one);
  List.iter2
    (fun (a : Experiment.load_cell) (b : Experiment.load_cell) ->
      check_bool "axes match" true
        (a.Experiment.lc_policy = b.Experiment.lc_policy
        && a.Experiment.lc_quantum = b.Experiment.lc_quantum
        && a.Experiment.lc_rate = b.Experiment.lc_rate);
      check_bool "jobs byte-identical" true
        (a.Experiment.lc_result.Serve.sv_jobs
        = b.Experiment.lc_result.Serve.sv_jobs);
      check_bool "summary byte-identical" true
        (a.Experiment.lc_result.Serve.sv_summary
        = b.Experiment.lc_result.Serve.sv_summary))
    one four

let test_admission_queue () =
  let templates = open_templates () in
  (* everyone at cycle 0, one slot, tiny queue: most arrivals shed *)
  let arrivals = List.init 20 (fun i -> { Arrival.at = 0; template = i mod 2 }) in
  let r =
    Serve.run ~policy:Dtb.Tagged ~quantum:32 ~config:small_config ~slots:1
      ~admission:{ Serve.queue_capacity = 3; shed_above = None }
      ~templates ~arrivals ()
  in
  let s = r.Serve.sv_summary in
  (* all 20 are ingested at cycle 0 before any admission: 3 fit the
     queue, the rest are drop-tail shed *)
  check_int "shed" 17 s.Serve.s_shed;
  check_int "completed" 3 s.Serve.s_completed;
  check_int "max depth" 3 s.Serve.s_max_depth;
  (* soft shedding threshold kicks in below capacity *)
  let r2 =
    Serve.run ~policy:Dtb.Tagged ~quantum:32 ~config:small_config ~slots:1
      ~admission:{ Serve.queue_capacity = 64; shed_above = Some 2 }
      ~templates ~arrivals ()
  in
  check_int "shed above soft threshold" 18 r2.Serve.sv_summary.Serve.s_shed;
  check_int "soft max depth" 2 r2.Serve.sv_summary.Serve.s_max_depth

let test_eviction_economy () =
  let templates = open_templates () in
  let arrivals =
    Arrival.generate ~seed:21 ~templates:(List.length templates) ~jobs:150
      (Arrival.Poisson { rate = 8000.0 })
  in
  let run economy =
    Serve.run ~policy:Dtb.Tagged ~quantum:16 ~config:small_config ~slots:6
      ?economy ~templates ~arrivals ()
  in
  let without = run None in
  let with_e =
    run (Some { Serve.evict_min_idle = 1; evict_watermark = 0.25 })
  in
  check_int "no cold evictions without economy" 0
    without.Serve.sv_summary.Serve.s_cold_evictions;
  check_bool "economy evicts cold slots" true
    (with_e.Serve.sv_summary.Serve.s_cold_evictions > 0);
  (* the economy changes performance, never results *)
  check_int "same completions" without.Serve.sv_summary.Serve.s_completed
    with_e.Serve.sv_summary.Serve.s_completed;
  check_int "no failures" 0 with_e.Serve.sv_summary.Serve.s_failed;
  let evicts =
    List.fold_left
      (fun acc (_, c) -> acc + c.Trace.c_evicts)
      0
      (Trace.tallies with_e.Serve.sv_trace)
  in
  check_int "evict events tallied" with_e.Serve.sv_summary.Serve.s_evictions
    evicts

let test_chrome_export_serve_events () =
  let templates = open_templates () in
  let arrivals =
    Arrival.generate ~seed:2 ~templates:(List.length templates) ~jobs:60
      (Arrival.Poisson { rate = 8000.0 })
  in
  let serve ?economy ~config capacity =
    Serve.run ~policy:Dtb.Tagged ~quantum:16 ~config ~slots:2
      ~trace_capacity:capacity ?economy ~templates ~arrivals ()
  in
  let chrome r =
    Trace.to_chrome
      ~names:(fun i -> Printf.sprintf "slot%d" i)
      ~end_cycle:r.Serve.sv_summary.Serve.s_total_cycles r.Serve.sv_trace
  in
  (* full ring at a geometry that holds the working sets: queue/admit
     markers survive into the export and nothing is dropped *)
  let roomy =
    { Dtb.sets = 64; assoc = 4; unit_words = 4; overflow_blocks = 64 }
  in
  let full = serve ~config:roomy 1_048_576 in
  let json = chrome full in
  check_int "nothing dropped" 0 (Trace.dropped full.Serve.sv_trace);
  check_bool "queue depth counter" true
    (Astring_contains.contains json "queue_depth");
  check_bool "admit instants" true (Astring_contains.contains json "admit:");
  check_bool "no drop marker" false
    (Astring_contains.contains json "ring_dropped:");
  (* a 32-entry ring under 60 jobs must have dropped, and say so *)
  let tiny =
    serve
      ~economy:{ Serve.evict_min_idle = 1; evict_watermark = 0.25 }
      ~config:small_config 32
  in
  let json = chrome tiny in
  check_bool "ring dropped events" true (Trace.dropped tiny.Serve.sv_trace > 0);
  check_bool "export records the drop" true
    (Astring_contains.contains json "ring_dropped:")

(* -- Satellite: DTB idle/footprint accounting ------------------------------- *)

let install dtb ~tag =
  (match Dtb.lookup dtb ~tag with `Hit _ -> () | `Miss -> ());
  Dtb.begin_translation dtb ~tag;
  ignore (Dtb.emit dtb 1);
  ignore (Dtb.end_translation dtb)

let test_dtb_idle_accounting () =
  let dtb =
    Dtb.create_shared ~policy:Dtb.Tagged ~programs:4 small_config
      ~buffer_base:0
  in
  Dtb.switch_to dtb ~asid:1;
  install dtb ~tag:5;
  install dtb ~tag:6;
  check_int "asid 1 footprint" 2 (Dtb.asid_footprint dtb ~asid:1);
  check_int "asid 2 footprint" 0 (Dtb.asid_footprint dtb ~asid:2);
  let last1 = Dtb.asid_last_use dtb ~asid:1 in
  check_bool "asid 1 used" true (last1 > 0);
  Dtb.switch_to dtb ~asid:2;
  install dtb ~tag:5;
  check_int "asid 1 footprint unchanged" 2 (Dtb.asid_footprint dtb ~asid:1);
  check_int "asid 1 last_use frozen" last1 (Dtb.asid_last_use dtb ~asid:1);
  check_bool "asid 2 fresher" true (Dtb.asid_last_use dtb ~asid:2 > last1);
  check_bool "clock advances" true (Dtb.use_clock dtb > last1);
  check_int "invalidation drops both" 2 (Dtb.invalidate_asid dtb ~asid:1);
  check_int "invalidated footprint" 0 (Dtb.asid_footprint dtb ~asid:1);
  check_int "asid 2 survives" 1 (Dtb.asid_footprint dtb ~asid:2);
  (match Dtb.asid_last_use dtb ~asid:9 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range asid must raise")

let suite =
  ( "serve",
    [
      Alcotest.test_case "prng golden draws" `Quick test_prng_golden;
      Alcotest.test_case "prng split independence" `Quick
        test_prng_split_independent;
      Alcotest.test_case "prng samplers" `Quick test_prng_samplers;
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make ~count:500 ~name:"nearest_rank = sort oracle"
           QCheck.(
             pair (list_of_size Gen.(1 -- 200) (int_bound 10_000)) (1 -- 100))
           (fun (values, pi) ->
             Percentile.nearest_rank (Array.of_list values)
               ~p:(float_of_int pi)
             = oracle (Array.of_list values) (float_of_int pi)));
      Alcotest.test_case "percentile edges" `Quick test_percentile_edges;
      Alcotest.test_case "poisson arrivals pinned" `Quick test_poisson_arrivals;
      Alcotest.test_case "burst lengths pinned" `Quick test_burst_lengths;
      Alcotest.test_case "bursty and trace arrivals" `Quick
        test_bursty_and_trace_arrivals;
      Alcotest.test_case "closed-system pin, rr, all policies" `Quick
        test_closed_pin_policies;
      Alcotest.test_case "closed-system pin, srtf" `Quick test_closed_pin_srtf;
      Alcotest.test_case "closed-system pin, solo quantum" `Quick
        test_closed_pin_solo_quantum;
      Alcotest.test_case "open run accounting" `Quick test_open_run_accounting;
      Alcotest.test_case "1200-job run deterministic" `Quick
        test_determinism_large_run;
      Alcotest.test_case "load grid domain-independent" `Quick
        test_load_grid_domain_independence;
      Alcotest.test_case "admission queue bounds and shedding" `Quick
        test_admission_queue;
      Alcotest.test_case "eviction economy" `Quick test_eviction_economy;
      Alcotest.test_case "chrome export of serve events" `Quick
        test_chrome_export_serve_events;
      Alcotest.test_case "dtb idle/footprint accounting" `Quick
        test_dtb_idle_accounting;
    ] )
