(* The resilience driver: time-sliced execution over a shared DTB with
   fault injection, guarded translations, checkpoint rollback and
   watchdog downgrade; see resilient.mli.

   The scheduling loop is round-robin, modeled line-for-line on
   [Uhm_sched.Scheduler.run] so that with the zero config (no faults, no
   guards, no checkpoints) the run is cycle-identical — including the
   event trace — to [Uhm_sched.Mix.run_encoded]; a differential test
   pins that equivalence. *)

module Machine = Uhm_machine.Machine
module Timing = Uhm_machine.Timing
module SF = Uhm_machine.Short_format
module R = Uhm_machine.Host_isa.Regs
module Dtb = Uhm_core.Dtb
module U = Uhm_core.Uhm
module Codec = Uhm_encoding.Codec
module Layout = Uhm_psder.Layout
module Trace = Uhm_sched.Trace

type config = {
  injector : Injector.spec;
  guards : bool;
  checkpoint_every : int option;
  retry_limit : int;
  backoff_cycles : int;
  watchdog_window : int;
  watchdog_threshold : int;
}

let zero =
  {
    injector = Injector.zero;
    guards = false;
    checkpoint_every = None;
    retry_limit = 3;
    backoff_cycles = 64;
    watchdog_window = 4096;
    watchdog_threshold = 8;
  }

let protected ?(checkpoint_every = 1024) injector =
  {
    zero with
    injector;
    guards = true;
    checkpoint_every =
      (if Injector.can_inject injector Injector.Mem_word then
         Some checkpoint_every
       else None);
  }

type program_report = {
  pr_name : string;
  pr_asid : int;
  pr_status : Machine.status;
  pr_output : string;
  pr_cycles : int;
  pr_slices : int;
  pr_arch_hash : int;
  pr_downgraded : bool;
  pr_injected : int;
  pr_detected : int;
  pr_retries : int;
  pr_rollbacks : int;
}

type result = {
  rr_policy : Dtb.policy;
  rr_quantum : int;
  rr_config : Dtb.config;
  rr_fconfig : config;
  rr_programs : program_report list;
  rr_total_cycles : int;
  rr_switches : int;
  rr_flushes : int;
  rr_trace : Trace.t;
}

type mode = Translating | Downgraded

type proc = {
  asid : int;
  name : string;
  encoded : Codec.encoded;
  inj : Injector.t;
  guard : Guard.t;
  retries : (int, int) Hashtbl.t; (* dir_addr -> recovery attempts *)
  watchdog : int Queue.t;         (* steps of recent recovery events *)
  mutable machine : Machine.t;
  mutable mode : mode;
  mutable translating : int option; (* dir_addr of the open install *)
  mutable doomed : bool;            (* armed translator fault *)
  mutable ck : Machine.checkpoint option;
  mutable ck_step : int;
  mutable outstanding : int list;   (* data addresses hit by Mem_word faults *)
  mutable downgrade_pending : bool;
  mutable finished : Machine.status option;
  mutable out_prefix : string;      (* output produced before downgrade *)
  mutable base_cycles : int;        (* cycles accumulated pre-downgrade *)
  mutable slices : int;
  mutable injected : int;
  mutable detected : int;
  mutable retried : int;
  mutable rolled_back : int;
}

(* The architectural-state fingerprint behind the recovery invariant:
   frame/stack registers plus every live operand-stack and data word.
   Scratch registers and host-side bookkeeping are deliberately excluded;
   a downgraded program's state hashes identically to a translated one's. *)
let fingerprint_mask = (1 lsl 58) - 1

let arch_fingerprint ~(layout : Layout.t) m =
  let mix h v = ((h * 1000003) + v) land fingerprint_mask in
  let sp = Machine.reg m R.sp
  and fp = Machine.reg m R.fp
  and dtop = Machine.reg m R.dtop in
  let h = ref (mix (mix (mix 0 sp) fp) dtop) in
  for a = layout.Layout.op_stack_base to sp - 1 do
    h := mix !h (Machine.peek m a)
  done;
  for a = layout.Layout.data_base to dtop - 1 do
    h := mix !h (Machine.peek m a)
  done;
  !h

(* How many cycles one DIR instruction of pure interpretation is worth
   when converting the scheduler's DIR-step quantum into a cycle budget
   for a downgraded (run_for-sliced) machine. *)
let interp_cycles_per_dir = 64

let run_encoded ?(timing = Timing.paper) ?fuel ?(layout = Layout.default)
    ?backend ?(trace_capacity = 65536) ~policy ~quantum ~config ~fconfig
    (programs : (string * Codec.encoded) list) =
  if programs = [] then invalid_arg "Resilient.run_encoded: no programs";
  if quantum < 1 then
    invalid_arg "Resilient.run_encoded: quantum must be >= 1";
  let mem_faults = Injector.can_inject fconfig.injector Injector.Mem_word in
  if mem_faults && fconfig.checkpoint_every = None then
    invalid_arg
      "Resilient.run_encoded: Mem_word faults require checkpoint_every";
  let n = List.length programs in
  let buffer_base = layout.Layout.dtb_buffer_base + 1 in
  let dtb = Dtb.create_shared ~policy ~programs:n config ~buffer_base in
  let buffer_words = Dtb.buffer_words dtb in
  let trace = Trace.create ~capacity:trace_capacity () in
  let t_dtb = timing.Timing.t_dtb
  and t_guard = timing.Timing.t_guard
  and t2 = timing.Timing.t2 in
  let clock = ref 0 in
  let slice_c0 = ref 0 in
  (* global virtual time mid-dispatch: clock at slice start plus what the
     current program has run since (matching Scheduler.run's trace tap) *)
  let vtime p =
    !clock + p.base_cycles + (Machine.stats p.machine).Machine.cycles
    - !slice_c0
  in
  let tell_now kind = Trace.record trace ~at_cycle:!clock kind in
  let tell_v p kind = Trace.record trace ~at_cycle:(vtime p) kind in
  let recovery_event p ~step =
    Queue.push step p.watchdog;
    while
      (not (Queue.is_empty p.watchdog))
      && Queue.peek p.watchdog < step - fconfig.watchdog_window
    do
      ignore (Queue.pop p.watchdog)
    done;
    if Queue.length p.watchdog >= fconfig.watchdog_threshold then
      p.downgrade_pending <- true
  in
  let make_proc asid (name, encoded) =
    let self = ref None in
    let p_of () =
      match !self with Some p -> p | None -> assert false
    in
    let apply_fault m (f : Injector.fault) =
      let p = p_of () in
      let applied =
        match f.Injector.f_class with
        | Injector.Dtb_tag ->
            Dtb.corrupt_resident_tag dtb ~pick:f.Injector.f_r1
              ~flip:f.Injector.f_r2
            <> None
        | Injector.Psder_word ->
            let addr = buffer_base + (f.Injector.f_r1 mod buffer_words) in
            Machine.poke m addr
              (Machine.peek m addr lxor (1 lsl (f.Injector.f_r2 mod 16)));
            true
        | Injector.Translator ->
            p.doomed <- true;
            true
        | Injector.Mem_word ->
            let base = layout.Layout.data_base in
            let dtop = Machine.reg m R.dtop in
            if dtop <= base then false
            else begin
              let addr = base + (f.Injector.f_r1 mod (dtop - base)) in
              Machine.poke m addr
                (Machine.peek m addr lxor (1 lsl (f.Injector.f_r2 mod 31)));
              p.outstanding <- addr :: p.outstanding;
              true
            end
      in
      if applied then begin
        p.injected <- p.injected + 1;
        tell_v p
          (Trace.Fault_injected
             { asid = p.asid; fclass = Injector.class_name f.Injector.f_class })
      end
    in
    let start_translation m ~translator_entry ~dir_addr ~dctx =
      let p = p_of () in
      tell_v p (Trace.Translation { asid = p.asid; dir_addr });
      if fconfig.guards then begin
        Guard.begin_install p.guard;
        Machine.add_cycles m t_guard (* flat checksum-seed cost at install *)
      end;
      p.translating <- Some dir_addr;
      Dtb.begin_translation dtb ~tag:dir_addr;
      Machine.set_reg m R.dpc dir_addr;
      Machine.set_reg m R.dctx dctx;
      Machine.set_pc m (Machine.Long translator_entry)
    in
    let detect m ~translator_entry ~dir_addr ~dctx ~fclass ~checked_words =
      let p = p_of () in
      Machine.add_cycles m (t_guard * max 1 checked_words);
      p.detected <- p.detected + 1;
      tell_v p (Trace.Fault_detected { asid = p.asid; fclass });
      let step = (Machine.stats m).Machine.interp_count in
      recovery_event p ~step;
      let attempts =
        1 + Option.value ~default:0 (Hashtbl.find_opt p.retries dir_addr)
      in
      Hashtbl.replace p.retries dir_addr attempts;
      if attempts > fconfig.retry_limit then p.downgrade_pending <- true;
      Machine.add_cycles m
        (fconfig.backoff_cycles * (1 lsl min (attempts - 1) 6));
      p.retried <- p.retried + 1;
      tell_v p (Trace.Recovery_retry { asid = p.asid; dir_addr; attempt = attempts });
      ignore (Dtb.invalidate dtb ~tag:dir_addr);
      start_translation m ~translator_entry ~dir_addr ~dctx
    in
    let make_interp ~translator_entry m ~dir_addr ~dctx =
      let p = p_of () in
      let step = (Machine.stats m).Machine.interp_count in
      (match Injector.due p.inj ~step with
      | [] -> ()
      | faults -> List.iter (apply_fault m) faults);
      Machine.add_cycles m t_dtb;
      match Dtb.lookup dtb ~tag:dir_addr with
      | `Hit buffer_addr ->
          if not fconfig.guards then
            Machine.set_pc m (Machine.Short buffer_addr)
          else begin
            match
              Guard.check p.guard ~peek:(Machine.peek m) ~dir_addr
                ~start_addr:buffer_addr
            with
            | `Ok words ->
                Machine.add_cycles m (t_guard * words);
                Machine.set_pc m (Machine.Short buffer_addr)
            | `Mismatch | `Unguarded ->
                (* a different (or no) DIR address answered: the tag array
                   lied — drop the aliased entry and retranslate *)
                Guard.drop p.guard ~start_addr:buffer_addr;
                detect m ~translator_entry ~dir_addr ~dctx ~fclass:"dtb-tag"
                  ~checked_words:1
            | `Corrupt words ->
                Guard.drop p.guard ~start_addr:buffer_addr;
                detect m ~translator_entry ~dir_addr ~dctx
                  ~fclass:"psder-word" ~checked_words:words
          end
      | `Miss -> start_translation m ~translator_entry ~dir_addr ~dctx
    in
    let on_emit ~addr ~word =
      if fconfig.guards then Guard.on_emit (p_of ()).guard ~addr ~word
    in
    let on_end_translation ~start_addr =
      let p = p_of () in
      let dir_addr =
        match p.translating with Some d -> d | None -> assert false
      in
      p.translating <- None;
      if p.doomed then begin
        (* translator failure mid-install: the words are in the buffer and
           the current transfer still executes them, but the directory
           entry is lost — the next INTERP of this DIR address re-misses *)
        p.doomed <- false;
        ignore (Dtb.invalidate dtb ~tag:dir_addr);
        Guard.abandon p.guard;
        Guard.drop p.guard ~start_addr
      end
      else if fconfig.guards then
        Guard.finish_install p.guard ~dir_addr ~start_addr
    in
    let machine, _translator_entry =
      U.prepare_dtb_custom ~timing ?fuel ~layout ?backend ~on_emit
        ~on_end_translation ~make_interp ~dtb encoded
    in
    let p =
      {
        asid;
        name;
        encoded;
        inj = Injector.create fconfig.injector ~asid;
        guard = Guard.create ();
        retries = Hashtbl.create 16;
        watchdog = Queue.create ();
        machine;
        mode = Translating;
        translating = None;
        doomed = false;
        ck = None;
        ck_step = 0;
        outstanding = [];
        downgrade_pending = false;
        finished = None;
        out_prefix = "";
        base_cycles = 0;
        slices = 0;
        injected = 0;
        detected = 0;
        retried = 0;
        rolled_back = 0;
      }
    in
    self := Some p;
    p
  in
  let take_checkpoint p =
    let ck = Machine.checkpoint p.machine in
    (* page traffic to stable (level-2) storage *)
    Machine.add_cycles p.machine (t2 * Machine.checkpoint_pages ck);
    p.ck <- Some ck;
    p.ck_step <- (Machine.stats p.machine).Machine.interp_count
  in
  let scrub_and_rollback p =
    if p.outstanding <> [] then begin
      let m = p.machine in
      let step = (Machine.stats m).Machine.interp_count in
      List.iter
        (fun _ ->
          p.detected <- p.detected + 1;
          tell_v p
            (Trace.Fault_detected
               { asid = p.asid;
                 fclass = Injector.class_name Injector.Mem_word });
          recovery_event p ~step)
        p.outstanding;
      let ck = match p.ck with Some ck -> ck | None -> assert false in
      Machine.restore m ck;
      Machine.add_cycles m (t2 * Machine.checkpoint_pages ck);
      (* the restored memory predates some installed translations: drop
         this program's directory entries (and their guards) so every
         working-set entry re-translates against the rewound image *)
      (match Dtb.sharing dtb with
      | (Some Dtb.Tagged | Some Dtb.Partitioned) when n > 1 ->
          ignore (Dtb.invalidate_asid dtb ~asid:p.asid)
      | _ -> Dtb.flush dtb);
      Guard.clear p.guard;
      p.outstanding <- [];
      p.finished <- None;
      p.rolled_back <- p.rolled_back + 1;
      tell_v p
        (Trace.Rollback { asid = p.asid; pages = Machine.checkpoint_pages ck })
    end
  in
  let downgrade p =
    let m_old = p.machine in
    (* slice boundaries of a Translating machine rest on an INTERP word *)
    let dir_addr, dctx, sp_pops =
      match Machine.pc m_old with
      | Machine.Short a -> (
          let w = Machine.peek m_old a in
          match SF.op_of_int (SF.unpack_op w) with
          | SF.Interp_imm -> (SF.unpack_operand w, SF.unpack_ctx w, 0)
          | SF.Interp_stk ->
              let sp = Machine.reg m_old R.sp in
              (Machine.peek m_old (sp - 1), Machine.peek m_old (sp - 2), 2)
          | _ -> assert false)
      | Machine.Long _ -> assert false
    in
    (* the downgraded interpreter keeps the mix's execution backend *)
    let m_new = U.prepare_interp ~timing ?fuel ~layout ?backend p.encoded in
    let sp = Machine.reg m_old R.sp - sp_pops in
    Machine.set_reg m_new R.sp sp;
    Machine.set_reg m_new R.rsp (Machine.reg m_old R.rsp);
    Machine.set_reg m_new R.fp (Machine.reg m_old R.fp);
    Machine.set_reg m_new R.dtop (Machine.reg m_old R.dtop);
    Machine.set_reg m_new R.ctx (Machine.reg m_old R.ctx);
    Machine.set_reg m_new R.dpc dir_addr;
    Machine.set_reg m_new R.dctx dctx;
    let copy_range base limit =
      for a = base to limit - 1 do
        Machine.poke m_new a (Machine.peek m_old a)
      done
    in
    copy_range layout.Layout.op_stack_base sp;
    copy_range layout.Layout.ret_stack_base (Machine.reg m_old R.rsp);
    copy_range layout.Layout.data_base (Machine.reg m_old R.dtop);
    p.out_prefix <- p.out_prefix ^ Machine.output m_old;
    p.base_cycles <- p.base_cycles + (Machine.stats m_old).Machine.cycles;
    Machine.recycle m_old;
    p.machine <- m_new;
    p.mode <- Downgraded;
    p.downgrade_pending <- false;
    p.ck <- None;
    tell_v p (Trace.Downgrade { asid = p.asid })
  in
  let procs = Array.of_list (List.mapi make_proc programs) in
  let switches = ref 0 in
  let flushes0 = Dtb.flushes dtb in
  let last_index = ref (-1) in
  let pick () =
    let rec scan k =
      if k = n then None
      else
        let i = (!last_index + 1 + k) mod n in
        if procs.(i).finished = None then Some i else scan (k + 1)
    in
    scan 0
  in
  let running = ref true in
  while !running do
    match pick () with
    | None -> running := false
    | Some i ->
        let p = procs.(i) in
        if i <> !last_index then begin
          let from_asid =
            if !last_index < 0 then None else Some procs.(!last_index).asid
          in
          let before = Dtb.flushes dtb in
          (* downgraded programs no longer consult the DTB, but the switch
             still changes the current address space — under
             Flush_on_switch that flush is part of the policy's cost *)
          Dtb.switch_to dtb ~asid:p.asid;
          incr switches;
          tell_now (Trace.Switch { from_asid; to_asid = p.asid });
          if Dtb.flushes dtb > before then
            tell_now (Trace.Dtb_flush { asid = p.asid })
        end;
        last_index := i;
        let c0 = p.base_cycles + (Machine.stats p.machine).Machine.cycles in
        slice_c0 := c0;
        if mem_faults && p.mode = Translating && p.ck = None then
          take_checkpoint p;
        let outcome =
          match p.mode with
          | Translating -> Machine.run_dir_quantum p.machine ~quantum
          | Downgraded ->
              let budget =
                if quantum > max_int / interp_cycles_per_dir then max_int
                else quantum * interp_cycles_per_dir
              in
              Machine.run_for p.machine ~budget
        in
        p.slices <- p.slices + 1;
        (match outcome with
        | Machine.Done status -> p.finished <- Some status
        | Machine.Yielded -> ());
        (* A running machine only yields at INTERP boundaries, but a
           fault-corrupted one can die with an error status mid-install,
           leaving the shared directory's translation open.  Close it
           here so flush/invalidate (rollback below, or the next
           Flush_on_switch switch) find the DTB quiescent. *)
        (match p.translating with
        | Some _ ->
            Dtb.abort_translation dtb;
            if fconfig.guards then Guard.abandon p.guard;
            p.translating <- None;
            p.doomed <- false
        | None -> ());
        if p.mode = Translating then begin
          scrub_and_rollback p;
          if p.finished = None then
            if p.downgrade_pending then downgrade p
            else if mem_faults then
              match fconfig.checkpoint_every with
              | Some every
                when (Machine.stats p.machine).Machine.interp_count
                     - p.ck_step
                     >= every ->
                  take_checkpoint p
              | _ -> ()
        end;
        let now = p.base_cycles + (Machine.stats p.machine).Machine.cycles in
        clock := !clock + (now - c0);
        (match p.finished with
        | Some status ->
            tell_now
              (Trace.Completion { asid = p.asid; ok = status = Machine.Halted })
        | None -> tell_now (Trace.Quantum_expiry { asid = p.asid }))
  done;
  let reports =
    Array.to_list procs
    |> List.map (fun p ->
           let stats = Machine.stats p.machine in
           let r =
             {
               pr_name = p.name;
               pr_asid = p.asid;
               pr_status =
                 (match p.finished with Some s -> s | None -> assert false);
               pr_output = p.out_prefix ^ Machine.output p.machine;
               pr_cycles = p.base_cycles + stats.Machine.cycles;
               pr_slices = p.slices;
               pr_arch_hash = arch_fingerprint ~layout p.machine;
               pr_downgraded = p.mode = Downgraded;
               pr_injected = p.injected;
               pr_detected = p.detected;
               pr_retries = p.retried;
               pr_rollbacks = p.rolled_back;
             }
           in
           Machine.recycle p.machine;
           r)
  in
  {
    rr_policy = policy;
    rr_quantum = quantum;
    rr_config = config;
    rr_fconfig = fconfig;
    rr_programs = reports;
    rr_total_cycles = !clock;
    rr_switches = !switches;
    rr_flushes = Dtb.flushes dtb - flushes0;
    rr_trace = trace;
  }

let run ?timing ?fuel ?layout ?backend ?trace_capacity ~policy ~quantum
    ~config ~fconfig ~kind programs =
  run_encoded ?timing ?fuel ?layout ?backend ?trace_capacity ~policy ~quantum
    ~config ~fconfig
    (List.map (fun (name, p) -> (name, Codec.encode kind p)) programs)
