(* Per-entry translation guards; see guard.mli.

   The checksum is an order-dependent polynomial mix over the words in
   emission order, masked to 58 bits.  Single-bit flips are provably
   detected: flipping bit b of the k-th-from-last word changes the sum by
   131^k * 2^b mod 2^58, and since 131^k is odd that product has exactly
   2^b as its power-of-two factor — never 0 mod 2^58. *)

let sum_mask = (1 lsl 58) - 1

let mix h w = ((h * 131) + w) land sum_mask

type record = {
  g_dir_addr : int;
  g_addrs : int array; (* every buffer word of the entry, emission order,
                          including overflow-chain GOTO link words *)
  g_sum : int;
}

type t = {
  tbl : (int, record) Hashtbl.t; (* keyed by entry start (unit) address *)
  mutable installing : (int * int) list option; (* (addr, word), reversed *)
}

let create () = { tbl = Hashtbl.create 64; installing = None }

let begin_install t = t.installing <- Some []

let on_emit t ~addr ~word =
  match t.installing with
  | None -> ()
  | Some ws -> t.installing <- Some ((addr, word) :: ws)

let finish_install t ~dir_addr ~start_addr =
  match t.installing with
  | None -> ()
  | Some ws ->
      t.installing <- None;
      let ws = List.rev ws in
      let addrs = Array.of_list (List.map fst ws) in
      let sum = List.fold_left (fun h (_, w) -> mix h w) 0 ws in
      Hashtbl.replace t.tbl start_addr { g_dir_addr = dir_addr; g_addrs = addrs; g_sum = sum }

let abandon t = t.installing <- None

let check t ~peek ~dir_addr ~start_addr =
  match Hashtbl.find_opt t.tbl start_addr with
  | None -> `Unguarded
  | Some r ->
      if r.g_dir_addr <> dir_addr then `Mismatch
      else
        let sum = Array.fold_left (fun h a -> mix h (peek a)) 0 r.g_addrs in
        if sum = r.g_sum then `Ok (Array.length r.g_addrs)
        else `Corrupt (Array.length r.g_addrs)

let drop t ~start_addr = Hashtbl.remove t.tbl start_addr

let clear t =
  Hashtbl.reset t.tbl;
  t.installing <- None

let guarded t = Hashtbl.length t.tbl
