(** The fault-campaign grid: program mix x fault class x rate x DTB
    sharing policy x quantum x DTB geometry, evaluated on the
    {!Uhm_core.Sweep} pool.

    Every cell runs the same mix under {!Resilient.run_encoded} with
    guards enabled (and checkpoints enabled for [Mem_word] cells),
    compares the final per-program state against a fault-free baseline
    for the same (policy, quantum, geometry), and reports the recovery
    verdict, the cycle overhead relative to that baseline, and the
    fault-lifecycle counts.  Cells are independent and deterministic:
    each derives its injector seed from the campaign seed and its grid
    position, so the result list is byte-identical at any domain
    count and any cell can be re-run alone. *)

module Dtb := Uhm_core.Dtb

type point = {
  fp_class : Injector.fault_class;
  fp_rate : float;
  fp_policy : Dtb.policy;
  fp_quantum : int;
  fp_config : Dtb.config;
  fp_seed : int;                (** the cell's derived injector seed *)
  fp_result : Resilient.result;
  fp_baseline_cycles : int;
  fp_recovered_ok : bool;
      (** every program's final status, output and architectural
          fingerprint equal the fault-free baseline's *)
  fp_overhead : float;          (** total cycles / baseline cycles *)
  fp_injected : int;
  fp_detected : int;
  fp_retries : int;
  fp_rollbacks : int;
  fp_downgrades : int;
}

val default_rates : float list
(** [0; 1e-4; 1e-3; 1e-2] faults per DIR instruction step.  Rate 0 with
    guards on measures the pure guard overhead. *)

val cell_seed : seed:int -> index:int -> int
(** The injector seed of the cell at [index] in submission order. *)

val fault_grid :
  ?domains:int ->
  ?quanta:int list ->
  ?seed:int ->
  ?trace_capacity:int ->
  ?retry_limit:int ->
  ?backoff_cycles:int ->
  ?checkpoint_every:int ->
  ?watchdog_window:int ->
  ?watchdog_threshold:int ->
  kind:Uhm_encoding.Kind.t ->
  classes:Injector.fault_class list ->
  rates:float list ->
  policies:Dtb.policy list ->
  configs:Dtb.config list ->
  (string * Uhm_dir.Program.t) list ->
  point list
(** Cells in submission order: classes outermost, then rates, policies,
    quanta, configs.  Encoding and the fault-free baselines are computed
    once (on the pool) and shared by every cell.  [quanta] defaults to
    [[64]]; expensive cells (high rates, [Mem_word] checkpointing,
    [Flush_on_switch] with small quanta) carry larger cost hints so the
    pool starts them first. *)

module Sweep := Uhm_core.Sweep

val fault_axes :
  quanta:int list ->
  classes:Injector.fault_class list ->
  rates:float list ->
  policies:Dtb.policy list ->
  configs:Dtb.config list ->
  unit ->
  (Injector.fault_class * float * Dtb.policy * int * Dtb.config) list
(** The grid's cell axes in submission order — what cell index [i] of
    {!fault_grid}/{!fault_grid_slots} ran.  Lets a caller describe a
    quarantined cell and build a journal fingerprint. *)

val fault_grid_slots :
  ?domains:int ->
  ?quanta:int list ->
  ?seed:int ->
  ?trace_capacity:int ->
  ?retry_limit:int ->
  ?backoff_cycles:int ->
  ?checkpoint_every:int ->
  ?watchdog_window:int ->
  ?watchdog_threshold:int ->
  ?supervision:Sweep.supervision ->
  ?cached:(int -> point option) ->
  ?cell_hook:(index:int -> attempts:int -> point Sweep.slot -> unit) ->
  ?cell_fuel:int ->
  kind:Uhm_encoding.Kind.t ->
  classes:Injector.fault_class list ->
  rates:float list ->
  policies:Dtb.policy list ->
  configs:Dtb.config list ->
  (string * Uhm_dir.Program.t) list ->
  point Sweep.slot list
(** {!fault_grid} under campaign supervision: a failing cell is retried
    and then quarantined instead of aborting the grid, and [cached]/
    [cell_hook] plug in a {!Uhm_campaign} journal.  [cell_fuel] bounds
    each program's machine with the PR 4 fuel machinery; a cell whose
    mix exhausts fuel {e fails} (quarantine path) — whereas a recovery
    failure remains a reported verdict ([fp_recovered_ok = false]).
    Completed slots are byte-identical to the corresponding
    {!fault_grid} points.  The encode and baseline pre-passes stay
    unsupervised. *)
