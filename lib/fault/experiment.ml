(* The fault-campaign grid; see experiment.mli. *)

module Sweep = Uhm_core.Sweep
module Dtb = Uhm_core.Dtb
module U = Uhm_core.Uhm
module Codec = Uhm_encoding.Codec
module Trace = Uhm_sched.Trace
module Machine = Uhm_machine.Machine

type point = {
  fp_class : Injector.fault_class;
  fp_rate : float;
  fp_policy : Dtb.policy;
  fp_quantum : int;
  fp_config : Dtb.config;
  fp_seed : int;
  fp_result : Resilient.result;
  fp_baseline_cycles : int;
  fp_recovered_ok : bool;
  fp_overhead : float;
  fp_injected : int;
  fp_detected : int;
  fp_retries : int;
  fp_rollbacks : int;
  fp_downgrades : int;
}

let default_rates = [ 0.; 1e-4; 1e-3; 1e-2 ]

(* A cell's injector seed: derived from the campaign seed and the cell's
   grid position, so any cell can be re-run in isolation. *)
let cell_seed ~seed ~index = seed + ((index + 1) * 7919)

let program_summary (r : Resilient.result) =
  List.map
    (fun (p : Resilient.program_report) ->
      (p.Resilient.pr_status, p.Resilient.pr_output, p.Resilient.pr_arch_hash))
    r.Resilient.rr_programs

let fault_axes ~quanta ~classes ~rates ~policies ~configs () =
  List.concat_map
    (fun cls ->
      List.concat_map
        (fun rate ->
          List.concat_map
            (fun policy ->
              List.concat_map
                (fun quantum ->
                  List.map
                    (fun config -> (cls, rate, policy, quantum, config))
                    configs)
                quanta)
            policies)
        rates)
    classes

(* Shared machinery of both grid variants: encodings, the fault-free
   baselines (one per (policy, quantum, config), computed on the pool and
   shared by every cell), the cell list with cost hints, and the
   per-point evaluator.  The encode and baseline pre-passes are the
   grid's input, not cells: they stay unsupervised and fail fast. *)
let fault_grid_prep ?domains ~quanta ~seed ~trace_capacity ~retry_limit
    ~backoff_cycles ~checkpoint_every ~watchdog_window ~watchdog_threshold
    ~kind ~classes ~rates ~policies ~configs ?cell_fuel ~grid_name programs =
  if programs = [] then invalid_arg (grid_name ^ ": no programs");
  if classes = [] || rates = [] || policies = [] || configs = [] || quanta = []
  then invalid_arg (grid_name ^ ": empty grid axis");
  let encodeds =
    Sweep.map ?domains
      (fun (name, p) -> (name, Codec.encode kind p, U.dir_steps_memoized p))
      programs
  in
  let total_steps = List.fold_left (fun acc (_, _, s) -> acc + s) 0 encodeds in
  let encoded_programs = List.map (fun (n, e, _) -> (n, e)) encodeds in
  (* fault-free baselines, one per (policy, quantum, config) *)
  let baseline_keys =
    List.concat_map
      (fun policy ->
        List.concat_map
          (fun quantum ->
            List.map (fun config -> (policy, quantum, config)) configs)
          quanta)
      policies
  in
  let baselines =
    Sweep.map ?domains
      (fun (policy, quantum, config) ->
        let r =
          Resilient.run_encoded ~trace_capacity:1 ~policy ~quantum ~config
            ~fconfig:Resilient.zero encoded_programs
        in
        ((policy, quantum, config), (program_summary r, r.Resilient.rr_total_cycles)))
      baseline_keys
  in
  let cells =
    fault_axes ~quanta ~classes ~rates ~policies ~configs ()
    |> List.mapi (fun index cell -> (index, cell))
  in
  let cost (_, (cls, rate, policy, quantum, _)) =
    let slices = max 1 (total_steps / max 1 quantum) in
    total_steps
    + (match policy with Dtb.Flush_on_switch -> slices * 64 | _ -> 0)
    + int_of_float (float_of_int total_steps *. rate *. 100.)
    + (if cls = Injector.Mem_word then total_steps / 4 else 0)
  in
  let point_of (index, (cls, rate, policy, quantum, config)) =
    let fseed = cell_seed ~seed ~index in
    let fconfig =
      {
        Resilient.injector =
          { Injector.seed = fseed; rates = [ (cls, rate) ]; explicit = [] };
        guards = true;
        checkpoint_every =
          (if cls = Injector.Mem_word then Some checkpoint_every else None);
        retry_limit;
        backoff_cycles;
        watchdog_window;
        watchdog_threshold;
      }
    in
    let result =
      Resilient.run_encoded ?fuel:cell_fuel ~trace_capacity ~policy ~quantum
        ~config ~fconfig encoded_programs
    in
    (* fuel exhaustion is the deterministic wedged-cell budget: it fails
       the cell (supervised grids quarantine it) instead of reporting a
       meaningless point.  A trapped program, by contrast, is a recovery
       *verdict* — it shows up as fp_recovered_ok = false. *)
    List.iter
      (fun (p : Resilient.program_report) ->
        match p.Resilient.pr_status with
        | Machine.Out_of_fuel ->
            failwith (p.Resilient.pr_name ^ " ran out of fuel")
        | _ -> ())
      result.Resilient.rr_programs;
    let base_summary, base_cycles =
      List.assoc (policy, quantum, config) baselines
    in
    let recovered_ok = program_summary result = base_summary in
    let overhead =
      if base_cycles = 0 then 0.
      else
        float_of_int result.Resilient.rr_total_cycles
        /. float_of_int base_cycles
    in
    let sum f =
      List.fold_left
        (fun acc p -> acc + f p)
        0 result.Resilient.rr_programs
    in
    let downgrades =
      List.fold_left
        (fun acc (_, c) -> acc + c.Trace.c_downgrades)
        0
        (Trace.tallies result.Resilient.rr_trace)
    in
    {
      fp_class = cls;
      fp_rate = rate;
      fp_policy = policy;
      fp_quantum = quantum;
      fp_config = config;
      fp_seed = fseed;
      fp_result = result;
      fp_baseline_cycles = base_cycles;
      fp_recovered_ok = recovered_ok;
      fp_overhead = overhead;
      fp_injected = sum (fun p -> p.Resilient.pr_injected);
      fp_detected = sum (fun p -> p.Resilient.pr_detected);
      fp_retries = sum (fun p -> p.Resilient.pr_retries);
      fp_rollbacks = sum (fun p -> p.Resilient.pr_rollbacks);
      fp_downgrades = downgrades;
    }
  in
  (cells, cost, point_of)

let fault_grid ?domains ?(quanta = [ 64 ]) ?(seed = 1)
    ?(trace_capacity = 4096) ?(retry_limit = 3) ?(backoff_cycles = 64)
    ?(checkpoint_every = 1024) ?(watchdog_window = 4096)
    ?(watchdog_threshold = 8) ~kind ~classes ~rates ~policies ~configs
    programs =
  let cells, cost, point_of =
    fault_grid_prep ?domains ~quanta ~seed ~trace_capacity ~retry_limit
      ~backoff_cycles ~checkpoint_every ~watchdog_window ~watchdog_threshold
      ~kind ~classes ~rates ~policies ~configs
      ~grid_name:"Experiment.fault_grid" programs
  in
  Sweep.map ?domains ~cost point_of cells

let fault_grid_slots ?domains ?(quanta = [ 64 ]) ?(seed = 1)
    ?(trace_capacity = 4096) ?(retry_limit = 3) ?(backoff_cycles = 64)
    ?(checkpoint_every = 1024) ?(watchdog_window = 4096)
    ?(watchdog_threshold = 8) ?supervision ?cached ?cell_hook ?cell_fuel
    ~kind ~classes ~rates ~policies ~configs programs =
  let cells, cost, point_of =
    fault_grid_prep ?domains ~quanta ~seed ~trace_capacity ~retry_limit
      ~backoff_cycles ~checkpoint_every ~watchdog_window ~watchdog_threshold
      ~kind ~classes ~rates ~policies ~configs ?cell_fuel
      ~grid_name:"Experiment.fault_grid_slots" programs
  in
  Sweep.map_supervised ?supervision ?cached ?cell_hook ?domains ~cost point_of
    cells
