(** Seeded deterministic fault schedules.

    A {!spec} describes {e what} can go wrong: per-class rates (the
    probability that a fault of that class fires at any given DIR
    instruction step, sampled as geometric inter-arrival gaps) and
    explicit step-stamped events (the directed-test interface).  A {!t}
    is one program's stream: created from [(spec, asid)], it yields the
    same fault sequence on every run — the campaign layer and the
    property tests both lean on this reproducibility.

    Faults are {e consumed}: {!due} hands each arrival out exactly once,
    and the step counter it is keyed on (the machine's cumulative INTERP
    count) is monotonic even across checkpoint rollback, so a replayed
    slice never re-suffers the fault that forced the rollback. *)

type fault_class =
  | Dtb_tag     (** one bit of a resident DTB tag-array key flips *)
  | Psder_word  (** one bit of a word in the translation buffer flips *)
  | Translator  (** the next translation's install is dropped: the words
                    land in the buffer but the directory entry is lost *)
  | Mem_word    (** one bit of a level-1 data-region word flips *)

val all_classes : fault_class list

val class_name : fault_class -> string
(** ["dtb-tag"], ["psder-word"], ["translator"], ["mem-word"] — the keys
    used by trace rollups and command-line interfaces. *)

val class_of_name : string -> fault_class option

type spec = {
  seed : int;
  rates : (fault_class * float) list;
      (** probability per DIR instruction step; entries with rate [<= 0.]
          are inert but still reserve their stream split, so toggling a
          class between 0 and a positive rate never perturbs the other
          classes' schedules *)
  explicit : (int * int * fault_class) list;
      (** [(asid, step, class)]: fire a fault of [class] at the first
          INTERP of [asid] whose cumulative step count reaches [step] *)
}

val zero : spec
(** No rates, no events: a stream that never fires. *)

val is_zero : spec -> bool

val can_inject : spec -> fault_class -> bool
(** Whether the spec can ever produce a fault of the given class. *)

type fault = {
  f_class : fault_class;
  f_step : int;  (** the step the fault was scheduled for *)
  f_r1 : int;    (** target-selection random (non-negative) *)
  f_r2 : int;    (** second random, e.g. which bit to flip *)
}

type t

val create : spec -> asid:int -> t
(** The stream for one program.  Streams for different ASIDs (and
    different classes within one ASID) are split off independent PRNG
    states, so they are reproducible in isolation. *)

val due : t -> step:int -> fault list
(** All faults scheduled at or before [step], in firing order, each
    returned exactly once.  [step] must be non-decreasing across calls
    on one stream (it is the machine's monotonic INTERP count). *)
