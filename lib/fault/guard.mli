(** Per-entry translation guards.

    When a translation is installed into the DTB buffer, the guard layer
    records (per program) the entry's DIR address, the buffer addresses
    of every word emitted for it — overflow-chain links included — and an
    order-dependent checksum over those words.  On every subsequent DTB
    hit the stored DIR address is compared against the requested one
    (catching tag-array corruption, which can make a stale or foreign
    entry answer for the wrong DIR instruction) and the checksum is
    recomputed from the live buffer words (catching buffer-word
    corruption).  The checksum provably detects any single-bit flip of a
    single word — see the proof sketch in [guard.ml] — so with guards
    enabled a corrupted translation is never executed.

    Cycle costs are charged by the caller (the resilience driver), which
    knows the machine and the [t_guard] timing parameter; this module is
    pure bookkeeping. *)

type t

val create : unit -> t

val begin_install : t -> unit
(** Start recording an installation (call where the DTB's
    [begin_translation] happens). *)

val on_emit : t -> addr:int -> word:int -> unit
(** A word was written into the buffer for the open installation.  A
    no-op when no installation is being recorded. *)

val finish_install : t -> dir_addr:int -> start_addr:int -> unit
(** Seal the open installation as the guard record for the entry that
    starts at [start_addr], translating [dir_addr].  Replaces any
    previous record at that address (the unit was re-used). *)

val abandon : t -> unit
(** Discard the open installation without recording it (the translator
    fault model: the install was dropped). *)

val check :
  t ->
  peek:(int -> int) ->
  dir_addr:int ->
  start_addr:int ->
  [ `Ok of int | `Mismatch | `Corrupt of int | `Unguarded ]
(** Verify a hit on the entry at [start_addr] requested for [dir_addr].
    [`Ok n] — checksum over [n] live words matches; [`Mismatch] — the
    record exists but guards a different DIR address (tag corruption);
    [`Corrupt n] — checksum mismatch after reading [n] words;
    [`Unguarded] — no record (a foreign or forged entry; treated as a
    detection by the caller). *)

val drop : t -> start_addr:int -> unit

val clear : t -> unit
(** Forget every record and any open installation (used at rollback,
    when the restored memory no longer matches the recorded sums). *)

val guarded : t -> int
(** Number of guarded entries. *)
