(** Fault injection, guarded translations and recovery over the
    dynamic-translation path.

    The driver runs a program mix round-robin over a shared DTB exactly
    as [Uhm_sched.Mix] does, with three resilience layers threaded
    through the hook points:

    - {b Injection} ({!Injector}): at every INTERP boundary, faults due
      at the current DIR step are applied — DTB tag-key bit flips,
      translation-buffer word bit flips, dropped translator installs,
      and level-1 data-word bit flips.  With {!zero} (or any spec whose
      rates are all zero) the run is {e cycle- and trace-identical} to
      [Mix.run_encoded].

    - {b Detection and recovery}: per-entry {!Guard} checksums are
      verified on every DTB hit (cost [t_guard] per word, charged to the
      machine); a mismatch invalidates the entry and retranslates, with
      per-DIR-address retry counting and exponential cycle backoff.
      Data-word faults are caught by a scrub at slice boundaries and
      recovered by rolling back to the last [Machine.checkpoint] and
      replaying (the replayed cycles stay in the accounts, so recovery
      cost is visible).  Consumed fault arrivals never re-fire during
      replay: the injector is keyed on the monotonic INTERP count.

    - {b Graceful degradation}: a watchdog counts recovery events
      (detections and rollbacks) over a sliding window of DIR steps;
      past the threshold — or when one DIR address exhausts its retry
      budget — the program is {e downgraded} at the next slice boundary:
      its architectural state (stacks, frames, data, decode position) is
      grafted onto a fresh pure-interpretation machine (the paper's §7
      crossover as a fallback) and it finishes without the DTB.  Fault
      injection and checkpointing stop for a downgraded program; its
      cycles and output accumulate across the transition.

    The headline invariant, pinned by QCheck in [test/test_fault.ml]:
    with guards on (and checkpoints on when memory faults are possible),
    the final architectural state and output of every program equal the
    fault-free run's, at every point of the campaign grid. *)

module Machine := Uhm_machine.Machine
module Dtb := Uhm_core.Dtb
module Trace := Uhm_sched.Trace

type config = {
  injector : Injector.spec;
  guards : bool;                  (** verify per-entry checksums on hits *)
  checkpoint_every : int option;  (** DIR steps between checkpoints;
                                      required when the injector can
                                      produce [Mem_word] faults *)
  retry_limit : int;              (** per-DIR-address detections before a
                                      forced downgrade *)
  backoff_cycles : int;           (** base of the exponential recovery
                                      backoff (doubles per attempt,
                                      capped at 64x) *)
  watchdog_window : int;          (** sliding window, in DIR steps *)
  watchdog_threshold : int;       (** recovery events within the window
                                      that trigger a downgrade *)
}

val zero : config
(** No faults, no guards, no checkpoints: byte-identical to [Mix]. *)

val protected : ?checkpoint_every:int -> Injector.spec -> config
(** Guards on, checkpoints on iff the spec can produce [Mem_word]
    faults (default cadence 1024 DIR steps), default retry/watchdog
    parameters. *)

type program_report = {
  pr_name : string;
  pr_asid : int;
  pr_status : Machine.status;
  pr_output : string;
  pr_cycles : int;      (** across a downgrade transition, if any *)
  pr_slices : int;
  pr_arch_hash : int;   (** fingerprint of sp/fp/dtop, the live operand
                            stack and the live data region — the
                            recovery invariant's state summary *)
  pr_downgraded : bool;
  pr_injected : int;
  pr_detected : int;
  pr_retries : int;
  pr_rollbacks : int;
}

type result = {
  rr_policy : Dtb.policy;
  rr_quantum : int;
  rr_config : Dtb.config;
  rr_fconfig : config;
  rr_programs : program_report list;
  rr_total_cycles : int;
  rr_switches : int;
  rr_flushes : int;
  rr_trace : Trace.t;
}

val run_encoded :
  ?timing:Uhm_machine.Timing.t ->
  ?fuel:int ->
  ?layout:Uhm_psder.Layout.t ->
  ?backend:Machine.backend ->
  ?trace_capacity:int ->
  policy:Dtb.policy ->
  quantum:int ->
  config:Dtb.config ->
  fconfig:config ->
  (string * Uhm_encoding.Codec.encoded) list ->
  result
(** Round-robin over the mix with [quantum] DIR steps per slice (a
    downgraded program is sliced by an equivalent cycle budget).
    [backend] (default [`Decode]) selects every machine's execution
    backend, including a downgraded program's replacement interpreter;
    under a zero-fault injector the two backends are result- and
    trace-identical.  The threaded backend's compiled closures die with
    their DTB entry (guard-detected invalidation included), so fault
    recovery never executes a stale closure.
    Raises [Invalid_argument] on an empty mix, a quantum below 1, or a
    spec that can produce [Mem_word] faults without [checkpoint_every]. *)

val run :
  ?timing:Uhm_machine.Timing.t ->
  ?fuel:int ->
  ?layout:Uhm_psder.Layout.t ->
  ?backend:Machine.backend ->
  ?trace_capacity:int ->
  policy:Dtb.policy ->
  quantum:int ->
  config:Dtb.config ->
  fconfig:config ->
  kind:Uhm_encoding.Kind.t ->
  (string * Uhm_dir.Program.t) list ->
  result
(** {!run_encoded} after encoding each program with [kind]. *)

val arch_fingerprint : layout:Uhm_psder.Layout.t -> Machine.t -> int
(** The fingerprint behind [pr_arch_hash], usable on any machine laid
    out with [layout]. *)
