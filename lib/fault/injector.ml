(* Seeded deterministic fault scheduling; see injector.mli.

   The generator is SplitMix64: a 64-bit counter advanced by the golden
   gamma and finalised through a 3-round mixer.  Splitting derives an
   independent stream from a parent by mixing a fresh draw into a new
   state, so every (seed, asid, class) triple gets its own reproducible
   sequence regardless of how the other streams are consumed. *)

type fault_class = Dtb_tag | Psder_word | Translator | Mem_word

let all_classes = [ Dtb_tag; Psder_word; Translator; Mem_word ]

let class_name = function
  | Dtb_tag -> "dtb-tag"
  | Psder_word -> "psder-word"
  | Translator -> "translator"
  | Mem_word -> "mem-word"

let class_of_name = function
  | "dtb-tag" -> Some Dtb_tag
  | "psder-word" -> Some Psder_word
  | "translator" -> Some Translator
  | "mem-word" -> Some Mem_word
  | _ -> None

(* -- SplitMix64 -------------------------------------------------------------- *)

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

type rng = { mutable state : int64 }

let next_i64 r =
  r.state <- Int64.add r.state golden_gamma;
  mix64 r.state

(* 62-bit non-negative draw: target selection arithmetic stays in [int] *)
let next_int r = Int64.to_int (Int64.shift_right_logical (next_i64 r) 2)

(* uniform in [0, 1) from the top 53 bits *)
let next_float r =
  Int64.to_float (Int64.shift_right_logical (next_i64 r) 11) *. 0x1p-53

let split r = { state = mix64 (next_i64 r) }

(* -- Specifications ----------------------------------------------------------- *)

type spec = {
  seed : int;
  rates : (fault_class * float) list;
  explicit : (int * int * fault_class) list;
}

let zero = { seed = 0; rates = []; explicit = [] }

let is_zero s =
  List.for_all (fun (_, r) -> r <= 0.) s.rates && s.explicit = []

let can_inject s cls =
  List.exists (fun (c, r) -> c = cls && r > 0.) s.rates
  || List.exists (fun (_, _, c) -> c = cls) s.explicit

type fault = {
  f_class : fault_class;
  f_step : int;
  f_r1 : int;
  f_r2 : int;
}

(* -- Per-program streams ------------------------------------------------------ *)

type arrival = {
  a_class : fault_class;
  a_rate : float;
  a_rng : rng;
  mutable a_next : int;
}

type t = {
  arrivals : arrival list;
  mutable pending : (int * fault_class) list; (* explicit, sorted by step *)
  draw : rng; (* target-selection randoms for explicit events *)
}

(* Geometric inter-arrival gap for per-step probability [p]: the number of
   Bernoulli trials up to and including the first success. *)
let gap rng p =
  if p >= 1. then begin
    ignore (next_float rng);
    1
  end
  else
    let u = next_float rng in
    let g = 1. +. (Float.log (1. -. u) /. Float.log (1. -. p)) in
    if Float.is_nan g || g >= float_of_int max_int then max_int
    else max 1 (int_of_float g)

let sat_add a b = if a > max_int - b then max_int else a + b

let create spec ~asid =
  if asid < 0 then invalid_arg "Injector.create: negative asid";
  let root =
    {
      state =
        mix64
          (Int64.add (Int64.of_int spec.seed)
             (Int64.mul golden_gamma (Int64.of_int (asid + 1))));
    }
  in
  (* one split per declared class, in declaration order, so adding or
     removing a zero-rate entry never perturbs the other streams' draws *)
  let arrivals =
    List.filter_map
      (fun (c, p) ->
        let r = split root in
        if p <= 0. then None
        else
          let a = { a_class = c; a_rate = p; a_rng = r; a_next = 0 } in
          a.a_next <- gap a.a_rng a.a_rate;
          Some a)
      spec.rates
  in
  let pending =
    List.filter_map
      (fun (a, step, c) -> if a = asid then Some (step, c) else None)
      spec.explicit
    |> List.sort compare
  in
  { arrivals; pending; draw = split root }

(* Target randoms come from the class's own gap stream (gap, r1, r2, gap,
   ...), so the schedule AND the targets of one class are independent of
   every other class and of the polling stride. *)
let due t ~step =
  let out = ref [] in
  List.iter
    (fun a ->
      while a.a_next <= step do
        out :=
          {
            f_class = a.a_class;
            f_step = a.a_next;
            f_r1 = next_int a.a_rng;
            f_r2 = next_int a.a_rng;
          }
          :: !out;
        a.a_next <- sat_add a.a_next (gap a.a_rng a.a_rate)
      done)
    t.arrivals;
  let rec take () =
    match t.pending with
    | (s, c) :: rest when s <= step ->
        t.pending <- rest;
        out :=
          { f_class = c; f_step = s; f_r1 = next_int t.draw;
            f_r2 = next_int t.draw }
          :: !out;
        take ()
    | _ -> ()
  in
  take ();
  (* firing order is by step, stable across classes *)
  List.stable_sort
    (fun a b -> compare a.f_step b.f_step)
    (List.rev !out)
