(* Seeded deterministic fault scheduling; see injector.mli.

   The generator is {!Uhm_core.Prng} (SplitMix64), whose splitting
   derives an independent stream from a parent, so every (seed, asid,
   class) triple gets its own reproducible sequence regardless of how
   the other streams are consumed.  The generator lived here until PR 7
   extracted it for the load service; the draw discipline is unchanged,
   so seeded campaign goldens are bit-identical across the move. *)

module Prng = Uhm_core.Prng

type fault_class = Dtb_tag | Psder_word | Translator | Mem_word

let all_classes = [ Dtb_tag; Psder_word; Translator; Mem_word ]

let class_name = function
  | Dtb_tag -> "dtb-tag"
  | Psder_word -> "psder-word"
  | Translator -> "translator"
  | Mem_word -> "mem-word"

let class_of_name = function
  | "dtb-tag" -> Some Dtb_tag
  | "psder-word" -> Some Psder_word
  | "translator" -> Some Translator
  | "mem-word" -> Some Mem_word
  | _ -> None

(* -- Specifications ----------------------------------------------------------- *)

type spec = {
  seed : int;
  rates : (fault_class * float) list;
  explicit : (int * int * fault_class) list;
}

let zero = { seed = 0; rates = []; explicit = [] }

let is_zero s =
  List.for_all (fun (_, r) -> r <= 0.) s.rates && s.explicit = []

let can_inject s cls =
  List.exists (fun (c, r) -> c = cls && r > 0.) s.rates
  || List.exists (fun (_, _, c) -> c = cls) s.explicit

type fault = {
  f_class : fault_class;
  f_step : int;
  f_r1 : int;
  f_r2 : int;
}

(* -- Per-program streams ------------------------------------------------------ *)

type arrival = {
  a_class : fault_class;
  a_rate : float;
  a_rng : Prng.t;
  mutable a_next : int;
}

type t = {
  arrivals : arrival list;
  mutable pending : (int * fault_class) list; (* explicit, sorted by step *)
  draw : Prng.t; (* target-selection randoms for explicit events *)
}

let gap rng p = Prng.geometric rng ~p

let sat_add a b = if a > max_int - b then max_int else a + b

let create spec ~asid =
  if asid < 0 then invalid_arg "Injector.create: negative asid";
  let root = Prng.create ~seed:spec.seed ~stream:asid in
  (* one split per declared class, in declaration order, so adding or
     removing a zero-rate entry never perturbs the other streams' draws *)
  let arrivals =
    List.filter_map
      (fun (c, p) ->
        let r = Prng.split root in
        if p <= 0. then None
        else
          let a = { a_class = c; a_rate = p; a_rng = r; a_next = 0 } in
          a.a_next <- gap a.a_rng a.a_rate;
          Some a)
      spec.rates
  in
  let pending =
    List.filter_map
      (fun (a, step, c) -> if a = asid then Some (step, c) else None)
      spec.explicit
    |> List.sort compare
  in
  { arrivals; pending; draw = Prng.split root }

(* Target randoms come from the class's own gap stream (gap, r1, r2, gap,
   ...), so the schedule AND the targets of one class are independent of
   every other class and of the polling stride. *)
let due t ~step =
  let out = ref [] in
  List.iter
    (fun a ->
      while a.a_next <= step do
        out :=
          {
            f_class = a.a_class;
            f_step = a.a_next;
            f_r1 = Prng.next_int a.a_rng;
            f_r2 = Prng.next_int a.a_rng;
          }
          :: !out;
        a.a_next <- sat_add a.a_next (gap a.a_rng a.a_rate)
      done)
    t.arrivals;
  let rec take () =
    match t.pending with
    | (s, c) :: rest when s <= step ->
        t.pending <- rest;
        out :=
          { f_class = c; f_step = s; f_r1 = Prng.next_int t.draw;
            f_r2 = Prng.next_int t.draw }
          :: !out;
        take ()
    | _ -> ()
  in
  take ();
  (* firing order is by step, stable across classes *)
  List.stable_sort
    (fun a b -> compare a.f_step b.f_step)
    (List.rev !out)
