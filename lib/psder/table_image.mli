(** Allocator for the level-1 decode-table region: dispatch tables, contour
    width tables, Huffman decode trees.  The accumulated image is poked
    into simulated memory (at [base]) by the strategy wiring. *)

type t

val create : base:int -> capacity:int -> t

val add : t -> int array -> int
(** [add t words] appends [words] and returns their absolute address.
    Raises [Failure] when the region is exhausted. *)

val reserve : t -> int -> int
(** [reserve t n] appends [n] zero words (to be patched later). *)

val patch : t -> addr:int -> index:int -> int -> unit
(** [patch t ~addr ~index v] overwrites slot [index] of the block returned
    by a previous {!add}/{!reserve} at [addr]. *)

val image : t -> int array
val base : t -> int
val length : t -> int
