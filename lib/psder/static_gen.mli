(** Static PSDER image: the whole program pre-translated to short-format
    words, resident in level-2 memory — the "PSDER as the static
    representation" point of the paper's Figure-1 space.  Control transfers
    use translated buffer addresses directly (GOTO / GOTO-stack); nothing is
    decoded at run time. *)

type t = {
  words : int array;         (** poke at [layout.psder_static_base] *)
  addr_of_instr : int array; (** absolute memory address per DIR instruction *)
  entry_addr : int;
}

val word_count : Runtime.t -> Uhm_dir.Isa.instr -> int
(** Words in one instruction's static translation. *)

val build : layout:Layout.t -> rt:Runtime.t -> Uhm_dir.Program.t -> t
(** Raises [Failure] if the image exceeds the psder-static region. *)

val size_bits : t -> int
