(* DER expansion: compile a DIR program directly into host machine code
   ("the expanded machine language representation", paper §2.3/§3.1).

   Every DIR instruction becomes the inlined body of its semantic routine
   with the operand fields as immediates — no decoding, no dispatch, no
   operand-field pushes.  Maximum speed, maximum size: the paper's argument
   is that this representation is too large for the fast memory level, so
   the strategy wiring can impose a level-2 fetch penalty via the machine's
   code-fetch hook. *)

module Asm = Uhm_machine.Asm
module H = Uhm_machine.Host_isa
module R = Uhm_machine.Host_isa.Regs
module Isa = Uhm_dir.Isa
module Program = Uhm_dir.Program

type t = {
  program : Asm.program;
  entry : int;
  code_instructions : int;  (* host instructions in the expansion *)
}

let frame_header = Isa.frame_header_size

let build (p : Program.t) =
  let b = Asm.create () in
  Asm.set_category b Asm.Der;
  let code = p.Program.code in
  let n = Array.length code in
  let labels = Array.init n (fun _ -> Asm.new_label b) in
  (* r2 := frame base after [hops] static links, unrolled (hops is a
     compile-time constant here) *)
  let walk hops =
    Asm.mv b 2 R.fp;
    for _ = 1 to hops do
      Asm.load b 2 2 0
    done
  in
  let var_addr hops offset =
    (* r2 := base; the caller reads/writes at offset [frame_header+offset] *)
    walk hops;
    ignore offset
  in
  let binop alu_op =
    Asm.pop_op b 1;
    Asm.pop_op b 0;
    Asm.alu b alu_op 0 0 1;
    Asm.push_op b 0
  in
  Array.iteri
    (fun i { Isa.op; a; b = fb; c } ->
      Asm.place b labels.(i);
      match op with
      | Isa.Lit ->
          Asm.li b 0 a;
          Asm.push_op b 0
      | Isa.Load ->
          var_addr a fb;
          Asm.load b 0 2 (frame_header + fb);
          Asm.push_op b 0
      | Isa.Store ->
          var_addr a fb;
          Asm.pop_op b 0;
          Asm.store b 0 2 (frame_header + fb)
      | Isa.Addr ->
          var_addr a fb;
          Asm.alui b H.Add 0 2 (frame_header + fb);
          Asm.push_op b 0
      | Isa.Loadi ->
          Asm.pop_op b 0;
          Asm.load b 1 0 0;
          Asm.push_op b 1
      | Isa.Storei ->
          Asm.pop_op b 1;
          Asm.pop_op b 0;
          Asm.store b 1 0 0
      | Isa.Index -> binop H.Add
      | Isa.Dup ->
          Asm.pop_op b 0;
          Asm.push_op b 0;
          Asm.push_op b 0
      | Isa.Drop -> Asm.pop_op b 0
      | Isa.Swap ->
          Asm.pop_op b 0;
          Asm.pop_op b 1;
          Asm.push_op b 0;
          Asm.push_op b 1
      | Isa.Add -> binop H.Add
      | Isa.Sub -> binop H.Sub
      | Isa.Mul -> binop H.Mul
      | Isa.Div -> binop H.Div
      | Isa.Mod -> binop H.Mod
      | Isa.Neg ->
          Asm.pop_op b 0;
          Asm.li b 1 0;
          Asm.alu b H.Sub 0 1 0;
          Asm.push_op b 0
      | Isa.Eq -> binop H.Seq
      | Isa.Ne -> binop H.Sne
      | Isa.Lt -> binop H.Slt
      | Isa.Le -> binop H.Sle
      | Isa.Gt -> binop H.Sgt
      | Isa.Ge -> binop H.Sge
      | Isa.And ->
          Asm.pop_op b 1;
          Asm.pop_op b 0;
          Asm.alui b H.Sne 0 0 0;
          Asm.alui b H.Sne 1 1 0;
          Asm.alu b H.And 0 0 1;
          Asm.push_op b 0
      | Isa.Or ->
          Asm.pop_op b 1;
          Asm.pop_op b 0;
          Asm.alu b H.Or 0 0 1;
          Asm.alui b H.Sne 0 0 0;
          Asm.push_op b 0
      | Isa.Not ->
          Asm.pop_op b 0;
          Asm.alui b H.Seq 0 0 0;
          Asm.push_op b 0
      | Isa.Jump -> Asm.jmp b labels.(a)
      | Isa.Jz ->
          Asm.pop_op b 0;
          Asm.jz b 0 labels.(a)
      | Isa.Cjeq | Isa.Cjne | Isa.Cjlt | Isa.Cjle | Isa.Cjgt | Isa.Cjge ->
          let cmp =
            match op with
            | Isa.Cjeq -> H.Seq
            | Isa.Cjne -> H.Sne
            | Isa.Cjlt -> H.Slt
            | Isa.Cjle -> H.Sle
            | Isa.Cjgt -> H.Sgt
            | _ -> H.Sge
          in
          Asm.pop_op b 1;
          Asm.pop_op b 0;
          Asm.alu b cmp 0 0 1;
          Asm.jz b 0 labels.(a)
      | Isa.Call ->
          (* ret := host address of the continuation *)
          let continuation = Asm.new_label b in
          walk fb;
          Asm.mv b 3 R.dtop;
          Asm.store b 2 3 0;
          Asm.store b R.fp 3 1;
          Asm.li_lbl b 1 continuation;
          Asm.store b 1 3 2;
          Asm.store b R.ctx 3 3;
          Asm.mv b R.fp 3;
          Asm.alui b H.Add R.dtop 3 frame_header;
          Asm.jmp b labels.(a);
          Asm.place b continuation
      | Isa.Enter ->
          Asm.li b R.ctx c;
          (* pop the args into their slots, last argument on top *)
          for k = a - 1 downto 0 do
            Asm.pop_op b 0;
            Asm.store b 0 R.fp (frame_header + k)
          done;
          (* zero the locals *)
          (if fb > 0 then begin
             Asm.li b 3 fb;
             Asm.li b 4 0;
             Asm.alui b H.Add 5 R.fp (frame_header + a);
             let loop = Asm.new_label b and done_ = Asm.new_label b in
             Asm.place b loop;
             Asm.jz b 3 done_;
             Asm.store b 4 5 0;
             Asm.alui b H.Add 5 5 1;
             Asm.alui b H.Sub 3 3 1;
             Asm.jmp b loop;
             Asm.place b done_
           end);
          Asm.alui b H.Add R.dtop R.fp (frame_header + a + fb)
      | Isa.Ret ->
          Asm.load b 0 R.fp 2;
          Asm.load b 1 R.fp 3;
          Asm.mv b R.ctx 1;
          Asm.load b 2 R.fp 1;
          Asm.mv b R.dtop R.fp;
          Asm.mv b R.fp 2;
          Asm.jmp_r b 0
      | Isa.Print ->
          Asm.pop_op b 0;
          Asm.out b 0
      | Isa.Printc ->
          Asm.pop_op b 0;
          Asm.out_c b 0
      | Isa.Halt -> Asm.halt b
      | Isa.Litadd ->
          Asm.pop_op b 0;
          Asm.alui b H.Add 0 0 a;
          Asm.push_op b 0
      | Isa.Litsub ->
          Asm.pop_op b 0;
          Asm.alui b H.Sub 0 0 a;
          Asm.push_op b 0
      | Isa.Litmul ->
          Asm.pop_op b 0;
          Asm.alui b H.Mul 0 0 a;
          Asm.push_op b 0
      | Isa.Loadadd | Isa.Loadsub | Isa.Loadmul ->
          let alu_op =
            match op with
            | Isa.Loadadd -> H.Add
            | Isa.Loadsub -> H.Sub
            | _ -> H.Mul
          in
          var_addr a fb;
          Asm.load b 1 2 (frame_header + fb);
          Asm.pop_op b 0;
          Asm.alu b alu_op 0 0 1;
          Asm.push_op b 0
      | Isa.Incvar | Isa.Decvar ->
          let delta = match op with Isa.Incvar -> 1 | _ -> -1 in
          var_addr a fb;
          Asm.load b 0 2 (frame_header + fb);
          Asm.alui b H.Add 0 0 delta;
          Asm.store b 0 2 (frame_header + fb))
    code;
  (* guard against running off the end (validation forbids it, but a DER
     image should be self-contained) *)
  Asm.break b "fell off the end of the DER code";
  let program = Asm.finish b in
  {
    program;
    entry = Asm.resolve b labels.(p.Program.entry);
    code_instructions = Array.length program.Asm.code;
  }
