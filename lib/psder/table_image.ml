(* Allocator for the level-1 decode-table region: dispatch tables, contour
   width tables, Huffman decode trees.  The accumulated image is poked into
   simulated memory by the strategy wiring in [uhm_core]. *)

type t = {
  base : int;
  capacity : int;
  mutable words : int array;
  mutable len : int;
}

let create ~base ~capacity =
  { base; capacity; words = Array.make 256 0; len = 0 }

let ensure t n =
  if t.len + n > Array.length t.words then begin
    let size = ref (Array.length t.words) in
    while !size < t.len + n do
      size := !size * 2
    done;
    let fresh = Array.make !size 0 in
    Array.blit t.words 0 fresh 0 t.len;
    t.words <- fresh
  end

let add t values =
  let n = Array.length values in
  if t.len + n > t.capacity then
    failwith "Table_image.add: decode-table region exhausted";
  ensure t n;
  let addr = t.base + t.len in
  Array.blit values 0 t.words t.len n;
  t.len <- t.len + n;
  addr

let reserve t n = add t (Array.make n 0)

let patch t ~addr ~index v =
  let pos = addr - t.base + index in
  if pos < 0 || pos >= t.len then invalid_arg "Table_image.patch: out of range";
  t.words.(pos) <- v

let image t = Array.sub t.words 0 t.len
let base t = t.base
let length t = t.len
