(* Decoder generation: for each encoding kind, emit the host-code routine
   that decodes one DIR instruction at the current DPC.

   Contract (see DESIGN.md):
     entry : dpc = bit address of the instruction; the ctx / dctx registers
             hold the contour and digram decoding contexts
     exit  : r8 = opcode enum, r9/r10/r11 = operand fields (branch targets
             as bit addresses), dpc = bit address of the textual successor
   The routine is tagged [Asm.Decode]; its measured cycles are the paper's
   d.  Registers r12-r15 are scratch; r0-r7 are untouched. *)

module Asm = Uhm_machine.Asm
module H = Uhm_machine.Host_isa
module R = Uhm_machine.Host_isa.Regs
module Isa = Uhm_dir.Isa
module Codec = Uhm_encoding.Codec
module Kind = Uhm_encoding.Kind
module Code = Uhm_huffman.Code
module Conditional = Uhm_huffman.Conditional

(* r12 holds a zigzag value; replace it with the signed original.
   Clobbers r13. *)
let emit_unzigzag b =
  let negative = Asm.new_label b and done_ = Asm.new_label b in
  Asm.alui b H.And 13 12 1;
  Asm.alui b H.Shr 12 12 1;
  Asm.jnz b 13 negative;
  Asm.jmp b done_;
  Asm.place b negative;
  Asm.alui b H.Xor 12 12 (-1);
  Asm.place b done_

(* nibble-chain decode into r12 (clobbers r13). *)
let emit_get_nibble b =
  let uloop = Asm.new_label b and udone = Asm.new_label b in
  Asm.li b 12 0;
  Asm.place b uloop;
  Asm.get_bits b 13 1;
  Asm.jz b 13 udone;
  Asm.alui b H.Add 12 12 1;
  Asm.jmp b uloop;
  Asm.place b udone;
  Asm.alui b H.Add 12 12 1;
  Asm.alui b H.Shl 12 12 2;
  Asm.get_bits_r b 12 12

(* word16 operand field into [dest]: one 16-bit unit, or an escaped
   five-unit wide operand (see the codec).  Clobbers r12, r13. *)
let emit_get_u16_field b ~dest =
  let plain = Asm.new_label b in
  Asm.get_bits b dest 16;
  Asm.alui b H.Sne 13 dest 0xFFFF;
  Asm.jnz b 13 plain;
  Asm.li b dest 0;
  for _ = 1 to 4 do
    Asm.alui b H.Shl dest dest 16;
    Asm.get_bits b 13 16;
    Asm.alu b H.Or dest dest 13
  done;
  Asm.place b plain

(* Huffman decode-tree walk with the tree base in [tree_base_reg]; leaves
   the symbol in [result].  Clobbers r12, r13. *)
let emit_tree_walk b ~tree_base_reg ~result =
  let loop = Asm.new_label b and leaf = Asm.new_label b in
  Asm.li b result 0;
  Asm.place b loop;
  Asm.get_bits b 12 1;
  Asm.alu b H.Add 13 result result;
  Asm.alu b H.Add 13 13 12;
  Asm.alu b H.Add 13 13 tree_base_reg;
  Asm.load b 13 13 0;
  Asm.jneg b 13 leaf;
  Asm.mv b result 13;
  Asm.jmp b loop;
  Asm.place b leaf;
  Asm.alui b H.Xor result 13 (-1)

(* Hardware-assisted decode (paper section 8's alternative to the DTB):
   the whole decode is one DecodeAssist instruction handled by a hardware
   unit (the machine's decode-assist hook). *)
let build_assist b =
  Asm.routine b Asm.Decode (fun () ->
      Asm.decode_assist b;
      Asm.ret b)

let build b ~tables ~(encoded : Codec.encoded) =
  let widths, contour_tab, huff_code, digram_code =
    match encoded.Codec.tables with
    | Codec.T_word16 w -> (w, None, None, None)
    | Codec.T_packed w -> (w, None, None, None)
    | Codec.T_contextual (w, tab) -> (w, Some tab, None, None)
    | Codec.T_huffman (w, code) -> (w, None, Some code, None)
    | Codec.T_digram (w, cond) -> (w, None, None, Some cond)
  in
  let contour_tab_addr =
    Option.map
      (fun tab ->
        Table_image.add tables
          (Array.concat
             (Array.to_list
                (Array.map
                   (fun cw -> [| cw.Codec.cw_level; cw.Codec.cw_offset |])
                   tab))))
      contour_tab
  in
  let huff_tree_addr =
    Option.map (fun code -> Table_image.add tables (Code.decode_tree code))
      huff_code
  in
  let digram_base_addr =
    Option.map
      (fun cond ->
        let n = Conditional.contexts cond in
        let bases =
          Array.init n (fun ctx ->
              (* unused contexts still get their (dummy) tree *)
              Table_image.add tables
                (Code.decode_tree (Conditional.code cond ctx)))
        in
        Table_image.add tables bases)
      digram_code
  in
  let kind = encoded.Codec.kind in
  let variable_operands =
    match kind with
    | Kind.Huffman | Kind.Huffman_b1700 | Kind.Digram -> true
    | _ -> false
  in
  let w = widths in
  let shape_table_addr = Table_image.reserve tables Isa.opcode_count in
  Asm.routine b Asm.Decode (fun () ->
      (* ---- opcode field ---- *)
      (match kind with
      | Kind.Word16 ->
          Asm.get_bits b 8 16;
          Asm.alui b H.Shr 8 8 10
      | Kind.Packed | Kind.Contextual -> Asm.get_bits b 8 w.Codec.w_opcode
      | Kind.Huffman | Kind.Huffman_b1700 ->
          Asm.li b 14 (Option.get huff_tree_addr);
          emit_tree_walk b ~tree_base_reg:14 ~result:8
      | Kind.Digram ->
          Asm.alui b H.Add 14 R.dctx (Option.get digram_base_addr);
          Asm.load b 14 14 0;
          emit_tree_walk b ~tree_base_reg:14 ~result:8);
      (* ---- operand fields, via the per-opcode shape table ---- *)
      Asm.alui b H.Add 12 8 shape_table_addr;
      Asm.load b 12 12 0;
      Asm.jmp_r b 12;

      let load_name_widths () =
        (* r14 = level width, r15 = offset width *)
        match contour_tab_addr with
        | Some addr ->
            Asm.alu b H.Add 12 R.ctx R.ctx;
            Asm.alui b H.Add 12 12 addr;
            Asm.load b 14 12 0;
            Asm.load b 15 12 1
        | None ->
            Asm.li b 14 w.Codec.w_level;
            Asm.li b 15 w.Codec.w_offset
      in

      let arm shape body =
        let addr = Asm.here b in
        body ();
        Asm.ret b;
        (* route every opcode of this shape to the arm *)
        Array.iter
          (fun op ->
            if Isa.equal_shape (Isa.shape op) shape then
              Table_image.patch tables ~addr:shape_table_addr
                ~index:(Isa.opcode_to_enum op) addr)
          Isa.all_opcodes
      in

      arm Isa.Shape_none (fun () -> ());

      arm Isa.Shape_imm (fun () ->
          (match kind with
          | Kind.Word16 -> emit_get_u16_field b ~dest:12
          | Kind.Packed | Kind.Contextual -> Asm.get_bits b 12 w.Codec.w_imm
          | Kind.Huffman | Kind.Huffman_b1700 | Kind.Digram -> emit_get_nibble b);
          emit_unzigzag b;
          Asm.mv b 9 12);

      arm Isa.Shape_var (fun () ->
          match kind with
          | Kind.Word16 ->
              emit_get_u16_field b ~dest:9;
              emit_get_u16_field b ~dest:10
          | Kind.Packed | Kind.Contextual ->
              load_name_widths ();
              Asm.get_bits_r b 9 14;
              Asm.get_bits_r b 10 15
          | Kind.Huffman | Kind.Huffman_b1700 | Kind.Digram ->
              Asm.get_bits b 9 w.Codec.w_level;
              emit_get_nibble b;
              Asm.mv b 10 12);

      arm Isa.Shape_target (fun () ->
          match kind with
          | Kind.Word16 ->
              Asm.get_bits b 9 16;
              Asm.alui b H.Shl 9 9 4
          | _ -> Asm.get_bits b 9 w.Codec.w_target);

      arm Isa.Shape_call (fun () ->
          match kind with
          | Kind.Word16 ->
              Asm.get_bits b 9 16;
              Asm.alui b H.Shl 9 9 4;
              emit_get_u16_field b ~dest:10
          | Kind.Packed | Kind.Contextual ->
              Asm.get_bits b 9 w.Codec.w_target;
              load_name_widths ();
              Asm.get_bits_r b 10 14
          | Kind.Huffman | Kind.Huffman_b1700 | Kind.Digram ->
              Asm.get_bits b 9 w.Codec.w_target;
              Asm.get_bits b 10 w.Codec.w_level);

      arm Isa.Shape_enter (fun () ->
          (if variable_operands then begin
             emit_get_nibble b;
             Asm.mv b 9 12;
             emit_get_nibble b;
             Asm.mv b 10 12
           end
           else
             match kind with
             | Kind.Word16 ->
                 emit_get_u16_field b ~dest:9;
                 emit_get_u16_field b ~dest:10
             | _ ->
                 Asm.get_bits b 9 w.Codec.w_args;
                 Asm.get_bits b 10 w.Codec.w_locals);
          match kind with
          | Kind.Word16 -> emit_get_u16_field b ~dest:11
          | _ -> Asm.get_bits b 11 w.Codec.w_ctx))
