(* The dynamic translator (paper §6.2, Figure 4).

   Host code entered on a DTB miss with the hardware having set:
     dpc  := the missing DIR instruction's bit address
     dctx := the decode context carried by the INTERP instruction
   The translator decodes one DIR instruction (shared decode routine, cost
   d), then its per-opcode arm constructs the PSDER translation word by word
   and hands each to the hardware emission queue (EmitShort), finishing with
   EndTrans, which installs the translation and transfers control into it.
   Arm cycles are tagged [Asm.Translate]: the paper's g.

   With [block = Some limit] the translator keeps decoding and emitting
   across straight-line code (anything that falls through, including Enter)
   until a control transfer or the limit, producing one buffer entry per
   basic-block run — the modern-JIT refinement of the paper's
   one-instruction translation units. *)

module Asm = Uhm_machine.Asm
module H = Uhm_machine.Host_isa
module R = Uhm_machine.Host_isa.Regs
module SF = Uhm_machine.Short_format
module Isa = Uhm_dir.Isa
module Stats = Uhm_dir.Static_stats
module Codec = Uhm_encoding.Codec

type t = {
  program : Asm.program;
  translator_entry : int;
  dispatch_entry : int;
  (* entry that skips the decode: r8-r11 and dpc already hold a decoded
     instruction (the two-level translation path, paper section 4) *)
  table_image : int array;
}

let enum = Isa.opcode_to_enum

let build ~compound ~block ~assist ~layout ~(encoded : Codec.encoded) =
  let b = Asm.create () in
  let tables =
    Table_image.create ~base:layout.Layout.table_base
      ~capacity:layout.Layout.table_size
  in
  let decode =
    if assist then Decode_gen.build_assist b
    else Decode_gen.build b ~tables ~encoded
  in
  let rt = Runtime.build ~compound b ~layout in
  let translate_table_addr = Table_image.reserve tables Isa.opcode_count in
  (* block-mode bookkeeping: r7 counts instructions in the open block; r6
     holds the decode context of the would-be successor; [loop] re-enters
     the decode, [flush] emits INTERP(dpc, ctx=r6) and ends the block *)
  let loop_label = Asm.new_label b in
  let flush_label = Asm.new_label b in

  (* Emit one short word whose operand is a compile-time constant. *)
  let word_const w =
    Asm.li b 0 w;
    Asm.emit_short b 0
  in
  (* Emit one short word whose operand comes from a register. *)
  let word_reg ?(ctx = 0) op reg =
    Asm.li b 0 (SF.pack ~ctx op 0);
    Asm.alui b H.Shl 1 reg SF.operand_shift;
    Asm.alu b H.Or 0 0 1;
    Asm.emit_short b 0
  in
  let sem op = rt.Runtime.sem.(enum op) in

  (* A control arm always ends its translation. *)
  let arm op body =
    let addr =
      Asm.routine b Asm.Translate (fun () ->
          body ();
          Asm.end_trans b)
    in
    Table_image.patch tables ~addr:translate_table_addr ~index:(enum op) addr
  in
  (* A falling arm either chains to INTERP(next) (per-instruction mode) or
     continues the decode loop until the block limit. *)
  let falling_arm op body =
    match block with
    | None ->
        arm op (fun () ->
            body ();
            word_reg ~ctx:(enum op) SF.Interp_imm R.dpc)
    | Some limit ->
        let addr =
          Asm.routine b Asm.Translate (fun () ->
              body ();
              Asm.alui b H.Add 7 7 1;
              Asm.li b R.dctx (enum op);
              Asm.li b 6 (enum op);
              Asm.alui b H.Slt 12 7 limit;
              Asm.jz b 12 flush_label;
              Asm.jmp b loop_label)
        in
        Table_image.patch tables ~addr:translate_table_addr ~index:(enum op)
          addr
  in

  Array.iter
    (fun op ->
      match op with
      | Isa.Lit -> falling_arm op (fun () -> word_reg SF.Push_imm 9)
      | Isa.Jump ->
          arm op (fun () -> word_reg ~ctx:Stats.start_context SF.Interp_imm 9)
      | Isa.Halt ->
          arm op (fun () ->
              word_const (SF.pack SF.Call_long rt.Runtime.rt_halt))
      | Isa.Ret ->
          arm op (fun () ->
              word_const (SF.pack SF.Call_long rt.Runtime.rt_ret_dtb);
              word_const (SF.pack SF.Interp_stk 0))
      | Isa.Jz | Isa.Cjeq | Isa.Cjne | Isa.Cjlt | Isa.Cjle | Isa.Cjgt
      | Isa.Cjge ->
          arm op (fun () ->
              word_reg SF.Push_imm R.dpc; (* fall-through DIR address *)
              word_reg SF.Push_imm 9;     (* branch target *)
              word_const (SF.pack SF.Call_long rt.Runtime.cond_dtb.(enum op));
              word_const (SF.pack SF.Interp_stk 0))
      | Isa.Call ->
          arm op (fun () ->
              word_reg SF.Push_imm 10;    (* static hops *)
              word_reg SF.Push_imm R.dpc; (* return DIR address *)
              word_const (SF.pack SF.Call_long rt.Runtime.rt_call);
              word_reg ~ctx:Stats.start_context SF.Interp_imm 9)
      | Isa.Enter ->
          falling_arm op (fun () ->
              word_reg SF.Push_imm 9;
              word_reg SF.Push_imm 10;
              word_reg SF.Push_imm 11;
              word_const (SF.pack SF.Call_long (sem op)))
      | _ ->
          falling_arm op (fun () ->
              (match Isa.shape op with
              | Isa.Shape_none -> ()
              | Isa.Shape_imm -> word_reg SF.Push_imm 9
              | Isa.Shape_var ->
                  word_reg SF.Push_imm 9;
                  word_reg SF.Push_imm 10
              | Isa.Shape_target | Isa.Shape_call | Isa.Shape_enter ->
                  assert false);
              word_const (SF.pack SF.Call_long (sem op))))
    Isa.all_opcodes;

  let dispatch_label = Asm.new_label b in
  let translator_entry =
    Asm.routine b Asm.Translate (fun () ->
        (match block with Some _ -> Asm.li b 7 0 | None -> ());
        Asm.place b loop_label;
        Asm.call_addr b decode;
        Asm.place b dispatch_label;
        Asm.alui b H.Add 12 8 translate_table_addr;
        Asm.load b 12 12 0;
        Asm.jmp_r b 12;
        (* shared block flush: INTERP to the fall-through successor with the
           decode context left in r6 *)
        Asm.place b flush_label;
        match block with
        | None ->
            (* unreachable in per-instruction mode; labels must be placed *)
            Asm.break b "translator flush reached in per-instruction mode"
        | Some _ ->
            (* word = Interp_imm | r6 << op_bits | dpc << operand_shift *)
            Asm.li b 0 (SF.pack SF.Interp_imm 0);
            Asm.alui b H.Shl 1 6 SF.op_bits;
            Asm.alu b H.Or 0 0 1;
            Asm.alui b H.Shl 1 R.dpc SF.operand_shift;
            Asm.alu b H.Or 0 0 1;
            Asm.emit_short b 0;
            Asm.end_trans b)
  in
  let program = Asm.finish b in
  {
    program;
    translator_entry;
    dispatch_entry = Asm.resolve b dispatch_label;
    table_image = Table_image.image tables;
  }
