(* Memory map of the simulated universal host machine.

   Level-1 memory (access time t1) holds everything the paper wants close to
   the processor: the operand and return stacks, the DIR data area (frames),
   the decoder tables, and the DTB's buffer array.  The static PSDER image
   (used by the psder-static strategy) is level-2 resident, as is the DIR
   bit stream itself (handled by the IFU, not by this map). *)

type t = {
  op_stack_base : int;
  op_stack_size : int;
  ret_stack_base : int;
  ret_stack_size : int;
  data_base : int;
  data_size : int;
  table_base : int;
  table_size : int;
  dtb_buffer_base : int;
  dtb_buffer_size : int;
  psder_static_base : int;
  psder_static_size : int;
  mem_words : int;
}

let default =
  let op_stack_base = 0 and op_stack_size = 4 * 1024 in
  let ret_stack_base = op_stack_base + op_stack_size in
  let ret_stack_size = 4 * 1024 in
  let data_base = ret_stack_base + ret_stack_size in
  let data_size = 512 * 1024 in
  let table_base = data_base + data_size in
  let table_size = 64 * 1024 in
  let dtb_buffer_base = table_base + table_size in
  let dtb_buffer_size = 64 * 1024 in
  let psder_static_base = dtb_buffer_base + dtb_buffer_size in
  let psder_static_size = 512 * 1024 in
  {
    op_stack_base;
    op_stack_size;
    ret_stack_base;
    ret_stack_size;
    data_base;
    data_size;
    table_base;
    table_size;
    dtb_buffer_base;
    dtb_buffer_size;
    psder_static_base;
    psder_static_size;
    mem_words = psder_static_base + psder_static_size;
  }

let regions (tm : Uhm_machine.Timing.t) t =
  let t1 = tm.Uhm_machine.Timing.t1 and t2 = tm.Uhm_machine.Timing.t2 in
  let open Uhm_machine.Machine in
  [
    { rname = "op-stack"; base = t.op_stack_base; size = t.op_stack_size;
      cost = t1 };
    { rname = "ret-stack"; base = t.ret_stack_base; size = t.ret_stack_size;
      cost = t1 };
    { rname = "data"; base = t.data_base; size = t.data_size; cost = t1 };
    { rname = "tables"; base = t.table_base; size = t.table_size; cost = t1 };
    { rname = "dtb-buffer"; base = t.dtb_buffer_base; size = t.dtb_buffer_size;
      cost = t1 };
    { rname = "psder-static"; base = t.psder_static_base;
      size = t.psder_static_size; cost = t2 };
  ]
