(** Dynamic-translator generation (paper §6.2, Figure 4).

    The generated long-format program is entered on a DTB miss with the
    hardware having set [dpc] to the missing DIR instruction's bit address
    and [dctx] to the decode context carried by the INTERP word.  It decodes
    (shared decode routine, cost d), then the per-opcode arm emits the PSDER
    translation word by word through the hardware emission queue
    (EmitShort), and finishes with EndTrans.  Arm cycles are tagged
    {!Uhm_machine.Asm.Translate} — the paper's g. *)

module Asm := Uhm_machine.Asm

type t = {
  program : Asm.program;
  translator_entry : int;
  dispatch_entry : int;
  (** entry that skips the decode, for a hit in a second-level decoded
      store: r8-r11 and the dpc register must already hold the decoded
      instruction (multi-level translation, paper §4) *)
  table_image : int array;  (** poke at [layout.table_base] before running *)
}

val build : compound:bool -> block:int option -> assist:bool
  -> layout:Layout.t -> encoded:Uhm_encoding.Codec.encoded -> t
(** [block = Some limit] translates straight-line runs of up to [limit] DIR
    instructions into a single buffer entry (basic-block translation);
    [None] reproduces the paper's one-instruction units.  [assist] as in
    {!Interp_gen.build}. *)
