(* Static PSDER image: the whole program pre-translated to short-format
   words, resident in level-2 memory.  This is the "PSDER as the static
   representation" point of the Figure-1 space: no decoding at run time,
   but a representation roughly three times the size of the packed DIR.

   Control transfers use translated buffer addresses directly (GOTO /
   GOTO-stack), so no DTB and no decode contexts are involved. *)

module SF = Uhm_machine.Short_format
module Isa = Uhm_dir.Isa
module Program = Uhm_dir.Program

type t = {
  words : int array;      (* to be poked at the psder-static region base *)
  addr_of_instr : int array; (* absolute memory address per DIR instruction *)
  entry_addr : int;
}

let word_count (rt : Runtime.t) { Isa.op; _ } =
  ignore rt;
  match op with
  | Isa.Lit -> 1
  | Isa.Jump -> 1
  | Isa.Halt -> 1
  | Isa.Ret -> 2
  | Isa.Jz | Isa.Cjeq | Isa.Cjne | Isa.Cjlt | Isa.Cjle | Isa.Cjgt | Isa.Cjge ->
      4
  | Isa.Call -> 4
  | Isa.Enter -> 4
  | _ -> (
      match Isa.shape op with
      | Isa.Shape_none -> 1
      | Isa.Shape_imm -> 2
      | Isa.Shape_var -> 3
      | Isa.Shape_target | Isa.Shape_call | Isa.Shape_enter -> assert false)

let build ~(layout : Layout.t) ~(rt : Runtime.t) (p : Program.t) =
  let base = layout.Layout.psder_static_base in
  let code = p.Program.code in
  let n = Array.length code in
  let addr_of_instr = Array.make n 0 in
  let total = ref 0 in
  Array.iteri
    (fun i instr ->
      addr_of_instr.(i) <- base + !total;
      total := !total + word_count rt instr)
    code;
  if !total > layout.Layout.psder_static_size then
    failwith "Static_gen.build: psder-static region exhausted";
  let words = Array.make !total 0 in
  let cursor = ref 0 in
  let emit w =
    words.(!cursor) <- w;
    incr cursor
  in
  let sem op = rt.Runtime.sem.(Isa.opcode_to_enum op) in
  Array.iteri
    (fun i ({ Isa.op; a; b = fb; c } as instr) ->
      assert (base + !cursor = addr_of_instr.(i));
      let fall () = addr_of_instr.(i + 1) in
      match op with
      | Isa.Lit -> emit (SF.pack SF.Push_imm a)
      | Isa.Jump -> emit (SF.pack SF.Goto addr_of_instr.(a))
      | Isa.Halt -> emit (SF.pack SF.Call_long rt.Runtime.rt_halt)
      | Isa.Ret ->
          emit (SF.pack SF.Call_long rt.Runtime.rt_ret_psder);
          emit (SF.pack SF.Goto_stk 0)
      | Isa.Jz | Isa.Cjeq | Isa.Cjne | Isa.Cjlt | Isa.Cjle | Isa.Cjgt
      | Isa.Cjge ->
          emit (SF.pack SF.Push_imm (fall ()));
          emit (SF.pack SF.Push_imm addr_of_instr.(a));
          emit
            (SF.pack SF.Call_long
               rt.Runtime.cond_psder.(Isa.opcode_to_enum op));
          emit (SF.pack SF.Goto_stk 0)
      | Isa.Call ->
          emit (SF.pack SF.Push_imm fb);          (* static hops *)
          emit (SF.pack SF.Push_imm (fall ()));   (* return address *)
          emit (SF.pack SF.Call_long rt.Runtime.rt_call);
          emit (SF.pack SF.Goto addr_of_instr.(a))
      | Isa.Enter ->
          emit (SF.pack SF.Push_imm a);
          emit (SF.pack SF.Push_imm fb);
          emit (SF.pack SF.Push_imm c);
          emit (SF.pack SF.Call_long (sem op))
      | _ -> (
          match Isa.shape op with
          | Isa.Shape_none -> emit (SF.pack SF.Call_long (sem op))
          | Isa.Shape_imm ->
              emit (SF.pack SF.Push_imm a);
              emit (SF.pack SF.Call_long (sem op))
          | Isa.Shape_var ->
              emit (SF.pack SF.Push_imm a);
              emit (SF.pack SF.Push_imm fb);
              emit (SF.pack SF.Call_long (sem op))
          | Isa.Shape_target | Isa.Shape_call | Isa.Shape_enter ->
              assert false);
          ignore instr)
    code;
  { words; addr_of_instr; entry_addr = addr_of_instr.(p.Program.entry) }

let size_bits t = Array.length t.words * SF.bits_per_word
