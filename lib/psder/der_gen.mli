(** DER expansion: a DIR program compiled directly into host machine code
    ("the expanded machine language representation", paper §2.3/§3.1) —
    every instruction is the inlined body of its semantic routine with the
    operand fields as immediates.  Maximum speed, maximum size; the strategy
    wiring can impose a level-2 fetch penalty to model the image exceeding
    the fast store. *)

type t = {
  program : Uhm_machine.Asm.program;
  entry : int;              (** host address of the DIR entry instruction *)
  code_instructions : int;  (** size of the expansion, host instructions *)
}

val build : Uhm_dir.Program.t -> t
