(** Memory map of the simulated universal host machine.

    Level-1 memory (access time t1) holds what the paper wants close to the
    processor: the operand and return stacks, the DIR data area (frames),
    the decoder tables, and the DTB's buffer array.  The static PSDER image
    is level-2 resident; the DIR bit stream itself is handled by the IFU,
    not by this map. *)

type t = {
  op_stack_base : int;
  op_stack_size : int;
  ret_stack_base : int;
  ret_stack_size : int;
  data_base : int;
  data_size : int;
  table_base : int;
  table_size : int;
  dtb_buffer_base : int;
  dtb_buffer_size : int;
  psder_static_base : int;
  psder_static_size : int;
  mem_words : int;
}

val default : t

val regions : Uhm_machine.Timing.t -> t -> Uhm_machine.Machine.region list
(** Region list (with access costs) for {!Uhm_machine.Machine.create}. *)
