(** Decoder generation: the host-code routine that decodes one DIR
    instruction of a given encoding at the current DPC.

    Contract (registers per {!Uhm_machine.Host_isa.Regs}):
    - entry: [dpc] = bit address of the instruction; the [ctx]/[dctx]
      registers hold the contour and digram decoding contexts;
    - exit: r8 = opcode enum, r9/r10/r11 = operand fields (branch targets as
      bit addresses), [dpc] = bit address of the textual successor;
    - r12-r15 are scratch, r0-r7 untouched.

    The routine is tagged {!Uhm_machine.Asm.Decode}; its measured cycles
    are the paper's d.  Decoder tables (contour widths, Huffman trees,
    per-context tree bases, the per-opcode shape dispatch table) are
    serialised into the given table image. *)

module Asm := Uhm_machine.Asm

val build : Asm.t -> tables:Table_image.t -> encoded:Uhm_encoding.Codec.encoded
  -> int
(** Emits the routine; returns its entry address. *)

val build_assist : Asm.t -> int
(** The hardware-assisted variant: a single DecodeAssist instruction (the
    machine's decode-assist hook does the work). *)
