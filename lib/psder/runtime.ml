module Asm = Uhm_machine.Asm
module H = Uhm_machine.Host_isa
module R = Uhm_machine.Host_isa.Regs
module Isa = Uhm_dir.Isa
module Stats = Uhm_dir.Static_stats

type t = {
  sem : int array;
  rt_call : int;
  rt_ret_core : int;
  rt_ret_dtb : int;
  rt_ret_psder : int;
  rt_halt : int;
  cond_dtb : int array;
  cond_psder : int array;
}

let frame_header = Isa.frame_header_size

(* r2 := frame base after walking the static-link chain [r_hops] times.
   Clobbers r_hops. *)
let walk_links b ~hops ~result =
  let loop = Asm.new_label b and done_ = Asm.new_label b in
  Asm.mv b result R.fp;
  Asm.place b loop;
  Asm.jz b hops done_;
  Asm.load b result result 0;
  Asm.alui b H.Sub hops hops 1;
  Asm.jmp b loop;
  Asm.place b done_

(* r3 := address of variable (hops in r0, offset in r1); clobbers r0, r2.
   With the restructurable datapath, base + offset + header is a single
   register-to-register transaction. *)
let var_addr ?(compound = false) b =
  walk_links b ~hops:0 ~result:2;
  if compound then Asm.alu2i b H.Add H.Add 3 2 1 frame_header
  else begin
    Asm.alu b H.Add 3 2 1;
    Asm.alui b H.Add 3 3 frame_header
  end

let enum = Isa.opcode_to_enum

let build ?(compound = false) b ~layout:_ =
  let var_addr b = var_addr ~compound b in
  let sem = Array.make Isa.opcode_count (-1) in
  let cond_dtb = Array.make Isa.opcode_count (-1) in
  let cond_psder = Array.make Isa.opcode_count (-1) in
  let routine body = Asm.routine b Asm.Semantic body in

  (* -- data movement ------------------------------------------------------ *)
  sem.(enum Isa.Load) <-
    routine (fun () ->
        Asm.pop_op b 1;              (* offset *)
        Asm.pop_op b 0;              (* hops *)
        var_addr b;
        Asm.load b 4 3 0;
        Asm.push_op b 4;
        Asm.ret b);
  sem.(enum Isa.Store) <-
    routine (fun () ->
        Asm.pop_op b 1;
        Asm.pop_op b 0;
        var_addr b;
        Asm.pop_op b 4;              (* value *)
        Asm.store b 4 3 0;
        Asm.ret b);
  sem.(enum Isa.Addr) <-
    routine (fun () ->
        Asm.pop_op b 1;
        Asm.pop_op b 0;
        var_addr b;
        Asm.push_op b 3;
        Asm.ret b);
  sem.(enum Isa.Loadi) <-
    routine (fun () ->
        Asm.pop_op b 0;
        Asm.load b 1 0 0;
        Asm.push_op b 1;
        Asm.ret b);
  sem.(enum Isa.Storei) <-
    routine (fun () ->
        Asm.pop_op b 1;              (* value *)
        Asm.pop_op b 0;              (* address *)
        Asm.store b 1 0 0;
        Asm.ret b);
  sem.(enum Isa.Index) <-
    routine (fun () ->
        Asm.pop_op b 1;
        Asm.pop_op b 0;
        Asm.alu b H.Add 0 0 1;
        Asm.push_op b 0;
        Asm.ret b);
  sem.(enum Isa.Dup) <-
    routine (fun () ->
        Asm.pop_op b 0;
        Asm.push_op b 0;
        Asm.push_op b 0;
        Asm.ret b);
  sem.(enum Isa.Drop) <-
    routine (fun () ->
        Asm.pop_op b 0;
        Asm.ret b);
  sem.(enum Isa.Swap) <-
    routine (fun () ->
        Asm.pop_op b 0;
        Asm.pop_op b 1;
        Asm.push_op b 0;
        Asm.push_op b 1;
        Asm.ret b);

  (* -- arithmetic and comparisons ----------------------------------------- *)
  let binop alu_op =
    routine (fun () ->
        Asm.pop_op b 1;
        Asm.pop_op b 0;
        Asm.alu b alu_op 0 0 1;
        Asm.push_op b 0;
        Asm.ret b)
  in
  sem.(enum Isa.Add) <- binop H.Add;
  sem.(enum Isa.Sub) <- binop H.Sub;
  sem.(enum Isa.Mul) <- binop H.Mul;
  sem.(enum Isa.Div) <- binop H.Div;
  sem.(enum Isa.Mod) <- binop H.Mod;
  sem.(enum Isa.Eq) <- binop H.Seq;
  sem.(enum Isa.Ne) <- binop H.Sne;
  sem.(enum Isa.Lt) <- binop H.Slt;
  sem.(enum Isa.Le) <- binop H.Sle;
  sem.(enum Isa.Gt) <- binop H.Sgt;
  sem.(enum Isa.Ge) <- binop H.Sge;
  sem.(enum Isa.Neg) <-
    routine (fun () ->
        Asm.pop_op b 0;
        Asm.li b 1 0;
        Asm.alu b H.Sub 0 1 0;
        Asm.push_op b 0;
        Asm.ret b);
  sem.(enum Isa.And) <-
    routine (fun () ->
        Asm.pop_op b 1;
        Asm.pop_op b 0;
        Asm.alui b H.Sne 0 0 0;
        Asm.alui b H.Sne 1 1 0;
        Asm.alu b H.And 0 0 1;
        Asm.push_op b 0;
        Asm.ret b);
  sem.(enum Isa.Or) <-
    routine (fun () ->
        Asm.pop_op b 1;
        Asm.pop_op b 0;
        Asm.alu b H.Or 0 0 1;
        Asm.alui b H.Sne 0 0 0;
        Asm.push_op b 0;
        Asm.ret b);
  sem.(enum Isa.Not) <-
    routine (fun () ->
        Asm.pop_op b 0;
        Asm.alui b H.Seq 0 0 0;
        Asm.push_op b 0;
        Asm.ret b);

  (* -- superoperators ------------------------------------------------------ *)
  let lit_arith alu_op =
    routine (fun () ->
        Asm.pop_op b 1;              (* immediate field *)
        Asm.pop_op b 0;
        Asm.alu b alu_op 0 0 1;
        Asm.push_op b 0;
        Asm.ret b)
  in
  sem.(enum Isa.Litadd) <- lit_arith H.Add;
  sem.(enum Isa.Litsub) <- lit_arith H.Sub;
  sem.(enum Isa.Litmul) <- lit_arith H.Mul;
  let load_arith alu_op =
    routine (fun () ->
        Asm.pop_op b 1;
        Asm.pop_op b 0;
        var_addr b;
        Asm.load b 4 3 0;
        Asm.pop_op b 5;
        Asm.alu b alu_op 5 5 4;
        Asm.push_op b 5;
        Asm.ret b)
  in
  sem.(enum Isa.Loadadd) <- load_arith H.Add;
  sem.(enum Isa.Loadsub) <- load_arith H.Sub;
  sem.(enum Isa.Loadmul) <- load_arith H.Mul;
  let bump delta =
    routine (fun () ->
        Asm.pop_op b 1;
        Asm.pop_op b 0;
        var_addr b;
        Asm.load b 4 3 0;
        Asm.alui b H.Add 4 4 delta;
        Asm.store b 4 3 0;
        Asm.ret b)
  in
  sem.(enum Isa.Incvar) <- bump 1;
  sem.(enum Isa.Decvar) <- bump (-1);

  (* -- output -------------------------------------------------------------- *)
  sem.(enum Isa.Print) <-
    routine (fun () ->
        Asm.pop_op b 0;
        Asm.out b 0;
        Asm.ret b);
  sem.(enum Isa.Printc) <-
    routine (fun () ->
        Asm.pop_op b 0;
        Asm.out_c b 0;
        Asm.ret b);

  (* -- frames --------------------------------------------------------------- *)
  let rt_call =
    routine (fun () ->
        Asm.pop_op b 1;              (* return address *)
        Asm.pop_op b 0;              (* static hops *)
        walk_links b ~hops:0 ~result:2;
        Asm.mv b 3 R.dtop;
        Asm.store b 2 3 0;           (* static link *)
        Asm.store b R.fp 3 1;        (* dynamic link *)
        Asm.store b 1 3 2;           (* return address *)
        Asm.store b R.ctx 3 3;       (* caller contour *)
        Asm.mv b R.fp 3;
        Asm.alui b H.Add R.dtop 3 frame_header;
        Asm.ret b)
  in
  sem.(enum Isa.Enter) <-
    routine (fun () ->
        Asm.pop_op b 2;              (* contour id *)
        Asm.pop_op b 1;              (* locals *)
        Asm.pop_op b 0;              (* args *)
        Asm.mv b R.ctx 2;
        (* args arrive last-on-top: pop into offsets nargs-1 .. 0 *)
        Asm.mv b 3 0;
        (let loop = Asm.new_label b and done_ = Asm.new_label b in
         Asm.place b loop;
         Asm.jz b 3 done_;
         Asm.alui b H.Sub 3 3 1;
         Asm.pop_op b 4;
         Asm.alu b H.Add 5 R.fp 3;
         Asm.store b 4 5 frame_header;
         Asm.jmp b loop;
         Asm.place b done_);
        (* zero the locals *)
        Asm.alu b H.Add 5 R.fp 0;
        Asm.alui b H.Add 5 5 frame_header;  (* first local address *)
        Asm.mv b 3 1;
        Asm.li b 4 0;
        (let loop = Asm.new_label b and done_ = Asm.new_label b in
         Asm.place b loop;
         Asm.jz b 3 done_;
         Asm.store b 4 5 0;
         Asm.alui b H.Add 5 5 1;
         Asm.alui b H.Sub 3 3 1;
         Asm.jmp b loop;
         Asm.place b done_);
        Asm.alu b H.Add R.dtop 0 1;
        Asm.alu b H.Add R.dtop R.dtop R.fp;
        Asm.alui b H.Add R.dtop R.dtop frame_header;
        Asm.ret b);
  let rt_ret_core =
    routine (fun () ->
        Asm.load b 0 R.fp 2;         (* return address *)
        Asm.load b 1 R.fp 3;
        Asm.mv b R.ctx 1;            (* restore caller contour *)
        Asm.load b 2 R.fp 1;         (* dynamic link *)
        Asm.mv b R.dtop R.fp;
        Asm.mv b R.fp 2;
        Asm.ret b)
  in
  let rt_ret_dtb =
    routine (fun () ->
        Asm.call_addr b rt_ret_core;
        Asm.li b 1 Stats.start_context;
        Asm.push_op b 1;
        Asm.push_op b 0;
        Asm.ret b)
  in
  let rt_ret_psder =
    routine (fun () ->
        Asm.call_addr b rt_ret_core;
        Asm.push_op b 0;
        Asm.ret b)
  in
  let rt_halt = routine (fun () -> Asm.halt b) in

  (* -- conditional transfers ------------------------------------------------ *)
  (* DTB flavour: pops target, fall-through address and the governing
     operand(s); pushes (context, successor DIR address) for INTERP-stack. *)
  let finish_choice ~ctx_value target_reg =
    Asm.li b 5 ctx_value;
    Asm.push_op b 5;
    Asm.push_op b target_reg;
    Asm.ret b
  in
  let jz_dtb =
    routine (fun () ->
        let taken = Asm.new_label b in
        Asm.pop_op b 1;              (* target *)
        Asm.pop_op b 2;              (* fall-through *)
        Asm.pop_op b 0;              (* condition *)
        Asm.jz b 0 taken;
        finish_choice ~ctx_value:(enum Isa.Jz) 2;
        Asm.place b taken;
        finish_choice ~ctx_value:Stats.start_context 1)
  in
  cond_dtb.(enum Isa.Jz) <- jz_dtb;
  let cj_dtb op alu_cmp =
    routine (fun () ->
        let stay = Asm.new_label b in
        Asm.pop_op b 1;              (* target *)
        Asm.pop_op b 2;              (* fall-through *)
        Asm.pop_op b 4;              (* y *)
        Asm.pop_op b 3;              (* x *)
        Asm.alu b alu_cmp 3 3 4;
        Asm.jnz b 3 stay;
        finish_choice ~ctx_value:Stats.start_context 1;
        Asm.place b stay;
        finish_choice ~ctx_value:(enum op) 2)
  in
  cond_dtb.(enum Isa.Cjeq) <- cj_dtb Isa.Cjeq H.Seq;
  cond_dtb.(enum Isa.Cjne) <- cj_dtb Isa.Cjne H.Sne;
  cond_dtb.(enum Isa.Cjlt) <- cj_dtb Isa.Cjlt H.Slt;
  cond_dtb.(enum Isa.Cjle) <- cj_dtb Isa.Cjle H.Sle;
  cond_dtb.(enum Isa.Cjgt) <- cj_dtb Isa.Cjgt H.Sgt;
  cond_dtb.(enum Isa.Cjge) <- cj_dtb Isa.Cjge H.Sge;

  (* psder-static flavour: same, but pushes a single translated address for
     GOTO-stack. *)
  let jz_psder =
    routine (fun () ->
        let taken = Asm.new_label b in
        Asm.pop_op b 1;
        Asm.pop_op b 2;
        Asm.pop_op b 0;
        Asm.jz b 0 taken;
        Asm.push_op b 2;
        Asm.ret b;
        Asm.place b taken;
        Asm.push_op b 1;
        Asm.ret b)
  in
  cond_psder.(enum Isa.Jz) <- jz_psder;
  let cj_psder alu_cmp =
    routine (fun () ->
        let stay = Asm.new_label b in
        Asm.pop_op b 1;
        Asm.pop_op b 2;
        Asm.pop_op b 4;
        Asm.pop_op b 3;
        Asm.alu b alu_cmp 3 3 4;
        Asm.jnz b 3 stay;
        Asm.push_op b 1;
        Asm.ret b;
        Asm.place b stay;
        Asm.push_op b 2;
        Asm.ret b)
  in
  cond_psder.(enum Isa.Cjeq) <- cj_psder H.Seq;
  cond_psder.(enum Isa.Cjne) <- cj_psder H.Sne;
  cond_psder.(enum Isa.Cjlt) <- cj_psder H.Slt;
  cond_psder.(enum Isa.Cjle) <- cj_psder H.Sle;
  cond_psder.(enum Isa.Cjgt) <- cj_psder H.Sgt;
  cond_psder.(enum Isa.Cjge) <- cj_psder H.Sge;

  { sem; rt_call; rt_ret_core; rt_ret_dtb; rt_ret_psder; rt_halt; cond_dtb;
    cond_psder }
