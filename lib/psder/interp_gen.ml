(* Interpreter generation (the conventional UHM, paper §7 cases 1 and 3).

   The generated program is:  decode routine + semantic routines + one
   dispatch arm per opcode + the fetch-decode-dispatch loop.  Every cycle in
   the loop and the arms is tagged [Asm.Decode] (the paper's d includes
   "fetch each instruction, isolate the opcode field, ... and activate [the
   procedures] in the correct order"); cycles inside semantic routines are
   tagged [Asm.Semantic] (the paper's x). *)

module Asm = Uhm_machine.Asm
module H = Uhm_machine.Host_isa
module R = Uhm_machine.Host_isa.Regs
module Isa = Uhm_dir.Isa
module Stats = Uhm_dir.Static_stats
module Codec = Uhm_encoding.Codec
module Kind = Uhm_encoding.Kind

type t = {
  program : Asm.program;
  entry : int;              (* address of the interpreter loop *)
  table_image : int array;  (* to be poked at the table region base *)
}

let enum = Isa.opcode_to_enum

let build ~compound ~assist ~layout ~(encoded : Codec.encoded) =
  let b = Asm.create () in
  let tables =
    Table_image.create ~base:layout.Layout.table_base
      ~capacity:layout.Layout.table_size
  in
  let decode =
    if assist then Decode_gen.build_assist b
    else Decode_gen.build b ~tables ~encoded
  in
  let rt = Runtime.build ~compound b ~layout in
  (* digram decoding needs the dctx register maintained; other kinds skip
     the bookkeeping *)
  let track_dctx =
    match encoded.Codec.kind with Kind.Digram -> true | _ -> false
  in
  let dispatch_table_addr = Table_image.reserve tables Isa.opcode_count in
  let loop = Asm.new_label b in
  (* ---- dispatch arms ---- *)
  let set_dctx v = if track_dctx then Asm.li b R.dctx v in
  let arm op body =
    let addr =
      Asm.routine b Asm.Decode (fun () ->
          body ();
          Asm.jmp b loop)
    in
    Table_image.patch tables ~addr:dispatch_table_addr ~index:(enum op) addr
  in
  let plain_call op =
    arm op (fun () ->
        (match Isa.shape op with
        | Isa.Shape_none -> ()
        | Isa.Shape_imm -> Asm.push_op b 9
        | Isa.Shape_var ->
            Asm.push_op b 9;
            Asm.push_op b 10
        | Isa.Shape_enter ->
            Asm.push_op b 9;
            Asm.push_op b 10;
            Asm.push_op b 11
        | Isa.Shape_target | Isa.Shape_call ->
            invalid_arg "plain_call: control opcode");
        Asm.call_addr b rt.Runtime.sem.(enum op);
        set_dctx (enum op))
  in
  Array.iter
    (fun op ->
      match op with
      (* opcodes with special arms below *)
      | Isa.Lit | Isa.Jump | Isa.Jz | Isa.Call | Isa.Ret | Isa.Halt
      | Isa.Cjeq | Isa.Cjne | Isa.Cjlt | Isa.Cjle | Isa.Cjgt | Isa.Cjge -> ()
      | _ -> plain_call op)
    Isa.all_opcodes;
  arm Isa.Lit (fun () ->
      Asm.push_op b 9;
      set_dctx (enum Isa.Lit));
  arm Isa.Jump (fun () ->
      Asm.mv b R.dpc 9;
      set_dctx Stats.start_context);
  arm Isa.Jz (fun () ->
      let taken = Asm.new_label b and join = Asm.new_label b in
      Asm.pop_op b 0;
      Asm.jz b 0 taken;
      set_dctx (enum Isa.Jz);
      Asm.jmp b join;
      Asm.place b taken;
      Asm.mv b R.dpc 9;
      set_dctx Stats.start_context;
      Asm.place b join);
  List.iter
    (fun (op, cmp) ->
      arm op (fun () ->
          let stay = Asm.new_label b and join = Asm.new_label b in
          Asm.pop_op b 1;
          Asm.pop_op b 0;
          Asm.alu b cmp 0 0 1;
          Asm.jnz b 0 stay;
          Asm.mv b R.dpc 9;
          set_dctx Stats.start_context;
          Asm.jmp b join;
          Asm.place b stay;
          set_dctx (enum op);
          Asm.place b join))
    [ (Isa.Cjeq, H.Seq); (Isa.Cjne, H.Sne); (Isa.Cjlt, H.Slt);
      (Isa.Cjle, H.Sle); (Isa.Cjgt, H.Sgt); (Isa.Cjge, H.Sge) ];
  arm Isa.Call (fun () ->
      (* dpc already points past the call: it is the return address *)
      Asm.push_op b 10;
      Asm.push_op b R.dpc;
      Asm.call_addr b rt.Runtime.rt_call;
      Asm.mv b R.dpc 9;
      set_dctx Stats.start_context);
  arm Isa.Ret (fun () ->
      Asm.call_addr b rt.Runtime.rt_ret_core;
      Asm.mv b R.dpc 0;
      set_dctx Stats.start_context);
  arm Isa.Halt (fun () -> Asm.halt b);
  (* ---- the loop ---- *)
  let entry =
    Asm.routine b Asm.Decode (fun () ->
        Asm.place b loop;
        Asm.call_addr b decode;
        Asm.alui b H.Add 12 8 dispatch_table_addr;
        Asm.load b 12 12 0;
        Asm.jmp_r b 12)
  in
  { program = Asm.finish b; entry; table_image = Table_image.image tables }
