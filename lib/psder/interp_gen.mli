(** Interpreter generation — the conventional UHM (paper §7 cases 1 and 3).

    The generated long-format program contains the decode routine for the
    given encoding, the full semantic-routine library, one dispatch arm per
    opcode and the fetch-decode-dispatch loop.  Loop and arm cycles are
    tagged {!Uhm_machine.Asm.Decode} (the paper's d: "fetch each
    instruction, isolate the opcode field, ... and activate [the
    procedures] in the correct order"); semantic-routine cycles are tagged
    {!Uhm_machine.Asm.Semantic} (the paper's x). *)

module Asm := Uhm_machine.Asm

type t = {
  program : Asm.program;
  entry : int;              (** address of the interpreter loop *)
  table_image : int array;  (** poke at [layout.table_base] before running *)
}

val build : compound:bool -> assist:bool -> layout:Layout.t
  -> encoded:Uhm_encoding.Codec.encoded -> t
(** [assist] replaces the software decode routine with the hardware
    decode-assist unit (a single DecodeAssist instruction; the machine's
    decode-assist hook must then be wired).  [compound] enables the
    restructurable-datapath compound ALU in the semantic routines. *)
