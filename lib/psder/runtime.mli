(** The semantic-routine library: every DIR opcode's semantics as a
    long-format host routine (paper §3.1's "semantic procedures", the cost
    component x of §7).

    Calling convention: expression operands are on the operand stack in
    evaluation order; the decoded instruction fields are pushed {e on top}
    (level then offset, immediate, or args/locals/contour) by the caller —
    the interpreter's dispatch arm, or PUSH short words in a PSDER
    translation.  Routines use registers r0-r7 only, so the decoder's
    outputs in r8-r11 survive across a call.

    The conditional-branch and return routines come in two flavours:
    [_dtb] variants leave (decode-context, successor DIR address) on the
    stack for INTERP-stack, and [_psder] variants leave a single translated
    buffer address for GOTO-stack (the psder-static strategy needs no
    decode context because nothing is decoded at run time). *)

module Asm := Uhm_machine.Asm

type t = {
  sem : int array;
  (** semantic routine address per opcode enum; -1 for opcodes without a
      plain routine ([Lit], [Jump], [Jz], [Call], [Ret], [Halt], [Cj...]) *)
  rt_call : int;        (** builds a frame: pops return address, then hops *)
  rt_ret_core : int;    (** tears down a frame; return address left in r0 *)
  rt_ret_dtb : int;
  rt_ret_psder : int;
  rt_halt : int;
  cond_dtb : int array;   (** per opcode enum: Jz and Cj* DTB variants *)
  cond_psder : int array; (** per opcode enum: Jz and Cj* psder variants *)
}

val frame_header : int

val build : ?compound:bool -> Asm.t -> layout:Layout.t -> t
(** Emit all routines into the assembler (category [Semantic]) and return
    their addresses.  [compound] (default false) uses the one-transaction
    compound ALU of paper §6.1's restructurable datapath in the
    address-calculation paths.  [Asm.t] is [Uhm_machine.Asm.t]. *)
