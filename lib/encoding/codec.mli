(** Static encodings of DIR programs.

    An {!encoded} value is the program as it sits in level-2 memory: a bit
    stream plus the decoder tables the interpreter or dynamic translator
    needs.  Branch and call targets inside the stream are {e bit addresses}
    (for {!Kind.Word16}, 16-bit-unit indices scaled to bit addresses), so a
    decoded stream instruction carries addresses, not instruction indices;
    {!to_program} maps them back for round-trip checks.

    Instruction layout, common to all kinds: opcode field, then operand
    fields in shape order (imm | level, offset | target | target, hops |
    args, locals, ctx).  Signed immediates are zigzag-mapped first.  The
    [Enter] instruction always uses program-wide field widths so it can be
    decoded without knowing the callee contour (see DESIGN.md). *)

type widths = {
  w_opcode : int;   (** fixed opcode width; unused by Huffman/Digram *)
  w_imm : int;      (** zigzag immediate width (Word16/Packed/Contextual) *)
  w_level : int;    (** static-hop field width *)
  w_offset : int;   (** program-wide frame-offset width *)
  w_target : int;   (** branch-target width (bit address / unit index) *)
  w_args : int;
  w_locals : int;
  w_ctx : int;      (** contour-id width in [Enter] *)
}

type contour_widths = {
  cw_level : int;
  cw_offset : int;
}

type tables =
  | T_word16 of widths
  | T_packed of widths
  | T_contextual of widths * contour_widths array
  | T_huffman of widths * Uhm_huffman.Code.t
  | T_digram of widths * Uhm_huffman.Conditional.t

type encoded = {
  kind : Kind.t;
  program : Uhm_dir.Program.t;   (** the source of the encoding *)
  bits : string;
  offsets : int array;           (** bit address of every instruction *)
  entry_addr : int;              (** bit address of the entry instruction *)
  size_bits : int;
  tables : tables;
}

exception Unencodable of string
(** A field value does not fit the kind's fixed-width format (only possible
    for {!Kind.Word16}). *)

val encode : Kind.t -> Uhm_dir.Program.t -> encoded

(** A decoded instruction: opcode plus raw field values, with branch targets
    as bit addresses. *)
type raw_instr = {
  op : Uhm_dir.Isa.opcode;
  ra : int;
  rb : int;
  rc : int;
  next_addr : int;   (** bit address of the textual successor *)
}

val decode_at : encoded -> contour:int -> digram_ctx:int -> addr:int -> raw_instr
(** [decode_at e ~contour ~digram_ctx ~addr] decodes one instruction.
    [contour] selects per-contour widths ({!Kind.Contextual} only);
    [digram_ctx] selects the opcode code ({!Kind.Digram} only; pass
    {!Uhm_dir.Static_stats.start_context} after any control transfer). *)

val to_program : encoded -> Uhm_dir.Program.t
(** Decode the whole stream back (targets remapped to instruction indices);
    equal to the original program if the codec round-trips. *)

val instr_sizes : encoded -> int array
(** Size in bits of each instruction. *)

val bits_per_instruction : encoded -> float

val index_of_addr : encoded -> int -> int
(** [index_of_addr e addr] is the instruction index starting at bit [addr].
    Raises [Not_found]. *)
