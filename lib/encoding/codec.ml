module Isa = Uhm_dir.Isa
module Program = Uhm_dir.Program
module Stats = Uhm_dir.Static_stats
module Bits = Uhm_bitstream.Bits
module Writer = Uhm_bitstream.Writer
module Reader = Uhm_bitstream.Reader
module Code = Uhm_huffman.Code
module Conditional = Uhm_huffman.Conditional

type widths = {
  w_opcode : int;
  w_imm : int;
  w_level : int;
  w_offset : int;
  w_target : int;
  w_args : int;
  w_locals : int;
  w_ctx : int;
}

type contour_widths = {
  cw_level : int;
  cw_offset : int;
}

type tables =
  | T_word16 of widths
  | T_packed of widths
  | T_contextual of widths * contour_widths array
  | T_huffman of widths * Code.t
  | T_digram of widths * Conditional.t

type encoded = {
  kind : Kind.t;
  program : Program.t;
  bits : string;
  offsets : int array;
  entry_addr : int;
  size_bits : int;
  tables : tables;
}

exception Unencodable of string

let unencodable fmt = Printf.ksprintf (fun s -> raise (Unencodable s)) fmt

(* -- Nibble-chain variable-width coding ------------------------------------ *)
(* A non-negative value is sent as (groups - 1) in unary followed by
   4 * groups bits.  Small values (the common case for operands) cost 5
   bits; the length grows gracefully. *)

let nibble_groups v = max 1 ((Bits.width_of_value v + 3) / 4)
let nibble_size v = nibble_groups v + (4 * nibble_groups v)

let put_nibble w v =
  let groups = nibble_groups v in
  Writer.put_unary w (groups - 1);
  Writer.put w ~bits:(4 * groups) v

let get_nibble r =
  let groups = Reader.get_unary r + 1 in
  Reader.get r (4 * groups)

(* -- Width computation ------------------------------------------------------ *)

let max_over values f = List.fold_left (fun acc v -> max acc (f v)) 0 values

let enter_maxima (p : Program.t) =
  Array.fold_left
    (fun (args, locals, hops) { Isa.op; a; b; _ } ->
      match op with
      | Isa.Enter -> (max args a, max locals b, hops)
      | Isa.Call -> (args, locals, max hops b)
      | _ -> (args, locals, hops))
    (0, 0, 0) p.Program.code

let base_widths (p : Program.t) (stats : Stats.t) ~w_target =
  let max_args, max_locals, max_hops = enter_maxima p in
  let max_zig = max_over stats.Stats.imm_values (fun v -> Bits.zigzag v) in
  {
    w_opcode = Bits.width_for Isa.opcode_count;
    w_imm = Bits.width_of_value max_zig;
    w_level = Bits.width_of_value (max (Stats.max_level stats) max_hops);
    w_offset = Bits.width_of_value (Stats.max_offset stats);
    w_target;
    w_args = Bits.width_of_value max_args;
    w_locals = Bits.width_of_value max_locals;
    w_ctx = Bits.width_for (Array.length p.Program.contours);
  }

let contour_width_table (p : Program.t) =
  let map = Program.contour_of_instr p in
  let n = Array.length p.Program.contours in
  let max_level = Array.make n 0 and max_offset = Array.make n 0 in
  Array.iteri
    (fun i { Isa.op; a; b; _ } ->
      let ctx = map.(i) in
      match Isa.shape op with
      | Isa.Shape_var ->
          max_level.(ctx) <- max max_level.(ctx) a;
          max_offset.(ctx) <- max max_offset.(ctx) b
      | Isa.Shape_call -> max_level.(ctx) <- max max_level.(ctx) b
      | _ -> ())
    p.Program.code;
  Array.init n (fun ctx ->
      {
        cw_level = Bits.width_of_value max_level.(ctx);
        cw_offset = Bits.width_of_value max_offset.(ctx);
      })

(* Unused-context rows of the digram table would be all-zero; give them a
   dummy codeword so construction succeeds (they are never consulted). *)
let digram_codes (stats : Stats.t) =
  let counts =
    Array.map
      (fun row ->
        if Array.for_all (fun c -> c = 0) row then begin
          let row = Array.copy row in
          row.(0) <- 1;
          row
        end
        else row)
      stats.Stats.digram_counts
  in
  Conditional.of_counts ~smooth:false counts

(* -- Per-instruction size --------------------------------------------------- *)

(* Size of instruction [i] in bits, given the opcode-field cost function and
   the widths in force at [i]. *)
let instr_size ~opcode_bits ~variable_operands ~(w : widths) ~cw instr =
  let { Isa.op; a; b; _ } = instr in
  let level_w = match cw with Some c -> c.cw_level | None -> w.w_level in
  let offset_w = match cw with Some c -> c.cw_offset | None -> w.w_offset in
  let operand_bits =
    match Isa.shape op with
    | Isa.Shape_none -> 0
    | Isa.Shape_imm ->
        if variable_operands then nibble_size (Bits.zigzag a) else w.w_imm
    | Isa.Shape_var ->
        if variable_operands then w.w_level + nibble_size b
        else level_w + offset_w
    | Isa.Shape_target -> w.w_target
    | Isa.Shape_call -> w.w_target + level_w
    | Isa.Shape_enter ->
        if variable_operands then nibble_size a + nibble_size b + w.w_ctx
        else w.w_args + w.w_locals + w.w_ctx
  in
  opcode_bits op + operand_bits

(* Word16 operand fields are one 16-bit unit; the value 0xFFFF escapes to a
   four-unit (62-bit) wide operand.  Branch targets never escape (checked at
   encode time), so instruction sizes do not depend on target values. *)
let u16_escape = 0xFFFF

let u16_field_units v = if v >= 0 && v < u16_escape then 1 else 5

let word16_units instr =
  let { Isa.op; a; b; c } = instr in
  match Isa.shape op with
  | Isa.Shape_none -> 1
  | Isa.Shape_imm -> 1 + u16_field_units (Bits.zigzag a)
  | Isa.Shape_var -> 1 + u16_field_units a + u16_field_units b
  | Isa.Shape_target -> 2
  | Isa.Shape_call -> 2 + u16_field_units b
  | Isa.Shape_enter ->
      1 + u16_field_units a + u16_field_units b + u16_field_units c

(* -- Encoding ---------------------------------------------------------------- *)

let check_u16_target what v =
  if v < 0 || v >= u16_escape then
    unencodable "word16: %s value %d does not fit in 16 bits" what v

let put_u16_field w v =
  if v < 0 then unencodable "word16: negative field value %d" v;
  if v < u16_escape then Writer.put w ~bits:16 v
  else begin
    Writer.put w ~bits:16 u16_escape;
    Writer.put w ~bits:16 ((v lsr 48) land 0x3FFF);
    Writer.put w ~bits:16 ((v lsr 32) land 0xFFFF);
    Writer.put w ~bits:16 ((v lsr 16) land 0xFFFF);
    Writer.put w ~bits:16 (v land 0xFFFF)
  end

let get_u16_field r =
  let v = Reader.get r 16 in
  if v <> u16_escape then v
  else
    let a = Reader.get r 16 in
    let b = Reader.get r 16 in
    let c = Reader.get r 16 in
    let d = Reader.get r 16 in
    (a lsl 48) lor (b lsl 32) lor (c lsl 16) lor d

let encode kind (p : Program.t) =
  let stats = Stats.of_program p in
  let code = p.Program.code in
  let n = Array.length code in
  let contour_map = Program.contour_of_instr p in
  let digram_ctxs = Stats.digram_contexts p in
  match kind with
  | Kind.Word16 ->
      let sizes = Array.map (fun i -> 16 * word16_units i) code in
      let offsets = Array.make n 0 in
      let total = ref 0 in
      Array.iteri
        (fun i s ->
          offsets.(i) <- !total;
          total := !total + s)
        sizes;
      let unit_of_target t = offsets.(t) / 16 in
      let w = Writer.create () in
      Array.iter
        (fun ({ Isa.op; a; b; c } as instr) ->
          Writer.put w ~bits:16 (Isa.opcode_to_enum op lsl 10);
          (match Isa.shape op with
          | Isa.Shape_none -> ()
          | Isa.Shape_imm -> put_u16_field w (Bits.zigzag a)
          | Isa.Shape_var ->
              put_u16_field w a;
              put_u16_field w b
          | Isa.Shape_target ->
              check_u16_target "target" (unit_of_target a);
              Writer.put w ~bits:16 (unit_of_target a)
          | Isa.Shape_call ->
              check_u16_target "target" (unit_of_target a);
              Writer.put w ~bits:16 (unit_of_target a);
              put_u16_field w b
          | Isa.Shape_enter ->
              put_u16_field w a;
              put_u16_field w b;
              put_u16_field w c);
          ignore instr)
        code;
      let widths =
        { (base_widths p stats ~w_target:16) with w_opcode = 6 }
      in
      {
        kind;
        program = p;
        bits = Writer.to_reader_input w;
        offsets;
        entry_addr = offsets.(p.Program.entry);
        size_bits = !total;
        tables = T_word16 widths;
      }
  | Kind.Packed | Kind.Contextual | Kind.Huffman | Kind.Huffman_b1700
  | Kind.Digram ->
      let contour_tab =
        match kind with
        | Kind.Contextual -> Some (contour_width_table p)
        | _ -> None
      in
      let opcode_code =
        match kind with
        | Kind.Huffman -> Some (Code.of_frequencies stats.Stats.opcode_counts)
        | Kind.Huffman_b1700 ->
            Some
              (Uhm_huffman.Restricted.of_frequencies
                 ~allowed:Uhm_huffman.Restricted.b1700_lengths
                 stats.Stats.opcode_counts)
        | _ -> None
      in
      let digram_code =
        match kind with Kind.Digram -> Some (digram_codes stats) | _ -> None
      in
      let opcode_bits i op =
        match kind with
        | Kind.Huffman | Kind.Huffman_b1700 ->
            let len, _ = Code.codeword (Option.get opcode_code) (Isa.opcode_to_enum op) in
            len
        | Kind.Digram ->
            let len, _ =
              Code.codeword
                (Conditional.code (Option.get digram_code) digram_ctxs.(i))
                (Isa.opcode_to_enum op)
            in
            len
        | _ -> Bits.width_for Isa.opcode_count
      in
      let variable_operands =
        match kind with
        | Kind.Huffman | Kind.Huffman_b1700 | Kind.Digram -> true
        | _ -> false
      in
      (* Fixpoint on the target-field width: sizes depend on it, it depends
         on the total size. *)
      let rec settle w_target =
        let widths = base_widths p stats ~w_target in
        let total = ref 0 in
        Array.iteri
          (fun i instr ->
            let cw =
              Option.map (fun tab -> tab.(contour_map.(i))) contour_tab
            in
            total :=
              !total
              + instr_size
                  ~opcode_bits:(opcode_bits i)
                  ~variable_operands ~w:widths ~cw instr)
          code;
        let needed = max 1 (Bits.width_for !total) in
        if needed > w_target then settle needed else (widths, !total)
      in
      let widths, total = settle 1 in
      let offsets = Array.make n 0 in
      let running = ref 0 in
      Array.iteri
        (fun i instr ->
          offsets.(i) <- !running;
          let cw = Option.map (fun tab -> tab.(contour_map.(i))) contour_tab in
          running :=
            !running
            + instr_size
                ~opcode_bits:(opcode_bits i)
                ~variable_operands ~w:widths ~cw instr)
        code;
      assert (!running = total);
      let w = Writer.create () in
      Array.iteri
        (fun i ({ Isa.op; a; b; c } as _instr) ->
          (match kind with
          | Kind.Huffman | Kind.Huffman_b1700 ->
              Code.encode (Option.get opcode_code) w (Isa.opcode_to_enum op)
          | Kind.Digram ->
              Conditional.encode (Option.get digram_code) w
                ~ctx:digram_ctxs.(i) (Isa.opcode_to_enum op)
          | _ -> Writer.put w ~bits:widths.w_opcode (Isa.opcode_to_enum op));
          let cw = Option.map (fun tab -> tab.(contour_map.(i))) contour_tab in
          let level_w =
            match cw with Some t -> t.cw_level | None -> widths.w_level
          in
          let offset_w =
            match cw with Some t -> t.cw_offset | None -> widths.w_offset
          in
          match Isa.shape op with
          | Isa.Shape_none -> ()
          | Isa.Shape_imm ->
              if variable_operands then put_nibble w (Bits.zigzag a)
              else Writer.put w ~bits:widths.w_imm (Bits.zigzag a)
          | Isa.Shape_var ->
              if variable_operands then begin
                Writer.put w ~bits:widths.w_level a;
                put_nibble w b
              end
              else begin
                Writer.put w ~bits:level_w a;
                Writer.put w ~bits:offset_w b
              end
          | Isa.Shape_target -> Writer.put w ~bits:widths.w_target offsets.(a)
          | Isa.Shape_call ->
              Writer.put w ~bits:widths.w_target offsets.(a);
              Writer.put w ~bits:level_w b
          | Isa.Shape_enter ->
              if variable_operands then begin
                put_nibble w a;
                put_nibble w b;
                Writer.put w ~bits:widths.w_ctx c
              end
              else begin
                Writer.put w ~bits:widths.w_args a;
                Writer.put w ~bits:widths.w_locals b;
                Writer.put w ~bits:widths.w_ctx c
              end)
        code;
      let tables =
        match kind with
        | Kind.Packed -> T_packed widths
        | Kind.Contextual -> T_contextual (widths, Option.get contour_tab)
        | Kind.Huffman | Kind.Huffman_b1700 ->
            T_huffman (widths, Option.get opcode_code)
        | Kind.Digram -> T_digram (widths, Option.get digram_code)
        | Kind.Word16 -> assert false
      in
      {
        kind;
        program = p;
        bits = Writer.to_reader_input w;
        offsets;
        entry_addr = offsets.(p.Program.entry);
        size_bits = total;
        tables;
      }

(* -- Decoding ---------------------------------------------------------------- *)

type raw_instr = {
  op : Isa.opcode;
  ra : int;
  rb : int;
  rc : int;
  next_addr : int;
}

let opcode_of_enum_exn e =
  match Isa.opcode_of_enum e with
  | Some op -> op
  | None -> failwith (Printf.sprintf "decode: bad opcode %d" e)

let decode_at (e : encoded) ~contour ~digram_ctx ~addr =
  let r = Reader.of_string e.bits in
  Reader.seek r addr;
  match e.tables with
  | T_word16 _ ->
      let op = opcode_of_enum_exn (Reader.get r 16 lsr 10) in
      let field () = get_u16_field r in
      let ra, rb, rc =
        match Isa.shape op with
        | Isa.Shape_none -> (0, 0, 0)
        | Isa.Shape_imm -> (Bits.unzigzag (field ()), 0, 0)
        | Isa.Shape_var ->
            let a = field () in
            let b = field () in
            (a, b, 0)
        | Isa.Shape_target -> (field () * 16, 0, 0)
        | Isa.Shape_call ->
            let t = field () * 16 in
            let hops = field () in
            (t, hops, 0)
        | Isa.Shape_enter ->
            let a = field () in
            let b = field () in
            let c = field () in
            (a, b, c)
      in
      { op; ra; rb; rc; next_addr = Reader.pos r }
  | T_packed w | T_contextual (w, _) | T_huffman (w, _) | T_digram (w, _) -> (
      let cw =
        match e.tables with
        | T_contextual (_, tab) -> Some tab.(contour)
        | _ -> None
      in
      let variable_operands =
        match e.tables with T_huffman _ | T_digram _ -> true | _ -> false
      in
      let op =
        match e.tables with
        | T_huffman (_, code) -> opcode_of_enum_exn (Code.decode code r)
        | T_digram (_, cond) ->
            opcode_of_enum_exn (Conditional.decode cond r ~ctx:digram_ctx)
        | _ -> opcode_of_enum_exn (Reader.get r w.w_opcode)
      in
      let level_w = match cw with Some t -> t.cw_level | None -> w.w_level in
      let offset_w = match cw with Some t -> t.cw_offset | None -> w.w_offset in
      let finish ra rb rc = { op; ra; rb; rc; next_addr = Reader.pos r } in
      match Isa.shape op with
      | Isa.Shape_none -> finish 0 0 0
      | Isa.Shape_imm ->
          if variable_operands then finish (Bits.unzigzag (get_nibble r)) 0 0
          else finish (Bits.unzigzag (Reader.get r w.w_imm)) 0 0
      | Isa.Shape_var ->
          if variable_operands then begin
            let a = Reader.get r w.w_level in
            let b = get_nibble r in
            finish a b 0
          end
          else begin
            let a = Reader.get r level_w in
            let b = Reader.get r offset_w in
            finish a b 0
          end
      | Isa.Shape_target -> finish (Reader.get r w.w_target) 0 0
      | Isa.Shape_call ->
          let t = Reader.get r w.w_target in
          let hops = Reader.get r level_w in
          finish t hops 0
      | Isa.Shape_enter ->
          if variable_operands then begin
            let a = get_nibble r in
            let b = get_nibble r in
            let c = Reader.get r w.w_ctx in
            finish a b c
          end
          else begin
            let a = Reader.get r w.w_args in
            let b = Reader.get r w.w_locals in
            let c = Reader.get r w.w_ctx in
            finish a b c
          end)

let index_of_addr e addr =
  (* binary search over the sorted offsets array *)
  let offsets = e.offsets in
  let lo = ref 0 and hi = ref (Array.length offsets - 1) in
  let result = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if offsets.(mid) = addr then begin
      result := mid;
      lo := !hi + 1
    end
    else if offsets.(mid) < addr then lo := mid + 1
    else hi := mid - 1
  done;
  if !result < 0 then raise Not_found else !result

let to_program (e : encoded) =
  let p = e.program in
  let contour_map = Program.contour_of_instr p in
  let digram_ctxs = Stats.digram_contexts p in
  let code =
    Array.mapi
      (fun i _ ->
        let raw =
          decode_at e ~contour:contour_map.(i) ~digram_ctx:digram_ctxs.(i)
            ~addr:e.offsets.(i)
        in
        let a =
          match Isa.shape raw.op with
          | Isa.Shape_target | Isa.Shape_call -> index_of_addr e raw.ra
          | _ -> raw.ra
        in
        { Isa.op = raw.op; a; b = raw.rb; c = raw.rc })
      p.Program.code
  in
  Program.make ?contour_map:p.Program.contour_map ~name:p.Program.name ~code
    ~entry:p.Program.entry ~contours:p.Program.contours ()

let instr_sizes (e : encoded) =
  let n = Array.length e.offsets in
  Array.init n (fun i ->
      if i + 1 < n then e.offsets.(i + 1) - e.offsets.(i)
      else e.size_bits - e.offsets.(i))

let bits_per_instruction (e : encoded) =
  if Array.length e.offsets = 0 then 0.
  else float_of_int e.size_bits /. float_of_int (Array.length e.offsets)
