(* The "degree of encoding" axis of paper Figure 1, from unencoded
   word-aligned fields to predecessor-conditioned Huffman coding. *)

type t =
  | Word16       (* word-aligned fields, one or more 16-bit units *)
  | Packed       (* bit-packed fixed-width fields, program-wide widths *)
  | Contextual   (* packed, but name fields sized per contour (scope rules) *)
  | Huffman      (* Huffman opcodes + nibble-chain variable-width operands *)
  | Huffman_b1700
                 (* Huffman restricted to codeword lengths {2,4,6,8,10}, as
                    in the Burroughs B1700's variable-length opcodes *)
  | Digram       (* Huffman conditioned on the predecessor opcode *)

let all = [ Word16; Packed; Contextual; Huffman; Huffman_b1700; Digram ]

let name = function
  | Word16 -> "word16"
  | Packed -> "packed"
  | Contextual -> "contextual"
  | Huffman -> "huffman"
  | Huffman_b1700 -> "huffman-b1700"
  | Digram -> "digram"

let of_name = function
  | "word16" -> Word16
  | "packed" -> Packed
  | "contextual" -> Contextual
  | "huffman" -> Huffman
  | "huffman-b1700" -> Huffman_b1700
  | "digram" -> Digram
  | other -> invalid_arg ("Kind.of_name: " ^ other)

let description = function
  | Word16 -> "word-aligned 16-bit fields (PDP-11-like; no encoding)"
  | Packed -> "bit-packed fixed-width fields spanning unit boundaries"
  | Contextual -> "packed with per-contour name-field widths (scope rules)"
  | Huffman -> "canonical Huffman opcodes, variable-width operands"
  | Huffman_b1700 ->
      "length-restricted Huffman opcodes (B1700 profile, lengths 2-10)"
  | Digram -> "per-predecessor Huffman opcodes (Foster-Gonter conditional)"
