(** Host-code assembler: builds long-format code with labels, forward
    references and per-routine cycle-accounting categories.

    Every emitted instruction is tagged with the {!category} in force, so
    the engine can attribute cycles to the paper's cost components: [d]
    (decode + dispatch), [x] (semantic routines), [g] (translation
    generation). *)

type category =
  | Startup     (* runtime initialisation *)
  | Decode      (* instruction decode and dispatch *)
  | Semantic    (* semantic routines: the real work, the paper's x *)
  | Translate   (* PSDER generation in the dynamic translator, the paper's g *)
  | Der         (* statically expanded machine code (the DER strategy) *)

val category_name : category -> string
val all_categories : category list

type t
type label

val create : unit -> t

val new_label : t -> label
val place : t -> label -> unit
val here : t -> int
(** Current emission address. *)

val set_category : t -> category -> unit

val routine : t -> category -> (unit -> unit) -> int
(** [routine b cat body] places a fresh label, switches to [cat], runs
    [body] (which emits the routine's instructions), restores the previous
    category, and returns the routine's entry address. *)

(** {2 Emission helpers} — one per {!Host_isa.instr} constructor; branch and
    call targets are labels. *)

val li : t -> Host_isa.reg -> int -> unit
val li_lbl : t -> Host_isa.reg -> label -> unit
(** Load a label's resolved address as an immediate (DER return points). *)
val mv : t -> Host_isa.reg -> Host_isa.reg -> unit
val alu : t -> Host_isa.alu_op -> Host_isa.reg -> Host_isa.reg -> Host_isa.reg -> unit
val alui : t -> Host_isa.alu_op -> Host_isa.reg -> Host_isa.reg -> int -> unit
val alu2i : t -> Host_isa.alu_op -> Host_isa.alu_op -> Host_isa.reg
  -> Host_isa.reg -> Host_isa.reg -> int -> unit
(** One-transaction compound operation (the restructurable-datapath
    feature of paper section 6.1). *)
val load : t -> Host_isa.reg -> Host_isa.reg -> int -> unit
val store : t -> Host_isa.reg -> Host_isa.reg -> int -> unit
val jmp : t -> label -> unit
val jz : t -> Host_isa.reg -> label -> unit
val jnz : t -> Host_isa.reg -> label -> unit
val jneg : t -> Host_isa.reg -> label -> unit
val jmp_r : t -> Host_isa.reg -> unit
val call : t -> label -> unit
val call_addr : t -> int -> unit
(** Call a routine whose absolute address is already known. *)

val call_r : t -> Host_isa.reg -> unit
val ret : t -> unit
val push_op : t -> Host_isa.reg -> unit
val pop_op : t -> Host_isa.reg -> unit
val get_bits : t -> Host_isa.reg -> int -> unit
val get_bits_r : t -> Host_isa.reg -> Host_isa.reg -> unit
val decode_assist : t -> unit
val emit_short : t -> Host_isa.reg -> unit
val end_trans : t -> unit
val out : t -> Host_isa.reg -> unit
val out_c : t -> Host_isa.reg -> unit
val halt : t -> unit
val break : t -> string -> unit

type program = {
  code : Host_isa.instr array;
  categories : category array;
}

val finish : t -> program
(** Resolves all label references.  Raises [Invalid_argument] on an
    unplaced label. *)

val resolve : t -> label -> int
(** Address of a placed label (after the fact); raises if unplaced. *)
