type category =
  | Startup
  | Decode
  | Semantic
  | Translate
  | Der

let category_name = function
  | Startup -> "startup"
  | Decode -> "decode"
  | Semantic -> "semantic"
  | Translate -> "translate"
  | Der -> "der"

let all_categories = [ Startup; Decode; Semantic; Translate; Der ]

type label = int

(* Branch-target instructions are stored with the label id in the target
   slot and patched at [finish]. *)
type pending =
  | Resolved of Host_isa.instr
  | Needs_label of (int -> Host_isa.instr) * label

type t = {
  mutable instrs : pending list; (* reversed *)
  mutable len : int;
  mutable labels : int array;
  mutable n_labels : int;
  mutable category : category;
  mutable cats : category list; (* reversed, parallel to instrs *)
}

let create () =
  {
    instrs = [];
    len = 0;
    labels = Array.make 64 (-1);
    n_labels = 0;
    category = Startup;
    cats = [];
  }

let new_label t =
  if t.n_labels = Array.length t.labels then begin
    let fresh = Array.make (2 * t.n_labels) (-1) in
    Array.blit t.labels 0 fresh 0 t.n_labels;
    t.labels <- fresh
  end;
  t.n_labels <- t.n_labels + 1;
  t.n_labels - 1

let place t label =
  if t.labels.(label) <> -1 then invalid_arg "Asm.place: label placed twice";
  t.labels.(label) <- t.len

let here t = t.len
let set_category t c = t.category <- c

let push t pending =
  t.instrs <- pending :: t.instrs;
  t.cats <- t.category :: t.cats;
  t.len <- t.len + 1

let emit t i = push t (Resolved i)
let emit_lbl t f label = push t (Needs_label (f, label))

let li t rd v = emit t (Host_isa.Li (rd, v))
let mv t rd rs = emit t (Host_isa.Mv (rd, rs))
let alu t op rd rs1 rs2 = emit t (Host_isa.Alu (op, rd, rs1, rs2))
let alui t op rd rs v = emit t (Host_isa.Alui (op, rd, rs, v))
let alu2i t op1 op2 rd rs1 rs2 v = emit t (Host_isa.Alu2i (op1, op2, rd, rs1, rs2, v))
let load t rd rs off = emit t (Host_isa.Load (rd, rs, off))
let store t rs rbase off = emit t (Host_isa.Store (rs, rbase, off))
let li_lbl t rd l = emit_lbl t (fun a -> Host_isa.Li (rd, a)) l
let jmp t l = emit_lbl t (fun a -> Host_isa.Jmp a) l
let jz t r l = emit_lbl t (fun a -> Host_isa.Jz (r, a)) l
let jnz t r l = emit_lbl t (fun a -> Host_isa.Jnz (r, a)) l
let jneg t r l = emit_lbl t (fun a -> Host_isa.Jneg (r, a)) l
let jmp_r t r = emit t (Host_isa.JmpR r)
let call t l = emit_lbl t (fun a -> Host_isa.CallL a) l
let call_addr t a = emit t (Host_isa.CallL a)
let call_r t r = emit t (Host_isa.CallR r)
let ret t = emit t Host_isa.Ret
let push_op t r = emit t (Host_isa.PushOp r)
let pop_op t r = emit t (Host_isa.PopOp r)
let get_bits t rd width = emit t (Host_isa.GetBits (rd, width))
let get_bits_r t rd rw = emit t (Host_isa.GetBitsR (rd, rw))
let decode_assist t = emit t Host_isa.DecodeAssist
let emit_short t r = emit t (Host_isa.EmitShort r)
let end_trans t = emit t Host_isa.EndTrans
let out t r = emit t (Host_isa.Out r)
let out_c t r = emit t (Host_isa.OutC r)
let halt t = emit t Host_isa.Halt
let break t msg = emit t (Host_isa.Break msg)

let routine t cat body =
  let entry = t.len in
  let saved = t.category in
  t.category <- cat;
  body ();
  t.category <- saved;
  entry

let resolve t label =
  let a = t.labels.(label) in
  if a < 0 then invalid_arg "Asm.resolve: label not placed";
  a

type program = {
  code : Host_isa.instr array;
  categories : category array;
}

let finish t =
  let instrs = Array.of_list (List.rev t.instrs) in
  let cats = Array.of_list (List.rev t.cats) in
  let code =
    Array.map
      (function
        | Resolved i -> i
        | Needs_label (f, label) ->
            let a = t.labels.(label) in
            if a < 0 then invalid_arg "Asm.finish: unplaced label";
            f a)
      instrs
  in
  { code; categories = cats }
