(* Timing parameters of the two-level memory hierarchy (paper §7).

   The unit of time is the level-1 access time, which the paper also takes
   as one host-instruction execution time.  [t_dtb] is the access time of an
   associative array (DTB or cache), nominally 2 * t1.  [t_guard] is the
   per-word cost of the translation-guard checksum unit (the resilience
   layer's hit-path verification); it is charged only when guards are
   enabled, so fault-free configurations never observe it. *)

type t = {
  t1 : int;      (* level-1 access time *)
  t2 : int;      (* level-2 access time *)
  t_dtb : int;   (* DTB / cache associative access time *)
  t_guard : int; (* guard checksum cost per translation word verified *)
}

let paper = { t1 = 1; t2 = 10; t_dtb = 2; t_guard = 1 }

let make ?(t1 = 1) ?(t2 = 10) ?(t_dtb = 2) ?(t_guard = 1) () =
  { t1; t2; t_dtb; t_guard }
