(** A set-associative cache with true-LRU replacement, used as the
    instruction cache of the paper's third configuration (§7, case 3) and as
    the comparison point for DTB associativity ablations.

    The cache is a timing model only — it tracks presence of block
    addresses, not data. *)

type t

val create : ?assoc:int -> ?block_words:int -> capacity_words:int -> unit -> t
(** [create ~capacity_words ()] builds a cache of the given total capacity,
    4-way set-associative by default with 4-word blocks.  [assoc = 0] means
    fully associative.  Capacity must be a multiple of [assoc * block_words]
    and the resulting set count a power of two (fully-associative caches are
    exempt).  Raises [Invalid_argument] otherwise. *)

val access : t -> int -> [ `Hit | `Miss ]
(** [access c addr] looks up the block containing word address [addr],
    updates LRU state, and installs the block on a miss. *)

val contains : t -> int -> bool
(** [contains c addr] is true iff the block of [addr] is resident
    (no LRU update — used by tests). *)

val invalidate_all : t -> unit

val hits : t -> int
val misses : t -> int
val hit_ratio : t -> float
val reset_stats : t -> unit

val sets : t -> int
val assoc : t -> int
val block_words : t -> int
val capacity_words : t -> int
