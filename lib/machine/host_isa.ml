(* The long-format host instruction set (IU1).

   This is the "greatest common divisor" machine of paper §6.1: a primitive
   register ISA with the interpretation aids the paper calls for — powerful
   bit-field extraction from the instruction stream (GetBits, the B1700-style
   bit-addressable fetch unit), table look-up support (indexed loads plus
   indirect jumps/calls), operand and return stacks, and the DTB-specific
   assists of §6.2 (EmitShort/EndTrans, the hardware-managed translation
   emission of the dynamic translator).

   Register conventions (see also [Regs]): r0-r15 general purpose,
   r16-r23 special (operand/return stack pointers, frame pointer, data top,
   DIR program counter, contour register, digram-context register). *)

type reg = int [@@deriving eq, show]

module Regs = struct
  let n = 24
  let sp = 16     (* operand stack pointer (grows up) *)
  let rsp = 17    (* return stack pointer (grows up) *)
  let fp = 18     (* current DIR frame base *)
  let dtop = 19   (* first free word of the DIR data area *)
  let dpc = 20    (* DIR program counter, a bit address *)
  let ctx = 21    (* current contour id (contextual decoding) *)
  let dctx = 22   (* digram decoding context *)
  let tr = 23     (* translator scratch: current translation's DIR address *)

  let name r =
    match r with
    | 16 -> "sp"
    | 17 -> "rsp"
    | 18 -> "fp"
    | 19 -> "dtop"
    | 20 -> "dpc"
    | 21 -> "ctx"
    | 22 -> "dctx"
    | 23 -> "tr"
    | r -> Printf.sprintf "r%d" r
end

type alu_op =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | And
  | Or
  | Xor
  | Shl
  | Shr          (* arithmetic right shift *)
  | Slt
  | Sle
  | Seq
  | Sne
  | Sgt
  | Sge
[@@deriving eq, show { with_path = false }]

type instr =
  | Li of reg * int
  | Mv of reg * reg
  | Alu of alu_op * reg * reg * reg    (* rd <- rs1 op rs2 *)
  | Alui of alu_op * reg * reg * int   (* rd <- rs op imm *)
  | Alu2i of alu_op * alu_op * reg * reg * reg * int
      (* rd <- (rs1 op1 rs2) op2 imm, in one register-to-register
         transaction: the paper's restructurable datapath (section 6.1),
         where "more significant transformations could be performed in one
         register-to-register transaction" *)
  | Load of reg * reg * int            (* rd <- mem[rs + off] *)
  | Store of reg * reg * int           (* mem[rbase + off] <- rs *)
  | Jmp of int
  | Jz of reg * int
  | Jnz of reg * int
  | Jneg of reg * int                  (* branch if rs < 0 (decode-tree leaf) *)
  | JmpR of reg                        (* computed jump (dispatch tables) *)
  | CallL of int                       (* push return address, jump *)
  | CallR of reg
  | Ret                                (* pop return address; may resume IU2 *)
  | PushOp of reg
  | PopOp of reg
  | GetBits of reg * int               (* rd <- next n bits at dpc; dpc += n *)
  | GetBitsR of reg * reg              (* width taken from a register *)
  | DecodeAssist                       (* hardware decode unit: decodes the
                                          instruction at dpc into r8-r11 and
                                          advances dpc (paper section 8's
                                          "powerful hardware aids") *)
  | EmitShort of reg                   (* append a short word (translation) *)
  | EndTrans                           (* finish translation, enter it (IU2) *)
  | Out of reg                         (* append decimal + newline to output *)
  | OutC of reg                        (* append a character to output *)
  | Halt
  | Break of string                    (* runtime error: trap with message *)
[@@deriving eq, show { with_path = false }]

let eval_alu op x y =
  match op with
  | Add -> x + y
  | Sub -> x - y
  | Mul -> x * y
  | Div -> if y = 0 then raise Division_by_zero else x / y
  | Mod -> if y = 0 then raise Division_by_zero else x mod y
  | And -> x land y
  | Or -> x lor y
  | Xor -> x lxor y
  | Shl -> x lsl y
  | Shr -> x asr y
  | Slt -> if x < y then 1 else 0
  | Sle -> if x <= y then 1 else 0
  | Seq -> if x = y then 1 else 0
  | Sne -> if x <> y then 1 else 0
  | Sgt -> if x > y then 1 else 0
  | Sge -> if x >= y then 1 else 0

(* Size convention for the space axis of Figure 1: one long-format
   (horizontal) instruction occupies 32 bits. *)
let bits_per_instr = 32
