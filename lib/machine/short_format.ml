(* The short-format (vertical) instruction set executed by IU2 (paper §6.2).

   A short instruction is one machine word: a 3-bit opcode, a 6-bit decoding
   context (meaningful on the INTERP flavours, see DESIGN.md on digram
   decoding), and a signed operand in the remaining bits.

   The paper's set is CALL, PUSH (immediate / direct / indirect), POP and
   INTERP; we add GOTO, the intra-buffer jump that links a translation's
   overflow blocks (§5.1's "variable allocation with fixed size increments").

   Size convention for the space axis of Figure 1: one short word occupies
   16 bits. *)

type op =
  | Push_imm     (* push operand *)
  | Push_dir     (* push mem[operand] *)
  | Push_ind     (* push mem[mem[operand]] *)
  | Pop_dir      (* mem[operand] <- pop *)
  | Call_long    (* call the long-format routine at code address operand *)
  | Interp_imm   (* exercise the DTB on DIR address operand *)
  | Interp_stk   (* pop DIR address, then pop decode context *)
  | Goto         (* jump to buffer address operand (overflow chaining) *)
  | Goto_stk     (* pop a buffer address and jump to it (psder-static) *)
[@@deriving eq, show { with_path = false }]

let op_to_int = function
  | Push_imm -> 0
  | Push_dir -> 1
  | Push_ind -> 2
  | Pop_dir -> 3
  | Call_long -> 4
  | Interp_imm -> 5
  | Interp_stk -> 6
  | Goto -> 7
  | Goto_stk -> 8

let op_of_int = function
  | 0 -> Push_imm
  | 1 -> Push_dir
  | 2 -> Push_ind
  | 3 -> Pop_dir
  | 4 -> Call_long
  | 5 -> Interp_imm
  | 6 -> Interp_stk
  | 7 -> Goto
  | 8 -> Goto_stk
  | n -> invalid_arg (Printf.sprintf "Short_format.op_of_int: %d" n)

let op_bits = 4
let ctx_bits = 6
let ctx_mask = (1 lsl ctx_bits) - 1
let max_ctx = ctx_mask
let operand_shift = op_bits + ctx_bits

(* word = op | ctx << 4 | operand << 10, operand signed *)
let pack ?(ctx = 0) op operand =
  if ctx < 0 || ctx > max_ctx then
    invalid_arg "Short_format.pack: context out of range";
  op_to_int op lor (ctx lsl op_bits) lor (operand lsl operand_shift)

(* Field accessors on the raw word.  [unpack] builds a tuple, which on the
   IU2 dispatch path means one heap allocation per executed short word;
   the simulator hot loop reads the fields it needs straight off the int
   instead (the opcode stays an int there too — see [Machine.exec_short]). *)
let[@inline] unpack_op word = word land ((1 lsl op_bits) - 1)
let[@inline] unpack_ctx word = (word lsr op_bits) land ctx_mask
let[@inline] unpack_operand word = word asr operand_shift

let unpack word =
  (op_of_int (unpack_op word), unpack_ctx word, unpack_operand word)

let to_string word =
  let op, ctx, operand = unpack word in
  match op with
  | Interp_imm -> Printf.sprintf "interp %d ctx=%d" operand ctx
  | Interp_stk -> "interp-stk"
  | Push_imm -> Printf.sprintf "push #%d" operand
  | Push_dir -> Printf.sprintf "push [%d]" operand
  | Push_ind -> Printf.sprintf "push [[%d]]" operand
  | Pop_dir -> Printf.sprintf "pop [%d]" operand
  | Call_long -> Printf.sprintf "call @%d" operand
  | Goto -> Printf.sprintf "goto %d" operand
  | Goto_stk -> "goto-stk"

let bits_per_word = 16
