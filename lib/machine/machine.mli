(** The universal host machine simulator.

    Executes long-format host code (IU1) and short-format words (IU2) over a
    single word-addressed memory with region-based access times, counting
    cycles exactly as paper §7 does: one cycle per host instruction (the
    level-1 access time is the time unit), plus memory access times by
    region, plus DIR instruction-stream fetch charges per 16-bit unit
    (optionally through an instruction cache).

    The DTB itself lives outside (in [uhm_core]); the machine calls back
    through {!hooks} on INTERP, EmitShort and EndTrans. *)

type t

type pc =
  | Long of int    (** executing long-format code at this address (IU1) *)
  | Short of int   (** executing short words at this memory address (IU2) *)

type status =
  | Running
  | Halted
  | Trapped of string
  | Out_of_fuel

type region = {
  rname : string;
  base : int;
  size : int;
  cost : int;     (** access time in cycles *)
}

type hooks = {
  h_interp : t -> dir_addr:int -> dctx:int -> unit;
  (** INTERP executed; must set the pc (hit) or arrange translation (miss)
      and charge cycles via {!add_cycles}. *)
  h_emit_short : t -> int -> unit;
  (** EmitShort executed with the given word. *)
  h_end_trans : t -> unit;
  (** EndTrans executed. *)
  h_decode_assist : t -> unit;
  (** DecodeAssist executed: decode the DIR instruction at the dpc register
      into r8-r11, advance dpc, and charge the assist-unit time plus
      {!charge_dir_span} for the stream units touched. *)
}

type dir_fetch_mode =
  | Dir_uncached          (** every 16-bit unit costs the level-2 time *)
  | Dir_cached of Cache.t (** units go through an instruction cache *)

type backend = [ `Decode | `Threaded ]
(** How host instructions are executed.  [`Decode] (the default and the
    reference semantics) re-decodes every instruction on every execution.
    [`Threaded] compiles long-format code — and, inside a window opened
    with {!enable_short_compile}, installed short-format words — into
    pre-bound OCaml closures dispatched directly, the paper's DIR→PSDER
    move applied to the simulator's own host loop.  The two backends are
    observably identical (cycles, statistics, traps, output, final state)
    on every program; [`Threaded] only changes host wall-clock time. *)

type stats = {
  mutable cycles : int;
  mutable host_instrs : int;
  mutable short_instrs : int;
  cat_cycles : int array;          (** per {!Asm.category}, in declaration order *)
  mutable dir_units_fetched : int;
  mutable dir_fetch_cycles : int;
  mutable short_fetch_cycles : int;(** cycles fetching short words *)
  mutable code_fetch_cycles : int; (** extra host-code fetch cost (DER in level 2) *)
  mutable stack_cycles : int;      (** operand/return stack traffic *)
  mutable interp_count : int;      (** INTERP executions *)
}

val category_index : Asm.category -> int

val create : ?timing:Timing.t -> ?fuel:int -> ?backend:backend
  -> program:Asm.program -> mem_words:int -> regions:region list -> unit -> t
(** [fuel] bounds total cycles (default one billion).  Regions must be
    disjoint and within [mem_words]; accesses outside any region trap.
    [backend] (default [`Decode]) selects the execution backend. *)

val backend : t -> backend

val enable_short_compile : t -> base:int -> size:int -> unit
(** Open the threaded backend's short-word compile window over
    [base, base+size): short words executed inside it are compiled to
    closures on first execution and cached until the word is overwritten,
    {!drop_short_range} covers it, or {!restore} rewinds memory.  A no-op
    on [`Decode] machines or when [size <= 0]; raises [Invalid_argument]
    if the window exceeds memory. *)

val drop_short_range : t -> addr:int -> len:int -> unit
(** Drop any compiled closures for short words in [addr, addr+len) — the
    DTB lifecycle tap (entry eviction, flush, ASID invalidation, aborted
    translation).  Clamped to the compile window; no-op when none is
    open.  Dropping is always safe: a dropped word is simply re-compiled
    (or decoded) on next execution. *)

val set_hooks : t -> hooks -> unit
val set_dir_stream : t -> bits:string -> mode:dir_fetch_mode -> unit
val set_code_fetch_hook : t -> (int -> int) -> unit
(** [set_code_fetch_hook m f] adds [f addr] cycles when fetching the long
    instruction at [addr] (models DER code living in level-2 memory). *)

val timing : t -> Timing.t
val reg : t -> int -> int
val set_reg : t -> int -> int -> unit
val peek : t -> int -> int
(** Read memory without charging cycles (setup/inspection). *)

val poke : t -> int -> int -> unit
(** Write memory without charging cycles (setup). *)

val mem_cost : t -> int -> int
(** The access time of an address; raises [Not_found] if unmapped. *)

val add_cycles : t -> int -> unit
(** Charge extra cycles (used by hooks for DTB lookup time). *)

val charge_dir_span : t -> first_bit:int -> last_bit:int -> unit
(** Charge the IFU for the 16-bit units covering the given bit range (used
    by the decode-assist hook). *)

val charge_mem : t -> int -> unit
(** Charge a memory access to [stack_cycles]-independent bookkeeping: adds
    [mem_cost] cycles (used by hooks when they touch memory on the
    machine's behalf). *)

val set_pc : t -> pc -> unit
val pc : t -> pc
val status : t -> status
val stats : t -> stats
val output : t -> string
val run : t -> status
(** Execute until halt, trap or fuel exhaustion. *)

(** {2 Resumable execution}

    Slice-wise execution for the multiprogramming scheduler.  Both entry
    points execute exactly the {!step}s that {!run} would and stop only on
    instruction boundaries, so running a program in K slices — for any K
    and any mix of slice boundaries — leaves bit-identical state,
    statistics and output to a single {!run}. *)

type run_outcome =
  | Done of status (** the program left [Running] during this slice *)
  | Yielded        (** the slice expired; call again to continue *)

val run_for : t -> budget:int -> run_outcome
(** Execute until at least [budget] more cycles have been charged (the
    slice ends after the instruction that crosses the budget: instructions
    are atomic) or the program stops.  Edge cases are pinned by
    [test/test_resume.ml]: [budget = 0] executes nothing and returns
    [Yielded] (0 cycles of progress) on a running machine; a negative
    budget raises [Invalid_argument]; a budget that would overflow the
    cycle counter saturates, so [budget = max_int] always means "run to
    completion".  On a machine that has already left [Running], any legal
    budget returns [Done status] immediately without executing. *)

val run_dir_quantum : t -> quantum:int -> run_outcome
(** Execute until [quantum] DIR instructions (INTERP transfers) have
    completed {e and} the pc rests on the next INTERP word.  INTERP
    boundaries are the safe preemption points when the translation buffer
    is shared: between them the pc can sit inside a DTB unit that another
    program's translations could evict.  [quantum] must be at least 1:
    a quantum of 0 or negative raises [Invalid_argument] (a zero-DIR-step
    slice cannot end on an INTERP boundary it never reaches); a quantum no
    less than the program's remaining [dir_steps] runs it to completion in
    one slice.  On a machine that has already left [Running], a legal
    quantum returns [Done status] immediately without executing. *)

type snapshot = {
  snap_pc : pc;
  snap_status : status;
  snap_regs : int array;       (** copy of the register file *)
  snap_cycles : int;
  snap_interp_count : int;
  snap_op_stack : int list;    (** operand stack, top first *)
  snap_ret_stack : int list;   (** return stack, top first *)
}

val snapshot : t -> snapshot
(** Capture the resumption state of a (possibly suspended) program without
    charging cycles.  Stack contents are read from the regions the stack
    pointers rest in. *)

(** {2 Checkpoints}

    Full-state capture for the resilience layer's rollback-and-replay
    recovery (fault injection on level-1 memory).  Unlike {!snapshot},
    which is an inspection record, a {!checkpoint} can be {!restore}d:
    it deep-copies every written memory page plus the register file, pc,
    status, output length and the IFU's buffered unit. *)

type checkpoint

val checkpoint : t -> checkpoint
(** Capture restorable state; charges no cycles.  Statistics are
    deliberately {e not} captured: a later {!restore} leaves the cycle and
    instruction counters running forward, so replayed work is re-charged
    and the cost of a rollback stays visible in the accounts. *)

val restore : t -> checkpoint -> unit
(** Rewind the machine to the captured state: memory pages (pages written
    since the checkpoint revert to zero), registers, pc, status, buffered
    IFU unit, and the output buffer (truncated to its checkpointed
    length).  Statistics are left untouched — see {!checkpoint}.  Only
    meaningful on the machine the checkpoint was taken from. *)

val checkpoint_pages : checkpoint -> int
(** Number of memory pages the checkpoint copied (its cost driver). *)

val recycle : t -> unit
(** Return the machine's copy-on-write pages and page table to a
    domain-local pool reused by subsequent {!create} calls on the same
    domain (grid sweeps build thousands of machines; pooling keeps that
    churn out of the GC).  The machine must not be used afterwards.
    Recycled storage is re-zeroed on reuse, so pooling never changes
    simulated behaviour. *)

val step : t -> unit
(** Execute one instruction (long or short); no-op unless [Running]. *)
