type t = {
  sets : int;
  assoc : int;
  block_words : int;
  (* tags.(set).(way) = block address, or -1 when invalid *)
  tags : int array array;
  (* stamp.(set).(way): larger = more recently used.  Timestamp recency is
     the paper's "replacement array" in O(1) per touch: counters would need
     an O(assoc) shuffle on every access, quadratic-ish for the
     full-associativity ablation. *)
  stamp : int array array;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(assoc = 4) ?(block_words = 4) ~capacity_words () =
  if capacity_words <= 0 || block_words <= 0 || assoc < 0 then
    invalid_arg "Cache.create: non-positive parameter";
  let blocks = capacity_words / block_words in
  if blocks * block_words <> capacity_words then
    invalid_arg "Cache.create: capacity not a multiple of the block size";
  let assoc = if assoc = 0 then blocks else assoc in
  if blocks mod assoc <> 0 then
    invalid_arg "Cache.create: capacity not a multiple of assoc * block size";
  let sets = blocks / assoc in
  if not (is_power_of_two sets) then
    invalid_arg "Cache.create: set count must be a power of two";
  {
    sets;
    assoc;
    block_words;
    tags = Array.make_matrix sets assoc (-1);
    (* way 0 most recent, way [assoc-1] first victim, as with counters *)
    stamp = Array.init sets (fun _ -> Array.init assoc (fun w -> -w));
    clock = 0;
    hits = 0;
    misses = 0;
  }

let set_of t block = block land (t.sets - 1)

let touch t set way =
  t.clock <- t.clock + 1;
  t.stamp.(set).(way) <- t.clock

let find t set block =
  let tags = t.tags.(set) in
  let rec go w =
    if w >= t.assoc then None else if tags.(w) = block then Some w else go (w + 1)
  in
  go 0

let access t addr =
  let block = addr / t.block_words in
  let set = set_of t block in
  match find t set block with
  | Some way ->
      t.hits <- t.hits + 1;
      touch t set way;
      `Hit
  | None ->
      t.misses <- t.misses + 1;
      (* evict the least recently used way *)
      let stamp = t.stamp.(set) in
      let victim = ref 0 in
      for w = 1 to t.assoc - 1 do
        if stamp.(w) < stamp.(!victim) then victim := w
      done;
      t.tags.(set).(!victim) <- block;
      touch t set !victim;
      `Miss

let contains t addr =
  let block = addr / t.block_words in
  find t (set_of t block) block <> None

let invalidate_all t =
  Array.iter (fun tags -> Array.fill tags 0 (Array.length tags) (-1)) t.tags

let hits t = t.hits
let misses t = t.misses

let hit_ratio t =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let sets t = t.sets
let assoc t = t.assoc
let block_words t = t.block_words
let capacity_words t = t.sets * t.assoc * t.block_words
