module H = Host_isa

type pc =
  | Long of int
  | Short of int

type status =
  | Running
  | Halted
  | Trapped of string
  | Out_of_fuel

type region = {
  rname : string;
  base : int;
  size : int;
  cost : int;
}

type dir_fetch_mode =
  | Dir_uncached
  | Dir_cached of Cache.t

type stats = {
  mutable cycles : int;
  mutable host_instrs : int;
  mutable short_instrs : int;
  cat_cycles : int array;
  mutable dir_units_fetched : int;
  mutable dir_fetch_cycles : int;
  mutable short_fetch_cycles : int;
  mutable code_fetch_cycles : int;
  mutable stack_cycles : int;
  mutable interp_count : int;
}

let category_index = function
  | Asm.Startup -> 0
  | Asm.Decode -> 1
  | Asm.Semantic -> 2
  | Asm.Translate -> 3
  | Asm.Der -> 4

(* -- Paged memory ------------------------------------------------------------
   Simulated memory is sparse: the default layout spans ~1.6M words but a run
   touches only a few pages of it.  Pages start as a shared all-zero page and
   are copied on first write, so creating a machine costs a small page table
   instead of zeroing megabytes. *)

let page_bits = 12
let page_words = 1 lsl page_bits
let page_mask = page_words - 1

(* Shared by every machine; the copy-on-write check in [mem_set] keeps it
   all-zero forever. *)
let zero_page : int array = Array.make page_words 0

(* -- Per-domain memory pool ---------------------------------------------------
   Experiment grids create and drop thousands of machines; recycling the
   COW pages and the page tables keeps that churn out of the GC.  The pool
   is domain-local (no locks): a sweep worker only ever recycles machines
   it created.  Recycled pages are re-zeroed on reuse, so a pooled machine
   is indistinguishable from a freshly allocated one. *)

type page_pool = {
  mutable free_pages : int array list;
  mutable free_page_count : int;
  mutable free_tables : int array array list;
}

let max_pooled_pages = 1024
let max_pooled_tables = 8

let pool_key : page_pool Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { free_pages = []; free_page_count = 0; free_tables = [] })

let alloc_page () =
  let pool = Domain.DLS.get pool_key in
  match pool.free_pages with
  | page :: rest ->
      pool.free_pages <- rest;
      pool.free_page_count <- pool.free_page_count - 1;
      Array.fill page 0 page_words 0;
      page
  | [] -> Array.make page_words 0

let alloc_page_table pages =
  let pool = Domain.DLS.get pool_key in
  let rec take acc = function
    | [] -> None
    | t :: rest when Array.length t = pages ->
        pool.free_tables <- List.rev_append acc rest;
        Some t
    | t :: rest -> take (t :: acc) rest
  in
  match take [] pool.free_tables with
  | Some table ->
      Array.fill table 0 pages zero_page;
      table
  | None -> Array.make pages zero_page

(* -- Region cost table --------------------------------------------------------
   Memory access time by region, resolved in O(1): a table holds one cost per
   [cost_page_words]-word page when the page lies entirely inside one region,
   and [cost_mixed] when a region boundary splits the page (then the original
   first-match scan decides, preserving exact semantics for any layout). *)

let cost_page_bits = 8
let cost_page_words = 1 lsl cost_page_bits
let cost_mixed = -1

type t = {
  code : H.instr array;
  code_cat : int array;
  mem : int array array;
  mem_words : int;
  regions : region array;
  region_cost : int array;
  regs : int array;
  timing : Timing.t;
  fuel : int;
  out : Buffer.t;
  stats : stats;
  mutable pc_short : bool;
  mutable pc_addr : int;
  mutable status : status;
  mutable hooks : hooks option;
  mutable dir_bits : string;
  mutable dir_reader : Uhm_bitstream.Reader.t option;
  mutable dir_mode : dir_fetch_mode;
  mutable dir_buffered_unit : int;  (* IFU holds one 16-bit unit; -1 = empty *)
  mutable code_fetch_hook : (int -> int) option;
}

and hooks = {
  h_interp : t -> dir_addr:int -> dctx:int -> unit;
  h_emit_short : t -> int -> unit;
  h_end_trans : t -> unit;
  h_decode_assist : t -> unit;
}

exception Machine_trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Machine_trap s)) fmt

(* The return stack distinguishes IU1 and IU2 resumption addresses with a
   high tag bit. *)
let short_tag = 1 lsl 40
let short_mask = short_tag - 1

(* First-match linear scan over the region list; the reference semantics the
   cost table must agree with. *)
let scan_cost regions addr =
  let rec go i =
    if i >= Array.length regions then raise Not_found
    else
      let r = Array.unsafe_get regions i in
      if addr >= r.base && addr < r.base + r.size then r.cost else go (i + 1)
  in
  go 0

let build_cost_table regions mem_words =
  let pages = (mem_words + cost_page_words - 1) lsr cost_page_bits in
  let tbl = Array.make pages cost_mixed in
  (* A page is uniform unless some region boundary falls strictly inside
     it; boundaries on page edges leave the covering-region set constant
     across the page. *)
  let mixed = Array.make pages false in
  Array.iter
    (fun r ->
      List.iter
        (fun b ->
          if b land (cost_page_words - 1) <> 0 then begin
            let pg = b lsr cost_page_bits in
            if pg < pages then mixed.(pg) <- true
          end)
        [ r.base; r.base + r.size ])
    regions;
  for pg = 0 to pages - 1 do
    if not mixed.(pg) then
      tbl.(pg) <-
        (match scan_cost regions (pg lsl cost_page_bits) with
        | cost -> cost
        | exception Not_found -> cost_mixed)
  done;
  tbl

let create ?(timing = Timing.paper) ?(fuel = 1_000_000_000) ~program ~mem_words
    ~regions () =
  let regions = Array.of_list regions in
  Array.iter
    (fun r ->
      if r.base < 0 || r.size < 0 || r.base + r.size > mem_words then
        invalid_arg (Printf.sprintf "Machine.create: region %s out of range" r.rname))
    regions;
  let pages = (mem_words + page_words - 1) lsr page_bits in
  {
    code = program.Asm.code;
    code_cat = Array.map category_index program.Asm.categories;
    mem = alloc_page_table pages;
    mem_words;
    regions;
    region_cost = build_cost_table regions mem_words;
    regs = Array.make H.Regs.n 0;
    timing;
    fuel;
    out = Buffer.create 256;
    stats =
      {
        cycles = 0;
        host_instrs = 0;
        short_instrs = 0;
        cat_cycles = Array.make 5 0;
        dir_units_fetched = 0;
        dir_fetch_cycles = 0;
        short_fetch_cycles = 0;
        code_fetch_cycles = 0;
        stack_cycles = 0;
        interp_count = 0;
      };
    pc_short = false;
    pc_addr = 0;
    status = Running;
    hooks = None;
    dir_bits = "";
    dir_reader = None;
    dir_mode = Dir_uncached;
    dir_buffered_unit = -1;
    code_fetch_hook = None;
  }

let set_hooks t hooks = t.hooks <- Some hooks

let set_dir_stream t ~bits ~mode =
  t.dir_bits <- bits;
  t.dir_reader <- Some (Uhm_bitstream.Reader.of_string bits);
  t.dir_mode <- mode;
  t.dir_buffered_unit <- -1

let set_code_fetch_hook t f = t.code_fetch_hook <- Some f
let timing t = t.timing
let reg t r = t.regs.(r)
let set_reg t r v = t.regs.(r) <- v

(* Bounds already checked by the caller. *)
let mem_get t addr =
  Array.unsafe_get
    (Array.unsafe_get t.mem (addr lsr page_bits))
    (addr land page_mask)

let mem_set t addr v =
  let pi = addr lsr page_bits in
  let page = Array.unsafe_get t.mem pi in
  let page =
    if page == zero_page then begin
      let fresh = alloc_page () in
      Array.unsafe_set t.mem pi fresh;
      fresh
    end
    else page
  in
  Array.unsafe_set page (addr land page_mask) v

(* Return the machine's pages and page table to the domain-local pool.
   The machine must not be used afterwards: its memory now aliases pool
   storage that the next [create] on this domain will hand out again. *)
let recycle t =
  let pool = Domain.DLS.get pool_key in
  let mem = t.mem in
  for i = 0 to Array.length mem - 1 do
    let page = Array.unsafe_get mem i in
    if page != zero_page then begin
      if pool.free_page_count < max_pooled_pages then begin
        pool.free_pages <- page :: pool.free_pages;
        pool.free_page_count <- pool.free_page_count + 1
      end;
      Array.unsafe_set mem i zero_page
    end
  done;
  if List.length pool.free_tables < max_pooled_tables then
    pool.free_tables <- mem :: pool.free_tables

let peek t addr =
  if addr < 0 || addr >= t.mem_words then
    invalid_arg (Printf.sprintf "Machine.peek: address %d out of range" addr);
  mem_get t addr

let poke t addr v =
  if addr < 0 || addr >= t.mem_words then
    invalid_arg (Printf.sprintf "Machine.poke: address %d out of range" addr);
  mem_set t addr v

let set_pc t = function
  | Long a ->
      t.pc_short <- false;
      t.pc_addr <- a
  | Short a ->
      t.pc_short <- true;
      t.pc_addr <- a

let pc t = if t.pc_short then Short t.pc_addr else Long t.pc_addr
let status t = t.status
let stats t = t.stats
let output t = Buffer.contents t.out
let add_cycles t n = t.stats.cycles <- t.stats.cycles + n

let mem_cost t addr =
  if addr < 0 || addr >= t.mem_words then raise Not_found
  else
    let c = Array.unsafe_get t.region_cost (addr lsr cost_page_bits) in
    if c >= 0 then c else scan_cost t.regions addr

(* Hot path: bounds already checked, table hit avoids the scan. *)
let charge_mem_checked t addr =
  let c = Array.unsafe_get t.region_cost (addr lsr cost_page_bits) in
  if c >= 0 then t.stats.cycles <- t.stats.cycles + c
  else
    match scan_cost t.regions addr with
    | cost -> t.stats.cycles <- t.stats.cycles + cost
    | exception Not_found -> trap "unmapped memory address %d" addr

let charge_mem t addr =
  if addr < 0 || addr >= t.mem_words then
    trap "unmapped memory address %d" addr;
  charge_mem_checked t addr

(* A memory access from executing code: charge its region cost and return /
   store the value. *)
let mem_read t addr =
  if addr < 0 || addr >= t.mem_words then trap "memory read at %d" addr;
  charge_mem_checked t addr;
  mem_get t addr

let mem_write t addr v =
  if addr < 0 || addr >= t.mem_words then trap "memory write at %d" addr;
  charge_mem_checked t addr;
  mem_set t addr v

(* Operand/return stack accesses are counted separately so the short-format
   overhead is visible in reports. *)
let stack_read t addr =
  let v = mem_read t addr in
  t.stats.stack_cycles <- t.stats.stack_cycles + t.timing.Timing.t1;
  v

let stack_write t addr v =
  mem_write t addr v;
  t.stats.stack_cycles <- t.stats.stack_cycles + t.timing.Timing.t1

let push_op t v =
  let sp = t.regs.(H.Regs.sp) in
  stack_write t sp v;
  t.regs.(H.Regs.sp) <- sp + 1

let pop_op t =
  let sp = t.regs.(H.Regs.sp) - 1 in
  if sp < 0 then trap "operand stack underflow";
  t.regs.(H.Regs.sp) <- sp;
  stack_read t sp

let push_ret t v =
  let rsp = t.regs.(H.Regs.rsp) in
  stack_write t rsp v;
  t.regs.(H.Regs.rsp) <- rsp + 1

let pop_ret t =
  let rsp = t.regs.(H.Regs.rsp) - 1 in
  if rsp < 0 then trap "return stack underflow";
  t.regs.(H.Regs.rsp) <- rsp;
  stack_read t rsp

(* -- DIR stream fetch (the IFU) -------------------------------------------- *)

let charge_dir_unit t unit_index =
  if unit_index <> t.dir_buffered_unit then begin
    t.dir_buffered_unit <- unit_index;
    t.stats.dir_units_fetched <- t.stats.dir_units_fetched + 1;
    let cost =
      match t.dir_mode with
      | Dir_uncached -> t.timing.Timing.t2
      | Dir_cached cache -> (
          match Cache.access cache unit_index with
          | `Hit -> t.timing.Timing.t_dtb
          | `Miss -> t.timing.Timing.t2)
    in
    t.stats.dir_fetch_cycles <- t.stats.dir_fetch_cycles + cost;
    t.stats.cycles <- t.stats.cycles + cost
  end

(* Charge the IFU for every 16-bit unit in [first_bit, last_bit]; used by
   the decode-assist hook, which reads the stream outside GetBits. *)
let charge_dir_span t ~first_bit ~last_bit =
  for u = first_bit / 16 to last_bit / 16 do
    charge_dir_unit t u
  done

let get_bits t width =
  let reader =
    match t.dir_reader with
    | Some r -> r
    | None -> trap "GetBits with no DIR stream loaded"
  in
  let addr = t.regs.(H.Regs.dpc) in
  if width < 0 then trap "GetBits with negative width";
  let last = addr + width - 1 in
  if addr < 0 || last >= Uhm_bitstream.Reader.length_bits reader then
    trap "DIR fetch out of range at bit %d" addr;
  (* charge each 16-bit unit the field touches *)
  if width = 0 then 0
  else begin
    for u = addr / 16 to last / 16 do
      charge_dir_unit t u
    done;
    (* sequential fetches leave the cursor already at dpc *)
    if Uhm_bitstream.Reader.pos reader <> addr then
      Uhm_bitstream.Reader.seek reader addr;
    let v = Uhm_bitstream.Reader.get reader width in
    t.regs.(H.Regs.dpc) <- addr + width;
    v
  end

(* -- Execution -------------------------------------------------------------- *)

let hooks_exn t =
  match t.hooks with
  | Some h -> h
  | None -> trap "IU2 feature used with no hooks installed"

let exec_long t addr =
  if addr < 0 || addr >= Array.length t.code then trap "host pc out of range: %d" addr;
  let stats = t.stats in
  (match t.code_fetch_hook with
  | Some f ->
      let extra = f addr in
      stats.code_fetch_cycles <- stats.code_fetch_cycles + extra;
      stats.cycles <- stats.cycles + extra
  | None -> ());
  let cat = Array.unsafe_get t.code_cat addr in
  (* Stats are batched: the instruction's own cycle, the instruction
     count and the category attribution are flushed in one group of
     writes after the dispatch, instead of touching the record per field
     up front and re-reading it at the end.  Totals for any run that
     reaches the flush are identical to the unbatched accounting. *)
  let before = stats.cycles in
  let fetch_before = stats.dir_fetch_cycles in
  let regs = t.regs in
  (* fall-through default; taken branches, Ret and the hooks overwrite it
     ([pc_short] is false on entry: exec_long only runs from a Long pc) *)
  t.pc_addr <- addr + 1;
  (match Array.unsafe_get t.code addr with
  | H.Li (rd, v) -> regs.(rd) <- v
  | H.Mv (rd, rs) -> regs.(rd) <- regs.(rs)
  | H.Alu (op, rd, rs1, rs2) -> (
      try regs.(rd) <- H.eval_alu op regs.(rs1) regs.(rs2)
      with Division_by_zero -> trap "division by zero")
  | H.Alui (op, rd, rs, v) -> (
      try regs.(rd) <- H.eval_alu op regs.(rs) v
      with Division_by_zero -> trap "division by zero")
  | H.Alu2i (op1, op2, rd, rs1, rs2, v) -> (
      try regs.(rd) <- H.eval_alu op2 (H.eval_alu op1 regs.(rs1) regs.(rs2)) v
      with Division_by_zero -> trap "division by zero")
  | H.Load (rd, rs, off) -> regs.(rd) <- mem_read t (regs.(rs) + off)
  | H.Store (rs, rbase, off) -> mem_write t (regs.(rbase) + off) regs.(rs)
  | H.Jmp a -> t.pc_addr <- a
  | H.Jz (r, a) -> if regs.(r) = 0 then t.pc_addr <- a
  | H.Jnz (r, a) -> if regs.(r) <> 0 then t.pc_addr <- a
  | H.Jneg (r, a) -> if regs.(r) < 0 then t.pc_addr <- a
  | H.JmpR r -> t.pc_addr <- regs.(r)
  | H.CallL a ->
      push_ret t (addr + 1);
      t.pc_addr <- a
  | H.CallR r ->
      push_ret t (addr + 1);
      t.pc_addr <- regs.(r)
  | H.Ret ->
      let v = pop_ret t in
      if v land short_tag <> 0 then begin
        t.pc_short <- true;
        t.pc_addr <- v land short_mask
      end
      else t.pc_addr <- v
  | H.PushOp r -> push_op t regs.(r)
  | H.PopOp r -> regs.(r) <- pop_op t
  | H.GetBits (rd, width) -> regs.(rd) <- get_bits t width
  | H.GetBitsR (rd, rw) -> regs.(rd) <- get_bits t regs.(rw)
  | H.DecodeAssist -> (hooks_exn t).h_decode_assist t
  | H.EmitShort r -> (hooks_exn t).h_emit_short t regs.(r)
  | H.EndTrans -> (hooks_exn t).h_end_trans t (* pc set by the hook *)
  | H.Out r ->
      Buffer.add_string t.out (string_of_int regs.(r));
      Buffer.add_char t.out '\n'
  | H.OutC r ->
      let v = regs.(r) in
      if v < 0 || v > 255 then trap "OutC out of range: %d" v;
      Buffer.add_char t.out (Char.chr v)
  | H.Halt ->
      t.status <- Halted;
      t.pc_addr <- addr
  | H.Break msg -> trap "%s" msg);
  (* flush: +1 for the instruction itself, and its category gets every
     cycle charged during dispatch except DIR-stream fetch time, which is
     accounted separately (the paper's s2*tau2 term) *)
  let cycles = stats.cycles + 1 in
  stats.cycles <- cycles;
  stats.host_instrs <- stats.host_instrs + 1;
  let cats = stats.cat_cycles in
  Array.unsafe_set cats cat
    (Array.unsafe_get cats cat + (cycles - before)
    - (stats.dir_fetch_cycles - fetch_before))

let exec_short t addr =
  let stats = t.stats in
  let before = stats.cycles in
  let word = mem_read t addr in
  (* batched flush: fetch charge attribution, the instruction cycle and
     the count in one group of writes (totals identical to incrementing
     each field as it accrues) *)
  let fetch = stats.cycles - before in
  stats.cycles <- before + fetch + 1;
  stats.short_instrs <- stats.short_instrs + 1;
  stats.short_fetch_cycles <- stats.short_fetch_cycles + fetch;
  (* field accessors on the raw word: no per-word tuple allocation in the
     IU2 dispatch loop *)
  let operand = Short_format.unpack_operand word in
  t.pc_addr <- addr + 1;
  match Short_format.op_of_int (Short_format.unpack_op word) with
  | Short_format.Push_imm -> push_op t operand
  | Short_format.Push_dir -> push_op t (mem_read t operand)
  | Short_format.Push_ind -> push_op t (mem_read t (mem_read t operand))
  | Short_format.Pop_dir ->
      let v = pop_op t in
      mem_write t operand v
  | Short_format.Call_long ->
      push_ret t ((addr + 1) lor short_tag);
      t.pc_short <- false;
      t.pc_addr <- operand
  | Short_format.Interp_imm ->
      stats.interp_count <- stats.interp_count + 1;
      (hooks_exn t).h_interp t ~dir_addr:operand
        ~dctx:(Short_format.unpack_ctx word)
  | Short_format.Interp_stk ->
      stats.interp_count <- stats.interp_count + 1;
      let dir_addr = pop_op t in
      let dctx = pop_op t in
      (hooks_exn t).h_interp t ~dir_addr ~dctx
  | Short_format.Goto -> t.pc_addr <- operand
  | Short_format.Goto_stk ->
      let a = pop_op t in
      t.pc_addr <- a

let step t =
  match t.status with
  | Running -> (
      if t.stats.cycles >= t.fuel then t.status <- Out_of_fuel
      else
        try
          if t.pc_short then exec_short t t.pc_addr else exec_long t t.pc_addr
        with Machine_trap msg -> t.status <- Trapped msg)
  | Halted | Trapped _ | Out_of_fuel -> ()

let run t =
  while t.status = Running do
    step t
  done;
  t.status

(* -- Resumable execution -----------------------------------------------------
   The multiprogramming scheduler runs each program in slices on its own
   machine.  Because both entry points below execute exactly the [step]s
   that [run] would and stop only between instructions, running a program
   in K slices (for any K and any slice boundaries) produces bit-identical
   final state, statistics and output to one [run] call. *)

type run_outcome =
  | Done of status
  | Yielded

let run_for t ~budget =
  if budget < 0 then invalid_arg "Machine.run_for: negative budget";
  (* saturate: a budget near max_int must mean "run to completion", not
     wrap t.stats.cycles + budget to a stop in the past *)
  let stop =
    if budget > max_int - t.stats.cycles then max_int
    else t.stats.cycles + budget
  in
  while t.status = Running && t.stats.cycles < stop do
    step t
  done;
  if t.status = Running then Yielded else Done t.status

let interp_imm_op = Short_format.op_to_int Short_format.Interp_imm
let interp_stk_op = Short_format.op_to_int Short_format.Interp_stk

(* True when the pc rests on an INTERP word (about to transfer to the next
   DIR instruction).  Only these points are safe preemption points for a
   shared DTB: mid-translation the pc sits inside a buffer unit that a
   context switch could flush or evict out from under it, whereas an
   INTERP word lives in the program's own memory and re-misses harmlessly
   after any amount of DTB churn. *)
let at_interp_boundary t =
  t.pc_short
  && t.pc_addr >= 0
  && t.pc_addr < t.mem_words
  &&
  let op = Short_format.unpack_op (mem_get t t.pc_addr) in
  op = interp_imm_op || op = interp_stk_op

let run_dir_quantum t ~quantum =
  if quantum < 1 then
    invalid_arg "Machine.run_dir_quantum: quantum must be >= 1";
  let start = t.stats.interp_count in
  while
    t.status = Running
    && not (t.stats.interp_count - start >= quantum && at_interp_boundary t)
  do
    step t
  done;
  if t.status = Running then Yielded else Done t.status

(* -- Snapshots --------------------------------------------------------------- *)

type snapshot = {
  snap_pc : pc;
  snap_status : status;
  snap_regs : int array;
  snap_cycles : int;
  snap_interp_count : int;
  snap_op_stack : int list;
  snap_ret_stack : int list;
}

(* The words below a stack pointer, top first, clipped to the region the
   stack lives in (each stack is its own region in every layout).  Read
   with [mem_get]: inspection charges no cycles. *)
let stack_contents t ptr =
  if ptr <= 0 || ptr > t.mem_words then []
  else
    match
      Array.find_opt
        (fun r -> ptr - 1 >= r.base && ptr - 1 < r.base + r.size)
        t.regions
    with
    | None -> []
    | Some r ->
        let rec go acc a =
          if a < r.base then List.rev acc else go (mem_get t a :: acc) (a - 1)
        in
        List.rev (go [] (ptr - 1))

let snapshot t =
  {
    snap_pc = pc t;
    snap_status = t.status;
    snap_regs = Array.copy t.regs;
    snap_cycles = t.stats.cycles;
    snap_interp_count = t.stats.interp_count;
    snap_op_stack = stack_contents t t.regs.(H.Regs.sp);
    snap_ret_stack = stack_contents t t.regs.(H.Regs.rsp);
  }

(* -- Checkpoints --------------------------------------------------------------
   Full-state capture for the resilience layer's rollback-and-replay: every
   non-zero memory page (deep copy), the register file, the pc, the status,
   the output length and the IFU's buffered unit.  Statistics are
   deliberately NOT captured or restored — replayed instructions are
   re-charged, so the cycle cost of a rollback stays visible in the
   accounts, exactly like the retranslation cost after an invalidate. *)

type checkpoint = {
  ck_pages : (int * int array) list;
  ck_regs : int array;
  ck_pc_short : bool;
  ck_pc_addr : int;
  ck_status : status;
  ck_out_len : int;
  ck_buffered : int;
}

let checkpoint t =
  let pages = ref [] in
  Array.iteri
    (fun i page ->
      if page != zero_page then pages := (i, Array.copy page) :: !pages)
    t.mem;
  {
    ck_pages = !pages;
    ck_regs = Array.copy t.regs;
    ck_pc_short = t.pc_short;
    ck_pc_addr = t.pc_addr;
    ck_status = t.status;
    ck_out_len = Buffer.length t.out;
    ck_buffered = t.dir_buffered_unit;
  }

let checkpoint_pages ck = List.length ck.ck_pages

let restore t ck =
  (* pages written since the checkpoint but absent from it go back to the
     shared zero page (pooled, as in [recycle]) *)
  let pool = Domain.DLS.get pool_key in
  Array.iteri
    (fun i page ->
      if page != zero_page && not (List.mem_assoc i ck.ck_pages) then begin
        if pool.free_page_count < max_pooled_pages then begin
          pool.free_pages <- page :: pool.free_pages;
          pool.free_page_count <- pool.free_page_count + 1
        end;
        Array.unsafe_set t.mem i zero_page
      end)
    t.mem;
  List.iter
    (fun (i, saved) ->
      let page =
        let cur = t.mem.(i) in
        if cur == zero_page then begin
          let fresh = alloc_page () in
          t.mem.(i) <- fresh;
          fresh
        end
        else cur
      in
      Array.blit saved 0 page 0 page_words)
    ck.ck_pages;
  Array.blit ck.ck_regs 0 t.regs 0 (Array.length t.regs);
  t.pc_short <- ck.ck_pc_short;
  t.pc_addr <- ck.ck_pc_addr;
  t.status <- ck.ck_status;
  if Buffer.length t.out > ck.ck_out_len then Buffer.truncate t.out ck.ck_out_len;
  t.dir_buffered_unit <- ck.ck_buffered
