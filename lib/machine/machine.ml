module H = Host_isa

type pc =
  | Long of int
  | Short of int

type status =
  | Running
  | Halted
  | Trapped of string
  | Out_of_fuel

type region = {
  rname : string;
  base : int;
  size : int;
  cost : int;
}

type dir_fetch_mode =
  | Dir_uncached
  | Dir_cached of Cache.t

(* The execution backend.  [`Decode] is the reference implementation:
   every instruction is re-decoded on every execution.  [`Threaded]
   compiles long-format code and installed short-format words into
   pre-bound OCaml closures (operands, categories, memory costs and cycle
   accounting resolved at compile time) and dispatches them directly —
   the paper's DIR->PSDER argument applied to the simulator's own host
   loop.  The two backends are observably identical: same cycle counts,
   same statistics, same traps, same final state, on every program. *)
type backend = [ `Decode | `Threaded ]

type stats = {
  mutable cycles : int;
  mutable host_instrs : int;
  mutable short_instrs : int;
  cat_cycles : int array;
  mutable dir_units_fetched : int;
  mutable dir_fetch_cycles : int;
  mutable short_fetch_cycles : int;
  mutable code_fetch_cycles : int;
  mutable stack_cycles : int;
  mutable interp_count : int;
}

let category_index = function
  | Asm.Startup -> 0
  | Asm.Decode -> 1
  | Asm.Semantic -> 2
  | Asm.Translate -> 3
  | Asm.Der -> 4

(* -- Paged memory ------------------------------------------------------------
   Simulated memory is sparse: the default layout spans ~1.6M words but a run
   touches only a few pages of it.  Pages start as a shared all-zero page and
   are copied on first write, so creating a machine costs a small page table
   instead of zeroing megabytes. *)

let page_bits = 12
let page_words = 1 lsl page_bits
let page_mask = page_words - 1

(* Shared by every machine; the copy-on-write check in [mem_set] keeps it
   all-zero forever. *)
let zero_page : int array = Array.make page_words 0

(* -- Per-domain memory pool ---------------------------------------------------
   Experiment grids create and drop thousands of machines; recycling the
   COW pages and the page tables keeps that churn out of the GC.  The pool
   is domain-local (no locks): a sweep worker only ever recycles machines
   it created.  Recycled pages are re-zeroed on reuse, so a pooled machine
   is indistinguishable from a freshly allocated one. *)

type page_pool = {
  mutable free_pages : int array list;
  mutable free_page_count : int;
  mutable free_tables : int array array list;
}

let max_pooled_pages = 1024
let max_pooled_tables = 8

let pool_key : page_pool Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { free_pages = []; free_page_count = 0; free_tables = [] })

let alloc_page () =
  let pool = Domain.DLS.get pool_key in
  match pool.free_pages with
  | page :: rest ->
      pool.free_pages <- rest;
      pool.free_page_count <- pool.free_page_count - 1;
      Array.fill page 0 page_words 0;
      page
  | [] -> Array.make page_words 0

let alloc_page_table pages =
  let pool = Domain.DLS.get pool_key in
  let rec take acc = function
    | [] -> None
    | t :: rest when Array.length t = pages ->
        pool.free_tables <- List.rev_append acc rest;
        Some t
    | t :: rest -> take (t :: acc) rest
  in
  match take [] pool.free_tables with
  | Some table ->
      Array.fill table 0 pages zero_page;
      table
  | None -> Array.make pages zero_page

(* -- Region cost table --------------------------------------------------------
   Memory access time by region, resolved in O(1): a table holds one cost per
   [cost_page_words]-word page when the page lies entirely inside one region,
   and [cost_mixed] when a region boundary splits the page (then the original
   first-match scan decides, preserving exact semantics for any layout). *)

let cost_page_bits = 8
let cost_page_words = 1 lsl cost_page_bits
let cost_mixed = -1

type t = {
  code : H.instr array;
  code_cat : int array;
  mem : int array array;
  mem_words : int;
  regions : region array;
  region_cost : int array;
  regs : int array;
  timing : Timing.t;
  fuel : int;
  out : Buffer.t;
  stats : stats;
  mutable pc_short : bool;
  mutable pc_addr : int;
  mutable status : status;
  mutable hooks : hooks option;
  mutable dir_bits : string;
  mutable dir_reader : Uhm_bitstream.Reader.t option;
  mutable dir_mode : dir_fetch_mode;
  mutable dir_buffered_unit : int;  (* IFU holds one 16-bit unit; -1 = empty *)
  mutable code_fetch_hook : (int -> int) option;
  (* threaded backend state (inert under [`Decode]) *)
  threaded : bool;
  mutable lc : (t -> unit) array;
      (* long-format code compiled to closures, one slot per code address,
         filled lazily as addresses get warm ([| |] until the first
         threaded span; dropped when the code-fetch hook changes).  A cold
         slot holds [cold_long]; a once-executed slot holds a per-address
         warm closure that compiles on its second execution, so run-once
         code (straight-line DER expansions, cold library routines) never
         pays the compiler. *)
  mutable span_lim : int;
      (* the cycle limit of the span currently executing; fused blocks
         consult it so they never run an instruction the decode loop's
         per-instruction [cycles < lim] check would have stopped before *)
  mutable sc_base : int;  (* short-compile window base; max_int = disabled *)
  mutable sc_size : int;
  mutable sc_table : (t -> unit) array array;
  (* bumped on every invalidation inside the window; a fused short block
     checks it between parts so an in-window store aborts the block's
     remaining (possibly stale) compiled parts *)
  mutable sc_gen : int;
      (* two-level, copy-on-write: one slot per word of the window, in
         chunks of [sc_chunk_words].  Untouched chunks all share the global
         [cold_chunk] (every slot = the self-compiling [cold_short]), so
         opening a 512K-word window costs a handful of chunk pointers, not
         a window-sized closure array per machine.  Every slot is always
         callable, so the span loop needs no per-iteration compiled-or-not
         test; invalidation writes [cold_short] back (or re-points a fully
         covered chunk at [cold_chunk]). *)
  mutable max_access_cost : int;
      (* max region cost: upper bound on what one memory access can charge *)
}

and hooks = {
  h_interp : t -> dir_addr:int -> dctx:int -> unit;
  h_emit_short : t -> int -> unit;
  h_end_trans : t -> unit;
  h_decode_assist : t -> unit;
}

exception Machine_trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Machine_trap s)) fmt

(* Short-compile chunking: 256-slot chunks keep fresh (copied-on-write)
   chunks small enough for the minor heap, so warming a window allocates
   proportionally to the words actually executed. *)
let sc_chunk_bits = 8
let sc_chunk_words = 1 lsl sc_chunk_bits
let sc_chunk_mask = sc_chunk_words - 1

(* Forward cells for the cold-path machinery: tables are created (and
   invalidated) by functions defined before the execution engine, but cold
   slots must hold the self-compiling closures defined after it.  All
   cells are installed exactly once, right after [exec_threaded_span]. *)
(* Longest run of short words one fused block may cover (head included);
   invalidating a word must also kill any block head within this reach. *)
let max_short_block_len = 8

let cold_short_cell : (t -> unit) ref = ref (fun _ -> ())
let cold_long_cell : (t -> unit) ref = ref (fun _ -> ())
let cold_chunk_cell : (t -> unit) array ref = ref [||]

(* The return stack distinguishes IU1 and IU2 resumption addresses with a
   high tag bit. *)
let short_tag = 1 lsl 40
let short_mask = short_tag - 1

(* First-match linear scan over the region list; the reference semantics the
   cost table must agree with. *)
let scan_cost regions addr =
  let rec go i =
    if i >= Array.length regions then raise Not_found
    else
      let r = Array.unsafe_get regions i in
      if addr >= r.base && addr < r.base + r.size then r.cost else go (i + 1)
  in
  go 0

let build_cost_table regions mem_words =
  let pages = (mem_words + cost_page_words - 1) lsr cost_page_bits in
  let tbl = Array.make pages cost_mixed in
  (* A page is uniform unless some region boundary falls strictly inside
     it; boundaries on page edges leave the covering-region set constant
     across the page. *)
  let mixed = Array.make pages false in
  Array.iter
    (fun r ->
      List.iter
        (fun b ->
          if b land (cost_page_words - 1) <> 0 then begin
            let pg = b lsr cost_page_bits in
            if pg < pages then mixed.(pg) <- true
          end)
        [ r.base; r.base + r.size ])
    regions;
  for pg = 0 to pages - 1 do
    if not mixed.(pg) then
      tbl.(pg) <-
        (match scan_cost regions (pg lsl cost_page_bits) with
        | cost -> cost
        | exception Not_found -> cost_mixed)
  done;
  tbl

(* Per-domain memos of the tables [create] derives from its inputs: the
   category indices are a pure function of the program, the region array,
   cost table and access-cost ceiling of the region list.  The layer
   above (Uhm's build memos) hands repeated runs the same program and
   region-list objects, so keying on physical identity turns a per-run
   recomputation — an [Array.map] over the whole host program and a
   region scan per cost page — into a list probe.  All shared tables are
   read-only for the machine's lifetime. *)
let derived_memo_max = 64

let code_cat_memo :
    (Asm.category array * int array) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let code_cat_for (program : Asm.program) =
  let cats = program.Asm.categories in
  let cache = Domain.DLS.get code_cat_memo in
  match List.find_opt (fun (c, _) -> c == cats) !cache with
  | Some (_, v) -> v
  | None ->
      let v = Array.map category_index cats in
      let entries = !cache in
      let entries =
        if List.length entries >= derived_memo_max then
          List.filteri (fun i _ -> i < derived_memo_max - 1) entries
        else entries
      in
      cache := (cats, v) :: entries;
      v

let region_tables_memo :
    ((region list * int) * (region array * int array * int)) list ref
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let region_tables_for regions_list mem_words =
  let cache = Domain.DLS.get region_tables_memo in
  match
    List.find_opt
      (fun ((rl, mw), _) -> rl == regions_list && mw = mem_words)
      !cache
  with
  | Some (_, v) -> v
  | None ->
      let regions = Array.of_list regions_list in
      Array.iter
        (fun r ->
          if r.base < 0 || r.size < 0 || r.base + r.size > mem_words then
            invalid_arg
              (Printf.sprintf "Machine.create: region %s out of range" r.rname))
        regions;
      let v =
        ( regions,
          build_cost_table regions mem_words,
          Array.fold_left (fun m r -> if r.cost > m then r.cost else m) 0
            regions )
      in
      let entries = !cache in
      let entries =
        if List.length entries >= derived_memo_max then
          List.filteri (fun i _ -> i < derived_memo_max - 1) entries
        else entries
      in
      cache := ((regions_list, mem_words), v) :: entries;
      v

let create ?(timing = Timing.paper) ?(fuel = 1_000_000_000)
    ?(backend = `Decode) ~program ~mem_words ~regions () =
  let regions, region_cost, max_access_cost =
    region_tables_for regions mem_words
  in
  let pages = (mem_words + page_words - 1) lsr page_bits in
  {
    code = program.Asm.code;
    code_cat = code_cat_for program;
    mem = alloc_page_table pages;
    mem_words;
    regions;
    region_cost;
    regs = Array.make H.Regs.n 0;
    timing;
    fuel;
    out = Buffer.create 256;
    stats =
      {
        cycles = 0;
        host_instrs = 0;
        short_instrs = 0;
        cat_cycles = Array.make 5 0;
        dir_units_fetched = 0;
        dir_fetch_cycles = 0;
        short_fetch_cycles = 0;
        code_fetch_cycles = 0;
        stack_cycles = 0;
        interp_count = 0;
      };
    pc_short = false;
    pc_addr = 0;
    status = Running;
    hooks = None;
    dir_bits = "";
    dir_reader = None;
    dir_mode = Dir_uncached;
    dir_buffered_unit = -1;
    code_fetch_hook = None;
    threaded = (backend = `Threaded);
    lc = [||];
    span_lim = 0;
    sc_base = max_int;
    sc_size = 0;
    sc_table = [||];
    sc_gen = 0;
    max_access_cost;
  }

let backend t : backend = if t.threaded then `Threaded else `Decode

let set_hooks t hooks = t.hooks <- Some hooks

let set_dir_stream t ~bits ~mode =
  t.dir_bits <- bits;
  t.dir_reader <- Some (Uhm_bitstream.Reader.of_string bits);
  t.dir_mode <- mode;
  t.dir_buffered_unit <- -1

let set_code_fetch_hook t f =
  t.code_fetch_hook <- Some f;
  (* long-code closures bake the hook in; force a recompile *)
  t.lc <- [||]

(* Open a short-compile window over [base, base+size): the threaded
   backend may cache closures for short words in this range (compiled on
   demand as the pc reaches them).  A no-op on decode machines.  The
   window must cover only addresses whose region assignment is fixed for
   the machine's lifetime — true of every region in this simulator. *)
let enable_short_compile t ~base ~size =
  if t.threaded && size > 0 then begin
    if base < 0 || base + size > t.mem_words then
      invalid_arg "Machine.enable_short_compile: window out of range";
    t.sc_base <- base;
    t.sc_size <- size;
    t.sc_table <-
      Array.make
        ((size + sc_chunk_words - 1) lsr sc_chunk_bits)
        !cold_chunk_cell
  end

(* Drop any compiled closures for words in [addr, addr+len) — the DTB
   lifecycle's invalidation tap (eviction, flush, ASID invalidation,
   aborted translation).  Clamped to the window; a no-op when no window is
   open. *)
let drop_short_range t ~addr ~len =
  if t.sc_size > 0 && len > 0 then begin
    (* extend down by the block reach: a fused head just below the range
       may cover dropped words *)
    let addr = addr - (max_short_block_len - 1) in
    let len = len + (max_short_block_len - 1) in
    let lo = if addr > t.sc_base then addr else t.sc_base in
    let hi = min (addr + len) (t.sc_base + t.sc_size) in
    if hi > lo then begin
      t.sc_gen <- t.sc_gen + 1;
      let cold_chunk = !cold_chunk_cell and cold = !cold_short_cell in
      let lo = lo - t.sc_base and hi = hi - t.sc_base in
      let ci = ref (lo lsr sc_chunk_bits) in
      let last = (hi - 1) lsr sc_chunk_bits in
      while !ci <= last do
        let cbase = !ci lsl sc_chunk_bits in
        let l = max lo cbase and h = min hi (cbase + sc_chunk_words) in
        let chunk = Array.unsafe_get t.sc_table !ci in
        if chunk != cold_chunk then
          (* keep the private chunk and fill it: re-pointing at the
             shared cold chunk would force a fresh 256-slot copy on the
             next install, and eviction-heavy programs drop ranges
             thousands of times per run *)
          Array.fill chunk (l - cbase) (h - l) cold;
        incr ci
      done
    end
  end
let timing t = t.timing
let reg t r = t.regs.(r)
let set_reg t r v = t.regs.(r) <- v

(* Bounds already checked by the caller. *)
let mem_get t addr =
  Array.unsafe_get
    (Array.unsafe_get t.mem (addr lsr page_bits))
    (addr land page_mask)

let mem_set t addr v =
  let pi = addr lsr page_bits in
  let page = Array.unsafe_get t.mem pi in
  let page =
    if page == zero_page then begin
      let fresh = alloc_page () in
      Array.unsafe_set t.mem pi fresh;
      fresh
    end
    else page
  in
  Array.unsafe_set page (addr land page_mask) v;
  (* every write to simulated memory funnels through here, so dropping the
     word's compiled closure at this single point keeps the threaded
     backend's invariant: a compiled slot always agrees with a fresh decode
     of the word now in memory *)
  if addr >= t.sc_base && addr - t.sc_base < t.sc_size then begin
    (* a fused block's closure covers up to [max_short_block_len] words
       starting at its head, so any head within that reach of the written
       word dies with it; the generation bump aborts a block that is
       mid-flight over this word *)
    t.sc_gen <- t.sc_gen + 1;
    let i = addr - t.sc_base in
    let lo =
      let l = i - (max_short_block_len - 1) in
      if l < 0 then 0 else l
    in
    let cold_chunk = !cold_chunk_cell and cold = !cold_short_cell in
    for j = lo to i do
      let chunk = Array.unsafe_get t.sc_table (j lsr sc_chunk_bits) in
      if chunk != cold_chunk then
        Array.unsafe_set chunk (j land sc_chunk_mask) cold
    done
  end

(* Return the machine's pages and page table to the domain-local pool.
   The machine must not be used afterwards: its memory now aliases pool
   storage that the next [create] on this domain will hand out again. *)
let recycle t =
  let pool = Domain.DLS.get pool_key in
  let mem = t.mem in
  for i = 0 to Array.length mem - 1 do
    let page = Array.unsafe_get mem i in
    if page != zero_page then begin
      if pool.free_page_count < max_pooled_pages then begin
        pool.free_pages <- page :: pool.free_pages;
        pool.free_page_count <- pool.free_page_count + 1
      end;
      Array.unsafe_set mem i zero_page
    end
  done;
  if List.length pool.free_tables < max_pooled_tables then
    pool.free_tables <- mem :: pool.free_tables

let peek t addr =
  if addr < 0 || addr >= t.mem_words then
    invalid_arg (Printf.sprintf "Machine.peek: address %d out of range" addr);
  mem_get t addr

let poke t addr v =
  if addr < 0 || addr >= t.mem_words then
    invalid_arg (Printf.sprintf "Machine.poke: address %d out of range" addr);
  mem_set t addr v

let set_pc t = function
  | Long a ->
      t.pc_short <- false;
      t.pc_addr <- a
  | Short a ->
      t.pc_short <- true;
      t.pc_addr <- a

let pc t = if t.pc_short then Short t.pc_addr else Long t.pc_addr
let status t = t.status
let stats t = t.stats
let output t = Buffer.contents t.out
let add_cycles t n = t.stats.cycles <- t.stats.cycles + n

let mem_cost t addr =
  if addr < 0 || addr >= t.mem_words then raise Not_found
  else
    let c = Array.unsafe_get t.region_cost (addr lsr cost_page_bits) in
    if c >= 0 then c else scan_cost t.regions addr

(* Hot path: bounds already checked, table hit avoids the scan. *)
let charge_mem_checked t addr =
  let c = Array.unsafe_get t.region_cost (addr lsr cost_page_bits) in
  if c >= 0 then t.stats.cycles <- t.stats.cycles + c
  else
    match scan_cost t.regions addr with
    | cost -> t.stats.cycles <- t.stats.cycles + cost
    | exception Not_found -> trap "unmapped memory address %d" addr

let charge_mem t addr =
  if addr < 0 || addr >= t.mem_words then
    trap "unmapped memory address %d" addr;
  charge_mem_checked t addr

(* A memory access from executing code: charge its region cost and return /
   store the value. *)
let mem_read t addr =
  if addr < 0 || addr >= t.mem_words then trap "memory read at %d" addr;
  charge_mem_checked t addr;
  mem_get t addr

let mem_write t addr v =
  if addr < 0 || addr >= t.mem_words then trap "memory write at %d" addr;
  charge_mem_checked t addr;
  mem_set t addr v

(* Operand/return stack accesses are counted separately so the short-format
   overhead is visible in reports. *)
let stack_read t addr =
  let v = mem_read t addr in
  t.stats.stack_cycles <- t.stats.stack_cycles + t.timing.Timing.t1;
  v

let stack_write t addr v =
  mem_write t addr v;
  t.stats.stack_cycles <- t.stats.stack_cycles + t.timing.Timing.t1

let push_op t v =
  let sp = t.regs.(H.Regs.sp) in
  stack_write t sp v;
  t.regs.(H.Regs.sp) <- sp + 1

let pop_op t =
  let sp = t.regs.(H.Regs.sp) - 1 in
  if sp < 0 then trap "operand stack underflow";
  t.regs.(H.Regs.sp) <- sp;
  stack_read t sp

let push_ret t v =
  let rsp = t.regs.(H.Regs.rsp) in
  stack_write t rsp v;
  t.regs.(H.Regs.rsp) <- rsp + 1

let pop_ret t =
  let rsp = t.regs.(H.Regs.rsp) - 1 in
  if rsp < 0 then trap "return stack underflow";
  t.regs.(H.Regs.rsp) <- rsp;
  stack_read t rsp

(* -- Flattened access paths for the threaded closures ------------------------
   Same checks, same charges, same traps, in the same order as the
   reference chains above ([push_op] -> [stack_write] -> [mem_write] ->
   [charge_mem_checked] -> [mem_set], etc.), but with the calls collapsed
   into one body: without flambda every hop in that chain is an out-of-line
   call, and the chain sits on the hottest path of the simulator.  The
   rare branches — mixed cost pages, unmapped pages, writes that land in
   the short-compile window — fall back to the reference helpers, so the
   semantics (including the window-invalidation funnel) stay in one
   place. *)

let charge_fast t addr =
  let c = Array.unsafe_get t.region_cost (addr lsr cost_page_bits) in
  if c >= 0 then t.stats.cycles <- t.stats.cycles + c
  else charge_mem_checked t addr

let load_fast t addr =
  if addr < 0 || addr >= t.mem_words then trap "memory read at %d" addr;
  charge_fast t addr;
  mem_get t addr

let store_fast t addr v =
  if addr < 0 || addr >= t.mem_words then trap "memory write at %d" addr;
  charge_fast t addr;
  let page = Array.unsafe_get t.mem (addr lsr page_bits) in
  if page != zero_page && (addr < t.sc_base || addr - t.sc_base >= t.sc_size)
  then Array.unsafe_set page (addr land page_mask) v
  else mem_set t addr v

let push_op_fast t v =
  let sp = Array.unsafe_get t.regs H.Regs.sp in
  if sp < 0 || sp >= t.mem_words then trap "memory write at %d" sp;
  charge_fast t sp;
  (let page = Array.unsafe_get t.mem (sp lsr page_bits) in
   if page != zero_page && (sp < t.sc_base || sp - t.sc_base >= t.sc_size)
   then Array.unsafe_set page (sp land page_mask) v
   else mem_set t sp v);
  t.stats.stack_cycles <- t.stats.stack_cycles + t.timing.Timing.t1;
  Array.unsafe_set t.regs H.Regs.sp (sp + 1)

let pop_op_fast t =
  let sp = Array.unsafe_get t.regs H.Regs.sp - 1 in
  if sp < 0 then trap "operand stack underflow";
  Array.unsafe_set t.regs H.Regs.sp sp;
  if sp >= t.mem_words then trap "memory read at %d" sp;
  charge_fast t sp;
  let v = mem_get t sp in
  t.stats.stack_cycles <- t.stats.stack_cycles + t.timing.Timing.t1;
  v

let push_ret_fast t v =
  let rsp = Array.unsafe_get t.regs H.Regs.rsp in
  if rsp < 0 || rsp >= t.mem_words then trap "memory write at %d" rsp;
  charge_fast t rsp;
  (let page = Array.unsafe_get t.mem (rsp lsr page_bits) in
   if page != zero_page && (rsp < t.sc_base || rsp - t.sc_base >= t.sc_size)
   then Array.unsafe_set page (rsp land page_mask) v
   else mem_set t rsp v);
  t.stats.stack_cycles <- t.stats.stack_cycles + t.timing.Timing.t1;
  Array.unsafe_set t.regs H.Regs.rsp (rsp + 1)

let pop_ret_fast t =
  let rsp = Array.unsafe_get t.regs H.Regs.rsp - 1 in
  if rsp < 0 then trap "return stack underflow";
  Array.unsafe_set t.regs H.Regs.rsp rsp;
  if rsp >= t.mem_words then trap "memory read at %d" rsp;
  charge_fast t rsp;
  let v = mem_get t rsp in
  t.stats.stack_cycles <- t.stats.stack_cycles + t.timing.Timing.t1;
  v

(* -- DIR stream fetch (the IFU) -------------------------------------------- *)

let charge_dir_unit t unit_index =
  if unit_index <> t.dir_buffered_unit then begin
    t.dir_buffered_unit <- unit_index;
    t.stats.dir_units_fetched <- t.stats.dir_units_fetched + 1;
    let cost =
      match t.dir_mode with
      | Dir_uncached -> t.timing.Timing.t2
      | Dir_cached cache -> (
          match Cache.access cache unit_index with
          | `Hit -> t.timing.Timing.t_dtb
          | `Miss -> t.timing.Timing.t2)
    in
    t.stats.dir_fetch_cycles <- t.stats.dir_fetch_cycles + cost;
    t.stats.cycles <- t.stats.cycles + cost
  end

(* Charge the IFU for every 16-bit unit in [first_bit, last_bit]; used by
   the decode-assist hook, which reads the stream outside GetBits. *)
let charge_dir_span t ~first_bit ~last_bit =
  for u = first_bit / 16 to last_bit / 16 do
    charge_dir_unit t u
  done

let get_bits t width =
  let reader =
    match t.dir_reader with
    | Some r -> r
    | None -> trap "GetBits with no DIR stream loaded"
  in
  let addr = t.regs.(H.Regs.dpc) in
  if width < 0 then trap "GetBits with negative width";
  let last = addr + width - 1 in
  if addr < 0 || last >= Uhm_bitstream.Reader.length_bits reader then
    trap "DIR fetch out of range at bit %d" addr;
  (* charge each 16-bit unit the field touches *)
  if width = 0 then 0
  else begin
    for u = addr / 16 to last / 16 do
      charge_dir_unit t u
    done;
    (* sequential fetches leave the cursor already at dpc *)
    if Uhm_bitstream.Reader.pos reader <> addr then
      Uhm_bitstream.Reader.seek reader addr;
    let v = Uhm_bitstream.Reader.get reader width in
    t.regs.(H.Regs.dpc) <- addr + width;
    v
  end

(* -- Execution -------------------------------------------------------------- *)

let hooks_exn t =
  match t.hooks with
  | Some h -> h
  | None -> trap "IU2 feature used with no hooks installed"

let exec_long t addr =
  if addr < 0 || addr >= Array.length t.code then trap "host pc out of range: %d" addr;
  let stats = t.stats in
  (match t.code_fetch_hook with
  | Some f ->
      let extra = f addr in
      stats.code_fetch_cycles <- stats.code_fetch_cycles + extra;
      stats.cycles <- stats.cycles + extra
  | None -> ());
  let cat = Array.unsafe_get t.code_cat addr in
  (* Stats are batched: the instruction's own cycle, the instruction
     count and the category attribution are flushed in one group of
     writes after the dispatch, instead of touching the record per field
     up front and re-reading it at the end.  Totals for any run that
     reaches the flush are identical to the unbatched accounting. *)
  let before = stats.cycles in
  let fetch_before = stats.dir_fetch_cycles in
  let regs = t.regs in
  (* fall-through default; taken branches, Ret and the hooks overwrite it
     ([pc_short] is false on entry: exec_long only runs from a Long pc) *)
  t.pc_addr <- addr + 1;
  (match Array.unsafe_get t.code addr with
  | H.Li (rd, v) -> regs.(rd) <- v
  | H.Mv (rd, rs) -> regs.(rd) <- regs.(rs)
  | H.Alu (op, rd, rs1, rs2) -> (
      try regs.(rd) <- H.eval_alu op regs.(rs1) regs.(rs2)
      with Division_by_zero -> trap "division by zero")
  | H.Alui (op, rd, rs, v) -> (
      try regs.(rd) <- H.eval_alu op regs.(rs) v
      with Division_by_zero -> trap "division by zero")
  | H.Alu2i (op1, op2, rd, rs1, rs2, v) -> (
      try regs.(rd) <- H.eval_alu op2 (H.eval_alu op1 regs.(rs1) regs.(rs2)) v
      with Division_by_zero -> trap "division by zero")
  | H.Load (rd, rs, off) -> regs.(rd) <- mem_read t (regs.(rs) + off)
  | H.Store (rs, rbase, off) -> mem_write t (regs.(rbase) + off) regs.(rs)
  | H.Jmp a -> t.pc_addr <- a
  | H.Jz (r, a) -> if regs.(r) = 0 then t.pc_addr <- a
  | H.Jnz (r, a) -> if regs.(r) <> 0 then t.pc_addr <- a
  | H.Jneg (r, a) -> if regs.(r) < 0 then t.pc_addr <- a
  | H.JmpR r -> t.pc_addr <- regs.(r)
  | H.CallL a ->
      push_ret t (addr + 1);
      t.pc_addr <- a
  | H.CallR r ->
      push_ret t (addr + 1);
      t.pc_addr <- regs.(r)
  | H.Ret ->
      let v = pop_ret t in
      if v land short_tag <> 0 then begin
        t.pc_short <- true;
        t.pc_addr <- v land short_mask
      end
      else t.pc_addr <- v
  | H.PushOp r -> push_op t regs.(r)
  | H.PopOp r -> regs.(r) <- pop_op t
  | H.GetBits (rd, width) -> regs.(rd) <- get_bits t width
  | H.GetBitsR (rd, rw) -> regs.(rd) <- get_bits t regs.(rw)
  | H.DecodeAssist -> (hooks_exn t).h_decode_assist t
  | H.EmitShort r -> (hooks_exn t).h_emit_short t regs.(r)
  | H.EndTrans -> (hooks_exn t).h_end_trans t (* pc set by the hook *)
  | H.Out r ->
      Buffer.add_string t.out (string_of_int regs.(r));
      Buffer.add_char t.out '\n'
  | H.OutC r ->
      let v = regs.(r) in
      if v < 0 || v > 255 then trap "OutC out of range: %d" v;
      Buffer.add_char t.out (Char.chr v)
  | H.Halt ->
      t.status <- Halted;
      t.pc_addr <- addr
  | H.Break msg -> trap "%s" msg);
  (* flush: +1 for the instruction itself, and its category gets every
     cycle charged during dispatch except DIR-stream fetch time, which is
     accounted separately (the paper's s2*tau2 term) *)
  let cycles = stats.cycles + 1 in
  stats.cycles <- cycles;
  stats.host_instrs <- stats.host_instrs + 1;
  let cats = stats.cat_cycles in
  Array.unsafe_set cats cat
    (Array.unsafe_get cats cat + (cycles - before)
    - (stats.dir_fetch_cycles - fetch_before))

let exec_short t addr =
  let stats = t.stats in
  let before = stats.cycles in
  let word = mem_read t addr in
  (* batched flush: fetch charge attribution, the instruction cycle and
     the count in one group of writes (totals identical to incrementing
     each field as it accrues) *)
  let fetch = stats.cycles - before in
  stats.cycles <- before + fetch + 1;
  stats.short_instrs <- stats.short_instrs + 1;
  stats.short_fetch_cycles <- stats.short_fetch_cycles + fetch;
  (* field accessors on the raw word: no per-word tuple allocation in the
     IU2 dispatch loop *)
  let operand = Short_format.unpack_operand word in
  t.pc_addr <- addr + 1;
  match Short_format.op_of_int (Short_format.unpack_op word) with
  | Short_format.Push_imm -> push_op t operand
  | Short_format.Push_dir -> push_op t (mem_read t operand)
  | Short_format.Push_ind -> push_op t (mem_read t (mem_read t operand))
  | Short_format.Pop_dir ->
      let v = pop_op t in
      mem_write t operand v
  | Short_format.Call_long ->
      push_ret t ((addr + 1) lor short_tag);
      t.pc_short <- false;
      t.pc_addr <- operand
  | Short_format.Interp_imm ->
      stats.interp_count <- stats.interp_count + 1;
      (hooks_exn t).h_interp t ~dir_addr:operand
        ~dctx:(Short_format.unpack_ctx word)
  | Short_format.Interp_stk ->
      stats.interp_count <- stats.interp_count + 1;
      let dir_addr = pop_op t in
      let dctx = pop_op t in
      (hooks_exn t).h_interp t ~dir_addr ~dctx
  | Short_format.Goto -> t.pc_addr <- operand
  | Short_format.Goto_stk ->
      let a = pop_op t in
      t.pc_addr <- a

let step t =
  match t.status with
  | Running -> (
      if t.stats.cycles >= t.fuel then t.status <- Out_of_fuel
      else
        try
          if t.pc_short then exec_short t t.pc_addr else exec_long t t.pc_addr
        with Machine_trap msg -> t.status <- Trapped msg)
  | Halted | Trapped _ | Out_of_fuel -> ()

(* -- The threaded backend ----------------------------------------------------
   Each closure below is the exact image of one [exec_long]/[exec_short]
   dispatch for one fixed address: operands, category index, fall-through
   pc and (for short words) the fetch cost are resolved at compile time,
   and the statistics flush is specialised to what the instruction can
   actually touch.  Because every closure is decode-equivalent for its
   word, the driver may fall back to the reference [step] anywhere — out
   of range pcs, words outside the compile window, opcodes that don't
   decode — without perturbing a single cycle. *)

(* Pre-specialised ALU operators; Div and Mod are handled separately
   because they can trap. *)
let alu_fn : H.alu_op -> int -> int -> int = function
  | H.Add -> ( + )
  | H.Sub -> ( - )
  | H.Mul -> ( * )
  | H.Div | H.Mod -> assert false
  | H.And -> ( land )
  | H.Or -> ( lor )
  | H.Xor -> ( lxor )
  | H.Shl -> ( lsl )
  | H.Shr -> ( asr )
  | H.Slt -> fun x y -> if x < y then 1 else 0
  | H.Sle -> fun x y -> if x <= y then 1 else 0
  | H.Seq -> fun x y -> if x = y then 1 else 0
  | H.Sne -> fun x y -> if x <> y then 1 else 0
  | H.Sgt -> fun x y -> if x > y then 1 else 0
  | H.Sge -> fun x y -> if x >= y then 1 else 0

(* [exec_long]'s flush, specialised, reading the counters through the
   machine argument so compiled closures capture no per-machine state.
   [bump1]: the dispatch charged nothing, so the category gets exactly
   the instruction cycle.  [bump_mem]: the dispatch may have charged
   memory cycles but cannot have touched the DIR stream.  [bump_full]:
   the general form. *)
let bump1 t cat =
  let stats = t.stats in
  stats.cycles <- stats.cycles + 1;
  stats.host_instrs <- stats.host_instrs + 1;
  let cats = stats.cat_cycles in
  Array.unsafe_set cats cat (Array.unsafe_get cats cat + 1)
  [@@inline]

let bump_mem t cat before =
  let stats = t.stats in
  let cycles = stats.cycles + 1 in
  stats.cycles <- cycles;
  stats.host_instrs <- stats.host_instrs + 1;
  let cats = stats.cat_cycles in
  Array.unsafe_set cats cat (Array.unsafe_get cats cat + (cycles - before))
  [@@inline]

let bump_full t cat before fetch_before =
  let stats = t.stats in
  let cycles = stats.cycles + 1 in
  stats.cycles <- cycles;
  stats.host_instrs <- stats.host_instrs + 1;
  let cats = stats.cat_cycles in
  Array.unsafe_set cats cat
    (Array.unsafe_get cats cat + (cycles - before)
    - (stats.dir_fetch_cycles - fetch_before))
  [@@inline]

(* Compile one long instruction into a closure.  Everything baked in at
   compile time is a function of the *code* alone — the decoded
   instruction, its cost category, the fall-through address; registers,
   counters, output, hooks and timing are all read through the machine
   argument.  A compiled closure is therefore valid for any machine
   executing the same program object, which is what lets [lc_for] share
   warmed closure arrays across runs.  The code-fetch-hook wrapper is
   the one exception: it bakes in the per-machine hook, and such
   machines keep a private array. *)
let compile_long_one t addr =
  let hook = t.code_fetch_hook in
  let cat = Array.unsafe_get t.code_cat addr in
  let next = addr + 1 in
  let body =
    match Array.unsafe_get t.code addr with
        | H.Li (rd, v) ->
            fun t ->
              t.pc_addr <- next;
              t.regs.(rd) <- v;
              bump1 t cat
        | H.Mv (rd, rs) ->
            fun t ->
              t.pc_addr <- next;
              let regs = t.regs in
              regs.(rd) <- regs.(rs);
              bump1 t cat
        | H.Alu (op, rd, rs1, rs2) -> (
            match op with
            | H.Div | H.Mod ->
                fun t ->
                  t.pc_addr <- next;
                  let regs = t.regs in
                  (try regs.(rd) <- H.eval_alu op regs.(rs1) regs.(rs2)
                   with Division_by_zero -> trap "division by zero");
                  bump1 t cat
            | op ->
                let f = alu_fn op in
                fun t ->
                  t.pc_addr <- next;
                  let regs = t.regs in
                  regs.(rd) <- f regs.(rs1) regs.(rs2);
                  bump1 t cat)
        | H.Alui (op, rd, rs, v) -> (
            match op with
            | H.Div | H.Mod ->
                fun t ->
                  t.pc_addr <- next;
                  let regs = t.regs in
                  (try regs.(rd) <- H.eval_alu op regs.(rs) v
                   with Division_by_zero -> trap "division by zero");
                  bump1 t cat
            | op ->
                let f = alu_fn op in
                fun t ->
                  t.pc_addr <- next;
                  let regs = t.regs in
                  regs.(rd) <- f regs.(rs) v;
                  bump1 t cat)
        | H.Alu2i (op1, op2, rd, rs1, rs2, v) -> (
            match (op1, op2) with
            | (H.Div | H.Mod), _ | _, (H.Div | H.Mod) ->
                fun t ->
                  t.pc_addr <- next;
                  let regs = t.regs in
                  (try
                     regs.(rd) <-
                       H.eval_alu op2 (H.eval_alu op1 regs.(rs1) regs.(rs2)) v
                   with Division_by_zero -> trap "division by zero");
                  bump1 t cat
            | _ ->
                let f1 = alu_fn op1 and f2 = alu_fn op2 in
                fun t ->
                  t.pc_addr <- next;
                  let regs = t.regs in
                  regs.(rd) <- f2 (f1 regs.(rs1) regs.(rs2)) v;
                  bump1 t cat)
        | H.Load (rd, rs, off) ->
            fun t ->
              let before = t.stats.cycles in
              t.pc_addr <- next;
              t.regs.(rd) <- load_fast t (t.regs.(rs) + off);
              bump_mem t cat before
        | H.Store (rs, rbase, off) ->
            fun t ->
              let before = t.stats.cycles in
              t.pc_addr <- next;
              let regs = t.regs in
              store_fast t (regs.(rbase) + off) regs.(rs);
              bump_mem t cat before
        | H.Jmp a ->
            fun t ->
              t.pc_addr <- a;
              bump1 t cat
        | H.Jz (r, a) ->
            fun t ->
              t.pc_addr <- (if t.regs.(r) = 0 then a else next);
              bump1 t cat
        | H.Jnz (r, a) ->
            fun t ->
              t.pc_addr <- (if t.regs.(r) <> 0 then a else next);
              bump1 t cat
        | H.Jneg (r, a) ->
            fun t ->
              t.pc_addr <- (if t.regs.(r) < 0 then a else next);
              bump1 t cat
        | H.JmpR r ->
            fun t ->
              t.pc_addr <- t.regs.(r);
              bump1 t cat
        | H.CallL a ->
            fun t ->
              let before = t.stats.cycles in
              t.pc_addr <- next;
              push_ret_fast t next;
              t.pc_addr <- a;
              bump_mem t cat before
        | H.CallR r ->
            fun t ->
              let before = t.stats.cycles in
              t.pc_addr <- next;
              push_ret_fast t next;
              (* read after the push, as decode does: CallR rsp is legal *)
              t.pc_addr <- t.regs.(r);
              bump_mem t cat before
        | H.Ret ->
            fun t ->
              let before = t.stats.cycles in
              t.pc_addr <- next;
              let v = pop_ret_fast t in
              if v land short_tag <> 0 then begin
                t.pc_short <- true;
                t.pc_addr <- v land short_mask
              end
              else t.pc_addr <- v;
              bump_mem t cat before
        | H.PushOp r ->
            fun t ->
              let before = t.stats.cycles in
              t.pc_addr <- next;
              push_op_fast t t.regs.(r);
              bump_mem t cat before
        | H.PopOp r ->
            fun t ->
              let before = t.stats.cycles in
              t.pc_addr <- next;
              t.regs.(r) <- pop_op_fast t;
              bump_mem t cat before
        | H.GetBits (rd, width) ->
            fun t ->
              let before = t.stats.cycles in
              let fetch_before = t.stats.dir_fetch_cycles in
              t.pc_addr <- next;
              t.regs.(rd) <- get_bits t width;
              bump_full t cat before fetch_before
        | H.GetBitsR (rd, rw) ->
            fun t ->
              let before = t.stats.cycles in
              let fetch_before = t.stats.dir_fetch_cycles in
              t.pc_addr <- next;
              t.regs.(rd) <- get_bits t t.regs.(rw);
              bump_full t cat before fetch_before
        | H.DecodeAssist ->
            fun t ->
              let before = t.stats.cycles in
              let fetch_before = t.stats.dir_fetch_cycles in
              t.pc_addr <- next;
              (hooks_exn t).h_decode_assist t;
              bump_full t cat before fetch_before
        | H.EmitShort r ->
            fun t ->
              let before = t.stats.cycles in
              let fetch_before = t.stats.dir_fetch_cycles in
              t.pc_addr <- next;
              (hooks_exn t).h_emit_short t t.regs.(r);
              bump_full t cat before fetch_before
        | H.EndTrans ->
            fun t ->
              let before = t.stats.cycles in
              let fetch_before = t.stats.dir_fetch_cycles in
              t.pc_addr <- next;
              (hooks_exn t).h_end_trans t;
              bump_full t cat before fetch_before
        | H.Out r ->
            fun t ->
              t.pc_addr <- next;
              Buffer.add_string t.out (string_of_int t.regs.(r));
              Buffer.add_char t.out '\n';
              bump1 t cat
        | H.OutC r ->
            fun t ->
              t.pc_addr <- next;
              let v = t.regs.(r) in
              if v < 0 || v > 255 then trap "OutC out of range: %d" v;
              Buffer.add_char t.out (Char.chr v);
              bump1 t cat
        | H.Halt ->
            fun t ->
              t.status <- Halted;
              t.pc_addr <- addr;
              bump1 t cat
        | H.Break msg -> fun t ->
            t.pc_addr <- next;
            trap "%s" msg
      in
  match hook with
  | None -> body
  | Some f ->
      (* the hook charge precedes the flush baseline, exactly as in
         [exec_long]: hook cycles are never category-attributed *)
      fun t ->
        let extra = f addr in
        let stats = t.stats in
        stats.code_fetch_cycles <- stats.code_fetch_cycles + extra;
        stats.cycles <- stats.cycles + extra;
        body t

(* -- Block fusion -------------------------------------------------------------
   One closure per *straight-line run* of long instructions: the span
   driver's per-instruction checks (status, mode, limit, bounds, slot) are
   paid once per block instead of once per instruction, and runs of pure
   register/ALU instructions flush their statistics in one batch.

   Exactness:
   - Only instructions that always fall through are fused as block bodies;
     the first control transfer (or hook-calling, or DIR-fetching)
     instruction terminates the block and keeps its ordinary one-address
     closure as the block's last part.
   - A *pure* body instruction (register/ALU/Out) charges exactly one
     cycle, cannot trap and cannot observe the pc, so a run of them may
     execute without intermediate pc stores and flush cycles,
     instruction count and category attribution in one batch at the end
     of the run — totals after the batch are identical to the
     per-instruction flushes, and no observation point exists inside.
   - Memory and possibly-trapping bodies (Load/Store/PushOp/PopOp, OutC,
     Div/Mod forms) keep their own closures: they set their own pc and
     flush per instruction, so a mid-block trap leaves exactly the state
     the decode loop would.
   - The decode loop checks [cycles < lim] before *every* instruction; a
     fused block checks once, against a precomputed worst-case bound on
     what every instruction but the last can charge.  If the bound does
     not fit, the block falls back to its first instruction's ordinary
     closure — one instruction at a time, exactly the per-instruction
     checks, until the limit interval is left.
   - Code with a fetch hook (host-code icache) charges dynamic per-
     instruction costs, so fusion is disabled there entirely. *)

let max_block_len = 64

(* Body instructions that always fall through; everything else terminates
   a block. *)
let block_body_kind (i : H.instr) =
  match i with
  | H.Li _ | H.Mv _ | H.Out _ -> `Pure
  | H.Alu (op, _, _, _) | H.Alui (op, _, _, _) -> (
      match op with H.Div | H.Mod -> `Trappy | _ -> `Pure)
  | H.Alu2i (op1, op2, _, _, _, _) -> (
      match (op1, op2) with
      | (H.Div | H.Mod), _ | _, (H.Div | H.Mod) -> `Trappy
      | _ -> `Pure)
  | H.OutC _ -> `Trappy
  | H.Load _ | H.Store _ | H.PushOp _ | H.PopOp _ -> `Mem
  (* DIR fetches fall through and their worst-case charge is bounded by
     the units the field can touch, so they may ride inside a block with
     their own per-instruction closure (the Huffman translators are
     dominated by GetBits runs) *)
  | H.GetBits _ | H.GetBitsR _ -> `Dir
  | _ -> `Term

(* The flush-free work of one pure instruction; like [compile_long_one],
   the closure reads registers and output through its argument. *)
let pure_body t a : t -> unit =
  match Array.unsafe_get t.code a with
  | H.Li (rd, v) -> fun t -> t.regs.(rd) <- v
  | H.Mv (rd, rs) ->
      fun t ->
        let regs = t.regs in
        regs.(rd) <- regs.(rs)
  | H.Alu (op, rd, rs1, rs2) ->
      let f = alu_fn op in
      fun t ->
        let regs = t.regs in
        regs.(rd) <- f regs.(rs1) regs.(rs2)
  | H.Alui (op, rd, rs, v) ->
      let f = alu_fn op in
      fun t ->
        let regs = t.regs in
        regs.(rd) <- f regs.(rs) v
  | H.Alu2i (op1, op2, rd, rs1, rs2, v) ->
      let f1 = alu_fn op1 and f2 = alu_fn op2 in
      fun t ->
        let regs = t.regs in
        regs.(rd) <- f2 (f1 regs.(rs1) regs.(rs2)) v
  | H.Out r ->
      fun t ->
        Buffer.add_string t.out (string_of_int t.regs.(r));
        Buffer.add_char t.out '\n'
  | _ -> assert false

let seq_parts = function
  | [] -> assert false
  | [ f ] -> f
  | [ f; g ] -> fun t -> f t; g t
  | [ f; g; h ] -> fun t -> f t; g t; h t
  | [ f; g; h; i ] -> fun t -> f t; g t; h t; i t
  | parts ->
      let a = Array.of_list parts in
      let n = Array.length a in
      fun t ->
        for i = 0 to n - 1 do
          (Array.unsafe_get a i) t
        done

let compile_long_block t addr =
  if t.code_fetch_hook <> None then compile_long_one t addr
  else begin
    let code = t.code in
    let len = Array.length code in
    let stop = min len (addr + max_block_len) in
    (* bodies cover [addr, body_end); a terminator at [body_end] (when in
       range) joins the block as its last instruction *)
    let body_end = ref addr in
    while
      !body_end < stop
      && block_body_kind (Array.unsafe_get code !body_end) <> `Term
    do
      incr body_end
    done;
    let term = if !body_end < stop then Some !body_end else None in
    let count = !body_end - addr + (match term with Some _ -> 1 | None -> 0) in
    let first = compile_long_one t addr in
    if count < 2 then first
    else begin
      let last = match term with Some a -> a | None -> !body_end - 1 in
      (* worst-case cycles every instruction but the last can charge: one
         instruction cycle, plus at most the costliest region access for
         the memory forms.  (Stack-cycle counters are not machine cycles
         and do not enter the bound.) *)
      let dir_unit_cost =
        let tm = t.timing in
        max tm.Timing.t2 tm.Timing.t_dtb
      in
      let bound = ref 0 in
      for a = addr to last - 1 do
        bound :=
          !bound
          + 1
          + (match block_body_kind (Array.unsafe_get code a) with
            | `Mem -> t.max_access_cost
            | `Dir ->
                (* a width-w field starting anywhere touches at most
                   w/16 + 1 units; register widths are capped by the
                   bitstream's maximum *)
                let w =
                  match Array.unsafe_get code a with
                  | H.GetBits (_, w) -> w
                  | _ -> Uhm_bitstream.Bits.max_width
                in
                ((max w 0 / 16) + 1) * dir_unit_cost
            | _ -> 0)
      done;
      let bound = !bound in
      (* assemble the parts: pure runs batch their flush, everything else
         keeps its one-address closure *)
      let parts = ref [] in
      let a = ref addr in
      while !a < !body_end do
        match block_body_kind (Array.unsafe_get code !a) with
        | `Pure ->
            let s = !a in
            while
              !a < !body_end
              && block_body_kind (Array.unsafe_get code !a) = `Pure
            do
              incr a
            done;
            let e = !a in
            let n = e - s in
            for i = s to e - 1 do
              parts := pure_body t i :: !parts
            done;
            (* batched flush: per-category counts of the run *)
            let counts = Array.make 5 0 in
            for i = s to e - 1 do
              let c = Array.unsafe_get t.code_cat i in
              counts.(c) <- counts.(c) + 1
            done;
            let pairs = ref [] in
            Array.iteri
              (fun c n -> if n > 0 then pairs := (c, n) :: !pairs)
              counts;
            let flush =
              match !pairs with
              | [ (c1, n1) ] ->
                  fun t ->
                    let stats = t.stats in
                    stats.cycles <- stats.cycles + n;
                    stats.host_instrs <- stats.host_instrs + n;
                    let cats = stats.cat_cycles in
                    Array.unsafe_set cats c1 (Array.unsafe_get cats c1 + n1);
                    t.pc_addr <- e
              | [ (c1, n1); (c2, n2) ] ->
                  fun t ->
                    let stats = t.stats in
                    stats.cycles <- stats.cycles + n;
                    stats.host_instrs <- stats.host_instrs + n;
                    let cats = stats.cat_cycles in
                    Array.unsafe_set cats c1 (Array.unsafe_get cats c1 + n1);
                    Array.unsafe_set cats c2 (Array.unsafe_get cats c2 + n2);
                    t.pc_addr <- e
              | pairs ->
                  fun t ->
                    let stats = t.stats in
                    stats.cycles <- stats.cycles + n;
                    stats.host_instrs <- stats.host_instrs + n;
                    let cats = stats.cat_cycles in
                    List.iter
                      (fun (c, k) ->
                        Array.unsafe_set cats c (Array.unsafe_get cats c + k))
                      pairs;
                    t.pc_addr <- e
            in
            parts := flush :: !parts
        | _ ->
            parts := compile_long_one t !a :: !parts;
            incr a
      done;
      (match term with
      | Some a -> parts := compile_long_one t a :: !parts
      | None -> ());
      let blockf = seq_parts (List.rev !parts) in
      fun t ->
        if t.stats.cycles + bound < t.span_lim then blockf t else first t
    end
  end

(* Compile the short word currently at [addr], or [None] when its opcode
   doesn't decode (the fallback [step] then reproduces the decode path's
   exception exactly).  The caller guarantees [addr] lies in the compile
   window, hence in a region, so the fetch cost is fixed and pre-bindable. *)
let compile_short t addr =
  let stats = t.stats in
  let word = mem_get t addr in
  let opn = Short_format.unpack_op word in
  match mem_cost t addr with
  | exception Not_found -> None  (* unmapped: let decode raise its trap *)
  | _ when opn > Short_format.op_to_int Short_format.Goto_stk -> None
  | fetch ->
    let next = addr + 1 in
    let operand = Short_format.unpack_operand word in
    (* [exec_short]'s prologue: fetch charge, instruction cycle, counts,
       fall-through pc *)
    let pre t =
      stats.cycles <- stats.cycles + fetch + 1;
      stats.short_instrs <- stats.short_instrs + 1;
      stats.short_fetch_cycles <- stats.short_fetch_cycles + fetch;
      t.pc_addr <- next
    in
    Some
      (match Short_format.op_of_int opn with
      | Short_format.Push_imm -> fun t -> pre t; push_op_fast t operand
      | Short_format.Push_dir ->
          fun t -> pre t; push_op_fast t (load_fast t operand)
      | Short_format.Push_ind ->
          fun t ->
            pre t;
            push_op_fast t (load_fast t (load_fast t operand))
      | Short_format.Pop_dir ->
          fun t ->
            pre t;
            let v = pop_op_fast t in
            store_fast t operand v
      | Short_format.Call_long ->
          let ret = next lor short_tag in
          fun t ->
            pre t;
            push_ret_fast t ret;
            t.pc_short <- false;
            t.pc_addr <- operand
      | Short_format.Interp_imm ->
          let dctx = Short_format.unpack_ctx word in
          fun t ->
            pre t;
            stats.interp_count <- stats.interp_count + 1;
            (hooks_exn t).h_interp t ~dir_addr:operand ~dctx
      | Short_format.Interp_stk ->
          fun t ->
            pre t;
            stats.interp_count <- stats.interp_count + 1;
            let dir_addr = pop_op_fast t in
            let dctx = pop_op_fast t in
            (hooks_exn t).h_interp t ~dir_addr ~dctx
      | Short_format.Goto -> fun t -> pre t; t.pc_addr <- operand
      | Short_format.Goto_stk ->
          fun t ->
            pre t;
            let a = pop_op_fast t in
            t.pc_addr <- a)

(* Run compiled closures until the machine leaves [Running], [lim] cycles
   have been charged, or [quantum] INTERP transfers have completed since
   [qstart] — always stopping on an instruction boundary.  Anything the
   fast path can't serve (pc out of range, short word outside the window,
   undecodable opcode) takes one reference [step].  Callers must ensure
   [lim <= fuel] so the fallback [step] cannot spuriously run out of
   fuel mid-span. *)
(* The cold/warm closure pair: every table slot is always callable.  A
   cold slot interprets its word in place — exactly the decode path — on
   its first execution since (re)install and leaves behind a per-address
   warm closure; the warm closure compiles on the second execution.
   Run-once code (straight-line DER expansions, single-shot translations,
   cold library routines) therefore executes at decode speed and never
   pays the compiler, with no hotness side table: the warmth is the slot
   content itself, and invalidation (which writes [cold_short] back)
   resets it for free.  Everything runs inside the span loop's dispatch,
   so cold code pays no per-instruction loop-exit round trip either.  The
   loop conditions ([Running], [cycles < lim <= fuel], pc in range)
   establish everything [step] would check, so calling
   [exec_short]/[exec_long] directly is exact; traps unwind to the span
   loop's handler just as compiled closures' do. *)

(* -- Short-block fusion -------------------------------------------------------
   One closure per straight-line run of short words, mirroring the long
   side: the span loop's per-instruction conditions (status, mode,
   limit, quantum, window bounds) and two-level table dispatch are paid
   once per block.  Each part keeps its own per-instruction flush, so
   partial state at any point — including at a trap — is exactly the
   decode path's.

   Exactness:
   - Only fall-through words (the stack push/pop forms) are bodies; the
     first control transfer (Goto, Call_long, Goto_stk, INTERP) joins as
     the block's final part.  INTERP can only be the last part, so the
     loop's quantum check before the block equals decode's check before
     each part.
   - The cycle limit is checked once against a worst-case bound on what
     every part but the last can charge (fetch + instruction cycle +
     accesses times the dearest region), falling back to the head's
     single closure near the limit — per-instruction checks exactly as
     decode.
   - A store into the window (self-modifying code, a faulted stack
     pointer) invalidates compiled slots mid-block.  Every such store
     funnels through [mem_set], which bumps [sc_gen]; the block re-checks
     the generation between parts and simply stops — state is exact
     after every part, and the span loop re-dispatches at the current pc
     through freshly-cold slots. *)

let compile_short_block t a =
  match compile_short t a with
  | None -> None
  | Some first ->
      let window_end = t.sc_base + t.sc_size in
      let stop = min (a + max_short_block_len) window_end in
      let is_term word =
        match Short_format.op_of_int (Short_format.unpack_op word) with
        | Short_format.Push_imm | Short_format.Push_dir
        | Short_format.Push_ind | Short_format.Pop_dir ->
            false
        | _ -> true
      in
      let accesses word =
        match Short_format.op_of_int (Short_format.unpack_op word) with
        | Short_format.Push_imm -> 1 (* stack write *)
        | Short_format.Push_dir -> 2 (* load + stack write *)
        | Short_format.Push_ind -> 3 (* two loads + stack write *)
        | Short_format.Pop_dir -> 2 (* stack read + store *)
        | _ -> 0
      in
      let parts = ref [ first ] in
      (* worst-case charge of every part but the last *)
      let bound = ref 0 in
      let prev_worst = ref 0 in
      (match mem_cost t a with
      | fetch -> prev_worst := fetch + 1 + (accesses (mem_get t a) * t.max_access_cost)
      | exception Not_found -> ());
      let addr = ref (a + 1) in
      let ended = ref (is_term (mem_get t a)) in
      while (not !ended) && !addr < stop do
        let word = mem_get t !addr in
        match compile_short t !addr with
        | None -> ended := true
        | Some f ->
            parts := f :: !parts;
            bound := !bound + !prev_worst;
            (match mem_cost t !addr with
            | fetch ->
                prev_worst :=
                  fetch + 1 + (accesses word * t.max_access_cost)
            | exception Not_found -> assert false);
            if is_term word then ended := true else incr addr
      done;
      (match !parts with
      | [ _ ] -> Some first
      | parts ->
          let arr = Array.of_list (List.rev parts) in
          let n = Array.length arr in
          let bound = !bound in
          Some
            (fun t ->
              if t.stats.cycles + bound < t.span_lim then begin
                let g = t.sc_gen in
                let i = ref 0 in
                while !i < n && t.sc_gen = g do
                  (Array.unsafe_get arr !i) t;
                  incr i
                done
                (* a generation bump means an in-window store: the rest of
                   the block may be stale — state is exact, so return to
                   the dispatch loop *)
              end
              else first t))

(* Install [f] at window offset [i], copying the shared cold chunk first
   if this is the chunk's first warm slot. *)
let sc_install t i f =
  let ci = i lsr sc_chunk_bits in
  let chunk = Array.unsafe_get t.sc_table ci in
  let chunk =
    if chunk == !cold_chunk_cell then begin
      let fresh = Array.copy chunk in
      Array.unsafe_set t.sc_table ci fresh;
      fresh
    end
    else chunk
  in
  Array.unsafe_set chunk (i land sc_chunk_mask) f

let warm_short a t =
  match compile_short_block t a with
  | Some f ->
      sc_install t (a - t.sc_base) f;
      f t
  | None -> exec_short t a

let cold_short t =
  let a = t.pc_addr in
  sc_install t (a - t.sc_base) (warm_short a);
  exec_short t a

let warm_long a t =
  let f = compile_long_block t a in
  Array.unsafe_set t.lc a f;
  f t

let cold_long t =
  let a = t.pc_addr in
  Array.unsafe_set t.lc a (warm_long a);
  exec_long t a

let () =
  cold_short_cell := cold_short;
  cold_long_cell := cold_long;
  cold_chunk_cell := Array.make sc_chunk_words cold_short

(* -- The compiled-long-code cache ---------------------------------------------
   Long-closure compilation bakes in only functions of the host code
   itself — the decoded instruction, its cost category, block cycle
   bounds computed from [max_access_cost] — and every closure reads its
   run state through the machine argument.  A warmed closure array is
   therefore valid for any machine executing the same program object
   under the same worst-case region cost, so arrays are cached per
   domain, keyed on the code array's physical identity (host programs
   are immutable once assembled, and the generator layer above hands
   repeated runs the same object).  Repeat runs start fully warm and
   never touch the compiler.  Machines with a code-fetch hook bake the
   per-machine hook into each closure and keep a private array instead.
   Bounded: a full cache drops its oldest entry. *)
let lc_cache_max = 64

let lc_cache_key :
    (H.instr array * int * int * (t -> unit) array) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let lc_for t =
  if t.code_fetch_hook <> None then
    Array.make (Array.length t.code) cold_long
  else begin
    let cache = Domain.DLS.get lc_cache_key in
    let mac = t.max_access_cost in
    let dc = max t.timing.Timing.t2 t.timing.Timing.t_dtb in
    match
      List.find_opt
        (fun (c, m, d, _) -> c == t.code && m = mac && d = dc)
        !cache
    with
    | Some (_, _, _, lc) -> lc
    | None ->
        let lc = Array.make (Array.length t.code) cold_long in
        let entries = !cache in
        let entries =
          if List.length entries >= lc_cache_max then
            List.filteri (fun i _ -> i < lc_cache_max - 1) entries
          else entries
        in
        cache := (t.code, mac, dc, lc) :: entries;
        lc
  end

let exec_threaded_span t ~lim ~qstart ~quantum =
  t.span_lim <- lim;
  let stats = t.stats in
  while
    t.status == Running && stats.cycles < lim
    && stats.interp_count - qstart < quantum
  do
    if t.pc_short then begin
      let base = t.sc_base and size = t.sc_size in
      if t.pc_addr - base >= 0 && t.pc_addr - base < size then (
        let sc = t.sc_table in
        try
          while
            t.status == Running && t.pc_short && stats.cycles < lim
            && stats.interp_count - qstart < quantum
            &&
            let j = t.pc_addr - base in
            j >= 0 && j < size
          do
            let j = t.pc_addr - base in
            (Array.unsafe_get
               (Array.unsafe_get sc (j lsr sc_chunk_bits))
               (j land sc_chunk_mask))
              t
          done
        with Machine_trap msg -> t.status <- Trapped msg)
      else step t
    end
    else begin
      if Array.length t.lc = 0 && Array.length t.code > 0 then
        t.lc <- lc_for t;
      let lc = t.lc in
      let n = Array.length lc in
      if t.pc_addr >= 0 && t.pc_addr < n then (
        (* no quantum check: long instructions never complete an INTERP *)
        try
          while
            t.status == Running && (not t.pc_short) && stats.cycles < lim
            && t.pc_addr >= 0 && t.pc_addr < n
          do
            (Array.unsafe_get lc t.pc_addr) t
          done
        with Machine_trap msg -> t.status <- Trapped msg)
      else step t
    end
  done

let run t =
  if t.threaded then begin
    while t.status = Running do
      exec_threaded_span t ~lim:t.fuel ~qstart:0 ~quantum:max_int;
      (* still running => cycles >= fuel; one [step] marks Out_of_fuel *)
      if t.status = Running then step t
    done;
    t.status
  end
  else begin
    while t.status = Running do
      step t
    done;
    t.status
  end

(* -- Resumable execution -----------------------------------------------------
   The multiprogramming scheduler runs each program in slices on its own
   machine.  Because both entry points below execute exactly the [step]s
   that [run] would and stop only between instructions, running a program
   in K slices (for any K and any slice boundaries) produces bit-identical
   final state, statistics and output to one [run] call. *)

type run_outcome =
  | Done of status
  | Yielded

let run_for t ~budget =
  if budget < 0 then invalid_arg "Machine.run_for: negative budget";
  (* saturate: a budget near max_int must mean "run to completion", not
     wrap t.stats.cycles + budget to a stop in the past *)
  let stop =
    if budget > max_int - t.stats.cycles then max_int
    else t.stats.cycles + budget
  in
  if t.threaded then begin
    let lim = if stop < t.fuel then stop else t.fuel in
    exec_threaded_span t ~lim ~qstart:0 ~quantum:max_int;
    (* still running with budget left => the span stopped at the fuel
       limit; one [step] marks Out_of_fuel, exactly as the decode loop
       would on its next iteration *)
    if t.status = Running && t.stats.cycles < stop then step t
  end
  else
    while t.status = Running && t.stats.cycles < stop do
      step t
    done;
  if t.status = Running then Yielded else Done t.status

let interp_imm_op = Short_format.op_to_int Short_format.Interp_imm
let interp_stk_op = Short_format.op_to_int Short_format.Interp_stk

(* True when the pc rests on an INTERP word (about to transfer to the next
   DIR instruction).  Only these points are safe preemption points for a
   shared DTB: mid-translation the pc sits inside a buffer unit that a
   context switch could flush or evict out from under it, whereas an
   INTERP word lives in the program's own memory and re-misses harmlessly
   after any amount of DTB churn. *)
let at_interp_boundary t =
  t.pc_short
  && t.pc_addr >= 0
  && t.pc_addr < t.mem_words
  &&
  let op = Short_format.unpack_op (mem_get t t.pc_addr) in
  op = interp_imm_op || op = interp_stk_op

let run_dir_quantum t ~quantum =
  if quantum < 1 then
    invalid_arg "Machine.run_dir_quantum: quantum must be >= 1";
  let start = t.stats.interp_count in
  if t.threaded then begin
    let stats = t.stats in
    while
      t.status = Running
      && not (stats.interp_count - start >= quantum && at_interp_boundary t)
    do
      (* past the quota but not yet at an INTERP boundary (or out of
         fuel): finish the translation unit one reference step at a
         time; otherwise burn a compiled span up to the quota *)
      if stats.cycles >= t.fuel || stats.interp_count - start >= quantum then
        step t
      else exec_threaded_span t ~lim:t.fuel ~qstart:start ~quantum
    done
  end
  else
    while
      t.status = Running
      && not (t.stats.interp_count - start >= quantum && at_interp_boundary t)
    do
      step t
    done;
  if t.status = Running then Yielded else Done t.status

(* -- Snapshots --------------------------------------------------------------- *)

type snapshot = {
  snap_pc : pc;
  snap_status : status;
  snap_regs : int array;
  snap_cycles : int;
  snap_interp_count : int;
  snap_op_stack : int list;
  snap_ret_stack : int list;
}

(* The words below a stack pointer, top first, clipped to the region the
   stack lives in (each stack is its own region in every layout).  Read
   with [mem_get]: inspection charges no cycles. *)
let stack_contents t ptr =
  if ptr <= 0 || ptr > t.mem_words then []
  else
    match
      Array.find_opt
        (fun r -> ptr - 1 >= r.base && ptr - 1 < r.base + r.size)
        t.regions
    with
    | None -> []
    | Some r ->
        let rec go acc a =
          if a < r.base then List.rev acc else go (mem_get t a :: acc) (a - 1)
        in
        List.rev (go [] (ptr - 1))

let snapshot t =
  {
    snap_pc = pc t;
    snap_status = t.status;
    snap_regs = Array.copy t.regs;
    snap_cycles = t.stats.cycles;
    snap_interp_count = t.stats.interp_count;
    snap_op_stack = stack_contents t t.regs.(H.Regs.sp);
    snap_ret_stack = stack_contents t t.regs.(H.Regs.rsp);
  }

(* -- Checkpoints --------------------------------------------------------------
   Full-state capture for the resilience layer's rollback-and-replay: every
   non-zero memory page (deep copy), the register file, the pc, the status,
   the output length and the IFU's buffered unit.  Statistics are
   deliberately NOT captured or restored — replayed instructions are
   re-charged, so the cycle cost of a rollback stays visible in the
   accounts, exactly like the retranslation cost after an invalidate. *)

type checkpoint = {
  ck_pages : (int * int array) list;
  ck_regs : int array;
  ck_pc_short : bool;
  ck_pc_addr : int;
  ck_status : status;
  ck_out_len : int;
  ck_buffered : int;
}

let checkpoint t =
  let pages = ref [] in
  Array.iteri
    (fun i page ->
      if page != zero_page then pages := (i, Array.copy page) :: !pages)
    t.mem;
  {
    ck_pages = !pages;
    ck_regs = Array.copy t.regs;
    ck_pc_short = t.pc_short;
    ck_pc_addr = t.pc_addr;
    ck_status = t.status;
    ck_out_len = Buffer.length t.out;
    ck_buffered = t.dir_buffered_unit;
  }

let checkpoint_pages ck = List.length ck.ck_pages

let restore t ck =
  (* pages written since the checkpoint but absent from it go back to the
     shared zero page (pooled, as in [recycle]) *)
  let pool = Domain.DLS.get pool_key in
  Array.iteri
    (fun i page ->
      if page != zero_page && not (List.mem_assoc i ck.ck_pages) then begin
        if pool.free_page_count < max_pooled_pages then begin
          pool.free_pages <- page :: pool.free_pages;
          pool.free_page_count <- pool.free_page_count + 1
        end;
        Array.unsafe_set t.mem i zero_page
      end)
    t.mem;
  List.iter
    (fun (i, saved) ->
      let page =
        let cur = t.mem.(i) in
        if cur == zero_page then begin
          let fresh = alloc_page () in
          t.mem.(i) <- fresh;
          fresh
        end
        else cur
      in
      Array.blit saved 0 page 0 page_words)
    ck.ck_pages;
  (* page blits above bypass [mem_set]: conservatively drop every compiled
     short closure so no slot can disagree with the restored memory *)
  if t.sc_size > 0 then
    Array.fill t.sc_table 0 (Array.length t.sc_table) !cold_chunk_cell;
  Array.blit ck.ck_regs 0 t.regs 0 (Array.length t.regs);
  t.pc_short <- ck.ck_pc_short;
  t.pc_addr <- ck.ck_pc_addr;
  t.status <- ck.ck_status;
  if Buffer.length t.out > ck.ck_out_len then Buffer.truncate t.out ck.ck_out_len;
  t.dir_buffered_unit <- ck.ck_buffered
