module Bits = Uhm_bitstream.Bits

let b1700_lengths = [ 2; 4; 6; 8; 10 ]

(* Kraft budgets are tracked as integers scaled by 2^max_allowed. *)
let lengths ~allowed counts =
  (match allowed with
  | [] -> invalid_arg "Restricted.lengths: no allowed lengths"
  | _ -> ());
  List.iter
    (fun l ->
      if l <= 0 || l > Bits.max_width then
        invalid_arg "Restricted.lengths: bad allowed length")
    allowed;
  let allowed = List.sort_uniq compare allowed in
  let max_allowed = List.fold_left max 0 allowed in
  let scale l = 1 lsl (max_allowed - l) in
  let budget = 1 lsl max_allowed in
  let symbols =
    Array.to_list (Array.mapi (fun sym c -> (sym, c)) counts)
    |> List.filter (fun (_, c) -> c > 0)
    |> List.sort (fun (s1, c1) (s2, c2) -> compare (c2, s1) (c1, s2))
  in
  let lengths = Array.make (Array.length counts) 0 in
  let used = ref 0 in
  let min_cost = scale max_allowed in
  List.iteri
    (fun i (sym, _) ->
      let still_to_place = List.length symbols - i - 1 in
      (* Shortest allowed length that leaves room for the remaining symbols
         even if they all take the longest allowed length. *)
      let rec pick = function
        | [] ->
            invalid_arg
              "Restricted.lengths: allowed lengths cannot accommodate the \
               alphabet"
        | l :: rest ->
            if !used + scale l + (still_to_place * min_cost) <= budget then l
            else pick rest
      in
      let l = pick allowed in
      used := !used + scale l;
      lengths.(sym) <- l)
    symbols;
  lengths

let of_frequencies ~allowed counts = Code.of_lengths (lengths ~allowed counts)
