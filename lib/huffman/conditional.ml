type t = {
  codes : Code.t array;
}

let of_counts ?(smooth = true) counts =
  if Array.length counts = 0 then
    invalid_arg "Conditional.of_counts: no contexts";
  let alphabet = Array.length counts.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> alphabet then
        invalid_arg "Conditional.of_counts: ragged count table")
    counts;
  let codes =
    Array.map
      (fun row ->
        let row = if smooth then Array.map (fun c -> c + 1) row else row in
        Code.of_frequencies row)
      counts
  in
  { codes }

let of_table ?smooth table =
  of_counts ?smooth (Freq.Conditioned.counts table)

let contexts t = Array.length t.codes
let alphabet_size t = Code.alphabet_size t.codes.(0)

let code t ctx =
  if ctx < 0 || ctx >= Array.length t.codes then
    invalid_arg "Conditional.code: context out of range";
  t.codes.(ctx)

let encode t w ~ctx sym = Code.encode (code t ctx) w sym
let decode t r ~ctx = Code.decode (code t ctx) r

let total_bits t counts =
  if Array.length counts <> contexts t then
    invalid_arg "Conditional.total_bits: context count mismatch";
  let sum = ref 0 in
  Array.iteri
    (fun ctx row ->
      Array.iteri
        (fun sym c ->
          if c > 0 then
            let len, _ = Code.codeword t.codes.(ctx) sym in
            sum := !sum + (c * len))
        row)
    counts;
  !sum

let average_length t counts =
  let total =
    Array.fold_left (fun acc row -> acc + Array.fold_left ( + ) 0 row) 0 counts
  in
  if total = 0 then 0.
  else float_of_int (total_bits t counts) /. float_of_int total
