(** Predecessor-conditioned ("digram") prefix coding.

    The paper generalises frequency-based encoding to "the frequency of
    occurrence of pairs, triples, etc." (§3.2, citing Foster & Gonter and
    Hehner): a separate decode tree is kept for each possible predecessor
    context, and the decoder selects the tree using the previously decoded
    symbol.  Laplace smoothing keeps every symbol encodable in every
    context. *)

type t

val of_counts : ?smooth:bool -> int array array -> t
(** [of_counts counts] builds one canonical Huffman code per context from
    [counts.(ctx).(sym)].  With [smooth] (default [true]) every count is
    incremented by one first.  Raises [Invalid_argument] on an empty or
    ragged table, or if smoothing is disabled and some context has no
    occurrences at all. *)

val of_table : ?smooth:bool -> Freq.Conditioned.table -> t

val contexts : t -> int
val alphabet_size : t -> int

val code : t -> int -> Code.t
(** [code t ctx] is the per-context code. *)

val encode : t -> Uhm_bitstream.Writer.t -> ctx:int -> int -> unit
val decode : t -> Uhm_bitstream.Reader.t -> ctx:int -> int

val total_bits : t -> int array array -> int
(** [total_bits t counts] is the size in bits of a corpus with the given
    per-context symbol counts. *)

val average_length : t -> int array array -> float
(** Corpus-weighted average codeword length in bits per symbol. *)
