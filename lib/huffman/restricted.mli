(** Length-restricted prefix codes.

    The paper (§3.2, citing Wilner's B1700) notes that restricting codeword
    lengths to "a small number of selected lengths ... simplifies the
    decoding problem without sacrificing much by way of memory efficiency".
    This module assigns each symbol one of the allowed lengths, shortest
    lengths to the most frequent symbols, greedily subject to the Kraft
    inequality, and returns the canonical code for the resulting lengths. *)

val lengths : allowed:int list -> int array -> int array
(** [lengths ~allowed counts] is a per-symbol length vector using only
    lengths from [allowed] (zero-count symbols get length 0).
    Raises [Invalid_argument] if [allowed] is empty, contains a non-positive
    or over-wide length, or cannot accommodate the alphabet (too few long
    codewords available). *)

val of_frequencies : allowed:int list -> int array -> Code.t
(** [of_frequencies ~allowed counts] is [Code.of_lengths (lengths ~allowed counts)]. *)

val b1700_lengths : int list
(** The allowed-length profile used throughout this reproduction for the
    "restricted" variants: [[2; 4; 6; 8; 10]], echoing the B1700's short
    variable-length opcode profile. *)
