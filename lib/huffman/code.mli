(** Canonical Huffman codes.

    A code assigns a prefix-free codeword to every symbol with non-zero
    weight.  Codes are always stored in canonical form (codewords assigned in
    increasing order of (length, symbol)), so a code is fully determined by
    its length vector — which is also what the length-restricted construction
    of {!Restricted} produces. *)

type t

val of_frequencies : int array -> t
(** [of_frequencies counts] builds an optimal prefix code for the non-zero
    entries of [counts] ([counts.(sym)] is the weight of [sym]).  A symbol
    with zero count gets no codeword and cannot be encoded.  If exactly one
    symbol has non-zero count it receives a one-bit codeword.
    Raises [Invalid_argument] if all counts are zero. *)

val of_lengths : int array -> t
(** [of_lengths lengths] builds the canonical code with the given codeword
    lengths (0 meaning "no codeword").  Raises [Invalid_argument] if the
    lengths violate the Kraft inequality or exceed {!Uhm_bitstream.Bits.max_width}. *)

val lengths : t -> int array
(** Per-symbol codeword lengths; 0 for symbols without a codeword. *)

val alphabet_size : t -> int

val codeword : t -> int -> int * int
(** [codeword t sym] is [(length, bits)].  Raises [Not_found] if [sym] has no
    codeword. *)

val encode : t -> Uhm_bitstream.Writer.t -> int -> unit
(** [encode t w sym] appends [sym]'s codeword.  Raises [Not_found] if [sym]
    has no codeword. *)

val decode : t -> Uhm_bitstream.Reader.t -> int
(** [decode t r] consumes one codeword and returns its symbol.
    Raises [Failure] on a bit pattern that is no codeword prefix (possible
    only when the code is not complete). *)

val average_length : t -> int array -> float
(** [average_length t counts] is the expected codeword length under the
    empirical distribution [counts] (symbols with zero count ignored). *)

val total_bits : t -> int array -> int
(** [total_bits t counts] is [sum counts.(s) * length(s)]. *)

val decode_tree : t -> int array
(** [decode_tree t] flattens the decoding tree for consumption by the
    simulated host machine's Huffman decoder routine.  Entry [2*i + b] of the
    array is the transition of internal node [i] on bit [b]: a non-negative
    value is the next internal node index; a negative value [v] other than
    [min_int] is the leaf for symbol [-v - 1]; [min_int] marks a bit pattern
    that is no codeword prefix (possible only for incomplete codes).
    Node 0 is the root. *)

val max_code_length : t -> int
