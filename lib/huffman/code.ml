module Writer = Uhm_bitstream.Writer
module Reader = Uhm_bitstream.Reader
module Bits = Uhm_bitstream.Bits

type t = {
  lengths : int array;
  (* codewords.(sym) is meaningful only when lengths.(sym) > 0 *)
  codewords : int array;
  (* flattened decoding trie, see decode_tree in the interface *)
  tree : int array;
}

let no_prefix = min_int

(* -- Huffman length computation ------------------------------------------ *)

(* Two-queue Huffman construction: leaves sorted by ascending weight in one
   queue, merged nodes appended (already in ascending order) to the other. *)
let huffman_lengths counts =
  let symbols =
    Array.to_list (Array.mapi (fun sym c -> (sym, c)) counts)
    |> List.filter (fun (_, c) -> c > 0)
    |> List.sort (fun (s1, c1) (s2, c2) -> compare (c1, s1) (c2, s2))
  in
  let lengths = Array.make (Array.length counts) 0 in
  match symbols with
  | [] -> invalid_arg "Huffman.Code.of_frequencies: all counts are zero"
  | [ (sym, _) ] ->
      lengths.(sym) <- 1;
      lengths
  | _ ->
      (* A tree node is (weight, member symbols); merging concatenates member
         lists and deepens every member by one. *)
      let depth = Array.make (Array.length counts) 0 in
      let leaves = Queue.create () and merged = Queue.create () in
      List.iter (fun (sym, c) -> Queue.add (c, [ sym ]) leaves) symbols;
      let take_min () =
        let from_leaves =
          if Queue.is_empty leaves then None else Some (Queue.peek leaves)
        and from_merged =
          if Queue.is_empty merged then None else Some (Queue.peek merged)
        in
        match (from_leaves, from_merged) with
        | None, None -> assert false
        | Some _, None -> Queue.pop leaves
        | None, Some _ -> Queue.pop merged
        | Some (w1, _), Some (w2, _) ->
            if w1 <= w2 then Queue.pop leaves else Queue.pop merged
      in
      let remaining () = Queue.length leaves + Queue.length merged in
      while remaining () > 1 do
        let w1, m1 = take_min () in
        let w2, m2 = take_min () in
        List.iter (fun sym -> depth.(sym) <- depth.(sym) + 1) m1;
        List.iter (fun sym -> depth.(sym) <- depth.(sym) + 1) m2;
        Queue.add (w1 + w2, m1 @ m2) merged
      done;
      List.iter (fun (sym, _) -> lengths.(sym) <- depth.(sym)) symbols;
      lengths

(* -- Canonical codeword assignment --------------------------------------- *)

let check_kraft lengths =
  let max_len = Array.fold_left max 0 lengths in
  if max_len > Bits.max_width then
    invalid_arg "Huffman.Code: codeword longer than the supported width";
  if max_len > 0 then begin
    let budget = 1 lsl max_len in
    let used =
      Array.fold_left
        (fun acc l -> if l > 0 then acc + (1 lsl (max_len - l)) else acc)
        0 lengths
    in
    if used > budget then
      invalid_arg "Huffman.Code.of_lengths: lengths violate the Kraft inequality"
  end

let canonical_codewords lengths =
  let codewords = Array.make (Array.length lengths) 0 in
  let order =
    Array.to_list (Array.mapi (fun sym l -> (l, sym)) lengths)
    |> List.filter (fun (l, _) -> l > 0)
    |> List.sort compare
  in
  let rec assign code prev_len = function
    | [] -> ()
    | (len, sym) :: rest ->
        let code = code lsl (len - prev_len) in
        codewords.(sym) <- code;
        assign (code + 1) len rest
  in
  (match order with
  | [] -> ()
  | (len, sym) :: rest ->
      codewords.(sym) <- 0;
      assign 1 len rest);
  codewords

(* -- Decoding trie -------------------------------------------------------- *)

let build_tree lengths codewords =
  let nodes = ref 1 in
  let capacity = ref 4 in
  let tree = ref (Array.make !capacity no_prefix) in
  let ensure idx =
    while idx >= !capacity do
      let fresh = Array.make (!capacity * 2) no_prefix in
      Array.blit !tree 0 fresh 0 !capacity;
      capacity := !capacity * 2;
      tree := fresh
    done
  in
  let new_node () =
    let n = !nodes in
    nodes := n + 1;
    ensure ((2 * n) + 1);
    n
  in
  ensure 1;
  Array.iteri
    (fun sym len ->
      if len > 0 then begin
        let code = codewords.(sym) in
        let node = ref 0 in
        for i = len - 1 downto 1 do
          let bit = (code lsr i) land 1 in
          let slot = (2 * !node) + bit in
          ensure slot;
          (match !tree.(slot) with
          | v when v = no_prefix ->
              let n = new_node () in
              !tree.(slot) <- n;
              node := n
          | v when v >= 0 -> node := v
          | _ -> invalid_arg "Huffman.Code: codeword set is not prefix-free");
          ()
        done;
        let bit = code land 1 in
        let slot = (2 * !node) + bit in
        ensure slot;
        if !tree.(slot) <> no_prefix then
          invalid_arg "Huffman.Code: codeword set is not prefix-free";
        !tree.(slot) <- -sym - 1
      end)
    lengths;
  Array.sub !tree 0 (2 * !nodes)

let make lengths =
  check_kraft lengths;
  let codewords = canonical_codewords lengths in
  { lengths; codewords; tree = build_tree lengths codewords }

let of_frequencies counts = make (huffman_lengths counts)
let of_lengths lengths = make (Array.copy lengths)

(* -- Accessors ------------------------------------------------------------ *)

let lengths t = Array.copy t.lengths
let alphabet_size t = Array.length t.lengths
let max_code_length t = Array.fold_left max 0 t.lengths

let codeword t sym =
  if sym < 0 || sym >= Array.length t.lengths || t.lengths.(sym) = 0 then
    raise Not_found;
  (t.lengths.(sym), t.codewords.(sym))

let encode t w sym =
  let len, bits = codeword t sym in
  Writer.put w ~bits:len bits

let decode t r =
  let rec walk node =
    let bit = if Reader.get_bool r then 1 else 0 in
    match t.tree.((2 * node) + bit) with
    | v when v = no_prefix -> failwith "Huffman.Code.decode: invalid codeword"
    | v when v >= 0 -> walk v
    | v -> -v - 1
  in
  walk 0

let total_bits t counts =
  if Array.length counts <> Array.length t.lengths then
    invalid_arg "Huffman.Code.total_bits: alphabet size mismatch";
  let sum = ref 0 in
  Array.iteri
    (fun sym c ->
      if c > 0 then begin
        if t.lengths.(sym) = 0 then
          invalid_arg "Huffman.Code.total_bits: symbol without codeword";
        sum := !sum + (c * t.lengths.(sym))
      end)
    counts;
  !sum

let average_length t counts =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.
  else float_of_int (total_bits t counts) /. float_of_int total

let decode_tree t = Array.copy t.tree
