type t = {
  counts : int array;
  mutable total : int;
}

let create ~alphabet_size =
  if alphabet_size <= 0 then invalid_arg "Freq.create: empty alphabet";
  { counts = Array.make alphabet_size 0; total = 0 }

let alphabet_size t = Array.length t.counts

let observe t sym =
  if sym < 0 || sym >= Array.length t.counts then
    invalid_arg "Freq.observe: symbol out of range";
  t.counts.(sym) <- t.counts.(sym) + 1;
  t.total <- t.total + 1

let observe_many t syms = List.iter (observe t) syms
let count t sym = t.counts.(sym)
let total t = t.total
let counts t = Array.copy t.counts

let of_list ~alphabet_size syms =
  let t = create ~alphabet_size in
  observe_many t syms;
  t

let smoothed t = Array.map (fun c -> c + 1) t.counts

let entropy counts =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.
  else
    Array.fold_left
      (fun acc c ->
        if c = 0 then acc
        else
          let p = float_of_int c /. float_of_int total in
          acc -. (p *. (log p /. log 2.)))
      0. counts

module Conditioned = struct
  type table = {
    rows : t array;
  }

  let create ~contexts ~alphabet_size =
    if contexts <= 0 then invalid_arg "Freq.Conditioned.create: no contexts";
    { rows = Array.init contexts (fun _ -> create ~alphabet_size) }

  let observe table ~ctx sym =
    if ctx < 0 || ctx >= Array.length table.rows then
      invalid_arg "Freq.Conditioned.observe: context out of range";
    observe table.rows.(ctx) sym

  let counts table = Array.map (fun row -> counts row) table.rows
  let contexts table = Array.length table.rows
  let alphabet_size table = alphabet_size table.rows.(0)

  let of_sequence ~contexts ~alphabet_size ~ctx_of ~start_ctx syms =
    let table = create ~contexts ~alphabet_size in
    let rec go ctx = function
      | [] -> ()
      | sym :: rest ->
          observe table ~ctx sym;
          go (ctx_of sym) rest
    in
    go start_ctx syms;
    table
end
