(** Frequency statistics over small integer symbol alphabets.

    The paper's frequency-based encodings (§3.2) are built from counts taken
    over the *static* representation of a program: single-symbol counts for
    plain Huffman coding and predecessor-conditioned counts for the
    pair-frequency ("digram") generalisation of Foster and Gonter. *)

type t
(** Counts for symbols [0 .. alphabet_size - 1]. *)

val create : alphabet_size:int -> t
val alphabet_size : t -> int

val observe : t -> int -> unit
(** [observe t sym] increments the count of [sym].
    Raises [Invalid_argument] if [sym] is out of range. *)

val observe_many : t -> int list -> unit
val count : t -> int -> int
val total : t -> int
val counts : t -> int array
(** A fresh copy of the count array. *)

val of_list : alphabet_size:int -> int list -> t

val smoothed : t -> int array
(** [smoothed t] is [counts t] with every entry incremented by one (Laplace
    smoothing), so every symbol is encodable. *)

val entropy : int array -> float
(** [entropy counts] is the first-order entropy in bits per symbol of the
    empirical distribution, ignoring zero-count symbols; 0 for an empty
    table. *)

(** Predecessor-conditioned counts: [contexts] rows, one per possible
    predecessor symbol plus a distinguished start context. *)
module Conditioned : sig
  type table

  val create : contexts:int -> alphabet_size:int -> table
  val observe : table -> ctx:int -> int -> unit
  val counts : table -> int array array
  val contexts : table -> int
  val alphabet_size : table -> int

  val of_sequence : contexts:int -> alphabet_size:int -> ctx_of:(int -> int)
    -> start_ctx:int -> int list -> table
  (** [of_sequence ~contexts ~alphabet_size ~ctx_of ~start_ctx syms] counts
      each symbol under the context derived from its predecessor via
      [ctx_of]; the first symbol is counted under [start_ctx]. *)
end
