let max_width = 62

let width_for n =
  if n < 0 then invalid_arg "Bits.width_for: negative alternative count";
  if n <= 1 then 0
  else
    let rec go width capacity =
      if capacity >= n then width else go (width + 1) (capacity * 2)
    in
    go 1 2

let width_of_value v =
  if v < 0 then invalid_arg "Bits.width_of_value: negative value";
  width_for (v + 1)

let fits ~bits v =
  if bits < 0 || bits > max_width then invalid_arg "Bits.fits: bad width";
  v >= 0 && (bits >= max_width || v < 1 lsl bits)

let zigzag v = if v >= 0 then v lsl 1 else ((-v) lsl 1) - 1
let unzigzag u = if u land 1 = 0 then u lsr 1 else -((u + 1) lsr 1)
