(** Growable MSB-first bit stream writer.

    The paper's packed encodings let fields "span the boundaries of the units
    of memory access" (§3.2); this writer provides exactly that: fields of any
    width from 0 to {!Bits.max_width} bits are appended back to back with no
    implicit padding. *)

type t

val create : ?initial_capacity_bytes:int -> unit -> t

val put : t -> bits:int -> int -> unit
(** [put w ~bits v] appends the [bits] low-order bits of [v], most significant
    bit first.  [bits] may be 0, in which case nothing is written.
    Raises [Invalid_argument] if [v] does not fit in [bits] bits. *)

val put_bool : t -> bool -> unit
(** [put_bool w b] appends a single bit. *)

val put_unary : t -> int -> unit
(** [put_unary w n] appends [n] one-bits followed by a zero bit
    (used by the Elias-gamma style operand fallback escape). *)

val align : t -> int -> unit
(** [align w n] pads with zero bits until the bit length is a multiple of
    [n]. *)

val length_bits : t -> int
(** Number of bits written so far. *)

val contents : t -> Bytes.t
(** [contents w] is the stream padded with zero bits to a whole number of
    bytes.  The writer remains usable afterwards. *)

val to_reader_input : t -> string
(** [to_reader_input w] is [contents w] as an immutable string, the form
    accepted by {!Reader.of_string}. *)
