type t = {
  data : string;
  mutable cursor : int;
}

exception Out_of_bits

let of_string data = { data; cursor = 0 }
let length_bits t = 8 * String.length t.data
let pos t = t.cursor
let remaining_bits t = length_bits t - t.cursor

let seek t p =
  if p < 0 || p > length_bits t then invalid_arg "Reader.seek: out of range";
  t.cursor <- p

let bit_at t p =
  let byte = Char.code (String.unsafe_get t.data (p lsr 3)) in
  byte land (0x80 lsr (p land 7)) <> 0

let get_bool t =
  if t.cursor >= length_bits t then raise Out_of_bits;
  let b = bit_at t t.cursor in
  t.cursor <- t.cursor + 1;
  b

let peek_bool t =
  if t.cursor >= length_bits t then raise Out_of_bits;
  bit_at t t.cursor

(* Bit-at-a-time extraction, retained as the executable reference the
   word-wise [get] is differentially tested against. *)
let get_bitwise t bits =
  if bits < 0 || bits > Bits.max_width then
    invalid_arg "Reader.get: width out of range";
  if t.cursor + bits > length_bits t then raise Out_of_bits;
  let v = ref 0 in
  for _ = 1 to bits do
    v := (!v lsl 1) lor (if bit_at t t.cursor then 1 else 0);
    t.cursor <- t.cursor + 1
  done;
  !v

(* Byte-at-a-time extraction: the first byte is masked below the start
   offset, whole middle bytes are shifted in, and the last byte contributes
   only its bits above the end offset, so the accumulator never exceeds
   [bits] <= [Bits.max_width] significant bits. *)
let get t bits =
  if bits < 0 || bits > Bits.max_width then
    invalid_arg "Reader.get: width out of range";
  let pos = t.cursor in
  if pos + bits > length_bits t then raise Out_of_bits;
  if bits = 0 then 0
  else begin
    t.cursor <- pos + bits;
    let data = t.data in
    let first = pos lsr 3 in
    let last = (pos + bits - 1) lsr 3 in
    let trailing = 7 - ((pos + bits - 1) land 7) in
    if first = last then
      (Char.code (String.unsafe_get data first) lsr trailing)
      land ((1 lsl bits) - 1)
    else begin
      let v =
        ref (Char.code (String.unsafe_get data first) land (0xff lsr (pos land 7)))
      in
      for b = first + 1 to last - 1 do
        v := (!v lsl 8) lor Char.code (String.unsafe_get data b)
      done;
      (!v lsl (8 - trailing))
      lor (Char.code (String.unsafe_get data last) lsr trailing)
    end
  end

let get_unary t =
  let rec count n = if get_bool t then count (n + 1) else n in
  count 0
