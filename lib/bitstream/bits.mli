(** Bit-width arithmetic shared by the packed and contextual encoders. *)

val width_for : int -> int
(** [width_for n] is the number of bits needed to distinguish [n] alternatives
    (values [0 .. n-1]): [0] for [n <= 1], else [ceil (log2 n)].
    Raises [Invalid_argument] for [n < 0]. *)

val width_of_value : int -> int
(** [width_of_value v] is the number of bits needed to represent the single
    non-negative value [v]: [width_for (v + 1)]. *)

val fits : bits:int -> int -> bool
(** [fits ~bits v] is true iff [0 <= v < 2^bits] (with [2^0 = 1]). *)

val max_width : int
(** Largest supported field width, 62 bits (native [int] payload). *)

val zigzag : int -> int
(** [zigzag v] maps a signed integer to an unsigned one suitable for
    variable-width encoding: [0, -1, 1, -2, 2, ...] become [0, 1, 2, 3, 4]. *)

val unzigzag : int -> int
(** Inverse of {!zigzag}. *)
