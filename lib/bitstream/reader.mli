(** MSB-first bit stream reader over an immutable string.

    A reader carries an explicit bit cursor so that a DIR program counter can
    be a bit address, as in the Burroughs B1700 whose memory is
    bit-addressable (paper §6.1: "high memory resolution, i.e., the ability
    to view the memory space as a bit string"). *)

type t

exception Out_of_bits
(** Raised when a read runs past the end of the stream. *)

val of_string : string -> t
(** [of_string s] positions a fresh cursor at bit 0 of [s]. *)

val get : t -> int -> int
(** [get r bits] reads [bits] bits MSB-first and advances the cursor.
    [bits] may be 0 (returns 0).  Raises {!Out_of_bits} past the end and
    [Invalid_argument] on a bad width.  Extracts byte-at-a-time. *)

val get_bitwise : t -> int -> int
(** Bit-at-a-time reference implementation of {!get}: same contract, same
    results, kept so the optimised path can be differentially tested. *)

val get_bool : t -> bool
(** [get_bool r] reads one bit. *)

val get_unary : t -> int
(** [get_unary r] reads one-bits until a zero bit and returns their count. *)

val peek_bool : t -> bool
(** [peek_bool r] is the next bit without advancing. *)

val pos : t -> int
(** Current cursor, in bits from the start. *)

val seek : t -> int -> unit
(** [seek r p] moves the cursor to absolute bit position [p].
    Raises [Invalid_argument] if [p] is outside the stream. *)

val length_bits : t -> int
(** Total stream length in bits (a multiple of 8). *)

val remaining_bits : t -> int
(** Bits left between the cursor and the end. *)
