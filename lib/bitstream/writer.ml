type t = {
  mutable buf : Bytes.t;
  mutable len_bits : int;
}

let create ?(initial_capacity_bytes = 64) () =
  let capacity = max 1 initial_capacity_bytes in
  { buf = Bytes.make capacity '\000'; len_bits = 0 }

let ensure_capacity t extra_bits =
  let needed_bytes = ((t.len_bits + extra_bits) + 7) / 8 in
  if needed_bytes > Bytes.length t.buf then begin
    let capacity = ref (Bytes.length t.buf) in
    while !capacity < needed_bytes do
      capacity := !capacity * 2
    done;
    let fresh = Bytes.make !capacity '\000' in
    Bytes.blit t.buf 0 fresh 0 (Bytes.length t.buf);
    t.buf <- fresh
  end

let put_bit t b =
  let byte_index = t.len_bits lsr 3 and bit_index = t.len_bits land 7 in
  if b then begin
    let current = Char.code (Bytes.get t.buf byte_index) in
    Bytes.set t.buf byte_index (Char.chr (current lor (0x80 lsr bit_index)))
  end;
  t.len_bits <- t.len_bits + 1

let put t ~bits v =
  if bits < 0 || bits > Bits.max_width then
    invalid_arg "Writer.put: width out of range";
  if not (Bits.fits ~bits v) then
    invalid_arg
      (Printf.sprintf "Writer.put: value %d does not fit in %d bits" v bits);
  ensure_capacity t bits;
  for i = bits - 1 downto 0 do
    put_bit t ((v lsr i) land 1 = 1)
  done

let put_bool t b =
  ensure_capacity t 1;
  put_bit t b

let put_unary t n =
  if n < 0 then invalid_arg "Writer.put_unary: negative count";
  ensure_capacity t (n + 1);
  for _ = 1 to n do
    put_bit t true
  done;
  put_bit t false

let align t n =
  if n <= 0 then invalid_arg "Writer.align: non-positive alignment";
  let rem = t.len_bits mod n in
  if rem <> 0 then begin
    let padding = n - rem in
    ensure_capacity t padding;
    for _ = 1 to padding do
      put_bit t false
    done
  end

let length_bits t = t.len_bits
let contents t = Bytes.sub t.buf 0 ((t.len_bits + 7) / 8)
let to_reader_input t = Bytes.to_string (contents t)
