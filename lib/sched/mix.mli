(** The multiprogramming driver: N DIR programs time-sliced over one
    shared DTB.

    Encodes (or takes pre-encoded) programs, prepares one machine per
    program against a shared DTB ([Uhm.prepare_dtb_shared]), runs the
    {!Scheduler}, and collects per-program and global results plus the
    event {!Trace}.

    Because slicing stops only at INTERP boundaries and the shared DTB
    under every policy serves a program the translations it installed
    itself, each program's output is identical to its single-program run;
    only the cycle counts and DTB statistics change with contention.
    With [quantum >= ] every program's [dir_steps] nothing is ever
    preempted, and per-program cycles equal the single-program golden
    numbers exactly (under [Flush_on_switch] trivially; under [Tagged] /
    [Partitioned] because the set mapping a program sees is unchanged and
    foreign entries only occupy ways it has not yet claimed). *)

module Machine := Uhm_machine.Machine
module Dtb := Uhm_core.Dtb

type program_result = {
  pr_name : string;
  pr_asid : int;
  pr_status : Machine.status;
  pr_output : string;
  pr_cycles : int;          (** cycles this program executed *)
  pr_dir_steps : int;       (** reference DIR step count *)
  pr_slices : int;
  pr_dtb_hits : int;        (** DTB activity during this program's slices *)
  pr_dtb_misses : int;
  pr_dtb_evictions : int;
  pr_hit_ratio : float;
  pr_solo_cycles : int;
      (** cycles of the same program run alone on the same geometry
          (memoised single-program run; see {!solo_cycles}) *)
  pr_slowdown : float;
      (** fairness: [pr_cycles / pr_solo_cycles], the price this program
          paid for sharing the machine.  The solo denominator always uses
          the {e full} geometry, so the metric prices everything the mix
          costs: exactly 1.0 at {!solo_quantum} under [Flush_on_switch]
          (each program starts cold with the whole buffer — precisely the
          solo run), and under the other policies whenever the geometry
          still leaves each program its working set (the solo-equality
          golden at the paper geometry).  Under [Partitioned] at a tight
          geometry it exceeds 1.0 {e even without preemption}: the
          shrunken partition itself is a cost of sharing, and the metric
          deliberately charges for it. *)
}

type result = {
  mr_policy : Dtb.policy;
  mr_scheduler : Scheduler.policy;
  mr_quantum : int;
  mr_config : Dtb.config;
  mr_programs : program_result list;  (** in ASID order *)
  mr_total_cycles : int;              (** global virtual time *)
  mr_switches : int;
  mr_flushes : int;
  mr_hit_ratio : float;               (** over all programs' lookups *)
  mr_evictions : int;
  mr_trace : Trace.t;
}

val run_encoded :
  ?timing:Uhm_machine.Timing.t ->
  ?fuel:int ->
  ?layout:Uhm_psder.Layout.t ->
  ?backend:Uhm_machine.Machine.backend ->
  ?trace_capacity:int ->
  ?scheduler:Scheduler.policy ->
  policy:Dtb.policy ->
  quantum:int ->
  config:Dtb.config ->
  (string * Uhm_encoding.Codec.encoded) list ->
  result
(** Run the named pre-encoded programs to completion under time-slicing.
    [scheduler] defaults to {!Scheduler.Round_robin}; [quantum] is in DIR
    instructions (use {!solo_quantum} for the never-preempt limit);
    [trace_capacity] bounds the event ring (default 65536).  [backend]
    selects each machine's execution backend (default [`Decode]); results,
    traces and statistics are identical under both. *)

val run :
  ?timing:Uhm_machine.Timing.t ->
  ?fuel:int ->
  ?layout:Uhm_psder.Layout.t ->
  ?backend:Uhm_machine.Machine.backend ->
  ?trace_capacity:int ->
  ?scheduler:Scheduler.policy ->
  policy:Dtb.policy ->
  quantum:int ->
  config:Dtb.config ->
  kind:Uhm_encoding.Kind.t ->
  (string * Uhm_dir.Program.t) list ->
  result
(** {!run_encoded} after encoding each program with [kind]. *)

val solo_quantum : int
(** A quantum larger than any program ([max_int]): no preemption ever
    fires, so round-robin degenerates to sequential execution and every
    program reproduces its single-program cycle count exactly. *)

val solo_cycles :
  ?timing:Uhm_machine.Timing.t ->
  ?fuel:int ->
  config:Dtb.config ->
  Uhm_encoding.Codec.encoded ->
  int
(** Cycle count of the program run alone under [Dtb_strategy config] —
    the denominator of {!program_result.pr_slowdown}.  Memoised (bounded,
    thread-safe, keyed physically on the program and structurally on
    config/timing/fuel), so a grid pays for each distinct solo run
    once. *)
