(* Event-trace observability for the multiprogramming scheduler; see
   trace.mli.  The ring keeps the last [capacity] events; the per-program
   tallies are maintained on every record, so rollups stay exact no matter
   how many events the ring dropped. *)

type kind =
  | Switch of { from_asid : int option; to_asid : int }
  | Dtb_flush of { asid : int }
  | Translation of { asid : int; dir_addr : int }
  | Quantum_expiry of { asid : int }
  | Completion of { asid : int; ok : bool }
  | Fault_injected of { asid : int; fclass : string }
  | Fault_detected of { asid : int; fclass : string }
  | Recovery_retry of { asid : int; dir_addr : int; attempt : int }
  | Rollback of { asid : int; pages : int }
  | Downgrade of { asid : int }
  | Job_queued of { job : int; depth : int }
  | Job_shed of { job : int; depth : int }
  | Job_admitted of { job : int; asid : int; wait : int; depth : int }
  | Asid_evicted of { asid : int; entries : int; cold : bool }
  | Deadline_miss of { job : int; asid : int; by : int }
  | Job_retry of { job : int; asid : int; attempt : int }
  | Job_failed of { job : int; asid : int; attempts : int }
  | Interp_admit of { job : int; asid : int }
  | Brownout of { from_stage : int; to_stage : int }
  | Slot_quarantined of { asid : int; entries : int; until : int }

type event = { at_cycle : int; kind : kind }

type tally = {
  mutable dispatches : int;
  mutable flushes : int;
  mutable translations : int;
  mutable expiries : int;
  mutable injections : int;
  mutable detections : int;
  mutable retries : int;
  mutable rollbacks : int;
  mutable downgrades : int;
  mutable admits : int;
  mutable evicts : int;
  mutable deadline_misses : int;
  mutable job_retries : int;
  mutable job_failures : int;
  mutable interp_admits : int;
  mutable quarantines : int;
}

type counts = {
  c_dispatches : int;
  c_flushes : int;
  c_translations : int;
  c_expiries : int;
  c_injections : int;
  c_detections : int;
  c_retries : int;
  c_rollbacks : int;
  c_downgrades : int;
  c_admits : int;
  c_evicts : int;
  c_deadline_misses : int;
  c_job_retries : int;
  c_job_failures : int;
  c_interp_admits : int;
  c_quarantines : int;
}

type t = {
  capacity : int;
  ring : event array;
  mutable recorded : int;   (* total events ever recorded *)
  tallies : (int, tally) Hashtbl.t;
  (* exact per-fault-class rollups, across all ASIDs *)
  injected_classes : (string, int) Hashtbl.t;
  detected_classes : (string, int) Hashtbl.t;
  (* exact load-service rollups; queued/shed jobs have no ASID yet, so
     these are global counters, not per-ASID tallies *)
  mutable queued_total : int;
  mutable shed_total : int;
  (* brownout-controller rollups: stage transitions are global service
     state, not per-ASID *)
  mutable brownout_transitions : int;
  mutable brownout_peak : int;
}

let dummy = { at_cycle = -1; kind = Quantum_expiry { asid = -1 } }

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  {
    capacity;
    ring = Array.make capacity dummy;
    recorded = 0;
    tallies = Hashtbl.create 8;
    injected_classes = Hashtbl.create 8;
    detected_classes = Hashtbl.create 8;
    queued_total = 0;
    shed_total = 0;
    brownout_transitions = 0;
    brownout_peak = 0;
  }

let capacity t = t.capacity
let recorded t = t.recorded
let dropped t = max 0 (t.recorded - t.capacity)

let tally_for t asid =
  match Hashtbl.find_opt t.tallies asid with
  | Some y -> y
  | None ->
      let y =
        { dispatches = 0; flushes = 0; translations = 0; expiries = 0;
          injections = 0; detections = 0; retries = 0; rollbacks = 0;
          downgrades = 0; admits = 0; evicts = 0; deadline_misses = 0;
          job_retries = 0; job_failures = 0; interp_admits = 0;
          quarantines = 0 }
      in
      Hashtbl.add t.tallies asid y;
      y

let bump_class tbl fclass =
  Hashtbl.replace tbl fclass
    (1 + Option.value ~default:0 (Hashtbl.find_opt tbl fclass))

let record t ~at_cycle kind =
  t.ring.(t.recorded mod t.capacity) <- { at_cycle; kind };
  t.recorded <- t.recorded + 1;
  match kind with
  | Switch { to_asid; _ } ->
      let y = tally_for t to_asid in
      y.dispatches <- y.dispatches + 1
  | Dtb_flush { asid } ->
      let y = tally_for t asid in
      y.flushes <- y.flushes + 1
  | Translation { asid; _ } ->
      let y = tally_for t asid in
      y.translations <- y.translations + 1
  | Quantum_expiry { asid } ->
      let y = tally_for t asid in
      y.expiries <- y.expiries + 1
  | Completion _ -> ()
  | Fault_injected { asid; fclass } ->
      let y = tally_for t asid in
      y.injections <- y.injections + 1;
      bump_class t.injected_classes fclass
  | Fault_detected { asid; fclass } ->
      let y = tally_for t asid in
      y.detections <- y.detections + 1;
      bump_class t.detected_classes fclass
  | Recovery_retry { asid; _ } ->
      let y = tally_for t asid in
      y.retries <- y.retries + 1
  | Rollback { asid; _ } ->
      let y = tally_for t asid in
      y.rollbacks <- y.rollbacks + 1
  | Downgrade { asid } ->
      let y = tally_for t asid in
      y.downgrades <- y.downgrades + 1
  | Job_queued _ -> t.queued_total <- t.queued_total + 1
  | Job_shed _ -> t.shed_total <- t.shed_total + 1
  | Job_admitted { asid; _ } ->
      let y = tally_for t asid in
      y.admits <- y.admits + 1
  | Asid_evicted { asid; _ } ->
      let y = tally_for t asid in
      y.evicts <- y.evicts + 1
  | Deadline_miss { asid; _ } ->
      let y = tally_for t asid in
      y.deadline_misses <- y.deadline_misses + 1
  | Job_retry { asid; _ } ->
      let y = tally_for t asid in
      y.job_retries <- y.job_retries + 1
  | Job_failed { asid; _ } ->
      let y = tally_for t asid in
      y.job_failures <- y.job_failures + 1
  | Interp_admit { asid; _ } ->
      let y = tally_for t asid in
      y.interp_admits <- y.interp_admits + 1
  | Brownout { to_stage; _ } ->
      t.brownout_transitions <- t.brownout_transitions + 1;
      if to_stage > t.brownout_peak then t.brownout_peak <- to_stage
  | Slot_quarantined { asid; _ } ->
      let y = tally_for t asid in
      y.quarantines <- y.quarantines + 1

(* Buffered events, oldest first. *)
let events t =
  let kept = min t.recorded t.capacity in
  List.init kept (fun i ->
      t.ring.((t.recorded - kept + i) mod t.capacity))

let counts t asid =
  match Hashtbl.find_opt t.tallies asid with
  | None ->
      { c_dispatches = 0; c_flushes = 0; c_translations = 0; c_expiries = 0;
        c_injections = 0; c_detections = 0; c_retries = 0; c_rollbacks = 0;
        c_downgrades = 0; c_admits = 0; c_evicts = 0; c_deadline_misses = 0;
        c_job_retries = 0; c_job_failures = 0; c_interp_admits = 0;
        c_quarantines = 0 }
  | Some y ->
      {
        c_dispatches = y.dispatches;
        c_flushes = y.flushes;
        c_translations = y.translations;
        c_expiries = y.expiries;
        c_injections = y.injections;
        c_detections = y.detections;
        c_retries = y.retries;
        c_rollbacks = y.rollbacks;
        c_downgrades = y.downgrades;
        c_admits = y.admits;
        c_evicts = y.evicts;
        c_deadline_misses = y.deadline_misses;
        c_job_retries = y.job_retries;
        c_job_failures = y.job_failures;
        c_interp_admits = y.interp_admits;
        c_quarantines = y.quarantines;
      }

let queued_total t = t.queued_total
let shed_total t = t.shed_total
let brownout_transitions t = t.brownout_transitions
let brownout_peak t = t.brownout_peak

let tallies t =
  Hashtbl.fold (fun asid _ acc -> asid :: acc) t.tallies []
  |> List.sort compare
  |> List.map (fun asid -> (asid, counts t asid))

let classes_of tbl =
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl [] |> List.sort compare

let injected_by_class t = classes_of t.injected_classes
let detected_by_class t = classes_of t.detected_classes

(* -- Chrome trace_event export ----------------------------------------------
   The JSON-array flavour of the trace_event format: "X" complete events
   for the scheduler slices (reconstructed from the Switch events in the
   buffered window), "i" instant events for flushes, expiries and
   completions.  Simulated cycles are reported as microseconds — the
   about://tracing timeline then reads directly in cycles. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome ?(pid = 1) ~names ~end_cycle t =
  let b = Buffer.create 4096 in
  let first = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_string b ",\n  ";
        Buffer.add_string b s)
      fmt
  in
  Buffer.add_string b "[\n  ";
  let name asid = json_escape (names asid) in
  let slice ~asid ~from_cycle ~to_cycle =
    emit
      {|{"name":"%s","cat":"slice","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d}|}
      (name asid) from_cycle
      (max 0 (to_cycle - from_cycle))
      pid asid
  in
  let instant ?(cat = "sched") ~label ~asid ~at () =
    emit
      {|{"name":"%s","cat":"%s","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t"}|}
      label cat at pid asid
  in
  let open_slice = ref None in
  List.iter
    (fun { at_cycle; kind } ->
      match kind with
      | Switch { to_asid; _ } ->
          (match !open_slice with
          | Some (asid, from_cycle) ->
              slice ~asid ~from_cycle ~to_cycle:at_cycle
          | None -> ());
          open_slice := Some (to_asid, at_cycle)
      | Dtb_flush { asid } ->
          instant ~label:"dtb_flush" ~asid ~at:at_cycle ()
      | Translation { asid; dir_addr } ->
          emit
            {|{"name":"translate@%d","cat":"dtb","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t"}|}
            dir_addr at_cycle pid asid
      | Quantum_expiry { asid } ->
          instant ~label:"quantum_expiry" ~asid ~at:at_cycle ()
      | Completion { asid; ok } ->
          instant ~label:(if ok then "done" else "stopped") ~asid ~at:at_cycle ()
      | Fault_injected { asid; fclass } ->
          instant ~cat:"fault"
            ~label:(Printf.sprintf "inject:%s" (json_escape fclass))
            ~asid ~at:at_cycle ()
      | Fault_detected { asid; fclass } ->
          instant ~cat:"fault"
            ~label:(Printf.sprintf "detect:%s" (json_escape fclass))
            ~asid ~at:at_cycle ()
      | Recovery_retry { asid; dir_addr; attempt } ->
          emit
            {|{"name":"retry@%d#%d","cat":"fault","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t"}|}
            dir_addr attempt at_cycle pid asid
      | Rollback { asid; pages } ->
          emit
            {|{"name":"rollback(%dpg)","cat":"fault","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t"}|}
            pages at_cycle pid asid
      | Downgrade { asid } ->
          instant ~cat:"fault" ~label:"downgrade:interp" ~asid ~at:at_cycle ()
      | Job_queued { job; depth } ->
          emit
            {|{"name":"queue_depth","cat":"serve","ph":"C","ts":%d,"pid":%d,"args":{"depth":%d}}|}
            at_cycle pid depth;
          emit
            {|{"name":"queued:j%d","cat":"serve","ph":"i","ts":%d,"pid":%d,"tid":0,"s":"p"}|}
            job at_cycle pid
      | Job_shed { job; depth } ->
          emit
            {|{"name":"queue_depth","cat":"serve","ph":"C","ts":%d,"pid":%d,"args":{"depth":%d}}|}
            at_cycle pid depth;
          emit
            {|{"name":"shed:j%d","cat":"serve","ph":"i","ts":%d,"pid":%d,"tid":0,"s":"p"}|}
            job at_cycle pid
      | Job_admitted { job; asid; wait; depth } ->
          emit
            {|{"name":"queue_depth","cat":"serve","ph":"C","ts":%d,"pid":%d,"args":{"depth":%d}}|}
            at_cycle pid depth;
          emit
            {|{"name":"admit:j%d(+%d)","cat":"serve","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t"}|}
            job wait at_cycle pid asid
      | Asid_evicted { asid; entries; cold } ->
          emit
            {|{"name":"%s(%d)","cat":"serve","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t"}|}
            (if cold then "evict_cold" else "evict_recycle")
            entries at_cycle pid asid
      | Deadline_miss { job; asid; by } ->
          emit
            {|{"name":"deadline_miss:j%d(+%d)","cat":"slo","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t"}|}
            job by at_cycle pid asid
      | Job_retry { job; asid; attempt } ->
          emit
            {|{"name":"job_retry:j%d#%d","cat":"chaos","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t"}|}
            job attempt at_cycle pid asid
      | Job_failed { job; asid; attempts } ->
          emit
            {|{"name":"job_failed:j%d(%d)","cat":"chaos","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t"}|}
            job attempts at_cycle pid asid
      | Interp_admit { job; asid } ->
          emit
            {|{"name":"admit_interp:j%d","cat":"chaos","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t"}|}
            job at_cycle pid asid
      | Brownout { from_stage; to_stage } ->
          emit
            {|{"name":"brownout_stage","cat":"chaos","ph":"C","ts":%d,"pid":%d,"args":{"stage":%d}}|}
            at_cycle pid to_stage;
          emit
            {|{"name":"brownout:%d->%d","cat":"chaos","ph":"i","ts":%d,"pid":%d,"tid":0,"s":"g"}|}
            from_stage to_stage at_cycle pid
      | Slot_quarantined { asid; entries; until } ->
          emit
            {|{"name":"quarantine(%d)until:%d","cat":"chaos","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t"}|}
            entries until at_cycle pid asid)
    (events t);
  (match !open_slice with
  | Some (asid, from_cycle) -> slice ~asid ~from_cycle ~to_cycle:end_cycle
  | None -> ());
  (* the ring's truncation is part of the record: a long run that pushed
     events out of the window says so in the export itself *)
  if dropped t > 0 then
    emit
      {|{"name":"ring_dropped:%d","cat":"trace","ph":"i","ts":%d,"pid":%d,"tid":0,"s":"g"}|}
      (dropped t) end_cycle pid;
  (* thread names make the about://tracing rows self-describing *)
  List.iter
    (fun (asid, _) ->
      emit
        {|{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s"}}|}
        pid asid (name asid))
    (tallies t);
  Buffer.add_string b "\n]\n";
  Buffer.contents b
