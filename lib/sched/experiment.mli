(** The multiprogramming experiment grid: programs x policy x quantum x
    DTB geometry, evaluated on the {!Uhm_core.Sweep} pool.

    Every cell runs the same program mix to completion under time-slicing
    and reports per-program cycles and DTB statistics ({!Mix.result}).
    Cells are independent (each builds its own shared DTB and machines),
    so the grid parallelises like any other sweep and the result list is
    byte-identical at any domain count.  The sweep is given each cell's
    estimated simulated work as its cost hint, so expensive cells (big
    mixes, small quanta under [Flush_on_switch]) start first. *)

module Dtb := Uhm_core.Dtb

type mix_cell = {
  mc_policy : Dtb.policy;
  mc_scheduler : Scheduler.policy;
  mc_quantum : int;
  mc_config : Dtb.config;
  mc_result : Mix.result;
}

val default_quanta : int list
(** [16; 256; solo_quantum] — heavy contention, light contention, and the
    quantum-to-infinity limit that must reproduce single-program golden
    numbers. *)

val mix_grid :
  ?domains:int ->
  ?schedulers:Scheduler.policy list ->
  ?quanta:int list ->
  ?trace_capacity:int ->
  ?backend:Uhm_machine.Machine.backend ->
  kind:Uhm_encoding.Kind.t ->
  policies:Dtb.policy list ->
  configs:Dtb.config list ->
  (string * Uhm_dir.Program.t) list ->
  mix_cell list
(** Cells in submission order: policies outermost, then schedulers, then
    quanta, then configs.  [schedulers] defaults to round-robin only;
    [quanta] to {!default_quanta}; [trace_capacity] to a small ring
    (4096) since grids keep every cell's trace alive.  [backend] selects
    the execution backend for every machine in every cell (default
    [`Decode]); cell contents are identical under both. *)

module Sweep := Uhm_core.Sweep

val mix_axes :
  ?schedulers:Scheduler.policy list ->
  ?quanta:int list ->
  policies:Dtb.policy list ->
  configs:Dtb.config list ->
  unit ->
  (Dtb.policy * Scheduler.policy * int * Dtb.config) list
(** The grid's cell axes in submission order — what cell index [i] of
    {!mix_grid}/{!mix_grid_slots} ran.  Lets a caller describe a
    quarantined cell (whose [mix_cell] never materialised) and build a
    journal fingerprint. *)

val mix_grid_slots :
  ?domains:int ->
  ?schedulers:Scheduler.policy list ->
  ?quanta:int list ->
  ?trace_capacity:int ->
  ?backend:Uhm_machine.Machine.backend ->
  ?supervision:Sweep.supervision ->
  ?cached:(int -> mix_cell option) ->
  ?cell_hook:(index:int -> attempts:int -> mix_cell Sweep.slot -> unit) ->
  ?cell_fuel:int ->
  ?poison:int list ->
  kind:Uhm_encoding.Kind.t ->
  policies:Dtb.policy list ->
  configs:Dtb.config list ->
  (string * Uhm_dir.Program.t) list ->
  mix_cell Sweep.slot list
(** {!mix_grid} under campaign supervision: a failing cell is retried and
    then quarantined instead of aborting the grid, and [cached]/
    [cell_hook] plug in a {!Uhm_campaign} journal.  Under supervision a
    cell whose programs did not all halt {e fails} (and is quarantined)
    rather than reporting a poisoned row; [cell_fuel] bounds each
    program's machine with the PR 4 fuel machinery, turning a wedged cell
    into a deterministic failure.  [poison] (a testing aid for the
    quarantine path, used by the CI smoke) makes the listed cell indices
    raise on every attempt.  Completed slots are byte-identical to the
    corresponding {!mix_grid} cells.  The encode pre-pass stays
    unsupervised. *)
