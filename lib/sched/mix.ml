(* The multiprogramming driver: encode, prepare one machine per program
   against a shared DTB, schedule, and collect per-program and global
   results; see mix.mli. *)

module Machine = Uhm_machine.Machine
module Dtb = Uhm_core.Dtb
module U = Uhm_core.Uhm
module Codec = Uhm_encoding.Codec
module Layout = Uhm_psder.Layout

type program_result = {
  pr_name : string;
  pr_asid : int;
  pr_status : Machine.status;
  pr_output : string;
  pr_cycles : int;
  pr_dir_steps : int;
  pr_slices : int;
  pr_dtb_hits : int;
  pr_dtb_misses : int;
  pr_dtb_evictions : int;
  pr_hit_ratio : float;
  pr_solo_cycles : int;
  pr_slowdown : float;
}

(* -- Slowdown vs solo --------------------------------------------------------

   The fairness metric: how much longer a program ran inside the mix than
   it would have run alone on the same machine and DTB geometry.  The solo
   cycle count is a plain single-program [Dtb_strategy] run, memoised like
   [Uhm.dir_steps_memoized] — bounded, mutex-protected, keyed physically
   on the program (re-encoding the same source gives a new key) and
   structurally on everything the cycle count depends on.  Races fill the
   same entry twice, which is wasted work but never wrong. *)

type solo_key = {
  sk_program : Uhm_dir.Program.t;  (* compared physically *)
  sk_config : Dtb.config;
  sk_timing : Uhm_machine.Timing.t option;
  sk_fuel : int option;
}

let solo_mutex = Mutex.create ()
let solo_memo : (solo_key * int) list ref = ref []
let solo_memo_max = 128

let solo_cycles ?timing ?fuel ~config (encoded : Codec.encoded) =
  let key =
    { sk_program = encoded.Codec.program; sk_config = config;
      sk_timing = timing; sk_fuel = fuel }
  in
  let same k =
    k.sk_program == key.sk_program
    && k.sk_config = key.sk_config
    && k.sk_timing = key.sk_timing
    && k.sk_fuel = key.sk_fuel
  in
  let cached =
    Mutex.lock solo_mutex;
    let r = List.find_opt (fun (k, _) -> same k) !solo_memo in
    Mutex.unlock solo_mutex;
    r
  in
  match cached with
  | Some (_, cycles) -> cycles
  | None ->
      let r =
        U.run_encoded ?timing ?fuel ~strategy:(U.Dtb_strategy config) encoded
      in
      let cycles = r.U.cycles in
      Mutex.lock solo_mutex;
      let rest =
        let others = List.filter (fun (k, _) -> not (same k)) !solo_memo in
        if List.length others >= solo_memo_max then
          List.filteri (fun i _ -> i < solo_memo_max - 1) others
        else others
      in
      solo_memo := (key, cycles) :: rest;
      Mutex.unlock solo_mutex;
      cycles

type result = {
  mr_policy : Dtb.policy;
  mr_scheduler : Scheduler.policy;
  mr_quantum : int;
  mr_config : Dtb.config;
  mr_programs : program_result list;
  mr_total_cycles : int;
  mr_switches : int;
  mr_flushes : int;
  mr_hit_ratio : float;
  mr_evictions : int;
  mr_trace : Trace.t;
}

let run_encoded ?timing ?fuel ?(layout = Layout.default) ?backend
    ?(trace_capacity = 65536) ?(scheduler = Scheduler.Round_robin) ~policy
    ~quantum ~config (programs : (string * Codec.encoded) list) =
  if programs = [] then invalid_arg "Mix.run_encoded: no programs";
  let n = List.length programs in
  let dtb =
    Dtb.create_shared ~policy ~programs:n config
      ~buffer_base:(layout.Layout.dtb_buffer_base + 1)
  in
  let trace = Trace.create ~capacity:trace_capacity () in
  let procs =
    List.mapi
      (fun asid (name, encoded) ->
        let hook = ref (fun ~dir_addr:_ -> ()) in
        let machine =
          U.prepare_dtb_shared ?timing ?fuel ~layout ?backend
            ~on_translation:(fun ~dir_addr -> !hook ~dir_addr)
            ~dtb encoded
        in
        Scheduler.process ~asid ~name
          ~total_dir_steps:(U.dir_steps_memoized encoded.Codec.program)
          ~translation_hook:hook machine)
      programs
  in
  let report = Scheduler.run ~trace ~policy:scheduler ~quantum ~dtb procs in
  let results =
    List.map2
      (fun (p : Scheduler.process) (_, encoded) ->
        let looked_up = p.Scheduler.p_dtb_hits + p.Scheduler.p_dtb_misses in
        let solo = solo_cycles ?timing ?fuel ~config encoded in
        let r =
          {
            pr_name = p.Scheduler.name;
            pr_asid = p.Scheduler.asid;
            pr_status =
              (match p.Scheduler.finished with
              | Some s -> s
              | None -> assert false);
            pr_output = Machine.output p.Scheduler.machine;
            pr_cycles = p.Scheduler.p_cycles;
            pr_dir_steps = p.Scheduler.total_dir_steps;
            pr_slices = p.Scheduler.slices;
            pr_dtb_hits = p.Scheduler.p_dtb_hits;
            pr_dtb_misses = p.Scheduler.p_dtb_misses;
            pr_dtb_evictions = p.Scheduler.p_dtb_evictions;
            pr_hit_ratio =
              (if looked_up = 0 then 0.
               else float_of_int p.Scheduler.p_dtb_hits /. float_of_int looked_up);
            pr_solo_cycles = solo;
            pr_slowdown =
              (if solo = 0 then 1.
               else float_of_int p.Scheduler.p_cycles /. float_of_int solo);
          }
        in
        Machine.recycle p.Scheduler.machine;
        r)
      procs programs
  in
  {
    mr_policy = policy;
    mr_scheduler = scheduler;
    mr_quantum = quantum;
    mr_config = config;
    mr_programs = results;
    mr_total_cycles = report.Scheduler.r_total_cycles;
    mr_switches = report.Scheduler.r_switches;
    mr_flushes = report.Scheduler.r_flushes;
    mr_hit_ratio = Dtb.hit_ratio dtb;
    mr_evictions = Dtb.evictions dtb;
    mr_trace = trace;
  }

let run ?timing ?fuel ?layout ?backend ?trace_capacity ?scheduler ~policy
    ~quantum ~config ~kind programs =
  run_encoded ?timing ?fuel ?layout ?backend ?trace_capacity ?scheduler ~policy
    ~quantum ~config
    (List.map (fun (name, p) -> (name, Codec.encode kind p)) programs)

let solo_quantum = max_int
