(* The multiprogramming experiment grid; see experiment.mli. *)

module Sweep = Uhm_core.Sweep
module Dtb = Uhm_core.Dtb
module U = Uhm_core.Uhm
module Codec = Uhm_encoding.Codec

type mix_cell = {
  mc_policy : Dtb.policy;
  mc_scheduler : Scheduler.policy;
  mc_quantum : int;
  mc_config : Dtb.config;
  mc_result : Mix.result;
}

let default_quanta = [ 16; 256; Mix.solo_quantum ]

let mix_grid ?domains ?(schedulers = [ Scheduler.Round_robin ])
    ?(quanta = default_quanta) ?(trace_capacity = 4096) ~kind ~policies
    ~configs programs =
  if programs = [] then invalid_arg "Experiment.mix_grid: no programs";
  (* encode once, in parallel; the per-program dir_steps computed here are
     both the SRTF estimates and the sweep cost hints *)
  let encodeds =
    Sweep.map ?domains
      (fun (name, p) -> (name, Codec.encode kind p, U.dir_steps_memoized p))
      programs
  in
  let total_steps =
    List.fold_left (fun acc (_, _, s) -> acc + s) 0 encodeds
  in
  let encoded_programs = List.map (fun (n, e, _) -> (n, e)) encodeds in
  let cells =
    List.concat_map
      (fun policy ->
        List.concat_map
          (fun scheduler ->
            List.concat_map
              (fun quantum ->
                List.map (fun config -> (policy, scheduler, quantum, config)) configs)
              quanta)
          schedulers)
      policies
  in
  (* a cell's host time scales with the simulated work; small quanta under
     Flush_on_switch retranslate the working set every slice, so weight
     them as longer jobs *)
  let cost (policy, _, quantum, _) =
    let slices = max 1 (total_steps / max 1 quantum) in
    total_steps + match policy with Dtb.Flush_on_switch -> slices * 64 | _ -> 0
  in
  Sweep.map ?domains ~cost
    (fun (policy, scheduler, quantum, config) ->
      {
        mc_policy = policy;
        mc_scheduler = scheduler;
        mc_quantum = quantum;
        mc_config = config;
        mc_result =
          Mix.run_encoded ~trace_capacity ~scheduler ~policy ~quantum ~config
            encoded_programs;
      })
    cells
