(* The multiprogramming experiment grid; see experiment.mli. *)

module Sweep = Uhm_core.Sweep
module Dtb = Uhm_core.Dtb
module U = Uhm_core.Uhm
module Codec = Uhm_encoding.Codec
module Machine = Uhm_machine.Machine

type mix_cell = {
  mc_policy : Dtb.policy;
  mc_scheduler : Scheduler.policy;
  mc_quantum : int;
  mc_config : Dtb.config;
  mc_result : Mix.result;
}

let default_quanta = [ 16; 256; Mix.solo_quantum ]

let mix_axes ?(schedulers = [ Scheduler.Round_robin ])
    ?(quanta = default_quanta) ~policies ~configs () =
  List.concat_map
    (fun policy ->
      List.concat_map
        (fun scheduler ->
          List.concat_map
            (fun quantum ->
              List.map (fun config -> (policy, scheduler, quantum, config)) configs)
            quanta)
        schedulers)
    policies

(* a cell's host time scales with the simulated work; small quanta under
   Flush_on_switch retranslate the working set every slice, so weight
   them as longer jobs *)
let mix_cost ~total_steps (policy, _, quantum, _) =
  let slices = max 1 (total_steps / max 1 quantum) in
  total_steps + match policy with Dtb.Flush_on_switch -> slices * 64 | _ -> 0

(* encode once, in parallel; the per-program dir_steps computed here are
   both the SRTF estimates and the sweep cost hints *)
let mix_encodeds ?domains ~kind programs =
  Sweep.map ?domains
    (fun (name, p) -> (name, Codec.encode kind p, U.dir_steps_memoized p))
    programs

let mix_cell_of ~trace_capacity ?fuel ?backend encoded_programs
    (policy, scheduler, quantum, config) =
  {
    mc_policy = policy;
    mc_scheduler = scheduler;
    mc_quantum = quantum;
    mc_config = config;
    mc_result =
      Mix.run_encoded ?fuel ?backend ~trace_capacity ~scheduler ~policy
        ~quantum ~config encoded_programs;
  }

let mix_grid ?domains ?schedulers ?quanta ?(trace_capacity = 4096) ?backend
    ~kind ~policies ~configs programs =
  if programs = [] then invalid_arg "Experiment.mix_grid: no programs";
  let encodeds = mix_encodeds ?domains ~kind programs in
  let total_steps =
    List.fold_left (fun acc (_, _, s) -> acc + s) 0 encodeds
  in
  let encoded_programs = List.map (fun (n, e, _) -> (n, e)) encodeds in
  let cells = mix_axes ?schedulers ?quanta ~policies ~configs () in
  Sweep.map ?domains ~cost:(mix_cost ~total_steps)
    (mix_cell_of ~trace_capacity ?backend encoded_programs)
    cells

let mix_grid_slots ?domains ?schedulers ?quanta ?(trace_capacity = 4096)
    ?backend ?supervision ?cached ?cell_hook ?cell_fuel ?(poison = []) ~kind
    ~policies ~configs programs =
  if programs = [] then invalid_arg "Experiment.mix_grid_slots: no programs";
  let encodeds = mix_encodeds ?domains ~kind programs in
  let total_steps =
    List.fold_left (fun acc (_, _, s) -> acc + s) 0 encodeds
  in
  let encoded_programs = List.map (fun (n, e, _) -> (n, e)) encodeds in
  let cells =
    List.mapi (fun i c -> (i, c)) (mix_axes ?schedulers ?quanta ~policies ~configs ())
  in
  Sweep.map_supervised ?supervision ?cached ?cell_hook ?domains
    ~cost:(fun (_, c) -> mix_cost ~total_steps c)
    (fun (i, axes) ->
      if List.mem i poison then
        failwith (Printf.sprintf "cell %d poisoned (campaign testing aid)" i);
      let cell =
        mix_cell_of ~trace_capacity ?fuel:cell_fuel ?backend encoded_programs
          axes
      in
      (* under supervision a cell whose programs did not halt is a failed
         cell (to be retried/quarantined), not a result: a trap is poison,
         and fuel exhaustion is the deterministic wedged-job budget *)
      List.iter
        (fun (pr : Mix.program_result) ->
          match pr.Mix.pr_status with
          | Machine.Halted -> ()
          | Machine.Out_of_fuel ->
              failwith (pr.Mix.pr_name ^ " ran out of fuel")
          | Machine.Trapped m ->
              failwith (pr.Mix.pr_name ^ " trapped: " ^ m)
          | Machine.Running -> assert false)
        cell.mc_result.Mix.mr_programs;
      cell)
    cells
