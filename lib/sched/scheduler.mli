(** Time-sliced scheduling of N DIR programs over one shared UHM.

    Each program runs on its own machine (its own memory image, one per
    address space); what is shared — and contended for — is the dynamic
    translation buffer.  The scheduler owns the global virtual clock
    (total cycles across all programs), drives [Dtb.switch_to] at context
    switches, and preempts only at INTERP boundaries
    ({!Uhm_machine.Machine.run_dir_quantum}), the points where a shared
    DTB can be flushed or repartitioned safely. *)

module Machine := Uhm_machine.Machine
module Dtb := Uhm_core.Dtb

type policy =
  | Round_robin         (** cycle through the runnable programs in order *)
  | Shortest_remaining  (** preemptive shortest-remaining-[dir_steps]-first:
                            always dispatch the runnable program with the
                            fewest estimated DIR instructions left *)

val policy_name : policy -> string
(** ["rr"], ["srtf"]. *)

type process = {
  asid : int;
  name : string;
  machine : Machine.t;
  total_dir_steps : int;   (** reference DIR step count, the
                               remaining-work estimate for SRTF *)
  translation_hook : (dir_addr:int -> unit) ref;
      (** dereferenced by the machine's INTERP-miss hook; the scheduler
          points it at the trace while the process runs *)
  mutable finished : Machine.status option;  (** [None] while runnable *)
  mutable slices : int;
  mutable p_cycles : int;        (** cycles executed (absolute) *)
  mutable p_dir_instrs : int;    (** INTERP transfers executed (absolute) *)
  mutable p_dtb_hits : int;      (** DTB lookups attributed to this
                                     program's slices *)
  mutable p_dtb_misses : int;
  mutable p_dtb_evictions : int; (** evictions {e performed during} this
                                     program's slices (the victims may have
                                     belonged to anyone) *)
  mutable last_snapshot : Machine.snapshot option;
      (** resumption state captured at the end of every slice *)
}

val process :
  asid:int ->
  name:string ->
  total_dir_steps:int ->
  ?translation_hook:(dir_addr:int -> unit) ref ->
  Machine.t ->
  process
(** Wrap a prepared machine (see [Uhm.prepare_dtb_shared]).  Pass the same
    hook cell given to [prepare_dtb_shared] as [translation_hook]. *)

type report = {
  r_total_cycles : int;  (** global virtual time at the last completion *)
  r_switches : int;      (** dispatches of a different program *)
  r_flushes : int;       (** DTB flushes during the run *)
  r_slices : int;        (** total quanta dispatched *)
}

val run :
  ?trace:Trace.t ->
  policy:policy ->
  quantum:int ->
  dtb:Dtb.t ->
  process list ->
  report
(** Slice the processes over the shared [dtb] until all have finished,
    switching the DTB's current ASID at every context switch and
    recording events into [trace] if given.  [quantum] is in DIR
    instructions and must be at least 1; a quantum no less than every
    program's [total_dir_steps] means no program is ever preempted, and
    with [Round_robin] the run degenerates to sequential execution.
    Processes must be given in ASID order 0..n-1 (matching the DTB's
    [programs]).  Per-process statistics are updated in place. *)
