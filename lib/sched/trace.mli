(** Event-trace observability for the multiprogramming scheduler.

    A bounded ring buffer of typed scheduling events plus per-program
    counter rollups.  The ring keeps the last [capacity] events (older
    ones are {!dropped}); the rollups are maintained on {e every}
    {!record}, so {!counts} stays exact no matter how small the ring.
    Everything is deterministic: same event sequence, same trace. *)

type kind =
  | Switch of { from_asid : int option; to_asid : int }
      (** the scheduler dispatched [to_asid]; [from_asid] is [None] for
          the first dispatch *)
  | Dtb_flush of { asid : int }
      (** the shared DTB was flushed while switching to [asid] *)
  | Translation of { asid : int; dir_addr : int }
      (** [asid] started translating the DIR instruction at [dir_addr] *)
  | Quantum_expiry of { asid : int }
  | Completion of { asid : int; ok : bool }
      (** [ok] is false for traps and fuel exhaustion *)
  | Fault_injected of { asid : int; fclass : string }
      (** the injector applied a fault of class [fclass] (the
          [Injector.class_name]) to [asid]'s state *)
  | Fault_detected of { asid : int; fclass : string }
      (** a guard check or memory scrub caught a fault of class [fclass] *)
  | Recovery_retry of { asid : int; dir_addr : int; attempt : int }
      (** recovery invalidated the guarded translation of [dir_addr] and
          is re-translating; [attempt] counts from 1 *)
  | Rollback of { asid : int; pages : int }
      (** [asid] was rewound to its last checkpoint ([pages] memory pages
          restored) for replay *)
  | Downgrade of { asid : int }
      (** the watchdog demoted [asid] from dynamic translation to pure
          DIR interpretation *)
  | Job_queued of { job : int; depth : int }
      (** the load service accepted arriving job [job] into the admission
          queue; [depth] is the queue length after *)
  | Job_shed of { job : int; depth : int }
      (** admission control refused job [job] (full queue or shed
          threshold); [depth] is the unchanged queue length *)
  | Job_admitted of { job : int; asid : int; wait : int; depth : int }
      (** job [job] left the queue for ASID slot [asid] after [wait]
          cycles of queueing delay; [depth] is the queue length after *)
  | Asid_evicted of { asid : int; entries : int; cold : bool }
      (** the eviction economy invalidated [asid]'s [entries] resident
          translations — [cold] for an idle/footprint-scored eviction,
          not-[cold] for the mandatory invalidation when a slot is
          recycled to a new job *)
  | Deadline_miss of { job : int; asid : int; by : int }
      (** job [job] completed on slot [asid] but [by] cycles past its
          SLO latency bound *)
  | Job_retry of { job : int; asid : int; attempt : int }
      (** a detected fault voided job [job]'s attempt on slot [asid]; the
          service will re-run it from scratch as attempt [attempt]
          (counting from 2) after an exponential-backoff delay *)
  | Job_failed of { job : int; asid : int; attempts : int }
      (** job [job] exhausted its per-job retry budget after [attempts]
          attempts and was retired with the distinct [Failed] outcome —
          the service never reports a corrupted answer *)
  | Interp_admit of { job : int; asid : int }
      (** brownout stage 2: job [job] was admitted in pure-interpretation
          mode, sidestepping the translation fault surface *)
  | Brownout of { from_stage : int; to_stage : int }
      (** the brownout controller moved between degradation stages
          (0 normal, 1 shed harder, 2 admit as interpretation,
          3 quarantine the poisoned slot) *)
  | Slot_quarantined of { asid : int; entries : int; until : int }
      (** brownout stage 3 took slot [asid] out of service until cycle
          [until], flushing its [entries] resident translations *)

type event = { at_cycle : int; kind : kind }
(** [at_cycle] is global virtual time: total cycles executed by all
    programs when the event fired. *)

type counts = {
  c_dispatches : int;
  (** dispatches of this program: quanta where the scheduler switched to
      it.  Deliberately not named "slices" — a program that runs several
      consecutive quanta (e.g. the last survivor under round-robin)
      counts one dispatch but many slices; per-quantum slice counts live
      in the scheduler's per-program results. *)
  c_flushes : int;
  c_translations : int;
  c_expiries : int;
  c_injections : int;
  c_detections : int;
  c_retries : int;
  c_rollbacks : int;
  c_downgrades : int;
  c_admits : int;
  c_evicts : int;
  c_deadline_misses : int;
  c_job_retries : int;
  c_job_failures : int;
  c_interp_admits : int;
  c_quarantines : int;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 65536) bounds the ring. *)

val capacity : t -> int

val record : t -> at_cycle:int -> kind -> unit

val recorded : t -> int
(** Total events ever recorded. *)

val dropped : t -> int
(** Events pushed out of the ring: [max 0 (recorded - capacity)]. *)

val events : t -> event list
(** The buffered window, oldest first; at most [capacity] events. *)

val counts : t -> int -> counts
(** Exact rollup for one ASID (zero counts if never seen). *)

val tallies : t -> (int * counts) list
(** All rollups, sorted by ASID. *)

val injected_by_class : t -> (string * int) list
(** Exact injection counts per fault class across all ASIDs, sorted by
    class name.  Maintained on every {!record}, independent of ring
    capacity. *)

val detected_by_class : t -> (string * int) list
(** Exact detection counts per fault class across all ASIDs, sorted by
    class name. *)

val queued_total : t -> int
(** Exact count of {!Job_queued} events.  A queued/shed job has no ASID
    yet, so these live beside the per-ASID tallies, maintained on every
    {!record} like them. *)

val shed_total : t -> int
(** Exact count of {!Job_shed} events. *)

val brownout_transitions : t -> int
(** Exact count of {!Brownout} stage transitions.  Stage is global
    service state, not a per-ASID property, so like the queue counters it
    lives beside the tallies. *)

val brownout_peak : t -> int
(** The highest brownout stage ever entered (0 when the controller never
    escalated). *)

val to_chrome : ?pid:int -> names:(int -> string) -> end_cycle:int -> t -> string
(** The Chrome [trace_event] JSON-array document for the buffered window,
    loadable in about://tracing (or ui.perfetto.dev): one timeline row per
    program ([tid] = ASID, named via metadata events), ["X"] complete
    events for scheduler slices (reconstructed from the {!Switch} events;
    the final slice is closed at [end_cycle]), and instant events for
    flushes, translations, quantum expiries, completions, the fault
    lifecycle (injection, detection, retry, rollback, downgrade — in a
    separate ["fault"] category) and the load-service lifecycle (queued,
    shed, admitted, ASID evicted, in a ["serve"] category, plus a
    ["C"]-counter [queue_depth] series so the admission queue's breathing
    is visible as a graph).  The fault-tolerant-serving events land in
    ["slo"]/["chaos"] categories: deadline misses, job retries and
    failures, interpretation admissions, slot quarantines, and a
    ["C"]-counter [brownout_stage] series tracking the controller's
    degradation stage.  When the ring dropped events, a final
    [ring_dropped:N] instant records the truncation in the export
    itself.  Simulated
    cycles are reported as microseconds, so the timeline reads directly
    in cycles.  [names] maps an ASID to its program name. *)
