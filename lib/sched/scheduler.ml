(* Time-sliced scheduling of N programs over one shared DTB; see
   scheduler.mli. *)

module Machine = Uhm_machine.Machine
module Dtb = Uhm_core.Dtb

type policy = Round_robin | Shortest_remaining

let policy_name = function
  | Round_robin -> "rr"
  | Shortest_remaining -> "srtf"

type process = {
  asid : int;
  name : string;
  machine : Machine.t;
  total_dir_steps : int;
  translation_hook : (dir_addr:int -> unit) ref;
  mutable finished : Machine.status option;
  mutable slices : int;
  mutable p_cycles : int;
  mutable p_dir_instrs : int;
  mutable p_dtb_hits : int;
  mutable p_dtb_misses : int;
  mutable p_dtb_evictions : int;
  mutable last_snapshot : Machine.snapshot option;
}

let process ~asid ~name ~total_dir_steps ?translation_hook machine =
  {
    asid;
    name;
    machine;
    total_dir_steps;
    translation_hook =
      (match translation_hook with
      | Some r -> r
      | None -> ref (fun ~dir_addr:_ -> ()));
    finished = None;
    slices = 0;
    p_cycles = 0;
    p_dir_instrs = 0;
    p_dtb_hits = 0;
    p_dtb_misses = 0;
    p_dtb_evictions = 0;
    last_snapshot = None;
  }

type report = {
  r_total_cycles : int;
  r_switches : int;
  r_flushes : int;
  r_slices : int;
}

(* Pick the next runnable process.  Round_robin scans circularly from the
   process after the last one dispatched; Shortest_remaining picks the
   smallest estimated remaining DIR steps (ties broken by lowest ASID), so
   it is preemptive: a long program gets the machine only while nothing
   shorter is runnable. *)
let pick ~policy ~procs ~last_index =
  let n = Array.length procs in
  match policy with
  | Round_robin ->
      let rec scan k =
        if k = n then None
        else
          let i = (last_index + 1 + k) mod n in
          if procs.(i).finished = None then Some i else scan (k + 1)
      in
      scan 0
  | Shortest_remaining ->
      let best = ref None in
      Array.iteri
        (fun i p ->
          if p.finished = None then
            let remaining = max 0 (p.total_dir_steps - p.p_dir_instrs) in
            match !best with
            | Some (_, r) when r <= remaining -> ()
            | _ -> best := Some (i, remaining))
        procs;
      Option.map fst !best

let run ?trace ~policy ~quantum ~dtb processes =
  if processes = [] then invalid_arg "Scheduler.run: no processes";
  if quantum < 1 then invalid_arg "Scheduler.run: quantum must be >= 1";
  let procs = Array.of_list processes in
  let n = Array.length procs in
  Array.iteri
    (fun i p ->
      if p.asid <> i then
        invalid_arg "Scheduler.run: process ASIDs must be 0..n-1 in order")
    procs;
  ignore n;
  let tell at_cycle kind =
    match trace with
    | Some tr -> Trace.record tr ~at_cycle kind
    | None -> ()
  in
  let clock = ref 0 in
  let switches = ref 0 in
  let slices = ref 0 in
  let flushes0 = Dtb.flushes dtb in
  let last_index = ref (-1) in
  let running = ref true in
  while !running do
    match pick ~policy ~procs ~last_index:!last_index with
    | None -> running := false
    | Some i ->
        let p = procs.(i) in
        if i <> !last_index then begin
          let from_asid =
            if !last_index < 0 then None else Some procs.(!last_index).asid
          in
          let before = Dtb.flushes dtb in
          Dtb.switch_to dtb ~asid:p.asid;
          incr switches;
          tell !clock (Trace.Switch { from_asid; to_asid = p.asid });
          if Dtb.flushes dtb > before then
            tell !clock (Trace.Dtb_flush { asid = p.asid })
        end;
        last_index := i;
        let stats = Machine.stats p.machine in
        let c0 = stats.Machine.cycles in
        let h0 = Dtb.hits dtb
        and m0 = Dtb.misses dtb
        and e0 = Dtb.evictions dtb in
        (* the trace tap sees global virtual time: the clock at slice
           start plus the cycles this machine has run since *)
        (p.translation_hook :=
           fun ~dir_addr ->
             tell
               (!clock + (Machine.stats p.machine).Machine.cycles - c0)
               (Trace.Translation { asid = p.asid; dir_addr }));
        let outcome = Machine.run_dir_quantum p.machine ~quantum in
        (p.translation_hook := fun ~dir_addr:_ -> ());
        clock := !clock + (stats.Machine.cycles - c0);
        incr slices;
        p.slices <- p.slices + 1;
        p.p_cycles <- stats.Machine.cycles;
        p.p_dir_instrs <- stats.Machine.interp_count;
        p.p_dtb_hits <- p.p_dtb_hits + (Dtb.hits dtb - h0);
        p.p_dtb_misses <- p.p_dtb_misses + (Dtb.misses dtb - m0);
        p.p_dtb_evictions <- p.p_dtb_evictions + (Dtb.evictions dtb - e0);
        p.last_snapshot <- Some (Machine.snapshot p.machine);
        (match outcome with
        | Machine.Yielded -> tell !clock (Trace.Quantum_expiry { asid = p.asid })
        | Machine.Done status ->
            p.finished <- Some status;
            tell !clock
              (Trace.Completion
                 { asid = p.asid; ok = status = Machine.Halted }))
  done;
  {
    r_total_cycles = !clock;
    r_switches = !switches;
    r_flushes = Dtb.flushes dtb - flushes0;
    r_slices = !slices;
  }
