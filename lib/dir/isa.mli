(** The DIR — directly interpretable representation (paper §2.3).

    A stack-oriented intermediate instruction set with contour-relative
    variable addressing.  The base opcodes form the low-semantic-level DIR
    that both front ends (Algol-S, Fortran-S) target; the superoperators are
    produced by the fusion pass and raise the semantic level (paper §3.1:
    "increasing the complexity and variety of the opcodes").

    Execution model shared by every engine: a separate operand stack;
    data memory holding a stack of frames, each with a
    {!frame_header_size}-word header (static link, dynamic link, return
    address, caller contour) followed by parameters and locals; variables
    addressed by (static-hop count, frame offset); branch targets are
    instruction indices in the decoded form and bit addresses once
    encoded. *)

type opcode =
  | Lit       (** push immediate [a] (signed) *)
  | Load      (** push variable at [a] static hops, offset [b] *)
  | Store     (** pop into variable ([a], [b]) *)
  | Addr      (** push the address of variable ([a], [b]) *)
  | Loadi     (** pop address, push its contents *)
  | Storei    (** pop value, pop address, store value at address *)
  | Index     (** pop index, pop base address, push base + index *)
  | Dup
  | Drop
  | Swap
  | Add       (** binary ops pop y then x and push x op y *)
  | Sub
  | Mul
  | Div       (** traps on a zero divisor; truncates toward zero *)
  | Mod
  | Neg
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And       (** logical: non-zero operands count as true; no short-circuit *)
  | Or
  | Not
  | Jump      (** jump to [a] *)
  | Jz        (** pop; jump to [a] if zero *)
  | Call      (** call procedure at [a]; [b] = static hops to its parent *)
  | Enter     (** prologue: [a] args, [b] locals, [c] contour id *)
  | Ret       (** epilogue; a return value, if any, stays on the stack *)
  | Print     (** pop and print as decimal followed by a newline *)
  | Printc    (** pop and print as a character (traps outside 0..255) *)
  | Halt
  | Litadd    (** superoperators: push [a]; Add — etc. *)
  | Litsub
  | Litmul
  | Loadadd   (** push variable ([a], [b]); Add — etc. *)
  | Loadsub
  | Loadmul
  | Incvar    (** variable ([a], [b]) += 1 *)
  | Decvar
  | Cjeq      (** pop y, pop x; jump to [a] {e unless} x = y — etc. *)
  | Cjne
  | Cjlt
  | Cjle
  | Cjgt
  | Cjge
[@@deriving eq, ord, show, enum]

val opcode_count : int
(** Number of opcodes; enum values are [0 .. opcode_count - 1]. *)

val all_opcodes : opcode array
(** Indexed by enum value. *)

(** Operand shape of an opcode: drives the interpreters, every encoder and
    the PSDER translation templates. *)
type shape =
  | Shape_none
  | Shape_imm          (** a: signed immediate *)
  | Shape_var          (** a: static hop count, b: frame offset *)
  | Shape_target       (** a: branch target *)
  | Shape_call         (** a: target, b: static hops for the static link *)
  | Shape_enter        (** a: args, b: locals, c: contour id *)
[@@deriving eq, show]

val shape : opcode -> shape

val is_superop : opcode -> bool
(** True for the fusion pass's products. *)

val falls_through : opcode -> bool
(** Whether control can reach the textual successor ([Jump], [Ret] and
    [Halt] cannot fall through; [Call] can — via the return). *)

type instr = {
  op : opcode;
  a : int;
  b : int;
  c : int;
}
[@@deriving eq, ord, show]

val instr : ?a:int -> ?b:int -> ?c:int -> opcode -> instr

val mnemonic : opcode -> string
(** Lower-case name, e.g. ["loadadd"]. *)

val to_string : instr -> string
(** One-line disassembly. *)

val frame_header_size : int
(** Words in a frame header: static link, dynamic link, return address,
    caller contour. *)
