(** Reference interpreter for DIR programs.

    A direct OCaml implementation of the DIR semantics, used as the oracle in
    differential tests: the Algol-S tree interpreter, this interpreter, and
    all four simulated-machine strategies must produce identical output for
    the same program.  It also produces the dynamic statistics (opcode
    mix, branch/call counts, per-instruction execution counts) that feed the
    workload characterisation. *)

type status =
  | Halted
  | Trapped of string    (** runtime error, e.g. division by zero *)
  | Out_of_fuel          (** step budget exhausted *)

type result = {
  status : status;
  output : string;               (** everything printed by the program *)
  steps : int;                   (** DIR instructions executed *)
  opcode_counts : int array;     (** dynamic count per {!Isa.opcode} enum *)
  instr_counts : int array;      (** execution count per instruction index *)
  max_operand_depth : int;       (** high-water mark of the operand stack *)
  max_frame_words : int;         (** high-water mark of the data memory *)
}

val run : ?fuel:int -> ?on_step:(int -> Isa.instr -> unit) -> Program.t -> result
(** [run p] executes [p] from its entry point.  [fuel] bounds the number of
    instructions (default 200 million).  [on_step pc instr] is called before
    each instruction executes — used to extract DIR reference traces. *)

val run_output : ?fuel:int -> Program.t -> string
(** [run_output p] is the output of a run that must halt cleanly;
    raises [Failure] on a trap or fuel exhaustion. *)
