(** Static statistics of a DIR program.

    These are the "frequency of occurrence of each operator and operand in
    the static representation of the program" (paper §3.2) from which the
    frequency-based encodings are constructed, plus summary numbers used in
    reports. *)

type t = {
  opcode_counts : int array;     (** static count per {!Isa.opcode} enum *)
  digram_counts : int array array;
  (** [digram_counts.(prev).(op)]: count of [op] appearing textually after
      [prev]; row [Isa.opcode_count] is the start-of-stream context used for
      instruction 0 and for every branch target. *)
  imm_values : int list;         (** all signed immediates, in order *)
  level_values : int list;       (** all static hop counts *)
  offset_values : int list;      (** all frame offsets *)
  target_values : int list;      (** all branch/call targets (indices) *)
  n_instructions : int;
}

val start_context : int
(** The distinguished predecessor context, [Isa.opcode_count]. *)

val n_contexts : int
(** [Isa.opcode_count + 1]. *)

val of_program : Program.t -> t

val digram_contexts : Program.t -> int array
(** The decoding context of every instruction: the textual predecessor's
    opcode enum, or {!start_context} for instruction 0, branch/call targets,
    return points (successors of [Call]) and successors of non-falling
    instructions.  Sound for dynamic decoding thanks to the compiler's
    no-fall-through-into-labels discipline. *)

val opcode_entropy : t -> float
(** First-order entropy of the static opcode distribution, bits/opcode. *)

val max_abs_imm : t -> int
val max_level : t -> int
val max_offset : t -> int
val max_target : t -> int
