(** DIR programs: code plus the contour table that contextual encoding and
    the runtime need.

    A {e contour} (Johnston's term, adopted by the paper in §3.2) is one
    lexical scope — here, one procedure body or the main program body.  The
    contextual encoder sizes the operand fields of an instruction from the
    contour it belongs to, so the table records, per contour, how many
    static levels are visible and how wide the widest frame offset is. *)

type contour = {
  id : int;
  name : string;       (** procedure name, or ["<main>"] *)
  depth : int;         (** static nesting depth; main = 0 *)
  n_args : int;
  n_locals : int;      (** locals including array storage, in words *)
  max_offset : int;    (** largest frame offset referenced from this contour *)
}

type t = {
  name : string;
  code : Isa.instr array;
  entry : int;                (** index of the first instruction of main *)
  contours : contour array;   (** contour 0 is the main body *)
  contour_map : int array option;
  (** exact contour id per instruction, when the producer (the compiler)
      knows it; [None] falls back to the scan heuristic of
      {!contour_of_instr} *)
}

val make : ?contour_map:int array -> name:string -> code:Isa.instr array
  -> entry:int -> contours:contour array -> unit -> t

val validate : t -> (unit, string) result
(** Structural sanity: targets in range, [Enter] contour ids valid, entry in
    range, every [Call] lands on an [Enter], hop counts within depth, code
    non-empty, final instruction of every path cannot run off the end
    (conservatively: the last instruction does not fall through). *)

val validate_exn : t -> t
(** [validate_exn p] is [p]; raises [Invalid_argument] when invalid. *)

val contour_of_instr : t -> int array
(** [contour_of_instr p] maps each instruction index to the contour id it
    belongs to, derived from [Enter] markers: an [Enter] opens its contour,
    which extends to the next [Enter]; instructions before the first [Enter]
    (the main preamble, if any) and from [entry] on belong to contour 0. *)

val listing : t -> string
(** Human-readable disassembly with indices and contour annotations. *)

val size_instructions : t -> int

val max_level : t -> int
(** Deepest static nesting depth in the program. *)
