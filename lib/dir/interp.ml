type status =
  | Halted
  | Trapped of string
  | Out_of_fuel

type result = {
  status : status;
  output : string;
  steps : int;
  opcode_counts : int array;
  instr_counts : int array;
  max_operand_depth : int;
  max_frame_words : int;
}

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

(* Growable data memory for frames; indices are word addresses. *)
module Data = struct
  type t = {
    mutable cells : int array;
    mutable top : int;       (* first free word *)
    mutable high_water : int;
  }

  let create () = { cells = Array.make 1024 0; top = 0; high_water = 0 }

  let grow_to t n =
    if n > Array.length t.cells then begin
      let capacity = ref (Array.length t.cells) in
      while !capacity < n do
        capacity := !capacity * 2
      done;
      let fresh = Array.make !capacity 0 in
      Array.blit t.cells 0 fresh 0 t.top;
      t.cells <- fresh
    end

  let set_top t n =
    grow_to t n;
    (* Zero newly exposed cells so reallocated frame space is clean. *)
    if n > t.top then Array.fill t.cells t.top (n - t.top) 0;
    t.top <- n;
    if n > t.high_water then t.high_water <- n

  let get t addr =
    if addr < 0 || addr >= t.top then trap "data read out of range: %d" addr;
    t.cells.(addr)

  let set t addr v =
    if addr < 0 || addr >= t.top then trap "data write out of range: %d" addr;
    t.cells.(addr) <- v
end

let default_fuel = 200_000_000

let run ?(fuel = default_fuel) ?on_step (p : Program.t) =
  let code = p.Program.code in
  let n = Array.length code in
  let data = Data.create () in
  let stack = ref [] in
  let stack_depth = ref 0 in
  let max_depth = ref 0 in
  let fp = ref 0 in
  let pc = ref p.Program.entry in
  let steps = ref 0 in
  let opcode_counts = Array.make Isa.opcode_count 0 in
  let instr_counts = Array.make n 0 in
  let out = Buffer.create 256 in
  let push v =
    stack := v :: !stack;
    incr stack_depth;
    if !stack_depth > !max_depth then max_depth := !stack_depth
  in
  let pop () =
    match !stack with
    | [] -> trap "operand stack underflow"
    | v :: rest ->
        stack := rest;
        decr stack_depth;
        v
  in
  let bool_of v = v <> 0 in
  let of_bool b = if b then 1 else 0 in
  (* Walk [hops] static links from the current frame. *)
  let walk hops =
    let base = ref !fp in
    for _ = 1 to hops do
      base := Data.get data !base
    done;
    !base
  in
  let var_addr hops off = walk hops + Isa.frame_header_size + off in
  (* Establish the main frame: self static link, null dynamic link, a return
     address that can never be reached, contour 0, then main's locals. *)
  let main = p.Program.contours.(0) in
  Data.set_top data (Isa.frame_header_size + main.Program.n_locals);
  Data.set data 0 0;
  Data.set data 1 0;
  Data.set data 2 (-1);
  Data.set data 3 0;
  let status = ref Halted in
  let binop f =
    let y = pop () in
    let x = pop () in
    push (f x y)
  in
  let compare_and_jump cmp target =
    let y = pop () in
    let x = pop () in
    if not (cmp x y) then pc := target
  in
  (try
     let running = ref true in
     while !running do
       if !steps >= fuel then begin
         status := Out_of_fuel;
         running := false
       end
       else begin
         if !pc < 0 || !pc >= n then trap "pc out of range: %d" !pc;
         let i = code.(!pc) in
         (match on_step with Some f -> f !pc i | None -> ());
         incr steps;
         opcode_counts.(Isa.opcode_to_enum i.Isa.op)
         <- opcode_counts.(Isa.opcode_to_enum i.Isa.op) + 1;
         instr_counts.(!pc) <- instr_counts.(!pc) + 1;
         let next = !pc + 1 in
         pc := next;
         (match i.Isa.op with
         | Isa.Lit -> push i.Isa.a
         | Isa.Load -> push (Data.get data (var_addr i.Isa.a i.Isa.b))
         | Isa.Store -> Data.set data (var_addr i.Isa.a i.Isa.b) (pop ())
         | Isa.Addr -> push (var_addr i.Isa.a i.Isa.b)
         | Isa.Loadi -> push (Data.get data (pop ()))
         | Isa.Storei ->
             let v = pop () in
             let addr = pop () in
             Data.set data addr v
         | Isa.Index ->
             let idx = pop () in
             let base = pop () in
             push (base + idx)
         | Isa.Dup ->
             let v = pop () in
             push v;
             push v
         | Isa.Drop -> ignore (pop ())
         | Isa.Swap ->
             let y = pop () in
             let x = pop () in
             push y;
             push x
         | Isa.Add -> binop ( + )
         | Isa.Sub -> binop ( - )
         | Isa.Mul -> binop ( * )
         | Isa.Div ->
             binop (fun x y -> if y = 0 then trap "division by zero" else x / y)
         | Isa.Mod ->
             binop (fun x y -> if y = 0 then trap "division by zero" else x mod y)
         | Isa.Neg -> push (-pop ())
         | Isa.Eq -> binop (fun x y -> of_bool (x = y))
         | Isa.Ne -> binop (fun x y -> of_bool (x <> y))
         | Isa.Lt -> binop (fun x y -> of_bool (x < y))
         | Isa.Le -> binop (fun x y -> of_bool (x <= y))
         | Isa.Gt -> binop (fun x y -> of_bool (x > y))
         | Isa.Ge -> binop (fun x y -> of_bool (x >= y))
         | Isa.And -> binop (fun x y -> of_bool (bool_of x && bool_of y))
         | Isa.Or -> binop (fun x y -> of_bool (bool_of x || bool_of y))
         | Isa.Not -> push (of_bool (pop () = 0))
         | Isa.Jump -> pc := i.Isa.a
         | Isa.Jz -> if pop () = 0 then pc := i.Isa.a
         | Isa.Call ->
             let sl = walk i.Isa.b in
             let base = data.Data.top in
             Data.set_top data (base + Isa.frame_header_size);
             Data.set data base sl;
             Data.set data (base + 1) !fp;
             Data.set data (base + 2) next;
             Data.set data (base + 3) 0;
             fp := base;
             pc := i.Isa.a
         | Isa.Enter ->
             let nargs = i.Isa.a and nlocals = i.Isa.b in
             let base = !fp in
             Data.set_top data (base + Isa.frame_header_size + nargs + nlocals);
             for k = nargs - 1 downto 0 do
               Data.set data (base + Isa.frame_header_size + k) (pop ())
             done
         | Isa.Ret ->
             let base = !fp in
             let ret = Data.get data (base + 2) in
             fp := Data.get data (base + 1);
             Data.set_top data base;
             pc := ret
         | Isa.Print ->
             Buffer.add_string out (string_of_int (pop ()));
             Buffer.add_char out '\n'
         | Isa.Printc ->
             let v = pop () in
             if v < 0 || v > 255 then trap "printc out of range: %d" v;
             Buffer.add_char out (Char.chr v)
         | Isa.Halt -> running := false
         | Isa.Litadd -> push (pop () + i.Isa.a)
         | Isa.Litsub -> push (pop () - i.Isa.a)
         | Isa.Litmul -> push (pop () * i.Isa.a)
         | Isa.Loadadd ->
             let v = Data.get data (var_addr i.Isa.a i.Isa.b) in
             push (pop () + v)
         | Isa.Loadsub ->
             let v = Data.get data (var_addr i.Isa.a i.Isa.b) in
             push (pop () - v)
         | Isa.Loadmul ->
             let v = Data.get data (var_addr i.Isa.a i.Isa.b) in
             push (pop () * v)
         | Isa.Incvar ->
             let addr = var_addr i.Isa.a i.Isa.b in
             Data.set data addr (Data.get data addr + 1)
         | Isa.Decvar ->
             let addr = var_addr i.Isa.a i.Isa.b in
             Data.set data addr (Data.get data addr - 1)
         | Isa.Cjeq -> compare_and_jump ( = ) i.Isa.a
         | Isa.Cjne -> compare_and_jump ( <> ) i.Isa.a
         | Isa.Cjlt -> compare_and_jump ( < ) i.Isa.a
         | Isa.Cjle -> compare_and_jump ( <= ) i.Isa.a
         | Isa.Cjgt -> compare_and_jump ( > ) i.Isa.a
         | Isa.Cjge -> compare_and_jump ( >= ) i.Isa.a)
       end
     done
   with Trap msg -> status := Trapped msg);
  {
    status = !status;
    output = Buffer.contents out;
    steps = !steps;
    opcode_counts;
    instr_counts;
    max_operand_depth = !max_depth;
    max_frame_words = data.Data.high_water;
  }

let run_output ?fuel p =
  let r = run ?fuel p in
  match r.status with
  | Halted -> r.output
  | Trapped msg -> failwith (Printf.sprintf "%s: trapped: %s" p.Program.name msg)
  | Out_of_fuel -> failwith (Printf.sprintf "%s: out of fuel" p.Program.name)
