(* The DIR — directly interpretable representation (paper §2.3).

   A stack-oriented intermediate instruction set with contour-relative
   variable addressing, produced by the Algol-S compiler.  The base opcodes
   form the low-semantic-level DIR; the [fused] superoperators are produced
   by the peephole fusion pass and raise the semantic level (paper §3.1: the
   level of a representation is raised "by increasing the complexity and
   variety of the opcodes"). *)

type opcode =
  (* stack and constants *)
  | Lit       (* push immediate [a] (signed) *)
  | Load      (* push variable at [a] static hops, offset [b] *)
  | Store     (* pop into variable ([a], [b]) *)
  | Addr      (* push the address of variable ([a], [b]) *)
  | Loadi     (* pop address, push its contents *)
  | Storei    (* pop value, pop address, store value at address *)
  | Index     (* pop index, pop base address, push base + index *)
  | Dup
  | Drop
  | Swap
  (* arithmetic and logic; binary ops pop y then x and push x op y *)
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Neg
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Not
  (* control: targets are instruction indices in the decoded form *)
  | Jump      (* jump to [a] *)
  | Jz        (* pop; jump to [a] if zero *)
  | Call      (* call procedure at [a]; [b] = static hops to its parent frame *)
  | Enter     (* procedure prologue: [a] args, [b] locals, [c] contour id *)
  | Ret       (* procedure epilogue; a value, if any, stays on the stack *)
  (* output *)
  | Print     (* pop and print as a decimal number followed by a newline *)
  | Printc    (* pop and print as a character *)
  | Halt
  (* superoperators (fusion pass) *)
  | Litadd    (* push [a]; Add *)
  | Litsub
  | Litmul
  | Loadadd   (* push variable ([a], [b]); Add *)
  | Loadsub
  | Loadmul
  | Incvar    (* variable ([a], [b]) += 1 *)
  | Decvar    (* variable ([a], [b]) -= 1 *)
  | Cjeq      (* pop y, pop x; jump to [a] unless x = y *)
  | Cjne
  | Cjlt
  | Cjle
  | Cjgt
  | Cjge
[@@deriving eq, ord, show { with_path = false }, enum]

let opcode_count = max_opcode + 1

let all_opcodes =
  Array.init opcode_count (fun i ->
      match opcode_of_enum i with
      | Some op -> op
      | None -> assert false)

(* Operand shape of each opcode: drives the interpreter, every encoder and
   the PSDER translation templates. *)
type shape =
  | Shape_none
  | Shape_imm          (* a: signed immediate *)
  | Shape_var          (* a: static hop count, b: offset within frame *)
  | Shape_target       (* a: branch target *)
  | Shape_call         (* a: target, b: static hops for the static link *)
  | Shape_enter        (* a: args, b: locals, c: contour id *)
[@@deriving eq, show { with_path = false }]

let shape = function
  | Lit | Litadd | Litsub | Litmul -> Shape_imm
  | Load | Store | Addr | Loadadd | Loadsub | Loadmul | Incvar | Decvar ->
      Shape_var
  | Jump | Jz | Cjeq | Cjne | Cjlt | Cjle | Cjgt | Cjge -> Shape_target
  | Call -> Shape_call
  | Enter -> Shape_enter
  | Loadi | Storei | Index | Dup | Drop | Swap | Add | Sub | Mul | Div | Mod
  | Neg | Eq | Ne | Lt | Le | Gt | Ge | And | Or | Not | Ret | Print | Printc
  | Halt ->
      Shape_none

let is_superop = function
  | Litadd | Litsub | Litmul | Loadadd | Loadsub | Loadmul | Incvar | Decvar
  | Cjeq | Cjne | Cjlt | Cjle | Cjgt | Cjge ->
      true
  | Lit | Load | Store | Addr | Loadi | Storei | Index | Dup | Drop | Swap
  | Add | Sub | Mul | Div | Mod | Neg | Eq | Ne | Lt | Le | Gt | Ge | And | Or
  | Not | Jump | Jz | Call | Enter | Ret | Print | Printc | Halt ->
      false

(* Whether control can fall through to the next instruction. *)
let falls_through = function
  | Jump | Ret | Halt -> false
  | _ -> true

type instr = {
  op : opcode;
  a : int;
  b : int;
  c : int;
}
[@@deriving eq, ord, show { with_path = false }]

let instr ?(a = 0) ?(b = 0) ?(c = 0) op = { op; a; b; c }

let mnemonic op =
  String.lowercase_ascii (show_opcode op)

let to_string { op; a; b; c } =
  match shape op with
  | Shape_none -> mnemonic op
  | Shape_imm -> Printf.sprintf "%s %d" (mnemonic op) a
  | Shape_var -> Printf.sprintf "%s %d,%d" (mnemonic op) a b
  | Shape_target -> Printf.sprintf "%s ->%d" (mnemonic op) a
  | Shape_call -> Printf.sprintf "%s ->%d hops=%d" (mnemonic op) a b
  | Shape_enter -> Printf.sprintf "%s args=%d locals=%d ctx=%d" (mnemonic op) a b c

(* Frame layout used by every execution engine (reference interpreter, host
   machine runtime, DER expansion):
     slot 0: static link (base of the lexically enclosing frame)
     slot 1: dynamic link (base of the caller's frame)
     slot 2: return address
     slot 3: caller's contour id (restored on Ret)
     slot 4..: parameters, then locals (offsets are relative to slot 4) *)
let frame_header_size = 4
