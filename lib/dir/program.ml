type contour = {
  id : int;
  name : string;
  depth : int;
  n_args : int;
  n_locals : int;
  max_offset : int;
}

type t = {
  name : string;
  code : Isa.instr array;
  entry : int;
  contours : contour array;
  contour_map : int array option;
}

let make ?contour_map ~name ~code ~entry ~contours () =
  { name; code; entry; contours; contour_map }

let size_instructions t = Array.length t.code

let max_level t =
  Array.fold_left (fun acc c -> max acc c.depth) 0 t.contours

let contour_of_instr t =
  match t.contour_map with
  | Some map -> Array.copy map
  | None ->
      let n = Array.length t.code in
      let result = Array.make n 0 in
      let current = ref 0 in
      for i = 0 to n - 1 do
        (match t.code.(i).Isa.op with
        | Isa.Enter -> current := t.code.(i).Isa.c
        | _ -> ());
        result.(i) <- (if i >= t.entry then 0 else !current)
      done;
      result

let validate t =
  let n = Array.length t.code in
  let n_contours = Array.length t.contours in
  let error fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_instr i { Isa.op; a; b; c } =
    match Isa.shape op with
    | Isa.Shape_none -> Ok ()
    | Isa.Shape_imm -> Ok ()
    | Isa.Shape_var ->
        if a < 0 then error "instr %d: negative hop count" i
        else if b < 0 then error "instr %d: negative offset" i
        else Ok ()
    | Isa.Shape_target ->
        if a < 0 || a >= n then error "instr %d: target %d out of range" i a
        else Ok ()
    | Isa.Shape_call ->
        if a < 0 || a >= n then error "instr %d: call target %d out of range" i a
        else if not (Isa.equal_opcode t.code.(a).Isa.op Isa.Enter) then
          error "instr %d: call target %d is not an enter" i a
        else if b < 0 then error "instr %d: negative static hops" i
        else Ok ()
    | Isa.Shape_enter ->
        if a < 0 || b < 0 then error "instr %d: negative enter counts" i
        else if c < 0 || c >= n_contours then
          error "instr %d: contour id %d out of range" i c
        else Ok ()
  in
  let rec check_all i =
    if i >= n then Ok ()
    else
      match check_instr i t.code.(i) with
      | Error _ as e -> e
      | Ok () -> check_all (i + 1)
  in
  if n = 0 then error "empty program"
  else if n_contours = 0 then error "no contours"
  else if t.entry < 0 || t.entry >= n then error "entry %d out of range" t.entry
  else if Isa.falls_through t.code.(n - 1).Isa.op then
    error "last instruction can fall off the end of the code"
  else check_all 0

let validate_exn t =
  match validate t with
  | Ok () -> t
  | Error msg -> invalid_arg (Printf.sprintf "Program.validate (%s): %s" t.name msg)

let listing t =
  let contour_of = contour_of_instr t in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "; program %s (entry %d)\n" t.name t.entry);
  Array.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "; contour %d %s depth=%d args=%d locals=%d maxoff=%d\n"
           c.id c.name c.depth c.n_args c.n_locals c.max_offset))
    t.contours;
  Array.iteri
    (fun i instr ->
      Buffer.add_string buf
        (Printf.sprintf "%s%4d  [c%d] %s\n"
           (if i = t.entry then "*" else " ")
           i contour_of.(i) (Isa.to_string instr)))
    t.code;
  Buffer.contents buf
