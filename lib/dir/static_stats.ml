type t = {
  opcode_counts : int array;
  digram_counts : int array array;
  imm_values : int list;
  level_values : int list;
  offset_values : int list;
  target_values : int list;
  n_instructions : int;
}

let start_context = Isa.opcode_count
let n_contexts = Isa.opcode_count + 1

(* The decoding context of instruction [i]: the textual predecessor's opcode
   when [i] can only be reached by falling through; the distinguished start
   context when [i] is ever entered by a control transfer.  A [Call]'s
   successor is a return point, reached via [Ret], so it also gets the start
   context.  The compiler's no-fall-through-into-labels discipline makes this
   assignment sound for dynamic decoding. *)
let context_at code is_target i =
  if
    i = 0 || is_target.(i)
    || (not (Isa.falls_through code.(i - 1).Isa.op))
    || Isa.equal_opcode code.(i - 1).Isa.op Isa.Call
  then start_context
  else Isa.opcode_to_enum code.(i - 1).Isa.op

let target_set (p : Program.t) =
  let code = p.Program.code in
  let n = Array.length code in
  let is_target = Array.make n false in
  Array.iter
    (fun { Isa.op; a; _ } ->
      match Isa.shape op with
      | Isa.Shape_target | Isa.Shape_call ->
          if a >= 0 && a < n then is_target.(a) <- true
      | _ -> ())
    code;
  if p.Program.entry < n then is_target.(p.Program.entry) <- true;
  is_target

let digram_contexts (p : Program.t) =
  let is_target = target_set p in
  Array.mapi (fun i _ -> context_at p.Program.code is_target i) p.Program.code

let of_program (p : Program.t) =
  let code = p.Program.code in
  let n = Array.length code in
  let opcode_counts = Array.make Isa.opcode_count 0 in
  let digram_counts = Array.make_matrix n_contexts Isa.opcode_count 0 in
  (* Instructions reachable only via a branch are decoded without a textual
     predecessor, so every branch target is counted in the start context. *)
  let is_target = target_set p in
  let imm = ref [] and lev = ref [] and off = ref [] and tgt = ref [] in
  Array.iteri
    (fun i { Isa.op; a; b; c = _ } ->
      let e = Isa.opcode_to_enum op in
      opcode_counts.(e) <- opcode_counts.(e) + 1;
      let ctx = context_at code is_target i in
      digram_counts.(ctx).(e) <- digram_counts.(ctx).(e) + 1;
      (match Isa.shape op with
      | Isa.Shape_none -> ()
      | Isa.Shape_imm -> imm := a :: !imm
      | Isa.Shape_var ->
          lev := a :: !lev;
          off := b :: !off
      | Isa.Shape_target -> tgt := a :: !tgt
      | Isa.Shape_call ->
          tgt := a :: !tgt;
          lev := b :: !lev
      | Isa.Shape_enter -> ()))
    code;
  {
    opcode_counts;
    digram_counts;
    imm_values = List.rev !imm;
    level_values = List.rev !lev;
    offset_values = List.rev !off;
    target_values = List.rev !tgt;
    n_instructions = n;
  }

let opcode_entropy t = Uhm_huffman.Freq.entropy t.opcode_counts

let max_of values = List.fold_left max 0 values
let max_abs_imm t = List.fold_left (fun acc v -> max acc (abs v)) 0 t.imm_values
let max_level t = max_of t.level_values
let max_offset t = max_of t.offset_values
let max_target t = max_of t.target_values
