type token =
  | Int of int
  | Ident of string
  | String of string
  | Kw of string
  | Punct of string
  | Eof

type located = {
  token : token;
  line : int;
  col : int;
}

exception Lex_error of string * int * int

let keywords =
  [
    "begin"; "end"; "integer"; "array"; "procedure"; "if"; "then"; "else";
    "while"; "do"; "for"; "to"; "downto"; "print"; "printc"; "write"; "call";
    "return"; "and"; "or"; "not"; "div"; "mod";
  ]

let is_keyword =
  let table = Hashtbl.create 31 in
  List.iter (fun k -> Hashtbl.replace table k ()) keywords;
  fun s -> Hashtbl.mem table s

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let token_to_string = function
  | Int n -> string_of_int n
  | Ident s -> s
  | String s -> Printf.sprintf "%S" s
  | Kw s -> s
  | Punct s -> s
  | Eof -> "<eof>"

let tokenize source =
  let n = String.length source in
  let line = ref 1 and col = ref 1 in
  let pos = ref 0 in
  let tokens = ref [] in
  let error msg = raise (Lex_error (msg, !line, !col)) in
  let peek () = if !pos < n then Some source.[!pos] else None in
  let advance () =
    (match source.[!pos] with
    | '\n' ->
        incr line;
        col := 1
    | _ -> incr col);
    incr pos
  in
  let emit_at line col token = tokens := { token; line; col } :: !tokens in
  let rec skip_comment depth_line depth_col =
    match peek () with
    | None ->
        raise (Lex_error ("unterminated comment", depth_line, depth_col))
    | Some '}' -> advance ()
    | Some _ ->
        advance ();
        skip_comment depth_line depth_col
  in
  while !pos < n do
    let start_line = !line and start_col = !col in
    let c = source.[!pos] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '{' then begin
      advance ();
      skip_comment start_line start_col
    end
    else if is_digit c then begin
      let start = !pos in
      while (match peek () with Some ch -> is_digit ch | None -> false) do
        advance ()
      done;
      let text = String.sub source start (!pos - start) in
      match int_of_string_opt text with
      | Some v -> emit_at start_line start_col (Int v)
      | None -> raise (Lex_error ("integer literal too large", start_line, start_col))
    end
    else if is_ident_start c then begin
      let start = !pos in
      while (match peek () with Some ch -> is_ident_char ch | None -> false) do
        advance ()
      done;
      let text = String.lowercase_ascii (String.sub source start (!pos - start)) in
      if is_keyword text then emit_at start_line start_col (Kw text)
      else emit_at start_line start_col (Ident text)
    end
    else if c = '"' then begin
      advance ();
      let buf = Buffer.create 16 in
      let rec scan () =
        match peek () with
        | None -> raise (Lex_error ("unterminated string", start_line, start_col))
        | Some '"' -> advance ()
        | Some '\n' -> raise (Lex_error ("newline in string", start_line, start_col))
        | Some ch ->
            Buffer.add_char buf ch;
            advance ();
            scan ()
      in
      scan ();
      emit_at start_line start_col (String (Buffer.contents buf))
    end
    else begin
      let two =
        if !pos + 1 < n then Some (String.sub source !pos 2) else None
      in
      match two with
      | Some ((":=" | "<=" | ">=" | "<>") as p) ->
          advance ();
          advance ();
          emit_at start_line start_col (Punct p)
      | _ -> (
          match c with
          | '(' | ')' | '[' | ']' | ',' | ';' | '=' | '<' | '>' | '+' | '-'
          | '*' | '/' ->
              advance ();
              emit_at start_line start_col (Punct (String.make 1 c))
          | _ -> error (Printf.sprintf "unexpected character %C" c))
    end
  done;
  tokens := { token = Eof; line = !line; col = !col } :: !tokens;
  List.rev !tokens
