open Ast

type status =
  | Halted
  | Trapped of string
  | Out_of_fuel

type result = {
  status : status;
  output : string;
  steps : int;
  name_lookups : int;
  name_comparisons : int;
}

exception Trap of string
exception Fuel_exhausted

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

type value =
  | Cell of int ref
  | Arr of int array
  | Procedure of proc

and proc = {
  params : string list;
  body : block;
  (* environment at declaration time (static scoping); a ref because the
     chain contains the procedure's own scope — tied after construction *)
  closure : scope list ref;
}

and scope = (string * value) list

exception Return_exc of int

let default_fuel = 200_000_000

let run ?(fuel = default_fuel) (p : program) =
  let steps = ref 0 in
  let lookups = ref 0 in
  let comparisons = ref 0 in
  let out = Buffer.create 256 in
  let tick () =
    incr steps;
    if !steps > fuel then raise Fuel_exhausted
  in
  (* The associative search the paper talks about: walk the scope chain,
     comparing names one by one. *)
  let lookup env name =
    incr lookups;
    let rec in_scope = function
      | [] -> None
      | (n, v) :: rest ->
          incr comparisons;
          if String.equal n name then Some v else in_scope rest
    in
    let rec in_chain = function
      | [] -> trap "undeclared name %s" name
      | scope :: outer -> (
          match in_scope scope with Some v -> v | None -> in_chain outer)
    in
    in_chain env
  in
  let as_cell name = function
    | Cell r -> r
    | Arr _ -> trap "array %s used as a scalar" name
    | Procedure _ -> trap "procedure %s used as a scalar" name
  in
  let as_array name = function
    | Arr a -> a
    | Cell _ -> trap "scalar %s used as an array" name
    | Procedure _ -> trap "procedure %s used as an array" name
  in
  let as_proc name = function
    | Procedure p -> p
    | Cell _ | Arr _ -> trap "%s is not a procedure" name
  in
  let subscript name a index =
    if index < 0 || index >= Array.length a then
      trap "index %d out of bounds for %s[%d]" index name (Array.length a);
    index
  in
  let rec eval env e =
    tick ();
    match e with
    | Num n -> n
    | Var name -> !(as_cell name (lookup env name))
    | Subscript (name, index_e) ->
        let a = as_array name (lookup env name) in
        let index = eval env index_e in
        a.(subscript name a index)
    | Call_expr (name, args) -> call env name args
    | Unop (Neg_op, e) -> -eval env e
    | Unop (Not_op, e) -> if eval env e = 0 then 1 else 0
    | Binop (And_op, lhs, rhs) ->
        (* no short-circuiting: matches the compiled DIR, which evaluates
           both operands *)
        let x = eval env lhs in
        let y = eval env rhs in
        if x <> 0 && y <> 0 then 1 else 0
    | Binop (Or_op, lhs, rhs) ->
        let x = eval env lhs in
        let y = eval env rhs in
        if x <> 0 || y <> 0 then 1 else 0
    | Binop (op, lhs, rhs) -> (
        let x = eval env lhs in
        let y = eval env rhs in
        match op with
        | Add_op -> x + y
        | Sub_op -> x - y
        | Mul_op -> x * y
        | Div_op -> if y = 0 then trap "division by zero" else x / y
        | Mod_op -> if y = 0 then trap "division by zero" else x mod y
        | Eq_op -> if x = y then 1 else 0
        | Ne_op -> if x <> y then 1 else 0
        | Lt_op -> if x < y then 1 else 0
        | Le_op -> if x <= y then 1 else 0
        | Gt_op -> if x > y then 1 else 0
        | Ge_op -> if x >= y then 1 else 0
        | And_op | Or_op -> assert false)

  and call env name args =
    let proc = as_proc name (lookup env name) in
    let arg_values = List.map (eval env) args in
    if List.length arg_values <> List.length proc.params then
      trap "arity mismatch calling %s" name;
    let param_scope =
      List.map2 (fun p v -> (p, Cell (ref v))) proc.params arg_values
    in
    (* Static scoping: the body runs in the declaration-time chain. *)
    let body_env = param_scope :: !(proc.closure) in
    try
      exec_block body_env proc.body;
      0 (* implicit "return 0" when control falls off the end *)
    with Return_exc v -> v

  and exec_block env b =
    (* All declarations of the block are visible throughout it, so the scope
       is built (with default values) before initialisers run. *)
    let scope =
      List.map
        (function
          | Var_decl (name, _) -> (name, Cell (ref 0))
          | Array_decl (name, size) -> (name, Arr (Array.make size 0))
          | Proc_decl (name, params, body) ->
              (name, Procedure { params; body; closure = ref [] }))
        b.decls
    in
    let env = scope :: env in
    (* Tie the knot: each procedure's closure is the full chain including the
       block's own scope, so siblings can call one another recursively. *)
    List.iter
      (function
        | _, Procedure p -> p.closure := env
        | _, (Cell _ | Arr _) -> ())
      scope;
    List.iter
      (function
        | Var_decl (name, Some init) ->
            let v = eval env init in
            (as_cell name (lookup env name)) := v
        | Var_decl (_, None) | Array_decl _ | Proc_decl _ -> ())
      b.decls;
    List.iter (exec env) b.stmts

  and exec env s =
    tick ();
    match s with
    | Skip -> ()
    | Assign (name, e) ->
        let v = eval env e in
        (as_cell name (lookup env name)) := v
    | Assign_sub (name, index_e, value_e) ->
        let a = as_array name (lookup env name) in
        let index = eval env index_e in
        let value = eval env value_e in
        a.(subscript name a index) <- value
    | If (cond, t, e) ->
        if eval env cond <> 0 then exec env t
        else Option.iter (exec env) e
    | While (cond, body) ->
        while eval env cond <> 0 do
          exec env body
        done
    | For (var, start_e, dir, stop_e, body) ->
        (* Same semantics the compiler emits: bounds evaluated once, loop
           variable live after the loop with the overshot value. *)
        let cell = as_cell var (lookup env var) in
        let start = eval env start_e in
        let stop = eval env stop_e in
        cell := start;
        let continue () =
          match dir with Upto -> !cell <= stop | Downto -> !cell >= stop
        in
        let bump () =
          match dir with Upto -> incr cell | Downto -> decr cell
        in
        while continue () do
          tick ();
          exec env body;
          bump ()
        done
    | Print e ->
        Buffer.add_string out (string_of_int (eval env e));
        Buffer.add_char out '\n'
    | Printc e ->
        let v = eval env e in
        if v < 0 || v > 255 then trap "printc out of range: %d" v;
        Buffer.add_char out (Char.chr v)
    | Write s -> Buffer.add_string out s
    | Call_stmt (name, args) -> ignore (call env name args)
    | Return None -> raise (Return_exc 0)
    | Return (Some e) -> raise (Return_exc (eval env e))
    | Block b -> exec_block env b
  in
  let status =
    try
      exec_block [] p.body;
      Halted
    with
    | Trap msg -> Trapped msg
    | Fuel_exhausted -> Out_of_fuel
    | Return_exc _ -> Trapped "return outside a procedure"
  in
  {
    status;
    output = Buffer.contents out;
    steps = !steps;
    name_lookups = !lookups;
    name_comparisons = !comparisons;
  }

let run_output ?fuel p =
  let r = run ?fuel p in
  match r.status with
  | Halted -> r.output
  | Trapped msg -> failwith (Printf.sprintf "%s: trapped: %s" p.name msg)
  | Out_of_fuel -> failwith (Printf.sprintf "%s: out of fuel" p.name)
