(** Pretty-printer for Algol-S.

    [to_string] emits parseable source: for every program [p],
    [Parser.parse (to_string p)] equals [p] up to {!Ast_normalize.normalize}
    (the printer inserts [begin .. end] around nested-[if] branches to pin
    down the dangling [else], which reparses as a singleton block). *)

val expr_to_string : Ast.expr -> string
val stmt_to_string : ?indent:int -> Ast.stmt -> string
val block_to_string : ?indent:int -> Ast.block -> string
val to_string : Ast.program -> string
