(* Abstract syntax of Algol-S, the block-structured HLR of this
   reproduction (paper §2.2).  The language is deliberately ALGOL-shaped:
   nested procedures with static scoping, blocks with local declarations,
   recursion, arrays — enough to make name binding genuinely dynamic for a
   direct interpreter and contour-relative for the compiler. *)

type unop =
  | Neg_op
  | Not_op
[@@deriving eq, show { with_path = false }]

type binop =
  | Add_op
  | Sub_op
  | Mul_op
  | Div_op
  | Mod_op
  | Eq_op
  | Ne_op
  | Lt_op
  | Le_op
  | Gt_op
  | Ge_op
  | And_op
  | Or_op
[@@deriving eq, show { with_path = false }]

type expr =
  | Num of int
  | Var of string
  | Subscript of string * expr
  | Call_expr of string * expr list
  | Unop of unop * expr
  | Binop of binop * expr * expr
[@@deriving eq, show { with_path = false }]

type direction =
  | Upto
  | Downto
[@@deriving eq, show { with_path = false }]

type stmt =
  | Assign of string * expr
  | Assign_sub of string * expr * expr   (* name[index] := value *)
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | For of string * expr * direction * expr * stmt
  | Print of expr
  | Printc of expr
  | Write of string                      (* emit a string literal *)
  | Call_stmt of string * expr list
  | Return of expr option
  | Block of block
  | Skip

and decl =
  | Var_decl of string * expr option
  | Array_decl of string * int
  | Proc_decl of string * string list * block

and block = {
  decls : decl list;
  stmts : stmt list;
}
[@@deriving eq, show { with_path = false }]

type program = {
  name : string;
  body : block;
}
[@@deriving eq, show { with_path = false }]

let binop_name = function
  | Add_op -> "+"
  | Sub_op -> "-"
  | Mul_op -> "*"
  | Div_op -> "div"
  | Mod_op -> "mod"
  | Eq_op -> "="
  | Ne_op -> "<>"
  | Lt_op -> "<"
  | Le_op -> "<="
  | Gt_op -> ">"
  | Ge_op -> ">="
  | And_op -> "and"
  | Or_op -> "or"

let unop_name = function
  | Neg_op -> "-"
  | Not_op -> "not"
