open Ast

(* Expressions are printed with minimal parentheses using the parser's
   precedence levels; correctness is property-tested by reparsing. *)

let prec_of_binop = function
  | Or_op -> 1
  | And_op -> 2
  | Eq_op | Ne_op | Lt_op | Le_op | Gt_op | Ge_op -> 4
  | Add_op | Sub_op -> 5
  | Mul_op | Div_op | Mod_op -> 6

let rec expr_prec level e =
  let atom = 8 in
  let text, prec =
    match e with
    | Num n when n < 0 -> (Printf.sprintf "(%d)" n, atom)
    | Num n -> (string_of_int n, atom)
    | Var name -> (name, atom)
    | Subscript (name, index) ->
        (Printf.sprintf "%s[%s]" name (expr_prec 0 index), atom)
    | Call_expr (name, args) ->
        ( Printf.sprintf "%s(%s)" name
            (String.concat ", " (List.map (expr_prec 0) args)),
          atom )
    | Unop (Neg_op, e) -> (Printf.sprintf "-%s" (expr_prec 7 e), 7)
    | Unop (Not_op, e) -> (Printf.sprintf "not %s" (expr_prec 3 e), 3)
    | Binop (op, lhs, rhs) ->
        let p = prec_of_binop op in
        (* All binary operators parse as right-associative chains at equal
           precedence for [or]/[and], and left-associative for the others;
           printing the left operand at [p] and the right at [p + 1] (or the
           converse for the logical operators) keeps the tree intact. *)
        let left_level, right_level =
          match op with
          | Or_op | And_op -> (p + 1, p)
          | Eq_op | Ne_op | Lt_op | Le_op | Gt_op | Ge_op -> (p + 1, p + 1)
          | _ -> (p, p + 1)
        in
        ( Printf.sprintf "%s %s %s" (expr_prec left_level lhs) (binop_name op)
            (expr_prec right_level rhs),
          p )
  in
  if prec < level then "(" ^ text ^ ")" else text

let expr_to_string e = expr_prec 0 e

let pad indent = String.make indent ' '

(* An [if] inside a dangling-else position must be wrapped so the printed
   program reparses with the same association. *)
let rec dangles = function
  | If (_, _, None) -> true
  | If (_, _, Some e) -> dangles e
  | While (_, body) | For (_, _, _, _, body) -> dangles body
  | _ -> false

let rec stmt_lines indent s =
  let p = pad indent in
  match s with
  | Skip -> [ p ^ ";" ]
  | Assign (name, e) -> [ Printf.sprintf "%s%s := %s;" p name (expr_to_string e) ]
  | Assign_sub (name, index, value) ->
      [
        Printf.sprintf "%s%s[%s] := %s;" p name (expr_to_string index)
          (expr_to_string value);
      ]
  | Print e -> [ Printf.sprintf "%sprint %s;" p (expr_to_string e) ]
  | Printc e -> [ Printf.sprintf "%sprintc %s;" p (expr_to_string e) ]
  | Write s -> [ Printf.sprintf "%swrite \"%s\";" p s ]
  | Return None -> [ p ^ "return;" ]
  | Return (Some e) -> [ Printf.sprintf "%sreturn %s;" p (expr_to_string e) ]
  | Call_stmt (name, args) ->
      [
        Printf.sprintf "%scall %s(%s);" p name
          (String.concat ", " (List.map expr_to_string args));
      ]
  | Block b -> (
      (* the trailing [;] keeps a following empty statement unambiguous *)
      match List.rev (block_lines indent b) with
      | last :: rest -> List.rev ((last ^ ";") :: rest)
      | [] -> [])
  | While (cond, body) ->
      (Printf.sprintf "%swhile %s do" p (expr_to_string cond))
      :: stmt_lines (indent + 2) body
  | For (var, start, dir, stop, body) ->
      (Printf.sprintf "%sfor %s := %s %s %s do" p var (expr_to_string start)
         (match dir with Upto -> "to" | Downto -> "downto")
         (expr_to_string stop))
      :: stmt_lines (indent + 2) body
  | If (cond, then_branch, else_branch) -> (
      let header = Printf.sprintf "%sif %s then" p (expr_to_string cond) in
      match else_branch with
      | None -> header :: stmt_lines (indent + 2) then_branch
      | Some else_branch ->
          let then_lines =
            if dangles then_branch then
              (pad (indent + 2) ^ "begin")
              :: stmt_lines (indent + 4) then_branch
              @ [ pad (indent + 2) ^ "end" ]
            else stmt_lines (indent + 2) then_branch
          in
          (header :: then_lines)
          @ [ p ^ "else" ]
          @ stmt_lines (indent + 2) else_branch)

and decl_lines indent d =
  let p = pad indent in
  match d with
  | Var_decl (name, None) -> [ Printf.sprintf "%sinteger %s;" p name ]
  | Var_decl (name, Some init) ->
      [ Printf.sprintf "%sinteger %s := %s;" p name (expr_to_string init) ]
  | Array_decl (name, size) ->
      [ Printf.sprintf "%sinteger array %s[%d];" p name size ]
  | Proc_decl (name, params, body) ->
      (Printf.sprintf "%sprocedure %s(%s);" p name (String.concat ", " params))
      :: (block_lines indent body @ [ "" ])
      |> fun lines ->
      (* the trailing separator [;] goes on the closing [end] *)
      (match List.rev lines with
      | "" :: last :: rest -> List.rev ((last ^ ";") :: rest)
      | _ -> lines)

and block_lines indent b =
  let p = pad indent in
  (p ^ "begin")
  :: (List.concat_map (decl_lines (indent + 2)) b.decls
     @ List.concat_map (stmt_lines (indent + 2)) b.stmts)
  @ [ p ^ "end" ]

let stmt_to_string ?(indent = 0) s = String.concat "\n" (stmt_lines indent s)
let block_to_string ?(indent = 0) b = String.concat "\n" (block_lines indent b)
let to_string (prog : program) = block_to_string prog.body ^ "\n"
