(** Static semantic checking of Algol-S programs.

    Scope rules: all declarations of a block are visible throughout that
    block, including inside procedure bodies declared in it (so mutually
    recursive procedures work); inner declarations shadow outer ones;
    duplicate names within one block are rejected.

    Checks performed: every name is declared; procedures are called (with the
    right arity), never read or assigned; arrays are always subscripted and
    never called or assigned wholesale; scalars are never subscripted or
    called; [for]-loop variables are scalars; array sizes are in
    [1 .. 1_000_000]; [return] appears only inside a procedure. *)

exception Check_error of string

val check : Ast.program -> (unit, string) result
val check_exn : Ast.program -> Ast.program
(** [check_exn p] is [p] if well formed; raises {!Check_error} otherwise. *)
