open Ast

exception Check_error of string

type kind =
  | Scalar
  | Array of int
  | Proc of int (* arity *)

let error fmt = Printf.ksprintf (fun s -> raise (Check_error s)) fmt

let lookup scopes name =
  let rec go = function
    | [] -> error "undeclared name: %s" name
    | scope :: outer -> (
        match List.assoc_opt name scope with
        | Some kind -> kind
        | None -> go outer)
  in
  go scopes

let max_array_size = 1_000_000

let scope_of_block b =
  let add scope (name, kind) =
    if List.mem_assoc name scope then
      error "duplicate declaration of %s in the same block" name
    else (name, kind) :: scope
  in
  List.fold_left
    (fun scope d ->
      match d with
      | Var_decl (name, _) -> add scope (name, Scalar)
      | Array_decl (name, size) ->
          if size <= 0 || size > max_array_size then
            error "array %s has invalid size %d" name size;
          add scope (name, Array size)
      | Proc_decl (name, params, _) ->
          let rec dup = function
            | [] -> ()
            | p :: rest ->
                if List.mem p rest then
                  error "duplicate parameter %s of procedure %s" p name;
                dup rest
          in
          dup params;
          add scope (name, Proc (List.length params)))
    [] b.decls

let rec check_expr scopes = function
  | Num _ -> ()
  | Var name -> (
      match lookup scopes name with
      | Scalar -> ()
      | Array _ -> error "array %s used without a subscript" name
      | Proc _ -> error "procedure %s used as a variable" name)
  | Subscript (name, index) ->
      (match lookup scopes name with
      | Array _ -> ()
      | Scalar -> error "scalar %s subscripted" name
      | Proc _ -> error "procedure %s subscripted" name);
      check_expr scopes index
  | Call_expr (name, args) ->
      check_call scopes name args
  | Unop (_, e) -> check_expr scopes e
  | Binop (_, lhs, rhs) ->
      check_expr scopes lhs;
      check_expr scopes rhs

and check_call scopes name args =
  (match lookup scopes name with
  | Proc arity ->
      if List.length args <> arity then
        error "procedure %s expects %d argument(s), got %d" name arity
          (List.length args)
  | Scalar | Array _ -> error "%s is not a procedure" name);
  List.iter (check_expr scopes) args

let rec check_stmt scopes ~in_proc = function
  | Skip -> ()
  | Assign (name, e) ->
      (match lookup scopes name with
      | Scalar -> ()
      | Array _ -> error "array %s assigned without a subscript" name
      | Proc _ -> error "procedure %s assigned" name);
      check_expr scopes e
  | Assign_sub (name, index, value) ->
      (match lookup scopes name with
      | Array _ -> ()
      | Scalar -> error "scalar %s subscripted" name
      | Proc _ -> error "procedure %s subscripted" name);
      check_expr scopes index;
      check_expr scopes value
  | If (cond, t, e) ->
      check_expr scopes cond;
      check_stmt scopes ~in_proc t;
      Option.iter (check_stmt scopes ~in_proc) e
  | While (cond, body) ->
      check_expr scopes cond;
      check_stmt scopes ~in_proc body
  | For (var, start, _, stop, body) ->
      (match lookup scopes var with
      | Scalar -> ()
      | Array _ | Proc _ -> error "for-loop variable %s is not a scalar" var);
      check_expr scopes start;
      check_expr scopes stop;
      check_stmt scopes ~in_proc body
  | Print e | Printc e -> check_expr scopes e
  | Write _ -> ()
  | Call_stmt (name, args) -> check_call scopes name args
  | Return e ->
      if not in_proc then error "return outside a procedure";
      Option.iter (check_expr scopes) e
  | Block b -> check_block scopes ~in_proc b

and check_block scopes ~in_proc b =
  let scope = scope_of_block b in
  let scopes = scope :: scopes in
  List.iter
    (function
      | Var_decl (_, init) -> Option.iter (check_expr scopes) init
      | Array_decl _ -> ()
      | Proc_decl (_, params, body) ->
          let param_scope = List.map (fun p -> (p, Scalar)) params in
          (* Parameters shadowing a sibling declaration are fine; duplicates
             among themselves were rejected above. *)
          check_block (param_scope :: scopes) ~in_proc:true body)
    b.decls;
  List.iter (check_stmt scopes ~in_proc) b.stmts

let check (p : program) =
  try
    check_block [] ~in_proc:false p.body;
    Ok ()
  with Check_error msg -> Error msg

let check_exn p =
  match check p with
  | Ok () -> p
  | Error msg -> raise (Check_error (Printf.sprintf "%s: %s" p.name msg))
