(** Hand-written lexer for Algol-S.

    Tokens carry their source position for error reporting.  Comments are
    enclosed in braces [{ ... }] and do not nest. *)

type token =
  | Int of int
  | Ident of string
  | String of string           (** double-quoted, for [write] *)
  | Kw of string               (** reserved word, lower case *)
  | Punct of string            (** one of ( ) [ ] , ; := = <> < <= > >= + - * *)
  | Eof

type located = {
  token : token;
  line : int;                  (** 1-based *)
  col : int;                   (** 1-based *)
}

exception Lex_error of string * int * int
(** [(message, line, col)] *)

val keywords : string list

val tokenize : string -> located list
(** [tokenize source] is the token stream ending in [Eof].
    Raises {!Lex_error} on an unrecognised character, an unterminated string
    or comment, or an integer literal that does not fit in an [int]. *)

val token_to_string : token -> string
