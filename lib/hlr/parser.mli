(** Recursive-descent parser for Algol-S.

    Grammar sketch (statement terminators are semicolons; [else] binds to the
    nearest [if]; [/] is accepted as a synonym for [div]):

    {v
    program  ::= block
    block    ::= "begin" decl... stmt... "end"
    decl     ::= "integer" ident (":=" expr)? ("," ident (":=" expr)?)... ";"
               | "integer" "array" ident "[" int "]" ";"
               | "procedure" ident ("(" ident ("," ident)... ")")? ";" block ";"
    stmt     ::= ident ":=" expr ";"
               | ident "[" expr "]" ":=" expr ";"
               | "call"? ident "(" (expr ("," expr)...)? ")" ";"
               | "if" expr "then" stmt ("else" stmt)?
               | "while" expr "do" stmt
               | "for" ident ":=" expr ("to"|"downto") expr "do" stmt
               | "print" expr ";" | "printc" expr ";" | "write" string ";"
               | "return" expr? ";"
               | block ";"?
               | ";"
    expr     ::= or-expr; precedence: or < and < not < comparison
                 < additive < multiplicative < unary minus
    v} *)

exception Parse_error of string * int * int
(** [(message, line, col)] *)

val parse : ?name:string -> string -> Ast.program
(** [parse ~name source] parses a whole program.
    Raises {!Parse_error} or {!Lexer.Lex_error}. *)

val parse_expr : string -> Ast.expr
(** [parse_expr source] parses a single expression (used by tests). *)
