(** Direct interpreter for Algol-S — execution at the HLR level.

    The paper (§2.2) observes that a high-level representation "implicitly
    assumes the existence of an associative memory; when the name of a
    variable is encountered, the name must be associated with the
    corresponding declaration" and that in real hardware this degenerates
    into "time-consuming table searches".  This interpreter makes that cost
    observable: environments are chains of association lists searched
    linearly, and the result reports how many searches and how many
    name-to-name comparisons were performed.

    Its observable behaviour (output, trap conditions) must coincide with the
    compiled DIR semantics on checked, in-bounds programs; this is enforced
    by differential tests. *)

type status =
  | Halted
  | Trapped of string
  | Out_of_fuel

type result = {
  status : status;
  output : string;
  steps : int;            (** expression/statement evaluation steps *)
  name_lookups : int;     (** associative searches performed *)
  name_comparisons : int; (** individual name comparisons during searches *)
}

val run : ?fuel:int -> Ast.program -> result
(** [run p] executes a {e checked} program (callers should run {!Check.check}
    first; behaviour on unchecked programs may raise).  [fuel] bounds the
    number of evaluation steps (default 200 million). *)

val run_output : ?fuel:int -> Ast.program -> string
(** Output of a clean run; raises [Failure] on trap or fuel exhaustion. *)
