(* Structural normalisation used by the parse/print round-trip property:
   a declaration-free block with zero or one statement is the same program
   as the statement itself, and the printer sometimes inserts such blocks
   to pin down the dangling [else]. *)

open Ast

let rec stmt = function
  | Block { decls = []; stmts = [] } -> Skip
  | Block { decls = []; stmts = [ s ] } -> stmt s
  | Block b -> Block (block b)
  | If (c, t, e) -> If (c, stmt t, Option.map stmt e)
  | While (c, body) -> While (c, stmt body)
  | For (v, a, d, b, body) -> For (v, a, d, b, stmt body)
  | (Assign _ | Assign_sub _ | Print _ | Printc _ | Write _ | Call_stmt _
    | Return _ | Skip) as s ->
      s

and decl = function
  | Proc_decl (name, params, body) -> Proc_decl (name, params, block body)
  | (Var_decl _ | Array_decl _) as d -> d

and block b = { decls = List.map decl b.decls; stmts = List.map stmt b.stmts }

let normalize (p : program) = { p with body = block p.body }
