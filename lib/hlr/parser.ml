open Ast

exception Parse_error of string * int * int

type state = {
  mutable tokens : Lexer.located list;
}

let peek st =
  match st.tokens with
  | [] -> { Lexer.token = Lexer.Eof; line = 0; col = 0 }
  | t :: _ -> t

let advance st =
  match st.tokens with
  | [] -> ()
  | _ :: rest -> st.tokens <- rest

let error_at (t : Lexer.located) fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (s, t.Lexer.line, t.Lexer.col))) fmt

let expect st token =
  let t = peek st in
  if t.Lexer.token = token then advance st
  else
    error_at t "expected %s, found %s"
      (Lexer.token_to_string token)
      (Lexer.token_to_string t.Lexer.token)

let expect_kw st kw = expect st (Lexer.Kw kw)
let expect_punct st p = expect st (Lexer.Punct p)

let accept_punct st p =
  match (peek st).Lexer.token with
  | Lexer.Punct q when q = p ->
      advance st;
      true
  | _ -> false

let accept_kw st kw =
  match (peek st).Lexer.token with
  | Lexer.Kw q when q = kw ->
      advance st;
      true
  | _ -> false

let expect_ident st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.Ident name ->
      advance st;
      name
  | other -> error_at t "expected identifier, found %s" (Lexer.token_to_string other)

let expect_int st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.Int v ->
      advance st;
      v
  | other -> error_at t "expected integer, found %s" (Lexer.token_to_string other)

(* -- Expressions ---------------------------------------------------------- *)

let rec parse_or st =
  let lhs = parse_and st in
  if accept_kw st "or" then Binop (Or_op, lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept_kw st "and" then Binop (And_op, lhs, parse_and st) else lhs

and parse_not st =
  if accept_kw st "not" then Unop (Not_op, parse_not st) else parse_comparison st

and parse_comparison st =
  let lhs = parse_additive st in
  let compare op =
    advance st;
    Binop (op, lhs, parse_additive st)
  in
  match (peek st).Lexer.token with
  | Lexer.Punct "=" -> compare Eq_op
  | Lexer.Punct "<>" -> compare Ne_op
  | Lexer.Punct "<" -> compare Lt_op
  | Lexer.Punct "<=" -> compare Le_op
  | Lexer.Punct ">" -> compare Gt_op
  | Lexer.Punct ">=" -> compare Ge_op
  | _ -> lhs

and parse_additive st =
  let rec loop lhs =
    if accept_punct st "+" then loop (Binop (Add_op, lhs, parse_multiplicative st))
    else if accept_punct st "-" then loop (Binop (Sub_op, lhs, parse_multiplicative st))
    else lhs
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop lhs =
    if accept_punct st "*" then loop (Binop (Mul_op, lhs, parse_unary st))
    else if accept_punct st "/" then loop (Binop (Div_op, lhs, parse_unary st))
    else if accept_kw st "div" then loop (Binop (Div_op, lhs, parse_unary st))
    else if accept_kw st "mod" then loop (Binop (Mod_op, lhs, parse_unary st))
    else lhs
  in
  loop (parse_unary st)

and parse_unary st =
  if accept_punct st "-" then Unop (Neg_op, parse_unary st) else parse_primary st

and parse_primary st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.Int v ->
      advance st;
      Num v
  | Lexer.Punct "(" ->
      advance st;
      let e = parse_or st in
      expect_punct st ")";
      e
  | Lexer.Ident name ->
      advance st;
      if accept_punct st "[" then begin
        let index = parse_or st in
        expect_punct st "]";
        Subscript (name, index)
      end
      else if accept_punct st "(" then Call_expr (name, parse_args st)
      else Var name
  | other -> error_at t "expected expression, found %s" (Lexer.token_to_string other)

and parse_args st =
  if accept_punct st ")" then []
  else
    let rec loop acc =
      let e = parse_or st in
      if accept_punct st "," then loop (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    loop []

let parse_expression st = parse_or st

(* -- Declarations and statements ------------------------------------------ *)

let rec parse_block st =
  expect_kw st "begin";
  let decls = parse_decls st [] in
  let stmts = parse_stmts st [] in
  expect_kw st "end";
  { decls; stmts }

and parse_decls st acc =
  match (peek st).Lexer.token with
  | Lexer.Kw "integer" ->
      advance st;
      if accept_kw st "array" then begin
        let name = expect_ident st in
        expect_punct st "[";
        let size = expect_int st in
        expect_punct st "]";
        expect_punct st ";";
        parse_decls st (Array_decl (name, size) :: acc)
      end
      else begin
        let rec vars acc =
          let name = expect_ident st in
          let init = if accept_punct st ":=" then Some (parse_expression st) else None in
          let acc = Var_decl (name, init) :: acc in
          if accept_punct st "," then vars acc
          else begin
            expect_punct st ";";
            acc
          end
        in
        parse_decls st (vars acc)
      end
  | Lexer.Kw "procedure" ->
      advance st;
      let name = expect_ident st in
      let params =
        if accept_punct st "(" then begin
          if accept_punct st ")" then []
          else
            let rec loop acc =
              let p = expect_ident st in
              if accept_punct st "," then loop (p :: acc)
              else begin
                expect_punct st ")";
                List.rev (p :: acc)
              end
            in
            loop []
        end
        else []
      in
      expect_punct st ";";
      let body = parse_block st in
      expect_punct st ";";
      parse_decls st (Proc_decl (name, params, body) :: acc)
  | _ -> List.rev acc

and parse_stmts st acc =
  match (peek st).Lexer.token with
  | Lexer.Kw "end" | Lexer.Eof -> List.rev acc
  | _ ->
      let s = parse_stmt st in
      parse_stmts st (s :: acc)

and parse_stmt st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.Punct ";" ->
      advance st;
      Skip
  | Lexer.Kw "begin" ->
      let b = parse_block st in
      ignore (accept_punct st ";");
      Block b
  | Lexer.Kw "if" ->
      advance st;
      let cond = parse_expression st in
      expect_kw st "then";
      let then_branch = parse_stmt st in
      let else_branch = if accept_kw st "else" then Some (parse_stmt st) else None in
      If (cond, then_branch, else_branch)
  | Lexer.Kw "while" ->
      advance st;
      let cond = parse_expression st in
      expect_kw st "do";
      While (cond, parse_stmt st)
  | Lexer.Kw "for" ->
      advance st;
      let var = expect_ident st in
      expect_punct st ":=";
      let start = parse_expression st in
      let dir =
        if accept_kw st "to" then Upto
        else if accept_kw st "downto" then Downto
        else error_at (peek st) "expected to or downto"
      in
      let stop = parse_expression st in
      expect_kw st "do";
      For (var, start, dir, stop, parse_stmt st)
  | Lexer.Kw "print" ->
      advance st;
      let e = parse_expression st in
      expect_punct st ";";
      Print e
  | Lexer.Kw "printc" ->
      advance st;
      let e = parse_expression st in
      expect_punct st ";";
      Printc e
  | Lexer.Kw "write" ->
      advance st;
      let t = peek st in
      (match t.Lexer.token with
      | Lexer.String s ->
          advance st;
          expect_punct st ";";
          Write s
      | other -> error_at t "expected string literal, found %s" (Lexer.token_to_string other))
  | Lexer.Kw "return" ->
      advance st;
      if accept_punct st ";" then Return None
      else begin
        let e = parse_expression st in
        expect_punct st ";";
        Return (Some e)
      end
  | Lexer.Kw "call" ->
      advance st;
      let name = expect_ident st in
      let args = if accept_punct st "(" then parse_args st else [] in
      expect_punct st ";";
      Call_stmt (name, args)
  | Lexer.Ident name ->
      advance st;
      if accept_punct st "[" then begin
        let index = parse_expression st in
        expect_punct st "]";
        expect_punct st ":=";
        let value = parse_expression st in
        expect_punct st ";";
        Assign_sub (name, index, value)
      end
      else if accept_punct st "(" then begin
        let args = parse_args st in
        expect_punct st ";";
        Call_stmt (name, args)
      end
      else begin
        expect_punct st ":=";
        let value = parse_expression st in
        expect_punct st ";";
        Assign (name, value)
      end
  | other -> error_at t "expected statement, found %s" (Lexer.token_to_string other)

let parse ?(name = "<program>") source =
  let st = { tokens = Lexer.tokenize source } in
  let body = parse_block st in
  ignore (accept_punct st ";");
  expect st Lexer.Eof;
  { name; body }

let parse_expr source =
  let st = { tokens = Lexer.tokenize source } in
  let e = parse_expression st in
  expect st Lexer.Eof;
  e
