(** The analytic performance model of paper §7.

    Average DIR-instruction interpretation time for the three machines:

    - [t1]: conventional UHM —  {m T_1 = s_2 τ_2 + d + x }
    - [t2]: UHM with a DTB —
      {m T_2 = s_1 τ_D + (1 - h_D) s_2 τ_2 + (1 - h_D)(d + g) + x }
    - [t3]: UHM with an instruction cache —
      {m T_3 = h_c s_2 τ_D + (1 - h_c) s_2 τ_2 + d + x }

    and the two figures of merit, both normalised by [t2]:
    [f1 = (T_3 - T_2) / T_2] (cost of using the DTB's memory as a plain
    instruction cache instead) and [f2 = (T_1 - T_2) / T_2] (cost of having
    no DTB at all).

    All quantities are in units of the level-1 access time. *)

type params = {
  tau1 : float;   (** level-1 access time (the time unit; normally 1) *)
  tau2 : float;   (** level-2 access time *)
  tau_d : float;  (** DTB / cache access time *)
  d : float;      (** decode time per DIR instruction *)
  g : float;      (** PSDER generation time per translated instruction *)
  x : float;      (** semantic-routine time per DIR instruction *)
  s1 : float;     (** level-1 references per PSDER version of one DIR instr *)
  s2 : float;     (** level-2 references per DIR instruction fetch *)
  h_c : float;    (** instruction-cache hit ratio *)
  h_d : float;    (** DTB hit ratio *)
}

val paper_defaults : d:float -> x:float -> params
(** The representative values of §7: τ₁ = 1, τ_D = 2, τ₂ = 10, g = 1.5 d,
    s₁ = 3, s₂ = 1, h_c = 0.9, h_D = 0.8. *)

val t1 : params -> float
val t2 : params -> float
val t3 : params -> float

val f1 : params -> float
(** Percentage increase in average interpretation time from using the DTB
    store as an instruction cache: [(t3 - t2) / t2 * 100]. *)

val f2 : params -> float
(** Percentage increase from not using a DTB: [(t1 - t2) / t2 * 100]. *)

(** The printed closed forms of the 1978 report, which regenerate its
    Tables 2 and 3 exactly.  They correspond to the general model with
    g = d (not the stated 1.5 d) and an effective s₂τ₂ of 15.4 in T₁; the
    report's arithmetic is internally inconsistent with its stated
    parameter list — see EXPERIMENTS.md. *)
module Printed : sig
  val f1 : d:float -> x:float -> float
  (** [(0.4 + 0.6 d) / (8 + 0.4 d + x) * 100] *)

  val f2 : d:float -> x:float -> float
  (** [(7.4 + 0.6 d) / (8 + 0.4 d + x) * 100] *)
end

val table_rows : int list
(** The d values of Tables 2-3: [10; 20; 30]. *)

val table_cols : int list
(** The x values of Tables 2-3: [5; 10; 15; 20; 25; 30]. *)

val paper_table2 : float array array
(** [paper_table2.(i).(j)] is Table 2's printed value at
    [(List.nth table_rows i, List.nth table_cols j)]. *)

val paper_table3 : float array array

val regenerate_table2 : unit -> float array array
(** {!Printed.f1} over the same grid. *)

val regenerate_table3 : unit -> float array array
