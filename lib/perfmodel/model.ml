type params = {
  tau1 : float;
  tau2 : float;
  tau_d : float;
  d : float;
  g : float;
  x : float;
  s1 : float;
  s2 : float;
  h_c : float;
  h_d : float;
}

let paper_defaults ~d ~x =
  {
    tau1 = 1.;
    tau2 = 10.;
    tau_d = 2.;
    d;
    g = 1.5 *. d;
    x;
    s1 = 3.;
    s2 = 1.;
    h_c = 0.9;
    h_d = 0.8;
  }

let t1 p = (p.s2 *. p.tau2) +. p.d +. p.x

let t2 p =
  (p.s1 *. p.tau_d)
  +. ((1. -. p.h_d) *. p.s2 *. p.tau2)
  +. ((1. -. p.h_d) *. (p.d +. p.g))
  +. p.x

let t3 p =
  (p.h_c *. p.s2 *. p.tau_d) +. ((1. -. p.h_c) *. p.s2 *. p.tau2) +. p.d +. p.x

let f1 p = (t3 p -. t2 p) /. t2 p *. 100.
let f2 p = (t1 p -. t2 p) /. t2 p *. 100.

module Printed = struct
  let denominator ~d ~x = 8. +. (0.4 *. d) +. x
  let f1 ~d ~x = (0.4 +. (0.6 *. d)) /. denominator ~d ~x *. 100.
  let f2 ~d ~x = (7.4 +. (0.6 *. d)) /. denominator ~d ~x *. 100.
end

let table_rows = [ 10; 20; 30 ]
let table_cols = [ 5; 10; 15; 20; 25; 30 ]

let paper_table2 =
  [|
    [| 37.65; 29.09; 23.7; 20.; 17.3; 15.24 |];
    [| 59.05; 47.69; 40.; 34.44; 30.24; 26.96 |];
    [| 73.6; 61.33; 52.57; 46.; 40.89; 36.8 |];
  |]

let paper_table3 =
  [|
    [| 78.82; 60.91; 49.63; 41.88; 36.22; 31.90 |];
    [| 92.38; 74.62; 62.58; 53.89; 47.32; 42.17 |];
    [| 101.6; 84.67; 72.57; 63.5; 56.44; 50.8 |];
  |]

let grid f =
  Array.of_list
    (List.map
       (fun d ->
         Array.of_list
           (List.map (fun x -> f ~d:(float_of_int d) ~x:(float_of_int x))
              table_cols))
       table_rows)

let regenerate_table2 () = grid Printed.f1
let regenerate_table3 () = grid Printed.f2
