(** Splittable deterministic pseudo-random streams (SplitMix64).

    The repo's one source of randomness: a 64-bit counter advanced by the
    golden gamma and finalised through a 3-round mixer.  {!split} derives
    an independent child stream from a parent by mixing a fresh draw into
    a new state, so a tree of streams can be carved out of one seed and
    each leaf's sequence is reproducible regardless of how (or whether)
    the other leaves are consumed.

    Extracted from the fault injector (PR 4) so that other layers — the
    open-arrival load generator in particular — can draw from the same
    generator without depending on [uhm_fault].  The draw sequences are
    bit-identical to the injector's original in-module implementation:
    existing seeded campaign goldens must not change. *)

type t
(** A stream.  Mutable; not thread-safe — give each domain its own. *)

val golden_gamma : int64
(** The SplitMix64 increment, [0x9E3779B97F4A7C15]. *)

val mix64 : int64 -> int64
(** The 3-round avalanche finalizer. *)

val of_state : int64 -> t
(** A stream whose next draw is [mix64 (state + golden_gamma)].  The
    caller is responsible for pre-mixing raw seeds (see {!create}). *)

val create : seed:int -> stream:int -> t
(** The canonical root stream for an [(seed, stream)] pair:
    state [mix64 (seed + golden_gamma * (stream + 1))].  With [stream]
    an ASID this is exactly the fault injector's per-program root.
    Raises [Invalid_argument] on a negative [stream]. *)

val next_i64 : t -> int64
(** The raw 64-bit draw. *)

val next_int : t -> int
(** A non-negative 62-bit draw (so selection arithmetic stays in [int]). *)

val next_float : t -> float
(** Uniform in [0, 1) from the top 53 bits. *)

val split : t -> t
(** An independent child stream; advances the parent by one draw. *)

val geometric : t -> p:float -> int
(** The number of Bernoulli([p]) trials up to and including the first
    success — an inter-arrival gap for a per-step event probability.
    Always at least 1; [max_int] when [p] is so small the gap overflows.
    Consumes exactly one draw. *)

val exponential : t -> rate:float -> int
(** An integer-rounded exponential inter-arrival gap with mean
    [1. /. rate] (in whatever time unit the caller uses), at least 1.
    [max_int] on a non-positive rate or overflow.  Consumes exactly one
    draw. *)
