(** The universal host machine, assembled: one entry point that runs a DIR
    program under each of the paper's machine configurations.

    - {!Interp}: the conventional UHM (paper §7 case 1) — fetch from
      level 2, decode, dispatch, execute; every instruction, every time.
    - {!Cached}: case 3 — the same interpreter with an instruction cache
      over the DIR stream.
    - {!Dtb_strategy}: case 2, the paper's contribution — a dynamic
      translation buffer holds PSDER translations of the working set;
      hits skip fetch and decode entirely.
    - {!Psder_static}: the whole program pre-translated to short-format
      code resident in level-2 memory (a PSDER as the {e static}
      representation; Figure 1's execution-time-optimal static point).
    - {!Der}: the expanded-machine-language representation, optionally
      level-2 resident (with or without an instruction cache) to model its
      size exceeding the fast store.

    All strategies execute the same semantic-routine library on the same
    simulated machine and must produce identical output. *)

module Machine := Uhm_machine.Machine
module Timing := Uhm_machine.Timing

type der_residence =
  | Der_level1                 (** host code in the fast store (idealised) *)
  | Der_level2                 (** every instruction fetch pays t2 *)
  | Der_level2_cached of int   (** icache of given capacity (bytes) *)

type strategy =
  | Interp
  | Cached of int              (** icache capacity in bytes *)
  | Dtb_strategy of Dtb.config
  | Dtb_blocks of Dtb.config * int
      (** like {!Dtb_strategy}, but the translator translates straight-line
          runs of up to the given number of DIR instructions into a single
          buffer entry — basic-block translation, the modern-JIT refinement
          of the paper's per-instruction units *)
  | Dtb_two_level of Dtb.config * int
      (** a fully-associative second-level decoded-instruction store of the
          given capacity (entries) behind the DTB: a translation miss that
          hits it skips the decode and pays only the generation cost —
          the paper's §4 "number of levels of dynamic translation" *)
  | Psder_static
  | Der of der_residence

val strategy_name : strategy -> string

type result = {
  strategy : strategy;
  status : Machine.status;
  output : string;
  cycles : int;
  machine_stats : Machine.stats;
  dir_steps : int;             (** DIR instructions executed (from the
                                   reference interpreter; all strategies
                                   execute the same instruction stream) *)
  dtb_hit_ratio : float option;
  dtb_misses : int option;
  dtb_evictions : int option;
  dtb_overflow_allocations : int option;
  dtb_emitted_words : int option;
  dtb_l2_hit_ratio : float option;
  icache_hit_ratio : float option;
  static_size_bits : int;      (** the program representation itself *)
  support_size_bits : int;     (** interpreter/translator code + decode
                                   tables + DTB buffer *)
}

val cycles_per_dir_instruction : result -> float

val dir_steps_reference : Uhm_dir.Program.t -> int
(** Run the reference DIR interpreter and count its steps (the pre-pass
    behind every result's [dir_steps] field). *)

val dir_steps_memoized : Uhm_dir.Program.t -> int
(** Like {!dir_steps_reference}, but served from a bounded, physically
    keyed, mutex-protected memo shared across strategies and sweep
    workers — a sweep re-simulates each program once per strategy but
    pays the reference pre-pass only once per program. *)

val run : ?timing:Timing.t -> ?fuel:int -> ?layout:Uhm_psder.Layout.t
  -> ?backend:Machine.backend -> ?decode_assist:bool -> ?compound_datapath:bool
  -> ?runner:(Machine.t -> Machine.status) -> strategy:strategy
  -> kind:Uhm_encoding.Kind.t -> Uhm_dir.Program.t -> result
(** [run ~strategy ~kind p] encodes [p] with [kind] (ignored by
    {!Psder_static} and {!Der}, which work from the decoded program) and
    executes it to completion.

    [backend] (default [`Decode]) selects the host execution backend; see
    {!Machine.backend}.  [`Threaded] produces identical results and
    statistics, only faster in host wall-clock time.  For DTB strategies
    the compiled-closure cache is wired to the DTB lifecycle: closures die
    exactly with the directory entry that owns their words.

    [decode_assist] (interpreted and DTB strategies only) replaces the
    software decode routine with a single-instruction hardware decode unit —
    the paper's §8 alternative to the DTB ("powerful hardware aids to the
    decoding process", i.e. random logic instead of memory).

    [runner] (default [Machine.run]) performs the actual execution; pass a
    loop over [Machine.run_for]/[run_dir_quantum] to exercise sliced
    execution — any runner that drives the machine out of [Running]
    produces a bit-identical result. *)

val run_encoded : ?timing:Timing.t -> ?fuel:int -> ?layout:Uhm_psder.Layout.t
  -> ?backend:Machine.backend -> ?decode_assist:bool -> ?compound_datapath:bool
  -> ?runner:(Machine.t -> Machine.status) -> strategy:strategy
  -> Uhm_encoding.Codec.encoded -> result
(** Like {!run} for a pre-encoded program (avoids re-encoding in sweeps).
    Raises [Invalid_argument] for {!Psder_static}/{!Der}, which do not take
    an encoding. *)

val prepare_dtb_shared : ?timing:Timing.t -> ?fuel:int
  -> ?layout:Uhm_psder.Layout.t -> ?backend:Machine.backend
  -> ?on_translation:(dir_addr:int -> unit)
  -> dtb:Dtb.t -> Uhm_encoding.Codec.encoded -> Machine.t
(** Set up (but do not run) a machine that executes [encoded] against a
    {e shared} DTB owned by the caller — the multiprogramming layer's
    entry point.  The DTB must have been created at buffer base
    [layout.dtb_buffer_base + 1] (the word after the bootstrap INTERP).
    Each program gets its own machine and memory image at the same
    layout, so a shared entry's buffer address is valid in every address
    space; the programs contend for the translation {e directory} (tags,
    capacity, overflow blocks), and a program only ever executes
    translations it installed itself.  [on_translation] fires at every
    translation this machine starts (the trace layer's tap).  The caller
    drives execution with [Machine.run_dir_quantum] and owns
    [Dtb.switch_to] at context switches. *)

val prepare_dtb_custom : ?timing:Timing.t -> ?fuel:int
  -> ?layout:Uhm_psder.Layout.t -> ?backend:Machine.backend
  -> ?on_emit:(addr:int -> word:int -> unit)
  -> ?on_end_translation:(start_addr:int -> unit)
  -> make_interp:(translator_entry:int ->
                  Machine.t -> dir_addr:int -> dctx:int -> unit)
  -> dtb:Dtb.t -> Uhm_encoding.Codec.encoded -> Machine.t * int
(** The general form of {!prepare_dtb_shared}: the caller supplies the
    INTERP hook itself (given the generated translator's entry point —
    also returned, so the hook can be swapped later) and may observe
    every word written into the translation buffer ([on_emit], fired for
    emitted words {e and} overflow-chain links) and every completed
    translation ([on_end_translation], fired with the entry's start
    address before control transfers to it).  The resilience layer's
    per-entry guards and fault hooks are built on these taps.  With the
    default no-op taps and a [make_interp] that performs the plain
    lookup/translate protocol, the machine is cycle-identical to
    {!prepare_dtb_shared}'s — which is itself now a thin wrapper. *)

val prepare_interp : ?timing:Timing.t -> ?fuel:int
  -> ?layout:Uhm_psder.Layout.t -> ?backend:Machine.backend
  -> Uhm_encoding.Codec.encoded -> Machine.t
(** Set up (but do not run) a plain interpreter machine (no icache, no
    decode assist, no compound datapath) for [encoded] — the watchdog's
    {e downgrade} target when dynamic translation is demoted to pure DIR
    interpretation.  The machine is returned suspended at the
    interpreter's entry with [dpc] at the program entry; a caller grafting
    mid-flight state overwrites the registers, stacks and data region
    before resuming it with [Machine.run_for]. *)
