(** The parallel sweep engine: a Domain-based worker pool for experiment
    grids.

    Every experiment in EXPERIMENTS.md is a grid of independent pure
    simulations (program x strategy x encoding x configuration).  This
    module evaluates such grids across cores while guaranteeing that the
    result list is returned {e in submission order}, so any output derived
    from it is byte-identical whether the sweep ran on 1 domain or N —
    parallelism changes wall-clock time only, never a single reported
    number.

    The pool is a classic work queue: a mutex-and-condition protected
    cursor over the job array; each worker repeatedly claims the next
    index, evaluates it, and stores the result in that index's slot.
    Because slots are disjoint and [Domain.join]/the completion barrier
    provide the happens-before edge, no result is ever observed partially
    written.

    Jobs must be pure (or at least independent): a job must not mutate
    state shared with another job.

    {b Re-entrancy.}  Calling {!map_pool} (or {!map_pool_supervised}) on a
    pool from inside one of that same pool's jobs can never make progress
    (the job would wait on a batch the pool cannot start), so it raises
    [Invalid_argument] immediately — detected through an ambient in-job
    marker, on both the serial and the parallel path.  Nested sweeps are
    fine as long as they use a different pool; in particular {!map} and
    {!map_supervised}, which build a private one-shot pool, are always
    safe to call from inside a job.

    {b Degraded mode.}  If [Domain.spawn] fails while building a pool
    (resource limits, runtime cap), {!create} keeps the workers it managed
    to spawn — possibly none, i.e. serial execution — and logs a warning
    to stderr instead of aborting.  All determinism guarantees hold at any
    worker count, including zero. *)

val default_domains : unit -> int
(** The domain count used when none is given explicitly: the [UHM_JOBS]
    environment variable if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]; clamped to [1, 64]. *)

type pool
(** A set of worker domains plus the submitting domain.  Create once,
    run many sweeps, then {!shutdown}. *)

val create : ?domains:int -> unit -> pool
(** [create ~domains ()] spawns [domains - 1] worker domains (the
    submitting domain is the remaining worker).  [domains] defaults to
    {!default_domains}[ ()].  Spawn failures degrade the pool (see the
    module preamble) rather than raising. *)

val domains : pool -> int
(** Total domains participating in this pool's sweeps (workers + 1).
    May be lower than requested if spawning degraded. *)

val abandoned : pool -> int
(** Diagnostic: workers currently written off by the wall-clock watchdog
    — incremented when a cell is quarantined out from under the worker
    running it, decremented when that worker eventually returns and
    discards its late result.  Zero on a healthy pool; nonzero at
    {!shutdown} triggers the leaked-domain warning. *)

val shutdown : pool -> unit
(** Terminate and join the worker domains.  Idempotent.  The pool must be
    idle (no sweep in flight).  Workers still written off by the
    wall-clock watchdog are not joined (they may be wedged forever); a
    warning is logged and those domains leak until their job returns.  A
    worker whose quarantined job {e did} eventually return is restored to
    the books when it discards the late result, so a pool whose workers
    all recovered shuts down cleanly with no warning. *)

val map_pool : ?cost:('a -> int) -> pool -> ('a -> 'b) -> 'a list -> 'b list
(** [map_pool pool f jobs] evaluates [f] on every job and returns the
    results in submission order.  If any job raised, the exception of the
    {e earliest} such job (in submission order) is re-raised after the
    whole batch has drained — which exception propagates is therefore
    also independent of the domain count.  Must only be called from the
    domain that created the pool.  Called from inside one of this pool's
    own jobs it raises [Invalid_argument] immediately (see the module
    preamble on re-entrancy).

    [cost] is a scheduling hint: jobs are {e claimed} in stable descending
    [cost] order (long jobs first), which shortens the tail of long-tailed
    grids.  The hint changes only which worker runs which job when — the
    result list, its order, and the escaping exception are byte-identical
    with or without it.  Grid producers pass [dir_steps] as the cost. *)

val map : ?cost:('a -> int) -> ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot [map_pool]: create a pool, sweep, shut it down.  With
    [~domains:1] (or a single-element job list) no domain is spawned and
    the jobs run inline (in claim order when [cost] is given). *)

(** {1 Supervised sweeps}

    Campaign-grade execution: instead of aborting the whole grid, a job
    that keeps failing is retried with exponential backoff and then
    {e quarantined} — the sweep completes and the caller gets an explicit
    {!Quarantined} slot for that cell, with every other cell's result
    exactly as an unsupervised sweep would have produced it. *)

type quarantine = {
  q_index : int;      (** submission index of the quarantined cell *)
  q_attempts : int;   (** attempts started before giving up *)
  q_reason : string;  (** printed exception, or the watchdog verdict *)
}

type 'b slot = Completed of 'b | Quarantined of quarantine

type supervision = {
  sv_attempts : int;
      (** max attempts per job before quarantine (default 3; >= 1) *)
  sv_backoff : float;
      (** seconds slept before retry [k], scaled by [2^(k-1)]
          (default 0.005) *)
  sv_wall_limit : float option;
      (** opt-in wall-clock watchdog: a job still running after this many
          seconds is quarantined and its worker written off (default
          [None]).  This is the one {e nondeterministic} mechanism in the
          pool — a last-resort backstop for genuinely wedged host code.
          Deterministic budgets (the [cell_fuel] of the experiment grids,
          riding the PR 4 fuel machinery) should be preferred; with the
          watchdog enabled the same grid may quarantine different cells
          on different hosts.  While the watchdog is armed the submitting
          domain stays out of the job pool (claiming the wedged job would
          leave nobody to poll), so the sweep runs on the worker domains
          alone.  On a serial (degraded) pool the check is necessarily
          post-hoc: the job runs to completion and is then quarantined if
          it overran. *)
  sv_poll : float;
      (** watchdog poll interval in seconds (default 0.01) *)
}

val default_supervision : supervision
(** [{ sv_attempts = 3; sv_backoff = 0.005; sv_wall_limit = None;
      sv_poll = 0.01 }] *)

val map_pool_supervised :
  ?cost:('a -> int) ->
  ?supervision:supervision ->
  ?cached:(int -> 'b option) ->
  ?cell_hook:(index:int -> attempts:int -> 'b slot -> unit) ->
  pool ->
  ('a -> 'b) ->
  'a list ->
  'b slot list
(** [map_pool_supervised pool f jobs] is {!map_pool} with per-job
    supervision: a job that raises is retried up to [sv_attempts] times
    (sleeping [sv_backoff * 2^(k-1)] before retry [k]) and then
    quarantined with the last exception as its reason.  The slot list is
    in submission order; cells that complete carry exactly the value an
    unsupervised sweep would have returned.

    [cached i] (for journal resume) short-circuits cell [i]: when it
    returns [Some v] the job is not run and the cell completes with [v]
    ([attempts = 0], no hook fires).

    [cell_hook ~index ~attempts slot] fires once per {e freshly computed}
    cell, after its outcome is decided and before the sweep returns — the
    journal append point.  It runs on whichever domain ran the cell, so
    it must be thread-safe; a cell only counts as complete once its hook
    has returned, so a hook that fsyncs makes the journal record durable
    before the sweep can finish.  Hooks for watchdog quarantines fire on
    the submitting domain just before the sweep returns.  A hook that
    raises (a journal hitting a full disk, say) never wedges the sweep:
    the cell still counts as complete, the remaining cells run, and the
    exception of the {e earliest} failing hook (by submission index) is
    re-raised once the whole grid has drained — no slot list is returned,
    since cells whose hooks failed were never durably recorded.

    Exceptions never escape a supervised sweep's jobs; [Invalid_argument]
    is still raised synchronously for misuse (re-entrancy, a sweep
    already in flight, [sv_attempts < 1]), and a raising [cost] hint
    propagates as in {!map_pool}.  A {e job} that itself re-enters the
    pool gets the re-entry [Invalid_argument] on every attempt (still no
    deadlock) and is therefore quarantined with that message as its
    reason. *)

val map_supervised :
  ?cost:('a -> int) ->
  ?supervision:supervision ->
  ?cached:(int -> 'b option) ->
  ?cell_hook:(index:int -> attempts:int -> 'b slot -> unit) ->
  ?domains:int ->
  ('a -> 'b) ->
  'a list ->
  'b slot list
(** One-shot {!map_pool_supervised}: create a pool, sweep, shut it
    down. *)
