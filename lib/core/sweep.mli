(** The parallel sweep engine: a Domain-based worker pool for experiment
    grids.

    Every experiment in EXPERIMENTS.md is a grid of independent pure
    simulations (program x strategy x encoding x configuration).  This
    module evaluates such grids across cores while guaranteeing that the
    result list is returned {e in submission order}, so any output derived
    from it is byte-identical whether the sweep ran on 1 domain or N —
    parallelism changes wall-clock time only, never a single reported
    number.

    The pool is a classic work queue: a mutex-and-condition protected
    cursor over the job array; each worker repeatedly claims the next
    index, evaluates it, and stores the result in that index's slot.
    Because slots are disjoint and [Domain.join]/the completion barrier
    provide the happens-before edge, no result is ever observed partially
    written.

    Jobs must be pure (or at least independent): a job must not mutate
    state shared with another job.  Nested sweeps over the {e same} pool
    deadlock; [map] with its private one-shot pool is safe to nest. *)

val default_domains : unit -> int
(** The domain count used when none is given explicitly: the [UHM_JOBS]
    environment variable if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]; clamped to [1, 64]. *)

type pool
(** A set of worker domains plus the submitting domain.  Create once,
    run many sweeps, then {!shutdown}. *)

val create : ?domains:int -> unit -> pool
(** [create ~domains ()] spawns [domains - 1] worker domains (the
    submitting domain is the remaining worker).  [domains] defaults to
    {!default_domains}[ ()]. *)

val domains : pool -> int
(** Total domains participating in this pool's sweeps (workers + 1). *)

val shutdown : pool -> unit
(** Terminate and join the worker domains.  Idempotent.  The pool must be
    idle (no sweep in flight). *)

val map_pool : ?cost:('a -> int) -> pool -> ('a -> 'b) -> 'a list -> 'b list
(** [map_pool pool f jobs] evaluates [f] on every job and returns the
    results in submission order.  If any job raised, the exception of the
    {e earliest} such job (in submission order) is re-raised after the
    whole batch has drained — which exception propagates is therefore
    also independent of the domain count.  Must only be called from the
    domain that created the pool, and never from inside one of its own
    jobs.

    [cost] is a scheduling hint: jobs are {e claimed} in stable descending
    [cost] order (long jobs first), which shortens the tail of long-tailed
    grids.  The hint changes only which worker runs which job when — the
    result list, its order, and the escaping exception are byte-identical
    with or without it.  Grid producers pass [dir_steps] as the cost. *)

val map : ?cost:('a -> int) -> ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot [map_pool]: create a pool, sweep, shut it down.  With
    [~domains:1] (or a single-element job list) no domain is spawned and
    the jobs run inline (in claim order when [cost] is given). *)
