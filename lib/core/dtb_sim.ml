(* Trace-driven DTB simulation.

   Ablation sweeps (associativity, capacity, allocation policy) need many
   DTB configurations over the same instruction stream; re-running the full
   machine for each would be wasteful, and the DTB's hit/miss behaviour
   depends only on the sequence of DIR instruction addresses presented to
   INTERP — which is exactly the reference interpreter's instruction trace.
   This module replays that trace against a [Dtb.t].

   Translation lengths (for overflow behaviour) are the short-word counts of
   the PSDER templates, identical to what the dynamic translator emits. *)

module Isa = Uhm_dir.Isa
module Program = Uhm_dir.Program
module Codec = Uhm_encoding.Codec

(* Short words emitted for one DIR instruction by the dynamic translator
   (see Translate_gen): pushes + call + INTERP chain. *)
let translation_words { Isa.op; _ } =
  match op with
  | Isa.Lit -> 2
  | Isa.Jump -> 1
  | Isa.Halt -> 1
  | Isa.Ret -> 2
  | Isa.Jz | Isa.Cjeq | Isa.Cjne | Isa.Cjlt | Isa.Cjle | Isa.Cjgt | Isa.Cjge ->
      4
  | Isa.Call -> 4
  | Isa.Enter -> 5
  | _ -> (
      match Isa.shape op with
      | Isa.Shape_none -> 2
      | Isa.Shape_imm -> 3
      | Isa.Shape_var -> 4
      | Isa.Shape_target | Isa.Shape_call | Isa.Shape_enter -> assert false)

type result = {
  references : int;
  hit_ratio : float;
  misses : int;
  evictions : int;
  overflow_allocations : int;
  words_emitted : int;   (* short words written by the translator *)
}

(* Replay the program's dynamic instruction stream against a fresh DTB with
   the given configuration.  [addr_of] maps instruction indices to the DIR
   addresses used as tags (use [Codec.encoded] offsets for a specific
   encoding, or indices themselves for an encoding-independent study). *)
let replay ?(addr_of = fun i -> i) ~config (p : Program.t) =
  let dtb = Dtb.create config ~buffer_base:0 in
  let code = p.Program.code in
  let refs = ref 0 in
  let emitted = ref 0 in
  let on_step i _instr =
    incr refs;
    let tag = addr_of i in
    match Dtb.lookup dtb ~tag with
    | `Hit _ -> ()
    | `Miss ->
        Dtb.begin_translation dtb ~tag;
        let words = translation_words code.(i) in
        emitted := !emitted + words;
        for _ = 1 to words do
          ignore (Dtb.emit dtb 0)
        done;
        ignore (Dtb.end_translation dtb)
  in
  let r = Uhm_dir.Interp.run ~on_step p in
  (match r.Uhm_dir.Interp.status with
  | Uhm_dir.Interp.Halted -> ()
  | Uhm_dir.Interp.Trapped m -> failwith ("Dtb_sim.replay: program trapped: " ^ m)
  | Uhm_dir.Interp.Out_of_fuel -> failwith "Dtb_sim.replay: out of fuel");
  {
    references = !refs;
    hit_ratio = Dtb.hit_ratio dtb;
    misses = Dtb.misses dtb;
    evictions = Dtb.evictions dtb;
    overflow_allocations = Dtb.overflow_allocations dtb;
    words_emitted = !emitted;
  }

let replay_encoded ~config (encoded : Codec.encoded) =
  let offsets = encoded.Codec.offsets in
  replay ~addr_of:(fun i -> offsets.(i)) ~config encoded.Codec.program
