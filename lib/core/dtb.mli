(** The dynamic translation buffer (paper §5, Figure 2).

    A set-associative structure mapping DIR instruction addresses to the
    buffer-array locations of their PSDER translations:

    - the {e associative tag array} holds DIR addresses;
    - the {e address array} holds buffer pointers (kept explicit, as in the
      paper, to allow variable allocation);
    - the {e replacement array} keeps true-LRU order per set;
    - the {e buffer array} is a region of the machine's level-1 memory.

    Allocation is the paper's "variable allocation with fixed size
    increments" (§5.1): each entry owns one primary unit of
    [unit_words] words; a translation that outgrows it is chained through
    GOTO words into blocks taken from an overflow area.  With
    [unit_words - 1] no smaller than the longest translation the scheme
    degenerates to the paper's simple fixed allocation. *)

type t

type config = {
  sets : int;            (** power of two *)
  assoc : int;           (** ways per set; 0 = fully associative *)
  unit_words : int;      (** words per allocation unit, including the
                             reserved chain slot; at least 2 *)
  overflow_blocks : int; (** blocks available for chaining *)
}

val config_capacity_words : config -> int
(** Total buffer words: primary units plus overflow area. *)

val paper_config : config
(** 4-way, 4-word units; capacity comparable to the paper's 4096-byte
    instruction cache at 16 bits per short word. *)

val create : ?last_cache:bool -> config -> buffer_base:int -> t
(** [last_cache] (default [true]) enables the single-entry "last
    translation" cache in front of the tag array: a lookup of the tag
    that hit (or was installed) most recently skips the set hash and way
    scan.  The shortcut performs exactly the statistics and LRU-recency
    updates of the full probe; disabling it exists for differential
    testing. *)

val buffer_words : t -> int

val lookup : t -> tag:int -> [ `Hit of int | `Miss ]
(** [lookup t ~tag] searches the set selected by hashing [tag].  On a hit,
    returns the buffer address of the translation and promotes the entry to
    most-recently-used.  On a miss, nothing is installed —
    call {!begin_translation}. *)

val begin_translation : t -> tag:int -> unit
(** Choose the LRU victim of [tag]'s set, release its overflow chain, store
    the new tag, and reset the emission cursor to the entry's primary
    unit. *)

val emit : t -> int -> int * (int * int) list
(** [emit t word] appends [word] to the open translation and returns
    [(address_written, chain_writes)] where [chain_writes] are
    [(address, goto_word)] pairs the hardware wrote to link an overflow
    block.  The caller pokes all the words into the buffer region and
    charges their write time.  Raises [Failure] if the overflow area is
    exhausted or no translation is open. *)

val end_translation : t -> int
(** Close the open translation and return its start address. *)

(** {2 Statistics} *)

val hits : t -> int
val misses : t -> int
val hit_ratio : t -> float
val evictions : t -> int
val overflow_allocations : t -> int
val resident_entries : t -> int
val reset_stats : t -> unit
