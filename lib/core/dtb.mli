(** The dynamic translation buffer (paper §5, Figure 2).

    A set-associative structure mapping DIR instruction addresses to the
    buffer-array locations of their PSDER translations:

    - the {e associative tag array} holds DIR addresses;
    - the {e address array} holds buffer pointers (kept explicit, as in the
      paper, to allow variable allocation);
    - the {e replacement array} keeps true-LRU order per set;
    - the {e buffer array} is a region of the machine's level-1 memory.

    Allocation is the paper's "variable allocation with fixed size
    increments" (§5.1): each entry owns one primary unit of
    [unit_words] words; a translation that outgrows it is chained through
    GOTO words into blocks taken from an overflow area.  With
    [unit_words - 1] no smaller than the longest translation the scheme
    degenerates to the paper's simple fixed allocation. *)

type t

type config = {
  sets : int;            (** power of two *)
  assoc : int;           (** ways per set; 0 = fully associative *)
  unit_words : int;      (** words per allocation unit, including the
                             reserved chain slot; at least 2 *)
  overflow_blocks : int; (** blocks available for chaining *)
}

val config_capacity_words : config -> int
(** Total buffer words: primary units plus overflow area. *)

val paper_config : config
(** 4-way, 4-word units; capacity comparable to the paper's 4096-byte
    instruction cache at 16 bits per short word. *)

(** How a DTB shared between several programs (address spaces) resolves
    ownership of its entries:

    - [Flush_on_switch]: the tag array is cleared on every context switch,
      as on a host with untagged translations.  Simple, and each program
      always sees a cold buffer after a switch.
    - [Tagged]: an ASID is folded into the stored tag (never into the set
      hash, exactly as in an ASID-tagged TLB), so all programs'
      translations stay resident and compete for capacity.  A program's
      set mapping is identical to the one it would see on a private DTB.
    - [Partitioned]: each program owns a contiguous range of sets
      ([sets / programs] each, remainder spread from ASID 0); programs
      cannot evict each other but each sees only a fraction of the
      capacity.  Tags are still ASID-qualified so two programs with equal
      DIR addresses can never alias. *)
type policy =
  | Flush_on_switch
  | Tagged
  | Partitioned

val policy_name : policy -> string
(** ["flush"], ["tagged"], ["partitioned"]. *)

val create : ?last_cache:bool -> config -> buffer_base:int -> t
(** [last_cache] (default [true]) enables the single-entry "last
    translation" cache in front of the tag array: a lookup of the tag
    that hit (or was installed) most recently skips the set hash and way
    scan.  The shortcut performs exactly the statistics and LRU-recency
    updates of the full probe; disabling it exists for differential
    testing. *)

val create_shared :
  ?last_cache:bool ->
  policy:policy ->
  programs:int ->
  config ->
  buffer_base:int ->
  t
(** A DTB shared between [programs] address spaces under [policy].  ASID 0
    is current initially; use {!switch_to} at context switches.  With
    [programs = 1] every policy degenerates to a private DTB (no ASID
    bits, full capacity).  [Partitioned] requires [programs <= sets]. *)

val buffer_words : t -> int

val lookup : t -> tag:int -> [ `Hit of int | `Miss ]
(** [lookup t ~tag] searches the set selected by hashing [tag].  On a hit,
    returns the buffer address of the translation and promotes the entry to
    most-recently-used.  On a miss, nothing is installed —
    call {!begin_translation}. *)

val begin_translation : t -> tag:int -> unit
(** Choose the LRU victim of [tag]'s set, release its overflow chain, store
    the new tag, and reset the emission cursor to the entry's primary
    unit. *)

val emit : t -> int -> int * (int * int) list
(** [emit t word] appends [word] to the open translation and returns
    [(address_written, chain_writes)] where [chain_writes] are
    [(address, goto_word)] pairs the hardware wrote to link an overflow
    block.  The caller pokes all the words into the buffer region and
    charges their write time.  Raises [Failure] if the overflow area is
    exhausted or no translation is open. *)

val end_translation : t -> int
(** Close the open translation and return its start address. *)

val abort_translation : t -> unit
(** Discard the open translation: drop the directory entry installed by
    {!begin_translation} and return its overflow chain to the free list,
    as if the miss had never been serviced.  For recovery paths where
    the translating machine stopped mid-install and the translation will
    never be completed — {!flush}, {!invalidate} and {!invalidate_asid}
    all refuse while a translation is open.  Raises [Failure] if no
    translation is open. *)

(** {2 Multiprogramming} *)

val switch_to : t -> asid:int -> unit
(** Make [asid]'s translations the ones served by {!lookup} and installed
    by {!begin_translation}.  A no-op if [asid] is already current; under
    [Flush_on_switch] an actual switch performs a {!flush}.  Raises
    [Invalid_argument] on a private DTB or an out-of-range ASID. *)

val flush : t -> unit
(** Invalidate every entry and restore the buffer to its creation state
    exactly: per-way replacement order, canonical overflow free-list
    order, and the last-translation cache are all reset, so execution
    after a flush is indistinguishable from execution on a fresh DTB.
    Cumulative statistics survive; the flush itself is counted in
    {!flushes}.  Raises [Failure] if a translation is open. *)

val invalidate_asid : t -> asid:int -> int
(** Drop every entry owned by [asid] (releasing its overflow chains) and
    return how many were dropped.  The last-translation cache is cleared
    if it pointed at one of them.  Only meaningful on a [Tagged] or
    [Partitioned] shared DTB; raises [Invalid_argument] otherwise. *)

val sharing : t -> policy option
(** [None] for a private DTB. *)

(** {2 Resilience hooks}

    Targeted invalidation (the recovery path after a guard detection) and
    deterministic tag-array corruption (the fault injector's model of a
    single-event upset in the associative array).  Both keep the
    last-translation shortcut coherent with the tag array: corruption
    updates a mirrored key, invalidation clears it. *)

val invalidate : t -> tag:int -> bool
(** Drop the entry (or, after tag corruption, entries) whose stored key
    matches [tag] under the current ASID, releasing overflow chains.
    Returns whether anything was dropped.  Raises [Failure] if a
    translation is open. *)

val corrupt_resident_tag : t -> pick:int -> flip:int -> (int * int) option
(** Flip one bit of a resident entry's stored key: the entry is chosen by
    [pick] (mod the resident count, in scan order) and the bit by [flip]
    (mod the meaningful key width, including ASID bits).  Returns
    [Some (old_key, new_key)], or [None] when nothing is resident.  The
    original tag now misses (a lost installation) and the corrupted key
    may falsely hit — which the resilience layer's per-entry guards must
    catch.  Raises [Failure] if a translation is open. *)

val current_asid : t -> int

val add_drop_hook : t -> (addr:int -> words:int -> unit) -> unit
(** Register an observer of entry death.  Whenever a directory entry is
    dropped — LRU eviction in {!begin_translation}, {!abort_translation},
    {!invalidate}, {!invalidate_asid} — the hook fires once per buffer
    block the entry owned ([addr] = block base, [words] = the unit size);
    a {!flush} (explicit or by [Flush_on_switch]) fires it once for the
    whole buffer range.  {!corrupt_resident_tag} does {e not} fire: the
    buffer words themselves are untouched by a tag upset, and the
    subsequent guard-detected {!invalidate} reports the drop.  The
    threaded execution backend uses this to retire compiled closures
    exactly when the translation they belong to dies. *)

(** {2 Statistics} *)

val hits : t -> int
val misses : t -> int
val hit_ratio : t -> float
val evictions : t -> int
val overflow_allocations : t -> int

val flushes : t -> int
(** Whole-buffer flushes performed (explicit or by [Flush_on_switch]
    context switches).  Not reset by {!reset_stats}. *)

val resident_entries : t -> int
val reset_stats : t -> unit

(** {2 Per-ASID idle/footprint accounting}

    Inputs to the load service's eviction economy: which resident address
    spaces are cold, and how much of the directory they hold.  Time is
    the DTB's internal recency clock (one tick per lookup hit or
    installation), so idleness is measured in translation activity, not
    simulated cycles. *)

val use_clock : t -> int
(** The current recency-clock value ("now" for idleness arithmetic). *)

val asid_last_use : t -> asid:int -> int
(** The recency-clock stamp of [asid]'s most recent lookup hit or
    installation; [0] if it never touched the DTB.  Survives {!flush}
    (activity history is accounting, not directory state).  Raises
    [Invalid_argument] on an out-of-range ASID. *)

val asid_footprint : t -> asid:int -> int
(** Resident directory entries owned by [asid], by exact scan.  On an
    untagged DTB ([Flush_on_switch] or private) everything resident
    belongs to the current ASID.  Raises [Invalid_argument] on an
    out-of-range ASID. *)
