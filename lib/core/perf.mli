(** Host-side throughput measurement of the simulator.

    Times real (wall-clock) execution of the representative workloads under
    each execution strategy and reports simulated cycles per second — the
    repo's perf trajectory, persisted as [BENCH_simulator.json] by
    [bench/main.exe perf] and [uhmc perf]. *)

type sample = {
  workload : string;
  strategy : string;
  encoding : string;
  runs : int;
  wall_seconds : float;        (** total over all timed runs *)
  sim_cycles : int;            (** per run (deterministic) *)
  host_instrs : int;           (** per run *)
  short_instrs : int;          (** per run *)
  dir_steps : int;             (** per run *)
  sim_cycles_per_sec : float;
  host_instrs_per_sec : float;
  wall_us_per_run : float;
}

val strategies : (string * Uhm.strategy) list
(** The measured strategies: interp, cached, dtb, der. *)

val default_workloads : string list
(** ["fact_iter"; "fib_rec"; "flat_straightline"]. *)

val measure :
  ?min_runs:int -> ?min_seconds:float -> workload:string ->
  strategy_name:string -> strategy:Uhm.strategy -> unit -> sample
(** [measure ~workload ~strategy_name ~strategy ()] times repeated full runs
    (compile and encode are outside the timed region; one warm-up run is
    discarded) until both [min_runs] (default 5) and [min_seconds]
    (default 0.2) are reached. *)

val run_suite :
  ?workloads:string list -> ?min_runs:int -> ?min_seconds:float -> unit ->
  sample list
(** Every workload crossed with every strategy. *)

val to_json : sample list -> string
(** The BENCH_simulator.json document: an object with [schema],
    [generated_by], [unix_time] and a [samples] array. *)

val write_json : path:string -> sample list -> unit
