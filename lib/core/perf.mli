(** Host-side throughput measurement of the simulator.

    Times real (wall-clock) execution of the representative workloads under
    each execution strategy and reports simulated cycles per second — the
    repo's perf trajectory, persisted as [BENCH_simulator.json] by
    [bench/main.exe perf] and [uhmc perf]. *)

type sample = {
  workload : string;
  strategy : string;
  backend : string;            (** ["decode"] or ["threaded"] *)
  encoding : string;
  runs : int;
  wall_seconds : float;        (** total over all timed runs *)
  sim_cycles : int;            (** per run (deterministic) *)
  host_instrs : int;           (** per run *)
  short_instrs : int;          (** per run *)
  dir_steps : int;             (** per run *)
  sim_cycles_per_sec : float;
  host_instrs_per_sec : float;
  wall_us_per_run : float;
}

val strategies : (string * Uhm.strategy) list
(** The measured strategies: interp, cached, dtb, der. *)

val default_workloads : string list
(** ["fact_iter"; "fib_rec"; "flat_straightline"]. *)

val backend_name : Uhm_machine.Machine.backend -> string
(** ["decode"] / ["threaded"]. *)

val measure :
  ?min_runs:int -> ?min_seconds:float ->
  ?backend:Uhm_machine.Machine.backend -> workload:string ->
  strategy_name:string -> strategy:Uhm.strategy -> unit -> sample
(** [measure ~workload ~strategy_name ~strategy ()] times repeated full runs
    (compile and encode are outside the timed region; one warm-up run is
    discarded) until both [min_runs] (default 5) and [min_seconds]
    (default 0.2) are reached.  [backend] (default [`Decode]) selects the
    host execution backend; simulated results are identical, only the host
    wall-clock changes. *)

val run_suite :
  ?workloads:string list -> ?min_runs:int -> ?min_seconds:float ->
  ?backends:Uhm_machine.Machine.backend list ->
  ?domains:int -> unit -> sample list
(** Every workload crossed with every strategy and every backend
    ([backends] defaults to [[`Decode]]), evaluated through {!Sweep.map}.
    [domains] defaults to [1]: concurrent timed runs steal host cycles
    from each other, so parallel sampling is only for smoke-testing the
    plumbing, not for recorded numbers. *)

(** One (workload, strategy) measured under both backends: the threaded
    backend's host wall-clock speedup over decode. *)
type backend_pair = {
  bp_workload : string;
  bp_strategy : string;
  bp_decode_us : float;        (** [wall_us_per_run], decode backend *)
  bp_threaded_us : float;      (** [wall_us_per_run], threaded backend *)
  bp_speedup : float;          (** decode / threaded wall time per run *)
}

val backend_pairs : sample list -> backend_pair list
(** Pair up decode/threaded samples of the same (workload, strategy); the
    source of the schema-v3 ["backend"] section. *)

(** Wall-clock of the whole-suite summary sweep ({!Experiment.summary_rows})
    at one domain and at [sweep_domains] — the recorded evidence that the
    parallel engine pays for itself and stays byte-identical. *)
type sweep_bench = {
  sweep_points : int;          (** grid points (rows x strategies) *)
  sweep_domains : int;         (** domain count of the parallel run *)
  sweep_wall_1 : float;        (** seconds, best of repeats, 1 domain *)
  sweep_wall_n : float;        (** seconds, best of repeats, N domains *)
  sweep_speedup : float;       (** [sweep_wall_1 /. sweep_wall_n] *)
  sweep_identical : bool;      (** structural equality of the two row lists *)
}

val measure_sweep : ?domains:int -> ?repeats:int -> unit -> sweep_bench
(** Times {!Experiment.summary_rows} at 1 domain and at [domains]
    (default {!Sweep.default_domains}), keeping the best wall-clock of
    [repeats] (default 2) timings each, and compares the results. *)

(** One cell of the open-arrival saturation study ([bench load]): the
    latency percentiles and throughput of one (policy, quantum, offered
    rate) serve run.  The source of the schema-v4 ["load"] section. *)
type load_point = {
  lp_policy : string;          (** ["flush"], ["tagged"] or ["partitioned"] *)
  lp_rate : float;             (** offered load, jobs per million cycles *)
  lp_quantum : int;
  lp_jobs : int;               (** arrivals offered *)
  lp_completed : int;
  lp_shed : int;
  lp_throughput : float;       (** completions per million simulated cycles *)
  lp_p50 : int;                (** exact nearest-rank sojourn percentiles *)
  lp_p95 : int;
  lp_p99 : int;
  lp_mean_slowdown : float;
}

(** The ["load"] section: one seeded grid, points in sweep order. *)
type load_bench = {
  load_seed : int;
  load_slots : int;
  load_points : load_point list;
}

(** One cell of the fault-tolerant serving study ([bench resilience]):
    what one (policy, fault rate, offered rate) chaos run delivered.  The
    source of the schema-v5 ["resilience"] section. *)
type resilience_point = {
  rp_policy : string;          (** ["flush"], ["tagged"] or ["partitioned"] *)
  rp_fault_rate : float;       (** total per-step injection probability *)
  rp_rate : float;             (** offered load, jobs per million cycles *)
  rp_quantum : int;
  rp_jobs : int;               (** arrivals offered *)
  rp_completed : int;          (** verified clean completions *)
  rp_failed : int;             (** jobs that exhausted their retries *)
  rp_shed : int;
  rp_slo_attainment : float;   (** in-SLO completions / completions, exact *)
  rp_goodput : float;          (** in-SLO completions per million cycles *)
  rp_injected : int;
  rp_detected : int;
  rp_job_retries : int;
  rp_p99 : int;                (** exact nearest-rank sojourn p99, cycles *)
  rp_p99_degradation : float;
      (** [rp_p99] over the p99 of the same (policy, offered rate) cell at
          fault rate 0 — the tail-latency cost of the faults *)
}

(** The ["resilience"] section: one seeded grid under one SLO bound,
    points in sweep order. *)
type resilience_bench = {
  res_seed : int;
  res_slots : int;
  res_slo : int;               (** the deadline bound, cycles *)
  res_points : resilience_point list;
}

val to_json :
  ?sweep:sweep_bench ->
  ?load:load_bench ->
  ?resilience:resilience_bench ->
  sample list ->
  string
(** The BENCH_simulator.json document (schema "uhm-bench-simulator/5"):
    an object with [schema], [generated_by], [unix_time], an optional
    [sweep] object, an optional [load] section, an optional [resilience]
    section, a [backend] section (present when the samples cover both
    backends: per-pair host speedups and their geometric mean) and a
    [samples] array, each sample carrying its [backend]. *)

val write_json :
  ?sweep:sweep_bench ->
  ?load:load_bench ->
  ?resilience:resilience_bench ->
  path:string ->
  sample list ->
  unit

(** {2 Minimal JSON}

    Just enough of a reader for the documents this repo writes (the bench
    baseline, the multiprogramming trace export); kept in-repo so the
    build stays dependency-free beyond the compiler distribution. *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

val parse_json : string -> json
(** Raises {!Json_error} on malformed input. *)

(** {2 Baseline comparison — the CI perf gate} *)

val read_baseline : path:string -> ((string * string * string) * float) list
(** [(workload, strategy, backend) -> sim_cycles_per_sec] pairs from a
    previously written BENCH_simulator.json (any schema version; v2
    samples, which predate the backend field, read as ["decode"]).
    Raises [Json_error] on malformed input. *)

val read_samples : path:string -> sample list
(** The full [samples] array of a previously written document (empty when
    absent); lets [bench load] rewrite the file without re-measuring.
    Raises [Json_error] on malformed input. *)

val read_sweep : path:string -> sweep_bench option
(** The [sweep] section of a previously written document, if present. *)

val read_load : path:string -> load_bench option
(** The [load] section of a previously written document, if present —
    how [bench perf] preserves the saturation study it does not rerun. *)

val read_resilience : path:string -> resilience_bench option
(** The [resilience] section of a previously written document, if
    present — same read-modify-write discipline as {!read_load}. *)

exception Json_error of string

(** One sample whose host-relative throughput dropped past the threshold. *)
type regression = {
  reg_workload : string;
  reg_strategy : string;
  reg_backend : string;
  reg_baseline_rel : float;  (** baseline rate / baseline geometric mean *)
  reg_current_rel : float;   (** current rate / current geometric mean *)
  reg_drop_pct : float;      (** relative drop, percent *)
}

val check_against_baseline :
  max_regression_pct:float ->
  baseline:((string * string * string) * float) list ->
  sample list ->
  (regression list, string) result
(** Compares host-speed-independent relative rates: each file's samples are
    normalised by that file's own geometric mean over the shared
    (workload, strategy, backend) keys, so a uniformly faster or slower
    host cancels out.  [Ok []] means the gate passes; [Ok regressions]
    lists samples whose relative rate dropped more than
    [max_regression_pct] percent; [Error] means the files share no
    samples. *)
