(* SplitMix64 splittable streams; see prng.mli.  The constants and draw
   discipline are exactly the fault injector's original implementation —
   seeded campaign goldens depend on these sequences bit for bit. *)

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

type t = { mutable state : int64 }

let of_state state = { state }

let create ~seed ~stream =
  if stream < 0 then invalid_arg "Prng.create: negative stream";
  {
    state =
      mix64
        (Int64.add (Int64.of_int seed)
           (Int64.mul golden_gamma (Int64.of_int (stream + 1))));
  }

let next_i64 r =
  r.state <- Int64.add r.state golden_gamma;
  mix64 r.state

(* 62-bit non-negative draw: target selection arithmetic stays in [int] *)
let next_int r = Int64.to_int (Int64.shift_right_logical (next_i64 r) 2)

(* uniform in [0, 1) from the top 53 bits *)
let next_float r =
  Int64.to_float (Int64.shift_right_logical (next_i64 r) 11) *. 0x1p-53

let split r = { state = mix64 (next_i64 r) }

(* Geometric inter-arrival gap for per-step probability [p]: the number of
   Bernoulli trials up to and including the first success. *)
let geometric r ~p =
  if p >= 1. then begin
    ignore (next_float r);
    1
  end
  else
    let u = next_float r in
    let g = 1. +. (Float.log (1. -. u) /. Float.log (1. -. p)) in
    if Float.is_nan g || g >= float_of_int max_int then max_int
    else max 1 (int_of_float g)

let exponential r ~rate =
  if rate <= 0. then begin
    ignore (next_float r);
    max_int
  end
  else
    let u = next_float r in
    let g = -.Float.log (1. -. u) /. rate in
    if Float.is_nan g || g >= float_of_int max_int then max_int
    else max 1 (int_of_float g)
