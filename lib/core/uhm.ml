module Machine = Uhm_machine.Machine
module Timing = Uhm_machine.Timing
module Cache = Uhm_machine.Cache
module Asm = Uhm_machine.Asm
module SF = Uhm_machine.Short_format
module H = Uhm_machine.Host_isa
module R = Uhm_machine.Host_isa.Regs
module Isa = Uhm_dir.Isa
module Program = Uhm_dir.Program
module Stats = Uhm_dir.Static_stats
module Codec = Uhm_encoding.Codec
module Kind = Uhm_encoding.Kind
module Layout = Uhm_psder.Layout
module Runtime = Uhm_psder.Runtime
module Interp_gen = Uhm_psder.Interp_gen
module Translate_gen = Uhm_psder.Translate_gen
module Static_gen = Uhm_psder.Static_gen
module Der_gen = Uhm_psder.Der_gen

type der_residence =
  | Der_level1
  | Der_level2
  | Der_level2_cached of int

type strategy =
  | Interp
  | Cached of int
  | Dtb_strategy of Dtb.config
  | Dtb_blocks of Dtb.config * int   (* basic-block translation, max run *)
  | Dtb_two_level of Dtb.config * int
      (* a second-level decoded-instruction store of the given capacity
         (entries) behind the DTB: multi-level translation, paper section 4 *)
  | Psder_static
  | Der of der_residence

let strategy_name = function
  | Interp -> "interp"
  | Cached bytes -> Printf.sprintf "interp+icache(%dB)" bytes
  | Dtb_strategy cfg ->
      Printf.sprintf "dtb(%dx%dx%dw)" cfg.Dtb.sets cfg.Dtb.assoc
        cfg.Dtb.unit_words
  | Dtb_blocks (cfg, limit) ->
      Printf.sprintf "dtb-blocks(%dx%dx%dw,run<=%d)" cfg.Dtb.sets cfg.Dtb.assoc
        cfg.Dtb.unit_words limit
  | Dtb_two_level (cfg, l2) ->
      Printf.sprintf "dtb2(%dx%dx%dw,l2=%d)" cfg.Dtb.sets cfg.Dtb.assoc
        cfg.Dtb.unit_words l2
  | Psder_static -> "psder-static"
  | Der Der_level1 -> "der(level1)"
  | Der Der_level2 -> "der(level2)"
  | Der (Der_level2_cached bytes) -> Printf.sprintf "der(icache %dB)" bytes

type result = {
  strategy : strategy;
  status : Machine.status;
  output : string;
  cycles : int;
  machine_stats : Machine.stats;
  dir_steps : int;
  dtb_hit_ratio : float option;
  dtb_misses : int option;
  dtb_evictions : int option;
  dtb_overflow_allocations : int option;
  dtb_emitted_words : int option;
  dtb_l2_hit_ratio : float option;
  icache_hit_ratio : float option;
  static_size_bits : int;
  support_size_bits : int;
}

let cycles_per_dir_instruction r =
  if r.dir_steps = 0 then 0.
  else float_of_int r.cycles /. float_of_int r.dir_steps

let default_fuel = 2_000_000_000

(* Host-word size convention for the level-1 support accounting (see
   DESIGN.md): a memory word or long instruction is 32 bits, a short word
   16 bits. *)
let host_word_bits = 32

(* The region list is a pure function of (timing, layout); handing
   [Machine.create] the same list object run after run lets its derived-
   table memos hit (both inputs are immutable and callers reuse them). *)
let regions_memo :
    ((Timing.t * Layout.t) * Machine.region list) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let regions_memo_max = 16

let regions_memoized timing layout =
  let cache = Domain.DLS.get regions_memo in
  match
    List.find_opt (fun ((t', l'), _) -> t' == timing && l' == layout) !cache
  with
  | Some (_, v) -> v
  | None ->
      let v = Layout.regions timing layout in
      let entries = !cache in
      let entries =
        if List.length entries >= regions_memo_max then
          List.filteri (fun i _ -> i < regions_memo_max - 1) entries
        else entries
      in
      cache := ((timing, layout), v) :: entries;
      v

(* Machine with registers and the main frame initialised (the paper's
   link-editing/loading step; charged no cycles). *)
let setup_machine ~timing ~fuel ~layout ~backend ~(program : Asm.program)
    (p : Program.t) =
  let m =
    Machine.create ~timing ~fuel ~backend ~program
      ~mem_words:layout.Layout.mem_words
      ~regions:(regions_memoized timing layout) ()
  in
  let data_base = layout.Layout.data_base in
  let main = p.Program.contours.(0) in
  Machine.set_reg m R.sp layout.Layout.op_stack_base;
  Machine.set_reg m R.rsp layout.Layout.ret_stack_base;
  Machine.set_reg m R.fp data_base;
  Machine.set_reg m R.dtop
    (data_base + Isa.frame_header_size + main.Program.n_locals);
  Machine.set_reg m R.ctx 0;
  Machine.set_reg m R.dctx Stats.start_context;
  Machine.poke m data_base data_base;
  Machine.poke m (data_base + 1) 0;
  Machine.poke m (data_base + 2) 0;
  Machine.poke m (data_base + 3) 0;
  m

let dir_steps_reference p =
  (Uhm_dir.Interp.run p).Uhm_dir.Interp.steps

(* Memo for the reference pre-pass: every [run]/[run_encoded] reports
   [dir_steps], which re-executes the whole reference interpreter — once
   per strategy in a sweep, on the same program.  Keyed by physical
   identity (programs are immutable once built and sweeps reuse the same
   value across strategies); bounded; mutex-protected so parallel sweep
   workers share it.  The interpreter run happens outside the lock —
   two workers may race to fill the same entry, computing the same value
   twice, which is wasted work but never wrong. *)
let dir_steps_mutex = Mutex.create ()
let dir_steps_memo : (Program.t * int) list ref = ref []
let dir_steps_memo_max = 128

let dir_steps_memoized p =
  let cached =
    Mutex.lock dir_steps_mutex;
    let r = List.find_opt (fun (q, _) -> q == p) !dir_steps_memo in
    Mutex.unlock dir_steps_mutex;
    r
  in
  match cached with
  | Some (_, steps) -> steps
  | None ->
      let steps = dir_steps_reference p in
      Mutex.lock dir_steps_mutex;
      let rest = List.filter (fun (q, _) -> q != p) !dir_steps_memo in
      let rest =
        if List.length rest >= dir_steps_memo_max then
          List.filteri (fun i _ -> i < dir_steps_memo_max - 1) rest
        else rest
      in
      dir_steps_memo := (p, steps) :: rest;
      Mutex.unlock dir_steps_mutex;
      steps

let dir_steps_of = dir_steps_memoized

(* -- Build-product memos ------------------------------------------------------
   Everything a [run] assembles before the first simulated cycle — the
   DIR encoding, the generated interpreter/translator programs, the DER
   expansion, the PSDER runtime and static image — is a pure function of
   immutable inputs, yet was rebuilt from scratch on every run.  Sweep
   grids and the bench harness execute the same (program, strategy) cell
   hundreds of times, so on short workloads the rebuild dominated the
   run.  Each product is memoized per domain (workers re-derive their
   own copies, so nothing is ever shared across domains), keyed on the
   physical identity of its inputs: programs, encodings and layouts are
   immutable once built, and callers naturally pass the same values run
   after run.  Sharing the products across runs on a domain is safe
   because machines only read them — the host code array, table images
   and static words are poked into per-machine memory, never written in
   place.  Bounded: a full table drops its oldest entry. *)

let build_memo_max = 64

let build_memoized key ~eq k compute =
  let cache = Domain.DLS.get key in
  match List.find_opt (fun (k', _) -> eq k k') !cache with
  | Some (_, v) -> v
  | None ->
      let v = compute () in
      let entries = !cache in
      let entries =
        if List.length entries >= build_memo_max then
          List.filteri (fun i _ -> i < build_memo_max - 1) entries
        else entries
      in
      cache := (k, v) :: entries;
      v

let encode_memo : ((Kind.t * Program.t) * Codec.encoded) list ref Domain.DLS.key
    =
  Domain.DLS.new_key (fun () -> ref [])

let encode_memoized kind p =
  build_memoized encode_memo
    ~eq:(fun (k1, p1) (k2, p2) -> k1 = k2 && p1 == p2)
    (kind, p)
    (fun () -> Codec.encode kind p)

let interp_gen_memo :
    ((bool * bool * Layout.t * Codec.encoded) * Interp_gen.t) list ref
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let interp_gen_memoized ~compound ~assist ~layout ~encoded =
  build_memoized interp_gen_memo
    ~eq:(fun (c1, a1, l1, e1) (c2, a2, l2, e2) ->
      c1 = c2 && a1 = a2 && l1 == l2 && e1 == e2)
    (compound, assist, layout, encoded)
    (fun () -> Interp_gen.build ~compound ~assist ~layout ~encoded)

let translate_gen_memo :
    ((bool * int option * bool * Layout.t * Codec.encoded) * Translate_gen.t)
    list
    ref
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let translate_gen_memoized ~compound ~block ~assist ~layout ~encoded =
  build_memoized translate_gen_memo
    ~eq:(fun (c1, b1, a1, l1, e1) (c2, b2, a2, l2, e2) ->
      c1 = c2 && b1 = b2 && a1 = a2 && l1 == l2 && e1 == e2)
    (compound, block, assist, layout, encoded)
    (fun () -> Translate_gen.build ~compound ~block ~assist ~layout ~encoded)

let der_gen_memo : (Program.t * Der_gen.t) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let der_gen_memoized p =
  build_memoized der_gen_memo ~eq:( == ) p (fun () -> Der_gen.build p)

let psder_memo :
    ((bool * Layout.t * Program.t) * (Asm.program * Static_gen.t)) list ref
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let psder_memoized ~compound ~layout p =
  build_memoized psder_memo
    ~eq:(fun (c1, l1, p1) (c2, l2, p2) -> c1 = c2 && l1 == l2 && p1 == p2)
    (compound, layout, p)
    (fun () ->
      let b = Asm.create () in
      let rt = Runtime.build ~compound b ~layout in
      let program = Asm.finish b in
      (program, Static_gen.build ~layout ~rt p))

let finish ~runner ~strategy ~p ~static_size_bits ~support_size_bits ?dtb
    ?icache ?emitted_words ?l2_cache m =
  let status = runner m in
  let stats = Machine.stats m in
  let result =
    {
      strategy;
      status;
      output = Machine.output m;
      cycles = stats.Machine.cycles;
      machine_stats = stats;
      dir_steps = dir_steps_of p;
      dtb_hit_ratio = Option.map Dtb.hit_ratio dtb;
      dtb_misses = Option.map Dtb.misses dtb;
      dtb_evictions = Option.map Dtb.evictions dtb;
      dtb_overflow_allocations = Option.map Dtb.overflow_allocations dtb;
      dtb_emitted_words = Option.map (fun r -> !r) emitted_words;
      dtb_l2_hit_ratio = Option.map Cache.hit_ratio l2_cache;
      icache_hit_ratio = Option.map Cache.hit_ratio icache;
      static_size_bits;
      support_size_bits;
    }
  in
  (* the machine never escapes the run_* drivers: everything the result
     needs has been extracted, so its memory can go back to the pool *)
  Machine.recycle m;
  result

(* The hardware decode-assist unit (paper section 8's "powerful hardware
   aids to the decoding process"): one DecodeAssist instruction decodes a
   whole DIR instruction.  Cost: the instruction cycle, two cycles of
   decode-unit latency, plus the normal IFU charges for the stream units
   read. *)
let assist_unit_cycles = 2

let assist_hook (encoded : Codec.encoded) m =
  let addr = Machine.reg m R.dpc in
  let raw =
    Codec.decode_at encoded ~contour:(Machine.reg m R.ctx)
      ~digram_ctx:(Machine.reg m R.dctx) ~addr
  in
  Machine.set_reg m 8 (Isa.opcode_to_enum raw.Codec.op);
  Machine.set_reg m 9 raw.Codec.ra;
  Machine.set_reg m 10 raw.Codec.rb;
  Machine.set_reg m 11 raw.Codec.rc;
  Machine.set_reg m R.dpc raw.Codec.next_addr;
  Machine.charge_dir_span m ~first_bit:addr
    ~last_bit:(max addr (raw.Codec.next_addr - 1));
  Machine.add_cycles m assist_unit_cycles

(* IU2 features are never reached in interpreter-only configurations; the
   hooks exist only so the decode-assist entry is available. *)
let interp_hooks ~assist encoded =
  {
    Machine.h_interp = (fun _ ~dir_addr:_ ~dctx:_ -> ());
    h_emit_short = (fun _ _ -> ());
    h_end_trans = (fun _ -> ());
    h_decode_assist =
      (if assist then assist_hook encoded
       else fun _ -> ());
  }

let icache_for_bytes bytes =
  (* DIR units are 16 bits, so an icache of [bytes] holds bytes/2 units *)
  Cache.create ~assoc:4 ~block_words:4 ~capacity_words:(bytes / 2) ()

let run_interpreted ~timing ~fuel ~layout ~backend ~runner ~strategy ~assist
    ~compound (encoded : Codec.encoded) =
  let p = encoded.Codec.program in
  let gen = interp_gen_memoized ~compound ~assist ~layout ~encoded in
  let m =
    setup_machine ~timing ~fuel ~layout ~backend ~program:gen.Interp_gen.program
      p
  in
  Array.iteri
    (fun i w -> Machine.poke m (layout.Layout.table_base + i) w)
    gen.Interp_gen.table_image;
  let icache =
    match strategy with
    | Cached bytes -> Some (icache_for_bytes bytes)
    | _ -> None
  in
  Machine.set_dir_stream m ~bits:encoded.Codec.bits
    ~mode:
      (match icache with
      | Some c -> Machine.Dir_cached c
      | None -> Machine.Dir_uncached);
  Machine.set_hooks m (interp_hooks ~assist encoded);
  Machine.set_reg m R.dpc encoded.Codec.entry_addr;
  Machine.set_pc m (Machine.Long gen.Interp_gen.entry);
  let support =
    host_word_bits
    * (Array.length gen.Interp_gen.program.Asm.code
      + Array.length gen.Interp_gen.table_image)
  in
  finish ~runner ~strategy ~p ~static_size_bits:encoded.Codec.size_bits
    ~support_size_bits:support ?icache m

(* -- The DTB hook set ---------------------------------------------------------
   The IU2-side hooks every DTB configuration shares.  EmitShort appends
   the word to the open translation (poking chain words when an overflow
   block is linked in); EndTrans transfers to the finished translation.
   Only the INTERP hook varies between the plain, two-level and shared
   configurations. *)

let dtb_emit_hooks ~dtb ~emitted_words ~h_interp ~h_decode_assist =
  {
    Machine.h_interp;
    h_emit_short =
      (fun m word ->
        incr emitted_words;
        let addr, chain_writes = Dtb.emit dtb word in
        Machine.poke m addr word;
        Machine.charge_mem m addr;
        List.iter
          (fun (a, w) ->
            Machine.poke m a w;
            Machine.charge_mem m a)
          chain_writes);
    h_end_trans =
      (fun m -> Machine.set_pc m (Machine.Short (Dtb.end_translation dtb)));
    h_decode_assist;
  }

(* Wire the threaded backend to the DTB lifecycle: closures may be cached
   for any word of the buffer region (including the bootstrap INTERP), and
   die exactly when the directory entry owning them does. *)
let attach_threaded_dtb ~backend m ~layout ~dtb =
  match backend with
  | `Decode -> ()
  | `Threaded ->
      Machine.enable_short_compile m ~base:layout.Layout.dtb_buffer_base
        ~size:layout.Layout.dtb_buffer_size;
      Dtb.add_drop_hook dtb (fun ~addr ~words ->
          Machine.drop_short_range m ~addr ~len:words)

(* The plain INTERP hook (paper Figure 4): charge the DTB access, transfer
   on a hit; on a miss the replacement logic installs the tag and traps to
   the dynamic translation routine.  [on_translation] is an observability
   callback (the multiprogramming trace layer); it fires before the
   replacement logic touches the buffer. *)
let plain_dtb_interp ~t_dtb ~dtb ~translator_entry ~on_translation =
  fun m ~dir_addr ~dctx ->
    Machine.add_cycles m t_dtb;
    match Dtb.lookup dtb ~tag:dir_addr with
    | `Hit buffer_addr -> Machine.set_pc m (Machine.Short buffer_addr)
    | `Miss ->
        on_translation ~dir_addr;
        Dtb.begin_translation dtb ~tag:dir_addr;
        Machine.set_reg m R.dpc dir_addr;
        Machine.set_reg m R.dctx dctx;
        Machine.set_pc m (Machine.Long translator_entry)

let run_dtb ~timing ~fuel ~layout ~backend ~runner ~strategy ~assist ~compound
    ~block ?l2 cfg (encoded : Codec.encoded) =
  let p = encoded.Codec.program in
  let gen = translate_gen_memoized ~compound ~block ~assist ~layout ~encoded in
  (* second-level decoded-instruction store (multi-level translation,
     paper section 4): presence is a fully-associative LRU of [l2] entries;
     the decoded fields are the "hardware" payload *)
  let l2_cache =
    Option.map
      (fun entries ->
        (Cache.create ~assoc:0 ~block_words:1 ~capacity_words:entries (),
         Hashtbl.create 256))
      l2
  in
  let m =
    setup_machine ~timing ~fuel ~layout ~backend
      ~program:gen.Translate_gen.program p
  in
  Array.iteri
    (fun i w -> Machine.poke m (layout.Layout.table_base + i) w)
    gen.Translate_gen.table_image;
  Machine.set_dir_stream m ~bits:encoded.Codec.bits ~mode:Machine.Dir_uncached;
  let bootstrap_addr = layout.Layout.dtb_buffer_base in
  let dtb = Dtb.create cfg ~buffer_base:(bootstrap_addr + 1) in
  if 1 + Dtb.buffer_words dtb > layout.Layout.dtb_buffer_size then
    invalid_arg "Uhm.run: DTB buffer does not fit its memory region";
  attach_threaded_dtb ~backend m ~layout ~dtb;
  let t_dtb = timing.Timing.t_dtb in
  let emitted_words = ref 0 in
  let h_interp =
    match l2_cache with
    | None ->
        plain_dtb_interp ~t_dtb ~dtb
          ~translator_entry:gen.Translate_gen.translator_entry
          ~on_translation:(fun ~dir_addr:_ -> ())
    | Some (cache, payload) ->
        fun m ~dir_addr ~dctx ->
          Machine.add_cycles m t_dtb;
          (match Dtb.lookup dtb ~tag:dir_addr with
          | `Hit buffer_addr -> Machine.set_pc m (Machine.Short buffer_addr)
          | `Miss -> (
              (* the replacement logic installs the tag and traps to the
                 dynamic translation routine (paper Figure 4) *)
              Dtb.begin_translation dtb ~tag:dir_addr;
              Machine.set_reg m R.dpc dir_addr;
              Machine.set_reg m R.dctx dctx;
              Machine.add_cycles m t_dtb;
              match Cache.access cache dir_addr with
              | `Hit when Hashtbl.mem payload dir_addr ->
                  (* decode skipped: the stored fields are presented to
                     the translator's dispatch directly *)
                  let raw : Codec.raw_instr = Hashtbl.find payload dir_addr in
                  Machine.set_reg m 8 (Isa.opcode_to_enum raw.Codec.op);
                  Machine.set_reg m 9 raw.Codec.ra;
                  Machine.set_reg m 10 raw.Codec.rb;
                  Machine.set_reg m 11 raw.Codec.rc;
                  Machine.set_reg m R.dpc raw.Codec.next_addr;
                  Machine.set_pc m
                    (Machine.Long gen.Translate_gen.dispatch_entry)
              | `Hit | `Miss ->
                  (* record this decode for later re-translations *)
                  Hashtbl.replace payload dir_addr
                    (Codec.decode_at encoded
                       ~contour:(Machine.reg m R.ctx) ~digram_ctx:dctx
                       ~addr:dir_addr);
                  Machine.set_pc m
                    (Machine.Long gen.Translate_gen.translator_entry)))
  in
  Machine.set_hooks m
    (dtb_emit_hooks ~dtb ~emitted_words ~h_interp
       ~h_decode_assist:(if assist then assist_hook encoded else fun _ -> ()));
  Machine.poke m bootstrap_addr
    (SF.pack ~ctx:Stats.start_context SF.Interp_imm encoded.Codec.entry_addr);
  Machine.set_pc m (Machine.Short bootstrap_addr);
  let support =
    host_word_bits
    * (Array.length gen.Translate_gen.program.Asm.code
      + Array.length gen.Translate_gen.table_image)
    + (SF.bits_per_word * Dtb.buffer_words dtb)
  in
  finish ~runner ~strategy ~p ~static_size_bits:encoded.Codec.size_bits
    ~support_size_bits:support ~dtb ~emitted_words
    ?l2_cache:(Option.map fst l2_cache) m

(* A machine time-slicing over a *shared* DTB: everything [run_dtb] sets up
   except the run itself and the DTB, which the multiprogramming layer owns
   (created with [Dtb.create_shared] at [layout.dtb_buffer_base + 1], the
   word after the bootstrap INTERP).  Every program gets its own machine —
   its own memory image at the same layout — so a shared entry's buffer
   address is valid in every address space; what the programs contend for
   is the *directory* (tags, capacity, overflow blocks).  A program only
   ever executes translations it installed itself: on a preserved entry
   installed by another ASID the tags cannot match, so the lookup misses
   and retranslates into its own memory.

   [prepare_dtb_custom] is the general form: the caller supplies the
   INTERP hook (given the translator entry point) and may tap every
   buffer-word write and every translation completion — the resilience
   layer hangs its per-entry guards off those taps.  With the default
   no-op taps and [make_interp = plain_dtb_interp ...] the machine is
   cycle-identical to [prepare_dtb_shared]'s. *)
let prepare_dtb_custom ?(timing = Timing.paper) ?(fuel = default_fuel)
    ?(layout = Layout.default) ?(backend = `Decode)
    ?(on_emit = fun ~addr:_ ~word:_ -> ())
    ?(on_end_translation = fun ~start_addr:_ -> ()) ~make_interp ~dtb
    (encoded : Codec.encoded) =
  let p = encoded.Codec.program in
  let gen =
    translate_gen_memoized ~compound:false ~block:None ~assist:false ~layout
      ~encoded
  in
  let m =
    setup_machine ~timing ~fuel ~layout ~backend
      ~program:gen.Translate_gen.program p
  in
  Array.iteri
    (fun i w -> Machine.poke m (layout.Layout.table_base + i) w)
    gen.Translate_gen.table_image;
  Machine.set_dir_stream m ~bits:encoded.Codec.bits ~mode:Machine.Dir_uncached;
  let bootstrap_addr = layout.Layout.dtb_buffer_base in
  if 1 + Dtb.buffer_words dtb > layout.Layout.dtb_buffer_size then
    invalid_arg
      "Uhm.prepare_dtb_custom: DTB buffer does not fit its memory region";
  attach_threaded_dtb ~backend m ~layout ~dtb;
  let translator_entry = gen.Translate_gen.translator_entry in
  Machine.set_hooks m
    {
      Machine.h_interp = make_interp ~translator_entry;
      h_emit_short =
        (fun m word ->
          let addr, chain_writes = Dtb.emit dtb word in
          Machine.poke m addr word;
          Machine.charge_mem m addr;
          on_emit ~addr ~word;
          List.iter
            (fun (a, w) ->
              Machine.poke m a w;
              Machine.charge_mem m a;
              on_emit ~addr:a ~word:w)
            chain_writes);
      h_end_trans =
        (fun m ->
          let start_addr = Dtb.end_translation dtb in
          on_end_translation ~start_addr;
          Machine.set_pc m (Machine.Short start_addr));
      h_decode_assist = (fun _ -> ());
    };
  Machine.poke m bootstrap_addr
    (SF.pack ~ctx:Stats.start_context SF.Interp_imm encoded.Codec.entry_addr);
  Machine.set_pc m (Machine.Short bootstrap_addr);
  (m, translator_entry)

let prepare_dtb_shared ?timing ?fuel ?layout ?backend
    ?(on_translation = fun ~dir_addr:_ -> ()) ~dtb (encoded : Codec.encoded) =
  let t_dtb =
    (Option.value ~default:Timing.paper timing).Timing.t_dtb
  in
  let m, _ =
    prepare_dtb_custom ?timing ?fuel ?layout ?backend
      ~make_interp:(fun ~translator_entry ->
        plain_dtb_interp ~t_dtb ~dtb ~translator_entry ~on_translation)
      ~dtb encoded
  in
  m

(* A pure-interpretation machine over the same encoded program: the
   watchdog's downgrade target.  Set up exactly as [run_interpreted]
   (no icache, no assist, no compound datapath) but returned suspended
   so the caller can graft in the mid-flight architectural state before
   slicing it with [Machine.run_for]. *)
let prepare_interp ?(timing = Timing.paper) ?(fuel = default_fuel)
    ?(layout = Layout.default) ?(backend = `Decode)
    (encoded : Codec.encoded) =
  let p = encoded.Codec.program in
  let gen = interp_gen_memoized ~compound:false ~assist:false ~layout ~encoded in
  let m =
    setup_machine ~timing ~fuel ~layout ~backend ~program:gen.Interp_gen.program
      p
  in
  Array.iteri
    (fun i w -> Machine.poke m (layout.Layout.table_base + i) w)
    gen.Interp_gen.table_image;
  Machine.set_dir_stream m ~bits:encoded.Codec.bits ~mode:Machine.Dir_uncached;
  Machine.set_hooks m (interp_hooks ~assist:false encoded);
  Machine.set_reg m R.dpc encoded.Codec.entry_addr;
  Machine.set_pc m (Machine.Long gen.Interp_gen.entry);
  m

let run_psder_static ~timing ~fuel ~layout ~backend ~runner ~strategy ~compound
    (p : Program.t) =
  let program, static = psder_memoized ~compound ~layout p in
  let m = setup_machine ~timing ~fuel ~layout ~backend ~program p in
  Array.iteri
    (fun i w -> Machine.poke m (layout.Layout.psder_static_base + i) w)
    static.Static_gen.words;
  (* the static image is immutable for the run: closures never retire *)
  (match backend with
  | `Decode -> ()
  | `Threaded ->
      Machine.enable_short_compile m ~base:layout.Layout.psder_static_base
        ~size:layout.Layout.psder_static_size);
  Machine.set_pc m (Machine.Short static.Static_gen.entry_addr);
  finish ~runner ~strategy ~p
    ~static_size_bits:(Static_gen.size_bits static)
    ~support_size_bits:(host_word_bits * Array.length program.Asm.code)
    m

let run_der ~timing ~fuel ~layout ~backend ~runner ~strategy residence
    (p : Program.t) =
  let der = der_gen_memoized p in
  let m =
    setup_machine ~timing ~fuel ~layout ~backend ~program:der.Der_gen.program p
  in
  let icache =
    match residence with
    | Der_level1 -> None
    | Der_level2 ->
        Machine.set_code_fetch_hook m (fun _ -> timing.Timing.t2);
        None
    | Der_level2_cached bytes ->
        (* 32-bit instructions: bytes/4 cache words *)
        let c = Cache.create ~assoc:4 ~block_words:4 ~capacity_words:(bytes / 4) () in
        Machine.set_code_fetch_hook m (fun addr ->
            match Cache.access c addr with
            | `Hit -> timing.Timing.t_dtb
            | `Miss -> timing.Timing.t2);
        Some c
  in
  Machine.set_pc m (Machine.Long der.Der_gen.entry);
  finish ~runner ~strategy ~p
    ~static_size_bits:(H.bits_per_instr * der.Der_gen.code_instructions)
    ~support_size_bits:0 ?icache m

let run_encoded ?(timing = Timing.paper) ?(fuel = default_fuel)
    ?(layout = Layout.default) ?(backend = `Decode) ?(decode_assist = false)
    ?(compound_datapath = false) ?(runner = Machine.run) ~strategy
    (encoded : Codec.encoded) =
  match strategy with
  | Interp | Cached _ ->
      run_interpreted ~timing ~fuel ~layout ~backend ~runner ~strategy
        ~assist:decode_assist ~compound:compound_datapath encoded
  | Dtb_strategy cfg ->
      run_dtb ~timing ~fuel ~layout ~backend ~runner ~strategy
        ~assist:decode_assist ~compound:compound_datapath ~block:None cfg
        encoded
  | Dtb_blocks (cfg, limit) ->
      run_dtb ~timing ~fuel ~layout ~backend ~runner ~strategy
        ~assist:decode_assist ~compound:compound_datapath ~block:(Some limit)
        cfg encoded
  | Dtb_two_level (cfg, l2) ->
      run_dtb ~timing ~fuel ~layout ~backend ~runner ~strategy
        ~assist:decode_assist ~compound:compound_datapath ~block:None ~l2 cfg
        encoded
  | Psder_static | Der _ ->
      invalid_arg "Uhm.run_encoded: strategy does not take an encoding"

let run ?(timing = Timing.paper) ?(fuel = default_fuel)
    ?(layout = Layout.default) ?(backend = `Decode) ?(decode_assist = false)
    ?(compound_datapath = false) ?(runner = Machine.run) ~strategy ~kind
    (p : Program.t) =
  match strategy with
  | Interp | Cached _ | Dtb_strategy _ | Dtb_blocks _ | Dtb_two_level _ ->
      run_encoded ~timing ~fuel ~layout ~backend ~decode_assist
        ~compound_datapath ~runner ~strategy (encode_memoized kind p)
  | Psder_static ->
      run_psder_static ~timing ~fuel ~layout ~backend ~runner ~strategy
        ~compound:compound_datapath p
  | Der residence ->
      run_der ~timing ~fuel ~layout ~backend ~runner ~strategy residence p
