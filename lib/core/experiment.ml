module Model = Uhm_perfmodel.Model
module Kind = Uhm_encoding.Kind
module Codec = Uhm_encoding.Codec
module Program = Uhm_dir.Program
module Machine = Uhm_machine.Machine
module Timing = Uhm_machine.Timing
module Asm = Uhm_machine.Asm

type measured = {
  program_name : string;
  kind : Kind.t;
  dir_steps : int;
  interp : Uhm.result;
  cached : Uhm.result;
  dtb : Uhm.result;
}

let expect_halted what (r : Uhm.result) =
  match r.Uhm.status with
  | Machine.Halted -> r
  | Machine.Trapped m -> failwith (Printf.sprintf "%s trapped: %s" what m)
  | Machine.Out_of_fuel -> failwith (what ^ " ran out of fuel")
  | Machine.Running -> assert false

let measure ?timing ?backend ?(dtb_config = Dtb.paper_config)
    ?(icache_bytes = 4096) ~kind ~name (p : Program.t) =
  let encoded = Codec.encode kind p in
  let run strategy =
    expect_halted
      (Printf.sprintf "%s/%s/%s" name (Kind.name kind)
         (Uhm.strategy_name strategy))
      (Uhm.run_encoded ?timing ?backend ~strategy encoded)
  in
  let interp = run Uhm.Interp in
  let cached = run (Uhm.Cached icache_bytes) in
  let dtb = run (Uhm.Dtb_strategy dtb_config) in
  {
    program_name = name;
    kind;
    dir_steps = interp.Uhm.dir_steps;
    interp;
    cached;
    dtb;
  }

type calibration = {
  c_d : float;
  c_x : float;
  c_g : float;
  c_d_miss : float;
  c_s1 : float;
  c_s2 : float;
  c_h_c : float;
  c_h_d : float;
}

let cat (r : Uhm.result) category =
  float_of_int
    r.Uhm.machine_stats.Machine.cat_cycles.(Machine.category_index category)

let calibrate (m : measured) =
  let steps = float_of_int m.dir_steps in
  let misses =
    float_of_int (max 1 (Option.value ~default:1 m.dtb.Uhm.dtb_misses))
  in
  {
    c_d = cat m.interp Asm.Decode /. steps;
    c_x = cat m.interp Asm.Semantic /. steps;
    c_g = cat m.dtb Asm.Translate /. misses;
    c_d_miss = cat m.dtb Asm.Decode /. misses;
    c_s1 =
      float_of_int m.dtb.Uhm.machine_stats.Machine.short_instrs /. steps;
    c_s2 =
      float_of_int m.interp.Uhm.machine_stats.Machine.dir_units_fetched
      /. steps;
    c_h_c = Option.value ~default:0. m.cached.Uhm.icache_hit_ratio;
    c_h_d = Option.value ~default:0. m.dtb.Uhm.dtb_hit_ratio;
  }

let params_of ?(timing = Timing.paper) (c : calibration) =
  {
    Model.tau1 = float_of_int timing.Timing.t1;
    tau2 = float_of_int timing.Timing.t2;
    tau_d = float_of_int timing.Timing.t_dtb;
    d = c.c_d;
    g = c.c_g;
    x = c.c_x;
    s1 = c.c_s1;
    s2 = c.c_s2;
    h_c = c.c_h_c;
    h_d = c.c_h_d;
  }

(* -- Figure 1: the space of representations -------------------------------- *)

type space_point = {
  sp_label : string;
  sp_semantic_level : string;
  sp_encoding : string;
  sp_size_bits : int;
  sp_cycles_per_instr : float;
  sp_total_cycles : int;
}

let point ~label ~level ~encoding (r : Uhm.result) =
  {
    sp_label = label;
    sp_semantic_level = level;
    sp_encoding = encoding;
    sp_size_bits = r.Uhm.static_size_bits;
    sp_cycles_per_instr = Uhm.cycles_per_dir_instruction r;
    sp_total_cycles = r.Uhm.cycles;
  }

let figure1_points ?timing ~name ast =
  let base = Uhm_compiler.Pipeline.compile ~fuse:false ast in
  let fused = Uhm_compiler.Pipeline.compile ~fuse:true ast in
  let run p strategy kind what =
    expect_halted
      (Printf.sprintf "%s/%s" name what)
      (Uhm.run ?timing ~strategy ~kind p)
  in
  let der_l1 = run base (Uhm.Der Uhm.Der_level1) Kind.Packed "der-l1" in
  let der_l2 = run base (Uhm.Der Uhm.Der_level2) Kind.Packed "der-l2" in
  let psder = run base Uhm.Psder_static Kind.Packed "psder" in
  let dir_points fuse p level =
    List.map
      (fun kind ->
        let r =
          run p Uhm.Interp kind
            (Printf.sprintf "dir%s/%s" (if fuse then "+f" else "") (Kind.name kind))
        in
        point
          ~label:(Printf.sprintf "%s/%s" level (Kind.name kind))
          ~level ~encoding:(Kind.name kind) r)
      Kind.all
  in
  [
    point ~label:"der (fast store)" ~level:"der" ~encoding:"none" der_l1;
    point ~label:"der (level 2)" ~level:"der" ~encoding:"none" der_l2;
    point ~label:"psder-static" ~level:"psder" ~encoding:"none" psder;
  ]
  @ dir_points false base "dir"
  @ dir_points true fused "dir+superops"

(* -- DTB geometry sweeps ---------------------------------------------------- *)

type dtb_point = {
  dp_config : Dtb.config;
  dp_capacity_words : int;
  dp_hit_ratio : float;
  dp_misses : int;
  dp_evictions : int;
  dp_overflow_allocations : int;
}

let dtb_point_of_config encoded config =
  let r = Dtb_sim.replay_encoded ~config encoded in
  {
    dp_config = config;
    dp_capacity_words = Dtb.config_capacity_words config;
    dp_hit_ratio = r.Dtb_sim.hit_ratio;
    dp_misses = r.Dtb_sim.misses;
    dp_evictions = r.Dtb_sim.evictions;
    dp_overflow_allocations = r.Dtb_sim.overflow_allocations;
  }

let dtb_sweep ?domains ~kind ~configs p =
  let encoded = Codec.encode kind p in
  Sweep.map ?domains (dtb_point_of_config encoded) configs

(* the full (program x config) grid as one flat job list, so a parallel
   sweep balances across both axes; regrouped per program afterwards.
   The encode stage also computes each program's dir_steps (served by
   the memo from then on), which the point sweep passes to the pool as
   its cost hint: replay time is proportional to trace length, so
   long-program points start first and the grid doesn't end on a lone
   slow worker. *)
let dtb_grid_encodeds ?domains ~kind names_and_programs =
  Sweep.map ?domains
    (fun (name, p) -> (name, Codec.encode kind p, Uhm.dir_steps_memoized p))
    names_and_programs

let dtb_grid_jobs ~configs encodeds =
  List.concat_map
    (fun (_, encoded, steps) ->
      List.map (fun c -> (encoded, steps, c)) configs)
    encodeds

let dtb_regroup ~configs encodeds points =
  let per_program = List.length configs in
  List.mapi
    (fun i (name, _, _) ->
      ( name,
        List.filteri
          (fun j _ -> j / per_program = i)
          points ))
    encodeds

let dtb_grid ?domains ~kind ~configs names_and_programs =
  let encodeds = dtb_grid_encodeds ?domains ~kind names_and_programs in
  let points =
    Sweep.map ?domains
      ~cost:(fun (_, steps, _) -> steps)
      (fun (encoded, _, c) -> dtb_point_of_config encoded c)
      (dtb_grid_jobs ~configs encodeds)
  in
  dtb_regroup ~configs encodeds points

let dtb_grid_slots ?domains ?supervision ?cached ?cell_hook ~kind ~configs
    names_and_programs =
  (* cell index = flat (program-major, config-minor) grid index, matching
     the journal layout *)
  let encodeds = dtb_grid_encodeds ?domains ~kind names_and_programs in
  let points =
    Sweep.map_supervised ?supervision ?cached ?cell_hook ?domains
      ~cost:(fun (_, steps, _) -> steps)
      (fun (encoded, _, c) -> dtb_point_of_config encoded c)
      (dtb_grid_jobs ~configs encodeds)
  in
  dtb_regroup ~configs encodeds points

(* -- Whole-suite summary (the `summary` dashboard and the timed sweep) ------ *)

type summary_row = {
  sr_program : string;
  sr_lang : string;
  sr_dir_steps : int;
  sr_bits_per_instr : float;
  sr_t1_ci : float;
  sr_t3_ci : float;
  sr_t2_ci : float;
  sr_dtb_hit_ratio : float;
  sr_f2_measured : float;
}

let summary_jobs () =
  List.map
    (fun e ->
      ( e.Uhm_workload.Suite.name,
        "algol",
        fun () -> Uhm_workload.Suite.compile ~fuse:false e ))
    Uhm_workload.Suite.all
  @ List.map
      (fun e ->
        ( e.Uhm_ftn.Suite.name,
          "ftn",
          fun () -> Uhm_ftn.Suite.compile ~fuse:false e ))
      Uhm_ftn.Suite.all

let summary_row_of ?fuel ?backend (name, lang, compile) =
  let p = compile () in
  let e = Codec.encode Kind.Digram p in
  let run what strategy =
    expect_halted
      (Printf.sprintf "%s/%s" name what)
      (Uhm.run_encoded ?fuel ?backend ~strategy e)
  in
  let t1 = run "interp" Uhm.Interp in
  let t3 = run "cached" (Uhm.Cached 4096) in
  let t2 = run "dtb" (Uhm.Dtb_strategy Dtb.paper_config) in
  let ci = Uhm.cycles_per_dir_instruction in
  {
    sr_program = name;
    sr_lang = lang;
    sr_dir_steps = t1.Uhm.dir_steps;
    sr_bits_per_instr = Codec.bits_per_instruction e;
    sr_t1_ci = ci t1;
    sr_t3_ci = ci t3;
    sr_t2_ci = ci t2;
    sr_dtb_hit_ratio = Option.value ~default:0. t2.Uhm.dtb_hit_ratio;
    sr_f2_measured = (ci t1 -. ci t2) /. ci t2 *. 100.;
  }

let summary_filtered_jobs ?names () =
  let jobs = summary_jobs () in
  match names with
  | None -> jobs
  | Some names -> List.filter (fun (n, _, _) -> List.mem n names) jobs

let summary_names ?names () =
  List.map (fun (n, _, _) -> n) (summary_filtered_jobs ?names ())

let summary_rows ?domains ?names ?backend () =
  Sweep.map ?domains
    (fun j -> summary_row_of ?backend j)
    (summary_filtered_jobs ?names ())

let summary_rows_slots ?domains ?names ?backend ?supervision ?cached ?cell_hook
    ?cell_fuel () =
  Sweep.map_supervised ?supervision ?cached ?cell_hook ?domains
    (summary_row_of ?fuel:cell_fuel ?backend)
    (summary_filtered_jobs ?names ())

let capacity_configs () =
  (* one overflow block per entry: enough for the longest translation at
     4-word units *)
  List.map
    (fun sets ->
      { Dtb.paper_config with Dtb.sets; overflow_blocks = sets * 4 })
    [ 8; 16; 32; 64; 128; 256 ]

let assoc_configs () =
  (* constant 256 entries; assoc 0 = fully associative *)
  [
    { Dtb.sets = 256; assoc = 1; unit_words = 4; overflow_blocks = 256 };
    { Dtb.sets = 128; assoc = 2; unit_words = 4; overflow_blocks = 256 };
    { Dtb.sets = 64; assoc = 4; unit_words = 4; overflow_blocks = 256 };
    { Dtb.sets = 32; assoc = 8; unit_words = 4; overflow_blocks = 256 };
    { Dtb.sets = 1; assoc = 256; unit_words = 4; overflow_blocks = 256 };
  ]

let alloc_configs () =
  (* roughly constant buffer capacity; unit 3 chains often, unit 8 never *)
  [
    { Dtb.sets = 64; assoc = 4; unit_words = 3; overflow_blocks = 512 };
    { Dtb.sets = 64; assoc = 4; unit_words = 4; overflow_blocks = 256 };
    { Dtb.sets = 64; assoc = 4; unit_words = 6; overflow_blocks = 0 };
    { Dtb.sets = 64; assoc = 4; unit_words = 8; overflow_blocks = 0 };
  ]
