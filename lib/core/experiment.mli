(** The experiment harness: measured quantities behind every reproduced
    table and figure (see DESIGN.md's experiment index).

    All functions are deterministic and pure up to memoisation; bench
    targets format the returned records with [Uhm_report.Table]. *)

module Model := Uhm_perfmodel.Model
module Kind := Uhm_encoding.Kind
module Program := Uhm_dir.Program

type measured = {
  program_name : string;
  kind : Kind.t;
  dir_steps : int;
  interp : Uhm.result;
  cached : Uhm.result;
  dtb : Uhm.result;
}

val measure : ?timing:Uhm_machine.Timing.t
  -> ?backend:Uhm_machine.Machine.backend -> ?dtb_config:Dtb.config
  -> ?icache_bytes:int -> kind:Kind.t -> name:string -> Program.t -> measured

(** Per-DIR-instruction cost components extracted from simulation, the
    measured counterparts of the paper's parameters. *)
type calibration = {
  c_d : float;       (** decode + dispatch cycles per instruction (interp) *)
  c_x : float;       (** semantic cycles per instruction (interp) *)
  c_g : float;       (** generation cycles per translated instruction *)
  c_d_miss : float;  (** decode cycles per DTB miss *)
  c_s1 : float;      (** short words executed per instruction (DTB) *)
  c_s2 : float;      (** 16-bit DIR units fetched per instruction (interp) *)
  c_h_c : float;     (** instruction-cache hit ratio *)
  c_h_d : float;     (** DTB hit ratio *)
}

val calibrate : measured -> calibration

val params_of : ?timing:Uhm_machine.Timing.t -> calibration -> Model.params
(** Analytic-model parameters from measured values. *)

(** One point of the Figure-1 representation space. *)
type space_point = {
  sp_label : string;          (** e.g. "dir/huffman", "psder", "der" *)
  sp_semantic_level : string; (** "der" | "psder" | "dir" | "dir+superops" *)
  sp_encoding : string;
  sp_size_bits : int;
  sp_cycles_per_instr : float;
  sp_total_cycles : int;
}

val figure1_points : ?timing:Uhm_machine.Timing.t -> name:string
  -> Uhm_hlr.Ast.program -> space_point list
(** Size and interpretation time of one source program across the whole
    representation space: DER (level-1 and level-2 resident), static PSDER,
    and interpreted DIR at every encoding, both with and without superoperator
    fusion. *)

(** DTB geometry sweep (Figure 2 behavioural validation, ablations X2/X3). *)
type dtb_point = {
  dp_config : Dtb.config;
  dp_capacity_words : int;
  dp_hit_ratio : float;
  dp_misses : int;
  dp_evictions : int;
  dp_overflow_allocations : int;
}

val dtb_sweep : ?domains:int -> kind:Kind.t -> configs:Dtb.config list
  -> Program.t -> dtb_point list
(** Replay one program's INTERP trace against each configuration; the
    configurations are evaluated through {!Sweep} ([?domains] as in
    {!Sweep.map}), results in configuration order. *)

val dtb_grid : ?domains:int -> kind:Kind.t -> configs:Dtb.config list
  -> (string * Program.t) list -> (string * dtb_point list) list
(** The full (program x configuration) grid as one flat parallel sweep
    (encodings are computed in a first sweep over the programs), regrouped
    per program in submission order — the engine behind Figure 2 and the
    X2/X3 ablations. *)

val dtb_grid_slots :
  ?domains:int ->
  ?supervision:Sweep.supervision ->
  ?cached:(int -> dtb_point option) ->
  ?cell_hook:(index:int -> attempts:int -> dtb_point Sweep.slot -> unit) ->
  kind:Kind.t -> configs:Dtb.config list ->
  (string * Program.t) list -> (string * dtb_point Sweep.slot list) list
(** {!dtb_grid} under campaign supervision ({!Sweep.map_pool_supervised}):
    a failing point is retried and then quarantined instead of aborting
    the grid, and [cached]/[cell_hook] plug in a {!Uhm_campaign} journal.
    Cell indices are the flat program-major, configuration-minor grid
    index.  The encode pre-pass stays unsupervised (it is the grid's
    input, not a cell).  Completed slots are byte-identical to the
    corresponding {!dtb_grid} points. *)

(** One row of the whole-suite summary dashboard: a program run under the
    paper's three machines at the digram encoding. *)
type summary_row = {
  sr_program : string;
  sr_lang : string;             (** "algol" | "ftn" *)
  sr_dir_steps : int;
  sr_bits_per_instr : float;
  sr_t1_ci : float;             (** interp cycles per DIR instruction *)
  sr_t3_ci : float;             (** icache cycles per DIR instruction *)
  sr_t2_ci : float;             (** DTB cycles per DIR instruction *)
  sr_dtb_hit_ratio : float;
  sr_f2_measured : float;       (** (T1-T2)/T2, percent *)
}

val summary_names : ?names:string list -> unit -> string list
(** The program name of each summary cell, in submission order — what
    cell index [i] of {!summary_rows}/{!summary_rows_slots} is, for
    labelling quarantined rows and building a journal fingerprint. *)

val summary_rows : ?domains:int -> ?names:string list
  -> ?backend:Uhm_machine.Machine.backend -> unit -> summary_row list
(** Every workload (both language suites, or just [names]) under
    interp/cached/DTB — the `summary` dashboard's data, evaluated as a
    parallel sweep with byte-identical results at any domain count.
    Compilation, encoding and the three simulations all happen inside the
    per-program job.  A program that traps or exhausts fuel fails its
    whole row (with [Failure] naming the program and machine). *)

val summary_rows_slots :
  ?domains:int ->
  ?names:string list ->
  ?backend:Uhm_machine.Machine.backend ->
  ?supervision:Sweep.supervision ->
  ?cached:(int -> summary_row option) ->
  ?cell_hook:(index:int -> attempts:int -> summary_row Sweep.slot -> unit) ->
  ?cell_fuel:int ->
  unit -> summary_row Sweep.slot list
(** {!summary_rows} under campaign supervision: one cell per program (in
    submission order); a failing row is quarantined instead of aborting
    the sweep.  [cell_fuel] bounds each cell's three simulations with the
    PR 4 fuel machinery — a wedged (non-terminating) program exhausts its
    deterministic budget, fails the cell, and ends up quarantined rather
    than hanging the campaign.  Completed slots are byte-identical to the
    corresponding {!summary_rows} rows. *)

val capacity_configs : unit -> Dtb.config list
(** Same geometry as {!Dtb.paper_config} at 1/8x .. 4x capacity. *)

val assoc_configs : unit -> Dtb.config list
(** Direct-mapped through fully-associative at the paper capacity. *)

val alloc_configs : unit -> Dtb.config list
(** Unit sizes from chained 3-word units to fixed 8-word units at roughly
    constant capacity. *)
