(* Domain-based worker pool for experiment grids; see sweep.mli.

   Determinism contract: results are stored by job index and returned in
   submission order, and the first-raising job (by index, not by wall
   clock) decides which exception escapes.  Nothing observable depends on
   the interleaving of workers. *)

let max_domains = 64

let default_domains () =
  let requested =
    match Sys.getenv_opt "UHM_JOBS" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n > 0 -> n
        | _ -> Domain.recommended_domain_count ())
    | None -> Domain.recommended_domain_count ()
  in
  max 1 (min max_domains requested)

(* One batch in flight at a time.  [batch] is the current jobs as an
   index-consuming closure (the result slots are captured inside it), so
   the pool itself is monomorphic. *)
type pool = {
  total_domains : int;
  mutex : Mutex.t;
  work_ready : Condition.t;  (* a batch was submitted, or shutdown *)
  work_done : Condition.t;   (* the last job of the batch completed *)
  mutable batch : (int -> unit) option;
  mutable total : int;       (* jobs in the current batch *)
  mutable next : int;        (* cursor: next unclaimed job index *)
  mutable completed : int;   (* jobs fully evaluated *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

(* Claim-and-run loop shared by workers and the submitting domain.  Called
   with the mutex held; returns with the mutex held once the cursor is
   exhausted (workers then sleep; the submitter waits for completion). *)
let drain pool =
  while
    match pool.batch with
    | Some job when pool.next < pool.total ->
        let i = pool.next in
        pool.next <- i + 1;
        Mutex.unlock pool.mutex;
        (* [job] never raises: map_pool wraps f in a Result *)
        job i;
        Mutex.lock pool.mutex;
        pool.completed <- pool.completed + 1;
        if pool.completed = pool.total then Condition.broadcast pool.work_done;
        true
    | _ -> false
  do
    ()
  done

let worker_main pool =
  Mutex.lock pool.mutex;
  while not pool.stopping do
    drain pool;
    if not pool.stopping then Condition.wait pool.work_ready pool.mutex
  done;
  Mutex.unlock pool.mutex

let create ?domains () =
  let total_domains =
    match domains with
    | Some d -> max 1 (min max_domains d)
    | None -> default_domains ()
  in
  let pool =
    {
      total_domains;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      batch = None;
      total = 0;
      next = 0;
      completed = 0;
      stopping = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (total_domains - 1) (fun _ ->
        Domain.spawn (fun () -> worker_main pool));
  pool

let domains pool = pool.total_domains

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stopping <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

(* Cost-aware claim order: with a cost hint the cursor walks a stable
   descending-cost permutation of the job indices, so the long-tail jobs
   of a grid start first and the sweep doesn't end on a lone slow worker.
   Results are still stored by original index, so everything observable —
   result order, first-error-by-index — is unchanged by the hint. *)
let claim_order ~cost jobs =
  let n = Array.length jobs in
  match cost with
  | None -> Array.init n Fun.id
  | Some cost ->
      let costs = Array.map cost jobs in
      let order = Array.init n Fun.id in
      (* stable, so equal-cost jobs keep submission order *)
      let a = Array.to_list order in
      let sorted =
        List.stable_sort (fun i j -> compare costs.(j) costs.(i)) a
      in
      Array.of_list sorted

let map_pool ?cost pool f jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  if n = 0 then []
  else begin
    let results =
      Array.make n (Error (Failure "Sweep.map_pool: job not evaluated"))
    in
    let order = claim_order ~cost jobs in
    let job k =
      let i = order.(k) in
      results.(i) <-
        (try Ok (f jobs.(i)) with e -> Error e)
    in
    if pool.workers = [] then
      for i = 0 to n - 1 do
        job i
      done
    else begin
      Mutex.lock pool.mutex;
      if pool.batch <> None then begin
        Mutex.unlock pool.mutex;
        invalid_arg "Sweep.map_pool: sweep already in flight (nested use?)"
      end;
      pool.total <- n;
      pool.next <- 0;
      pool.completed <- 0;
      pool.batch <- Some job;
      Condition.broadcast pool.work_ready;
      (* the submitting domain pulls jobs too *)
      drain pool;
      while pool.completed < pool.total do
        Condition.wait pool.work_done pool.mutex
      done;
      pool.batch <- None;
      Mutex.unlock pool.mutex
    end;
    (* first error in submission order wins, explicitly, so the escaping
       exception does not depend on evaluation-order quirks *)
    Array.iter (function Error e -> raise e | Ok _ -> ()) results;
    Array.to_list
      (Array.map (function Ok v -> v | Error _ -> assert false) results)
  end

let map ?cost ?domains f jobs =
  let wanted =
    match domains with Some d -> max 1 (min max_domains d) | None -> default_domains ()
  in
  (* no point spawning more domains than jobs *)
  let wanted = min wanted (max 1 (List.length jobs)) in
  if wanted = 1 && cost = None then List.map f jobs
  else if wanted = 1 then
    (* inline, but honouring the claim order so the hint is observable
       (and testable) without spawning domains; results stay in
       submission order via the same by-index slots *)
    map_pool ?cost (create ~domains:1 ()) f jobs
  else begin
    let pool = create ~domains:wanted () in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () ->
        map_pool ?cost pool f jobs)
  end
